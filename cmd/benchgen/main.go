// Command benchgen emits a benchmark circuit as a .qc netlist on stdout or
// to a file.
//
// Usage:
//
//	benchgen [-o out.qc] [-ft] <benchmark-name>
//	benchgen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchgen"
	"repro/internal/circuit"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out  = flag.String("o", "", "output file (default stdout)")
		ft   = flag.Bool("ft", false, "lower to the fault-tolerant gate set")
		list = flag.Bool("list", false, "list the paper's benchmark names and stats")
	)
	flag.Parse()
	if *list {
		fmt.Printf("%-17s %8s %10s\n", "name", "pQubits", "pOps")
		for _, name := range benchgen.Names() {
			p := benchgen.Paper[name]
			fmt.Printf("%-17s %8d %10d\n", name, p.Qubits, p.Operations)
		}
		return nil
	}
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: benchgen [-o out.qc] [-ft] <benchmark-name> | benchgen -list")
	}
	var c *circuit.Circuit
	var err error
	if *ft {
		c, err = benchgen.GenerateFT(flag.Arg(0))
	} else {
		c, err = benchgen.Generate(flag.Arg(0))
	}
	if err != nil {
		return err
	}
	if *out == "" {
		return circuit.WriteQC(os.Stdout, c)
	}
	if err := circuit.SaveQCFile(*out, c); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d qubits, %d gates\n", *out, c.NumQubits(), c.NumGates())
	return nil
}
