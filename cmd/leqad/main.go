// Command leqad serves LEQA latency estimation over HTTP — the paper's
// ~10^5× speedup over detailed mapping makes estimation cheap enough to run
// as an interactive network service rather than a batch CLI.
//
// Usage:
//
//	leqad [flags]
//
// Endpoints (see internal/server and leqa/client for the wire schema):
//
//	POST /v1/estimate    one circuit: JSON spec ({"generate": "shor-32"}) or a
//	                     raw .qc body, streamed gate-by-gate past -max-body
//	POST /v1/sweep       many circuits, one parameter set; streams rows
//	POST /v1/grid        circuits × paramSets; streams rows (NDJSON, or SSE
//	                     when the request accepts text/event-stream)
//	PUT  /v1/circuits    upload a netlist (.qc or binary .qcb, either gzipped)
//	                     into the content-addressed analysis store; returns
//	                     its sha256 digest for {"ref": "sha256:..."} specs
//	GET  /v1/circuits/{digest}  stored-circuit metadata (HEAD: existence)
//	GET  /v1/benchmarks  generator catalog
//	GET  /healthz        build info + store and zone-model cache statistics
//	GET  /metrics        Prometheus-style per-endpoint request/row/latency
//
// Every request funnels through one shared leqa.Runner, so all estimates
// reuse the process-wide memoized zone model. On SIGINT/SIGTERM the server
// stops accepting work, drains in-flight streams for -drain, then cancels
// whatever is left.
//
// Flags:
//
//	-addr            listen address (default :8347)
//	-workers         estimation worker-pool size (0 = GOMAXPROCS)
//	-grid WxH        base fabric geometry (or -width/-height separately)
//	-nc/-v/-tmove    base physical parameters requests overlay
//	-truncation      E[S_q] term limit (0 = paper's 20, -1 = exact)
//	-no-congestion   disable the M/M/1 congestion model
//	-max-body        JSON request body cap in bytes
//	-max-spool       disk-spool cap for streamed raw .qc uploads (the 413
//	                 limit for raw uploads; they never buffer in RAM)
//	-spool-dir       directory receiving upload spools (default TMPDIR)
//	-max-gates       per-circuit operation cap (post-decomposition)
//	-max-cells       circuits × paramSets cap per batch
//	-max-concurrent  simultaneous estimation requests before 429
//	-max-queue       excess requests held in a bounded wait for a slot
//	                 before 429 (default 0 = reject immediately); 429s carry
//	                 a Retry-After priced from the windowed queue-wait p50
//	-queue-timeout   max wait of one queued request (default 5s)
//	-window          sliding-window span behind windowed percentiles, error
//	                 rates and per-client counts (default 60s)
//	-slo             latency/error objectives scored against the windows,
//	                 e.g. "estimate:p99<250ms,error_rate<1%" (env LEQA_SLO);
//	                 sustained breach flips /healthz to "degraded"
//	-slo-interval    SLO evaluation cadence (default 5s)
//	-degrade-after   consecutive breaching evaluations before degraded (3)
//	-max-clients     tracked per-client series cardinality (default 64)
//	-drain           graceful-shutdown drain window
//	-parallel-threshold  critical-path parallel sweep threshold in nodes
//	                 (default 65536; env LEQA_PARALLEL_THRESHOLD)
//	-shard-threshold     analysis shard-parallel threshold in gates; 0
//	                 disables sharding (default 65536; env LEQA_SHARD_THRESHOLD)
//	-store-dir       analysis store disk directory — persisted .qca images
//	                 survive restarts (env LEQA_STORE_DIR; empty = memory-only)
//	-store-mem       analysis store memory-tier entry cap (env LEQA_STORE_MEM)
//	-store-disk      analysis store disk byte cap, 0 = unbounded
//	                 (env LEQA_STORE_DISK_BYTES)
//	-result-memo     (digest, params) result-memo entry cap: warm identical
//	                 estimate/sweep/grid cells skip analyze and estimate
//	                 entirely; 0 = default or $LEQA_RESULT_MEMO_ENTRIES,
//	                 negative disables
//	-log-format      structured access-log format: text (default) or json
//	-log-level       minimum log level: debug, info, warn, error
//	-slow-request    warn-log any request at or over this duration with its
//	                 full span breakdown (0 disables)
//	-trace-ring      GET /debug/requests retained-trace count
//	-enable-debug    mount net/http/pprof under /debug/pprof/ on the main mux
//	-debug-addr      serve pprof + /debug/requests on a separate private
//	                 address instead
//
// Every response carries an X-Request-Id header (echoing the request's
// X-Request-Id or W3C traceparent when present); access logs, Server-Timing
// headers/trailers, error rows and GET /debug/requests all use the same ID,
// so a slow or failed request is attributable end to end.
//
// Raw .qc uploads on /v1/estimate stream through internal/ingest: the
// netlist is parsed gate by gate and spooled to disk for the analyzer's
// second pass, so Transfer-Encoding: chunked uploads far beyond -max-body
// estimate in O(analysis) memory. GET /metrics exposes Prometheus-style
// per-endpoint request/row/latency series; /healthz keeps its JSON schema.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/leqa"
)

// version is the build identifier /healthz reports; override with
// -ldflags "-X main.version=...".
var version = "dev"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leqad:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr          = flag.String("addr", ":8347", "listen address")
		workers       = flag.Int("workers", 0, "estimation worker-pool size (0 = GOMAXPROCS)")
		gridSpec      = flag.String("grid", "", "base fabric WxH, e.g. 60x60 (overrides -width/-height)")
		width         = flag.Int("width", 60, "base fabric width (ULB columns)")
		height        = flag.Int("height", 60, "base fabric height (ULB rows)")
		nc            = flag.Int("nc", 5, "base routing channel capacity Nc")
		speed         = flag.Float64("v", 0.001, "base qubit speed 𝓋 (ULB sides per µs)")
		tmove         = flag.Float64("tmove", 100, "base per-hop move time T_move (µs)")
		truncation    = flag.Int("truncation", 0, "E[S_q] term limit (0 = paper's 20, -1 = exact)")
		noCongestion  = flag.Bool("no-congestion", false, "disable the M/M/1 congestion model")
		maxBody       = flag.Int64("max-body", server.DefaultMaxBodyBytes, "JSON request body cap in bytes")
		maxSpool      = flag.Int64("max-spool", server.DefaultMaxSpoolBytes, "disk-spool cap for streamed raw .qc uploads")
		spoolDir      = flag.String("spool-dir", "", "directory for upload spools (default TMPDIR)")
		maxGates      = flag.Int("max-gates", server.DefaultMaxGates, "per-circuit operation cap")
		maxCells      = flag.Int("max-cells", server.DefaultMaxCells, "circuits × paramSets cap per batch")
		maxConcurrent = flag.Int("max-concurrent", server.DefaultMaxConcurrent, "simultaneous estimation requests")
		maxQueue      = flag.Int("max-queue", 0, "excess estimation requests held in a bounded wait for a slot before 429 (0 = reject immediately)")
		queueTimeout  = flag.Duration("queue-timeout", 0, "max wait of one queued request (0 = 5s; needs -max-queue)")
		window        = flag.Duration("window", 0, "sliding-window span for windowed percentiles, error rates and per-client counts (0 = 60s)")
		sloSpec       = flag.String("slo", "", `latency/error objectives, e.g. "estimate:p99<250ms,error_rate<1%" (default $LEQA_SLO; empty disables)`)
		sloInterval   = flag.Duration("slo-interval", 0, "SLO evaluation cadence (0 = 5s)")
		degradeAfter  = flag.Int("degrade-after", 0, "consecutive breaching evaluations before /healthz reports degraded (0 = 3)")
		maxClients    = flag.Int("max-clients", 0, "tracked per-client accounting cardinality; excess folds into \"other\" (0 = 64)")
		drain         = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
		parThresh     = flag.Int("parallel-threshold", -1, "critical-path parallel sweep threshold in nodes (-1 = default or $LEQA_PARALLEL_THRESHOLD)")
		shardThresh   = flag.Int("shard-threshold", -1, "analysis shard-parallel threshold in gates, 0 disables sharding (-1 = default or $LEQA_SHARD_THRESHOLD)")
		storeDir      = flag.String("store-dir", "", "analysis store disk directory; persisted .qca images survive restarts (default $LEQA_STORE_DIR or memory-only)")
		storeMem      = flag.Int("store-mem", -1, "analysis store memory-tier entry cap (-1 = default or $LEQA_STORE_MEM)")
		storeDisk     = flag.Int64("store-disk", -1, "analysis store disk-tier byte cap, 0 = unbounded (-1 = default or $LEQA_STORE_DISK_BYTES)")
		resultMemo    = flag.Int("result-memo", 0, "result-memo entry cap: 0 = default or $LEQA_RESULT_MEMO_ENTRIES, negative disables the memo")
		logFormat     = flag.String("log-format", "text", "structured log format: text or json")
		logLevel      = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		slowReq       = flag.Duration("slow-request", 0, "log requests at or over this duration at warn level with their span breakdown (0 disables)")
		traceRing     = flag.Int("trace-ring", 0, "GET /debug/requests ring size (0 = default)")
		enableDebug   = flag.Bool("enable-debug", false, "mount net/http/pprof under /debug/pprof/ on the main listener")
		debugAddr     = flag.String("debug-addr", "", "serve pprof + /debug/requests on a separate private address (e.g. localhost:8348)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("-log-level %q: %w", *logLevel, err)
	}
	hopt := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, hopt)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, hopt)
	default:
		return fmt.Errorf("-log-format %q: want text or json", *logFormat)
	}
	slogger := slog.New(handler)

	// Parallelism thresholds: environment first, explicit flags override.
	// Applied before the Runner exists so no estimate ever races the write.
	if err := leqa.ApplyEnvTuning(); err != nil {
		return err
	}
	if *parThresh >= 0 {
		leqa.SetParallelThreshold(*parThresh)
	}
	if *shardThresh >= 0 {
		leqa.SetShardThreshold(*shardThresh)
	}

	// Analysis store: environment first, explicit flags override, exactly
	// like the tuning knobs above.
	storeOpt, err := leqa.StoreOptionsFromEnv(leqa.AnalysisStoreOptions{})
	if err != nil {
		return err
	}
	if *storeDir != "" {
		storeOpt.Dir = *storeDir
	}
	if *storeMem >= 0 {
		storeOpt.MemEntries = *storeMem
	}
	if *storeDisk >= 0 {
		storeOpt.MaxDiskBytes = *storeDisk
	}

	// Result memo: environment first, explicit flag overrides.
	memoEntries, err := leqa.ResultMemoEntriesFromEnv()
	if err != nil {
		return err
	}
	if *resultMemo != 0 {
		memoEntries = *resultMemo
	}

	params := leqa.DefaultParams()
	params.Grid = leqa.Grid{Width: *width, Height: *height}
	if *gridSpec != "" {
		g, err := leqa.ParseGrid(*gridSpec)
		if err != nil {
			return err
		}
		params.Grid = g
	}
	params.ChannelCapacity = *nc
	params.QubitSpeed = *speed
	params.TMove = *tmove

	// SLO: environment first, explicit flag overrides — matching the other
	// tuning knobs.
	slo := os.Getenv("LEQA_SLO")
	if *sloSpec != "" {
		slo = *sloSpec
	}

	logger := log.New(os.Stderr, "leqad: ", log.LstdFlags)
	srv, err := server.New(server.Config{
		Params:            params,
		Options:           leqa.EstimateOptions{Truncation: *truncation, DisableCongestion: *noCongestion},
		Workers:           *workers,
		MaxBodyBytes:      *maxBody,
		MaxSpoolBytes:     *maxSpool,
		SpoolDir:          *spoolDir,
		MaxGates:          *maxGates,
		MaxCells:          *maxCells,
		MaxConcurrent:     *maxConcurrent,
		MaxQueue:          *maxQueue,
		QueueTimeout:      *queueTimeout,
		Window:            *window,
		SLO:               slo,
		SLOInterval:       *sloInterval,
		DegradeAfter:      *degradeAfter,
		MaxClients:        *maxClients,
		StoreDir:          storeOpt.Dir,
		StoreMemEntries:   storeOpt.MemEntries,
		StoreMaxDiskBytes: storeOpt.MaxDiskBytes,
		ResultMemoEntries: memoEntries,
		Version:           version,
		Log:               logger,
		Logger:            slogger,
		SlowRequest:       *slowReq,
		TraceRing:         *traceRing,
		EnableDebug:       *enableDebug,
	})
	if err != nil {
		return err
	}

	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           srv.DebugHandler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Printf("debug surfaces (pprof, /debug/requests) on %s", *debugAddr)
			if err := dbg.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("debug listener: %v", err)
			}
		}()
		defer dbg.Close()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Background SLO evaluation: objectives keep being scored (and breach
	// runs keep aging) while the server idles between requests and scrapes.
	if slo != "" {
		go srv.RunSLO(ctx.Done())
	}

	errc := make(chan error, 1)
	go func() {
		logger.Printf("version %s serving on %s (%d workers)", version, *addr, srv.Workers())
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	logger.Printf("signal received; draining for up to %s", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		// Drain window expired: cancel in-flight batches and cut the
		// remaining connections.
		logger.Printf("drain incomplete (%v); aborting in-flight batches", err)
		srv.Abort()
		return httpSrv.Close()
	}
	logger.Printf("drained cleanly")
	return nil
}
