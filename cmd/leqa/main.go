// Command leqa estimates the latency of quantum algorithms mapped to a
// tiled quantum architecture — the paper's Algorithm 1.
//
// Usage:
//
//	leqa [flags] <circuit.qc | benchmark-name | -> [more circuits...]
//
// Each positional argument is either a .qc netlist file, a generator spec
// such as gf2^16mult, hwb50ps, ham15, 8bitadder, mod1048576adder, or "-"
// for a .qc netlist on stdin. The repeatable -grid/-capacity/-speed flags
// form a parameter matrix (their cross product); circuits × parameter sets
// fan out across a worker pool (the leqa.Runner sweep-grid engine), each
// circuit analyzed exactly once, and print as a table in argument order.
//
// Files larger than -maxmem — and stdin always — take the streaming
// ingestion path: the netlist is parsed and analyzed gate by gate
// (internal/ingest + analysis.AnalyzeStream) without ever materializing
// its gate list, so circuits beyond RAM estimate in O(analysis) memory.
// Streamed netlists must already be in the FT gate set (-decompose needs
// the materialized gate list).
//
// Flags:
//
//	-grid WxH         fabric dimensions; repeatable (-grid 60x60 -grid 90x90)
//	-capacity N       channel capacity; repeatable
//	-speed V          qubit speed 𝓋; repeatable
//	-width/-height    fallback fabric dimensions when no -grid given (60x60)
//	-nc               fallback channel capacity when no -capacity given (5)
//	-v                fallback qubit speed when no -speed given (0.001)
//	-tmove            per-hop move time in µs (default 100)
//	-truncation       E[S_q] term limit (default 20; -1 = exact)
//	-no-congestion    disable the M/M/1 congestion model
//	-decompose        lower non-FT gates before estimating
//	-maxmem N         materialize .qc files up to N bytes; stream larger ones
//	                  (and stdin) through the ingestion layer (default 64 MiB)
//	-workers          sweep worker-pool size (default GOMAXPROCS)
//	-parallel-threshold N  critical-path parallel sweep threshold in nodes
//	                  (default 65536; env LEQA_PARALLEL_THRESHOLD)
//	-shard-threshold N     analysis shard-parallel threshold in gates; 0
//	                  disables sharding (default 65536; env LEQA_SHARD_THRESHOLD)
//	-store-dir DIR    content-addressed analysis store directory: analyses
//	                  persist as .qca images and later runs skip the graph
//	                  build for already-seen circuits (env LEQA_STORE_DIR)
//	-store-mem N      store memory-tier entry cap (env LEQA_STORE_MEM)
//	-store-disk N     store disk byte cap, 0 = unbounded
//	                  (env LEQA_STORE_DISK_BYTES)
//	-timeout          abort the whole run after this duration (0 = none)
//	-json/-csv        emit machine-readable results for baseline diffing
//	-verbose          print model intermediates and cache statistics
//	-trace            print the run's per-phase span breakdown (ingest,
//	                  analyze with store outcomes and shard counts,
//	                  estimate) to stderr — the CLI view of the tracing
//	                  layer leqad threads through every request
//	-cpuprofile FILE  write a pprof CPU profile of the run
//	-memprofile FILE  write a pprof heap profile at exit
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/leqa"
	"repro/leqa/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leqa:", err)
		os.Exit(1)
	}
}

// gridList collects repeatable -grid WxH values.
type gridList []leqa.Grid

func (g *gridList) String() string {
	parts := make([]string, len(*g))
	for i, v := range *g {
		parts[i] = fmt.Sprintf("%dx%d", v.Width, v.Height)
	}
	return strings.Join(parts, ",")
}

func (g *gridList) Set(s string) error {
	grid, err := leqa.ParseGrid(s)
	if err != nil {
		return err
	}
	*g = append(*g, grid)
	return nil
}

// intList collects repeatable integer flag values.
type intList []int

func (l *intList) String() string { return fmt.Sprint([]int(*l)) }
func (l *intList) Set(s string) error {
	v, err := strconv.Atoi(s)
	if err != nil {
		return err
	}
	*l = append(*l, v)
	return nil
}

// floatList collects repeatable float flag values.
type floatList []float64

func (l *floatList) String() string { return fmt.Sprint([]float64(*l)) }
func (l *floatList) Set(s string) error {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return err
	}
	*l = append(*l, v)
	return nil
}

func run() error {
	var (
		grids      gridList
		capacities intList
		speeds     floatList

		width        = flag.Int("width", 60, "fabric width when no -grid is given (ULB columns)")
		height       = flag.Int("height", 60, "fabric height when no -grid is given (ULB rows)")
		nc           = flag.Int("nc", 5, "routing channel capacity Nc when no -capacity is given")
		speed        = flag.Float64("v", 0.001, "qubit speed 𝓋 when no -speed is given (ULB sides per µs)")
		tmove        = flag.Float64("tmove", 100, "per-hop move time T_move (µs)")
		truncation   = flag.Int("truncation", 0, "E[S_q] term limit (0 = paper's 20, -1 = exact)")
		noCongestion = flag.Bool("no-congestion", false, "disable the M/M/1 congestion model")
		doDecompose  = flag.Bool("decompose", true, "lower reversible gates to the FT set first")
		maxMem       = flag.Int64("maxmem", 64<<20, "materialize .qc files up to this many bytes; stream larger ones (and stdin)")
		workers      = flag.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
		parThresh    = flag.Int("parallel-threshold", -1, "critical-path parallel sweep threshold in nodes (-1 = default or $LEQA_PARALLEL_THRESHOLD)")
		shardThresh  = flag.Int("shard-threshold", -1, "analysis shard-parallel threshold in gates, 0 disables sharding (-1 = default or $LEQA_SHARD_THRESHOLD)")
		storeDir     = flag.String("store-dir", "", "analysis store directory: reuse persisted .qca analysis images across runs (default $LEQA_STORE_DIR)")
		storeMem     = flag.Int("store-mem", -1, "analysis store memory-tier entry cap (-1 = default or $LEQA_STORE_MEM)")
		storeDisk    = flag.Int64("store-disk", -1, "analysis store disk byte cap, 0 = unbounded (-1 = default or $LEQA_STORE_DISK_BYTES)")
		timeout      = flag.Duration("timeout", 0, "abort the run after this duration, e.g. 30s (0 = no limit)")
		jsonOut      = flag.Bool("json", false, "emit results as JSON (for baseline diffing)")
		csvOut       = flag.Bool("csv", false, "emit results as CSV (for baseline diffing)")
		verbose      = flag.Bool("verbose", false, "print model intermediates and cache statistics")
		traceRun     = flag.Bool("trace", false, "print the run's per-phase span breakdown to stderr")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Var(&grids, "grid", "fabric WxH; repeat to sweep fabrics (-grid 60x60 -grid 90x90)")
	flag.Var(&capacities, "capacity", "channel capacity Nc; repeat to sweep capacities")
	flag.Var(&speeds, "speed", "qubit speed 𝓋; repeat to sweep speeds")
	flag.Parse()
	if flag.NArg() < 1 {
		return fmt.Errorf("usage: leqa [flags] <circuit.qc | benchmark-name | -> [more circuits...]")
	}
	if *jsonOut && *csvOut {
		return fmt.Errorf("-json and -csv are mutually exclusive")
	}
	// Parallelism thresholds: environment first, explicit flags override.
	if err := leqa.ApplyEnvTuning(); err != nil {
		return err
	}
	if *parThresh >= 0 {
		leqa.SetParallelThreshold(*parThresh)
	}
	if *shardThresh >= 0 {
		leqa.SetShardThreshold(*shardThresh)
	}
	// pprof hooks so hot-path regressions can be diagnosed on real
	// workloads in the field without editing the benchmark harness.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "leqa: -memprofile:", err)
			}
			f.Close()
		}()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		// The same cancellation path the leqad service uses: the deadline
		// propagates into SweepGrid, hung cells carry the context error
		// and the run exits non-zero instead of wedging.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Inputs split into materialized circuits and lazy stream sources.
	// When every input is materialized the batch engine runs exactly as
	// before; one streamed input switches the whole run to the source
	// engine (materialized circuits ride along as in-memory streams).
	circuits := make([]*leqa.Circuit, 0, flag.NArg())
	sources := make([]leqa.Source, 0, flag.NArg())
	streaming := false
	for _, arg := range flag.Args() {
		if src, ok, err := streamedInput(arg, *maxMem); err != nil {
			return err
		} else if ok {
			sources = append(sources, src)
			circuits = append(circuits, nil)
			streaming = true
			continue
		}
		c, err := loadOrGenerate(arg)
		if err != nil {
			return err
		}
		if !c.IsFT() {
			if !*doDecompose {
				return fmt.Errorf("circuit %q has non-FT gates; rerun with -decompose", arg)
			}
			c, err = leqa.Decompose(c)
			if err != nil {
				return err
			}
		}
		circuits = append(circuits, c)
		sources = append(sources, leqa.CircuitSource(c))
	}

	// The parameter matrix: grids × capacities × speeds, each axis falling
	// back to its single-value flag when not repeated.
	if len(grids) == 0 {
		grids = gridList{{Width: *width, Height: *height}}
	}
	if len(capacities) == 0 {
		capacities = intList{*nc}
	}
	if len(speeds) == 0 {
		speeds = floatList{*speed}
	}
	base := leqa.DefaultParams()
	base.TMove = *tmove
	paramSets := make([]leqa.Params, 0, len(grids)*len(capacities)*len(speeds))
	for _, g := range grids {
		for _, cap := range capacities {
			for _, v := range speeds {
				p := base.Clone()
				p.Grid = g
				p.ChannelCapacity = cap
				p.QubitSpeed = v
				paramSets = append(paramSets, p)
			}
		}
	}

	opt := leqa.EstimateOptions{Truncation: *truncation, DisableCongestion: *noCongestion}
	runner, err := leqa.NewRunner(paramSets[0], opt, *workers)
	if err != nil {
		return err
	}
	// A store directory turns repeat invocations into "parse once, estimate
	// forever": every input is digested and resolved against the persisted
	// .qca images, so only never-seen circuits pay for analysis. The sources
	// engine carries materialized circuits through the store too.
	storeOpt, err := leqa.StoreOptionsFromEnv(leqa.AnalysisStoreOptions{})
	if err != nil {
		return err
	}
	if *storeDir != "" {
		storeOpt.Dir = *storeDir
	}
	if *storeMem >= 0 {
		storeOpt.MemEntries = *storeMem
	}
	if *storeDisk >= 0 {
		storeOpt.MaxDiskBytes = *storeDisk
	}
	if storeOpt.Dir != "" {
		st, err := leqa.NewAnalysisStore(storeOpt)
		if err != nil {
			return err
		}
		runner.SetAnalysisStore(st)
		streaming = true
	}
	// -trace attaches a request-style trace to the run: the engine records
	// ingest/analyze/estimate spans (with store outcomes and shard counts)
	// exactly as leqad does per request, and the breakdown prints after the
	// results.
	var tr *trace.Trace
	if *traceRun {
		tr = trace.New(trace.Generate())
		ctx = trace.NewContext(ctx, tr)
	}
	var cells []leqa.GridCell
	if streaming {
		cells, err = runner.SweepGridSources(ctx, sources, paramSets)
	} else {
		cells, err = runner.SweepGrid(ctx, circuits, paramSets)
	}
	if tr != nil {
		defer fmt.Fprint(os.Stderr, tr.Breakdown())
	}
	if err != nil {
		return err
	}

	switch {
	case *jsonOut:
		err = firstCellErr(cells, leqa.WriteResultsJSON(os.Stdout, cells))
	case *csvOut:
		err = firstCellErr(cells, leqa.WriteResultsCSV(os.Stdout, cells))
	case len(cells) == 1:
		sr := cells[0]
		if sr.Err != nil {
			return sr.Err
		}
		printDetailed(sr.Name, sr.Result, *verbose)
	default:
		err = printTable(cells, len(paramSets) > 1, *verbose)
	}
	if len(cells) > 1 || *verbose {
		st := leqa.ZoneModelCacheStats()
		fmt.Fprintf(os.Stderr, "zone-model cache: %s\n", st)
	}
	if *verbose {
		if st := runner.AnalysisStore(); st != nil {
			fmt.Fprintf(os.Stderr, "analysis store: %+v\n", st.Stats())
		}
	}
	return err
}

// firstCellErr makes machine-readable runs exit non-zero when any cell
// failed (matching the table path): the emitter error wins, then the first
// per-cell error — which is still present in the emitted records.
func firstCellErr(cells []leqa.GridCell, emitErr error) error {
	if emitErr != nil {
		return emitErr
	}
	for _, cell := range cells {
		if cell.Err != nil {
			return fmt.Errorf("estimating %q: %w", cell.Name, cell.Err)
		}
	}
	return nil
}

func printDetailed(name string, res *leqa.EstimateResult, verbose bool) {
	fmt.Printf("circuit:            %s (%d qubits, %d operations)\n", name, res.Qubits, res.Operations)
	fmt.Printf("estimated latency:  %.6e s (%.1f µs)\n", res.EstimatedLatency/1e6, res.EstimatedLatency)
	if verbose {
		fmt.Printf("B (avg zone area):  %.3f ULBs (side %d)\n", res.AvgZoneArea, res.ZoneSide)
		fmt.Printf("d_uncong:           %.2f µs\n", res.DUncong)
		fmt.Printf("L_CNOT^avg:         %.2f µs\n", res.LCNOTAvg)
		fmt.Printf("L_g^avg:            %.2f µs\n", res.LOneQubitAvg)
		fmt.Printf("critical path:      %d CNOTs + %d one-qubit ops\n",
			res.CriticalCNOTs, res.CriticalOneQubit)
		for q := 1; q < len(res.ESq) && q <= 10; q++ {
			fmt.Printf("  E[S_%-2d] = %10.3f ULBs   d_%-2d = %8.1f µs\n", q, res.ESq[q], q, res.Dq[q])
		}
	}
}

func printTable(cells []leqa.GridCell, multiParams, verbose bool) error {
	if multiParams {
		fmt.Printf("%-20s %9s %4s %8s %7s %10s %14s %12s\n",
			"circuit", "fabric", "Nc", "v", "qubits", "ops", "estimate(s)", "L_CNOT(µs)")
	} else {
		fmt.Printf("%-20s %7s %10s %14s %12s\n", "circuit", "qubits", "ops", "estimate(s)", "L_CNOT(µs)")
	}
	var firstErr error
	for _, sr := range cells {
		if sr.Err != nil {
			fmt.Printf("%-20s error: %v\n", sr.Name, sr.Err)
			if firstErr == nil {
				firstErr = fmt.Errorf("estimating %q: %w", sr.Name, sr.Err)
			}
			continue
		}
		r := sr.Result
		if multiParams {
			fabric := fmt.Sprintf("%dx%d", sr.Params.Grid.Width, sr.Params.Grid.Height)
			fmt.Printf("%-20s %9s %4d %8g %7d %10d %14.4f %12.1f\n",
				sr.Name, fabric, sr.Params.ChannelCapacity, sr.Params.QubitSpeed,
				r.Qubits, r.Operations, r.EstimatedLatency/1e6, r.LCNOTAvg)
		} else {
			fmt.Printf("%-20s %7d %10d %14.4f %12.1f\n",
				sr.Name, r.Qubits, r.Operations, r.EstimatedLatency/1e6, r.LCNOTAvg)
		}
	}
	if verbose {
		for _, sr := range cells {
			if sr.Err != nil {
				continue
			}
			label := sr.Name
			if multiParams {
				label = fmt.Sprintf("%s @ %dx%d Nc=%d v=%g", sr.Name,
					sr.Params.Grid.Width, sr.Params.Grid.Height,
					sr.Params.ChannelCapacity, sr.Params.QubitSpeed)
			}
			fmt.Println()
			printDetailed(label, sr.Result, true)
		}
	}
	return firstErr
}

func loadOrGenerate(arg string) (*leqa.Circuit, error) {
	if _, err := os.Stat(arg); err == nil {
		return leqa.Load(arg)
	}
	return leqa.Generate(arg)
}

// streamedInput reports whether arg should take the streaming ingestion
// path — stdin ("-") always, .qc files above the materialization budget —
// and builds its lazy source.
func streamedInput(arg string, maxMem int64) (leqa.Source, bool, error) {
	if arg == "-" {
		return leqa.ReaderSource("stdin", os.Stdin, leqa.IngestOptions{}), true, nil
	}
	fi, err := os.Stat(arg)
	if err != nil || fi.Size() <= maxMem {
		return leqa.Source{}, false, nil
	}
	return leqa.FileSource(arg, leqa.IngestOptions{}), true, nil
}
