// Command leqa estimates the latency of quantum algorithms mapped to a
// tiled quantum architecture — the paper's Algorithm 1.
//
// Usage:
//
//	leqa [flags] <circuit.qc | benchmark-name> [more circuits...]
//
// Each positional argument is either a .qc netlist file or a generator spec
// such as gf2^16mult, hwb50ps, ham15, 8bitadder, mod1048576adder. With more
// than one circuit the estimates fan out across a worker pool (the
// leqa.Runner sweep engine) and print as a table in argument order.
//
// Flags:
//
//	-width/-height    fabric dimensions (default 60x60, Table 1)
//	-nc               channel capacity (default 5)
//	-v                qubit speed 𝓋 (default 0.001)
//	-tmove            per-hop move time in µs (default 100)
//	-truncation       E[S_q] term limit (default 20; -1 = exact)
//	-no-congestion    disable the M/M/1 congestion model
//	-decompose        lower non-FT gates before estimating
//	-workers          sweep worker-pool size (default GOMAXPROCS)
//	-verbose          print model intermediates
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/leqa"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leqa:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		width        = flag.Int("width", 60, "fabric width (ULB columns)")
		height       = flag.Int("height", 60, "fabric height (ULB rows)")
		nc           = flag.Int("nc", 5, "routing channel capacity Nc")
		speed        = flag.Float64("v", 0.001, "qubit speed 𝓋 (ULB sides per µs)")
		tmove        = flag.Float64("tmove", 100, "per-hop move time T_move (µs)")
		truncation   = flag.Int("truncation", 0, "E[S_q] term limit (0 = paper's 20, -1 = exact)")
		noCongestion = flag.Bool("no-congestion", false, "disable the M/M/1 congestion model")
		doDecompose  = flag.Bool("decompose", true, "lower reversible gates to the FT set first")
		workers      = flag.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
		verbose      = flag.Bool("verbose", false, "print model intermediates")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		return fmt.Errorf("usage: leqa [flags] <circuit.qc | benchmark-name> [more circuits...]")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	circuits := make([]*leqa.Circuit, 0, flag.NArg())
	for _, arg := range flag.Args() {
		c, err := loadOrGenerate(arg)
		if err != nil {
			return err
		}
		if !c.IsFT() {
			if !*doDecompose {
				return fmt.Errorf("circuit %q has non-FT gates; rerun with -decompose", arg)
			}
			c, err = leqa.Decompose(c)
			if err != nil {
				return err
			}
		}
		circuits = append(circuits, c)
	}

	p := leqa.DefaultParams()
	p.Grid = leqa.Grid{Width: *width, Height: *height}
	p.ChannelCapacity = *nc
	p.QubitSpeed = *speed
	p.TMove = *tmove
	opt := leqa.EstimateOptions{Truncation: *truncation, DisableCongestion: *noCongestion}
	runner, err := leqa.NewRunner(p, opt, *workers)
	if err != nil {
		return err
	}
	results, err := runner.Run(ctx, circuits)
	if err != nil {
		return err
	}
	if len(results) == 1 {
		sr := results[0]
		if sr.Err != nil {
			return sr.Err
		}
		printDetailed(sr.Name, sr.Result, *verbose)
		return nil
	}
	return printTable(results, *verbose)
}

func printDetailed(name string, res *leqa.EstimateResult, verbose bool) {
	fmt.Printf("circuit:            %s (%d qubits, %d operations)\n", name, res.Qubits, res.Operations)
	fmt.Printf("estimated latency:  %.6e s (%.1f µs)\n", res.EstimatedLatency/1e6, res.EstimatedLatency)
	if verbose {
		fmt.Printf("B (avg zone area):  %.3f ULBs (side %d)\n", res.AvgZoneArea, res.ZoneSide)
		fmt.Printf("d_uncong:           %.2f µs\n", res.DUncong)
		fmt.Printf("L_CNOT^avg:         %.2f µs\n", res.LCNOTAvg)
		fmt.Printf("L_g^avg:            %.2f µs\n", res.LOneQubitAvg)
		fmt.Printf("critical path:      %d CNOTs + %d one-qubit ops\n",
			res.CriticalCNOTs, res.CriticalOneQubit)
		for q := 1; q < len(res.ESq) && q <= 10; q++ {
			fmt.Printf("  E[S_%-2d] = %10.3f ULBs   d_%-2d = %8.1f µs\n", q, res.ESq[q], q, res.Dq[q])
		}
	}
}

func printTable(results []leqa.SweepResult, verbose bool) error {
	fmt.Printf("%-20s %7s %10s %14s %12s\n", "circuit", "qubits", "ops", "estimate(s)", "L_CNOT(µs)")
	var firstErr error
	for _, sr := range results {
		if sr.Err != nil {
			fmt.Printf("%-20s error: %v\n", sr.Name, sr.Err)
			if firstErr == nil {
				firstErr = fmt.Errorf("estimating %q: %w", sr.Name, sr.Err)
			}
			continue
		}
		r := sr.Result
		fmt.Printf("%-20s %7d %10d %14.4f %12.1f\n",
			sr.Name, r.Qubits, r.Operations, r.EstimatedLatency/1e6, r.LCNOTAvg)
	}
	if verbose {
		for _, sr := range results {
			if sr.Err != nil {
				continue
			}
			fmt.Println()
			printDetailed(sr.Name, sr.Result, true)
		}
	}
	return firstErr
}

func loadOrGenerate(arg string) (*leqa.Circuit, error) {
	if _, err := os.Stat(arg); err == nil {
		return leqa.Load(arg)
	}
	return leqa.Generate(arg)
}
