// Command leqa estimates the latency of a quantum algorithm mapped to a
// tiled quantum architecture — the paper's Algorithm 1.
//
// Usage:
//
//	leqa [flags] <circuit.qc | benchmark-name>
//
// The positional argument is either a .qc netlist file or a generator spec
// such as gf2^16mult, hwb50ps, ham15, 8bitadder, mod1048576adder.
//
// Flags:
//
//	-width/-height    fabric dimensions (default 60x60, Table 1)
//	-nc               channel capacity (default 5)
//	-v                qubit speed 𝓋 (default 0.001)
//	-tmove            per-hop move time in µs (default 100)
//	-truncation       E[S_q] term limit (default 20; -1 = exact)
//	-no-congestion    disable the M/M/1 congestion model
//	-decompose        lower non-FT gates before estimating
//	-verbose          print model intermediates
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchgen"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/decompose"
	"repro/internal/fabric"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leqa:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		width        = flag.Int("width", 60, "fabric width (ULB columns)")
		height       = flag.Int("height", 60, "fabric height (ULB rows)")
		nc           = flag.Int("nc", 5, "routing channel capacity Nc")
		speed        = flag.Float64("v", 0.001, "qubit speed 𝓋 (ULB sides per µs)")
		tmove        = flag.Float64("tmove", 100, "per-hop move time T_move (µs)")
		truncation   = flag.Int("truncation", 0, "E[S_q] term limit (0 = paper's 20, -1 = exact)")
		noCongestion = flag.Bool("no-congestion", false, "disable the M/M/1 congestion model")
		doDecompose  = flag.Bool("decompose", true, "lower reversible gates to the FT set first")
		verbose      = flag.Bool("verbose", false, "print model intermediates")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: leqa [flags] <circuit.qc | benchmark-name>")
	}
	c, err := loadOrGenerate(flag.Arg(0))
	if err != nil {
		return err
	}
	if !c.IsFT() {
		if !*doDecompose {
			return fmt.Errorf("circuit has non-FT gates; rerun with -decompose")
		}
		c, err = decompose.ToFT(c, decompose.Options{})
		if err != nil {
			return err
		}
	}

	p := fabric.Default()
	p.Grid = fabric.Grid{Width: *width, Height: *height}
	p.ChannelCapacity = *nc
	p.QubitSpeed = *speed
	p.TMove = *tmove
	est, err := core.New(p, core.Options{Truncation: *truncation, DisableCongestion: *noCongestion})
	if err != nil {
		return err
	}
	res, err := est.Estimate(c)
	if err != nil {
		return err
	}
	fmt.Printf("circuit:            %s (%d qubits, %d operations)\n", c.Name, res.Qubits, res.Operations)
	fmt.Printf("estimated latency:  %.6e s (%.1f µs)\n", res.EstimatedLatency/1e6, res.EstimatedLatency)
	if *verbose {
		fmt.Printf("B (avg zone area):  %.3f ULBs (side %d)\n", res.AvgZoneArea, res.ZoneSide)
		fmt.Printf("d_uncong:           %.2f µs\n", res.DUncong)
		fmt.Printf("L_CNOT^avg:         %.2f µs\n", res.LCNOTAvg)
		fmt.Printf("L_g^avg:            %.2f µs\n", res.LOneQubitAvg)
		fmt.Printf("critical path:      %d CNOTs + %d one-qubit ops\n",
			res.CriticalCNOTs, res.CriticalOneQubit)
		for q := 1; q < len(res.ESq) && q <= 10; q++ {
			fmt.Printf("  E[S_%-2d] = %10.3f ULBs   d_%-2d = %8.1f µs\n", q, res.ESq[q], q, res.Dq[q])
		}
	}
	return nil
}

func loadOrGenerate(arg string) (*circuit.Circuit, error) {
	if _, err := os.Stat(arg); err == nil {
		return circuit.LoadQCFile(arg)
	}
	return benchgen.Generate(arg)
}
