package main

import (
	"bytes"
	"context"
	"os"
	"testing"

	"repro/leqa"
)

// TestGoldenBaselineCSV regenerates testdata/golden_baseline.csv through
// the exact pipeline `leqa -csv -grid 16x16 -grid 24x24 -capacity 3
// -capacity 5 ham7 4bitadder mod16adder` uses (generate → decompose →
// SweepGrid → WriteResultsCSV) and fails on any drift — the in-tree guard
// behind CI's baseline-diff step. Regenerate the file with that command if
// an estimator change is intentional.
func TestGoldenBaselineCSV(t *testing.T) {
	names := []string{"ham7", "4bitadder", "mod16adder"}
	circuits := make([]*leqa.Circuit, len(names))
	for i, name := range names {
		raw, err := leqa.Generate(name)
		if err != nil {
			t.Fatal(err)
		}
		if circuits[i], err = leqa.Decompose(raw); err != nil {
			t.Fatal(err)
		}
	}

	// The CLI's matrix order: grids outermost, then capacities, speeds.
	base := leqa.DefaultParams()
	var paramSets []leqa.Params
	for _, g := range []leqa.Grid{{Width: 16, Height: 16}, {Width: 24, Height: 24}} {
		for _, nc := range []int{3, 5} {
			p := base.Clone()
			p.Grid = g
			p.ChannelCapacity = nc
			paramSets = append(paramSets, p)
		}
	}

	runner, err := leqa.NewRunner(paramSets[0], leqa.EstimateOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := runner.SweepGrid(context.Background(), circuits, paramSets)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := leqa.WriteResultsCSV(&buf, cells); err != nil {
		t.Fatal(err)
	}

	want, err := os.ReadFile("testdata/golden_baseline.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("golden baseline drifted; if intentional, regenerate with\n"+
			"  go run ./cmd/leqa -csv -grid 16x16 -grid 24x24 -capacity 3 -capacity 5 ham7 4bitadder mod16adder > cmd/leqa/testdata/golden_baseline.csv\n"+
			"got:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
