// Command qodgdump prints the quantum operation dependency graph (QODG) of
// a circuit in Graphviz DOT form — regenerating the paper's Fig. 2(b).
//
// Usage:
//
//	qodgdump [-iig] <circuit.qc | benchmark-name>
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchgen"
	"repro/internal/circuit"
	"repro/internal/decompose"
	"repro/internal/iig"
	"repro/internal/qodg"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qodgdump:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dumpIIG = flag.Bool("iig", false, "dump the interaction intensity graph instead")
		lowerFT = flag.Bool("ft", true, "lower to the FT gate set first (Fig. 2 shows the FT netlist)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: qodgdump [-iig] <circuit.qc | benchmark-name>")
	}
	arg := flag.Arg(0)
	var c *circuit.Circuit
	var err error
	if _, statErr := os.Stat(arg); statErr == nil {
		c, err = circuit.LoadQCFile(arg)
	} else {
		c, err = benchgen.Generate(arg)
	}
	if err != nil {
		return err
	}
	if *lowerFT && !c.IsFT() {
		c, err = decompose.ToFT(c, decompose.Options{})
		if err != nil {
			return err
		}
	}
	if *dumpIIG {
		ig, err := iig.Build(c)
		if err != nil {
			return err
		}
		fmt.Printf("graph %q {\n", c.Name+"_iig")
		for _, e := range ig.Edges() {
			fmt.Printf("  q%d -- q%d [label=\"%d\"];\n", e.A, e.B, e.Weight)
		}
		fmt.Println("}")
		return nil
	}
	g, err := qodg.Build(c)
	if err != nil {
		return err
	}
	return g.WriteDOT(os.Stdout, c.Name)
}
