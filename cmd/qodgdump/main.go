// Command qodgdump prints a circuit's analysis graphs in Graphviz DOT form:
// the quantum operation dependency graph (QODG, regenerating the paper's
// Fig. 2b) and/or the interaction intensity graph (IIG).
//
// Usage:
//
//	qodgdump [-iig] [-both] <circuit.qc | benchmark-name>
//
// By default only the QODG is dumped; -iig dumps only the IIG. Each graph
// is built only when its output is requested — and when both are (-both),
// the fused analysis layer builds the pair in a single pass.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/benchgen"
	"repro/internal/circuit"
	"repro/internal/decompose"
	"repro/internal/iig"
	"repro/internal/qodg"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qodgdump:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dumpIIG = flag.Bool("iig", false, "dump the interaction intensity graph instead")
		both    = flag.Bool("both", false, "dump QODG and IIG (one fused analysis pass)")
		lowerFT = flag.Bool("ft", true, "lower to the FT gate set first (Fig. 2 shows the FT netlist)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: qodgdump [-iig] [-both] <circuit.qc | benchmark-name>")
	}
	arg := flag.Arg(0)
	var c *circuit.Circuit
	var err error
	if _, statErr := os.Stat(arg); statErr == nil {
		c, err = circuit.LoadQCFile(arg)
	} else {
		c, err = benchgen.Generate(arg)
	}
	if err != nil {
		return err
	}
	if *lowerFT && !c.IsFT() {
		c, err = decompose.ToFT(c, decompose.Options{})
		if err != nil {
			return err
		}
	}

	wantQODG := !*dumpIIG || *both
	wantIIG := *dumpIIG || *both

	// Build only what will be printed; a combined request shares one pass.
	var g *qodg.Graph
	var ig *iig.Graph
	switch {
	case wantQODG && wantIIG:
		a, err := analysis.Analyze(c)
		if err != nil {
			return err
		}
		g, ig = a.QODG, a.IIG
	case wantQODG:
		if g, err = qodg.Build(c); err != nil {
			return err
		}
	default:
		if ig, err = iig.Build(c); err != nil {
			return err
		}
	}

	if wantQODG {
		if err := g.WriteDOT(os.Stdout, c.Name); err != nil {
			return err
		}
	}
	if wantIIG {
		fmt.Printf("graph %q {\n", c.Name+"_iig")
		for _, e := range ig.Edges() {
			fmt.Printf("  q%d -- q%d [label=\"%d\"];\n", e.A, e.B, e.Weight)
		}
		fmt.Println("}")
	}
	return nil
}
