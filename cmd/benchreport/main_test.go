package main

import "testing"

func TestParseBenchOutput(t *testing.T) {
	const text = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEstimateWarm/Arena/gf2_128mult         	      42	  25443100 ns/op	   27984 B/op	       6 allocs/op
BenchmarkLongestPath/Serial/gf2_128mult-8       	     100	   1766999 ns/op	 3976000 B/op	       5 allocs/op
BenchmarkTable3Full/ham7                        	       1	    123456 ns/op	         3.14 speedup	         2.11 err%
PASS
ok  	repro	0.257s
`
	got, err := parseBenchOutput(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(got), got)
	}
	b0 := got[0]
	if b0.Name != "BenchmarkEstimateWarm/Arena/gf2_128mult" || b0.Iterations != 42 ||
		b0.NsPerOp != 25443100 || b0.BytesPerOp != 27984 || b0.AllocsPerOp != 6 {
		t.Errorf("benchmark 0 parsed wrong: %+v", b0)
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	if got[1].Name != "BenchmarkLongestPath/Serial/gf2_128mult" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", got[1].Name)
	}
	m := got[2].Metrics
	if m["speedup"] != 3.14 || m["err%"] != 2.11 {
		t.Errorf("custom metrics parsed wrong: %+v", m)
	}
}

func TestParseBenchOutputRejectsGarbageMetrics(t *testing.T) {
	if _, err := parseBenchOutput("BenchmarkX 10 abc ns/op"); err == nil {
		t.Error("garbage metric value parsed without error")
	}
}
