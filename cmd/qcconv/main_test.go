package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/circuit"
	"repro/internal/ingest"
	"repro/internal/qcbin"
)

const testQC = ".v a b c\n.i a b c\nBEGIN\nH a\nCNOT a b\nT c\nCNOT b c\nEND\n"

func TestOutputFormat(t *testing.T) {
	cases := []struct {
		path, to string
		gz       bool
		format   string
		wantGz   bool
		wantErr  bool
	}{
		{path: "x.qcb", format: "qcb"},
		{path: "x.qc", format: "qc"},
		{path: "x.qcb.gz", format: "qcb", wantGz: true},
		{path: "x.qc.gz", format: "qc", wantGz: true},
		{path: "x.qc", gz: true, format: "qc", wantGz: true},
		{path: "-", to: "qcb", format: "qcb"},
		{path: "weird.bin", to: "qc", format: "qc"},
		{path: "-", wantErr: true},
		{path: "weird.bin", wantErr: true},
		{path: "x.qcb", to: "elf", wantErr: true},
	}
	for _, c := range cases {
		format, gz, err := outputFormat(c.path, c.to, c.gz)
		if c.wantErr {
			if err == nil {
				t.Errorf("outputFormat(%q, %q, %v): want error, got %q", c.path, c.to, c.gz, format)
			}
			continue
		}
		if err != nil {
			t.Errorf("outputFormat(%q, %q, %v): %v", c.path, c.to, c.gz, err)
			continue
		}
		if format != c.format || gz != c.wantGz {
			t.Errorf("outputFormat(%q, %q, %v) = (%q, %v), want (%q, %v)",
				c.path, c.to, c.gz, format, gz, c.format, c.wantGz)
		}
	}
}

// TestEncodeRoundTrip drives the conversion core through every output
// container and checks each re-reads to the source's content digest.
func TestEncodeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "tiny.qc")
	if err := os.WriteFile(src, []byte(testQC), 0o644); err != nil {
		t.Fatal(err)
	}
	parsed, err := circuit.ParseQC(bytes.NewReader([]byte(testQC)), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	want, err := qcbin.DigestCircuit(parsed)
	if err != nil {
		t.Fatal(err)
	}

	for _, c := range []struct {
		out    string
		format string
		gz     bool
	}{
		{"out.qcb", "qcb", false},
		{"out.qcb.gz", "qcb", true},
		{"out2.qc", "qc", false},
		{"out2.qc.gz", "qc", true},
	} {
		sc, err := ingest.Open(src, ingest.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var mat *circuit.Circuit
		if c.format == "qc" {
			if mat, err = sc.Materialize(); err != nil {
				t.Fatal(err)
			}
		}
		outPath := filepath.Join(dir, c.out)
		f, err := os.Create(outPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := encode(f, c.format, c.gz, sc, mat); err != nil {
			t.Fatalf("encode %s: %v", c.out, err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		sc.Close()

		got, gates, err := digestFile(outPath, "tiny")
		if err != nil {
			t.Fatalf("digestFile %s: %v", c.out, err)
		}
		if got != want {
			t.Errorf("%s: digest %s, want %s", c.out, got, want)
		}
		if gates != parsed.NumGates() {
			t.Errorf("%s: %d gates, want %d", c.out, gates, parsed.NumGates())
		}
	}
}
