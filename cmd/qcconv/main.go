// Command qcconv converts quantum netlists between LEQA's containers: the
// textual .qc format and the compact binary .qcb format (typically 5–10×
// smaller, and parsed without tokenization), either side gzip-wrapped.
//
// Usage:
//
//	qcconv [flags] <input> <output>
//
// The input container is sniffed by magic bytes — .qc text, binary .qcb, or
// either gzipped — never by file name; "-" reads stdin. The output format is
// inferred from the output suffix (.qcb[.gz] → binary, .qc[.gz] → text) or
// forced with -to; "-" writes stdout. Text → binary conversion streams gate
// by gate in O(1) memory; conversions that emit text (or rename the circuit)
// materialize the gate list first.
//
// Flags:
//
//	-to qc|qcb   output format when the suffix doesn't say (required for "-")
//	-gzip        gzip-wrap the output (implied by a .gz output suffix)
//	-name NAME   override the circuit name recorded in the output; the name
//	             is part of the content digest, so this changes the digest
//	-verify      re-open the written file and check its content digest
//	             matches the source — a bitwise round-trip guarantee
//	             (text .qc output carries no name in the container, so the
//	             re-read happens under the source circuit's name)
//
// The content digest (sha256 of the canonical gate records) is container
// independent, so a -verify'd conversion stores and estimates identically to
// its source: PUT either file to leqad and the store replies with the same
// sha256:... reference.
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/circuit"
	"repro/internal/ingest"
	"repro/internal/qcbin"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qcconv:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		to     = flag.String("to", "", "output format: qc or qcb (default: inferred from the output suffix)")
		gz     = flag.Bool("gzip", false, "gzip-wrap the output (implied by a .gz output suffix)")
		name   = flag.String("name", "", "override the circuit name recorded in the output (changes the content digest)")
		verify = flag.Bool("verify", false, "re-open the output and check its content digest matches the source")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		return fmt.Errorf("usage: qcconv [flags] <input> <output>  (either may be \"-\")")
	}
	inPath, outPath := flag.Arg(0), flag.Arg(1)
	format, gzOut, err := outputFormat(outPath, *to, *gz)
	if err != nil {
		return err
	}
	if *verify && outPath == "-" {
		return fmt.Errorf("-verify needs a re-readable output file, not stdout")
	}

	var sc ingest.Stream
	if inPath == "-" {
		sc, err = ingest.NewAutoStream(os.Stdin, "stdin", ingest.Options{})
	} else {
		sc, err = ingest.Open(inPath, ingest.Options{})
	}
	if err != nil {
		return err
	}
	defer sc.Close()

	// Text output and renames need the materialized gate list; binary
	// output without a rename streams straight through the encoder.
	var mat *circuit.Circuit
	if format == "qc" || *name != "" {
		if mat, err = sc.Materialize(); err != nil {
			return err
		}
		if *name != "" {
			mat.Name = *name
		}
	}

	// The digest the -verify pass must find in the written file. Computed
	// before encoding: qcbin.Encode rewinds the stream itself, so leaving
	// it at end-of-stream here is fine.
	var want string
	if *verify {
		if mat != nil {
			want, err = qcbin.DigestCircuit(mat)
		} else {
			want, err = qcbin.Digest(sc)
		}
		if err != nil {
			return err
		}
	}

	var w io.Writer = os.Stdout
	var outFile *os.File
	if outPath != "-" {
		if outFile, err = os.Create(outPath); err != nil {
			return err
		}
		w = outFile
	}
	cw := &countingWriter{w: w}
	if err := encode(cw, format, gzOut, sc, mat); err != nil {
		if outFile != nil {
			outFile.Close()
			os.Remove(outPath)
		}
		return err
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			return err
		}
	}

	gates := sc.GateIndex() + 1
	qubits := sc.NumQubits()
	srcName := sc.Name()
	if mat != nil {
		gates, qubits, srcName = mat.NumGates(), mat.NumQubits(), mat.Name
	}
	fmt.Fprintf(os.Stderr, "qcconv: wrote %s: %d qubits, %d gates, %d bytes\n", outPath, qubits, gates, cw.n)

	if *verify {
		got, gotGates, err := digestFile(outPath, srcName)
		if err != nil {
			return fmt.Errorf("verify: %w", err)
		}
		if got != want {
			return fmt.Errorf("verify: round-trip digest mismatch: source %s, output %s", qcbin.FormatRef(want), qcbin.FormatRef(got))
		}
		if gotGates != gates {
			return fmt.Errorf("verify: round-trip gate count mismatch: source %d, output %d", gates, gotGates)
		}
		fmt.Fprintf(os.Stderr, "qcconv: verified %s\n", qcbin.FormatRef(got))
	}
	return nil
}

// encode writes the circuit to w in the requested format, gzip-wrapping
// when asked. Streaming (src) is used for binary output unless a
// materialized circuit was prepared.
func encode(w io.Writer, format string, gzOut bool, src ingest.Stream, mat *circuit.Circuit) error {
	if gzOut {
		zw := gzip.NewWriter(w)
		if err := encode(zw, format, false, src, mat); err != nil {
			return err
		}
		return zw.Close()
	}
	switch {
	case format == "qc":
		return circuit.WriteQC(w, mat)
	case mat != nil:
		return qcbin.EncodeCircuit(w, mat)
	default:
		return qcbin.Encode(w, src)
	}
}

// digestFile sniffs path and computes its content digest and gate count.
// The caller supplies the fallback circuit name: a textual .qc container
// carries no name, so re-reading it under the path-derived name would
// change the digest even though the gate content round-tripped.
func digestFile(path, name string) (digest string, gates int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	sc, err := ingest.NewAutoStream(f, name, ingest.Options{})
	if err != nil {
		return "", 0, err
	}
	defer sc.Close()
	d, err := qcbin.Digest(sc)
	if err != nil {
		return "", 0, err
	}
	return d, sc.GateIndex() + 1, nil
}

// outputFormat resolves the output container from the path suffix, the -to
// override and the -gzip flag.
func outputFormat(path, to string, gz bool) (string, bool, error) {
	p := path
	if strings.HasSuffix(p, ".gz") {
		gz = true
		p = strings.TrimSuffix(p, ".gz")
	}
	if to == "" {
		switch {
		case strings.HasSuffix(p, ".qcb"):
			to = "qcb"
		case strings.HasSuffix(p, ".qc"):
			to = "qc"
		case path == "-":
			return "", false, fmt.Errorf("-to qc|qcb is required when writing to stdout")
		default:
			return "", false, fmt.Errorf("cannot infer the output format from %q; pass -to qc|qcb", path)
		}
	}
	if to != "qc" && to != "qcb" {
		return "", false, fmt.Errorf("-to %q: want qc or qcb", to)
	}
	return to, gz, nil
}

// countingWriter counts the bytes reaching the output file or stdout.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
