// Command leqaload is the leqad load harness: an open-loop, mixed-workload
// generator that drives a running server through its public API, scrapes
// /metrics while doing so, and emits a JSON SLO report tying the two views
// together — achieved RPS, client-side percentiles per endpoint, the
// server's windowed percentiles and memo/store hit rates, and a verdict per
// configured SLO clause. It exists to prove (or refute) latency objectives
// from the server's own telemetry, with the client-side measurements as the
// independent check.
//
// Usage:
//
//	leqaload [flags]
//	leqaload -healthz            pretty-print the server's /healthz (incl. slo block) and exit
//
// The generator is open-loop: request start times are scheduled from the
// target rate, not from completions, so a slow server accrues outstanding
// work (bounded by -max-outstanding; sheds past it are counted, keeping the
// schedule honest rather than silently degrading to closed-loop). A run is
// a linear ramp (0 → -rps over -ramp) followed by a steady phase (-steady
// at -rps). The workload mix is weighted across four request kinds:
//
//	estimate  POST /v1/estimate of a generated circuit (JSON spec)
//	sweep     POST /v1/sweep, -sweep-size circuits, NDJSON rows consumed
//	grid      POST /v1/grid, circuits × 2 parameter sets, NDJSON rows consumed
//	byref     POST /v1/estimate by stored-circuit digest (uploaded once at startup)
//
// SLO clauses on the server (leqad -slo) are read back from /healthz and
// reported per clause; -slo adds client-side clauses evaluated against the
// harness's own measurements. The agreement check compares the server's
// windowed p99 per endpoint against the client-side steady-phase p99 and
// flags divergence beyond -agree.
//
// The run is context-cancellable: SIGINT/SIGTERM stops scheduling, drains
// outstanding requests briefly, and emits the report for the traffic that
// ran.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/telemetry"
	"repro/leqa"
	"repro/leqa/client"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leqaload:", err)
		os.Exit(1)
	}
}

// mixEntry is one weighted workload kind.
type mixEntry struct {
	kind   string
	weight int
}

var mixKinds = map[string]bool{"estimate": true, "sweep": true, "grid": true, "byref": true}

// parseMix parses "estimate=6,sweep=2,grid=1,byref=3".
func parseMix(s string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, w, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want kind=weight", part)
		}
		if !mixKinds[kind] {
			return nil, fmt.Errorf("mix entry %q: unknown kind (want estimate, sweep, grid, byref)", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(w))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("mix entry %q: bad weight", part)
		}
		if n > 0 {
			mix = append(mix, mixEntry{kind: kind, weight: n})
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty workload mix %q", s)
	}
	return mix, nil
}

// pickKind draws one workload kind by weight.
func pickKind(rng *rand.Rand, mix []mixEntry, total int) string {
	n := rng.Intn(total)
	for _, m := range mix {
		if n < m.weight {
			return m.kind
		}
		n -= m.weight
	}
	return mix[len(mix)-1].kind
}

// sample is one finished request, as the client saw it.
type sample struct {
	kind     string
	endpoint string // server /metrics endpoint label the request lands on
	start    time.Time
	dur      time.Duration
	rows     int
	err      error
	status   int // 0 when no HTTP status was involved (transport error)
}

// percentile is the exact nearest-rank percentile over sorted samples.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// EndpointReport is one endpoint's client/server latency comparison.
type EndpointReport struct {
	Sent   uint64 `json:"sent"`
	OK     uint64 `json:"ok"`
	Errors uint64 `json:"errors"`
	Rows   uint64 `json:"rows"`
	// Client-side percentiles (milliseconds) over successful requests:
	// whole run, and the steady phase alone.
	ClientP50Ms float64 `json:"clientP50Ms"`
	ClientP90Ms float64 `json:"clientP90Ms"`
	ClientP99Ms float64 `json:"clientP99Ms"`
	SteadyCount uint64  `json:"steadyCount"`
	SteadyP50Ms float64 `json:"steadyP50Ms"`
	SteadyP99Ms float64 `json:"steadyP99Ms"`
	// Server-side windowed percentiles from the final /metrics scrape.
	ServerWindowCount uint64  `json:"serverWindowCount"`
	ServerP50Ms       float64 `json:"serverP50Ms"`
	ServerP99Ms       float64 `json:"serverP99Ms"`
	// P99Divergence = |steady client p99 − server window p99| / server p99;
	// AgreementChecked is false when either side had too few samples.
	P99Divergence    float64 `json:"p99Divergence"`
	AgreementChecked bool    `json:"agreementChecked"`
	AgreementOK      bool    `json:"agreementOk"`
}

// ClauseReport is one SLO clause's verdict in the report.
type ClauseReport struct {
	Clause          string  `json:"clause"`
	Source          string  `json:"source"` // "server" (healthz) or "client" (-slo)
	Current         float64 `json:"current"`
	Limit           float64 `json:"limit"`
	HasData         bool    `json:"hasData"`
	Compliant       bool    `json:"compliant"`
	ComplianceRatio float64 `json:"complianceRatio,omitempty"`
	Breaches        uint64  `json:"breaches,omitempty"`
	Verdict         string  `json:"verdict"` // "pass", "breached", "no-data"
}

// Report is the harness's JSON output.
type Report struct {
	Addr        string   `json:"addr"`
	Mix         string   `json:"mix"`
	TargetRPS   float64  `json:"targetRps"`
	RampSec     float64  `json:"rampSec"`
	SteadySec   float64  `json:"steadySec"`
	ElapsedSec  float64  `json:"elapsedSec"`
	Scheduled   uint64   `json:"scheduled"`
	Shed        uint64   `json:"shed"`
	Completed   uint64   `json:"completed"`
	Failures    uint64   `json:"failures"`
	AchievedRPS float64  `json:"achievedRps"`
	Canceled    bool     `json:"canceled,omitempty"`
	Warnings    []string `json:"warnings,omitempty"`

	Endpoints map[string]*EndpointReport `json:"endpoints"`

	Server struct {
		Version          string             `json:"version"`
		Status           string             `json:"status"`
		Degraded         bool               `json:"degraded"`
		WindowSec        float64            `json:"windowSec"`
		Throttled        map[string]float64 `json:"throttled"`
		ResultMemoHit    float64            `json:"resultMemoHitRate"`
		AnalysisStoreHit float64            `json:"analysisStoreHitRate"`
		QueueWaitP50Ms   float64            `json:"queueWaitP50Ms"`
	} `json:"server"`

	SLO []ClauseReport `json:"slo"`

	// AgreementOK is false when any checked endpoint diverged beyond the
	// tolerance; AllServerClausesPass when every server clause with data
	// was compliant at the end of the run.
	AgreementOK          bool `json:"agreementOk"`
	AllServerClausesPass bool `json:"allServerClausesPass"`
}

func run() error {
	var (
		addr     = flag.String("addr", "http://localhost:8347", "leqad base URL")
		rps      = flag.Float64("rps", 20, "steady-phase request rate")
		ramp     = flag.Duration("ramp", 5*time.Second, "linear ramp 0 → -rps")
		steady   = flag.Duration("steady", 15*time.Second, "steady phase at -rps")
		mixSpec  = flag.String("mix", "estimate=6,sweep=2,grid=1,byref=3", "weighted workload mix: estimate, sweep, grid, byref")
		circuit  = flag.String("circuit", "ham7", "generator spec driven through every workload kind")
		sweepN   = flag.Int("sweep-size", 4, "circuits per sweep/grid batch")
		maxOut   = flag.Int("max-outstanding", 256, "outstanding-request bound; scheduled fires past it are shed (and counted)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		scrape   = flag.Duration("scrape", 2*time.Second, "/metrics scrape interval during the run")
		agree    = flag.Float64("agree", 0.15, "max client/server p99 divergence on the steady phase (0 disables the check)")
		agreeFl  = flag.Duration("agree-floor", 5*time.Millisecond, "absolute divergence always tolerated — client-side overhead (serialization, RTT) is additive and dwarfs sub-ms handler times")
		sloSpec  = flag.String("slo", "", `client-side SLO clauses evaluated against harness measurements, e.g. "estimate:p99<250ms"`)
		seed     = flag.Int64("seed", 1, "workload-mix random seed")
		wait     = flag.Duration("wait", 10*time.Second, "wait up to this long for the server to answer /healthz before starting")
		healthz  = flag.Bool("healthz", false, "fetch /healthz, pretty-print it (incl. slo block) and exit")
		failFast = flag.Bool("fail-on-breach", false, "exit nonzero when a server SLO clause ends the run breached or the agreement check fails")
	)
	flag.Parse()

	hc := &http.Client{Timeout: *timeout}
	cli := client.New(*addr, hc)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *healthz {
		return printHealthz(ctx, cli)
	}

	mix, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}
	mixTotal := 0
	needRef := false
	for _, m := range mix {
		mixTotal += m.weight
		needRef = needRef || m.kind == "byref"
	}
	var clientClauses []telemetry.Clause
	if *sloSpec != "" {
		if clientClauses, err = telemetry.ParseSLO(*sloSpec); err != nil {
			return err
		}
	}

	// Wait for the server, then set up the by-ref workload: generate the
	// circuit once, upload it, and estimate by digest from then on.
	if err := waitForServer(ctx, cli, *wait); err != nil {
		return err
	}
	ref := ""
	if needRef {
		c, err := leqa.GenerateFT(*circuit)
		if err != nil {
			return fmt.Errorf("generating %q for the by-ref workload: %w", *circuit, err)
		}
		var buf bytes.Buffer
		if err := leqa.WriteQCB(&buf, c); err != nil {
			return err
		}
		info, err := cli.PutCircuit(ctx, *circuit, &buf)
		if err != nil {
			return fmt.Errorf("uploading the by-ref circuit: %w", err)
		}
		ref = info.Digest
		fmt.Fprintf(os.Stderr, "leqaload: by-ref workload uses %s (%d ops)\n", ref, info.Operations)
	}

	// Scraper: poll /metrics through the run; the last successful scrape is
	// the server-side view the report compares against.
	var scrapeMu sync.Mutex
	var lastScrape telemetry.PromMetrics
	var scrapeErrs uint64
	scrapeOnce := func() {
		m, err := scrapeMetrics(ctx, hc, *addr)
		if err != nil {
			atomic.AddUint64(&scrapeErrs, 1)
			return
		}
		scrapeMu.Lock()
		lastScrape = m
		scrapeMu.Unlock()
	}
	scrapeDone := make(chan struct{})
	scrapeStop := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		t := time.NewTicker(*scrape)
		defer t.Stop()
		for {
			select {
			case <-scrapeStop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				scrapeOnce()
			}
		}
	}()

	// The open-loop generator. Fire times integrate the rate function:
	// during the ramp the rate grows linearly to rps, so the i-th request
	// fires at sqrt(2·ramp·i/rps); in steady state every 1/rps.
	rng := rand.New(rand.NewSource(*seed))
	var (
		mu        sync.Mutex
		samples   []sample
		wg        sync.WaitGroup
		outs      atomic.Int64
		scheduled uint64
		shed      uint64
	)
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}
	start := time.Now()
	rampEnd := start.Add(*ramp)
	end := rampEnd.Add(*steady)
	canceled := false
	for i := 0; ; i++ {
		var fireAt time.Time
		rampCount := *rps * ramp.Seconds() / 2
		if float64(i) < rampCount {
			dt := math.Sqrt(2 * ramp.Seconds() * float64(i) / *rps)
			fireAt = start.Add(time.Duration(dt * float64(time.Second)))
		} else {
			dt := (float64(i) - rampCount) / *rps
			fireAt = rampEnd.Add(time.Duration(dt * float64(time.Second)))
		}
		if fireAt.After(end) {
			break
		}
		if d := time.Until(fireAt); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			canceled = true
			break
		}
		scheduled++
		if outs.Load() >= int64(*maxOut) {
			shed++
			continue
		}
		kind := pickKind(rng, mix, mixTotal)
		outs.Add(1)
		wg.Add(1)
		go func(kind string) {
			defer wg.Done()
			defer outs.Add(-1)
			record(issue(ctx, cli, kind, *circuit, ref, *sweepN))
		}(kind)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Final server view: one last scrape (after the traffic fully landed)
	// and the healthz slo block.
	close(scrapeStop)
	<-scrapeDone
	scrapeOnce()
	scrapeMu.Lock()
	final := lastScrape
	scrapeMu.Unlock()
	health, herr := cli.Health(ctx)

	rep := buildReport(reportInputs{
		addr: *addr, mix: *mixSpec, rps: *rps, ramp: *ramp, steady: *steady,
		elapsed: elapsed, rampEnd: rampEnd, scheduled: scheduled, shed: shed,
		canceled: canceled, agree: *agree, agreeFloorMs: agreeFl.Seconds() * 1e3,
		samples: samples, metrics: final,
		health: health, clientClauses: clientClauses,
	})
	if herr != nil {
		rep.Warnings = append(rep.Warnings, fmt.Sprintf("final healthz fetch failed: %v", herr))
	}
	if n := atomic.LoadUint64(&scrapeErrs); n > 0 {
		rep.Warnings = append(rep.Warnings, fmt.Sprintf("%d /metrics scrapes failed", n))
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if *failFast && (!rep.AgreementOK || !rep.AllServerClausesPass) {
		return fmt.Errorf("SLO gate failed: agreement=%v serverClauses=%v", rep.AgreementOK, rep.AllServerClausesPass)
	}
	return nil
}

// waitForServer polls /healthz until the server answers (any status payload
// counts — a degraded server is still up) or the budget runs out.
func waitForServer(ctx context.Context, cli *client.Client, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		if _, err := cli.Health(ctx); err == nil {
			return nil
		} else if time.Now().After(deadline) {
			return fmt.Errorf("server not reachable within %s: %w", budget, err)
		}
		select {
		case <-time.After(200 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// issue sends one request of the given kind and reports how it went.
func issue(ctx context.Context, cli *client.Client, kind, circuit, ref string, sweepN int) sample {
	s := sample{kind: kind, start: time.Now()}
	var rows int
	var err error
	switch kind {
	case "estimate":
		s.endpoint = "estimate"
		_, err = cli.Estimate(ctx, client.EstimateRequest{CircuitSpec: client.CircuitSpec{Generate: circuit}})
		if err == nil {
			rows = 1
		}
	case "byref":
		s.endpoint = "estimate"
		_, err = cli.Estimate(ctx, client.EstimateRequest{CircuitSpec: client.CircuitSpec{Ref: ref}})
		if err == nil {
			rows = 1
		}
	case "sweep":
		s.endpoint = "sweep"
		specs := make([]client.CircuitSpec, sweepN)
		for i := range specs {
			specs[i] = client.CircuitSpec{Generate: circuit}
		}
		err = cli.Sweep(ctx, client.SweepRequest{Circuits: specs}, func(leqa.ResultRecord) error {
			rows++
			return nil
		})
	case "grid":
		s.endpoint = "grid"
		specs := make([]client.CircuitSpec, sweepN)
		for i := range specs {
			specs[i] = client.CircuitSpec{Generate: circuit}
		}
		nc1, nc2 := 5, 8
		err = cli.Grid(ctx, client.GridRequest{
			Circuits:  specs,
			ParamSets: []client.ParamSpec{{ChannelCapacity: &nc1}, {ChannelCapacity: &nc2}},
		}, func(leqa.ResultRecord) error {
			rows++
			return nil
		})
	}
	s.dur = time.Since(s.start)
	s.rows = rows
	s.err = err
	var apiErr *client.APIError
	if err != nil {
		if ok := asAPIError(err, &apiErr); ok {
			s.status = apiErr.StatusCode
		}
	}
	return s
}

// asAPIError unwraps a client.APIError without importing errors twice.
func asAPIError(err error, target **client.APIError) bool {
	for err != nil {
		if e, ok := err.(*client.APIError); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// scrapeMetrics fetches and parses one /metrics exposition.
func scrapeMetrics(ctx context.Context, hc *http.Client, addr string) (telemetry.PromMetrics, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %d", resp.StatusCode)
	}
	return telemetry.ParseProm(resp.Body)
}

type reportInputs struct {
	addr, mix     string
	rps           float64
	ramp, steady  time.Duration
	elapsed       time.Duration
	rampEnd       time.Time
	scheduled     uint64
	shed          uint64
	canceled      bool
	agree         float64
	agreeFloorMs  float64
	samples       []sample
	metrics       telemetry.PromMetrics
	health        *client.Health
	clientClauses []telemetry.Clause
}

// buildReport assembles the JSON report from the client-side samples, the
// final /metrics scrape and the healthz slo block.
func buildReport(in reportInputs) *Report {
	rep := &Report{
		Addr: in.addr, Mix: in.mix, TargetRPS: in.rps,
		RampSec: in.ramp.Seconds(), SteadySec: in.steady.Seconds(),
		ElapsedSec: in.elapsed.Seconds(), Scheduled: in.scheduled,
		Shed: in.shed, Canceled: in.canceled,
		Endpoints:   map[string]*EndpointReport{},
		AgreementOK: true,
	}
	rep.Server.Throttled = map[string]float64{}

	byEndpoint := map[string][]sample{}
	for _, s := range in.samples {
		rep.Completed++
		if s.err != nil {
			rep.Failures++
		}
		byEndpoint[s.endpoint] = append(byEndpoint[s.endpoint], s)
	}
	if in.elapsed > 0 {
		rep.AchievedRPS = float64(rep.Completed) / in.elapsed.Seconds()
	}

	const minAgreeSamples = 20
	for ep, ss := range byEndpoint {
		er := &EndpointReport{}
		var all, steadyOnly []time.Duration
		for _, s := range ss {
			er.Sent++
			er.Rows += uint64(s.rows)
			if s.err != nil {
				er.Errors++
				continue
			}
			er.OK++
			all = append(all, s.dur)
			if s.start.After(in.rampEnd) {
				steadyOnly = append(steadyOnly, s.dur)
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		sort.Slice(steadyOnly, func(i, j int) bool { return steadyOnly[i] < steadyOnly[j] })
		const ms = 1e3
		er.ClientP50Ms = percentile(all, 0.50).Seconds() * ms
		er.ClientP90Ms = percentile(all, 0.90).Seconds() * ms
		er.ClientP99Ms = percentile(all, 0.99).Seconds() * ms
		er.SteadyCount = uint64(len(steadyOnly))
		er.SteadyP50Ms = percentile(steadyOnly, 0.50).Seconds() * ms
		er.SteadyP99Ms = percentile(steadyOnly, 0.99).Seconds() * ms

		if in.metrics != nil {
			lbl := map[string]string{"endpoint": ep}
			if v, ok := in.metrics.Value("leqad_request_latency_window_seconds_count", lbl); ok {
				er.ServerWindowCount = uint64(v)
			}
			if v, ok := in.metrics.Value("leqad_request_latency_window_seconds", map[string]string{"endpoint": ep, "quantile": "0.5"}); ok {
				er.ServerP50Ms = v * ms
			}
			if v, ok := in.metrics.Value("leqad_request_latency_window_seconds", map[string]string{"endpoint": ep, "quantile": "0.99"}); ok {
				er.ServerP99Ms = v * ms
			}
		}
		if in.agree > 0 && er.SteadyCount >= minAgreeSamples && er.ServerWindowCount >= minAgreeSamples && er.ServerP99Ms > 0 {
			er.AgreementChecked = true
			absDiff := math.Abs(er.SteadyP99Ms - er.ServerP99Ms)
			er.P99Divergence = absDiff / er.ServerP99Ms
			er.AgreementOK = er.P99Divergence <= in.agree || absDiff <= in.agreeFloorMs
			if !er.AgreementOK {
				rep.AgreementOK = false
			}
		}
		rep.Endpoints[ep] = er
	}

	if in.metrics != nil {
		for _, s := range in.metrics["leqad_throttled_total"] {
			rep.Server.Throttled[s.Labels["reason"]] = s.Value
		}
		rep.Server.ResultMemoHit = hitRate(in.metrics, "leqad_result_memo_hits_total", "leqad_result_memo_misses_total")
		rep.Server.AnalysisStoreHit = hitRate(in.metrics, "leqad_analysis_store_hits_total", "leqad_analysis_store_misses_total")
		if v, ok := in.metrics.Value("leqad_window_seconds", nil); ok {
			rep.Server.WindowSec = v
		}
		if v, ok := in.metrics.Value("leqad_queue_wait_window_seconds", map[string]string{"quantile": "0.5"}); ok {
			rep.Server.QueueWaitP50Ms = v * 1e3
		}
	}

	rep.AllServerClausesPass = true
	if in.health != nil {
		rep.Server.Version = in.health.Version
		rep.Server.Status = in.health.Status
		if in.health.SLO != nil {
			rep.Server.Degraded = in.health.SLO.Degraded
			for _, c := range in.health.SLO.Clauses {
				cr := ClauseReport{
					Clause: c.Clause, Source: "server",
					Current: c.Current, Limit: c.Limit, HasData: c.HasData,
					Compliant: c.Compliant, ComplianceRatio: c.ComplianceRatio,
					Breaches: c.Breaches,
				}
				switch {
				case !c.HasData:
					cr.Verdict = "no-data"
				case c.Compliant:
					cr.Verdict = "pass"
				default:
					cr.Verdict = "breached"
					rep.AllServerClausesPass = false
				}
				rep.SLO = append(rep.SLO, cr)
			}
		}
	}

	// Client-side clauses: evaluated against the harness's own exact
	// percentiles and error counts, whole run.
	for _, c := range in.clientClauses {
		cr := ClauseReport{Clause: c.String(), Source: "client", Limit: c.Limit}
		scopes := []string{c.Scope}
		if c.Scope == "" {
			scopes = []string{"estimate", "sweep", "grid"}
		}
		var durs []time.Duration
		var sent, failed uint64
		for _, ep := range scopes {
			for _, s := range byEndpoint[ep] {
				sent++
				if s.err != nil {
					failed++
					continue
				}
				durs = append(durs, s.dur)
			}
		}
		if c.Metric == "error_rate" {
			cr.HasData = sent > 0
			if cr.HasData {
				cr.Current = float64(failed) / float64(sent)
			}
		} else {
			cr.HasData = len(durs) > 0
			if cr.HasData {
				sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
				cr.Current = percentile(durs, c.Quantile).Seconds()
			}
		}
		cr.Compliant = !cr.HasData || cr.Current <= c.Limit
		switch {
		case !cr.HasData:
			cr.Verdict = "no-data"
		case cr.Compliant:
			cr.Verdict = "pass"
		default:
			cr.Verdict = "breached"
		}
		rep.SLO = append(rep.SLO, cr)
	}
	return rep
}

// hitRate computes hits/(hits+misses) from two counter families.
func hitRate(m telemetry.PromMetrics, hits, misses string) float64 {
	h, hm := m.Sum(hits), m.Sum(misses)
	if h+hm == 0 {
		return 0
	}
	return h / (h + hm)
}

// printHealthz fetches /healthz and pretty-prints it, leading with the
// status and slo block so a breached objective is the first thing visible.
func printHealthz(ctx context.Context, cli *client.Client) error {
	h, err := cli.Health(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("status:   %s (version %s, up %.0fs, %d workers)\n", h.Status, h.Version, h.UptimeSec, h.Workers)
	fmt.Printf("traffic:  %d requests, %d rows streamed, %d batches canceled\n",
		h.Requests, h.RowsStreamed, h.BatchesCanceled)
	if s := h.Saturation; s != nil {
		fmt.Printf("capacity: %d/%d in flight, %d queued (max %d), queue-wait p50 %.1fms over %gs window\n",
			s.InFlight, s.MaxConcurrent, s.QueueDepth, s.MaxQueue, s.QueueWait.P50Ms, s.WindowSec)
		for _, ep := range []string{"estimate", "sweep", "grid"} {
			e, ok := s.Endpoints[ep]
			if !ok {
				continue
			}
			fmt.Printf("  %-9s %5d reqs %4d errs  p50 %8.2fms  p99 %8.2fms\n",
				ep, e.Requests, e.Errors, e.Latency.P50Ms, e.Latency.P99Ms)
		}
		if len(s.Throttled) > 0 {
			var parts []string
			for _, reason := range []string{"concurrency", "queue_timeout", "body_cap", "gate_cap"} {
				if n := s.Throttled[reason]; n > 0 {
					parts = append(parts, fmt.Sprintf("%s=%d", reason, n))
				}
			}
			if len(parts) > 0 {
				fmt.Printf("  throttled: %s\n", strings.Join(parts, " "))
			}
		}
	}
	if h.SLO == nil {
		fmt.Println("slo:      none configured")
		return nil
	}
	fmt.Printf("slo:      %d clauses, %d evaluations every %gs", len(h.SLO.Clauses), h.SLO.Ticks, h.SLO.IntervalSec)
	if h.SLO.Degraded {
		fmt.Print("  ** DEGRADED **")
	}
	fmt.Println()
	for _, c := range h.SLO.Clauses {
		state := "ok"
		switch {
		case !c.HasData:
			state = "no data"
		case !c.Compliant:
			state = fmt.Sprintf("BREACH x%d", c.Consecutive)
		}
		fmt.Printf("  %-28s current %10.4g  limit %10.4g  compliance %5.1f%%  breaches %d  [%s]\n",
			c.Clause, c.Current, c.Limit, c.ComplianceRatio*100, c.Breaches, state)
	}
	return nil
}
