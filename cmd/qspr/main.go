// Command qspr runs the detailed scheduler/placer/router on a circuit and
// reports the actual mapped latency — the baseline LEQA is compared against.
//
// Usage:
//
//	qspr [flags] <circuit.qc | benchmark-name>
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/benchgen"
	"repro/internal/circuit"
	"repro/internal/decompose"
	"repro/internal/fabric"
	"repro/internal/qspr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qspr:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		width     = flag.Int("width", 60, "fabric width (ULB columns)")
		height    = flag.Int("height", 60, "fabric height (ULB rows)")
		nc        = flag.Int("nc", 5, "routing channel capacity Nc")
		tmove     = flag.Float64("tmove", 100, "per-hop move time T_move (µs)")
		placement = flag.String("placement", "clustered", "initial placement: clustered|spaced|spread|rowmajor")
		midpoint  = flag.Bool("midpoint", false, "CNOT operands meet at the midpoint (ablation)")
		trace     = flag.Bool("trace", false, "print the first 50 scheduled events")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: qspr [flags] <circuit.qc | benchmark-name>")
	}
	c, err := loadOrGenerate(flag.Arg(0))
	if err != nil {
		return err
	}
	if !c.IsFT() {
		c, err = decompose.ToFT(c, decompose.Options{})
		if err != nil {
			return err
		}
	}

	p := fabric.Default()
	p.Grid = fabric.Grid{Width: *width, Height: *height}
	p.ChannelCapacity = *nc
	p.TMove = *tmove

	opt := qspr.Options{Trace: *trace, MidpointMeeting: *midpoint}
	switch *placement {
	case "clustered":
		opt.Placement = qspr.PlaceClustered
	case "spaced":
		opt.Placement = qspr.PlaceSpaced
	case "spread":
		opt.Placement = qspr.PlaceSpread
	case "rowmajor":
		opt.Placement = qspr.PlaceRowMajor
	default:
		return fmt.Errorf("unknown placement %q", *placement)
	}
	m, err := qspr.New(p, opt)
	if err != nil {
		return err
	}
	t0 := time.Now()
	res, err := m.Map(c)
	if err != nil {
		return err
	}
	dur := time.Since(t0)

	fmt.Printf("circuit:         %s (%d qubits, %d operations)\n", c.Name, c.NumQubits(), res.Operations)
	fmt.Printf("actual latency:  %.6e s (%.1f µs)\n", res.Latency/1e6, res.Latency)
	fmt.Printf("qubit moves:     %d hops\n", res.Moves)
	fmt.Printf("congestion wait: %.3f s (aggregate)\n", res.CongestionWait/1e6)
	fmt.Printf("ULB wait:        %.3f s (aggregate)\n", res.ULBWait/1e6)
	fmt.Printf("mapper runtime:  %v\n", dur)
	if *trace {
		limit := len(res.Events)
		if limit > 50 {
			limit = 50
		}
		fmt.Println("first scheduled events:")
		for _, ev := range res.Events[:limit] {
			fmt.Printf("  gate %5d %-5s @(%2d,%2d)  %10.1f .. %10.1f µs\n",
				ev.GateIndex, ev.Type, ev.ULB.X, ev.ULB.Y, ev.Start, ev.End)
		}
	}
	return nil
}

func loadOrGenerate(arg string) (*circuit.Circuit, error) {
	if _, err := os.Stat(arg); err == nil {
		return circuit.LoadQCFile(arg)
	}
	return benchgen.Generate(arg)
}
