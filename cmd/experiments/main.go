// Command experiments regenerates the LEQA paper's tables and figures (see
// DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	experiments -table 1|2|3          physical params / accuracy / runtimes
//	experiments -figure 1|2|3|4|5     architecture & model illustrations
//	experiments -extrapolate          §4.2 scaling fit + Shor-1024 estimate
//	experiments -ablation <name>      truncation|congestion|placement|
//	                                  meeting|tsp|capacity|fabricsize
//	experiments -all                  everything (tables use -quick subset
//	                                  unless -full is set)
//	experiments -calibrate            tune 𝓋 on the small benchmarks first
//
// -full runs all 18 benchmarks including gf2^256mult (~1M operations);
// without it the suite is limited to benchmarks below 100k operations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/benchgen"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/leqa"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		tables      = flag.String("table", "", "regenerate Table N (1..3); comma list allowed, e.g. -table 2,3")
		figure      = flag.Int("figure", 0, "regenerate Figure N (1..5)")
		extrapolate = flag.Bool("extrapolate", false, "runtime scaling fit and Shor-1024 extrapolation")
		ablation    = flag.String("ablation", "", "truncation|congestion|placement|meeting|tsp|capacity|fabricsize")
		all         = flag.Bool("all", false, "run everything")
		full        = flag.Bool("full", false, "include the largest benchmarks (gf2^128mult, hwb200ps, gf2^256mult)")
		calibrate   = flag.Bool("calibrate", false, "calibrate 𝓋 against this repo's QSPR on the small benchmarks first")
		workers     = flag.Int("workers", 0, "suite worker-pool size (0 = GOMAXPROCS; use 1 for clean Table 3 runtime columns)")
		verbose     = flag.Bool("verbose", false, "print zone-model cache statistics after the run")
	)
	flag.Parse()
	defer func() {
		if *verbose {
			fmt.Fprintf(os.Stderr, "zone-model cache: %s\n", leqa.ZoneModelCacheStats())
		}
	}()
	w := os.Stdout
	p := fabric.Default()

	if *calibrate {
		tuned, err := calibrateParams(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "calibrated 𝓋 = %.6g (paper default 0.001)\n\n", tuned.QubitSpeed)
		p = tuned
	}

	names := suiteNames(*full)

	wantTable := map[string]bool{}
	for _, t := range strings.Split(*tables, ",") {
		if t = strings.TrimSpace(t); t != "" {
			wantTable[t] = true
		}
	}
	needRows := wantTable["2"] || wantTable["3"] || *extrapolate || *all
	var rows []experiments.Row
	if needRows {
		var err error
		rows, err = experiments.RunSuite(names, p, *workers, os.Stderr)
		if err != nil {
			return err
		}
		experiments.SortRowsByOps(rows)
	}

	did := false
	if wantTable["1"] || *all {
		experiments.Table1(w, p)
		fmt.Fprintln(w)
		did = true
	}
	if wantTable["2"] || *all {
		experiments.Table2(w, rows)
		fmt.Fprintln(w)
		did = true
	}
	if wantTable["3"] || *all {
		experiments.Table3(w, rows)
		fmt.Fprintln(w)
		did = true
	}
	if *extrapolate || *all {
		if err := experiments.Extrapolation(w, rows); err != nil {
			return err
		}
		fmt.Fprintln(w)
		did = true
	}
	if *figure == 1 || *all {
		experiments.Figure1(w)
		fmt.Fprintln(w)
		did = true
	}
	if *figure == 2 || *all {
		if err := experiments.Figure2(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
		did = true
	}
	if *figure == 3 || *all {
		experiments.Figure3(w, p)
		fmt.Fprintln(w)
		did = true
	}
	if *figure == 4 || *all {
		experiments.Figure4(w, p)
		fmt.Fprintln(w)
		did = true
	}
	if *figure == 5 || *all {
		experiments.Figure5(w, p, 850)
		fmt.Fprintln(w)
		did = true
	}
	smallNames := []string{"8bitadder", "gf2^16mult", "ham15"}
	ablations := []string{*ablation}
	if *all {
		ablations = []string{"truncation", "congestion", "placement", "meeting", "tsp", "capacity", "fabricsize"}
	}
	for _, ab := range ablations {
		switch ab {
		case "":
		case "truncation":
			if err := experiments.AblationTruncation(w, "hwb20ps", p); err != nil {
				return err
			}
			fmt.Fprintln(w)
			did = true
		case "congestion":
			if err := experiments.AblationCongestion(w, smallNames, p); err != nil {
				return err
			}
			fmt.Fprintln(w)
			did = true
		case "placement":
			if err := experiments.AblationPlacement(w, smallNames, p); err != nil {
				return err
			}
			fmt.Fprintln(w)
			did = true
		case "meeting":
			if err := experiments.AblationMeeting(w, smallNames, p); err != nil {
				return err
			}
			fmt.Fprintln(w)
			did = true
		case "tsp":
			if err := experiments.AblationTSPBound(w, 1); err != nil {
				return err
			}
			fmt.Fprintln(w)
			did = true
		case "capacity":
			if err := experiments.AblationChannelCapacity(w, "gf2^16mult", p); err != nil {
				return err
			}
			fmt.Fprintln(w)
			did = true
		case "fabricsize":
			if err := experiments.FabricSizeSweep(w, "gf2^16mult", p, []int{15, 20, 30, 40, 60, 90, 120}); err != nil {
				return err
			}
			fmt.Fprintln(w)
			did = true
		default:
			return fmt.Errorf("unknown ablation %q", ab)
		}
	}
	if !did {
		flag.Usage()
	}
	return nil
}

func suiteNames(full bool) []string {
	if full {
		return benchgen.Names()
	}
	var out []string
	for _, name := range benchgen.Names() {
		if benchgen.Paper[name].Operations < 100000 {
			out = append(out, name)
		}
	}
	return out
}

func calibrateParams(p fabric.Params) (fabric.Params, error) {
	var train []*leqa.Circuit
	for _, name := range []string{"8bitadder", "gf2^16mult", "ham15", "hwb15ps", "gf2^50mult"} {
		c, err := leqa.GenerateFT(name)
		if err != nil {
			return p, err
		}
		train = append(train, c)
	}
	return leqa.Calibrate(train, p)
}
