package core

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/fabric"
	"repro/internal/iig"
	"repro/internal/qodg"
)

func defaultEstimator(t *testing.T, opt Options) *Estimator {
	t.Helper()
	e, err := New(fabric.Default(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewRejectsBadParams(t *testing.T) {
	p := fabric.Default()
	p.TMove = 0
	if _, err := New(p, Options{}); err == nil {
		t.Error("want validation error")
	}
}

func TestEstimateRejectsNonFT(t *testing.T) {
	c := circuit.New("t", 3)
	c.Append(circuit.NewToffoli(0, 1, 2))
	e := defaultEstimator(t, Options{})
	if _, err := e.Estimate(c); err == nil {
		t.Error("want non-FT rejection")
	}
}

func TestEstimateOneQubitChain(t *testing.T) {
	// 5 sequential H gates on one qubit, no CNOTs: D = 5·(d_H + 2·T_move).
	c := circuit.New("chain", 1)
	for i := 0; i < 5; i++ {
		c.Append(circuit.NewOneQubit(circuit.H, 0))
	}
	e := defaultEstimator(t, Options{})
	res, err := e.Estimate(c)
	if err != nil {
		t.Fatal(err)
	}
	want := 5 * (5440.0 + 200.0)
	if math.Abs(res.EstimatedLatency-want) > 1e-9 {
		t.Errorf("D = %v, want %v", res.EstimatedLatency, want)
	}
	if res.LCNOTAvg != 0 {
		t.Errorf("no CNOTs but L_CNOT = %v", res.LCNOTAvg)
	}
	if res.CriticalOneQubit != 5 || res.CriticalCNOTs != 0 {
		t.Errorf("critical counts: %d 1q, %d cnot", res.CriticalOneQubit, res.CriticalCNOTs)
	}
}

func TestEstimateParallelChains(t *testing.T) {
	// Two independent qubits: 3 T gates vs 2 H gates. Critical path is the
	// T chain (T is the slowest gate in Table 1).
	c := circuit.New("par", 2)
	for i := 0; i < 3; i++ {
		c.Append(circuit.NewOneQubit(circuit.T, 0))
	}
	for i := 0; i < 2; i++ {
		c.Append(circuit.NewOneQubit(circuit.H, 1))
	}
	e := defaultEstimator(t, Options{})
	res, err := e.Estimate(c)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * (10940.0 + 200.0)
	if math.Abs(res.EstimatedLatency-want) > 1e-9 {
		t.Errorf("D = %v, want %v", res.EstimatedLatency, want)
	}
}

func TestEstimateWithCNOTs(t *testing.T) {
	c := circuit.New("pair", 2)
	c.Append(circuit.NewCNOT(0, 1), circuit.NewCNOT(0, 1))
	e := defaultEstimator(t, Options{})
	res, err := e.Estimate(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.LCNOTAvg <= 0 {
		t.Fatalf("L_CNOT = %v, want > 0", res.LCNOTAvg)
	}
	want := 2 * (4930.0 + res.LCNOTAvg)
	if math.Abs(res.EstimatedLatency-want) > 1e-6 {
		t.Errorf("D = %v, want %v", res.EstimatedLatency, want)
	}
	if res.CriticalCNOTs != 2 {
		t.Errorf("critical CNOTs = %d", res.CriticalCNOTs)
	}
	if res.DUncong <= 0 {
		t.Errorf("d_uncong = %v", res.DUncong)
	}
}

func TestCoverageProbabilityEq5(t *testing.T) {
	grid := fabric.Grid{Width: 10, Height: 10}
	// Zone side 3 on a 10×10 grid: denominator (10−3+1)² = 64.
	// Center cell (5,5): numerator min(5,6,3,8)·min(5,6,3,8) = 9 → 9/64.
	got := CoverageProbability(grid, 3, 5, 5)
	if math.Abs(got-9.0/64.0) > 1e-12 {
		t.Errorf("P(5,5) = %v, want %v", got, 9.0/64.0)
	}
	// Corner (1,1): numerator 1 → 1/64.
	got = CoverageProbability(grid, 3, 1, 1)
	if math.Abs(got-1.0/64.0) > 1e-12 {
		t.Errorf("P(1,1) = %v, want %v", got, 1.0/64.0)
	}
	// Symmetry: P(x,y) = P(a−x+1, b−y+1).
	for x := 1; x <= 10; x++ {
		for y := 1; y <= 10; y++ {
			p1 := CoverageProbability(grid, 3, x, y)
			p2 := CoverageProbability(grid, 3, 11-x, 11-y)
			if math.Abs(p1-p2) > 1e-12 {
				t.Errorf("symmetry broken at (%d,%d)", x, y)
			}
		}
	}
}

func TestCoverageProbabilityBounds(t *testing.T) {
	grid := fabric.Grid{Width: 8, Height: 6}
	for s := 1; s <= 6; s++ {
		for x := 1; x <= 8; x++ {
			for y := 1; y <= 6; y++ {
				p := CoverageProbability(grid, s, x, y)
				if p < 0 || p > 1 {
					t.Fatalf("P out of range: s=%d (%d,%d) = %v", s, x, y, p)
				}
			}
		}
	}
	// Full-fabric zone on a square grid: probability 1 everywhere (the
	// zone is square, so a non-square grid can never be fully covered).
	sq := fabric.Grid{Width: 6, Height: 6}
	for x := 1; x <= 6; x++ {
		for y := 1; y <= 6; y++ {
			if p := CoverageProbability(sq, 6, x, y); math.Abs(p-1) > 1e-12 {
				t.Errorf("full zone P(%d,%d) = %v", x, y, p)
			}
		}
	}
}

func TestCoverageSumIdentity(t *testing.T) {
	// Σ_{x,y} P_{x,y} must equal the expected zone coverage area: every
	// placement covers exactly s² cells when s divides cleanly... in
	// general Σ P = s² (average over placements of covered cells).
	grid := fabric.Grid{Width: 12, Height: 9}
	for s := 1; s <= 9; s++ {
		sum := 0.0
		for x := 1; x <= grid.Width; x++ {
			for y := 1; y <= grid.Height; y++ {
				sum += CoverageProbability(grid, s, x, y)
			}
		}
		if math.Abs(sum-float64(s*s)) > 1e-9 {
			t.Errorf("s=%d: ΣP = %v, want %d", s, sum, s*s)
		}
	}
}

func TestExpectedSurfaceEq3Constraint(t *testing.T) {
	// Σ_{q=0..Q} E[S_q] = A (Eq. 3).
	grid := fabric.Grid{Width: 12, Height: 12}
	for _, qubits := range []int{1, 3, 8} {
		total := 0.0
		for q := 0; q <= qubits; q++ {
			total += ExpectedSurfaceExact(grid, 3, qubits, q)
		}
		if math.Abs(total-float64(grid.Area())) > 1e-6 {
			t.Errorf("Q=%d: ΣE[S_q] = %v, want %d", qubits, total, grid.Area())
		}
	}
}

func TestTruncationConvergence(t *testing.T) {
	// With the default 20-term truncation vs the full sum, L_CNOT must
	// agree closely (the paper's claim that 20 terms suffice).
	c := circuit.New("mesh", 30)
	for i := 0; i < 30; i++ {
		for j := i + 1; j < 30; j += 3 {
			c.Append(circuit.NewCNOT(i, j))
		}
	}
	p := fabric.Default()
	eTrunc, _ := New(p, Options{})              // 20 terms
	eFull, _ := New(p, Options{Truncation: -1}) // all Q terms
	rTrunc, err := eTrunc.Estimate(c)
	if err != nil {
		t.Fatal(err)
	}
	rFull, err := eFull.Estimate(c)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(rTrunc.LCNOTAvg-rFull.LCNOTAvg) / rFull.LCNOTAvg
	if rel > 0.01 {
		t.Errorf("truncation changes L_CNOT by %.2f%%", rel*100)
	}
}

func TestDisableCongestionLowersOrEqualLatency(t *testing.T) {
	c := circuit.New("mesh", 40)
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j += 2 {
			c.Append(circuit.NewCNOT(i, j))
		}
	}
	p := fabric.Default()
	// Shrink the fabric so zones overlap heavily and congestion matters.
	p.Grid = fabric.Grid{Width: 8, Height: 8}
	eOn, _ := New(p, Options{})
	eOff, _ := New(p, Options{DisableCongestion: true})
	rOn, err := eOn.Estimate(c)
	if err != nil {
		t.Fatal(err)
	}
	rOff, err := eOff.Estimate(c)
	if err != nil {
		t.Fatal(err)
	}
	if rOff.EstimatedLatency > rOn.EstimatedLatency+1e-9 {
		t.Errorf("disabling congestion increased latency: %v > %v",
			rOff.EstimatedLatency, rOn.EstimatedLatency)
	}
	if math.Abs(rOff.LCNOTAvg-rOff.DUncong) > 1e-9*rOff.DUncong {
		t.Errorf("without congestion L_CNOT (%v) should equal d_uncong (%v)",
			rOff.LCNOTAvg, rOff.DUncong)
	}
}

func TestLCNOTBetweenDuncongAndMaxDq(t *testing.T) {
	// L_CNOT is a weighted average of d_q values, so it must lie within
	// their range.
	c := circuit.New("mesh", 25)
	for i := 0; i < 25; i++ {
		for j := i + 1; j < 25; j++ {
			c.Append(circuit.NewCNOT(i, j))
		}
	}
	p := fabric.Default()
	p.Grid = fabric.Grid{Width: 10, Height: 10}
	e, _ := New(p, Options{})
	res, err := e.Estimate(c)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for q := 1; q < len(res.Dq); q++ {
		lo = math.Min(lo, res.Dq[q])
		hi = math.Max(hi, res.Dq[q])
	}
	if res.LCNOTAvg < lo-1e-9 || res.LCNOTAvg > hi+1e-9 {
		t.Errorf("L_CNOT %v outside d_q range [%v, %v]", res.LCNOTAvg, lo, hi)
	}
}

func TestEstimateGraphsMatchesEstimate(t *testing.T) {
	c := circuit.New("g", 4)
	c.Append(circuit.NewCNOT(0, 1), circuit.NewOneQubit(circuit.H, 2), circuit.NewCNOT(2, 3))
	e := defaultEstimator(t, Options{})
	r1, err := e.Estimate(c)
	if err != nil {
		t.Fatal(err)
	}
	g, err := qodg.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	ig, err := iig.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.EstimateGraphs(c, g, ig)
	if err != nil {
		t.Fatal(err)
	}
	if r1.EstimatedLatency != r2.EstimatedLatency {
		t.Errorf("Estimate %v != EstimateGraphs %v", r1.EstimatedLatency, r2.EstimatedLatency)
	}
}

func TestMoreOpsNeverFasterProperty(t *testing.T) {
	// Appending a gate to a linear chain never decreases the estimate.
	e := defaultEstimator(t, Options{})
	f := func(seed uint8) bool {
		n := int(seed%20) + 1
		c := circuit.New("p", 2)
		for i := 0; i < n; i++ {
			if i%3 == 0 {
				c.Append(circuit.NewCNOT(0, 1))
			} else {
				c.Append(circuit.NewOneQubit(circuit.H, 0))
			}
		}
		r1, err := e.Estimate(c)
		if err != nil {
			return false
		}
		c.Append(circuit.NewOneQubit(circuit.T, 0))
		r2, err := e.Estimate(c)
		if err != nil {
			return false
		}
		return r2.EstimatedLatency >= r1.EstimatedLatency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentEstimatesShareModel hammers one estimator from many
// goroutines (run with -race): every estimate must agree bitwise with the
// sequential baseline even though they all share the memoized zone model,
// and the result slices must be private copies, not aliases of the cache.
func TestConcurrentEstimatesShareModel(t *testing.T) {
	c := circuit.New("mesh", 20)
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j += 2 {
			c.Append(circuit.NewCNOT(i, j))
		}
	}
	e := defaultEstimator(t, Options{})
	base, err := e.Estimate(c)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	results := make([]*Result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := e.Estimate(c)
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = res
		}(g)
	}
	wg.Wait()
	for g, res := range results {
		if res == nil {
			t.Fatalf("goroutine %d produced no result", g)
		}
		if res.EstimatedLatency != base.EstimatedLatency || res.LCNOTAvg != base.LCNOTAvg {
			t.Errorf("goroutine %d: latency %v / L_CNOT %v, want %v / %v",
				g, res.EstimatedLatency, res.LCNOTAvg, base.EstimatedLatency, base.LCNOTAvg)
		}
		if &res.ESq[0] == &base.ESq[0] || &res.Dq[0] == &base.Dq[0] {
			t.Errorf("goroutine %d: result slices alias the shared model", g)
		}
	}
}

func TestResultBookkeeping(t *testing.T) {
	c := circuit.New("book", 3)
	c.Append(circuit.NewCNOT(0, 1), circuit.NewOneQubit(circuit.T, 2))
	e := defaultEstimator(t, Options{})
	res, err := e.Estimate(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Qubits != 3 || res.Operations != 2 {
		t.Errorf("bookkeeping: %d qubits, %d ops", res.Qubits, res.Operations)
	}
	if res.LOneQubitAvg != 200 {
		t.Errorf("L_g = %v", res.LOneQubitAvg)
	}
	if res.ZoneSide < 1 {
		t.Errorf("zone side = %d", res.ZoneSide)
	}
}
