package core

import (
	"repro/internal/analysis"
	"repro/internal/circuit"
	"repro/internal/qodg"
)

// EstimateAnalysisBatch runs Algorithm 1 once per estimator over one shared
// analysis — the K-parameter-column counterpart of EstimateAnalysisArena,
// and the estimate phase of a batched grid row. The scalar phase (zone
// coverage, congestion, the memoized zone model) runs per column exactly as
// the single-column path does; the QODG re-weighting then resolves each
// (column, gate type) weight once against a dense type table, fills one
// interleaved weight slab — node v's K weights contiguous at [v*K] — in a
// single scan down the node array, and a single multi-weight traversal
// (qodg.LongestPathMultiStrided) relaxes every column's critical path at
// once instead of streaming the adjacency K times.
//
// results[j] and errs[j] mirror what ests[j].EstimateAnalysisArena(a, ar)
// would return, bitwise: a column's failure (non-FT analysis, zone-model
// error, missing gate delay) lands in errs[j] and never disturbs its
// neighbors. ar, when non-nil, donates the weight slab and the longest-path
// scratch.
func EstimateAnalysisBatch(ests []*Estimator, a *analysis.Analysis, ar *analysis.Arena) ([]*Result, []error) {
	k := len(ests)
	results := make([]*Result, k)
	errs := make([]error, k)
	if k == 0 {
		return results, errs
	}
	if !a.FT {
		for j := range errs {
			errs[j] = ftErr(a.Name)
		}
		return results, errs
	}
	g, ig := a.QODG, a.IIG

	// Lines 2–18 per column. Columns sharing a fabric configuration share
	// one zone-model computation through the zonemodel memo, exactly as
	// repeated single-column calls would.
	live := make([]int, 0, k)
	for j, e := range ests {
		results[j], errs[j] = e.scalarPhase(a.Qubits, a.Operations, ig)
		if errs[j] == nil {
			live = append(live, j)
		}
	}
	if len(live) == 0 {
		return results, errs
	}

	// Lines 19–20, fused. Gate types present in the graph, in first-
	// appearance order — the order the serial weightOf closure would first
	// touch each type in, so a column's first DelayOf failure is the same
	// error the serial scan records.
	var present []circuit.GateType
	var seen []bool
	for _, node := range g.Nodes {
		if node.IsPseudo() {
			continue
		}
		t := int(node.Op.Type)
		for t >= len(seen) {
			seen = append(seen, false)
		}
		if !seen[t] {
			seen[t] = true
			present = append(present, node.Op.Type)
		}
	}

	// Resolve every (column, present type) weight before touching the node
	// array: d_CNOT + L_CNOT^avg for CNOTs, d_g + L_g^avg otherwise — the
	// serial weightOf arithmetic, once per type instead of once per gate.
	// Columns whose fabric lacks a delay fail here and are dropped from the
	// traversal, so the slab holds exactly the clean columns.
	runJ := make([]int, 0, len(live))
	tabs := make([][]float64, 0, len(live))
	for _, j := range live {
		tab := make([]float64, len(seen))
		var colErr error
		p := ests[j].Params
		for _, t := range present {
			if t == circuit.CNOT {
				tab[int(t)] = p.DCNOT + results[j].LCNOTAvg
				continue
			}
			d, err := p.DelayOf(t)
			if err != nil {
				colErr = err
				break
			}
			tab[int(t)] = d + results[j].LOneQubitAvg
		}
		if colErr != nil {
			results[j], errs[j] = nil, colErr
			continue
		}
		runJ = append(runJ, j)
		tabs = append(tabs, tab)
	}
	if len(runJ) == 0 {
		return results, errs
	}

	// Interleave the per-column tables into per-type K-rows, then fill the
	// weight slab with one contiguous row copy per node.
	kr := len(runJ)
	rowTab := make([]float64, len(seen)*kr)
	for i, tab := range tabs {
		for _, t := range present {
			rowTab[int(t)*kr+i] = tab[int(t)]
		}
	}
	var wm []float64
	var scratch *qodg.PathScratch
	if ar != nil {
		wm = ar.MultiWeightSlab(g, kr)
		scratch = ar.Path()
	} else {
		wm = make([]float64, len(g.Nodes)*kr)
	}
	for v, node := range g.Nodes {
		row := wm[v*kr : (v+1)*kr]
		if node.IsPseudo() {
			clear(row)
			continue
		}
		tb := int(node.Op.Type) * kr
		copy(row, rowTab[tb:tb+kr])
	}

	// One traversal for every column that built a clean weight table.
	cps, err := g.LongestPathMultiStrided(wm, kr, scratch)
	if err != nil {
		for _, j := range runJ {
			results[j], errs[j] = nil, err
		}
		return results, errs
	}
	for i, j := range runJ {
		finishPath(results[j], cps[i])
	}
	return results, errs
}
