// Package core implements LEQA itself — Algorithm 1 of the paper: a fast
// latency estimator for a quantum algorithm (an FT gate netlist) mapped to a
// tiled quantum architecture, built on the presence-zone coverage model
// (Eq. 2–7), the M/M/1 channel congestion model (Eq. 8–11) and the TSP-bound
// travel model (Eq. 12–16), feeding the critical-path latency of Eq. 1.
package core

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/circuit"
	"repro/internal/fabric"
	"repro/internal/iig"
	"repro/internal/ingest"
	"repro/internal/qodg"
	"repro/internal/tsp"
	"repro/internal/zonemodel"
)

// DefaultTruncation is the number of E[S_q] terms evaluated (the paper
// computes "only the first 20 terms ... in practice").
const DefaultTruncation = 20

// Options tunes the estimator; the zero value gives the paper's behavior.
type Options struct {
	// Truncation overrides the E[S_q] term limit; 0 means
	// DefaultTruncation, negative means no truncation (all Q terms) —
	// used by the truncation ablation.
	Truncation int
	// DisableCongestion replaces Eq. 8 with d_q = d_uncong everywhere,
	// for the congestion-model ablation.
	DisableCongestion bool
}

func (o Options) truncation(q int) int {
	switch {
	case o.Truncation < 0:
		return q
	case o.Truncation == 0:
		if q < DefaultTruncation {
			return q
		}
		return DefaultTruncation
	default:
		if o.Truncation > q {
			return q
		}
		return o.Truncation
	}
}

// Result carries the estimate plus every intermediate the paper defines, so
// experiments and reports can inspect the model.
type Result struct {
	// EstimatedLatency is D of Eq. 1, in µs.
	EstimatedLatency float64
	// LCNOTAvg is L_CNOT^avg (Eq. 2): average CNOT routing latency, µs.
	LCNOTAvg float64
	// LOneQubitAvg is L_g^avg = 2·T_move, µs.
	LOneQubitAvg float64
	// DUncong is the congestion-free average routing latency (Eq. 12), µs.
	DUncong float64
	// AvgZoneArea is B (Eq. 7), in ULB units.
	AvgZoneArea float64
	// ZoneSide is ⌈√B⌉ clamped to the fabric, in ULBs.
	ZoneSide int
	// ESq[q] is E[S_q] for q = 1..len(ESq)-1 (index 0 unused), in ULBs.
	ESq []float64
	// Dq[q] is d_q (Eq. 8) for q = 1..len(Dq)-1 (index 0 unused), µs.
	Dq []float64
	// CriticalPath is the re-weighted longest path of the QODG.
	CriticalPath qodg.CriticalPath
	// CriticalCNOTs and CriticalOneQubit are N_CNOT^critical and
	// Σ_g N_g^critical.
	CriticalCNOTs    int
	CriticalOneQubit int
	// Qubits and Operations echo the workload size (Table 3 columns).
	Qubits     int
	Operations int
}

// Estimator binds physical parameters and options; safe for reuse across
// circuits and for concurrent use.
type Estimator struct {
	Params  fabric.Params
	Options Options
}

// New constructs an Estimator after validating the parameters.
func New(p fabric.Params, opt Options) (*Estimator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Estimator{Params: p, Options: opt}, nil
}

// NonFTError reports a circuit (or gate stream) containing gates outside
// the fault-tolerant set. Its message matches the historical precondition
// failure; callers that want to react (the service's decompose fallback)
// detect it with errors.As.
type NonFTError struct {
	// Circuit names the offending netlist.
	Circuit string
	// Gate is the index of the first non-FT gate when known (streaming
	// detection), -1 otherwise.
	Gate int
	// Type is the offending gate type when known (circuit.Invalid
	// otherwise).
	Type circuit.GateType
}

func (e *NonFTError) Error() string {
	return fmt.Sprintf("leqa: circuit %q contains non-FT gates; run decompose.ToFT first", e.Circuit)
}

func ftErr(name string) error { return &NonFTError{Circuit: name, Gate: -1} }

// Estimate runs Algorithm 1 on an FT circuit.
func (e *Estimator) Estimate(c *circuit.Circuit) (*Result, error) {
	if !c.IsFT() {
		return nil, ftErr(c.Name)
	}
	// Line 1: one fused pass builds the IIG and the QODG used at line 19.
	a, err := analysis.Analyze(c)
	if err != nil {
		return nil, err
	}
	return e.estimate(a.Qubits, a.Operations, a.QODG, a.IIG, nil)
}

// EstimateStream runs Algorithm 1 on a streamed netlist: the fused analysis
// passes consume the gate stream directly (analysis.AnalyzeStream), so the
// circuit's gate list is never materialized and peak memory is the analysis
// product plus one ingest chunk. The FT precondition is enforced gate by
// gate as the stream flows; results are bitwise identical to Estimate on
// the materialized circuit.
func (e *Estimator) EstimateStream(src analysis.GateStream) (*Result, error) {
	return e.EstimateStreamArena(src, nil)
}

// EstimateStreamArena is EstimateStream with every analysis and estimate
// buffer drawn from ar — the steady-state ingestion path of a pooled
// worker. A nil arena allocates fresh storage.
func (e *Estimator) EstimateStreamArena(src analysis.GateStream, ar *analysis.Arena) (*Result, error) {
	a, err := e.AnalyzeStreamFT(src, ar)
	if err != nil {
		return nil, err
	}
	return e.estimate(a.Qubits, a.Operations, a.QODG, a.IIG, ar)
}

// AnalyzeStreamFT is the analysis half of EstimateStreamArena on its own:
// the stream runs behind the FT-set guard into the fused (possibly
// shard-parallel) streamed analysis. Callers that need to time or schedule
// the analysis and estimate phases separately — the service's phase
// metrics — pair it with EstimateAnalysisArena; the composition is exactly
// EstimateStreamArena.
func (e *Estimator) AnalyzeStreamFT(src analysis.GateStream, ar *analysis.Arena) (*analysis.Analysis, error) {
	guard := &ftGuard{src: src}
	if ar != nil {
		return ar.AnalyzeStream(guard)
	}
	return analysis.AnalyzeStream(guard)
}

// EstimateReader runs Algorithm 1 on a .qc netlist read from r, streamed
// through internal/ingest under opt (chunk size, spool placement and cap).
// name labels the circuit in results and diagnostics.
func (e *Estimator) EstimateReader(r io.Reader, name string, opt ingest.Options) (*Result, error) {
	sc := ingest.NewScanner(r, name, opt)
	defer sc.Close()
	return e.EstimateStream(sc)
}

// ftGuard enforces the FT-gate-set precondition on a flowing stream: the
// first non-FT gate stops the scan with a NonFTError, before the analysis
// layer ever sees the gate — the same failure priority as the batch path's
// up-front IsFT check.
type ftGuard struct {
	src  analysis.GateStream
	idx  int
	err  error
	gate circuit.Gate
}

func (f *ftGuard) Scan() bool {
	if f.err != nil {
		return false
	}
	if !f.src.Scan() {
		return false
	}
	f.gate = f.src.Gate()
	if !f.gate.Type.IsFT() {
		f.err = &NonFTError{Circuit: f.src.Name(), Gate: f.idx, Type: f.gate.Type}
		return false
	}
	f.idx++
	return true
}

func (f *ftGuard) Gate() circuit.Gate { return f.gate }

func (f *ftGuard) Err() error {
	if f.err != nil {
		return f.err
	}
	return f.src.Err()
}

func (f *ftGuard) Rewind() error {
	if f.err != nil {
		return f.err
	}
	f.idx = 0
	return f.src.Rewind()
}

func (f *ftGuard) NumQubits() int { return f.src.NumQubits() }
func (f *ftGuard) Name() string   { return f.src.Name() }

// Segments delegates to the wrapped source so the guard never hides a
// segmentable stream from the shard-parallel fill pass. The segments
// themselves are not re-guarded: the counting pass runs the full stream
// through the guard first, so a non-FT gate fails the analysis before any
// fill — sharded or serial — begins.
func (f *ftGuard) Segments(max int) ([]analysis.GateStream, []int, error) {
	if seg, ok := f.src.(analysis.SegmentedStream); ok {
		return seg.Segments(max)
	}
	return nil, nil, nil
}

// EstimateArena is Estimate through a reusable arena: the fused analysis
// pass, the weight vector and the critical-path sweep all run in ar's
// recycled buffers, so a warm worker estimates with near-zero heap
// allocation. The Result is independent of the arena (nothing it holds
// aliases arena memory) and is bitwise identical to Estimate's.
func (e *Estimator) EstimateArena(c *circuit.Circuit, ar *analysis.Arena) (*Result, error) {
	if !c.IsFT() {
		return nil, ftErr(c.Name)
	}
	a, err := ar.Analyze(c)
	if err != nil {
		return nil, err
	}
	return e.estimate(a.Qubits, a.Operations, a.QODG, a.IIG, ar)
}

// EstimateAnalysis runs Algorithm 1 on a previously analyzed circuit — the
// path batch sweeps use to amortize one Analyze across many parameter sets.
func (e *Estimator) EstimateAnalysis(a *analysis.Analysis) (*Result, error) {
	return e.EstimateAnalysisArena(a, nil)
}

// EstimateAnalysisArena is EstimateAnalysis with the estimate-phase scratch
// (weights, longest-path state) drawn from ar. The analysis itself may be a
// shared immutable one or arena-borrowed; only its graphs and metadata are
// read, so streamed analyses (Circuit == nil) work identically.
func (e *Estimator) EstimateAnalysisArena(a *analysis.Analysis, ar *analysis.Arena) (*Result, error) {
	if !a.FT {
		return nil, ftErr(a.Name)
	}
	return e.estimate(a.Qubits, a.Operations, a.QODG, a.IIG, ar)
}

// EstimateGraphs is Estimate for callers that already built the graphs.
func (e *Estimator) EstimateGraphs(c *circuit.Circuit, g *qodg.Graph, ig *iig.Graph) (*Result, error) {
	if !c.IsFT() {
		return nil, ftErr(c.Name)
	}
	return e.estimate(c.NumQubits(), c.NumGates(), g, ig, nil)
}

// estimate runs Algorithm 1 over prebuilt graphs; qubits and operations
// echo the workload size into the Result (the gate list itself is not
// needed — streamed analyses never have one). ar, when non-nil, donates
// the weight vector and longest-path scratch; the math is identical either
// way, so arena and fresh runs produce bitwise-equal Results.
func (e *Estimator) estimate(qubits, operations int, g *qodg.Graph, ig *iig.Graph, ar *analysis.Arena) (*Result, error) {
	res, err := e.scalarPhase(qubits, operations, ig)
	if err != nil {
		return nil, err
	}
	p := e.Params

	// Lines 19–20: re-weight the QODG with per-op routing latencies and
	// take the critical path (Eq. 1).
	var werr error
	weightOf := func(gt circuit.Gate) float64 {
		if gt.Type == circuit.CNOT {
			return p.DCNOT + res.LCNOTAvg
		}
		d, err := p.DelayOf(gt.Type)
		if err != nil && werr == nil {
			werr = err
		}
		return d + res.LOneQubitAvg
	}
	var weights qodg.Weights
	var scratch *qodg.PathScratch
	if ar != nil {
		weights = ar.WeightsFor(g, weightOf)
		scratch = ar.Path()
	} else {
		weights = g.NewWeights(weightOf)
	}
	if werr != nil {
		return nil, werr
	}
	cp, err := g.LongestPathInto(weights, scratch)
	if err != nil {
		return nil, err
	}
	finishPath(res, cp)
	return res, nil
}

// scalarPhase runs lines 2–18 of Algorithm 1 — everything before the QODG
// re-weighting: the zone coverage average (Eq. 6–7), the congestion-free
// routing latency (Eq. 12, 15–16), and the memoized zone-model terms
// (Eq. 2–5, 8–11). The batched path runs it once per parameter column; the
// IIG terms that depend only on the circuit repeat the identical float
// computation per column, so single- and multi-column Results stay bitwise
// equal.
func (e *Estimator) scalarPhase(qubits, operations int, ig *iig.Graph) (*Result, error) {
	p := e.Params
	res := &Result{
		LOneQubitAvg: p.OneQubitRouting(),
		Qubits:       qubits,
		Operations:   operations,
	}

	// Lines 2–3: B_i = M_i + 1 (Eq. 6), B = weighted average (Eq. 7).
	res.AvgZoneArea = ig.AverageZoneArea()

	// Lines 4–8: E[l_ham,i] (Eq. 15), d_uncong,i (Eq. 16), d_uncong (Eq. 12).
	res.DUncong = ig.WeightedAverage(func(i int) float64 {
		m := ig.Degree(i)
		if m == 0 {
			return 0
		}
		lham := tsp.ExpectedHamiltonianPath(m, ig.ZoneArea(i))
		return lham / (p.QubitSpeed * float64(m))
	})

	if ig.TotalWeight() > 0 && res.DUncong > 0 {
		if err := e.routingLatency(res, ig); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// finishPath folds a recovered critical path into the Result — lines 19–20's
// outputs: D (Eq. 1) plus the per-type critical counts.
func finishPath(res *Result, cp qodg.CriticalPath) {
	res.CriticalPath = cp
	res.EstimatedLatency = cp.Length
	for t, n := range cp.CountByType {
		if t == circuit.CNOT {
			res.CriticalCNOTs += n
		} else {
			res.CriticalOneQubit += n
		}
	}
}

// routingLatency fills ZoneSide, ESq, Dq and LCNOTAvg (lines 9–18). The
// heavy lifting — coverage probabilities, E[S_q], d_q, L_CNOT^avg — lives
// in the circuit-independent zonemodel layer and is memoized there, so two
// circuits with the same (fabric, zone side, Q, d_uncong) configuration
// share one model computation.
func (e *Estimator) routingLatency(res *Result, ig *iig.Graph) error {
	p := e.Params
	key := zonemodel.NewKey(p.Grid, res.AvgZoneArea, ig.Q,
		e.Options.truncation(ig.Q), p.ChannelCapacity, res.DUncong,
		e.Options.DisableCongestion)
	res.ZoneSide = key.ZoneSide
	m, err := zonemodel.Shared.Get(key)
	if err != nil {
		return err
	}
	res.ESq = m.ESq()
	res.Dq = m.Dq()
	res.LCNOTAvg = m.LCNOT
	return nil
}

// CoverageProbability exposes Eq. 5 for a single ULB — used by the Fig. 3/4
// regenerations and tests. x and y are 1-based.
func CoverageProbability(grid fabric.Grid, zoneSide, x, y int) float64 {
	return zonemodel.CoverageProbability(grid, zoneSide, x, y)
}

// ExpectedSurfaceExact computes E[S_q] without truncation for one q —
// used by tests validating the Eq. 3 constraint Σ_{q=0..Q} E[S_q] = A.
func ExpectedSurfaceExact(grid fabric.Grid, zoneSide, qubits, q int) float64 {
	return zonemodel.ExpectedSurfaceExact(grid, zoneSide, qubits, q)
}
