package core

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchgen"
	"repro/internal/circuit"
	"repro/internal/fabric"
)

// batchParamSets returns six distinct fabric configurations — the §4.2
// design-space-exploration shape — plus helpers below build their
// estimators.
func batchParamSets(t *testing.T) []fabric.Params {
	t.Helper()
	var sets []fabric.Params
	for _, mut := range []func(*fabric.Params){
		func(p *fabric.Params) {},
		func(p *fabric.Params) { p.Grid = fabric.Grid{Width: 90, Height: 90} },
		func(p *fabric.Params) { p.ChannelCapacity = 2 },
		func(p *fabric.Params) { p.QubitSpeed = 0.002 },
		func(p *fabric.Params) { p.TMove = 150 },
		func(p *fabric.Params) { p.DCNOT = 6000 },
	} {
		p := fabric.Default()
		mut(&p)
		sets = append(sets, p)
	}
	return sets
}

func batchEstimators(t *testing.T, sets []fabric.Params, opt Options) []*Estimator {
	t.Helper()
	ests := make([]*Estimator, len(sets))
	for i, p := range sets {
		e, err := New(p, opt)
		if err != nil {
			t.Fatal(err)
		}
		ests[i] = e
	}
	return ests
}

// assertResultsBitwiseEqual compares two Results field by field with no
// float tolerance — the batched path must reproduce the serial one exactly.
func assertResultsBitwiseEqual(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if math.Float64bits(got.EstimatedLatency) != math.Float64bits(want.EstimatedLatency) {
		t.Fatalf("%s: EstimatedLatency %v, want %v", label, got.EstimatedLatency, want.EstimatedLatency)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: batched Result diverges from serial:\n got %+v\nwant %+v", label, got, want)
	}
}

// TestEstimateAnalysisBatchMatchesPerColumn is the batch contract: for every
// paper benchmark (the small subset under -short) and six parameter columns,
// every Result of one EstimateAnalysisBatch call must be bitwise identical
// to its per-column EstimateAnalysisArena twin — arena and fresh-allocation
// variants both.
func TestEstimateAnalysisBatchMatchesPerColumn(t *testing.T) {
	sets := batchParamSets(t)
	ests := batchEstimators(t, sets, Options{})
	names := []string{"ham7", "4bitadder", "mod16adder"}
	if !testing.Short() {
		names = append(names, "gf2^16mult", "hwb100ps")
	}
	ar := analysis.NewArena()
	for _, name := range names {
		c, err := benchgen.GenerateFT(name)
		if err != nil {
			t.Fatal(err)
		}
		a, err := analysis.Analyze(c)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]*Result, len(ests))
		for j, e := range ests {
			want[j], err = e.EstimateAnalysisArena(a, nil)
			if err != nil {
				t.Fatal(err)
			}
		}
		results, errs := EstimateAnalysisBatch(ests, a, ar)
		for j := range ests {
			if errs[j] != nil {
				t.Fatalf("%s col %d: %v", name, j, errs[j])
			}
			assertResultsBitwiseEqual(t, name, results[j], want[j])
		}
		fresh, errs := EstimateAnalysisBatch(ests, a, nil)
		for j := range ests {
			if errs[j] != nil {
				t.Fatalf("%s col %d (fresh): %v", name, j, errs[j])
			}
			assertResultsBitwiseEqual(t, name+"/fresh", fresh[j], want[j])
		}
	}
}

// TestEstimateAnalysisBatchPerColumnErrors pins the error isolation: a
// column whose params lack a gate delay fails with exactly the error the
// serial path reports, while its neighbor columns estimate normally.
func TestEstimateAnalysisBatchPerColumnErrors(t *testing.T) {
	c, err := benchgen.GenerateFT("ham7")
	if err != nil {
		t.Fatal(err)
	}
	a, err := analysis.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	good := fabric.Default()
	broken := fabric.Default()
	delete(broken.GateDelay, circuit.H) // ham7 uses H; weight build must fail
	ests := batchEstimators(t, []fabric.Params{good, broken, good}, Options{})

	results, errs := EstimateAnalysisBatch(ests, a, analysis.NewArena())
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("good columns failed: %v, %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("broken column succeeded")
	}
	if results[1] != nil {
		t.Fatal("broken column returned a Result")
	}
	_, wantErr := ests[1].EstimateAnalysisArena(a, nil)
	if wantErr == nil || errs[1].Error() != wantErr.Error() {
		t.Fatalf("batch error %q, serial error %q", errs[1], wantErr)
	}
	want, err := ests[0].EstimateAnalysisArena(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsBitwiseEqual(t, "good-around-broken", results[0], want)
	assertResultsBitwiseEqual(t, "good-around-broken", results[2], want)
}

// TestEstimateAnalysisBatchNonFT: a non-FT analysis fails every column with
// the single-column path's NonFTError.
func TestEstimateAnalysisBatchNonFT(t *testing.T) {
	c, err := benchgen.GenerateFT("ham7")
	if err != nil {
		t.Fatal(err)
	}
	real, err := analysis.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	na := *real
	na.FT = false // same precondition EstimateAnalysisArena guards on
	a := &na
	ests := batchEstimators(t, []fabric.Params{fabric.Default(), fabric.Default()}, Options{})
	results, errs := EstimateAnalysisBatch(ests, a, nil)
	for j := range ests {
		var nf *NonFTError
		if !errors.As(errs[j], &nf) {
			t.Fatalf("col %d: %v, want NonFTError", j, errs[j])
		}
		if results[j] != nil {
			t.Fatalf("col %d returned a Result", j)
		}
	}
}

// TestEstimateAnalysisBatchEmpty: zero columns is a no-op.
func TestEstimateAnalysisBatchEmpty(t *testing.T) {
	c, err := benchgen.GenerateFT("ham7")
	if err != nil {
		t.Fatal(err)
	}
	a, err := analysis.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	results, errs := EstimateAnalysisBatch(nil, a, nil)
	if len(results) != 0 || len(errs) != 0 {
		t.Fatalf("got %d results, %d errs", len(results), len(errs))
	}
}
