// Package zonemodel implements the fabric-dependent half of LEQA's routing
// model (§3.1, Eq. 4–8): the presence-zone coverage probabilities P_{x,y}
// (Eq. 5), the expected shared surfaces E[S_q] (Eq. 4, truncated per the
// paper), the M/M/1 channel delays d_q (Eq. 8) and their weighted average
// L_CNOT^avg (Eq. 2).
//
// Everything here depends only on the fabric geometry, the zone side, the
// qubit count and the congestion parameters — not on the circuit's gate
// list — so a computed Model is reusable across every estimate on the same
// fabric. Cache (an LRU memo keyed by Key) exploits that: repeated
// estimates, ablation sweeps and concurrent batch runs share one Model per
// distinct configuration.
//
// The E[S_q] evaluation collapses the paper's O(a·b) cell scan to a
// histogram over distinct coverage products: the 1-D profile f[x] =
// min(x, n−x+1, s, n−s+1) takes at most min(s, n−s+1) distinct values, so
// the 2-D field px[x]·py[y] has at most min(s,a−s+1)·min(s,b−s+1) distinct
// products and the per-k sum runs over those products weighted by their
// multiplicities instead of over all a·b cells.
package zonemodel

import (
	"math"
	"sort"

	"repro/internal/fabric"
	"repro/internal/queuemodel"
)

// Key identifies one fabric-dependent model instance. All fields take part
// in equality so Key is directly usable as a map key; DUncongBits carries
// the d_uncong float bit-exactly (Eq. 8 scales linearly with it, so every
// distinct value is a distinct model).
type Key struct {
	// Grid is the fabric geometry (a × b ULBs).
	Grid fabric.Grid
	// ZoneSide is ⌈√B⌉ clamped to the fabric (see ZoneSide).
	ZoneSide int
	// Q is the number of logical qubits placing zones on the fabric.
	Q int
	// Kmax is the E[S_q] truncation limit (the paper's 20 terms).
	Kmax int
	// Capacity is the routing-channel capacity Nc.
	Capacity int
	// DUncongBits is math.Float64bits of d_uncong (Eq. 12).
	DUncongBits uint64
	// DisableCongestion replaces Eq. 8 with d_q = d_uncong (ablation).
	DisableCongestion bool
}

// DUncong recovers the congestion-free routing latency from the key.
func (k Key) DUncong() float64 { return math.Float64frombits(k.DUncongBits) }

// NewKey assembles a Key from physical parameters and the IIG-derived
// average zone area, deriving the clamped zone side.
func NewKey(grid fabric.Grid, avgZoneArea float64, q, kmax, capacity int, dUncong float64, disableCongestion bool) Key {
	return Key{
		Grid:              grid,
		ZoneSide:          ZoneSide(grid, avgZoneArea),
		Q:                 q,
		Kmax:              kmax,
		Capacity:          capacity,
		DUncongBits:       math.Float64bits(dUncong),
		DisableCongestion: disableCongestion,
	}
}

// Model holds the fabric-dependent intermediates of one configuration. A
// Model is immutable after Compute; share freely across goroutines.
type Model struct {
	// Key echoes the configuration this model was computed for.
	Key Key
	// esq[k] is E[S_q=k] (Eq. 4) for k = 1..Kmax; index 0 unused.
	esq []float64
	// dq[k] is d_q (Eq. 8) for k = 1..Kmax; index 0 unused.
	dq []float64
	// LCNOT is L_CNOT^avg (Eq. 2): Σ E[S_q]·d_q / Σ E[S_q].
	LCNOT float64
}

// Compute evaluates the model for a key. The only error source is an
// invalid channel configuration (capacity < 1 or d_uncong ≤ 0).
func Compute(key Key) (*Model, error) {
	ch, err := queuemodel.NewChannel(key.Capacity, key.DUncong())
	if err != nil {
		return nil, err
	}
	m := &Model{
		Key: key,
		esq: make([]float64, key.Kmax+1),
		dq:  make([]float64, key.Kmax+1),
	}
	for k := 1; k <= key.Kmax; k++ {
		if key.DisableCongestion {
			m.dq[k] = key.DUncong()
		} else {
			m.dq[k] = ch.Delay(k)
		}
	}

	expectedSurfaces(m.esq, key.Grid, key.ZoneSide, key.Q, key.Kmax)

	// Line 18 of Algorithm 1: L_CNOT^avg (Eq. 2).
	num, den := 0.0, 0.0
	for k := 1; k <= key.Kmax; k++ {
		num += m.esq[k] * m.dq[k]
		den += m.esq[k]
	}
	if den > 0 {
		m.LCNOT = num / den
	}
	return m, nil
}

// ESq returns a fresh copy of the E[S_q] series (index 0 unused), safe for
// callers to own and mutate.
func (m *Model) ESq() []float64 { return append([]float64(nil), m.esq...) }

// Dq returns a fresh copy of the d_q series (index 0 unused).
func (m *Model) Dq() []float64 { return append([]float64(nil), m.dq...) }

// ZoneSide returns ⌈√B⌉ clamped to [1, min(a, b)] so a zone always fits on
// the fabric.
func ZoneSide(grid fabric.Grid, avgZoneArea float64) int {
	side := int(math.Ceil(math.Sqrt(avgZoneArea)))
	if side < 1 {
		side = 1
	}
	if side > grid.Width {
		side = grid.Width
	}
	if side > grid.Height {
		side = grid.Height
	}
	return side
}

// CoverProfile returns f[x] = min(x, n−x+1, s, n−s+1) for x in 1..n — the
// 1-D count of zone placements covering coordinate x (Eq. 5 numerator
// factor; Fig. 4). Index 0 is unused.
func CoverProfile(n, s int) []float64 {
	f := make([]float64, n+1)
	for x := 1; x <= n; x++ {
		v := x
		if n-x+1 < v {
			v = n - x + 1
		}
		if s < v {
			v = s
		}
		if n-s+1 < v {
			v = n - s + 1
		}
		f[x] = float64(v)
	}
	return f
}

// CoverageProbability exposes Eq. 5 for a single ULB — used by the Fig. 3/4
// regenerations and tests. x and y are 1-based.
func CoverageProbability(grid fabric.Grid, zoneSide, x, y int) float64 {
	if zoneSide > grid.Width {
		zoneSide = grid.Width
	}
	if zoneSide > grid.Height {
		zoneSide = grid.Height
	}
	px := CoverProfile(grid.Width, zoneSide)
	py := CoverProfile(grid.Height, zoneSide)
	denom := float64(grid.Width-zoneSide+1) * float64(grid.Height-zoneSide+1)
	return px[x] * py[y] / denom
}

// productHistogram collapses the P_{x,y} field to its distinct numerator
// products v = px[x]·py[y] with multiplicities, sorted ascending so the
// downstream float accumulation is deterministic.
type productBin struct {
	product float64 // px·py numerator (an integer value)
	count   float64 // number of cells sharing it
}

func productHistogram(grid fabric.Grid, side int) []productBin {
	hx := profileHistogram(grid.Width, side)
	hy := profileHistogram(grid.Height, side)
	acc := make(map[int]int, len(hx)*len(hy))
	for vx, cx := range hx {
		for vy, cy := range hy {
			acc[vx*vy] += cx * cy
		}
	}
	bins := make([]productBin, 0, len(acc))
	for v, c := range acc {
		bins = append(bins, productBin{product: float64(v), count: float64(c)})
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i].product < bins[j].product })
	return bins
}

// profileHistogram counts how many coordinates share each distinct profile
// value. The profile takes at most min(s, n−s+1) distinct values.
func profileHistogram(n, s int) map[int]int {
	f := CoverProfile(n, s)
	h := make(map[int]int)
	for x := 1; x <= n; x++ {
		h[int(f[x])]++
	}
	return h
}

// expectedSurfaces fills esq[1..kmax] with E[S_q] (Eq. 4) via the product
// histogram. The binomial coefficient is built incrementally in log space
// (the paper's Eq. 18 recurrence); cells with P = 1 contribute only to the
// q = Q term and cells with P = 0 only to q = 0.
func expectedSurfaces(esq []float64, grid fabric.Grid, side, qubits, kmax int) {
	bins := productHistogram(grid, side)
	denom := float64(grid.Width-side+1) * float64(grid.Height-side+1)
	fQ := float64(qubits)
	logC := 0.0 // log C(Q,0)
	for k := 1; k <= kmax; k++ {
		logC += math.Log((fQ - float64(k) + 1) / float64(k))
		sum := 0.0
		for _, bin := range bins {
			p := bin.product / denom
			switch {
			case p <= 0:
				// covered by no placement: contributes only to q=0
			case p >= 1:
				// always covered: contributes only to q=Q
				if k == qubits {
					sum += bin.count
				}
			default:
				sum += bin.count * math.Exp(logC+float64(k)*math.Log(p)+(fQ-float64(k))*math.Log1p(-p))
			}
		}
		esq[k] = sum
	}
}

// ExpectedSurfacesCellScan is the pre-histogram reference: the O(kmax·a·b)
// per-cell scan over the whole fabric. Kept for equivalence tests and as
// the benchmark baseline the histogram path is measured against.
func ExpectedSurfacesCellScan(grid fabric.Grid, side, qubits, kmax int) []float64 {
	px := CoverProfile(grid.Width, side)
	py := CoverProfile(grid.Height, side)
	denom := float64(grid.Width-side+1) * float64(grid.Height-side+1)
	esq := make([]float64, kmax+1)
	fQ := float64(qubits)
	logC := 0.0
	for k := 1; k <= kmax; k++ {
		logC += math.Log((fQ - float64(k) + 1) / float64(k))
		sum := 0.0
		for x := 1; x <= grid.Width; x++ {
			for y := 1; y <= grid.Height; y++ {
				p := px[x] * py[y] / denom
				switch {
				case p <= 0:
				case p >= 1:
					if k == qubits {
						sum += 1
					}
				default:
					sum += math.Exp(logC + float64(k)*math.Log(p) + (fQ-float64(k))*math.Log1p(-p))
				}
			}
		}
		esq[k] = sum
	}
	return esq
}

// ExpectedSurfaceExact computes E[S_q] without truncation for one q — used
// by tests validating the Eq. 3 constraint Σ_{q=0..Q} E[S_q] = A.
func ExpectedSurfaceExact(grid fabric.Grid, zoneSide, qubits, q int) float64 {
	px := CoverProfile(grid.Width, zoneSide)
	py := CoverProfile(grid.Height, zoneSide)
	denom := float64(grid.Width-zoneSide+1) * float64(grid.Height-zoneSide+1)
	logC := 0.0
	for k := 1; k <= q; k++ {
		logC += math.Log((float64(qubits) - float64(k) + 1) / float64(k))
	}
	sum := 0.0
	for x := 1; x <= grid.Width; x++ {
		for y := 1; y <= grid.Height; y++ {
			p := px[x] * py[y] / denom
			switch {
			case p <= 0:
				if q == 0 {
					sum += 1
				}
			case p >= 1:
				if q == qubits {
					sum += 1
				}
			default:
				sum += math.Exp(logC + float64(q)*math.Log(p) + float64(qubits-q)*math.Log1p(-p))
			}
		}
	}
	return sum
}
