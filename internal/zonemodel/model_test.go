package zonemodel

import (
	"math"
	"testing"

	"repro/internal/fabric"
)

func testKey(grid fabric.Grid, side, q, kmax int) Key {
	return Key{
		Grid:        grid,
		ZoneSide:    side,
		Q:           q,
		Kmax:        kmax,
		Capacity:    5,
		DUncongBits: math.Float64bits(850),
	}
}

func TestHistogramMatchesCellScan(t *testing.T) {
	// The histogram collapse must reproduce the per-cell scan on fabrics
	// with no symmetry to hide behind (asymmetric, prime-ish dimensions).
	cases := []struct {
		grid       fabric.Grid
		side, q, k int
	}{
		{fabric.Grid{Width: 13, Height: 7}, 3, 12, 12},
		{fabric.Grid{Width: 40, Height: 17}, 5, 30, 20},
		{fabric.Grid{Width: 60, Height: 60}, 4, 50, 20},
		{fabric.Grid{Width: 9, Height: 1}, 1, 6, 6},
		{fabric.Grid{Width: 6, Height: 6}, 6, 4, 4}, // full-fabric zone: P = 1 everywhere
		{fabric.Grid{Width: 1, Height: 1}, 1, 3, 3},
	}
	for _, tc := range cases {
		m, err := Compute(testKey(tc.grid, tc.side, tc.q, tc.k))
		if err != nil {
			t.Fatalf("%dx%d: %v", tc.grid.Width, tc.grid.Height, err)
		}
		want := ExpectedSurfacesCellScan(tc.grid, tc.side, tc.q, tc.k)
		got := m.ESq()
		for k := 1; k <= tc.k; k++ {
			diff := math.Abs(got[k] - want[k])
			scale := math.Max(1, math.Abs(want[k]))
			if diff/scale > 1e-9 {
				t.Errorf("%dx%d side=%d Q=%d: E[S_%d] histogram %v vs cell scan %v",
					tc.grid.Width, tc.grid.Height, tc.side, tc.q, k, got[k], want[k])
			}
		}
	}
}

func TestExpectedSurfaceEq3Constraint(t *testing.T) {
	// Σ_{q=0..Q} E[S_q] = A (Eq. 3), including on asymmetric grids.
	for _, grid := range []fabric.Grid{
		{Width: 12, Height: 12}, {Width: 12, Height: 5}, {Width: 7, Height: 11},
	} {
		for _, qubits := range []int{1, 3, 8} {
			total := 0.0
			for q := 0; q <= qubits; q++ {
				total += ExpectedSurfaceExact(grid, 3, qubits, q)
			}
			if math.Abs(total-float64(grid.Area())) > 1e-6 {
				t.Errorf("%dx%d Q=%d: ΣE[S_q] = %v, want %d",
					grid.Width, grid.Height, qubits, total, grid.Area())
			}
		}
	}
}

func TestModelESqMatchesExact(t *testing.T) {
	// With Kmax = Q the truncated series must agree with the per-q exact
	// evaluation term by term.
	grid := fabric.Grid{Width: 15, Height: 8}
	const side, q = 3, 10
	m, err := Compute(testKey(grid, side, q, q))
	if err != nil {
		t.Fatal(err)
	}
	esq := m.ESq()
	for k := 1; k <= q; k++ {
		want := ExpectedSurfaceExact(grid, side, q, k)
		if math.Abs(esq[k]-want) > 1e-9*math.Max(1, want) {
			t.Errorf("E[S_%d] = %v, want %v", k, esq[k], want)
		}
	}
}

func TestZoneSideClamping(t *testing.T) {
	cases := []struct {
		grid fabric.Grid
		area float64
		want int
	}{
		{fabric.Grid{Width: 60, Height: 60}, 9.4, 4},  // ⌈√9.4⌉ = 4
		{fabric.Grid{Width: 60, Height: 60}, 0, 1},    // degenerate area floors at 1
		{fabric.Grid{Width: 1, Height: 40}, 9, 1},     // 1×N fabric clamps to side 1
		{fabric.Grid{Width: 40, Height: 1}, 25, 1},    // N×1 likewise
		{fabric.Grid{Width: 3, Height: 8}, 100, 3},    // clamps to the narrow dimension
		{fabric.Grid{Width: 5, Height: 5}, 1e6, 5},    // never exceeds the fabric
		{fabric.Grid{Width: 10, Height: 10}, 16.0, 4}, // exact square
	}
	for _, tc := range cases {
		if got := ZoneSide(tc.grid, tc.area); got != tc.want {
			t.Errorf("ZoneSide(%dx%d, %g) = %d, want %d",
				tc.grid.Width, tc.grid.Height, tc.area, got, tc.want)
		}
	}
}

func TestDegenerateFabricModel(t *testing.T) {
	// A 1×N fabric degenerates the zone to a single ULB; the model must
	// still produce a finite, Eq. 3-consistent series.
	grid := fabric.Grid{Width: 1, Height: 9}
	const q = 5
	m, err := Compute(testKey(grid, ZoneSide(grid, 4), q, q))
	if err != nil {
		t.Fatal(err)
	}
	esq := m.ESq()
	total := ExpectedSurfaceExact(grid, 1, q, 0)
	for k := 1; k <= q; k++ {
		if math.IsNaN(esq[k]) || esq[k] < 0 {
			t.Fatalf("E[S_%d] = %v on 1x9", k, esq[k])
		}
		total += esq[k]
	}
	if math.Abs(total-float64(grid.Area())) > 1e-6 {
		t.Errorf("1x9: ΣE[S_q] = %v, want %d", total, grid.Area())
	}
	if m.LCNOT <= 0 {
		t.Errorf("L_CNOT = %v, want > 0", m.LCNOT)
	}
}

func TestDqSeries(t *testing.T) {
	key := testKey(fabric.Grid{Width: 20, Height: 20}, 3, 12, 12)
	m, err := Compute(key)
	if err != nil {
		t.Fatal(err)
	}
	dq := m.Dq()
	dUncong := key.DUncong()
	for k := 1; k <= key.Kmax; k++ {
		if k <= key.Capacity {
			if dq[k] != dUncong {
				t.Errorf("d_%d = %v, want uncongested %v", k, dq[k], dUncong)
			}
		} else if dq[k] <= dUncong {
			t.Errorf("d_%d = %v not congested beyond Nc", k, dq[k])
		}
	}

	key.DisableCongestion = true
	m2, err := Compute(key)
	if err != nil {
		t.Fatal(err)
	}
	for k, d := range m2.Dq()[1:] {
		if d != dUncong {
			t.Errorf("congestion disabled: d_%d = %v, want %v", k+1, d, dUncong)
		}
	}
	if math.Abs(m2.LCNOT-dUncong) > 1e-9*dUncong {
		t.Errorf("congestion disabled: L_CNOT = %v, want %v", m2.LCNOT, dUncong)
	}
}

func TestComputeRejectsBadChannel(t *testing.T) {
	key := testKey(fabric.Grid{Width: 5, Height: 5}, 2, 4, 4)
	key.Capacity = 0
	if _, err := Compute(key); err == nil {
		t.Error("want capacity validation error")
	}
	key = testKey(fabric.Grid{Width: 5, Height: 5}, 2, 4, 4)
	key.DUncongBits = math.Float64bits(-1)
	if _, err := Compute(key); err == nil {
		t.Error("want d_uncong validation error")
	}
}

func TestModelCopiesAreIndependent(t *testing.T) {
	m, err := Compute(testKey(fabric.Grid{Width: 10, Height: 10}, 3, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	a, b := m.ESq(), m.ESq()
	a[1] = -1
	if b[1] == -1 {
		t.Error("ESq copies alias the same backing array")
	}
	d1, d2 := m.Dq(), m.Dq()
	d1[1] = -1
	if d2[1] == -1 {
		t.Error("Dq copies alias the same backing array")
	}
}
