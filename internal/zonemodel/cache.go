package zonemodel

import (
	"container/list"
	"fmt"
	"sync"
)

// DefaultCacheSize bounds the shared memo. Each entry holds two Kmax-length
// float slices (a few hundred bytes at the paper's 20-term truncation), so
// even a saturated cache stays tiny; the bound exists to keep unbounded
// parameter sweeps (e.g. fabric-size scans over thousands of grids) from
// growing without limit.
const DefaultCacheSize = 256

// Cache is a concurrency-safe LRU memo from Key to Model. Lookups of a key
// being computed by another goroutine block until that computation finishes
// (single-flight), so N concurrent estimates on the same fabric run the
// model exactly once.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used; values are *cacheEntry
	items     map[Key]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

// CacheStats is a snapshot of a cache's cumulative counters — surfaced by
// cmd/experiments -verbose, cmd/leqa sweep footers and (via
// leqa.ZoneCacheStats) any future service health endpoint.
type CacheStats struct {
	// Hits and Misses count lookups; Misses equals the number of model
	// computations started.
	Hits, Misses uint64
	// Evictions counts LRU victims dropped to stay within capacity.
	Evictions uint64
	// Entries is the resident model count; Capacity the LRU bound.
	Entries, Capacity int
}

// String renders the counters on one line for reports.
func (s CacheStats) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d entries=%d/%d",
		s.Hits, s.Misses, s.Evictions, s.Entries, s.Capacity)
}

type cacheEntry struct {
	key   Key
	once  sync.Once
	model *Model
	err   error
}

// Shared is the process-wide memo used by the estimator core.
var Shared = NewCache(DefaultCacheSize)

// NewCache builds an LRU memo holding up to capacity models.
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[Key]*list.Element, capacity),
	}
}

// Get returns the memoized model for key, computing it on first use. The
// compute runs outside the cache lock; concurrent callers for the same key
// share one computation via sync.Once.
func (c *Cache) Get(key Key) (*Model, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		e.once.Do(func() { e.model, e.err = Compute(e.key) })
		return e.model, e.err
	}
	c.misses++
	e := &cacheEntry{key: key}
	c.items[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.mu.Unlock()
	// An entry evicted while still being computed stays valid for everyone
	// already holding it; it just stops being findable.
	e.once.Do(func() { e.model, e.err = Compute(e.key) })
	return e.model, e.err
}

// Len reports the number of resident models.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats reports the cumulative lookup, eviction and occupancy counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Capacity:  c.capacity,
	}
}

// Purge empties the cache and resets its statistics.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
	c.hits, c.misses, c.evictions = 0, 0, 0
}

// String renders a one-line diagnostic (for verbose reports).
func (c *Cache) String() string {
	return "zonemodel.Cache{" + c.Stats().String() + "}"
}
