package zonemodel

import (
	"math"
	"sync"
	"testing"

	"repro/internal/fabric"
)

func cacheKey(width, q int) Key {
	grid := fabric.Grid{Width: width, Height: width}
	return Key{
		Grid:        grid,
		ZoneSide:    3,
		Q:           q,
		Kmax:        min(q, 20),
		Capacity:    5,
		DUncongBits: math.Float64bits(850),
	}
}

func TestCacheMemoizes(t *testing.T) {
	c := NewCache(8)
	key := cacheKey(30, 12)
	m1, err := c.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("second lookup did not return the memoized model")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", st.Hits, st.Misses)
	}
	if st.Evictions != 0 || st.Entries != 1 {
		t.Errorf("stats = %v, want 0 evictions / 1 entry", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	k1, k2, k3 := cacheKey(10, 6), cacheKey(11, 6), cacheKey(12, 6)
	for _, k := range []Key{k1, k2, k3} {
		if _, err := c.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	// k1 is the LRU victim; re-fetching it must be a miss.
	before := c.Stats().Misses
	if _, err := c.Get(k1); err != nil {
		t.Fatal(err)
	}
	if after := c.Stats().Misses; after != before+1 {
		t.Errorf("evicted key did not recompute (misses %d -> %d)", before, after)
	}
	// k2 was second-oldest and has now been evicted by k1's reinsert; k3
	// must still be resident.
	hitsBefore := c.Stats().Hits
	if _, err := c.Get(k3); err != nil {
		t.Fatal(err)
	}
	if hitsAfter := c.Stats().Hits; hitsAfter != hitsBefore+1 {
		t.Error("most-recently-inserted key was evicted")
	}
}

func TestCacheTouchOnGet(t *testing.T) {
	c := NewCache(2)
	k1, k2, k3 := cacheKey(10, 6), cacheKey(11, 6), cacheKey(12, 6)
	mustGet := func(k Key) {
		t.Helper()
		if _, err := c.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(k1)
	mustGet(k2)
	mustGet(k1) // touch k1 so k2 becomes the LRU victim
	mustGet(k3) // evicts k2
	hitsBefore := c.Stats().Hits
	mustGet(k1)
	if hitsAfter := c.Stats().Hits; hitsAfter != hitsBefore+1 {
		t.Error("touched key was evicted instead of the LRU one")
	}
}

func TestCachePurge(t *testing.T) {
	c := NewCache(4)
	if _, err := c.Get(cacheKey(10, 6)); err != nil {
		t.Fatal(err)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("len after purge = %d", c.Len())
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Evictions != 0 {
		t.Errorf("stats after purge = %v", st)
	}
}

// TestCacheConcurrent hammers one cache from many goroutines over a few
// keys; run with -race. Every caller must observe the same model instance
// per key (single-flight), and each key must be computed exactly once.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(16)
	keys := []Key{cacheKey(20, 8), cacheKey(25, 10), cacheKey(30, 12), cacheKey(35, 14)}
	const goroutines = 32
	const rounds = 25

	models := make([][]*Model, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			models[g] = make([]*Model, len(keys))
			for r := 0; r < rounds; r++ {
				for i, k := range keys {
					m, err := c.Get(k)
					if err != nil {
						t.Error(err)
						return
					}
					if models[g][i] == nil {
						models[g][i] = m
					} else if models[g][i] != m {
						t.Errorf("goroutine %d key %d: model instance changed", g, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	for i := range keys {
		for g := 1; g < goroutines; g++ {
			if models[g][i] != models[0][i] {
				t.Errorf("key %d: goroutine %d saw a different model", i, g)
			}
		}
	}
	st := c.Stats()
	if st.Misses != uint64(len(keys)) {
		t.Errorf("misses = %d, want one per key (%d)", st.Misses, len(keys))
	}
	if want := uint64(goroutines*rounds*len(keys)) - st.Misses; st.Hits != want {
		t.Errorf("hits = %d, want %d", st.Hits, want)
	}
}

// TestCacheConcurrentEviction races lookups against evictions: a capacity-1
// cache with callers cycling disjoint keys must never corrupt results.
func TestCacheConcurrentEviction(t *testing.T) {
	c := NewCache(1)
	keys := []Key{cacheKey(20, 8), cacheKey(25, 10), cacheKey(30, 12)}
	want := make([]float64, len(keys))
	for i, k := range keys {
		m, err := Compute(k)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = m.LCNOT
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				i := (g + r) % len(keys)
				m, err := c.Get(keys[i])
				if err != nil {
					t.Error(err)
					return
				}
				if m.LCNOT != want[i] {
					t.Errorf("key %d: L_CNOT %v, want %v", i, m.LCNOT, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
