package sim

import (
	"fmt"

	"repro/internal/circuit"
)

// Bits is a classical bit assignment for a register, one bool per qubit.
type Bits []bool

// NewBits returns an all-zero assignment for n qubits.
func NewBits(n int) Bits { return make(Bits, n) }

// BitsFromUint builds an assignment from the low n bits of v (qubit 0 =
// least significant bit).
func BitsFromUint(n int, v uint64) Bits {
	b := make(Bits, n)
	for i := 0; i < n && i < 64; i++ {
		b[i] = v&(1<<uint(i)) != 0
	}
	return b
}

// Uint packs the first min(n,64) bits back into an integer.
func (b Bits) Uint() uint64 {
	var v uint64
	for i := 0; i < len(b) && i < 64; i++ {
		if b[i] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Clone deep-copies the assignment.
func (b Bits) Clone() Bits {
	out := make(Bits, len(b))
	copy(out, b)
	return out
}

// ApplyReversible executes one classical reversible gate in place. Gates
// outside the reversible subset (H, S, T, ...) are rejected.
func (b Bits) ApplyReversible(g circuit.Gate) error {
	if err := g.Validate(len(b)); err != nil {
		return err
	}
	switch g.Type {
	case circuit.X:
		b[g.Targets[0]] = !b[g.Targets[0]]
	case circuit.CNOT, circuit.Toffoli, circuit.MCT:
		all := true
		for _, c := range g.Controls {
			if !b[c] {
				all = false
				break
			}
		}
		if all {
			b[g.Targets[0]] = !b[g.Targets[0]]
		}
	case circuit.Swap:
		a, t := g.Targets[0], g.Targets[1]
		b[a], b[t] = b[t], b[a]
	case circuit.Fredkin, circuit.MCF:
		all := true
		for _, c := range g.Controls {
			if !b[c] {
				all = false
				break
			}
		}
		if all {
			a, t := g.Targets[0], g.Targets[1]
			b[a], b[t] = b[t], b[a]
		}
	default:
		return fmt.Errorf("sim: gate %s is not classically reversible", g.Type)
	}
	return nil
}

// RunReversible executes an entire reversible circuit on the assignment.
func (b Bits) RunReversible(c *circuit.Circuit) error {
	if c.NumQubits() > len(b) {
		return fmt.Errorf("sim: circuit has %d qubits, register has %d", c.NumQubits(), len(b))
	}
	for i, g := range c.Gates {
		if err := b.ApplyReversible(g); err != nil {
			return fmt.Errorf("gate %d: %w", i, err)
		}
	}
	return nil
}

// ReversibleTruthTable evaluates a reversible circuit on all 2^n inputs,
// where n = c.NumQubits() ≤ 24, returning out[i] = permutation image of i.
func ReversibleTruthTable(c *circuit.Circuit) ([]uint64, error) {
	n := c.NumQubits()
	if n > 24 {
		return nil, fmt.Errorf("sim: truth table limited to 24 qubits, got %d", n)
	}
	size := uint64(1) << uint(n)
	out := make([]uint64, size)
	for v := uint64(0); v < size; v++ {
		b := BitsFromUint(n, v)
		if err := b.RunReversible(c); err != nil {
			return nil, err
		}
		out[v] = b.Uint()
	}
	return out, nil
}

// IsPermutation reports whether tt is a bijection on its index range; every
// valid reversible circuit's truth table must be one.
func IsPermutation(tt []uint64) bool {
	seen := make([]bool, len(tt))
	for _, v := range tt {
		if v >= uint64(len(tt)) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
