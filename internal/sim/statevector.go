// Package sim provides two reference executors for circuits: an exact
// statevector simulator for small registers (used to verify that gate
// decompositions implement the same unitary) and a classical bit-vector
// simulator for reversible-only circuits of any size.
//
// Neither simulator is on LEQA's hot path; they exist so the test suite can
// prove the synthesis substrate correct rather than assume it.
package sim

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/circuit"
)

// MaxStateQubits bounds the statevector register size (2^22 amplitudes ≈
// 64 MiB of complex128) to keep accidental misuse from exhausting memory.
const MaxStateQubits = 22

// State is a dense statevector over n qubits. Amplitude indexing uses qubit
// 0 as the least significant bit of the basis index.
type State struct {
	n   int
	amp []complex128
}

// NewState returns |0...0⟩ on n qubits.
func NewState(n int) (*State, error) {
	if n < 0 || n > MaxStateQubits {
		return nil, fmt.Errorf("sim: qubit count %d outside [0,%d]", n, MaxStateQubits)
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	s.amp[0] = 1
	return s, nil
}

// NewBasisState returns |basis⟩ on n qubits.
func NewBasisState(n int, basis uint64) (*State, error) {
	s, err := NewState(n)
	if err != nil {
		return nil, err
	}
	if basis >= uint64(len(s.amp)) {
		return nil, fmt.Errorf("sim: basis %d out of range for %d qubits", basis, n)
	}
	s.amp[0] = 0
	s.amp[basis] = 1
	return s, nil
}

// NumQubits returns the register size.
func (s *State) NumQubits() int { return s.n }

// Amplitude returns the amplitude of basis state i.
func (s *State) Amplitude(i uint64) complex128 { return s.amp[i] }

// Clone deep-copies the state.
func (s *State) Clone() *State {
	out := &State{n: s.n, amp: make([]complex128, len(s.amp))}
	copy(out.amp, s.amp)
	return out
}

// Norm returns the 2-norm of the statevector (1.0 for a valid state).
func (s *State) Norm() float64 {
	sum := 0.0
	for _, a := range s.amp {
		sum += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(sum)
}

// Fidelity returns |⟨s|t⟩|, which is 1 iff the states are equal up to a
// global phase.
func (s *State) Fidelity(t *State) (float64, error) {
	if s.n != t.n {
		return 0, fmt.Errorf("sim: fidelity between %d and %d qubit states", s.n, t.n)
	}
	var ip complex128
	for i := range s.amp {
		ip += cmplx.Conj(s.amp[i]) * t.amp[i]
	}
	return cmplx.Abs(ip), nil
}

// applyOneQubit applies the 2×2 matrix {{m00,m01},{m10,m11}} to qubit q.
func (s *State) applyOneQubit(q int, m00, m01, m10, m11 complex128) {
	bit := uint64(1) << uint(q)
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		if i&bit != 0 {
			continue
		}
		j := i | bit
		a0, a1 := s.amp[i], s.amp[j]
		s.amp[i] = m00*a0 + m01*a1
		s.amp[j] = m10*a0 + m11*a1
	}
}

// invSqrt2 is 1/√2 for the Hadamard matrix.
var invSqrt2 = complex(1/math.Sqrt2, 0)

// ApplyGate applies one gate to the state.
func (s *State) ApplyGate(g circuit.Gate) error {
	if err := g.Validate(s.n); err != nil {
		return err
	}
	switch g.Type {
	case circuit.X:
		s.applyOneQubit(g.Targets[0], 0, 1, 1, 0)
	case circuit.Y:
		s.applyOneQubit(g.Targets[0], 0, -1i, 1i, 0)
	case circuit.Z:
		s.applyOneQubit(g.Targets[0], 1, 0, 0, -1)
	case circuit.H:
		s.applyOneQubit(g.Targets[0], invSqrt2, invSqrt2, invSqrt2, -invSqrt2)
	case circuit.S:
		s.applyOneQubit(g.Targets[0], 1, 0, 0, 1i)
	case circuit.Sdg:
		s.applyOneQubit(g.Targets[0], 1, 0, 0, -1i)
	case circuit.T:
		s.applyOneQubit(g.Targets[0], 1, 0, 0, cmplx.Exp(1i*math.Pi/4))
	case circuit.Tdg:
		s.applyOneQubit(g.Targets[0], 1, 0, 0, cmplx.Exp(-1i*math.Pi/4))
	case circuit.CNOT, circuit.Toffoli, circuit.MCT:
		s.applyControlledX(g.Controls, g.Targets[0])
	case circuit.Swap:
		s.applySwap(0, g.Targets[0], g.Targets[1])
	case circuit.Fredkin:
		s.applySwap(uint64(1)<<uint(g.Controls[0]), g.Targets[0], g.Targets[1])
	case circuit.MCF:
		var mask uint64
		for _, c := range g.Controls {
			mask |= uint64(1) << uint(c)
		}
		s.applySwap(mask, g.Targets[0], g.Targets[1])
	default:
		return fmt.Errorf("sim: cannot apply gate type %s", g.Type)
	}
	return nil
}

func (s *State) applyControlledX(controls []int, target int) {
	var cmask uint64
	for _, c := range controls {
		cmask |= uint64(1) << uint(c)
	}
	tbit := uint64(1) << uint(target)
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		if i&cmask == cmask && i&tbit == 0 {
			j := i | tbit
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

func (s *State) applySwap(cmask uint64, a, b int) {
	abit := uint64(1) << uint(a)
	bbit := uint64(1) << uint(b)
	for i := uint64(0); i < uint64(len(s.amp)); i++ {
		// Visit each swapped pair once: a set, b clear.
		if i&cmask == cmask && i&abit != 0 && i&bbit == 0 {
			j := (i &^ abit) | bbit
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

// Run applies every gate of the circuit in order.
func (s *State) Run(c *circuit.Circuit) error {
	if c.NumQubits() > s.n {
		return fmt.Errorf("sim: circuit has %d qubits, state has %d", c.NumQubits(), s.n)
	}
	for i, g := range c.Gates {
		if err := s.ApplyGate(g); err != nil {
			return fmt.Errorf("gate %d: %w", i, err)
		}
	}
	return nil
}

// CircuitsEquivalent reports whether two circuits implement the same unitary
// on n qubits, up to a global phase, by comparing their action on every
// computational basis state. Exponential in n; intended for n ≤ ~10.
func CircuitsEquivalent(a, b *circuit.Circuit, n int, tol float64) (bool, error) {
	if n > 14 {
		return false, fmt.Errorf("sim: equivalence check limited to 14 qubits, got %d", n)
	}
	dim := uint64(1) << uint(n)
	var phase complex128
	for basis := uint64(0); basis < dim; basis++ {
		sa, err := NewBasisState(n, basis)
		if err != nil {
			return false, err
		}
		sb, err := NewBasisState(n, basis)
		if err != nil {
			return false, err
		}
		if err := sa.Run(a); err != nil {
			return false, err
		}
		if err := sb.Run(b); err != nil {
			return false, err
		}
		// Columns must agree up to one shared global phase.
		for i := uint64(0); i < dim; i++ {
			va, vb := sa.amp[i], sb.amp[i]
			if cmplx.Abs(va) < tol && cmplx.Abs(vb) < tol {
				continue
			}
			if math.Abs(cmplx.Abs(va)-cmplx.Abs(vb)) > tol {
				return false, nil
			}
			if phase == 0 {
				phase = vb / va
				if math.Abs(cmplx.Abs(phase)-1) > tol {
					return false, nil
				}
				continue
			}
			if cmplx.Abs(va*phase-vb) > tol {
				return false, nil
			}
		}
	}
	return true, nil
}
