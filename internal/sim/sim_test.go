package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

const tol = 1e-9

func TestNewStateIsZeroKet(t *testing.T) {
	s, err := NewState(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Amplitude(0) != 1 {
		t.Errorf("amp(0) = %v", s.Amplitude(0))
	}
	if math.Abs(s.Norm()-1) > tol {
		t.Errorf("norm = %v", s.Norm())
	}
}

func TestNewStateBounds(t *testing.T) {
	if _, err := NewState(-1); err == nil {
		t.Error("want error for negative qubits")
	}
	if _, err := NewState(MaxStateQubits + 1); err == nil {
		t.Error("want error beyond MaxStateQubits")
	}
}

func TestXFlipsBasis(t *testing.T) {
	s, _ := NewState(2)
	if err := s.ApplyGate(circuit.NewOneQubit(circuit.X, 0)); err != nil {
		t.Fatal(err)
	}
	if s.Amplitude(1) != 1 {
		t.Errorf("X|00> gave amp(01) = %v", s.Amplitude(1))
	}
}

func TestHadamardSuperposition(t *testing.T) {
	s, _ := NewState(1)
	s.ApplyGate(circuit.NewOneQubit(circuit.H, 0))
	want := complex(1/math.Sqrt2, 0)
	for i := uint64(0); i < 2; i++ {
		if d := s.Amplitude(i) - want; math.Hypot(real(d), imag(d)) > tol {
			t.Errorf("amp(%d) = %v, want %v", i, s.Amplitude(i), want)
		}
	}
	// H·H = I.
	s.ApplyGate(circuit.NewOneQubit(circuit.H, 0))
	if d := s.Amplitude(0) - 1; math.Hypot(real(d), imag(d)) > tol {
		t.Errorf("H^2|0> amp(0) = %v", s.Amplitude(0))
	}
}

func TestCNOTTruth(t *testing.T) {
	// |10> (control q0 set) -> |11>.
	s, _ := NewBasisState(2, 1)
	s.ApplyGate(circuit.NewCNOT(0, 1))
	if s.Amplitude(3) != 1 {
		t.Errorf("CNOT|01(bin)> amp(11) = %v", s.Amplitude(3))
	}
	// |00> unchanged.
	s, _ = NewBasisState(2, 0)
	s.ApplyGate(circuit.NewCNOT(0, 1))
	if s.Amplitude(0) != 1 {
		t.Errorf("CNOT|00> amp(00) = %v", s.Amplitude(0))
	}
}

func TestToffoliTruth(t *testing.T) {
	for basis := uint64(0); basis < 8; basis++ {
		s, _ := NewBasisState(3, basis)
		s.ApplyGate(circuit.NewToffoli(0, 1, 2))
		want := basis
		if basis&3 == 3 {
			want ^= 4
		}
		if s.Amplitude(want) != 1 {
			t.Errorf("TOF|%03b>: amp(%03b) = %v", basis, want, s.Amplitude(want))
		}
	}
}

func TestFredkinTruth(t *testing.T) {
	for basis := uint64(0); basis < 8; basis++ {
		s, _ := NewBasisState(3, basis)
		s.ApplyGate(circuit.NewFredkin(0, 1, 2))
		want := basis
		if basis&1 == 1 {
			b1 := (basis >> 1) & 1
			b2 := (basis >> 2) & 1
			want = basis&1 | b1<<2 | b2<<1
		}
		if s.Amplitude(want) != 1 {
			t.Errorf("FRE|%03b>: amp(%03b) = %v", basis, want, s.Amplitude(want))
		}
	}
}

func TestUnitaryGatesPreserveNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s, _ := NewState(4)
	// Random state via a few layers of gates.
	gates := []circuit.Gate{
		circuit.NewOneQubit(circuit.H, 0),
		circuit.NewOneQubit(circuit.T, 1),
		circuit.NewCNOT(0, 2),
		circuit.NewOneQubit(circuit.H, 3),
		circuit.NewOneQubit(circuit.S, 2),
	}
	for i := 0; i < 100; i++ {
		g := gates[rng.Intn(len(gates))]
		if err := s.ApplyGate(g); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(s.Norm()-1) > 1e-7 {
		t.Errorf("norm drifted to %v", s.Norm())
	}
}

func TestSelfInverseProperty(t *testing.T) {
	// g·g = I for the self-inverse gates; S·S† = I, T·T† = I.
	pairs := [][2]circuit.Gate{
		{circuit.NewOneQubit(circuit.X, 0), circuit.NewOneQubit(circuit.X, 0)},
		{circuit.NewOneQubit(circuit.Y, 1), circuit.NewOneQubit(circuit.Y, 1)},
		{circuit.NewOneQubit(circuit.Z, 2), circuit.NewOneQubit(circuit.Z, 2)},
		{circuit.NewOneQubit(circuit.H, 0), circuit.NewOneQubit(circuit.H, 0)},
		{circuit.NewOneQubit(circuit.S, 1), circuit.NewOneQubit(circuit.Sdg, 1)},
		{circuit.NewOneQubit(circuit.T, 2), circuit.NewOneQubit(circuit.Tdg, 2)},
		{circuit.NewCNOT(0, 1), circuit.NewCNOT(0, 1)},
		{circuit.NewToffoli(0, 1, 2), circuit.NewToffoli(0, 1, 2)},
		{circuit.NewFredkin(0, 1, 2), circuit.NewFredkin(0, 1, 2)},
		{circuit.NewSwap(1, 2), circuit.NewSwap(1, 2)},
	}
	for _, pair := range pairs {
		s, _ := NewState(3)
		s.ApplyGate(circuit.NewOneQubit(circuit.H, 0)) // non-trivial start
		s.ApplyGate(circuit.NewOneQubit(circuit.H, 1))
		ref := s.Clone()
		s.ApplyGate(pair[0])
		s.ApplyGate(pair[1])
		f, err := s.Fidelity(ref)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(f-1) > 1e-9 {
			t.Errorf("%s then %s: fidelity %v", pair[0].Type, pair[1].Type, f)
		}
	}
}

func TestSwapEqualsThreeCNOTs(t *testing.T) {
	a := circuit.New("swap", 2)
	a.Append(circuit.NewSwap(0, 1))
	b := circuit.New("cnots", 2)
	b.Append(circuit.NewCNOT(0, 1), circuit.NewCNOT(1, 0), circuit.NewCNOT(0, 1))
	eq, err := CircuitsEquivalent(a, b, 2, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("SWAP != CNOT*3")
	}
}

func TestCircuitsEquivalentDetectsDifference(t *testing.T) {
	a := circuit.New("a", 1)
	a.Append(circuit.NewOneQubit(circuit.T, 0))
	b := circuit.New("b", 1)
	b.Append(circuit.NewOneQubit(circuit.S, 0))
	eq, err := CircuitsEquivalent(a, b, 1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("T reported equivalent to S")
	}
}

func TestGlobalPhaseEquivalence(t *testing.T) {
	// Z = S·S and also Z = e^{iπ/2}·(T·T·S†·Z·S·T†·T†)? Keep simple:
	// X·Z vs Z·X differ by global phase -1 ... actually XZ = -ZX, a global
	// phase on the full unitary, which Fidelity-based comparison accepts.
	a := circuit.New("xz", 1)
	a.Append(circuit.NewOneQubit(circuit.X, 0), circuit.NewOneQubit(circuit.Z, 0))
	b := circuit.New("zx", 1)
	b.Append(circuit.NewOneQubit(circuit.Z, 0), circuit.NewOneQubit(circuit.X, 0))
	eq, err := CircuitsEquivalent(a, b, 1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("XZ and ZX should match up to global phase")
	}
}

func TestBitsRoundTrip(t *testing.T) {
	f := func(v uint16) bool {
		b := BitsFromUint(16, uint64(v))
		return b.Uint() == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassicalGates(t *testing.T) {
	b := BitsFromUint(3, 0b011)
	if err := b.ApplyReversible(circuit.NewToffoli(0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if b.Uint() != 0b111 {
		t.Errorf("TOF(011) = %03b", b.Uint())
	}
	if err := b.ApplyReversible(circuit.NewFredkin(0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if b.Uint() != 0b111 {
		t.Errorf("FRE on equal bits changed value: %03b", b.Uint())
	}
	b = BitsFromUint(3, 0b011) // control set, swap bits 1,2 (values 1,0)
	b.ApplyReversible(circuit.NewFredkin(0, 1, 2))
	if b.Uint() != 0b101 {
		t.Errorf("FRE(011) = %03b, want 101", b.Uint())
	}
	if err := b.ApplyReversible(circuit.NewOneQubit(circuit.H, 0)); err == nil {
		t.Error("H must be rejected classically")
	}
}

func TestReversibleTruthTableIsPermutation(t *testing.T) {
	c := circuit.New("perm", 4)
	c.Append(
		circuit.NewToffoli(0, 1, 2),
		circuit.NewCNOT(2, 3),
		circuit.NewFredkin(3, 0, 1),
		circuit.NewOneQubit(circuit.X, 0),
		circuit.NewSwap(1, 2),
	)
	tt, err := ReversibleTruthTable(c)
	if err != nil {
		t.Fatal(err)
	}
	if !IsPermutation(tt) {
		t.Error("reversible circuit truth table is not a permutation")
	}
}

func TestReversibleCircuitInverseProperty(t *testing.T) {
	// Running a reversible circuit then its reverse restores every input.
	c := circuit.New("fwd", 4)
	c.Append(
		circuit.NewToffoli(0, 1, 2),
		circuit.NewCNOT(2, 3),
		circuit.NewOneQubit(circuit.X, 1),
		circuit.NewFredkin(1, 2, 3),
	)
	inv := c.Reverse()
	for v := uint64(0); v < 16; v++ {
		b := BitsFromUint(4, v)
		if err := b.RunReversible(c); err != nil {
			t.Fatal(err)
		}
		if err := b.RunReversible(inv); err != nil {
			t.Fatal(err)
		}
		if b.Uint() != v {
			t.Errorf("inverse failed for %04b: got %04b", v, b.Uint())
		}
	}
}

func TestIsPermutationRejects(t *testing.T) {
	if IsPermutation([]uint64{0, 0, 2, 3}) {
		t.Error("duplicate accepted")
	}
	if IsPermutation([]uint64{0, 9}) {
		t.Error("out-of-range accepted")
	}
	if !IsPermutation([]uint64{3, 2, 1, 0}) {
		t.Error("valid permutation rejected")
	}
}

func TestStatevectorMatchesClassicalOnReversible(t *testing.T) {
	// Property: on basis states, the statevector simulator agrees with the
	// classical simulator for reversible circuits.
	c := circuit.New("rev", 5)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		a, b, d := rng.Intn(5), rng.Intn(5), rng.Intn(5)
		if a == b || b == d || a == d {
			continue
		}
		c.Append(circuit.NewToffoli(a, b, d))
	}
	for trial := 0; trial < 8; trial++ {
		basis := uint64(rng.Intn(32))
		bits := BitsFromUint(5, basis)
		if err := bits.RunReversible(c); err != nil {
			t.Fatal(err)
		}
		s, _ := NewBasisState(5, basis)
		if err := s.Run(c); err != nil {
			t.Fatal(err)
		}
		if a := s.Amplitude(bits.Uint()); math.Abs(real(a)-1) > tol || math.Abs(imag(a)) > tol {
			t.Errorf("basis %05b: statevector amp at classical result = %v", basis, a)
		}
	}
}
