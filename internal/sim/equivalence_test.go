package sim

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
)

// TestOptimizePreservesUnitary cross-checks the peephole optimizer against
// the statevector simulator: for random FT circuits, the optimized netlist
// must implement the same unitary. (Lives in sim to avoid an import cycle.)
func TestOptimizePreservesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	types := []circuit.GateType{
		circuit.H, circuit.T, circuit.Tdg, circuit.S, circuit.Sdg,
		circuit.X, circuit.Y, circuit.Z,
	}
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(2)
		c := circuit.New("opt", n)
		for i := 0; i < 60; i++ {
			if rng.Intn(4) == 0 {
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b {
					c.Append(circuit.NewCNOT(a, b))
				}
			} else {
				c.Append(circuit.NewOneQubit(types[rng.Intn(len(types))], rng.Intn(n)))
			}
		}
		opt, removed := circuit.Optimize(c)
		eq, err := CircuitsEquivalent(c, opt, n, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("trial %d: optimizer changed the unitary (removed %d)", trial, removed)
		}
	}
}

// TestOptimizeShrinksRedundantCircuits builds circuits with deliberate
// redundancy and checks the optimizer actually removes gates while
// preserving semantics.
func TestOptimizeShrinksRedundantCircuits(t *testing.T) {
	c := circuit.New("red", 3)
	for i := 0; i < 10; i++ {
		c.Append(circuit.NewOneQubit(circuit.H, 0), circuit.NewOneQubit(circuit.H, 0))
		c.Append(circuit.NewCNOT(1, 2), circuit.NewCNOT(1, 2))
		c.Append(circuit.NewOneQubit(circuit.T, 1), circuit.NewOneQubit(circuit.Tdg, 1))
	}
	opt, removed := circuit.Optimize(c)
	if removed != c.NumGates() {
		t.Errorf("removed %d of %d", removed, c.NumGates())
	}
	eq, err := CircuitsEquivalent(c, opt, 3, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("optimizer broke a fully-redundant circuit")
	}
}
