package fabric

import (
	"testing"

	"repro/internal/circuit"
)

// TestParamsKeyEquality: equal params (including clones and re-built delay
// maps) share a key; every single-field perturbation changes it.
func TestParamsKeyEquality(t *testing.T) {
	base := Default()
	if base.Key() != Default().Key() {
		t.Fatal("two Default() params disagree")
	}
	if base.Key() != base.Clone().Key() {
		t.Fatal("clone changes the key")
	}

	muts := map[string]func(*Params){
		"grid-width":  func(p *Params) { p.Grid.Width = 61 },
		"grid-height": func(p *Params) { p.Grid.Height = 61 },
		"capacity":    func(p *Params) { p.ChannelCapacity = 4 },
		"dcnot":       func(p *Params) { p.DCNOT = 4931 },
		"speed":       func(p *Params) { p.QubitSpeed = 0.0011 },
		"tmove":       func(p *Params) { p.TMove = 101 },
		"delay-value": func(p *Params) { p.GateDelay[circuit.H] = 5441 },
		"delay-entry": func(p *Params) { delete(p.GateDelay, circuit.H) },
	}
	for name, mut := range muts {
		p := Default()
		mut(&p)
		if p.Key() == base.Key() {
			t.Errorf("%s: perturbed params share the base key", name)
		}
	}
}

// TestParamsKeyOrderIndependent: the delay table's map iteration order must
// not leak into the key, and a swapped pair of (type, delay) entries that
// rebuilds the same table keys identically.
func TestParamsKeyOrderIndependent(t *testing.T) {
	a := Default()
	b := Default()
	b.GateDelay = make(map[circuit.GateType]float64, len(a.GateDelay))
	// Insert in a different order than Default() does.
	types := []circuit.GateType{circuit.Sdg, circuit.S, circuit.Z, circuit.Y, circuit.X, circuit.Tdg, circuit.T, circuit.H}
	for _, typ := range types {
		b.GateDelay[typ] = a.GateDelay[typ]
	}
	for i := 0; i < 32; i++ { // map order is randomized; try several walks
		if a.Key() != b.Key() {
			t.Fatal("insertion order changed the key")
		}
	}
}

// TestParamsKeyDistinguishesSwappedEntries: moving a delay from one type to
// another with the same value set must not collide — the encoding pairs each
// type with its own delay.
func TestParamsKeyDistinguishesSwappedEntries(t *testing.T) {
	a := Default()
	b := Default()
	b.GateDelay[circuit.H], b.GateDelay[circuit.X] = b.GateDelay[circuit.X], b.GateDelay[circuit.H]
	if a.Key() == b.Key() {
		t.Fatal("swapped per-type delays share a key")
	}
}
