// Package fabric models the tiled quantum architecture (TQA) of LEQA §2: a
// 2-D grid of Universal Logic Blocks (ULBs) separated by routing channels,
// plus the physical parameter set of Table 1 (FT gate delays for a Steane
// [[7,1,3]]-coded ion-trap fabric, channel capacity Nc, qubit speed 𝓋,
// fabric dimensions and the per-hop move time T_move).
//
// All times are in microseconds.
package fabric

import (
	"fmt"

	"repro/internal/circuit"
)

// Coord is a ULB position on the fabric grid; X ∈ [0,Width), Y ∈ [0,Height).
type Coord struct{ X, Y int }

// ManhattanDist returns the hop count of the shortest rectilinear route.
func (c Coord) ManhattanDist(o Coord) int {
	dx := c.X - o.X
	if dx < 0 {
		dx = -dx
	}
	dy := c.Y - o.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Grid is the ULB array geometry.
type Grid struct {
	Width  int // a: number of ULB columns
	Height int // b: number of ULB rows
}

// NewGrid validates and constructs a fabric grid.
func NewGrid(width, height int) (Grid, error) {
	if width < 1 || height < 1 {
		return Grid{}, fmt.Errorf("fabric: grid %dx%d must be at least 1x1", width, height)
	}
	return Grid{Width: width, Height: height}, nil
}

// Area returns A = a·b, the ULB count.
func (g Grid) Area() int { return g.Width * g.Height }

// Contains reports whether the coordinate lies on the grid.
func (g Grid) Contains(c Coord) bool {
	return c.X >= 0 && c.X < g.Width && c.Y >= 0 && c.Y < g.Height
}

// Index linearizes a coordinate (row-major).
func (g Grid) Index(c Coord) int { return c.Y*g.Width + c.X }

// CoordAt inverts Index.
func (g Grid) CoordAt(i int) Coord { return Coord{X: i % g.Width, Y: i / g.Width} }

// Center returns the middle ULB.
func (g Grid) Center() Coord { return Coord{X: g.Width / 2, Y: g.Height / 2} }

// Clamp projects a coordinate onto the grid.
func (g Grid) Clamp(c Coord) Coord {
	if c.X < 0 {
		c.X = 0
	}
	if c.X >= g.Width {
		c.X = g.Width - 1
	}
	if c.Y < 0 {
		c.Y = 0
	}
	if c.Y >= g.Height {
		c.Y = g.Height - 1
	}
	return c
}

// SpiralOrder enumerates grid coordinates in a clockwise spiral starting at
// the center — the placement order QSPR uses so that early (strongly
// interacting) qubits land near the middle of the fabric.
func (g Grid) SpiralOrder() []Coord {
	out := make([]Coord, 0, g.Area())
	c := g.Center()
	if g.Contains(c) {
		out = append(out, c)
	}
	// Walk expanding arms: right 1, down 1, left 2, up 2, right 3, ...
	x, y := c.X, c.Y
	step := 1
	dirs := []Coord{{1, 0}, {0, 1}, {-1, 0}, {0, -1}}
	// Bound the walk: the spiral covers the grid within a square of side
	// 2·max(Width,Height) around the center.
	for d := 0; len(out) < g.Area(); d = (d + 1) % 4 {
		for i := 0; i < step; i++ {
			x += dirs[d].X
			y += dirs[d].Y
			p := Coord{X: x, Y: y}
			if g.Contains(p) {
				out = append(out, p)
				if len(out) == g.Area() {
					return out
				}
			}
		}
		if d == 1 || d == 3 {
			step++
		}
	}
	return out
}

// Params bundles every physical parameter LEQA and QSPR consume (Table 1).
type Params struct {
	// GateDelay maps each one-qubit FT gate type to its ULB execution
	// delay d_g in µs.
	GateDelay map[circuit.GateType]float64
	// DCNOT is the CNOT execution delay d_CNOT in µs.
	DCNOT float64
	// ChannelCapacity is Nc, the routing-channel capacity in qubits.
	ChannelCapacity int
	// QubitSpeed is 𝓋: ULB side lengths per µs of a logical qubit moving
	// through routing channels. Also LEQA's mapper calibration knob.
	QubitSpeed float64
	// Grid is the fabric geometry (a × b ULBs).
	Grid Grid
	// TMove is the time for a logical qubit to move between neighboring
	// ULBs/channels/crossbars, in µs.
	TMove float64
}

// Default returns the paper's Table 1 parameter set: Steane [[7,1,3]]
// ion-trap delays, Nc = 5, 𝓋 = 0.001, A = 60×60, T_move = 100µs.
func Default() Params {
	return Params{
		GateDelay: map[circuit.GateType]float64{
			circuit.H:   5440,
			circuit.T:   10940,
			circuit.Tdg: 10940,
			circuit.X:   5240,
			circuit.Y:   5240,
			circuit.Z:   5240,
			// S/S† are transversal like the Paulis under the Steane code;
			// Table 1 lists them with the phase-gate row (d_S within the
			// "others" group). We use the Pauli-group delay.
			circuit.S:   5240,
			circuit.Sdg: 5240,
		},
		DCNOT:           4930,
		ChannelCapacity: 5,
		QubitSpeed:      0.001,
		Grid:            Grid{Width: 60, Height: 60},
		TMove:           100,
	}
}

// Validate checks internal consistency.
func (p Params) Validate() error {
	if p.DCNOT <= 0 {
		return fmt.Errorf("fabric: d_CNOT %.6g must be positive", p.DCNOT)
	}
	if p.ChannelCapacity < 1 {
		return fmt.Errorf("fabric: channel capacity %d < 1", p.ChannelCapacity)
	}
	if p.QubitSpeed <= 0 {
		return fmt.Errorf("fabric: qubit speed %.6g must be positive", p.QubitSpeed)
	}
	if p.TMove <= 0 {
		return fmt.Errorf("fabric: T_move %.6g must be positive", p.TMove)
	}
	if _, err := NewGrid(p.Grid.Width, p.Grid.Height); err != nil {
		return err
	}
	for t, d := range p.GateDelay {
		if !t.IsOneQubit() {
			return fmt.Errorf("fabric: gate delay declared for non-one-qubit type %s", t)
		}
		if d <= 0 {
			return fmt.Errorf("fabric: delay for %s (%.6g) must be positive", t, d)
		}
	}
	return nil
}

// DelayOf returns the ULB execution delay of an FT gate type.
func (p Params) DelayOf(t circuit.GateType) (float64, error) {
	if t == circuit.CNOT {
		return p.DCNOT, nil
	}
	if d, ok := p.GateDelay[t]; ok {
		return d, nil
	}
	return 0, fmt.Errorf("fabric: no delay configured for gate type %s", t)
}

// OneQubitRouting returns L_g^avg = 2·T_move, the paper's empirical average
// routing latency for one-qubit operations (§3).
func (p Params) OneQubitRouting() float64 { return 2 * p.TMove }

// Clone deep-copies the parameter set so callers can tweak without aliasing.
func (p Params) Clone() Params {
	out := p
	out.GateDelay = make(map[circuit.GateType]float64, len(p.GateDelay))
	for k, v := range p.GateDelay {
		out.GateDelay[k] = v
	}
	return out
}
