package fabric

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/circuit"
)

func TestParseConfigDefaultsWhenEmpty(t *testing.T) {
	p, err := ParseConfig(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	def := Default()
	if p.DCNOT != def.DCNOT || p.ChannelCapacity != def.ChannelCapacity {
		t.Error("empty config should keep Table 1 defaults")
	}
}

func TestParseConfigOverrides(t *testing.T) {
	src := `
# custom fabric
d_H     1000
d_T     2000
d_CNOT  500
Nc      3
v       0.01
fabric  20x30
Tmove   50
`
	p, err := ParseConfig(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := p.DelayOf(circuit.H); d != 1000 {
		t.Errorf("d_H = %v", d)
	}
	if d, _ := p.DelayOf(circuit.Tdg); d != 2000 {
		t.Errorf("grouped d_T should set T†: %v", d)
	}
	if p.DCNOT != 500 || p.ChannelCapacity != 3 || p.QubitSpeed != 0.01 || p.TMove != 50 {
		t.Errorf("scalars wrong: %+v", p)
	}
	if p.Grid.Width != 20 || p.Grid.Height != 30 {
		t.Errorf("grid = %dx%d", p.Grid.Width, p.Grid.Height)
	}
}

func TestParseConfigPerGateOverride(t *testing.T) {
	src := "d_X 100\nd_Y 999\n"
	p, err := ParseConfig(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := p.DelayOf(circuit.X); d != 100 {
		t.Errorf("d_X = %v", d)
	}
	if d, _ := p.DelayOf(circuit.Y); d != 999 {
		t.Errorf("d_Y override lost: %v", d)
	}
	if d, _ := p.DelayOf(circuit.Z); d != 100 {
		t.Errorf("d_Z should follow grouped d_X: %v", d)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := map[string]string{
		"unknown key":   "bogus 5\n",
		"bad number":    "d_H abc\n",
		"bad fabric":    "fabric 60by60\n",
		"missing value": "d_H\n",
		"extra field":   "d_H 5 6\n",
		"invalid after": "Nc 0\n", // fails Validate
		"bad Nc":        "Nc x\n",
	}
	for name, src := range cases {
		if _, err := ParseConfig(strings.NewReader(src)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestConfigRoundTrip(t *testing.T) {
	orig := Default()
	orig.DCNOT = 1234
	orig.QubitSpeed = 0.0042
	orig.Grid = Grid{Width: 17, Height: 23}
	orig.GateDelay[circuit.Y] = 7777

	var buf bytes.Buffer
	if err := WriteConfig(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.DCNOT != orig.DCNOT || back.QubitSpeed != orig.QubitSpeed ||
		back.Grid != orig.Grid || back.TMove != orig.TMove ||
		back.ChannelCapacity != orig.ChannelCapacity {
		t.Errorf("scalars changed: %+v vs %+v", back, orig)
	}
	for gt, d := range orig.GateDelay {
		if back.GateDelay[gt] != d {
			t.Errorf("delay %s changed: %v -> %v", gt, d, back.GateDelay[gt])
		}
	}
}

func TestLoadConfigFileMissing(t *testing.T) {
	if _, err := LoadConfigFile("/nonexistent/params.conf"); err == nil {
		t.Error("want error for missing file")
	}
}
