package fabric

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/circuit"
)

// The physical-parameter config format is a flat key/value text file
// mirroring Table 1 (all delays in µs):
//
//	# comment
//	d_H     5440
//	d_T     10940       # applies to T and T†
//	d_X     5240        # applies to X, Y, Z
//	d_S     5240        # applies to S, S†
//	d_CNOT  4930
//	Nc      5
//	v       0.001
//	fabric  60x60
//	Tmove   100
//
// Individual gate keys (d_Y, d_Z, d_Tdg, d_Sdg) override the grouped ones.

// ParseConfig reads a parameter file, starting from the Table 1 defaults so
// partial files are valid.
func ParseConfig(r io.Reader) (Params, error) {
	p := Default()
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return p, fmt.Errorf("config line %d: want `key value`, got %q", lineno, line)
		}
		key, val := fields[0], fields[1]
		if err := applyConfigKey(&p, key, val); err != nil {
			return p, fmt.Errorf("config line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return p, err
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

func applyConfigKey(p *Params, key, val string) error {
	parseF := func() (float64, error) {
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return 0, fmt.Errorf("key %s: bad number %q", key, val)
		}
		return f, nil
	}
	setDelay := func(types ...circuit.GateType) error {
		f, err := parseF()
		if err != nil {
			return err
		}
		for _, t := range types {
			p.GateDelay[t] = f
		}
		return nil
	}
	switch key {
	case "d_H":
		return setDelay(circuit.H)
	case "d_T":
		return setDelay(circuit.T, circuit.Tdg)
	case "d_Tdg", "d_T*":
		return setDelay(circuit.Tdg)
	case "d_S":
		return setDelay(circuit.S, circuit.Sdg)
	case "d_Sdg", "d_S*":
		return setDelay(circuit.Sdg)
	case "d_X":
		return setDelay(circuit.X, circuit.Y, circuit.Z)
	case "d_Y":
		return setDelay(circuit.Y)
	case "d_Z":
		return setDelay(circuit.Z)
	case "d_CNOT":
		f, err := parseF()
		if err != nil {
			return err
		}
		p.DCNOT = f
		return nil
	case "Nc":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("key Nc: bad integer %q", val)
		}
		p.ChannelCapacity = n
		return nil
	case "v":
		f, err := parseF()
		if err != nil {
			return err
		}
		p.QubitSpeed = f
		return nil
	case "Tmove", "T_move":
		f, err := parseF()
		if err != nil {
			return err
		}
		p.TMove = f
		return nil
	case "fabric", "A":
		parts := strings.SplitN(strings.ToLower(val), "x", 2)
		if len(parts) != 2 {
			return fmt.Errorf("key fabric: want WxH, got %q", val)
		}
		w, err1 := strconv.Atoi(parts[0])
		h, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("key fabric: want WxH integers, got %q", val)
		}
		p.Grid = Grid{Width: w, Height: h}
		return nil
	default:
		return fmt.Errorf("unknown key %q", key)
	}
}

// WriteConfig renders the parameter set in the config format; ParseConfig
// round-trips it.
func WriteConfig(w io.Writer, p Params) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# TQA physical parameters (times in µs)")
	// Emit per-gate delays deterministically; grouped keys would lose
	// overrides, so write each gate type explicitly.
	keys := make([]circuit.GateType, 0, len(p.GateDelay))
	for t := range p.GateDelay {
		keys = append(keys, t)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	name := map[circuit.GateType]string{
		circuit.H: "d_H", circuit.T: "d_T", circuit.Tdg: "d_Tdg",
		circuit.S: "d_S", circuit.Sdg: "d_Sdg",
		circuit.X: "d_X", circuit.Y: "d_Y", circuit.Z: "d_Z",
	}
	for _, t := range keys {
		k, ok := name[t]
		if !ok {
			continue
		}
		fmt.Fprintf(bw, "%-8s %g\n", k, p.GateDelay[t])
	}
	fmt.Fprintf(bw, "%-8s %g\n", "d_CNOT", p.DCNOT)
	fmt.Fprintf(bw, "%-8s %d\n", "Nc", p.ChannelCapacity)
	fmt.Fprintf(bw, "%-8s %g\n", "v", p.QubitSpeed)
	fmt.Fprintf(bw, "%-8s %dx%d\n", "fabric", p.Grid.Width, p.Grid.Height)
	fmt.Fprintf(bw, "%-8s %g\n", "Tmove", p.TMove)
	return bw.Flush()
}

// LoadConfigFile parses a parameter file from disk.
func LoadConfigFile(path string) (Params, error) {
	f, err := os.Open(path)
	if err != nil {
		return Params{}, err
	}
	defer f.Close()
	return ParseConfig(f)
}
