package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 5); err == nil {
		t.Error("want error for zero width")
	}
	if _, err := NewGrid(5, -1); err == nil {
		t.Error("want error for negative height")
	}
	g, err := NewGrid(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Area() != 12 {
		t.Errorf("Area = %d", g.Area())
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	g := Grid{Width: 7, Height: 5}
	for i := 0; i < g.Area(); i++ {
		c := g.CoordAt(i)
		if !g.Contains(c) {
			t.Fatalf("CoordAt(%d) = %v outside grid", i, c)
		}
		if g.Index(c) != i {
			t.Fatalf("Index(CoordAt(%d)) = %d", i, g.Index(c))
		}
	}
}

func TestContains(t *testing.T) {
	g := Grid{Width: 3, Height: 3}
	if !g.Contains(Coord{0, 0}) || !g.Contains(Coord{2, 2}) {
		t.Error("corners should be contained")
	}
	for _, c := range []Coord{{-1, 0}, {0, -1}, {3, 0}, {0, 3}} {
		if g.Contains(c) {
			t.Errorf("%v should be outside", c)
		}
	}
}

func TestClamp(t *testing.T) {
	g := Grid{Width: 4, Height: 4}
	cases := map[Coord]Coord{
		{-5, 2}: {0, 2},
		{9, 9}:  {3, 3},
		{2, -1}: {2, 0},
		{1, 1}:  {1, 1},
	}
	for in, want := range cases {
		if got := g.Clamp(in); got != want {
			t.Errorf("Clamp(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestManhattanDist(t *testing.T) {
	a := Coord{1, 2}
	b := Coord{4, 0}
	if d := a.ManhattanDist(b); d != 5 {
		t.Errorf("dist = %d, want 5", d)
	}
	if d := a.ManhattanDist(a); d != 0 {
		t.Errorf("self dist = %d", d)
	}
	if a.ManhattanDist(b) != b.ManhattanDist(a) {
		t.Error("distance not symmetric")
	}
}

func TestSpiralOrderCoversGridOnce(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {3, 3}, {4, 2}, {2, 7}, {5, 5}, {60, 60}} {
		g := Grid{Width: dims[0], Height: dims[1]}
		order := g.SpiralOrder()
		if len(order) != g.Area() {
			t.Fatalf("%dx%d: spiral covers %d of %d", dims[0], dims[1], len(order), g.Area())
		}
		seen := make(map[Coord]bool, len(order))
		for _, c := range order {
			if !g.Contains(c) {
				t.Fatalf("%v outside grid", c)
			}
			if seen[c] {
				t.Fatalf("%v visited twice", c)
			}
			seen[c] = true
		}
		if order[0] != g.Center() {
			t.Errorf("spiral starts at %v, want center %v", order[0], g.Center())
		}
	}
}

func TestSpiralOrderProperty(t *testing.T) {
	f := func(w, h uint8) bool {
		gw, gh := int(w%12)+1, int(h%12)+1
		g := Grid{Width: gw, Height: gh}
		return len(g.SpiralOrder()) == g.Area()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultParamsTable1(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	checks := map[circuit.GateType]float64{
		circuit.H:   5440,
		circuit.T:   10940,
		circuit.Tdg: 10940,
		circuit.X:   5240,
		circuit.Y:   5240,
		circuit.Z:   5240,
	}
	for gt, want := range checks {
		d, err := p.DelayOf(gt)
		if err != nil {
			t.Errorf("%s: %v", gt, err)
			continue
		}
		if d != want {
			t.Errorf("d_%s = %v, want %v", gt, d, want)
		}
	}
	if d, _ := p.DelayOf(circuit.CNOT); d != 4930 {
		t.Errorf("d_CNOT = %v, want 4930", d)
	}
	if p.ChannelCapacity != 5 {
		t.Errorf("Nc = %d, want 5", p.ChannelCapacity)
	}
	if p.QubitSpeed != 0.001 {
		t.Errorf("v = %v, want 0.001", p.QubitSpeed)
	}
	if p.Grid.Area() != 3600 || p.Grid.Width != 60 {
		t.Errorf("grid = %dx%d, want 60x60", p.Grid.Width, p.Grid.Height)
	}
	if p.TMove != 100 {
		t.Errorf("T_move = %v, want 100", p.TMove)
	}
	if p.OneQubitRouting() != 200 {
		t.Errorf("L_g = %v, want 2·T_move = 200", p.OneQubitRouting())
	}
}

func TestParamsValidateRejects(t *testing.T) {
	base := Default()
	mutations := []func(*Params){
		func(p *Params) { p.DCNOT = 0 },
		func(p *Params) { p.ChannelCapacity = 0 },
		func(p *Params) { p.QubitSpeed = 0 },
		func(p *Params) { p.TMove = -1 },
		func(p *Params) { p.Grid = Grid{Width: 0, Height: 5} },
		func(p *Params) { p.GateDelay[circuit.H] = -5 },
		func(p *Params) { p.GateDelay[circuit.CNOT] = 100 }, // not one-qubit
	}
	for i, mutate := range mutations {
		p := base.Clone()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: want validation error", i)
		}
	}
}

func TestDelayOfUnknown(t *testing.T) {
	p := Default()
	delete(p.GateDelay, circuit.Y)
	if _, err := p.DelayOf(circuit.Y); err == nil {
		t.Error("want error for unconfigured gate")
	}
}

func TestCloneIndependent(t *testing.T) {
	p := Default()
	q := p.Clone()
	q.GateDelay[circuit.H] = 1
	if p.GateDelay[circuit.H] == 1 {
		t.Error("Clone shares the delay map")
	}
}
