package fabric

import (
	"encoding/binary"
	"math"
	"slices"

	"repro/internal/circuit"
)

// ParamsKey is a canonical encoding of a parameter set: two Params produce
// the same key if and only if they are semantically equal (same geometry,
// capacity, speeds, and gate-delay table — map iteration order and float
// formatting never leak in). It is an exact encoding, not a hash, so key
// equality is collision-free and safe to dedupe or memoize estimation
// results by. The string form is comparable and usable as a map key.
type ParamsKey string

// Key computes the parameter set's canonical key. Floats are encoded by
// their IEEE-754 bit patterns, so any two values an estimate could tell
// apart produce different keys; gate-delay entries are sorted by gate type.
func (p Params) Key() ParamsKey {
	buf := make([]byte, 0, 7*8+len(p.GateDelay)*16)
	u64 := func(v uint64) { buf = binary.BigEndian.AppendUint64(buf, v) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u64(uint64(p.Grid.Width))
	u64(uint64(p.Grid.Height))
	u64(uint64(p.ChannelCapacity))
	f64(p.DCNOT)
	f64(p.QubitSpeed)
	f64(p.TMove)
	u64(uint64(len(p.GateDelay)))
	types := make([]circuit.GateType, 0, len(p.GateDelay))
	for t := range p.GateDelay {
		types = append(types, t)
	}
	slices.Sort(types)
	for _, t := range types {
		u64(uint64(t))
		f64(p.GateDelay[t])
	}
	return ParamsKey(buf)
}
