package analysis

import (
	"repro/internal/circuit"
	"repro/internal/qodg"
)

// AnalyzeShardedAtCuts exposes the shard-parallel builder with explicit
// shard boundaries to the external test package — the equivalence suite's
// hook for adversarial cut placement (empty shards, cuts inside same-qubit
// gate runs, suffix-only shards) the even-cut public API can't produce.
func AnalyzeShardedAtCuts(c *circuit.Circuit, ar *Arena, cuts []int) (*Analysis, error) {
	return analyzeShardedCuts(c, ar, cuts)
}

// AnalyzeSerialOracle exposes the retained serial pass regardless of
// thresholds — the oracle every sharded result is compared against.
func AnalyzeSerialOracle(c *circuit.Circuit, ar *Arena) (*Analysis, error) {
	return analyzeSerial(c, ar)
}

// AnalyzeStreamSharded exposes the streamed analysis with a forced
// fill-pass shard count, bypassing the threshold dispatch.
func AnalyzeStreamSharded(src GateStream, ar *Arena, k int) (*Analysis, error) {
	return analyzeStreamK(src, ar, k)
}

// LastWriterState exposes the analysis's final per-qubit last-writer state
// so the suite can assert the sharded stitch reconstructs it exactly (it is
// the seed Appender resumes from).
func (a *Analysis) LastWriterState() []qodg.NodeID { return a.lastWriter }
