package analysis

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/csr"
	"repro/internal/iig"
	"repro/internal/qodg"
)

// Appender extends an analyzed circuit with an append-only gate suffix and
// re-derives the Analysis without re-analyzing the prefix — the interactive
// sizing loop's primitive: analyze once, then append a few gates and
// re-estimate as often as the design iterates.
//
// The appender detaches everything it needs from the seed Analysis (safe
// even when the seed is arena-borrowed): the node array and both CSR
// adjacency halves with the end anchor's edges stripped, the collapsed IIG,
// and the dependency scan's final per-qubit last-writer state. Append then
// continues the very same dependency scan the analysis pass ran — not a
// replay — so a Snapshot is exactly the Analysis a from-scratch pass over
// the concatenated gate stream would build: identical node IDs, identical
// CSR contents, and therefore bitwise-identical estimates. Snapshot itself
// is one merge pass (memcpy-dominated) with no re-parse, no re-validation
// and no dependency re-scan of the prefix.
//
// The register is fixed at the seed's size; appended gates must address
// existing qubits. Not safe for concurrent use. Snapshots are independent
// immutable analyses: appending more gates never mutates one.
type Appender struct {
	name      string
	qubits    int
	baseGates int
	nGates    int
	ft        bool

	// Seed topology, end edges stripped. Rows cover nodes 0..baseGates.
	nodes            []qodg.Node
	succOff, predOff []int32
	succ, pred       []qodg.NodeID
	baseIIG          *iig.Graph

	scan *qodg.DepScanner // resumed last-writer state

	// Suffix accumulators.
	types    []circuit.GateType
	extra    []qodg.NodeID // flat (from, to) dependency edges, emission order
	iigPairs []int32       // flat (a, b) two-qubit interactions
}

// NewAppender seeds an appender from an existing analysis. The analysis
// must come from this package's builders (Analyze, AnalyzeStream or an
// earlier Snapshot), which record the dependency scan state a continuation
// needs.
func NewAppender(a *Analysis) (*Appender, error) {
	if a.QODG == nil || a.lastWriter == nil {
		return nil, fmt.Errorf("analysis: appender seed %q was not built by Analyze/AnalyzeStream", a.Name)
	}
	g := a.QODG
	oldN := g.NumNodes()
	baseGates := oldN - 2
	oldEnd := g.End()
	ap := &Appender{
		name:      a.Name,
		qubits:    a.Qubits,
		baseGates: baseGates,
		nGates:    baseGates,
		ft:        a.FT,
		baseIIG:   iig.Extend(a.IIG, nil), // deep copy: detach from arena storage
		scan:      qodg.NewDepScannerAt(a.lastWriter),
	}
	ap.nodes = make([]qodg.Node, baseGates+1)
	copy(ap.nodes, g.Nodes[:baseGates+1])

	// Strip the end anchor's edges while copying the CSR halves: the end
	// node moves with every append, and its edges are regenerated from the
	// live last-writer state at snapshot time. Successor rows are sorted
	// ascending and the end ID is the maximum, so stripping drops at most
	// one trailing entry per row; predecessor rows of real nodes never
	// contain the end.
	ap.succOff = make([]int32, baseGates+2)
	ap.predOff = make([]int32, baseGates+2)
	nSucc, nPred := 0, 0
	for u := 0; u <= baseGates; u++ {
		row := g.Succ(qodg.NodeID(u))
		if k := len(row); k > 0 && row[k-1] == oldEnd {
			row = row[:k-1]
		}
		nSucc += len(row)
		nPred += len(g.Pred(qodg.NodeID(u)))
	}
	ap.succ = make([]qodg.NodeID, 0, nSucc)
	ap.pred = make([]qodg.NodeID, 0, nPred)
	for u := 0; u <= baseGates; u++ {
		ap.succOff[u] = int32(len(ap.succ))
		ap.predOff[u] = int32(len(ap.pred))
		row := g.Succ(qodg.NodeID(u))
		if k := len(row); k > 0 && row[k-1] == oldEnd {
			row = row[:k-1]
		}
		ap.succ = append(ap.succ, row...)
		ap.pred = append(ap.pred, g.Pred(qodg.NodeID(u))...)
	}
	ap.succOff[baseGates+1] = int32(len(ap.succ))
	ap.predOff[baseGates+1] = int32(len(ap.pred))
	return ap, nil
}

// NumGates reports the total gate count including the appended suffix.
func (ap *Appender) NumGates() int { return ap.nGates }

// NumQubits reports the fixed register size.
func (ap *Appender) NumQubits() int { return ap.qubits }

// Append validates and absorbs gates at the end of the circuit. Each gate
// runs the same checks the analysis pass applies (shape, operand range,
// arity ≤ 2); a failed gate is rejected without absorbing it, leaving the
// appender usable.
func (ap *Appender) Append(gs ...circuit.Gate) error {
	for _, g := range gs {
		if err := g.Validate(ap.qubits); err != nil {
			return fmt.Errorf("circuit %q: gate %d: %w", ap.name, ap.nGates, err)
		}
		if g.Arity() > 2 {
			return fmt.Errorf("analysis: gate %d (%s) touches %d qubits; decompose first",
				ap.nGates, g.Type, g.Arity())
		}
		id := qodg.NodeID(ap.nGates + 1)
		ap.scan.VisitGate(id, g, func(from, to qodg.NodeID) {
			ap.extra = append(ap.extra, from, to)
		})
		if g.Arity() == 2 {
			a, b := g.QubitPair()
			ap.iigPairs = append(ap.iigPairs, int32(a), int32(b))
		}
		ap.types = append(ap.types, g.Type)
		ap.ft = ap.ft && g.Type.IsFT()
		ap.nGates++
	}
	return nil
}

// Snapshot materializes the current state as an independent immutable
// Analysis, equal in topology (and therefore in estimates, bitwise) to a
// from-scratch analysis of the concatenated gate stream. The appender
// remains usable; later appends do not touch the snapshot.
func (ap *Appender) Snapshot() *Analysis {
	n := ap.nGates + 2
	end := qodg.NodeID(n - 1)

	nodes := make([]qodg.Node, n)
	copy(nodes, ap.nodes)
	for k, t := range ap.types {
		gi := ap.baseGates + k
		nodes[gi+1] = qodg.Node{ID: qodg.NodeID(gi + 1), Op: circuit.Gate{Type: t}, GateIndex: gi}
	}
	nodes[n-1] = qodg.Node{ID: end, GateIndex: -1}

	// Counting: stripped seed rows + suffix edges + regenerated end edges.
	succDeg := make([]int32, n+1)
	predDeg := make([]int32, n+1)
	for u := 0; u <= ap.baseGates; u++ {
		succDeg[u] = ap.succOff[u+1] - ap.succOff[u]
		predDeg[u] = ap.predOff[u+1] - ap.predOff[u]
	}
	for i := 0; i < len(ap.extra); i += 2 {
		succDeg[ap.extra[i]]++
		predDeg[ap.extra[i+1]]++
	}
	count := func(from, to qodg.NodeID) {
		succDeg[from]++
		predDeg[to]++
	}
	// VisitEnd reads the last-writer state without advancing it, so
	// Snapshot can run again after further appends.
	ap.scan.VisitEnd(end, count)

	succOff, succ := csr.Offsets[qodg.NodeID](succDeg)
	predOff, pred := csr.Offsets[qodg.NodeID](predDeg)

	// Fill. A seed node's merged row stays ascending by construction: the
	// stripped seed edges target seed gates, suffix edges target appended
	// gates in append order, and the end anchor has the maximum ID.
	for u := 0; u <= ap.baseGates; u++ {
		copy(succ[succDeg[u]:], ap.succ[ap.succOff[u]:ap.succOff[u+1]])
		succDeg[u] += ap.succOff[u+1] - ap.succOff[u]
		copy(pred[predDeg[u]:], ap.pred[ap.predOff[u]:ap.predOff[u+1]])
		predDeg[u] += ap.predOff[u+1] - ap.predOff[u]
	}
	fill := func(from, to qodg.NodeID) {
		succ[succDeg[from]] = to
		succDeg[from]++
		pred[predDeg[to]] = from
		predDeg[to]++
	}
	for i := 0; i < len(ap.extra); i += 2 {
		fill(ap.extra[i], ap.extra[i+1])
	}
	ap.scan.VisitEnd(end, fill)

	return &Analysis{
		Name:       ap.name,
		Qubits:     ap.qubits,
		Operations: ap.nGates,
		FT:         ap.ft,
		QODG:       qodg.FromCSR(nodes, ap.qubits, succOff, succ, predOff, pred),
		IIG:        iig.Extend(ap.baseIIG, ap.iigPairs),
		lastWriter: append([]qodg.NodeID(nil), ap.scan.Last()...),
	}
}
