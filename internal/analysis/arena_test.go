package analysis_test

import (
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/fabric"
)

// arenaSuite is a small circuit set with deliberately different register
// sizes and gate counts, so arena reuse crosses both growth and shrink
// boundaries.
var arenaSuite = []string{"ham7", "8bitadder", "gf2^16mult", "ham3"}

// TestArenaAnalyzeMatchesFresh proves one reused arena reproduces the
// fresh-allocation analysis graph for graph on a sequence of circuits of
// different shapes — the stale-state hazard the arena design must exclude.
func TestArenaAnalyzeMatchesFresh(t *testing.T) {
	ar := analysis.NewArena()
	for _, name := range arenaSuite {
		c := ftCircuit(t, name)
		want, err := analysis.Analyze(c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ar.Analyze(c)
		if err != nil {
			t.Fatal(err)
		}
		assertQODGEqual(t, name, got.QODG, want.QODG)
		assertIIGEqual(t, name, got.IIG, want.IIG)
	}
}

// TestArenaEstimateBitwiseIdenticalToFresh is the satellite acceptance
// check: sequential estimates of different circuits through one pooled
// scratch must equal fresh-allocation runs bitwise, and a Result returned
// earlier must not change when the arena is recycled for the next circuit
// (nothing in a Result may alias arena memory).
func TestArenaEstimateBitwiseIdenticalToFresh(t *testing.T) {
	est, err := core.New(fabric.Default(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ar := analysis.NewArena()
	fresh := make([]*core.Result, len(arenaSuite))
	arena := make([]*core.Result, len(arenaSuite))
	for i, name := range arenaSuite {
		c := ftCircuit(t, name)
		if fresh[i], err = est.Estimate(c); err != nil {
			t.Fatal(err)
		}
		if arena[i], err = est.EstimateArena(c, ar); err != nil {
			t.Fatal(err)
		}
	}
	// Every arena result must match its fresh twin bitwise — compared only
	// after ALL estimates ran, so aliasing of earlier results by later
	// arena reuse would be caught here.
	for i, name := range arenaSuite {
		if !reflect.DeepEqual(arena[i], fresh[i]) {
			t.Errorf("%s: arena estimate diverges from fresh estimate\narena: %+v\nfresh: %+v",
				name, arena[i], fresh[i])
		}
	}
}

// TestArenaEstimateAnalysisArena covers the grid path: a shared immutable
// analysis estimated through an arena that only donates estimate-phase
// scratch (weights + longest-path state).
func TestArenaEstimateAnalysisArena(t *testing.T) {
	est, err := core.New(fabric.Default(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ar := analysis.NewArena()
	for _, name := range arenaSuite {
		c := ftCircuit(t, name)
		a, err := analysis.Analyze(c)
		if err != nil {
			t.Fatal(err)
		}
		want, err := est.EstimateAnalysis(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := est.EstimateAnalysisArena(a, ar)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: arena-scratch estimate diverges from fresh", name)
		}
	}
}
