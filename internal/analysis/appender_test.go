package analysis_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/ingest"
)

// prefixCircuit clones c truncated to its first k gates.
func prefixCircuit(c *circuit.Circuit, k int) *circuit.Circuit {
	p := c.Clone()
	p.Gates = p.Gates[:k]
	return p
}

// TestAppenderMatchesBatch is the incremental half of the equivalence
// suite: seeding an appender with a 70% prefix analysis and appending the
// remaining 30% gate suffix must snapshot into graphs topology-identical to
// the full batch analysis, with bitwise-identical estimates — across the
// paper benchmarks.
func TestAppenderMatchesBatch(t *testing.T) {
	est, err := core.New(fabric.Default(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range suite(t) {
		c := ftCircuit(t, name)
		want, err := analysis.Analyze(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wantRes, err := est.EstimateAnalysis(want)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		k := len(c.Gates) * 7 / 10
		seed, err := analysis.Analyze(prefixCircuit(c, k))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ap, err := analysis.NewAppender(seed)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := ap.Append(c.Gates[k:]...); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := ap.Snapshot()
		if got.Qubits != want.Qubits || got.Operations != want.Operations || got.FT != want.FT {
			t.Fatalf("%s: snapshot metadata %d/%d/%v, want %d/%d/%v", name,
				got.Qubits, got.Operations, got.FT, want.Qubits, want.Operations, want.FT)
		}
		assertQODGEqual(t, name, got.QODG, want.QODG)
		assertIIGEqual(t, name, got.IIG, want.IIG)
		gotRes, err := est.EstimateAnalysis(got)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(gotRes, wantRes) {
			t.Errorf("%s: incremental estimate diverges from batch:\nincremental: %.17g µs\nbatch:       %.17g µs",
				name, gotRes.EstimatedLatency, wantRes.EstimatedLatency)
		}
	}
}

// TestAppenderIncrementalChunks appends one circuit in several chunks,
// snapshotting between them: every intermediate snapshot must equal the
// batch analysis of the corresponding prefix, and earlier snapshots must
// stay untouched by later appends.
func TestAppenderIncrementalChunks(t *testing.T) {
	c := ftCircuit(t, "ham7")
	seed, err := analysis.Analyze(prefixCircuit(c, 0))
	if err != nil {
		t.Fatal(err)
	}
	ap, err := analysis.NewAppender(seed)
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.New(fabric.Default(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{1, len(c.Gates) / 3, len(c.Gates) / 2, len(c.Gates)}
	prev := 0
	var snaps []*analysis.Analysis
	var wantRes []*core.Result
	for _, cut := range cuts {
		if err := ap.Append(c.Gates[prev:cut]...); err != nil {
			t.Fatal(err)
		}
		prev = cut
		snap := ap.Snapshot()
		want, err := analysis.Analyze(prefixCircuit(c, cut))
		if err != nil {
			t.Fatal(err)
		}
		assertQODGEqual(t, c.Name, snap.QODG, want.QODG)
		assertIIGEqual(t, c.Name, snap.IIG, want.IIG)
		res, err := est.EstimateAnalysis(want)
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap)
		wantRes = append(wantRes, res)
	}
	// Re-estimate every retained snapshot after all appends: later appends
	// must not have mutated earlier snapshots.
	for i, snap := range snaps {
		got, err := est.EstimateAnalysis(snap)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, wantRes[i]) {
			t.Errorf("snapshot %d (cut %d) changed after later appends", i, cuts[i])
		}
	}
}

// TestAppenderFromStreamedSeed chains the two halves of the tentpole: a
// streamed (never materialized) analysis seeds the appender, and the
// combined result still matches batch bitwise.
func TestAppenderFromStreamedSeed(t *testing.T) {
	c := ftCircuit(t, "8bitadder")
	k := len(c.Gates) / 2
	var buf bytes.Buffer
	if err := circuit.WriteQC(&buf, prefixCircuit(c, k)); err != nil {
		t.Fatal(err)
	}
	sc := ingest.NewScanner(bytes.NewReader(buf.Bytes()), c.Name, ingest.Options{})
	defer sc.Close()
	seed, err := analysis.AnalyzeStream(sc)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := analysis.NewAppender(seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.Append(c.Gates[k:]...); err != nil {
		t.Fatal(err)
	}
	got := ap.Snapshot()
	want, err := analysis.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	assertQODGEqual(t, c.Name, got.QODG, want.QODG)
	assertIIGEqual(t, c.Name, got.IIG, want.IIG)
}

// TestAppenderRejectsBadGates covers the validation surface: out-of-range
// operands, duplicate operands and wide gates are rejected without
// corrupting the appender.
func TestAppenderRejectsBadGates(t *testing.T) {
	c := circuit.New("seedling", 3)
	c.Append(circuit.NewCNOT(0, 1))
	seed, err := analysis.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := analysis.NewAppender(seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.Append(circuit.NewCNOT(0, 7)); err == nil {
		t.Error("want error for out-of-range operand")
	}
	if err := ap.Append(circuit.NewCNOT(2, 2)); err == nil {
		t.Error("want error for duplicate operand")
	}
	if err := ap.Append(circuit.NewToffoli(0, 1, 2)); err == nil {
		t.Error("want error for 3-qubit gate")
	}
	// The appender must still work after rejections.
	if err := ap.Append(circuit.NewCNOT(1, 2)); err != nil {
		t.Fatal(err)
	}
	c.Append(circuit.NewCNOT(1, 2))
	want, err := analysis.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	got := ap.Snapshot()
	assertQODGEqual(t, c.Name, got.QODG, want.QODG)
	assertIIGEqual(t, c.Name, got.IIG, want.IIG)
}
