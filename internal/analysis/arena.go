package analysis

import (
	"repro/internal/circuit"
	"repro/internal/csr"
	"repro/internal/iig"
	"repro/internal/qodg"
)

// Arena is the reusable scratch state of the estimate hot path: every
// buffer Analyze and the critical-path sweep would otherwise allocate per
// call — node array, degree arrays, CSR adjacency, DepScanner state, IIG
// incidence, the weight vector and the longest-path dist/from/level index —
// owned once and recycled across circuits. A zero Arena is ready to use;
// buffers grow to the largest circuit seen and stay warm, so a steady-state
// worker analyzes and estimates with near-zero heap allocation.
//
// An Arena is not safe for concurrent use. The Analysis returned by
// (*Arena).Analyze aliases arena memory and is valid only until the next
// Analyze on the same arena; estimator Results derived from it do not alias
// the arena and stay valid forever.
type Arena struct {
	// MaxShards caps the shard count of the parallel analysis build for
	// calls through this arena; 0 means GOMAXPROCS, 1 forces the serial
	// pass. leqa.Runner sets it (together with Path().MaxWorkers) to the
	// arena's share of the cores, so pool concurrency and shard gangs
	// divide the machine instead of multiplying against it. Purely a
	// performance knob — results are bitwise identical at every setting.
	MaxShards int

	scan             qodg.DepScanner
	nodes            []qodg.Node
	succDeg, predDeg []int32
	iigDeg           []int32
	succOff, predOff []int32
	succ, pred       []qodg.NodeID
	iigOff, iigNbr   []int32

	qg         qodg.Graph
	igs        iig.Scratch
	a          Analysis
	lastWriter []qodg.NodeID

	// Per-shard scratch of the parallel build: one sub-arena per shard
	// (scanner, boundary records) plus the merged last-writer seed and the
	// shard cut table, all recycled so the sharded pass stays at the serial
	// arena path's steady-state allocation count.
	shards []shardScratch
	seed   []qodg.NodeID
	cuts   []int

	weights qodg.Weights
	multiW  []float64
	path    qodg.PathScratch
}

// NewArena returns an empty arena. Equivalent to new(Arena); provided so
// callers outside the package don't depend on the zero value being usable.
func NewArena() *Arena { return new(Arena) }

// Analyze is analysis.Analyze into the arena: identical validation, graph
// topology and error behavior, but every backing array comes from the
// arena. The returned Analysis (and both its graphs) aliases arena memory —
// treat it as borrowed until the next Analyze on this arena.
func (ar *Arena) Analyze(c *circuit.Circuit) (*Analysis, error) {
	return analyze(c, ar)
}

// WeightsFor builds the node weight vector for g in the arena's reusable
// buffer — the allocation-free counterpart of qodg.Graph.NewWeights.
func (ar *Arena) WeightsFor(g *qodg.Graph, weightOf func(circuit.Gate) float64) qodg.Weights {
	ar.weights = g.NewWeightsInto(ar.weights, weightOf)
	return ar.weights
}

// Path returns the arena's longest-path scratch for qodg.LongestPathInto.
func (ar *Arena) Path() *qodg.PathScratch { return &ar.path }

// MultiWeightSlab returns a reusable interleaved weight slab for a k-column
// sweep over g — column c of node v at [v*k+c], the layout
// qodg.LongestPathMultiStrided consumes. Contents unspecified: the batched
// estimator overwrites every row in its fused node scan. The slab grows to
// the widest (nodes × columns) batch seen and is recycled across calls.
func (ar *Arena) MultiWeightSlab(g *qodg.Graph, k int) []float64 {
	ar.multiW = csr.Grow(ar.multiW, g.NumNodes()*k)
	return ar.multiW
}

// growClear resizes buf to n and zeroes it — degree arrays must start the
// counting pass at zero.
func growClear(buf []int32, n int) []int32 {
	buf = csr.Grow(buf, n)
	clear(buf)
	return buf
}
