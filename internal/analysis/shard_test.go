package analysis_test

import (
	"math/rand"
	"runtime"
	"slices"
	"testing"

	"repro/internal/analysis"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fabric"
)

// shardCounts is the forced shard-count sweep of the equivalence suite:
// degenerate (1), the Appender case (2), odd splits, and more shards than
// most hosts have cores.
var shardCounts = []int{1, 2, 3, 7, 16}

// assertAnalysisEqual asserts two analyses are bitwise interchangeable:
// identical graphs, metadata, last-writer state, and — through the
// estimator — identical latency estimates.
func assertAnalysisEqual(t *testing.T, name string, got, want *analysis.Analysis) {
	t.Helper()
	if got.Name != want.Name || got.Qubits != want.Qubits ||
		got.Operations != want.Operations || got.FT != want.FT {
		t.Fatalf("%s: metadata (%q,%d,%d,%v), want (%q,%d,%d,%v)", name,
			got.Name, got.Qubits, got.Operations, got.FT,
			want.Name, want.Qubits, want.Operations, want.FT)
	}
	assertQODGEqual(t, name, got.QODG, want.QODG)
	assertIIGEqual(t, name, got.IIG, want.IIG)
	if !slices.Equal(got.LastWriterState(), want.LastWriterState()) {
		t.Fatalf("%s: last-writer state %v, want %v",
			name, got.LastWriterState(), want.LastWriterState())
	}
}

// TestAnalyzeShardedMatchesSerialOnPaperBenchmarks drives the forced-shard
// builder across every paper benchmark and shard count and demands graphs
// and estimates bitwise identical to the retained serial oracle.
func TestAnalyzeShardedMatchesSerialOnPaperBenchmarks(t *testing.T) {
	est, err := core.New(fabric.Default(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range suite(t) {
		c := ftCircuit(t, name)
		want, err := analysis.AnalyzeSerialOracle(c, nil)
		if err != nil {
			t.Fatalf("%s: serial: %v", name, err)
		}
		wantRes, err := est.EstimateAnalysis(want)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, k := range shardCounts {
			got, err := analysis.AnalyzeSharded(c, k)
			if err != nil {
				t.Fatalf("%s/k=%d: %v", name, k, err)
			}
			assertAnalysisEqual(t, name, got, want)
			gotRes, err := est.EstimateAnalysis(got)
			if err != nil {
				t.Fatalf("%s/k=%d: %v", name, k, err)
			}
			if gotRes.EstimatedLatency != wantRes.EstimatedLatency {
				t.Fatalf("%s/k=%d: latency %v, want %v (bitwise)",
					name, k, gotRes.EstimatedLatency, wantRes.EstimatedLatency)
			}
		}
	}
}

// TestAnalyzeShardedArenaReuse runs the arena-backed forced-shard path
// repeatedly across circuits of different shapes, checking each result
// against a fresh serial analysis — stale per-shard scratch must never leak
// between calls.
func TestAnalyzeShardedArenaReuse(t *testing.T) {
	ar := analysis.NewArena()
	names := suite(t)
	for round := 0; round < 2; round++ {
		for _, name := range names {
			c := ftCircuit(t, name)
			want, err := analysis.AnalyzeSerialOracle(c, nil)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got, err := ar.AnalyzeSharded(c, 3+round)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			assertAnalysisEqual(t, name, got, want)
		}
	}
}

// randomShardCircuit generates a circuit stacked with the patterns the
// stitch must get exactly right: long same-pair CNOT runs (duplicate-edge
// merging across shard cuts), swaps, idle qubits, and bursts on one qubit.
func randomShardCircuit(rng *rand.Rand, name string, numQ, nGates int) *circuit.Circuit {
	c := circuit.New(name, numQ)
	for len(c.Gates) < nGates {
		switch rng.Intn(5) {
		case 0:
			c.Append(circuit.NewOneQubit(circuit.H, rng.Intn(numQ)))
		case 1:
			a := rng.Intn(numQ)
			b := rng.Intn(numQ)
			for b == a {
				b = rng.Intn(numQ)
			}
			c.Append(circuit.NewSwap(a, b))
		case 2:
			// Same-pair CNOT run: consecutive gates whose dependency edges
			// merge, so a cut inside the run forks mid-merge.
			a := rng.Intn(numQ)
			b := rng.Intn(numQ)
			for b == a {
				b = rng.Intn(numQ)
			}
			for i, run := 0, 2+rng.Intn(4); i < run && len(c.Gates) < nGates; i++ {
				c.Append(circuit.NewCNOT(a, b))
			}
		case 3:
			// Single-qubit burst: one qubit written many times in a row.
			q := rng.Intn(numQ)
			for i, run := 0, 2+rng.Intn(4); i < run && len(c.Gates) < nGates; i++ {
				c.Append(circuit.NewOneQubit(circuit.T, q))
			}
		default:
			a := rng.Intn(numQ)
			b := rng.Intn(numQ)
			for b == a {
				b = rng.Intn(numQ)
			}
			c.Append(circuit.NewCNOT(a, b))
		}
	}
	return c
}

// TestAnalyzeShardedFuzzCuts fuzzes shard boundaries on randomized circuits:
// even cuts at every suite shard count plus adversarial cut tables —
// empty leading/middle/trailing shards, suffix-only shards, cuts landing
// inside same-pair runs — all compared against the serial oracle.
func TestAnalyzeShardedFuzzCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rounds := 24
	if testing.Short() {
		rounds = 8
	}
	ar := analysis.NewArena()
	for round := 0; round < rounds; round++ {
		numQ := 2 + rng.Intn(12)
		nGates := 1 + rng.Intn(400)
		c := randomShardCircuit(rng, "fuzz", numQ, nGates)
		n := len(c.Gates)
		want, err := analysis.AnalyzeSerialOracle(c, nil)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}

		for _, k := range shardCounts {
			got, err := analysis.AnalyzeSharded(c, k)
			if err != nil {
				t.Fatalf("round %d k=%d: %v", round, k, err)
			}
			assertAnalysisEqual(t, c.Name, got, want)
		}

		cutTables := [][]int{
			{0, 0, n},            // empty leading shard
			{0, n, n},            // empty trailing shard
			{0, 0, 0, n},         // two empty leading shards
			{0, n / 2, n / 2, n}, // empty middle shard
			{0, n - n/8, n},      // suffix-only second shard
		}
		// Random monotone cut tables, biased to land inside gate runs.
		for i := 0; i < 4; i++ {
			k := 2 + rng.Intn(5)
			cuts := make([]int, k+1)
			for j := 1; j < k; j++ {
				cuts[j] = rng.Intn(n + 1)
			}
			cuts[k] = n
			slices.Sort(cuts)
			cutTables = append(cutTables, cuts)
		}
		for _, cuts := range cutTables {
			got, err := analysis.AnalyzeShardedAtCuts(c, nil, cuts)
			if err != nil {
				t.Fatalf("round %d cuts %v: %v", round, cuts, err)
			}
			assertAnalysisEqual(t, c.Name, got, want)
			got, err = analysis.AnalyzeShardedAtCuts(c, ar, cuts)
			if err != nil {
				t.Fatalf("round %d cuts %v (arena): %v", round, cuts, err)
			}
			assertAnalysisEqual(t, c.Name, got, want)
		}
	}
}

// TestAnalyzeStreamShardedMatchesSerial drives the forced-shard streamed
// fill pass across the paper benchmarks and fuzz circuits: graphs must be
// node/edge-identical to the serial streamed analysis (which the existing
// suite proves equivalent to the materialized path).
func TestAnalyzeStreamShardedMatchesSerial(t *testing.T) {
	check := func(t *testing.T, c *circuit.Circuit, ar *analysis.Arena) {
		t.Helper()
		want, err := analysis.AnalyzeStream(analysis.NewCircuitStream(c))
		if err != nil {
			t.Fatalf("%s: serial stream: %v", c.Name, err)
		}
		for _, k := range shardCounts {
			if k < 2 {
				continue
			}
			got, err := analysis.AnalyzeStreamSharded(analysis.NewCircuitStream(c), ar, k)
			if err != nil {
				t.Fatalf("%s/k=%d: %v", c.Name, k, err)
			}
			assertAnalysisEqual(t, c.Name, got, want)
		}
	}
	for _, name := range suite(t) {
		check(t, ftCircuit(t, name), nil)
	}
	ar := analysis.NewArena()
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 12; round++ {
		c := randomShardCircuit(rng, "fuzz-stream", 2+rng.Intn(10), 1+rng.Intn(300))
		check(t, c, nil)
		check(t, c, ar)
	}
}

// TestAnalyzeShardedErrorSemantics checks the stitch reports the same error,
// for the same gate, as the serial pass — including the validate-outranks-
// arity priority when the two failures land in different shards.
func TestAnalyzeShardedErrorSemantics(t *testing.T) {
	numQ := 4
	base := func(n int) *circuit.Circuit {
		c := circuit.New("err", numQ)
		for i := 0; i < n; i++ {
			c.Append(circuit.NewCNOT(i%numQ, (i+1)%numQ))
		}
		return c
	}

	t.Run("invalid-operand", func(t *testing.T) {
		c := base(100)
		c.Gates[70] = circuit.Gate{Type: circuit.CNOT, Controls: []int{0}, Targets: []int{99}}
		_, wantErr := analysis.AnalyzeSerialOracle(c, nil)
		for _, k := range shardCounts {
			_, err := analysis.AnalyzeSharded(c, k)
			if err == nil || wantErr == nil || err.Error() != wantErr.Error() {
				t.Fatalf("k=%d: error %v, want %v", k, err, wantErr)
			}
		}
	})

	t.Run("wide-gate", func(t *testing.T) {
		c := base(100)
		c.Gates[70] = circuit.NewToffoli(0, 1, 2)
		_, wantErr := analysis.AnalyzeSerialOracle(c, nil)
		for _, k := range shardCounts {
			_, err := analysis.AnalyzeSharded(c, k)
			if err == nil || wantErr == nil || err.Error() != wantErr.Error() {
				t.Fatalf("k=%d: error %v, want %v", k, err, wantErr)
			}
		}
	})

	t.Run("validation-outranks-arity", func(t *testing.T) {
		// Wide gate early, invalid operand late: the serial pass's up-front
		// Validate reports the late invalid gate before the scan ever meets
		// the early wide one, and the sharded pass must agree even when the
		// two land in different shards.
		c := base(100)
		c.Gates[10] = circuit.NewToffoli(0, 1, 2)
		c.Gates[90] = circuit.Gate{Type: circuit.CNOT, Controls: []int{0}, Targets: []int{99}}
		_, wantErr := analysis.AnalyzeSerialOracle(c, nil)
		for _, k := range shardCounts {
			_, err := analysis.AnalyzeSharded(c, k)
			if err == nil || wantErr == nil || err.Error() != wantErr.Error() {
				t.Fatalf("k=%d: error %v, want %v", k, err, wantErr)
			}
		}
	})
}

// TestAnalyzeAutoShardDispatch lowers ShardThreshold so plain Analyze takes
// the sharded path on a real benchmark and still matches the oracle, and
// checks MaxShards=1 and GOMAXPROCS=1 keep it serial (trivially, by
// matching too — the dispatch itself is not observable, which is the
// point).
func TestAnalyzeAutoShardDispatch(t *testing.T) {
	origThreshold := analysis.ShardThreshold
	defer func() { analysis.ShardThreshold = origThreshold }()
	analysis.ShardThreshold = 1

	names := suite(t)
	name := names[len(names)-1]
	c := ftCircuit(t, name)
	want, err := analysis.AnalyzeSerialOracle(c, nil)
	if err != nil {
		t.Fatal(err)
	}

	got, err := analysis.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	assertAnalysisEqual(t, name, got, want)

	ar := analysis.NewArena()
	ar.MaxShards = 4
	got, err = ar.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	assertAnalysisEqual(t, name, got, want)

	ar.MaxShards = 1 // forces the serial pass regardless of threshold
	got, err = ar.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	assertAnalysisEqual(t, name, got, want)

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(1)
	got, err = analysis.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	assertAnalysisEqual(t, name, got, want)
}
