package analysis

import (
	"fmt"
	"slices"
	"sync/atomic"

	"repro/internal/circuit"
	"repro/internal/csr"
	"repro/internal/iig"
	"repro/internal/qodg"
)

// GateStream is the reader-driven gate source AnalyzeStream consumes: a
// re-windable stream of validated gates, typically an ingest.Scanner over a
// .qc file or pipe. The stream must replay identically across passes (the
// ingest scanner guarantees this via seek or an on-disk spool); NumQubits
// may grow while a pass runs (auto-declared qubits) and is final once a
// pass has consumed the whole stream.
type GateStream interface {
	// Scan advances to the next gate; false at end of stream or error.
	Scan() bool
	// Gate returns the current gate. It may alias scanner-internal storage
	// valid only until the next Scan — AnalyzeStream never retains it.
	Gate() circuit.Gate
	// Err reports the terminal failure, nil at clean end of stream.
	Err() error
	// Rewind restarts the stream for another pass.
	Rewind() error
	// NumQubits reports the register size seen so far.
	NumQubits() int
	// Name labels the circuit.
	Name() string
}

// CircuitStream adapts a materialized circuit into a GateStream, letting
// mixed batches (some circuits in memory, some on disk) run through one
// streaming engine, and letting the equivalence suite feed the exact same
// gates down both paths.
type CircuitStream struct {
	c *circuit.Circuit
	i int
}

// NewCircuitStream returns a stream over c's gate list.
func NewCircuitStream(c *circuit.Circuit) *CircuitStream {
	return &CircuitStream{c: c, i: -1}
}

func (s *CircuitStream) Scan() bool {
	if s.i+1 >= len(s.c.Gates) {
		return false
	}
	s.i++
	return true
}

func (s *CircuitStream) Gate() circuit.Gate { return s.c.Gates[s.i] }
func (s *CircuitStream) Err() error         { return nil }
func (s *CircuitStream) Rewind() error      { s.i = -1; return nil }
func (s *CircuitStream) NumQubits() int     { return s.c.NumQubits() }
func (s *CircuitStream) Name() string       { return s.c.Name }

// Register exposes the backing circuit's qubit register — the same optional
// capability ingest.Scanner offers, letting encoders recover real qubit
// names from a materialized stream.
func (s *CircuitStream) Register() *circuit.Circuit { return s.c }

// SegmentedStream is a GateStream that can replay itself as concurrent
// contiguous segments — the capability the shard-parallel fill pass of
// AnalyzeStream needs. Sources that can seek (materialized circuits,
// on-disk or spooled .qc files) implement it; AnalyzeStream falls back to
// the serial replay for everything else.
type SegmentedStream interface {
	GateStream
	// Segments splits the remaining replay into at most max contiguous
	// segments, returning one independent GateStream per segment plus the
	// cut table: segment i covers gates [cuts[i], cuts[i+1]), cuts[0] = 0
	// and cuts[len(segments)] = the total gate count. The segment streams
	// must be safe to consume from distinct goroutines concurrently. A
	// (nil, nil, nil) return means the source cannot segment right now
	// (e.g. a pipe not yet fully spooled) and the caller should replay
	// serially. Segments is only meaningful after a full pass has fixed
	// the stream's size.
	Segments(max int) ([]GateStream, []int, error)
}

// PrevalidatedStream is an optional GateStream capability: a stream whose
// Scan contract guarantees that every yielded gate already passes
// circuit.Gate.Validate against the stream's register. The ingest text
// scanner (its line parser validates each statement as it is parsed) and
// the qcbin binary decoder (decode-time opcode, shape, range and
// distinctness checks) both qualify, so the analysis passes skip the
// redundant per-gate re-validation — a meaningful share of the build on
// pre-parsed containers. The two-qubit arity cap and the replay gate-count
// check are still enforced for every stream, and an out-of-range operand
// from a stream that lies about this trips a bounds panic in the degree
// arrays rather than corrupting rows silently.
type PrevalidatedStream interface {
	// PrevalidatedGates reports whether every gate the stream yields is
	// already validated against the stream's register.
	PrevalidatedGates() bool
}

// gatesPrevalidated reports whether src opts out of per-gate re-validation.
func gatesPrevalidated(src GateStream) bool {
	p, ok := src.(PrevalidatedStream)
	return ok && p.PrevalidatedGates()
}

// circuitSegment is CircuitStream's segment: a window [lo, hi) of the gate
// list with its own cursor, so segments advance independently.
type circuitSegment struct {
	c      *circuit.Circuit
	lo, hi int
	i      int
}

func (s *circuitSegment) Scan() bool {
	if s.i+1 >= s.hi {
		return false
	}
	s.i++
	return true
}

func (s *circuitSegment) Gate() circuit.Gate { return s.c.Gates[s.i] }
func (s *circuitSegment) Err() error         { return nil }
func (s *circuitSegment) Rewind() error      { s.i = s.lo - 1; return nil }
func (s *circuitSegment) NumQubits() int     { return s.c.NumQubits() }
func (s *circuitSegment) Name() string       { return s.c.Name }

// Segments implements SegmentedStream with even cuts over the gate list.
func (s *CircuitStream) Segments(max int) ([]GateStream, []int, error) {
	n := len(s.c.Gates)
	if max < 1 {
		max = 1
	}
	cuts := evenCutsInto(nil, n, max)
	segs := make([]GateStream, max)
	for i := range segs {
		segs[i] = &circuitSegment{c: s.c, lo: cuts[i], hi: cuts[i+1], i: cuts[i] - 1}
	}
	return segs, cuts, nil
}

// AnalyzeStream is analysis.Analyze over a gate stream: the identical
// fused counting and CSR fill passes, driven by two passes over src instead
// of two loops over a materialized []Gate. The resulting graphs are
// topology-identical to Analyze on the materialized circuit — same node
// IDs, same CSR contents — so estimates derived from them are bitwise
// identical; the only difference is that QODG nodes carry operand-free
// gates (Type only, no Controls/Targets slices) and Analysis.Circuit is
// nil. Peak memory is the analysis product itself (nodes + CSR adjacency)
// plus one ingest chunk: the O(gates) heap of per-gate operand slices a
// materialized []Gate drags along is never allocated.
func AnalyzeStream(src GateStream) (*Analysis, error) {
	return analyzeStream(src, nil)
}

// AnalyzeStream is the arena-backed streamed analysis: same contract as
// AnalyzeStream, every buffer drawn from ar. The returned Analysis is
// borrowed until ar's next use, exactly like (*Arena).Analyze.
func (ar *Arena) AnalyzeStream(src GateStream) (*Analysis, error) {
	return analyzeStream(src, ar)
}

// analyzeStream runs the two-pass streamed analysis. With a nil arena it
// allocates fresh immutable storage; otherwise every buffer is recycled
// arena state. The pass structure mirrors analyze line for line: counting
// pass (degrees, IIG incidence counts, FT tracking, validation), offsets,
// fill pass (nodes, CSR adjacency, IIG incidence), assembly.
func analyzeStream(src GateStream, ar *Arena) (*Analysis, error) {
	return analyzeStreamK(src, ar, 0)
}

// analyzeStreamK is analyzeStream with a forced fill-pass shard count:
// 0 auto-dispatches through planShards, anything larger bypasses the
// thresholds (the equivalence suite's hook).
func analyzeStreamK(src GateStream, ar *Arena, forceK int) (*Analysis, error) {
	var (
		succDeg, predDeg, iigDeg []int32
		scan                     *qodg.DepScanner
	)
	if ar != nil {
		succDeg, predDeg, iigDeg = ar.succDeg[:0], ar.predDeg[:0], ar.iigDeg[:0]
		ar.scan.ResetFor(src.NumQubits())
		scan = &ar.scan
	} else {
		scan = qodg.NewDepScanner(src.NumQubits())
	}
	count := func(from, to qodg.NodeID) {
		succDeg[from]++
		predDeg[to]++
	}

	// Counting pass. Degree arrays grow with the stream: when gate i
	// arrives it occupies node i+1 and every edge it emits ends there, so
	// extending the arrays one slot per gate keeps all emitted indices in
	// range without knowing the gate count up front.
	ft := true
	nGates := 0
	trusted := gatesPrevalidated(src)
	for src.Scan() {
		g := src.Gate()
		id := qodg.NodeID(nGates + 1)
		succDeg = growKeep(succDeg, nGates+2)
		predDeg = growKeep(predDeg, nGates+2)
		q := src.NumQubits()
		scan.GrowTo(q)
		if err := validateStreamGate(src, nGates, g, q, trusted); err != nil {
			return nil, err
		}
		if g.Arity() == 2 {
			a, b := g.QubitPair()
			iigDeg = growKeep(iigDeg, q)
			iigDeg[a]++
			iigDeg[b]++
		}
		ft = ft && g.Type.IsFT()
		scan.VisitGate(id, g, count)
		nGates++
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	numQ := src.NumQubits()
	n := nGates + 2
	end := qodg.NodeID(n - 1)
	succDeg = growKeep(succDeg, n+1)
	predDeg = growKeep(predDeg, n+1)
	iigDeg = growKeep(iigDeg, numQ+1)
	scan.GrowTo(numQ)
	scan.VisitEnd(end, count)

	// Offsets + node array, now that the stream's true size is known.
	var (
		succOff, predOff []int32
		succ, pred       []qodg.NodeID
		iigOff, iigNbr   []int32
		nodes            []qodg.Node
	)
	if ar != nil {
		ar.succDeg, ar.predDeg, ar.iigDeg = succDeg, predDeg, iigDeg
		ar.succOff, ar.succ = csr.OffsetsInto(succDeg, ar.succOff, ar.succ)
		ar.predOff, ar.pred = csr.OffsetsInto(predDeg, ar.predOff, ar.pred)
		ar.iigOff, ar.iigNbr = csr.OffsetsInto(iigDeg, ar.iigOff, ar.iigNbr)
		succOff, succ = ar.succOff, ar.succ
		predOff, pred = ar.predOff, ar.pred
		iigOff, iigNbr = ar.iigOff, ar.iigNbr
		ar.nodes = csr.Grow(ar.nodes, n)
		nodes = ar.nodes
	} else {
		succOff, succ = csr.Offsets[qodg.NodeID](succDeg)
		predOff, pred = csr.Offsets[qodg.NodeID](predDeg)
		iigOff, iigNbr = csr.Offsets[int32](iigDeg)
		nodes = make([]qodg.Node, n)
	}
	nodes[0] = qodg.Node{ID: 0, GateIndex: -1}
	nodes[n-1] = qodg.Node{ID: end, GateIndex: -1}

	// Sharded fill pass: a segmentable source replays as concurrent
	// contiguous segments — the counting pass has already fixed the gate
	// count, register size and every row offset, so the fill shards exactly
	// like the materialized builder's. Serial replay remains the fallback
	// for non-segmentable sources and below-threshold circuits.
	sharded := false
	if seg, ok := src.(SegmentedStream); ok {
		k := forceK
		if k == 0 {
			k = planShards(nGates, shardBudget(ar))
		}
		if k > 1 {
			done, err := fillStreamSharded(seg, ar, k, nGates, numQ, nodes, succDeg, predDeg, predOff, succ, pred, iigDeg, iigNbr, scan)
			if err != nil {
				return nil, err
			}
			sharded = done
		}
	}
	if !sharded {
		// Fill pass over the serially replayed stream.
		if err := src.Rewind(); err != nil {
			return nil, err
		}
		scan.ResetFor(numQ)
		fill := func(from, to qodg.NodeID) {
			succ[succDeg[from]] = to
			succDeg[from]++
			pred[predDeg[to]] = from
			predDeg[to]++
		}
		filled := 0
		for src.Scan() {
			g := src.Gate()
			if filled >= nGates {
				return nil, replayError(src, nGates)
			}
			if err := validateStreamGate(src, filled, g, numQ, trusted); err != nil {
				return nil, err
			}
			id := qodg.NodeID(filled + 1)
			// Operand-free node: the estimate phase reads only the gate type
			// (weights, critical-path counts), so the Controls/Targets heap a
			// materialized gate list retains is simply never built.
			nodes[filled+1] = qodg.Node{ID: id, Op: circuit.Gate{Type: g.Type}, GateIndex: filled}
			if g.Arity() == 2 {
				a, b := g.QubitPair()
				iigNbr[iigDeg[a]] = int32(b)
				iigDeg[a]++
				iigNbr[iigDeg[b]] = int32(a)
				iigDeg[b]++
			}
			scan.VisitGate(id, g, fill)
			filled++
		}
		if err := src.Err(); err != nil {
			return nil, err
		}
		if filled != nGates || src.NumQubits() != numQ {
			return nil, replayError(src, nGates)
		}
		scan.VisitEnd(end, fill)
	}

	if ar != nil {
		if sharded {
			qodg.FromCSRSortedInto(&ar.qg, nodes, numQ, succOff, succ, predOff, pred)
		} else {
			qodg.FromCSRInto(&ar.qg, nodes, numQ, succOff, succ, predOff, pred)
		}
		ar.lastWriter = append(ar.lastWriter[:0], scan.Last()...)
		ar.a = Analysis{
			Name:       src.Name(),
			Qubits:     numQ,
			Operations: nGates,
			FT:         ft,
			QODG:       &ar.qg,
			IIG:        iig.FromIncidenceScratch(numQ, iigOff, iigNbr, &ar.igs),
			lastWriter: ar.lastWriter,
		}
		return &ar.a, nil
	}
	var g *qodg.Graph
	if sharded {
		g = new(qodg.Graph)
		qodg.FromCSRSortedInto(g, nodes, numQ, succOff, succ, predOff, pred)
	} else {
		g = qodg.FromCSR(nodes, numQ, succOff, succ, predOff, pred)
	}
	return &Analysis{
		Name:       src.Name(),
		Qubits:     numQ,
		Operations: nGates,
		FT:         ft,
		QODG:       g,
		IIG:        iig.FromIncidence(numQ, iigOff, iigNbr),
		lastWriter: append([]qodg.NodeID(nil), scan.Last()...),
	}, nil
}

// fillStreamSharded is the shard-parallel fill pass of analyzeStream: one
// goroutine per stream segment runs the same scan as the serial replay with
// shard-local pending-seeded last-writer state, in-shard edges land directly
// in the CSR cursors (disjoint row ranges — no races), and the serial stitch
// resolves boundary edges exactly like the materialized sharded builder.
// Unlike that builder the row offsets already exist (the serial counting
// pass produced them), so the stitch only replays fills, and a final check
// that the merged last-writer state equals the counting pass's state guards
// the whole fill against a stream that replays differently. Returns false
// (no error) when the source declines to segment, leaving the serial
// fallback to run.
func fillStreamSharded(src SegmentedStream, ar *Arena, k, nGates, numQ int,
	nodes []qodg.Node, succDeg, predDeg, predOff []int32, succ, pred []qodg.NodeID,
	iigDeg, iigNbr []int32, scan *qodg.DepScanner) (bool, error) {
	segs, cuts, err := src.Segments(k)
	if err != nil {
		return false, err
	}
	if segs == nil {
		return false, nil
	}
	k = len(segs)
	if k < 1 || len(cuts) != k+1 || cuts[0] != 0 || cuts[k] != nGates {
		return false, replayError(src, nGates)
	}
	for i := 0; i < k; i++ {
		if cuts[i] > cuts[i+1] {
			return false, replayError(src, nGates)
		}
	}

	var (
		shards []shardScratch
		seed   []qodg.NodeID
	)
	if ar != nil {
		if cap(ar.shards) < k {
			ar.shards = make([]shardScratch, k)
		}
		ar.shards = ar.shards[:k]
		shards = ar.shards
		ar.seed = csr.Grow(ar.seed, numQ)
		seed = ar.seed
	} else {
		shards = make([]shardScratch, k)
		seed = make([]qodg.NodeID, numQ)
	}

	g := newGang(k)
	defer g.close()
	g.run(func(si int) {
		sc := &shards[si]
		sc.reset(numQ)
		fill := func(from, to qodg.NodeID) {
			if qodg.IsPending(from) {
				sc.recs = append(sc.recs, boundaryRec{from: from, to: to})
				return
			}
			succ[succDeg[from]] = to
			succDeg[from]++
			pred[predDeg[to]] = from
			predDeg[to]++
		}
		s := segs[si]
		i := cuts[si]
		trusted := gatesPrevalidated(s)
		for s.Scan() {
			g := s.Gate()
			if i >= cuts[si+1] {
				sc.valErr = replayError(src, nGates)
				return
			}
			if err := validateStreamGate(src, i, g, numQ, trusted); err != nil {
				sc.valErr = err
				return
			}
			id := qodg.NodeID(i + 1)
			nodes[i+1] = qodg.Node{ID: id, Op: circuit.Gate{Type: g.Type}, GateIndex: i}
			if g.Arity() == 2 {
				a, b := g.QubitPair()
				iigNbr[atomic.AddInt32(&iigDeg[a], 1)-1] = int32(b)
				iigNbr[atomic.AddInt32(&iigDeg[b], 1)-1] = int32(a)
			}
			sc.scan.VisitGate(id, g, fill)
			i++
		}
		if err := s.Err(); err != nil {
			sc.valErr = err
			return
		}
		if i != cuts[si+1] {
			sc.valErr = replayError(src, nGates)
		}
	})
	// The counting pass validated every gate, so any shard error here means
	// the replay diverged; shards cover ascending ranges, so the first
	// erring shard holds the earliest failure — the serial replay's answer.
	for i := range shards {
		if err := shards[i].valErr; err != nil {
			return false, err
		}
	}

	// Boundary stitch: resolve each shard's records against the merged
	// last-writer state of the shards before it, drop per-gate duplicates,
	// and replay the fills in shard order — later shards append strictly
	// larger targets, preserving the serial ascending row order. The row
	// slots already exist: the serial counting pass counted these exact
	// edges.
	clear(seed[:numQ])
	prev := boundaryRec{from: -1, to: -1}
	for si := range shards {
		sc := &shards[si]
		for _, r := range sc.recs {
			r.from = seed[qodg.PendingQubit(r.from)]
			if r == prev {
				continue
			}
			prev = r
			succ[succDeg[r.from]] = r.to
			succDeg[r.from]++
			pred[predDeg[r.to]] = r.from
			predDeg[r.to]++
		}
		for q, l := range sc.scan.Last() {
			if !qodg.IsPending(l) {
				seed[q] = l
			}
		}
	}

	// The merged state must reproduce the counting pass's final state; a
	// faithful replay guarantees it, anything else is a broken stream.
	if !slices.Equal(seed[:numQ], scan.Last()) {
		return false, replayError(src, nGates)
	}
	fill := func(from, to qodg.NodeID) {
		succ[succDeg[from]] = to
		succDeg[from]++
		pred[predDeg[to]] = from
		predDeg[to]++
	}
	scan.VisitEnd(qodg.NodeID(nGates+1), fill)

	// Predecessor rows sort in parallel chunks; the caller assembles with
	// the no-resort constructor.
	n := nGates + 2
	g.run(func(si int) {
		qodg.SortPredRange(predOff, pred, si*n/k, (si+1)*n/k)
	})
	return true, nil
}

// validateStreamGate applies the per-gate checks the materialized path gets
// from Circuit.Validate plus the analysis-layer arity constraint, with the
// same error shapes. It also shields the CSR cursors from a misbehaving
// stream: an out-of-range operand would otherwise corrupt rows silently.
// Streams that advertise PrevalidatedStream skip the Gate.Validate half —
// their decoders already ran the identical checks per gate — but keep the
// arity cap, which is an analysis-layer constraint, not a gate-validity one.
func validateStreamGate(src GateStream, i int, g circuit.Gate, numQubits int, trusted bool) error {
	if !trusted {
		if err := g.Validate(numQubits); err != nil {
			return fmt.Errorf("circuit %q: gate %d: %w", src.Name(), i, err)
		}
	}
	if g.Arity() > 2 {
		return fmt.Errorf("analysis: gate %d (%s) touches %d qubits; decompose first",
			i, g.Type, g.Arity())
	}
	return nil
}

// replayError reports a stream whose second pass disagreed with its first —
// a broken GateStream implementation, never a property of the input.
func replayError(src GateStream, nGates int) error {
	return fmt.Errorf("analysis: stream %q changed between passes (first pass: %d gates, %d qubits)",
		src.Name(), nGates, src.NumQubits())
}

// growKeep extends buf to length n, preserving existing contents and
// zeroing the new tail — the streaming counterpart of growClear, whose
// whole-buffer clear would erase counts accumulated mid-pass.
func growKeep(buf []int32, n int) []int32 {
	if n <= len(buf) {
		return buf
	}
	old := len(buf)
	if n <= cap(buf) {
		buf = buf[:n]
	} else {
		grown := make([]int32, n, max(2*cap(buf), n))
		copy(grown, buf[:old])
		buf = grown
	}
	clear(buf[old:])
	return buf
}
