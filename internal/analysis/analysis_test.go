package analysis_test

import (
	"reflect"
	"slices"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchgen"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/iig"
	"repro/internal/qodg"
)

// suite returns the paper benchmarks the equivalence tests cover: all 18
// normally, the sub-100k-operation subset under -short.
func suite(t testing.TB) []string {
	t.Helper()
	if !testing.Short() {
		return benchgen.Names()
	}
	var out []string
	for _, name := range benchgen.Names() {
		if benchgen.Paper[name].Operations < 100000 {
			out = append(out, name)
		}
	}
	return out
}

var ftCache = map[string]*circuit.Circuit{}

func ftCircuit(t testing.TB, name string) *circuit.Circuit {
	t.Helper()
	if c, ok := ftCache[name]; ok {
		return c
	}
	c, err := benchgen.GenerateFT(name)
	if err != nil {
		t.Fatal(err)
	}
	ftCache[name] = c
	return c
}

// assertQODGEqual compares two QODGs node by node: same node set, same
// successor and predecessor lists everywhere.
func assertQODGEqual(t *testing.T, name string, got, want *qodg.Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: QODG shape %d nodes/%d edges, want %d/%d",
			name, got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	if got.NumQubits != want.NumQubits {
		t.Fatalf("%s: NumQubits %d, want %d", name, got.NumQubits, want.NumQubits)
	}
	for u := 0; u < got.NumNodes(); u++ {
		id := qodg.NodeID(u)
		if got.Nodes[u].GateIndex != want.Nodes[u].GateIndex {
			t.Fatalf("%s: node %d gate index %d, want %d",
				name, u, got.Nodes[u].GateIndex, want.Nodes[u].GateIndex)
		}
		if !slices.Equal(got.Succ(id), want.Succ(id)) {
			t.Fatalf("%s: node %d succ %v, want %v", name, u, got.Succ(id), want.Succ(id))
		}
		if !slices.Equal(got.Pred(id), want.Pred(id)) {
			t.Fatalf("%s: node %d pred %v, want %v", name, u, got.Pred(id), want.Pred(id))
		}
	}
}

// assertIIGEqual compares two IIGs: same node count, per-qubit degrees and
// weight sums, and identical sorted edge lists.
func assertIIGEqual(t *testing.T, name string, got, want *iig.Graph) {
	t.Helper()
	if got.Q != want.Q || got.TotalWeight() != want.TotalWeight() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: IIG shape Q=%d/%d W=%d/%d E=%d/%d", name,
			got.Q, want.Q, got.TotalWeight(), want.TotalWeight(), got.NumEdges(), want.NumEdges())
	}
	for i := 0; i < got.Q; i++ {
		if got.Degree(i) != want.Degree(i) || got.AdjWeightSum(i) != want.AdjWeightSum(i) {
			t.Fatalf("%s: qubit %d degree/ΣW %d/%d, want %d/%d", name, i,
				got.Degree(i), got.AdjWeightSum(i), want.Degree(i), want.AdjWeightSum(i))
		}
	}
	ge, we := got.Edges(), want.Edges()
	for k := range ge {
		if ge[k] != we[k] {
			t.Fatalf("%s: edge %d = %+v, want %+v", name, k, ge[k], we[k])
		}
	}
}

// TestAnalyzeMatchesReferenceBuilders is the structural half of the
// equivalence suite: across the paper benchmarks, the fused CSR pass must
// produce graphs node/edge/weight-identical to both the pre-refactor
// reference builders and the standalone CSR builders.
func TestAnalyzeMatchesReferenceBuilders(t *testing.T) {
	for _, name := range suite(t) {
		c := ftCircuit(t, name)
		a, err := analysis.Analyze(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		refG, err := qodg.BuildReference(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		refIG, err := iig.BuildReference(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertQODGEqual(t, name, a.QODG, refG)
		assertIIGEqual(t, name, a.IIG, refIG)

		soloG, err := qodg.Build(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		soloIG, err := iig.Build(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertQODGEqual(t, name, soloG, refG)
		assertIIGEqual(t, name, soloIG, refIG)
	}
}

// TestEstimateMatchesReferenceGraphs is the numerical half: estimates
// through the fused front end must be bitwise-identical to estimates over
// the reference-built graphs on every paper benchmark.
func TestEstimateMatchesReferenceGraphs(t *testing.T) {
	est, err := core.New(fabric.Default(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range suite(t) {
		c := ftCircuit(t, name)
		fused, err := est.Estimate(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		refG, err := qodg.BuildReference(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		refIG, err := iig.BuildReference(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ref, err := est.EstimateGraphs(c, refG, refIG)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(fused, ref) {
			t.Errorf("%s: fused estimate differs from reference-graph estimate:\nfused: %.17g µs\nref:   %.17g µs",
				name, fused.EstimatedLatency, ref.EstimatedLatency)
		}
	}
}

func TestAnalyzeRejectsWideGates(t *testing.T) {
	c := circuit.New("wide", 3)
	c.Append(circuit.NewToffoli(0, 1, 2))
	if _, err := analysis.Analyze(c); err == nil {
		t.Error("want error for 3-qubit gate")
	}
}

func TestAnalyzeRejectsInvalidCircuit(t *testing.T) {
	c := circuit.New("bad", 2)
	c.Append(circuit.Gate{Type: circuit.CNOT, Controls: []int{0}, Targets: []int{5}})
	if _, err := analysis.Analyze(c); err == nil {
		t.Error("want validation error for out-of-range operand")
	}
}

// TestAnalyzeEdgeCases exercises the construction corners the generators
// never hit: empty circuits, idle qubits, duplicate-pair CNOT runs and
// swap gates.
func TestAnalyzeEdgeCases(t *testing.T) {
	cases := []*circuit.Circuit{
		circuit.New("empty", 1),
		circuit.New("idle", 4),
	}
	dup := circuit.New("dup-pairs", 3)
	dup.Append(
		circuit.NewCNOT(0, 1), circuit.NewCNOT(1, 0), circuit.NewCNOT(0, 1),
		circuit.NewSwap(1, 2), circuit.NewOneQubit(circuit.H, 2),
	)
	cases = append(cases, dup)
	for _, c := range cases {
		a, err := analysis.Analyze(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		refG, err := qodg.BuildReference(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		refIG, err := iig.BuildReference(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		assertQODGEqual(t, c.Name, a.QODG, refG)
		assertIIGEqual(t, c.Name, a.IIG, refIG)
		if err := a.QODG.CheckAcyclic(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}
