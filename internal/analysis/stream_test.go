package analysis_test

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/ingest"
)

// qcBytes renders a circuit back to .qc text, the wire format the streaming
// equivalence tests push through ingest.
func qcBytes(t testing.TB, c *circuit.Circuit) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := circuit.WriteQC(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// pipeReader hides the Seeker of an in-memory source so the scanner takes
// the on-disk spool path, like a network body would.
type pipeReader struct{ io.Reader }

// TestAnalyzeStreamMatchesBatch is the tentpole equivalence check: across
// the paper benchmarks, streamed ingestion + AnalyzeStream must produce
// graphs topology-identical to the materialized Analyze and estimates that
// are bitwise identical — through the seekable rewind path, the spooled
// pipe path, and the in-memory CircuitStream adapter.
func TestAnalyzeStreamMatchesBatch(t *testing.T) {
	est, err := core.New(fabric.Default(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range suite(t) {
		c := ftCircuit(t, name)
		want, err := analysis.Analyze(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wantRes, err := est.EstimateAnalysis(want)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		qc := qcBytes(t, c)

		streams := map[string]analysis.GateStream{
			"seekable": ingest.NewScanner(bytes.NewReader(qc), c.Name, ingest.Options{}),
			"circuit":  analysis.NewCircuitStream(c),
		}
		// Spooling every benchmark writes hundreds of MB of temp files;
		// cover the pipe path on the smaller half of the suite.
		if len(qc) < 4<<20 {
			streams["spooled"] = ingest.NewScanner(pipeReader{bytes.NewReader(qc)}, c.Name, ingest.Options{})
		}
		for label, src := range streams {
			got, err := analysis.AnalyzeStream(src)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, label, err)
			}
			if got.Circuit != nil {
				t.Errorf("%s/%s: streamed analysis retained a Circuit", name, label)
			}
			if got.Name != c.Name || got.Qubits != want.Qubits || got.Operations != want.Operations || got.FT != want.FT {
				t.Fatalf("%s/%s: metadata %q/%d/%d/%v, want %q/%d/%d/%v", name, label,
					got.Name, got.Qubits, got.Operations, got.FT,
					want.Name, want.Qubits, want.Operations, want.FT)
			}
			assertQODGEqual(t, name+"/"+label, got.QODG, want.QODG)
			assertIIGEqual(t, name+"/"+label, got.IIG, want.IIG)
			gotRes, err := est.EstimateAnalysis(got)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, label, err)
			}
			if !reflect.DeepEqual(gotRes, wantRes) {
				t.Errorf("%s/%s: streamed estimate diverges from batch:\nstream: %.17g µs\nbatch:  %.17g µs",
					name, label, gotRes.EstimatedLatency, wantRes.EstimatedLatency)
			}
			if cl, ok := src.(io.Closer); ok {
				cl.Close()
			}
		}
	}
}

// TestArenaAnalyzeStream runs the arena-backed streamed analysis across
// circuits of different shapes through one recycled arena.
func TestArenaAnalyzeStream(t *testing.T) {
	est, err := core.New(fabric.Default(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ar := analysis.NewArena()
	fresh := make([]*core.Result, len(arenaSuite))
	arena := make([]*core.Result, len(arenaSuite))
	for i, name := range arenaSuite {
		c := ftCircuit(t, name)
		want, err := analysis.Analyze(c)
		if err != nil {
			t.Fatal(err)
		}
		sc := ingest.NewScanner(bytes.NewReader(qcBytes(t, c)), c.Name, ingest.Options{})
		got, err := ar.AnalyzeStream(sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertQODGEqual(t, name, got.QODG, want.QODG)
		assertIIGEqual(t, name, got.IIG, want.IIG)
		if fresh[i], err = est.EstimateAnalysis(want); err != nil {
			t.Fatal(err)
		}
		// Estimate through the same arena while the analysis borrows it.
		if arena[i], err = est.EstimateAnalysisArena(got, ar); err != nil {
			t.Fatal(err)
		}
		sc.Close()
	}
	for i, name := range arenaSuite {
		if !reflect.DeepEqual(arena[i], fresh[i]) {
			t.Errorf("%s: arena streamed estimate diverges from fresh batch", name)
		}
	}
}

// TestEstimateStreamNonFT proves the streaming FT guard fails with the same
// error the batch precondition produces, and that a wide non-FT gate
// reports non-FT (not arity) — the batch path's failure priority.
func TestEstimateStreamNonFT(t *testing.T) {
	est, err := core.New(fabric.Default(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New("nonft", 3)
	c.Append(circuit.NewCNOT(0, 1), circuit.NewToffoli(0, 1, 2))
	wantErr := ""
	if _, err := est.Estimate(c); err != nil {
		wantErr = err.Error()
	} else {
		t.Fatal("batch estimate of non-FT circuit succeeded")
	}
	_, err = est.EstimateStream(analysis.NewCircuitStream(c))
	if err == nil || err.Error() != wantErr {
		t.Fatalf("streamed non-FT error = %v, want %q", err, wantErr)
	}
}

// TestAnalyzeStreamEdgeCases mirrors TestAnalyzeEdgeCases over the
// streaming path, including the empty circuit.
func TestAnalyzeStreamEdgeCases(t *testing.T) {
	cases := []*circuit.Circuit{
		circuit.New("empty", 1),
		circuit.New("idle", 4),
	}
	dup := circuit.New("dup-pairs", 3)
	dup.Append(
		circuit.NewCNOT(0, 1), circuit.NewCNOT(1, 0), circuit.NewCNOT(0, 1),
		circuit.NewSwap(1, 2), circuit.NewOneQubit(circuit.H, 2),
	)
	cases = append(cases, dup)
	for _, c := range cases {
		want, err := analysis.Analyze(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		sc := ingest.NewScanner(bytes.NewReader(qcBytes(t, c)), c.Name, ingest.Options{})
		got, err := analysis.AnalyzeStream(sc)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		assertQODGEqual(t, c.Name, got.QODG, want.QODG)
		assertIIGEqual(t, c.Name, got.IIG, want.IIG)
		sc.Close()
	}
}

// TestAnalyzeStreamRejectsWideGates mirrors the batch arity rejection.
func TestAnalyzeStreamRejectsWideGates(t *testing.T) {
	c := circuit.New("wide", 3)
	c.Append(circuit.NewToffoli(0, 1, 2))
	if _, err := analysis.AnalyzeStream(analysis.NewCircuitStream(c)); err == nil {
		t.Error("want error for 3-qubit gate")
	}
}
