// Package analysis is the fused circuit-analysis front end of the
// estimator: one streaming pass over a circuit's gate list produces both
// graphs LEQA consumes — the quantum operation dependency graph (QODG,
// paper §2) and the interaction intensity graph (IIG, §3.1).
//
// The standalone builders (qodg.Build, iig.Build) each scan the gate list
// on their own; at the ~1M-operation scale the roadmap targets, that second
// scan plus the duplicated validation is pure waste, because both graphs
// derive from the same stream. Analyze validates once and drives one
// combined counting pass and one combined fill pass, assembling both CSR
// structures with a handful of flat allocations and no per-node maps or
// slices.
package analysis

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/csr"
	"repro/internal/iig"
	"repro/internal/qodg"
)

// Analysis bundles the circuit-dependent, fabric-independent artifacts of
// one circuit. Immutable after Analyze; share freely across goroutines and
// across every (fabric, options) configuration the circuit is estimated
// under — the cross-product sweep engine computes one Analysis per circuit
// and reuses it for every parameter set.
type Analysis struct {
	// Circuit is the analyzed netlist. It is nil for streamed analyses
	// (AnalyzeStream), whose whole point is never materializing the gate
	// list — consumers must use the metadata fields below, which both
	// construction paths fill identically.
	Circuit *circuit.Circuit
	// Name labels the analyzed circuit.
	Name string
	// Qubits is the register size.
	Qubits int
	// Operations is the gate count.
	Operations int
	// FT reports whether every gate belongs to the fault-tolerant set —
	// circuit.IsFT without the gate list.
	FT bool
	// QODG is the dependency graph (critical-path substrate, Eq. 1).
	QODG *qodg.Graph
	// IIG is the interaction graph (presence-zone substrate, Eq. 6–7).
	IIG *iig.Graph

	// lastWriter is the dependency scan's final per-qubit last-writer
	// state (0 = start anchor) — the seed an Appender resumes from.
	lastWriter []qodg.NodeID
}

// LastWriter exposes the dependency scan's final per-qubit last-writer
// state (0 = start anchor) for serialization. The slice is live analysis
// state; treat it as read-only.
func (a *Analysis) LastWriter() []qodg.NodeID { return a.lastWriter }

// Restore reassembles an Analysis from previously serialized parts — the
// decode path of internal/qcbin's binary Analysis image. The result is
// shaped exactly like an AnalyzeStream product: Circuit is nil, QODG nodes
// carry operand-free gates, and lastWriter seeds NewAppender, so estimates
// and appends behave identically to a freshly analyzed stream.
func Restore(name string, qubits, operations int, ft bool, g *qodg.Graph, ig *iig.Graph, lastWriter []qodg.NodeID) *Analysis {
	return &Analysis{
		Name:       name,
		Qubits:     qubits,
		Operations: operations,
		FT:         ft,
		QODG:       g,
		IIG:        ig,
		lastWriter: lastWriter,
	}
}

// Analyze builds both graphs in one streaming pass over the gate list. The
// circuit must be decomposed to one- and two-qubit gates: wider gates are
// rejected (the IIG is undefined on them), exactly as iig.Build does.
//
// Every call allocates independent, immutable graphs; the arena-backed
// (*Arena).Analyze runs the identical pass into recycled buffers for the
// steady-state worker loops.
func Analyze(c *circuit.Circuit) (*Analysis, error) {
	return analyze(c, nil)
}

// analyze dispatches the fused pass: circuits at or above ShardThreshold
// with a multi-worker budget take the shard-parallel builder, everything
// else the serial one. Both produce bitwise-identical analyses.
func analyze(c *circuit.Circuit, ar *Arena) (*Analysis, error) {
	if k := planShards(len(c.Gates), shardBudget(ar)); k > 1 {
		if ar != nil {
			ar.cuts = evenCutsInto(ar.cuts, len(c.Gates), k)
			return analyzeShardedCuts(c, ar, ar.cuts)
		}
		return analyzeShardedCuts(c, nil, evenCutsInto(nil, len(c.Gates), k))
	}
	return analyzeSerial(c, ar)
}

// analyzeSerial is the shared fused pass. With a nil arena it allocates
// fresh immutable storage (the package-level Analyze contract); with an
// arena it reuses the arena's buffers and graph headers, producing a
// borrowed Analysis that stays valid until the arena's next use. Retained
// unconditionally as the oracle the sharded builder is tested against.
func analyzeSerial(c *circuit.Circuit, ar *Arena) (*Analysis, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	numQ := c.NumQubits()
	var (
		nodes                    []qodg.Node
		succDeg, predDeg, iigDeg []int32
		scan                     *qodg.DepScanner
	)
	if ar != nil {
		ar.nodes = qodg.NewNodesInto(ar.nodes, c)
		nodes = ar.nodes
		n := len(nodes)
		ar.succDeg = growClear(ar.succDeg, n+1)
		ar.predDeg = growClear(ar.predDeg, n+1)
		ar.iigDeg = growClear(ar.iigDeg, numQ+1)
		succDeg, predDeg, iigDeg = ar.succDeg, ar.predDeg, ar.iigDeg
		ar.scan.ResetFor(numQ)
		scan = &ar.scan
	} else {
		nodes = qodg.NewNodes(c)
		n := len(nodes)
		succDeg = make([]int32, n+1)
		predDeg = make([]int32, n+1)
		iigDeg = make([]int32, numQ+1)
		scan = qodg.NewDepScanner(numQ)
	}
	n := len(nodes)
	end := qodg.NodeID(n - 1)

	// Combined counting pass: QODG in/out degrees, IIG incidence counts and
	// FT-set membership from the same walk of the gate stream.
	count := func(from, to qodg.NodeID) {
		succDeg[from]++
		predDeg[to]++
	}
	ft := true
	for i, gate := range c.Gates {
		switch gate.Arity() {
		case 1:
			// One-qubit operations add no IIG edges.
		case 2:
			a, b := gate.QubitPair()
			iigDeg[a]++
			iigDeg[b]++
		default:
			return nil, fmt.Errorf("analysis: gate %d (%s) touches %d qubits; decompose first",
				i, gate.Type, gate.Arity())
		}
		ft = ft && gate.Type.IsFT()
		scan.VisitGate(qodg.NodeID(i+1), gate, count)
	}
	scan.VisitEnd(end, count)

	// Offsets + combined fill pass.
	var (
		succOff, predOff []int32
		succ, pred       []qodg.NodeID
		iigOff, iigNbr   []int32
	)
	if ar != nil {
		ar.succOff, ar.succ = csr.OffsetsInto(succDeg, ar.succOff, ar.succ)
		ar.predOff, ar.pred = csr.OffsetsInto(predDeg, ar.predOff, ar.pred)
		ar.iigOff, ar.iigNbr = csr.OffsetsInto(iigDeg, ar.iigOff, ar.iigNbr)
		succOff, succ = ar.succOff, ar.succ
		predOff, pred = ar.predOff, ar.pred
		iigOff, iigNbr = ar.iigOff, ar.iigNbr
	} else {
		succOff, succ = csr.Offsets[qodg.NodeID](succDeg)
		predOff, pred = csr.Offsets[qodg.NodeID](predDeg)
		iigOff, iigNbr = csr.Offsets[int32](iigDeg)
	}
	fill := func(from, to qodg.NodeID) {
		succ[succDeg[from]] = to
		succDeg[from]++
		pred[predDeg[to]] = from
		predDeg[to]++
	}
	scan.Reset()
	for i, gate := range c.Gates {
		if gate.Arity() == 2 {
			a, b := gate.QubitPair()
			iigNbr[iigDeg[a]] = int32(b)
			iigDeg[a]++
			iigNbr[iigDeg[b]] = int32(a)
			iigDeg[b]++
		}
		scan.VisitGate(qodg.NodeID(i+1), gate, fill)
	}
	scan.VisitEnd(end, fill)

	if ar != nil {
		qodg.FromCSRInto(&ar.qg, nodes, numQ, succOff, succ, predOff, pred)
		ar.lastWriter = append(ar.lastWriter[:0], scan.Last()...)
		ar.a = Analysis{
			Circuit:    c,
			Name:       c.Name,
			Qubits:     numQ,
			Operations: len(c.Gates),
			FT:         ft,
			QODG:       &ar.qg,
			IIG:        iig.FromIncidenceScratch(numQ, iigOff, iigNbr, &ar.igs),
			lastWriter: ar.lastWriter,
		}
		return &ar.a, nil
	}
	return &Analysis{
		Circuit:    c,
		Name:       c.Name,
		Qubits:     numQ,
		Operations: len(c.Gates),
		FT:         ft,
		QODG:       qodg.FromCSR(nodes, numQ, succOff, succ, predOff, pred),
		IIG:        iig.FromIncidence(numQ, iigOff, iigNbr),
		lastWriter: append([]qodg.NodeID(nil), scan.Last()...),
	}, nil
}
