package analysis

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/circuit"
	"repro/internal/csr"
	"repro/internal/iig"
	"repro/internal/qodg"
)

// ShardThreshold is the gate count at or above which Analyze (and the fill
// pass of AnalyzeStream) shards the fused counting/fill passes across a
// worker gang. Below it — or with a single-worker budget — the serial pass
// wins outright. The sharded build is bitwise identical to the serial one by
// construction; the threshold is a performance knob, never a correctness
// one.
//
// The variable is read without synchronization on every analysis: tune it at
// program start, before any concurrent estimates run. For per-call control
// use Arena.MaxShards instead.
var ShardThreshold = 1 << 16

// minShardGates keeps shards large enough that the serial stitch (seed
// merge, boundary-edge resolution, offsets) stays negligible next to the
// per-shard scan work.
const minShardGates = 1 << 13

// planShards picks the shard count for a circuit of nGates gates under a
// worker budget: 0 means serial, otherwise ≥ 2 contiguous shards.
func planShards(nGates, budget int) int {
	if ShardThreshold <= 0 || nGates < ShardThreshold || budget < 2 {
		return 0
	}
	k := budget
	if maxK := nGates / minShardGates; k > maxK {
		k = maxK
	}
	if k < 2 {
		return 0
	}
	return k
}

// ShardPlan reports the shard count Analyze will use for a circuit of
// nGates gates under ar's worker budget (1 means a serial build; ar may be
// nil for the whole-machine budget) — exposed so observability layers can
// annotate analyze spans without re-deriving the plan.
func ShardPlan(nGates int, ar *Arena) int {
	if k := planShards(nGates, shardBudget(ar)); k > 1 {
		return k
	}
	return 1
}

// shardBudget resolves the worker budget of an analysis call: the arena's
// MaxShards share when set, the whole machine otherwise.
func shardBudget(ar *Arena) int {
	if ar != nil && ar.MaxShards != 0 {
		return ar.MaxShards
	}
	return runtime.GOMAXPROCS(0)
}

// evenCutsInto fills buf with k+1 shard boundaries splitting n gates into k
// contiguous near-equal segments: shard i covers gates [cuts[i], cuts[i+1]).
func evenCutsInto(buf []int, n, k int) []int {
	if cap(buf) < k+1 {
		buf = make([]int, k+1)
	}
	buf = buf[:k+1]
	for i := range buf {
		buf[i] = i * n / k
	}
	return buf
}

// boundaryRec is one dependency edge whose source lies in an earlier shard:
// recorded with the pending-qubit sentinel as from while the shard scans,
// resolved to the real node (and deduplicated) by the stitch.
type boundaryRec struct {
	from, to qodg.NodeID
}

// shardScratch is one shard's sub-arena: the forked dependency scanner, the
// boundary-edge records, and the shard's slice of the validation outcome.
// Recycled across analyses when owned by an Arena.
type shardScratch struct {
	scan qodg.DepScanner
	recs []boundaryRec
	ft   bool
	// valErr/arityErr carry the shard's first per-gate validation and
	// arity failures; the stitch reports them with the serial pass's
	// priority (any validation error anywhere outranks any arity error).
	valErr, arityErr error
}

func (sc *shardScratch) reset(numQ int) {
	sc.scan.ResetPending(numQ)
	sc.recs = sc.recs[:0]
	sc.ft = true
	sc.valErr, sc.arityErr = nil, nil
}

// gang is the fork-join helper for one sharded analysis: k-1 workers
// spawned on first use and reused across the analysis's phases (count,
// fill, sort), so the whole parallel build costs a fixed handful of
// allocations — one gang, one channel, one worker closure, one closure
// per phase — keeping warm-arena sharded estimates near the serial
// path's steady-state alloc budget. Not safe for concurrent run calls;
// one gang belongs to one analysis call and must be closed when it
// returns.
type gang struct {
	k       int
	f       func(i int)
	next    atomic.Int32
	start   chan struct{}
	wg      sync.WaitGroup
	started bool
}

func newGang(k int) *gang { return &gang{k: k} }

// run executes f(0), ..., f(k-1) concurrently — the caller takes shard 0 —
// and returns once every shard finished. The channel send publishing each
// token happens after the writes to g.f and g.next, and every worker's
// read precedes its wg.Done, so phases never race on the shared fields.
func (g *gang) run(f func(i int)) {
	if g.k <= 1 {
		f(0)
		return
	}
	if !g.started {
		g.started = true
		g.start = make(chan struct{})
		worker := func() {
			for range g.start {
				g.f(int(g.next.Add(1)))
				g.wg.Done()
			}
		}
		for i := 1; i < g.k; i++ {
			go worker()
		}
	}
	g.f = f
	g.next.Store(0)
	g.wg.Add(g.k - 1)
	for i := 1; i < g.k; i++ {
		g.start <- struct{}{}
	}
	f(0)
	g.wg.Wait()
	g.f = nil
}

// close releases the workers; the gang is unusable afterwards.
func (g *gang) close() {
	if g.started {
		close(g.start)
	}
}

// AnalyzeSharded is Analyze with a forced shard count, bypassing the
// ShardThreshold/GOMAXPROCS auto-dispatch — the hook the equivalence suite
// and benchmarks use to drive the parallel machinery on any circuit and any
// host. shards ≤ 1 forces the serial pass.
func AnalyzeSharded(c *circuit.Circuit, shards int) (*Analysis, error) {
	if shards <= 1 {
		return analyzeSerial(c, nil)
	}
	return analyzeShardedCuts(c, nil, evenCutsInto(nil, len(c.Gates), shards))
}

// AnalyzeSharded is the arena-backed forced-shard analysis; see the
// package-level AnalyzeSharded.
func (ar *Arena) AnalyzeSharded(c *circuit.Circuit, shards int) (*Analysis, error) {
	if shards <= 1 {
		return analyzeSerial(c, ar)
	}
	ar.cuts = evenCutsInto(ar.cuts, len(c.Gates), shards)
	return analyzeShardedCuts(c, ar, ar.cuts)
}

// analyzeShardedCuts is the shard-parallel fused pass: the same counting and
// fill passes as analyzeSerial, run per shard with forked last-writer state,
// plus a serial stitch that resolves shard-boundary edges — the k-shard
// generalization of the merge Appender.Snapshot performs for one suffix.
//
// Why the result is bitwise identical to the serial pass:
//
//   - Every edge both of whose endpoints fall inside one shard is emitted by
//     that shard exactly as the serial scan would (same per-gate duplicate
//     merge, same order), and its CSR row segments belong to that shard
//     alone, so the parallel counting/fill passes never race.
//   - An edge whose source precedes the shard is recorded against the
//     pending-qubit sentinel and resolved by the stitch against the merged
//     last-writer state of all earlier shards — by induction that state
//     equals the serial scan's state at the shard boundary, so the resolved
//     source is the serial edge's source. In-shard sources (> the shard's
//     first node) and resolved sources (≤ it) occupy disjoint ID ranges, so
//     re-applying the duplicate merge only among consecutive boundary
//     records reproduces the serial per-gate merge exactly.
//   - A successor row fills as: in-shard targets (ascending, by the shard's
//     own pass), then boundary targets in shard order (later shards hold
//     strictly larger IDs), then possibly the end anchor (maximum ID) —
//     precisely the ascending order the serial fill produces. Predecessor
//     rows and IIG rows are sorted downstream, so only their multisets
//     matter, which lets the IIG fill use atomic per-qubit cursors instead
//     of per-shard bases.
func analyzeShardedCuts(c *circuit.Circuit, ar *Arena, cuts []int) (*Analysis, error) {
	numQ := c.NumQubits()
	k := len(cuts) - 1
	n := len(c.Gates) + 2
	end := qodg.NodeID(n - 1)

	var (
		nodes                    []qodg.Node
		succDeg, predDeg, iigDeg []int32
		shards                   []shardScratch
		seed                     []qodg.NodeID
	)
	if ar != nil {
		ar.nodes = csr.Grow(ar.nodes, n)
		ar.succDeg = growClear(ar.succDeg, n+1)
		ar.predDeg = growClear(ar.predDeg, n+1)
		ar.iigDeg = growClear(ar.iigDeg, numQ+1)
		nodes, succDeg, predDeg, iigDeg = ar.nodes, ar.succDeg, ar.predDeg, ar.iigDeg
		if cap(ar.shards) < k {
			ar.shards = make([]shardScratch, k)
		}
		ar.shards = ar.shards[:k]
		shards = ar.shards
		ar.seed = csr.Grow(ar.seed, numQ)
		seed = ar.seed
	} else {
		nodes = make([]qodg.Node, n)
		succDeg = make([]int32, n+1)
		predDeg = make([]int32, n+1)
		iigDeg = make([]int32, numQ+1)
		shards = make([]shardScratch, k)
		seed = make([]qodg.NodeID, numQ)
	}
	nodes[0] = qodg.Node{ID: 0, GateIndex: -1}
	nodes[n-1] = qodg.Node{ID: end, GateIndex: -1}

	// Parallel counting pass: per-gate validation, node array, QODG degrees
	// of in-shard edges, IIG incidence counts (atomic — rows are sorted
	// downstream) and FT tracking.
	g := newGang(k)
	defer g.close()
	g.run(func(si int) {
		shards[si].countGates(c, cuts[si], cuts[si+1], numQ, nodes, succDeg, predDeg, iigDeg)
	})

	// Error stitch. Shards cover ascending gate ranges and each shard keeps
	// its first failure of each class, so the first shard holding a failure
	// holds the globally smallest gate index; the serial pass's priority —
	// its up-front Circuit.Validate walks every gate before the scan sees
	// the first over-wide one — means any validation error outranks any
	// arity error.
	for i := range shards {
		if err := shards[i].valErr; err != nil {
			return nil, err
		}
	}
	for i := range shards {
		if err := shards[i].arityErr; err != nil {
			return nil, err
		}
	}
	ft := true
	for i := range shards {
		ft = ft && shards[i].ft
	}

	// Boundary stitch, counting half: walk the shards in order, resolving
	// each record against the merged last-writer state of the shards before
	// it, dropping per-gate duplicates (consecutive records resolving to
	// the same edge), counting the survivors, and folding the shard's own
	// writers into the running state. Records are compacted in place so the
	// fill half is a plain replay.
	clear(seed)
	prev := boundaryRec{from: -1, to: -1}
	for si := range shards {
		sc := &shards[si]
		kept := sc.recs[:0]
		for _, r := range sc.recs {
			r.from = seed[qodg.PendingQubit(r.from)]
			if r == prev {
				continue
			}
			prev = r
			kept = append(kept, r)
			succDeg[r.from]++
			predDeg[r.to]++
		}
		sc.recs = kept
		for q, l := range sc.scan.Last() {
			if !qodg.IsPending(l) {
				seed[q] = l
			}
		}
	}

	// The merged state is the serial scan's final state: run the real
	// VisitEnd on it for the end anchor's edges.
	var scan *qodg.DepScanner
	if ar != nil {
		ar.scan.ResetAt(seed)
		scan = &ar.scan
	} else {
		scan = qodg.NewDepScannerAt(seed)
	}
	count := func(from, to qodg.NodeID) {
		succDeg[from]++
		predDeg[to]++
	}
	scan.VisitEnd(end, count)

	// Offsets (serial prefix sums; degree arrays become fill cursors).
	var (
		succOff, predOff []int32
		succ, pred       []qodg.NodeID
		iigOff, iigNbr   []int32
	)
	if ar != nil {
		ar.succOff, ar.succ = csr.OffsetsInto(succDeg, ar.succOff, ar.succ)
		ar.predOff, ar.pred = csr.OffsetsInto(predDeg, ar.predOff, ar.pred)
		ar.iigOff, ar.iigNbr = csr.OffsetsInto(iigDeg, ar.iigOff, ar.iigNbr)
		succOff, succ = ar.succOff, ar.succ
		predOff, pred = ar.predOff, ar.pred
		iigOff, iigNbr = ar.iigOff, ar.iigNbr
	} else {
		succOff, succ = csr.Offsets[qodg.NodeID](succDeg)
		predOff, pred = csr.Offsets[qodg.NodeID](predDeg)
		iigOff, iigNbr = csr.Offsets[int32](iigDeg)
	}

	// Parallel fill pass: every in-shard edge and IIG incidence lands in
	// CSR storage; boundary edges wait for the stitch so successor rows
	// keep the serial order.
	g.run(func(si int) {
		shards[si].fillGates(c, cuts[si], cuts[si+1], numQ, succDeg, predDeg, succ, pred, iigDeg, iigNbr)
	})

	// Boundary stitch, fill half: replay the resolved records in shard
	// order — each successor row's cursor sits just past its in-shard
	// targets — then the end anchor's edges.
	for si := range shards {
		for _, r := range shards[si].recs {
			succ[succDeg[r.from]] = r.to
			succDeg[r.from]++
			pred[predDeg[r.to]] = r.from
			predDeg[r.to]++
		}
	}
	fill := func(from, to qodg.NodeID) {
		succ[succDeg[from]] = to
		succDeg[from]++
		pred[predDeg[to]] = from
		predDeg[to]++
	}
	scan.VisitEnd(end, fill)

	// Predecessor rows are independent: sort them in parallel node chunks,
	// then assemble without the serial re-sort FromCSRInto would run.
	g.run(func(si int) {
		qodg.SortPredRange(predOff, pred, si*n/k, (si+1)*n/k)
	})

	if ar != nil {
		qodg.FromCSRSortedInto(&ar.qg, nodes, numQ, succOff, succ, predOff, pred)
		ar.lastWriter = append(ar.lastWriter[:0], scan.Last()...)
		ar.a = Analysis{
			Circuit:    c,
			Name:       c.Name,
			Qubits:     numQ,
			Operations: len(c.Gates),
			FT:         ft,
			QODG:       &ar.qg,
			IIG:        iig.FromIncidenceScratch(numQ, iigOff, iigNbr, &ar.igs),
			lastWriter: ar.lastWriter,
		}
		return &ar.a, nil
	}
	qg := new(qodg.Graph)
	qodg.FromCSRSortedInto(qg, nodes, numQ, succOff, succ, predOff, pred)
	return &Analysis{
		Circuit:    c,
		Name:       c.Name,
		Qubits:     numQ,
		Operations: len(c.Gates),
		FT:         ft,
		QODG:       qg,
		IIG:        iig.FromIncidence(numQ, iigOff, iigNbr),
		lastWriter: append([]qodg.NodeID(nil), scan.Last()...),
	}, nil
}

// countGates is one shard's counting pass over gates [lo, hi).
func (sc *shardScratch) countGates(c *circuit.Circuit, lo, hi, numQ int, nodes []qodg.Node, succDeg, predDeg, iigDeg []int32) {
	sc.reset(numQ)
	count := func(from, to qodg.NodeID) {
		if qodg.IsPending(from) {
			sc.recs = append(sc.recs, boundaryRec{from: from, to: to})
			return
		}
		succDeg[from]++
		predDeg[to]++
	}
	for i := lo; i < hi; i++ {
		g := c.Gates[i]
		if err := g.Validate(numQ); err != nil {
			// Nothing past an invalid gate can be scanned safely; later
			// validation errors in this shard have larger indices anyway.
			sc.valErr = fmt.Errorf("circuit %q: gate %d: %w", c.Name, i, err)
			return
		}
		if sc.arityErr != nil {
			// Validation-only tail: an earlier-shard validation error would
			// outrank our arity error, so this shard must still surface its
			// own — but its scan output is already condemned.
			continue
		}
		switch g.Arity() {
		case 1:
			// One-qubit operations add no IIG edges.
		case 2:
			a, b := g.QubitPair()
			atomic.AddInt32(&iigDeg[a], 1)
			atomic.AddInt32(&iigDeg[b], 1)
		default:
			sc.arityErr = fmt.Errorf("analysis: gate %d (%s) touches %d qubits; decompose first",
				i, g.Type, g.Arity())
			continue
		}
		sc.ft = sc.ft && g.Type.IsFT()
		nodes[i+1] = qodg.Node{ID: qodg.NodeID(i + 1), Op: g, GateIndex: i}
		sc.scan.VisitGate(qodg.NodeID(i+1), g, count)
	}
}

// fillGates is one shard's fill pass over gates [lo, hi): identical scan,
// emitting in-shard edges into the CSR cursors and leaving boundary edges to
// the stitch (the counting pass already recorded them).
func (sc *shardScratch) fillGates(c *circuit.Circuit, lo, hi, numQ int, succDeg, predDeg []int32, succ, pred []qodg.NodeID, iigDeg, iigNbr []int32) {
	sc.scan.ResetPending(numQ)
	fill := func(from, to qodg.NodeID) {
		if qodg.IsPending(from) {
			return
		}
		succ[succDeg[from]] = to
		succDeg[from]++
		pred[predDeg[to]] = from
		predDeg[to]++
	}
	for i := lo; i < hi; i++ {
		g := c.Gates[i]
		if g.Arity() == 2 {
			a, b := g.QubitPair()
			iigNbr[atomic.AddInt32(&iigDeg[a], 1)-1] = int32(b)
			iigNbr[atomic.AddInt32(&iigDeg[b], 1)-1] = int32(a)
		}
		sc.scan.VisitGate(qodg.NodeID(i+1), g, fill)
	}
}
