package store

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchgen"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/qcbin"
	"repro/internal/qodg"
)

func genFT(t testing.TB, name string) *circuit.Circuit {
	t.Helper()
	c, err := benchgen.GenerateFT(name)
	if err != nil {
		t.Fatalf("GenerateFT(%s): %v", name, err)
	}
	return c
}

func newStore(t testing.TB, opt Options) *Store {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMemoryTier: second GetOrAnalyze of the same content is a memory hit
// returning the identical *Analysis, regardless of container or qubit
// names.
func TestMemoryTier(t *testing.T) {
	s := newStore(t, Options{})
	c := genFT(t, "8bitadder")
	a1, d1, err := s.GetOrAnalyze(analysis.NewCircuitStream(c))
	if err != nil {
		t.Fatal(err)
	}
	a2, d2, err := s.GetOrAnalyze(analysis.NewCircuitStream(c.Clone()))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digests differ: %s vs %s", d1, d2)
	}
	if a1 != a2 {
		t.Error("memory hit returned a different Analysis pointer")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.DiskHits != 0 {
		t.Errorf("stats = %s, want 1 hit / 1 miss", st)
	}
	if !s.Contains(d1) {
		t.Error("Contains(digest) = false after store")
	}
	if _, err := s.Get(d1); err != nil {
		t.Errorf("Get(%s): %v", d1, err)
	}
	if _, err := s.Get("deadbeef" + d1[8:]); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := s.Get("nothex!"); err == nil {
		t.Error("Get(malformed digest) succeeded")
	}
}

// TestDiskTier: a second store over the same directory serves the analysis
// from disk, bitwise-identical at the estimate level.
func TestDiskTier(t *testing.T) {
	dir := t.TempDir()
	c := genFT(t, "8bitadder")

	s1 := newStore(t, Options{Dir: dir})
	a1, digest, err := s1.GetOrAnalyze(analysis.NewCircuitStream(c))
	if err != nil {
		t.Fatal(err)
	}
	if st := s1.Stats(); st.Puts != 1 || st.DiskEntries != 1 || st.DiskBytes <= 0 {
		t.Fatalf("after first analyze: %s, want 1 put", st)
	}
	if _, err := os.Stat(filepath.Join(dir, digest+".qca")); err != nil {
		t.Fatalf("image not on disk: %v", err)
	}

	// "Restart": a fresh store over the same directory.
	s2 := newStore(t, Options{Dir: dir})
	if st := s2.Stats(); st.DiskEntries != 1 || st.DiskBytes <= 0 {
		t.Fatalf("restart scan missed the image: %s", st)
	}
	a2, err := s2.Get(digest)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.DiskHits != 1 {
		t.Errorf("restart Get: %s, want 1 disk hit", st)
	}
	assertSameEstimate(t, c.Name, a1, a2)

	// Corrupt image: recomputed, not served.
	if err := os.WriteFile(filepath.Join(dir, digest+".qca"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := newStore(t, Options{Dir: dir})
	a3, d3, err := s3.GetOrAnalyze(analysis.NewCircuitStream(c))
	if err != nil || d3 != digest {
		t.Fatalf("GetOrAnalyze over corrupt image: %v (digest %s)", err, d3)
	}
	if st := s3.Stats(); st.DiskHits != 0 || st.Misses != 1 {
		t.Errorf("corrupt image: %s, want a clean miss", st)
	}
	assertSameEstimate(t, c.Name, a1, a3)
}

// assertSameEstimate checks two analyses produce bitwise-identical
// estimates under the paper fabric.
func assertSameEstimate(t *testing.T, label string, a, b *analysis.Analysis) {
	t.Helper()
	est, err := core.New(fabric.Default(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := est.EstimateAnalysis(a)
	if err != nil {
		t.Fatalf("%s: estimate(a): %v", label, err)
	}
	rb, err := est.EstimateAnalysis(b)
	if err != nil {
		t.Fatalf("%s: estimate(b): %v", label, err)
	}
	if ra.EstimatedLatency != rb.EstimatedLatency || ra.CriticalPath.Length != rb.CriticalPath.Length {
		t.Fatalf("%s: estimates differ: %+v vs %+v", label, ra, rb)
	}
}

// TestAllBenchmarksBitwise sweeps every paper benchmark through the two
// tiers and checks store hits are estimate-identical to fresh analyses.
func TestAllBenchmarksBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark sweep")
	}
	dir := t.TempDir()
	s := newStore(t, Options{Dir: dir})
	est, err := core.New(fabric.Default(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range benchgen.PaperBenchmarks {
		c, err := benchgen.GenerateFT(name)
		if err != nil {
			t.Fatalf("GenerateFT(%s): %v", name, err)
		}
		fresh, err := analysis.AnalyzeStream(analysis.NewCircuitStream(c))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_, digest, err := s.GetOrAnalyze(analysis.NewCircuitStream(c))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Force the disk path: a fresh store shares only the directory.
		s2 := newStore(t, Options{Dir: dir})
		loaded, err := s2.Get(digest)
		if err != nil {
			t.Fatalf("%s: disk Get: %v", name, err)
		}
		want, err := est.EstimateAnalysis(fresh)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := est.EstimateAnalysis(loaded)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if want.EstimatedLatency != got.EstimatedLatency || want.CriticalPath.Length != got.CriticalPath.Length ||
			want.LCNOTAvg != got.LCNOTAvg {
			t.Errorf("%s: disk-loaded estimate %+v != fresh %+v", name, got, want)
		}
	}
}

// TestSingleFlight: concurrent GetOrAnalyze of one digest analyzes once.
func TestSingleFlight(t *testing.T) {
	s := newStore(t, Options{})
	c := genFT(t, "8bitadder")
	const n = 16
	results := make([]*analysis.Analysis, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, _, err := s.GetOrAnalyze(analysis.NewCircuitStream(c.Clone()))
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = a
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.Misses != 1 {
		t.Errorf("%d analyses for one digest (stats %s)", st.Misses, st)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different Analysis", i)
		}
	}
}

// TestLRUEviction: the memory tier respects its capacity.
func TestLRUEviction(t *testing.T) {
	s := newStore(t, Options{MemEntries: 2})
	var digests []string
	for i := 0; i < 3; i++ {
		c := circuit.New("c", 2+i)
		c.Gates = []circuit.Gate{{Type: circuit.CNOT, Controls: []int{0}, Targets: []int{1}}}
		_, d, err := s.GetOrAnalyze(analysis.NewCircuitStream(c))
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	st := s.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats = %s, want 2 entries / 1 eviction", st)
	}
	if s.Contains(digests[0]) {
		t.Error("oldest digest survived eviction")
	}
}

// TestDiskEviction: the disk tier evicts oldest-first under its byte cap,
// never the image just written.
func TestDiskEviction(t *testing.T) {
	dir := t.TempDir()
	// Learn one image's size to set a cap that holds ~2 images.
	probe := newStore(t, Options{Dir: t.TempDir()})
	c0 := genFT(t, "8bitadder")
	if _, _, err := probe.GetOrAnalyze(analysis.NewCircuitStream(c0)); err != nil {
		t.Fatal(err)
	}
	size := probe.Stats().DiskBytes
	if size <= 0 {
		t.Fatal("no probe image written")
	}

	s := newStore(t, Options{Dir: dir, MaxDiskBytes: 2*size + size/2})
	var digests []string
	for i := 0; i < 3; i++ {
		c := c0.Clone()
		c.Name = c0.Name + string(rune('a'+i)) // distinct digests, same size class
		_, d, err := s.GetOrAnalyze(analysis.NewCircuitStream(c))
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	st := s.Stats()
	if st.DiskEvictions == 0 {
		t.Fatalf("no disk evictions under cap (stats %s)", st)
	}
	if st.DiskBytes > s.maxDiskBytes {
		t.Errorf("disk tier over cap: %s", st)
	}
	if _, err := os.Stat(filepath.Join(dir, digests[2]+".qca")); err != nil {
		t.Error("most recent image was evicted")
	}
}

// TestFailedComputeRetries: an error does not poison the digest.
func TestFailedComputeRetries(t *testing.T) {
	s := newStore(t, Options{})
	// A circuit with a >2-qubit gate fails analysis (decompose first).
	c := circuit.New("wide", 3)
	c.Gates = []circuit.Gate{{Type: circuit.Toffoli, Controls: []int{0, 1}, Targets: []int{2}}}
	if _, _, err := s.GetOrAnalyze(analysis.NewCircuitStream(c)); err == nil {
		t.Fatal("wide gate analyzed successfully")
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Errorf("failed compute left a resident entry: %s", st)
	}
	// The same digest must retry (and fail again, freshly), not replay a
	// memoized error as a hit.
	if _, _, err := s.GetOrAnalyze(analysis.NewCircuitStream(c)); err == nil {
		t.Fatal("second attempt succeeded")
	}
	if st := s.Stats(); st.Hits != 0 {
		t.Errorf("failed digest served as a hit: %s", st)
	}
}

// TestRestoredAnalysisAppends: a disk-loaded analysis must seed the
// incremental appender exactly like a fresh streamed analysis (lastWriter
// round-trips).
func TestRestoredAnalysisAppends(t *testing.T) {
	dir := t.TempDir()
	c := genFT(t, "8bitadder")
	s := newStore(t, Options{Dir: dir})
	_, digest, err := s.GetOrAnalyze(analysis.NewCircuitStream(c))
	if err != nil {
		t.Fatal(err)
	}
	s2 := newStore(t, Options{Dir: dir})
	loaded, err := s2.Get(digest)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := analysis.AnalyzeStream(analysis.NewCircuitStream(c))
	if err != nil {
		t.Fatal(err)
	}
	lw1, lw2 := fresh.LastWriter(), loaded.LastWriter()
	if len(lw1) != len(lw2) {
		t.Fatalf("lastWriter lengths differ: %d vs %d", len(lw1), len(lw2))
	}
	for i := range lw1 {
		if lw1[i] != lw2[i] {
			t.Fatalf("lastWriter[%d] = %v, want %v", i, lw2[i], lw1[i])
		}
	}
	_ = qodg.NodeID(0)
	if _, err := qcbin.ParseRef(qcbin.FormatRef(digest)); err != nil {
		t.Fatal(err)
	}
}
