// Package store is the content-addressed analysis store behind LEQA's
// "parse once, estimate forever" path: analyses keyed by the SHA-256
// digest of the canonical gate stream (internal/qcbin), held in an
// in-memory single-flight LRU over an optional disk directory of .qca
// images.
//
// The memory tier follows zonemodel.Cache's discipline exactly — lookups
// of a digest being computed block on that computation, so N concurrent
// estimates of the same circuit analyze it once. The disk tier persists
// every computed analysis as an atomic write-renamed image, survives
// process restarts, and is size-capped with oldest-first eviction. A store
// hit returns an Analysis that is estimate-for-estimate identical to a
// fresh one (same CSR contents, same metadata), because the image encodes
// the complete AnalyzeStream product.
package store

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/qcbin"
)

// DefaultMemEntries bounds the memory tier when Options leaves it zero.
// Analyses are the expensive artifact here (tens of MB for the largest
// paper benchmarks), so the default is far smaller than zonemodel's.
const DefaultMemEntries = 64

// ErrNotFound reports a by-reference lookup whose digest is in neither
// tier.
var ErrNotFound = errors.New("store: analysis not found")

// Options configures a Store.
type Options struct {
	// MemEntries bounds the in-memory LRU; <=0 means DefaultMemEntries.
	MemEntries int
	// Dir, when non-empty, enables the disk tier: computed analyses are
	// persisted there as <digest>.qca and reloaded on later misses (and
	// after restarts). The directory is created if absent.
	Dir string
	// MaxDiskBytes caps the disk tier; <=0 means unbounded. When a write
	// pushes the directory past the cap, oldest images (by modification
	// time) are evicted — except the one just written.
	MaxDiskBytes int64
}

// Stats is a snapshot of a store's cumulative counters.
type Stats struct {
	// Hits counts lookups answered by the memory tier; DiskHits those that
	// fell through to a persisted image; Misses those that required a full
	// analysis (or, for by-reference lookups, had nothing to offer).
	Hits, Misses, DiskHits uint64
	// Puts counts images written to the disk tier.
	Puts uint64
	// Evictions counts memory-tier LRU victims; DiskEvictions persisted
	// images removed to respect MaxDiskBytes.
	Evictions, DiskEvictions uint64
	// Entries/Capacity describe the memory tier; DiskEntries/DiskBytes the
	// disk tier (zero when disabled).
	Entries, Capacity int
	DiskEntries       int
	DiskBytes         int64
}

// String renders the counters on one line for reports.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d disk_hits=%d misses=%d puts=%d evictions=%d disk_evictions=%d entries=%d/%d disk=%d/%dB",
		s.Hits, s.DiskHits, s.Misses, s.Puts, s.Evictions, s.DiskEvictions,
		s.Entries, s.Capacity, s.DiskEntries, s.DiskBytes)
}

// Store is a concurrency-safe two-tier content-addressed analysis store.
type Store struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used; values are *entry
	items    map[string]*list.Element

	hits, misses, diskHits       uint64
	puts, evictions, diskEvicted uint64

	dir          string
	maxDiskBytes int64
	diskMu       sync.Mutex // serializes image writes and disk eviction
	diskBytes    int64
	diskEntries  int
}

type entry struct {
	digest  string
	once    sync.Once
	compute func() (*analysis.Analysis, error)
	a       *analysis.Analysis
	err     error
}

// New builds a store. With a disk directory the directory is created and
// scanned so restarted processes resume with correct occupancy accounting.
func New(opt Options) (*Store, error) {
	cap := opt.MemEntries
	if cap <= 0 {
		cap = DefaultMemEntries
	}
	s := &Store{
		capacity:     cap,
		ll:           list.New(),
		items:        make(map[string]*list.Element, cap),
		dir:          opt.Dir,
		maxDiskBytes: opt.MaxDiskBytes,
	}
	if s.dir != "" {
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		entries, err := os.ReadDir(s.dir)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		for _, de := range entries {
			if de.IsDir() || !strings.HasSuffix(de.Name(), ".qca") {
				continue
			}
			if info, err := de.Info(); err == nil {
				s.diskBytes += info.Size()
				s.diskEntries++
			}
		}
	}
	return s, nil
}

// Dir reports the disk-tier directory ("" when memory-only).
func (s *Store) Dir() string { return s.dir }

// Outcome classifies how one GetOrAnalyze lookup was satisfied — the
// store attribution request traces record on their analyze spans.
type Outcome uint8

const (
	// OutcomeMiss: neither tier had the digest; a full analysis ran.
	OutcomeMiss Outcome = iota
	// OutcomeHit: served by the memory tier (including lookups coalesced
	// onto another caller's in-flight analysis by the single-flight gate).
	OutcomeHit
	// OutcomeDiskHit: decoded from a persisted .qca image.
	OutcomeDiskHit
)

// String renders the outcome as the span-detail token ("hit", "miss",
// "disk").
func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeDiskHit:
		return "disk"
	default:
		return "miss"
	}
}

// GetOrAnalyze returns the analysis of src's netlist and its content
// digest (bare hex), analyzing at most once per digest across all
// concurrent callers. The stream is consumed (one digest pass, plus the
// analysis passes on a full miss).
func (s *Store) GetOrAnalyze(src analysis.GateStream) (*analysis.Analysis, string, error) {
	a, digest, _, err := s.GetOrAnalyzeOutcome(src)
	return a, digest, err
}

// GetOrAnalyzeOutcome is GetOrAnalyze reporting how the lookup was
// satisfied (memory hit, disk image, full analysis) — the hook request
// tracing uses to attribute analyze time.
func (s *Store) GetOrAnalyzeOutcome(src analysis.GateStream) (*analysis.Analysis, string, Outcome, error) {
	digest, err := qcbin.Digest(src)
	if err != nil {
		return nil, "", OutcomeMiss, err
	}
	// If compute never runs, the digest was resident (or another caller's
	// in-flight analysis was joined): a memory-tier hit either way. Only
	// this goroutine writes outcome — compute runs under the entry's once,
	// and entries created here are computed by their creator.
	outcome := OutcomeHit
	compute := func() (*analysis.Analysis, error) {
		if a, ok := s.loadImage(digest); ok {
			outcome = OutcomeDiskHit
			s.count(&s.diskHits)
			return a, nil
		}
		outcome = OutcomeMiss
		s.count(&s.misses)
		if err := src.Rewind(); err != nil {
			return nil, err
		}
		a, err := analysis.AnalyzeStream(src)
		if err != nil {
			return nil, err
		}
		s.saveImage(digest, a)
		return a, nil
	}
	a, err := s.lookup(digest, compute)
	if errors.Is(err, ErrNotFound) {
		// The digest was claimed by an in-flight by-reference Get that came
		// up empty and unpublished itself; this caller has the stream, so
		// retry and compute for real.
		a, err = s.lookup(digest, compute)
	}
	return a, digest, outcome, err
}

// Get returns the stored analysis for a bare hex digest, consulting both
// tiers; ErrNotFound when neither has it.
func (s *Store) Get(digest string) (*analysis.Analysis, error) {
	a, _, err := s.GetOutcome(digest)
	return a, err
}

// GetOutcome is Get reporting which tier answered — OutcomeHit from
// memory (including a coalesced single-flight wait), OutcomeDiskHit from
// a persisted image, OutcomeMiss with ErrNotFound.
func (s *Store) GetOutcome(digest string) (*analysis.Analysis, Outcome, error) {
	if err := validDigest(digest); err != nil {
		return nil, OutcomeMiss, err
	}
	outcome := OutcomeHit
	a, err := s.lookup(digest, func() (*analysis.Analysis, error) {
		if a, ok := s.loadImage(digest); ok {
			outcome = OutcomeDiskHit
			s.count(&s.diskHits)
			return a, nil
		}
		outcome = OutcomeMiss
		s.count(&s.misses)
		return nil, ErrNotFound
	})
	return a, outcome, err
}

// count bumps one cumulative counter under the store lock.
func (s *Store) count(c *uint64) {
	s.mu.Lock()
	*c++
	s.mu.Unlock()
}

// Contains reports whether digest is resident in either tier, without
// loading anything.
func (s *Store) Contains(digest string) bool {
	if validDigest(digest) != nil {
		return false
	}
	s.mu.Lock()
	_, ok := s.items[digest]
	s.mu.Unlock()
	if ok {
		return true
	}
	if s.dir == "" {
		return false
	}
	_, err := os.Stat(s.imagePath(digest))
	return err == nil
}

// lookup is the single-flight LRU core: a resident digest is shared, a
// new one is computed exactly once by the first arriver, and a failed
// compute is removed so later lookups retry instead of memoizing the
// error.
func (s *Store) lookup(digest string, compute func() (*analysis.Analysis, error)) (*analysis.Analysis, error) {
	s.mu.Lock()
	if el, ok := s.items[digest]; ok {
		s.hits++
		s.ll.MoveToFront(el)
		e := el.Value.(*entry)
		s.mu.Unlock()
		// Both paths run the entry's own compute through its once, so a hit
		// on an in-flight entry blocks until the first arriver finishes.
		e.once.Do(e.run)
		return e.a, e.err
	}
	e := &entry{digest: digest, compute: compute}
	s.items[digest] = s.ll.PushFront(e)
	for s.ll.Len() > s.capacity {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*entry).digest)
		s.evictions++
	}
	s.mu.Unlock()
	// Compute outside the lock; an entry evicted mid-compute stays valid
	// for everyone already holding it, it just stops being findable.
	e.once.Do(e.run)
	if e.err != nil {
		// Unpublish so the next lookup retries (by-reference misses and
		// transient failures must not poison the digest).
		s.mu.Lock()
		if el, ok := s.items[digest]; ok && el.Value.(*entry) == e {
			s.ll.Remove(el)
			delete(s.items, digest)
		}
		s.mu.Unlock()
	}
	return e.a, e.err
}

func (e *entry) run() { e.a, e.err = e.compute() }

// imagePath maps a digest to its disk image.
func (s *Store) imagePath(digest string) string {
	return filepath.Join(s.dir, digest+".qca")
}

// loadImage tries the disk tier. A corrupt image is deleted and treated as
// a miss — the analysis will be recomputed and rewritten.
func (s *Store) loadImage(digest string) (*analysis.Analysis, bool) {
	if s.dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(s.imagePath(digest))
	if err != nil {
		return nil, false
	}
	a, err := qcbin.DecodeImage(data, digest[:12])
	if err != nil {
		s.diskMu.Lock()
		if rmErr := os.Remove(s.imagePath(digest)); rmErr == nil {
			s.mu.Lock()
			s.diskBytes -= int64(len(data))
			s.diskEntries--
			s.mu.Unlock()
		}
		s.diskMu.Unlock()
		return nil, false
	}
	return a, true
}

// saveImage persists a freshly computed analysis: atomic temp-write +
// rename, then oldest-first eviction to respect the size cap. Failures are
// silent by design — the disk tier is an accelerator, not a durability
// contract — but never corrupt accounting.
func (s *Store) saveImage(digest string, a *analysis.Analysis) {
	if s.dir == "" {
		return
	}
	s.diskMu.Lock()
	defer s.diskMu.Unlock()
	final := s.imagePath(digest)
	if _, err := os.Stat(final); err == nil {
		return // already persisted by an earlier process or racing store
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*.qca")
	if err != nil {
		return
	}
	if err := qcbin.EncodeImage(tmp, a); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	info, statErr := tmp.Stat()
	if err := tmp.Close(); err != nil || statErr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return
	}
	s.mu.Lock()
	s.diskBytes += info.Size()
	s.diskEntries++
	s.puts++
	over := s.maxDiskBytes > 0 && s.diskBytes > s.maxDiskBytes
	s.mu.Unlock()
	if over {
		s.evictDiskLocked(final)
	}
}

// evictDiskLocked removes oldest images until the tier fits the cap,
// sparing keep (the image just written). Caller holds diskMu.
func (s *Store) evictDiskLocked(keep string) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type img struct {
		path  string
		size  int64
		mtime int64
	}
	var imgs []img
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".qca") || strings.HasPrefix(de.Name(), ".tmp-") {
			continue
		}
		p := filepath.Join(s.dir, de.Name())
		if p == keep {
			continue
		}
		if info, err := de.Info(); err == nil {
			imgs = append(imgs, img{path: p, size: info.Size(), mtime: info.ModTime().UnixNano()})
		}
	}
	sort.Slice(imgs, func(i, j int) bool { return imgs[i].mtime < imgs[j].mtime })
	for _, im := range imgs {
		s.mu.Lock()
		over := s.diskBytes > s.maxDiskBytes
		s.mu.Unlock()
		if !over {
			break
		}
		if err := os.Remove(im.path); err != nil {
			continue
		}
		s.mu.Lock()
		s.diskBytes -= im.size
		s.diskEntries--
		s.diskEvicted++
		s.mu.Unlock()
	}
}

// Stats reports the cumulative counters of both tiers.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:          s.hits,
		Misses:        s.misses,
		DiskHits:      s.diskHits,
		Puts:          s.puts,
		Evictions:     s.evictions,
		DiskEvictions: s.diskEvicted,
		Entries:       s.ll.Len(),
		Capacity:      s.capacity,
		DiskEntries:   s.diskEntries,
		DiskBytes:     s.diskBytes,
	}
}

// Purge empties the memory tier and resets its statistics; persisted
// images are untouched (use the filesystem to clear the disk tier).
func (s *Store) Purge() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ll.Init()
	clear(s.items)
	s.hits, s.misses, s.diskHits = 0, 0, 0
	s.puts, s.evictions, s.diskEvicted = 0, 0, 0
}

func validDigest(digest string) error {
	if _, err := qcbin.ParseRef(qcbin.DigestPrefix + digest); err != nil {
		return fmt.Errorf("store: bad digest %q", digest)
	}
	return nil
}
