package iig

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

func buildFrom(t *testing.T, c *circuit.Circuit) *Graph {
	t.Helper()
	g, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// graphOf finalizes a builder seeded with the given interaction pairs.
func graphOf(q int, pairs ...[2]int) *Graph {
	b := NewBuilder(q)
	for _, p := range pairs {
		b.AddInteraction(p[0], p[1])
	}
	return b.Graph()
}

func TestBuildBasic(t *testing.T) {
	c := circuit.New("t", 3)
	c.Append(
		circuit.NewCNOT(0, 1),
		circuit.NewCNOT(0, 1),
		circuit.NewCNOT(1, 2),
		circuit.NewOneQubit(circuit.H, 0),
	)
	g := buildFrom(t, c)
	if g.Q != 3 {
		t.Fatalf("Q = %d", g.Q)
	}
	if w := g.Weight(0, 1); w != 2 {
		t.Errorf("w(0,1) = %d, want 2", w)
	}
	if w := g.Weight(1, 0); w != 2 {
		t.Errorf("w(1,0) = %d, want 2 (symmetric)", w)
	}
	if w := g.Weight(0, 2); w != 0 {
		t.Errorf("w(0,2) = %d, want 0", w)
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 || g.Degree(2) != 1 {
		t.Errorf("degrees: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	if g.TotalWeight() != 3 {
		t.Errorf("TotalWeight = %d, want 3", g.TotalWeight())
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestBuildRejectsWideGates(t *testing.T) {
	c := circuit.New("t", 3)
	c.Append(circuit.NewToffoli(0, 1, 2))
	if _, err := Build(c); err == nil {
		t.Error("want error for 3-qubit gate")
	}
	if _, err := BuildReference(c); err == nil {
		t.Error("reference builder should also reject 3-qubit gates")
	}
}

func TestBuildRejectsOutOfRangeQubit(t *testing.T) {
	// Qubit index == Q would land in the CSR cursor slot and silently
	// corrupt rows if unvalidated (the map-based code panicked here).
	c := circuit.New("oob", 2)
	c.Append(circuit.NewCNOT(0, 1), circuit.Gate{Type: circuit.CNOT, Controls: []int{0}, Targets: []int{2}})
	if _, err := Build(c); err == nil {
		t.Error("want validation error for out-of-range operand")
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for out-of-range interaction")
		}
	}()
	NewBuilder(2).AddInteraction(0, 2)
}

func TestNoSelfLoops(t *testing.T) {
	g := graphOf(3, [2]int{1, 1})
	if g.Degree(1) != 0 || g.TotalWeight() != 0 {
		t.Error("self loop recorded")
	}
}

func TestAdjWeightSum(t *testing.T) {
	g := graphOf(4, [2]int{0, 1}, [2]int{0, 1}, [2]int{0, 2})
	if got := g.AdjWeightSum(0); got != 3 {
		t.Errorf("AdjWeightSum(0) = %d, want 3", got)
	}
	if got := g.AdjWeightSum(3); got != 0 {
		t.Errorf("AdjWeightSum(3) = %d, want 0", got)
	}
}

func TestZoneAreaEq6(t *testing.T) {
	g := graphOf(3, [2]int{0, 1}, [2]int{0, 2})
	// M_0 = 2 → B_0 = 3 (Eq. 6: √(M+1)·√(M+1)).
	if got := g.ZoneArea(0); got != 3 {
		t.Errorf("ZoneArea(0) = %v, want 3", got)
	}
	if got := g.ZoneArea(1); got != 2 {
		t.Errorf("ZoneArea(1) = %v, want 2", got)
	}
}

func TestAverageZoneAreaEq7(t *testing.T) {
	// Qubit 0: M=2, ΣW=3 (w01=2, w02=1); qubit 1: M=1, ΣW=2; qubit 2:
	// M=1, ΣW=1. B = (3·3 + 2·2 + 1·2) / (3+2+1) = 15/6 = 2.5.
	g := graphOf(3, [2]int{0, 1}, [2]int{0, 1}, [2]int{0, 2})
	if got := g.AverageZoneArea(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("B = %v, want 2.5", got)
	}
}

func TestAverageZoneAreaNoInteractions(t *testing.T) {
	g := NewBuilder(5).Graph()
	if got := g.AverageZoneArea(); got != 1 {
		t.Errorf("B with no edges = %v, want 1", got)
	}
}

func TestWeightedAverage(t *testing.T) {
	g := graphOf(3, [2]int{0, 1}, [2]int{1, 2})
	// ΣW: q0=1, q1=2, q2=1. WeightedAverage(f=qubit index) =
	// (0·1 + 1·2 + 2·1)/4 = 1.
	got := g.WeightedAverage(func(i int) float64 { return float64(i) })
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("WeightedAverage = %v, want 1", got)
	}
	empty := NewBuilder(2).Graph()
	if empty.WeightedAverage(func(int) float64 { return 5 }) != 0 {
		t.Error("empty graph weighted average should be 0")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := graphOf(5, [2]int{2, 4}, [2]int{2, 0}, [2]int{2, 3})
	n := g.Neighbors(2)
	if len(n) != 3 || n[0] != 0 || n[1] != 3 || n[2] != 4 {
		t.Errorf("Neighbors = %v", n)
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := graphOf(4, [2]int{3, 1}, [2]int{0, 2}, [2]int{1, 3})
	edges := g.Edges()
	if len(edges) != 2 {
		t.Fatalf("Edges len = %d", len(edges))
	}
	if edges[0].A != 0 || edges[0].B != 2 || edges[0].Weight != 1 {
		t.Errorf("edge 0 = %+v", edges[0])
	}
	if edges[1].A != 1 || edges[1].B != 3 || edges[1].Weight != 2 {
		t.Errorf("edge 1 = %+v", edges[1])
	}
}

func TestInteractingQubits(t *testing.T) {
	g := graphOf(5, [2]int{1, 3})
	got := g.InteractingQubits()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("InteractingQubits = %v", got)
	}
}

func TestBFSOrderCoversAll(t *testing.T) {
	g := graphOf(6, [2]int{0, 1}, [2]int{1, 2})
	// Qubits 3,4,5 isolated.
	order := g.BFSOrder()
	if len(order) != 6 {
		t.Fatalf("BFSOrder len = %d", len(order))
	}
	seen := map[int]bool{}
	for _, q := range order {
		if seen[q] {
			t.Fatalf("duplicate %d in order", q)
		}
		seen[q] = true
	}
}

func TestBFSOrderStartsAtHeaviest(t *testing.T) {
	g := graphOf(4, [2]int{2, 0}, [2]int{2, 1}, [2]int{2, 3})
	order := g.BFSOrder()
	if order[0] != 2 {
		t.Errorf("BFS starts at %d, want 2 (heaviest)", order[0])
	}
}

func TestBFSOrderHeavyNeighborFirst(t *testing.T) {
	g := graphOf(3,
		[2]int{0, 1}, // w=1
		[2]int{0, 2},
		[2]int{0, 2}, // w=2
	)
	order := g.BFSOrder()
	if order[0] != 0 || order[1] != 2 || order[2] != 1 {
		t.Errorf("order = %v, want [0 2 1]", order)
	}
}

func TestBuildMatchesReference(t *testing.T) {
	// The CSR builder and the map-based reference must agree on a circuit
	// exercising duplicates, both operand orders, and isolated qubits.
	c := circuit.New("eq", 6)
	c.Append(
		circuit.NewCNOT(0, 1), circuit.NewCNOT(1, 0), circuit.NewCNOT(4, 2),
		circuit.NewCNOT(2, 4), circuit.NewCNOT(0, 5), circuit.NewOneQubit(circuit.H, 3),
		circuit.NewSwap(1, 5),
	)
	got := buildFrom(t, c)
	want, err := BuildReference(c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Q != want.Q || got.TotalWeight() != want.TotalWeight() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape mismatch: Q %d/%d W %d/%d E %d/%d",
			got.Q, want.Q, got.TotalWeight(), want.TotalWeight(), got.NumEdges(), want.NumEdges())
	}
	ge, we := got.Edges(), want.Edges()
	for i := range ge {
		if ge[i] != we[i] {
			t.Errorf("edge %d: %+v != %+v", i, ge[i], we[i])
		}
	}
}

func TestIIGInvariantsRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		b := NewBuilder(n)
		pairs := rng.Intn(30)
		for i := 0; i < pairs; i++ {
			b.AddInteraction(rng.Intn(n), rng.Intn(n))
		}
		g := b.Graph()
		// Invariant: Σ_i ΣW_i = 2·TotalWeight (each op counted at both
		// endpoints).
		sum := 0
		for i := 0; i < n; i++ {
			sum += g.AdjWeightSum(i)
		}
		if sum != 2*g.TotalWeight() {
			return false
		}
		// Invariant: degree symmetric, weights symmetric.
		for a := 0; a < n; a++ {
			for _, b := range g.Neighbors(a) {
				if g.Weight(a, b) != g.Weight(b, a) {
					return false
				}
			}
		}
		// Invariant: B is within [min B_i, max B_i] over interacting
		// qubits (it is a weighted average) when any edge exists.
		if g.TotalWeight() > 0 {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, i := range g.InteractingQubits() {
				lo = math.Min(lo, g.ZoneArea(i))
				hi = math.Max(hi, g.ZoneArea(i))
			}
			bb := g.AverageZoneArea()
			if bb < lo-1e-9 || bb > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
