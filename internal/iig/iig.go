// Package iig implements the Interaction Intensity Graph of LEQA §3.1:
// an undirected weighted graph whose nodes are logical qubits and whose edge
// weights count the two-qubit operations between each qubit pair. The graph
// has no self loops (one-qubit operations add nothing).
//
// From the IIG the package derives the quantities LEQA consumes: per-qubit
// degree M_i, per-qubit adjacent weight sum ΣW_i, presence-zone areas
// B_i = M_i + 1 (Eq. 6) and the fabric-wide weighted average B (Eq. 7).
package iig

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
)

// Graph is the interaction intensity graph over Q logical qubits.
type Graph struct {
	// Q is the number of logical qubits (nodes), including isolated ones.
	Q int
	// adj[i] maps neighbor j -> w(e_ij). Symmetric: adj[i][j] == adj[j][i].
	adj []map[int]int
	// totalWeight is Σ_ij w(e_ij) over unordered pairs.
	totalWeight int
}

// Build constructs the IIG from a circuit: every gate touching exactly two
// qubits contributes weight 1 to the edge between them. Gates touching three
// or more qubits should have been decomposed already; they are rejected so
// that silent modeling errors cannot creep in.
func Build(c *circuit.Circuit) (*Graph, error) {
	g := NewEmpty(c.NumQubits())
	for i, gate := range c.Gates {
		switch gate.Arity() {
		case 1:
			// One-qubit operations add no IIG edges.
		case 2:
			qs := gate.Qubits()
			g.AddInteraction(qs[0], qs[1])
		default:
			return nil, fmt.Errorf("iig: gate %d (%s) touches %d qubits; decompose first",
				i, gate.Type, gate.Arity())
		}
	}
	return g, nil
}

// NewEmpty returns an IIG with q isolated qubits.
func NewEmpty(q int) *Graph {
	adj := make([]map[int]int, q)
	for i := range adj {
		adj[i] = make(map[int]int)
	}
	return &Graph{Q: q, adj: adj}
}

// AddInteraction records one two-qubit operation between a and b.
func (g *Graph) AddInteraction(a, b int) {
	if a == b {
		return // no self loops by construction
	}
	g.adj[a][b]++
	g.adj[b][a]++
	g.totalWeight++
}

// Degree returns M_i = deg(n_i), the number of distinct interaction
// partners of qubit i.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// AdjWeightSum returns ΣW_i = Σ_{j ∈ adj(i)} w(e_ij).
func (g *Graph) AdjWeightSum(i int) int {
	s := 0
	for _, w := range g.adj[i] {
		s += w
	}
	return s
}

// Weight returns w(e_ab), 0 if absent.
func (g *Graph) Weight(a, b int) int { return g.adj[a][b] }

// TotalWeight returns the total two-qubit operation count (Σ over unordered
// pairs of w(e_ij)); equals the circuit's two-qubit gate count.
func (g *Graph) TotalWeight() int { return g.totalWeight }

// NumEdges returns the number of distinct interacting pairs.
func (g *Graph) NumEdges() int {
	n := 0
	for i := range g.adj {
		n += len(g.adj[i])
	}
	return n / 2
}

// Neighbors returns qubit i's interaction partners in ascending order.
func (g *Graph) Neighbors(i int) []int {
	out := make([]int, 0, len(g.adj[i]))
	for j := range g.adj[i] {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// ZoneArea returns B_i = √(M_i+1) · √(M_i+1) = M_i + 1 (Eq. 6), the modeled
// presence-zone area of qubit i in ULB units.
func (g *Graph) ZoneArea(i int) float64 { return float64(g.Degree(i) + 1) }

// AverageZoneArea computes B (Eq. 7): the average of B_i over all qubits,
// weighted by each qubit's adjacent edge-weight sum ΣW_i. Qubits that never
// interact carry zero weight and drop out. Returns 1 (a single-ULB zone) if
// no qubit interacts at all, so downstream geometry stays well defined.
func (g *Graph) AverageZoneArea() float64 {
	num, den := 0.0, 0.0
	for i := 0; i < g.Q; i++ {
		w := float64(g.AdjWeightSum(i))
		num += w * g.ZoneArea(i)
		den += w
	}
	if den == 0 {
		return 1
	}
	return num / den
}

// WeightedAverage computes Σ_i ΣW_i·f(i) / Σ_i ΣW_i — the Eq. 7/Eq. 12
// weighting pattern over arbitrary per-qubit values. Returns 0 when no qubit
// interacts.
func (g *Graph) WeightedAverage(f func(i int) float64) float64 {
	num, den := 0.0, 0.0
	for i := 0; i < g.Q; i++ {
		w := float64(g.AdjWeightSum(i))
		if w == 0 {
			continue
		}
		num += w * f(i)
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// InteractingQubits returns the qubits with M_i > 0, ascending.
func (g *Graph) InteractingQubits() []int {
	out := make([]int, 0, g.Q)
	for i := 0; i < g.Q; i++ {
		if len(g.adj[i]) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// Edge is one undirected IIG edge with its weight.
type Edge struct {
	A, B   int // A < B
	Weight int
}

// Edges lists all edges sorted by (A, B); deterministic for reports and
// placement seeds.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for a := 0; a < g.Q; a++ {
		for b, w := range g.adj[a] {
			if a < b {
				out = append(out, Edge{A: a, B: b, Weight: w})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// BFSOrder returns all Q qubits in breadth-first order over the IIG,
// starting from the highest-ΣW qubit of each connected component, visiting
// heavier edges first. QSPR's clustered placement uses this to put strongly
// interacting qubits near each other on the fabric.
func (g *Graph) BFSOrder() []int {
	visited := make([]bool, g.Q)
	order := make([]int, 0, g.Q)

	// Component seeds: all qubits sorted by descending ΣW, ties by index.
	seeds := make([]int, g.Q)
	for i := range seeds {
		seeds[i] = i
	}
	sort.Slice(seeds, func(a, b int) bool {
		wa, wb := g.AdjWeightSum(seeds[a]), g.AdjWeightSum(seeds[b])
		if wa != wb {
			return wa > wb
		}
		return seeds[a] < seeds[b]
	})

	for _, seed := range seeds {
		if visited[seed] {
			continue
		}
		queue := []int{seed}
		visited[seed] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			nbrs := g.Neighbors(u)
			sort.Slice(nbrs, func(a, b int) bool {
				wa, wb := g.adj[u][nbrs[a]], g.adj[u][nbrs[b]]
				if wa != wb {
					return wa > wb
				}
				return nbrs[a] < nbrs[b]
			})
			for _, v := range nbrs {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	return order
}
