// Package iig implements the Interaction Intensity Graph of LEQA §3.1:
// an undirected weighted graph whose nodes are logical qubits and whose edge
// weights count the two-qubit operations between each qubit pair. The graph
// has no self loops (one-qubit operations add nothing).
//
// From the IIG the package derives the quantities LEQA consumes: per-qubit
// degree M_i, per-qubit adjacent weight sum ΣW_i, presence-zone areas
// B_i = M_i + 1 (Eq. 6) and the fabric-wide weighted average B (Eq. 7).
//
// Adjacency is stored in compressed-sparse-row form: per qubit, a sorted
// slice of distinct neighbors with a parallel weight slice. Construction
// streams the gate list into a flat multigraph incidence array (counting
// pass + fill pass, no per-qubit maps), then sorts each row and collapses
// duplicate neighbors into weights in place.
package iig

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/circuit"
	"repro/internal/csr"
)

// Graph is the interaction intensity graph over Q logical qubits. Immutable
// after construction; build one with Build, a Builder, or FromIncidence.
type Graph struct {
	// Q is the number of logical qubits (nodes), including isolated ones.
	Q int

	off []int32 // Q+1 row offsets into nbr/wt
	nbr []int32 // distinct neighbors, ascending within each row
	wt  []int32 // wt[k] = w(e) for the pair (row, nbr[k]); symmetric
	// adjw[i] caches ΣW_i, the row sum of wt — every Eq. 7/12 weighting
	// walks it, so it is precomputed once.
	adjw []int32
	// totalWeight is Σ_ij w(e_ij) over unordered pairs.
	totalWeight int
}

// Build constructs the IIG from a circuit: every gate touching exactly two
// qubits contributes weight 1 to the edge between them. Gates touching three
// or more qubits should have been decomposed already; they are rejected so
// that silent modeling errors cannot creep in. The circuit is validated
// first — an out-of-range operand would otherwise land in the CSR cursor
// slots and corrupt rows silently.
func Build(c *circuit.Circuit) (*Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	q := c.NumQubits()
	deg := make([]int32, q+1)
	for i, gate := range c.Gates {
		switch gate.Arity() {
		case 1:
			// One-qubit operations add no IIG edges.
		case 2:
			a, b := gate.QubitPair()
			if a == b {
				continue // no self loops by construction
			}
			deg[a]++
			deg[b]++
		default:
			return nil, fmt.Errorf("iig: gate %d (%s) touches %d qubits; decompose first",
				i, gate.Type, gate.Arity())
		}
	}
	off, nbr := csr.Offsets[int32](deg)
	for _, gate := range c.Gates {
		if gate.Arity() != 2 {
			continue
		}
		a, b := gate.QubitPair()
		if a == b {
			continue
		}
		nbr[deg[a]] = int32(b)
		deg[a]++
		nbr[deg[b]] = int32(a)
		deg[b]++
	}
	return FromIncidence(q, off, nbr), nil
}

// Scratch holds the reusable storage of FromIncidenceScratch: the Graph
// header plus its offset/weight/degree arrays, recycled across circuits by
// the analysis arena. A zero Scratch is ready to use.
type Scratch struct {
	g    Graph
	adjw []int32
	off  []int32
	wt   []int32
}

// FromIncidence assembles a Graph from multigraph CSR incidence data: off
// holds q+1 row offsets into nbr, and each nbr entry is one unit-weight
// interaction endpoint (each two-qubit op appears once in either endpoint's
// row). Rows are sorted and duplicate neighbors collapsed into weights in
// place. The analysis layer calls this after its fused counting/fill pass.
func FromIncidence(q int, off []int32, nbr []int32) *Graph {
	return fromIncidence(q, off, nbr, new(Scratch), true)
}

// FromIncidenceScratch is FromIncidence into arena-owned storage: the
// returned graph is sc's embedded header, aliases sc's buffers plus the
// caller's nbr array, and stays valid only until the next call with the
// same scratch. Heavily collapsed rows are not cloned to tight arrays here
// — the incidence backing store is arena memory about to be reused anyway,
// so pinning it costs nothing.
func FromIncidenceScratch(q int, off []int32, nbr []int32, sc *Scratch) *Graph {
	return fromIncidence(q, off, nbr, sc, false)
}

func fromIncidence(q int, off []int32, nbr []int32, sc *Scratch, clone bool) *Graph {
	if cap(sc.adjw) < q {
		sc.adjw = make([]int32, q)
	}
	if cap(sc.off) < q+1 {
		sc.off = make([]int32, q+1)
	}
	g := &sc.g
	*g = Graph{
		Q:           q,
		adjw:        sc.adjw[:q],
		totalWeight: len(nbr) / 2,
	}
	newOff := sc.off[:q+1]
	wt := sc.wt[:0]
	if clone && cap(wt) < len(nbr) {
		wt = make([]int32, 0, len(nbr))
	}
	w := int32(0) // compaction write cursor into nbr
	for i := 0; i < q; i++ {
		newOff[i] = w
		row := nbr[off[i]:off[i+1]]
		slices.Sort(row)
		g.adjw[i] = int32(len(row))
		for k := 0; k < len(row); {
			run := k + 1
			for run < len(row) && row[run] == row[k] {
				run++
			}
			nbr[w] = row[k]
			wt = append(wt, int32(run-k))
			w++
			k = run
		}
	}
	newOff[q] = w
	g.off = newOff
	if !clone {
		// Keep the grown wt backing array for the next scratch build; the
		// clone path must NOT do this — its Scratch is throwaway, and
		// retaining the full-length wt buffer in a struct the returned
		// Graph points into would pin it (and defeat the tight-copy below)
		// for the graph's lifetime.
		sc.wt = wt
		g.nbr = nbr[:w]
		g.wt = wt
		return g
	}
	// Duplicate collapse can shrink the row data by orders of magnitude
	// (benchmark circuits repeat the same qubit pairs heavily), and graphs
	// can outlive the build by a whole sweep — copy to tight arrays rather
	// than pin the full incidence backing store.
	if int(w) < len(nbr) {
		g.nbr = slices.Clone(nbr[:w])
		g.wt = slices.Clone(wt)
	} else {
		g.nbr = nbr
		g.wt = wt
	}
	return g
}

// Rows exposes the graph's collapsed CSR storage — q+1 row offsets, the
// sorted distinct-neighbor array and the parallel weight array — for
// serialization (internal/qcbin writes them verbatim). The slices are live
// graph storage; treat them as read-only.
func (g *Graph) Rows() (off, nbr, wt []int32) { return g.off, g.nbr, g.wt }

// FromCSRWeights assembles a Graph directly from already-collapsed CSR
// rows: off holds q+1 offsets into nbr/wt, each row's neighbors are sorted
// ascending and distinct, and weights are symmetric (w(a,b) recorded in
// both rows). The per-qubit adjacent-weight sums and the total weight are
// recomputed here, so a graph decoded from a serialized image carries
// exactly the derived quantities FromIncidence would have produced. The
// input slices are adopted, not copied.
func FromCSRWeights(q int, off, nbr, wt []int32) (*Graph, error) {
	if len(off) != q+1 || len(nbr) != len(wt) {
		return nil, fmt.Errorf("iig: CSR shape mismatch: %d offsets for %d qubits, %d neighbors vs %d weights",
			len(off), q, len(nbr), len(wt))
	}
	if q > 0 && int(off[q]) != len(nbr) {
		return nil, fmt.Errorf("iig: CSR offsets end at %d, want %d", off[q], len(nbr))
	}
	g := &Graph{Q: q, off: off, nbr: nbr, wt: wt, adjw: make([]int32, q)}
	total := 0
	for i := 0; i < q; i++ {
		if off[i] < 0 || off[i] > off[i+1] {
			return nil, fmt.Errorf("iig: row %d offsets [%d,%d) malformed", i, off[i], off[i+1])
		}
		sum := int32(0)
		for k := off[i]; k < off[i+1]; k++ {
			if n := nbr[k]; n < 0 || int(n) >= q || n == int32(i) {
				return nil, fmt.Errorf("iig: row %d neighbor %d out of range [0,%d)", i, n, q)
			}
			if k > off[i] && nbr[k] <= nbr[k-1] {
				return nil, fmt.Errorf("iig: row %d neighbors not sorted/distinct at %d", i, k)
			}
			if wt[k] <= 0 {
				return nil, fmt.Errorf("iig: row %d weight %d must be positive", i, wt[k])
			}
			sum += wt[k]
		}
		g.adjw[i] = sum
		total += int(sum)
	}
	// Each unordered pair's weight is recorded in both endpoint rows.
	if total%2 != 0 {
		return nil, fmt.Errorf("iig: asymmetric CSR weights (odd total %d)", total)
	}
	g.totalWeight = total / 2
	return g, nil
}

// Extend builds a new immutable Graph from an existing one plus extra
// unit-weight interactions, given as flat (a, b) pairs over the same
// register. The result is exactly what Build would produce on the
// concatenated gate stream: each row is the sorted merge of the base's
// collapsed row with the collapsed extras. With no pairs it is a deep copy
// — the incremental analysis appender uses that to detach a seed IIG from
// arena-borrowed storage. Out-of-range qubits panic like Builder does.
func Extend(g *Graph, pairs []int32) *Graph {
	q := g.Q
	extraDeg := make([]int32, q+1)
	for i := 0; i < len(pairs); i += 2 {
		a, b := pairs[i], pairs[i+1]
		if a < 0 || int(a) >= q || b < 0 || int(b) >= q {
			panic(fmt.Sprintf("iig: interaction (%d,%d) out of range [0,%d)", a, b, q))
		}
		extraDeg[a]++
		extraDeg[b]++
	}
	exOff, extra := csr.Offsets[int32](extraDeg)
	for i := 0; i < len(pairs); i += 2 {
		a, b := pairs[i], pairs[i+1]
		extra[extraDeg[a]] = b
		extraDeg[a]++
		extra[extraDeg[b]] = a
		extraDeg[b]++
	}
	out := &Graph{
		Q:           q,
		off:         make([]int32, q+1),
		adjw:        make([]int32, q),
		totalWeight: g.totalWeight + len(pairs)/2,
		nbr:         make([]int32, 0, len(g.nbr)+len(extra)),
		wt:          make([]int32, 0, len(g.wt)+len(extra)),
	}
	for i := 0; i < q; i++ {
		out.off[i] = int32(len(out.nbr))
		base := g.nbr[g.off[i]:g.off[i+1]]
		baseWt := g.wt[g.off[i]:g.off[i+1]]
		ex := extra[exOff[i]:exOff[i+1]]
		slices.Sort(ex)
		out.adjw[i] = g.adjw[i] + int32(len(ex))
		bi, ei := 0, 0
		for bi < len(base) || ei < len(ex) {
			switch {
			case ei == len(ex) || (bi < len(base) && base[bi] < ex[ei]):
				out.nbr = append(out.nbr, base[bi])
				out.wt = append(out.wt, baseWt[bi])
				bi++
			default:
				// Collapse the run of equal extras, folding in the base
				// weight when the neighbor already exists.
				v := ex[ei]
				w := int32(0)
				for ei < len(ex) && ex[ei] == v {
					w++
					ei++
				}
				if bi < len(base) && base[bi] == v {
					w += baseWt[bi]
					bi++
				}
				out.nbr = append(out.nbr, v)
				out.wt = append(out.wt, w)
			}
		}
	}
	out.off[q] = int32(len(out.nbr))
	return out
}

// Builder accumulates interactions incrementally and finalizes them into an
// immutable Graph — the construction path for callers that do not have a
// circuit (tests, synthetic workloads).
type Builder struct {
	q     int
	pairs []int32 // flat (a, b) pairs
}

// NewBuilder returns a builder over q qubits with no interactions yet.
func NewBuilder(q int) *Builder { return &Builder{q: q} }

// AddInteraction records one two-qubit operation between a and b. Self
// loops are ignored. Out-of-range qubits panic immediately (they would
// otherwise corrupt CSR rows at finalize time).
func (b *Builder) AddInteraction(x, y int) {
	if x < 0 || x >= b.q || y < 0 || y >= b.q {
		panic(fmt.Sprintf("iig: interaction (%d,%d) out of range [0,%d)", x, y, b.q))
	}
	if x == y {
		return // no self loops by construction
	}
	b.pairs = append(b.pairs, int32(x), int32(y))
}

// Graph finalizes the builder into an immutable CSR graph. The builder
// stays usable; each call builds an independent snapshot.
func (b *Builder) Graph() *Graph {
	deg := make([]int32, b.q+1)
	for i := 0; i < len(b.pairs); i += 2 {
		deg[b.pairs[i]]++
		deg[b.pairs[i+1]]++
	}
	off, nbr := csr.Offsets[int32](deg)
	for i := 0; i < len(b.pairs); i += 2 {
		a, c := b.pairs[i], b.pairs[i+1]
		nbr[deg[a]] = c
		deg[a]++
		nbr[deg[c]] = a
		deg[c]++
	}
	return FromIncidence(b.q, off, nbr)
}

// Degree returns M_i = deg(n_i), the number of distinct interaction
// partners of qubit i.
func (g *Graph) Degree(i int) int { return int(g.off[i+1] - g.off[i]) }

// AdjWeightSum returns ΣW_i = Σ_{j ∈ adj(i)} w(e_ij).
func (g *Graph) AdjWeightSum(i int) int { return int(g.adjw[i]) }

// Weight returns w(e_ab), 0 if absent.
func (g *Graph) Weight(a, b int) int {
	row := g.nbr[g.off[a]:g.off[a+1]]
	k, ok := slices.BinarySearch(row, int32(b))
	if !ok {
		return 0
	}
	return int(g.wt[int(g.off[a])+k])
}

// TotalWeight returns the total two-qubit operation count (Σ over unordered
// pairs of w(e_ij)); equals the circuit's two-qubit gate count.
func (g *Graph) TotalWeight() int { return g.totalWeight }

// NumEdges returns the number of distinct interacting pairs.
func (g *Graph) NumEdges() int { return len(g.nbr) / 2 }

// Neighbors returns qubit i's interaction partners in ascending order. The
// result is freshly allocated; callers may reorder it.
func (g *Graph) Neighbors(i int) []int {
	row := g.nbr[g.off[i]:g.off[i+1]]
	out := make([]int, len(row))
	for k, v := range row {
		out[k] = int(v)
	}
	return out
}

// ZoneArea returns B_i = √(M_i+1) · √(M_i+1) = M_i + 1 (Eq. 6), the modeled
// presence-zone area of qubit i in ULB units.
func (g *Graph) ZoneArea(i int) float64 { return float64(g.Degree(i) + 1) }

// AverageZoneArea computes B (Eq. 7): the average of B_i over all qubits,
// weighted by each qubit's adjacent edge-weight sum ΣW_i. Qubits that never
// interact carry zero weight and drop out. Returns 1 (a single-ULB zone) if
// no qubit interacts at all, so downstream geometry stays well defined.
func (g *Graph) AverageZoneArea() float64 {
	num, den := 0.0, 0.0
	for i := 0; i < g.Q; i++ {
		w := float64(g.adjw[i])
		num += w * g.ZoneArea(i)
		den += w
	}
	if den == 0 {
		return 1
	}
	return num / den
}

// WeightedAverage computes Σ_i ΣW_i·f(i) / Σ_i ΣW_i — the Eq. 7/Eq. 12
// weighting pattern over arbitrary per-qubit values. Returns 0 when no qubit
// interacts.
func (g *Graph) WeightedAverage(f func(i int) float64) float64 {
	num, den := 0.0, 0.0
	for i := 0; i < g.Q; i++ {
		w := float64(g.adjw[i])
		if w == 0 {
			continue
		}
		num += w * f(i)
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// InteractingQubits returns the qubits with M_i > 0, ascending.
func (g *Graph) InteractingQubits() []int {
	out := make([]int, 0, g.Q)
	for i := 0; i < g.Q; i++ {
		if g.off[i+1] > g.off[i] {
			out = append(out, i)
		}
	}
	return out
}

// Edge is one undirected IIG edge with its weight.
type Edge struct {
	A, B   int // A < B
	Weight int
}

// Edges lists all edges sorted by (A, B); deterministic for reports and
// placement seeds. The CSR rows are already sorted, so this is one linear
// walk keeping each pair's low-endpoint occurrence.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for a := 0; a < g.Q; a++ {
		for k := g.off[a]; k < g.off[a+1]; k++ {
			if b := int(g.nbr[k]); a < b {
				out = append(out, Edge{A: a, B: b, Weight: int(g.wt[k])})
			}
		}
	}
	return out
}

// BFSOrder returns all Q qubits in breadth-first order over the IIG,
// starting from the highest-ΣW qubit of each connected component, visiting
// heavier edges first. QSPR's clustered placement uses this to put strongly
// interacting qubits near each other on the fabric.
func (g *Graph) BFSOrder() []int {
	visited := make([]bool, g.Q)
	order := make([]int, 0, g.Q)

	// Component seeds: all qubits sorted by descending ΣW, ties by index.
	seeds := make([]int, g.Q)
	for i := range seeds {
		seeds[i] = i
	}
	sort.Slice(seeds, func(a, b int) bool {
		wa, wb := g.adjw[seeds[a]], g.adjw[seeds[b]]
		if wa != wb {
			return wa > wb
		}
		return seeds[a] < seeds[b]
	})

	for _, seed := range seeds {
		if visited[seed] {
			continue
		}
		queue := []int{seed}
		visited[seed] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			nbrs := g.Neighbors(u)
			row := int(g.off[u])
			weightOf := func(v int) int32 {
				k, _ := slices.BinarySearch(g.nbr[g.off[u]:g.off[u+1]], int32(v))
				return g.wt[row+k]
			}
			sort.Slice(nbrs, func(a, b int) bool {
				wa, wb := weightOf(nbrs[a]), weightOf(nbrs[b])
				if wa != wb {
					return wa > wb
				}
				return nbrs[a] < nbrs[b]
			})
			for _, v := range nbrs {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	return order
}

// BuildReference is the pre-CSR builder (per-qubit neighbor maps), retained
// as the independent oracle for the equivalence suite and as the baseline
// BenchmarkAnalyze measures the fused CSR pass against. Output converts to
// the CSR representation so results compare directly with Build.
func BuildReference(c *circuit.Circuit) (*Graph, error) {
	adj := make([]map[int]int, c.NumQubits())
	for i := range adj {
		adj[i] = make(map[int]int)
	}
	total := 0
	for i, gate := range c.Gates {
		switch gate.Arity() {
		case 1:
		case 2:
			a, b := gate.QubitPair()
			if a == b {
				continue
			}
			adj[a][b]++
			adj[b][a]++
			total++
		default:
			return nil, fmt.Errorf("iig: gate %d (%s) touches %d qubits; decompose first",
				i, gate.Type, gate.Arity())
		}
	}
	g := &Graph{
		Q:           len(adj),
		off:         make([]int32, len(adj)+1),
		adjw:        make([]int32, len(adj)),
		totalWeight: total,
	}
	for i, row := range adj {
		g.off[i] = int32(len(g.nbr))
		keys := make([]int, 0, len(row))
		sum := 0
		for k, w := range row {
			keys = append(keys, k)
			sum += w
		}
		sort.Ints(keys)
		for _, k := range keys {
			g.nbr = append(g.nbr, int32(k))
			g.wt = append(g.wt, int32(row[k]))
		}
		g.adjw[i] = int32(sum)
	}
	g.off[len(adj)] = int32(len(g.nbr))
	return g, nil
}
