// Package qspr is this repository's stand-in for the paper's baseline: the
// quantum scheduling, placement and routing tool (QSPR, Dousti & Pedram,
// DATE 2012) that computes the "actual" latency of an FT netlist mapped to
// the tiled quantum architecture. The original tool is closed-source Java;
// this is a from-scratch detailed mapper with the same fabric model:
//
//   - placement — logical qubits are placed on the ULB grid in IIG
//     breadth-first order along a center-out spiral, so strongly interacting
//     qubits start near each other (a clustered constructive placement);
//   - scheduling — greedy list scheduling over the QODG in program order;
//     each qubit carries a free-at time, so every dependency in the QODG is
//     honored through its operand qubits;
//   - routing — dimension-ordered (XY) routing through the inter-ULB
//     channels; every channel segment has Nc lanes and a qubit crossing a
//     full segment occupies one lane for T_move, queueing FIFO when all
//     lanes are busy (the congestion the M/M/1 model of LEQA approximates);
//   - ULB exclusivity — a ULB executes one FT operation at a time; gates
//     arriving at a busy ULB wait for it.
//
// The mapper is fully deterministic, so Table-2 comparisons are exactly
// reproducible.
package qspr

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/fabric"
	"repro/internal/iig"
)

// Placement selects the initial-placement strategy.
type Placement int

const (
	// PlaceClustered is the default: the IIG-BFS qubit order packed onto
	// a dense center-out spiral of adjacent ULBs — the constructive
	// clustered placement that minimizes partner distances, and the
	// density-one packing LEQA's presence-zone model assumes (a zone of
	// area B_i holds M_i+1 qubits).
	PlaceClustered Placement = iota
	// PlaceSpaced leaves one free ULB between neighboring qubits
	// (spacing 2) — extra elbow room at doubled distances (ablation).
	PlaceSpaced
	// PlaceSpread assigns qubits, in IIG breadth-first order, to a
	// center-out spiral over a ⌈√Q⌉×⌈√Q⌉ subgrid scaled to span the whole
	// fabric — every qubit owns a region (placement ablation).
	PlaceSpread
	// PlaceRowMajor ignores the IIG and fills the grid row by row — the
	// naive baseline for the placement ablation.
	PlaceRowMajor
)

// Options tunes the mapper; the zero value is the default configuration.
type Options struct {
	// Placement selects the initial placement strategy.
	Placement Placement
	// DisableChannelContention gives every segment infinite capacity —
	// isolates how much of the latency is congestion (ablation).
	DisableChannelContention bool
	// DisableULBExclusivity lets a ULB run any number of concurrent
	// gates (ablation).
	DisableULBExclusivity bool
	// MidpointMeeting makes CNOT operands meet at the midpoint of their
	// positions instead of at the busier operand's ULB (ablation).
	MidpointMeeting bool
	// Trace records the per-gate schedule. Costs memory on big circuits.
	Trace bool
}

// GateEvent is one scheduled operation in the trace.
type GateEvent struct {
	GateIndex int
	Type      circuit.GateType
	ULB       fabric.Coord
	Start     float64 // µs
	End       float64 // µs
}

// Result is the mapping outcome.
type Result struct {
	// Latency is the actual end-to-end latency in µs: the time the last
	// operation finishes.
	Latency float64
	// Moves counts ULB-to-ULB hops across all qubits.
	Moves int
	// CongestionWait is the total time (µs·qubit) spent waiting for busy
	// channel lanes.
	CongestionWait float64
	// ULBWait is the total time (µs·gate) spent waiting for busy ULBs.
	ULBWait float64
	// Operations echoes the gate count.
	Operations int
	// Events is the per-gate schedule if Options.Trace was set.
	Events []GateEvent
	// FinalPositions maps each qubit to its last ULB.
	FinalPositions []fabric.Coord
}

// Mapper binds the physical parameters and options.
type Mapper struct {
	Params  fabric.Params
	Options Options
}

// New constructs a Mapper after validating parameters.
func New(p fabric.Params, opt Options) (*Mapper, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Mapper{Params: p, Options: opt}, nil
}

// Map schedules, places and routes the FT circuit on the fabric and returns
// the actual latency.
func (m *Mapper) Map(c *circuit.Circuit) (*Result, error) {
	if !c.IsFT() {
		return nil, fmt.Errorf("qspr: circuit %q contains non-FT gates; run decompose.ToFT first", c.Name)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	grid := m.Params.Grid
	if c.NumQubits() > grid.Area() {
		return nil, fmt.Errorf("qspr: %d qubits exceed fabric capacity %d (grid %dx%d)",
			c.NumQubits(), grid.Area(), grid.Width, grid.Height)
	}

	st, err := m.newState(c)
	if err != nil {
		return nil, err
	}
	for gi, g := range c.Gates {
		if err := st.schedule(gi, g); err != nil {
			return nil, fmt.Errorf("qspr: gate %d: %w", gi, err)
		}
	}

	res := &Result{
		Latency:        st.latency,
		Moves:          st.moves,
		CongestionWait: st.congestionWait,
		ULBWait:        st.ulbWait,
		Operations:     c.NumGates(),
		Events:         st.events,
		FinalPositions: st.pos,
	}
	return res, nil
}

// state carries the mutable mapping state.
type state struct {
	m    *Mapper
	grid fabric.Grid

	pos      []fabric.Coord // current ULB of each qubit
	freeAt   []float64      // time each qubit becomes available, µs
	occupant []int16        // qubits currently resident per ULB index
	ulbCal   []calendar     // per-ULB reservation calendar
	chans    *channels

	latency        float64
	moves          int
	congestionWait float64
	ulbWait        float64
	events         []GateEvent
}

func (m *Mapper) newState(c *circuit.Circuit) (*state, error) {
	grid := m.Params.Grid
	st := &state{
		m:        m,
		grid:     grid,
		pos:      make([]fabric.Coord, c.NumQubits()),
		freeAt:   make([]float64, c.NumQubits()),
		occupant: make([]int16, grid.Area()),
		ulbCal:   make([]calendar, grid.Area()),
		chans:    newChannels(grid, m.Params.ChannelCapacity, m.Options.DisableChannelContention),
	}

	var order []int
	switch m.Options.Placement {
	case PlaceSpread, PlaceClustered, PlaceSpaced:
		ig, err := iig.Build(c)
		if err != nil {
			return nil, err
		}
		order = ig.BFSOrder()
	case PlaceRowMajor:
		order = make([]int, c.NumQubits())
		for i := range order {
			order[i] = i
		}
	default:
		return nil, fmt.Errorf("qspr: unknown placement %d", m.Options.Placement)
	}

	var slots []fabric.Coord
	switch m.Options.Placement {
	case PlaceSpread:
		slots = placementSlots(grid, c.NumQubits(), 0)
	case PlaceSpaced:
		slots = placementSlots(grid, c.NumQubits(), 2)
	default: // PlaceClustered, PlaceRowMajor
		slots = grid.SpiralOrder()
	}
	for slot, q := range order {
		st.pos[q] = slots[slot]
		st.occupant[grid.Index(slots[slot])]++
	}
	return st, nil
}

// placementSlots builds q placement slots on a ⌈√q⌉×⌈√q⌉ virtual subgrid
// enumerated center-out (spiral) and scaled onto the fabric with the given
// inter-qubit spacing; spacing 0 means "stretch over the whole fabric"
// (uniform spread). Consecutive slots are adjacent in the subgrid, so
// BFS-ordered qubits keep their locality. If the requested spacing does not
// fit (q·spacing² exceeds the fabric) it is reduced until it does.
func placementSlots(grid fabric.Grid, q, spacing int) []fabric.Coord {
	k := 1
	for k*k < q {
		k++
	}
	if spacing == 0 {
		// Stretch: spacing so the subgrid spans the smaller dimension.
		spacing = grid.Width / k
		if s2 := grid.Height / k; s2 < spacing {
			spacing = s2
		}
	}
	for spacing > 1 && ((k-1)*spacing >= grid.Width || (k-1)*spacing >= grid.Height) {
		spacing--
	}
	if spacing < 1 {
		spacing = 1
	}
	sub, _ := fabric.NewGrid(k, k) // k ≥ 1 always valid
	center := grid.Center()
	slots := make([]fabric.Coord, 0, q)
	used := make(map[fabric.Coord]bool, q)
	for _, s := range sub.SpiralOrder() {
		if len(slots) == q {
			break
		}
		c := fabric.Coord{
			X: center.X + (s.X-sub.Center().X)*spacing,
			Y: center.Y + (s.Y-sub.Center().Y)*spacing,
		}
		c = grid.Clamp(c)
		// Clamping (or spacing 1) can collide; fall back to the nearest
		// free ULB found by ring search.
		if used[c] {
			c = nearestFree(grid, c, used)
		}
		used[c] = true
		slots = append(slots, c)
	}
	return slots
}

// nearestFree scans rings around c for an unused ULB; the grid is guaranteed
// to have one because callers never place more qubits than ULBs.
func nearestFree(grid fabric.Grid, c fabric.Coord, used map[fabric.Coord]bool) fabric.Coord {
	maxR := grid.Width + grid.Height
	for r := 1; r <= maxR; r++ {
		for dx := -r; dx <= r; dx++ {
			dy := r - abs(dx)
			for _, cand := range [...]fabric.Coord{
				{X: c.X + dx, Y: c.Y + dy},
				{X: c.X + dx, Y: c.Y - dy},
			} {
				if grid.Contains(cand) && !used[cand] {
					return cand
				}
			}
		}
	}
	return c
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// schedule maps one gate.
func (st *state) schedule(gi int, g circuit.Gate) error {
	switch {
	case g.Type == circuit.CNOT:
		return st.scheduleCNOT(gi, g)
	case g.Type.IsOneQubit():
		return st.scheduleOneQubit(gi, g)
	default:
		return fmt.Errorf("unsupported FT gate %s", g.Type)
	}
}

func (st *state) scheduleOneQubit(gi int, g circuit.Gate) error {
	q := g.Targets[0]
	t := st.freeAt[q]
	at := st.pos[q]
	// The paper's empirical model: a one-qubit op runs in the qubit's own
	// ULB, or the nearest free ULB when the current one is shared. When a
	// move is needed, pick the neighbor with the smallest backlog.
	if st.occupant[st.grid.Index(at)] > 1 {
		dst := st.bestNeighbor(at, t)
		t = st.moveQubit(q, t, at, dst)
		at = dst
	}
	d, err := st.m.Params.DelayOf(g.Type)
	if err != nil {
		return err
	}
	start, end := st.execute(at, t, d)
	st.freeAt[q] = end
	st.record(gi, g.Type, at, start, end)
	return nil
}

func (st *state) scheduleCNOT(gi int, g circuit.Gate) error {
	a, b := g.Controls[0], g.Targets[0]
	pa, pb := st.pos[a], st.pos[b]
	// Meeting ULB: a greedy scheduler choice. Candidates are either
	// operand's current ULB and the midpoint; pick the one with the
	// earliest achievable gate start, accounting for both travel times and
	// the candidate ULB's backlog. Midpoint-only meeting is available as
	// an ablation.
	mid := st.grid.Clamp(fabric.Coord{X: (pa.X + pb.X) / 2, Y: (pa.Y + pb.Y) / 2})
	var meet fabric.Coord
	if st.m.Options.MidpointMeeting {
		meet = mid
	} else {
		meet = st.bestMeeting(a, b, []fabric.Coord{pa, pb, mid})
	}
	ta := st.moveQubit(a, st.freeAt[a], pa, meet)
	tb := st.moveQubit(b, st.freeAt[b], pb, meet)
	t := ta
	if tb > t {
		t = tb
	}
	start, end := st.execute(meet, t, st.m.Params.DCNOT)
	st.freeAt[a] = end
	st.freeAt[b] = end
	st.record(gi, circuit.CNOT, meet, start, end)
	return nil
}

// bestMeeting scores candidate meeting ULBs for a CNOT on qubits a and b by
// the earliest achievable start time — travel of both operands (congestion
// ignored in the preview; the actual routing pays it) plus the candidate's
// execution backlog — and returns the winner (first minimum in candidate
// order, so the choice is deterministic).
func (st *state) bestMeeting(a, b int, candidates []fabric.Coord) fabric.Coord {
	tm := st.m.Params.TMove
	best := candidates[0]
	bestStart := 0.0
	for i, m := range candidates {
		arrA := st.freeAt[a] + float64(st.pos[a].ManhattanDist(m))*tm
		arrB := st.freeAt[b] + float64(st.pos[b].ManhattanDist(m))*tm
		start := arrA
		if arrB > start {
			start = arrB
		}
		if !st.m.Options.DisableULBExclusivity {
			start = st.ulbCal[st.grid.Index(m)].earliest(start, st.m.Params.DCNOT)
		}
		if i == 0 || start < bestStart {
			bestStart = start
			best = m
		}
	}
	return best
}

// execute reserves the ULB calendar (unless disabled) and returns the gate
// interval.
func (st *state) execute(at fabric.Coord, ready float64, d float64) (start, end float64) {
	idx := st.grid.Index(at)
	start = ready
	if !st.m.Options.DisableULBExclusivity {
		start = st.ulbCal[idx].reserve(ready, d)
		st.ulbWait += start - ready
	}
	end = start + d
	if end > st.latency {
		st.latency = end
	}
	return start, end
}

// moveQubit routes q from src to dst starting at time t, reserving channel
// lanes hop by hop, and returns the arrival time. Updates position and
// occupancy.
func (st *state) moveQubit(q int, t float64, src, dst fabric.Coord) float64 {
	if src == dst {
		return t
	}
	tm := st.m.Params.TMove
	cur := src
	// Dimension-ordered route with adaptive order selection: of the two
	// minimal L-routes (X-then-Y, Y-then-X) take the one whose first
	// channel segment frees up sooner — a one-step-lookahead congestion
	// dodge. Straight-line routes have only one choice.
	xFirst := true
	if src.X != dst.X && src.Y != dst.Y {
		xNext, yNext := src, src
		if dst.X > src.X {
			xNext.X++
		} else {
			xNext.X--
		}
		if dst.Y > src.Y {
			yNext.Y++
		} else {
			yNext.Y--
		}
		xFirst = st.chans.freeAt(src, xNext, t, tm) <= st.chans.freeAt(src, yNext, t, tm)
	}
	for pass := 0; pass < 2; pass++ {
		doX := xFirst == (pass == 0)
		if doX {
			for cur.X != dst.X {
				next := cur
				if dst.X > cur.X {
					next.X++
				} else {
					next.X--
				}
				t = st.crossSegment(cur, next, t, tm)
				cur = next
				st.moves++
			}
		} else {
			for cur.Y != dst.Y {
				next := cur
				if dst.Y > cur.Y {
					next.Y++
				} else {
					next.Y--
				}
				t = st.crossSegment(cur, next, t, tm)
				cur = next
				st.moves++
			}
		}
	}
	st.occupant[st.grid.Index(src)]--
	st.occupant[st.grid.Index(dst)]++
	st.pos[q] = dst
	return t
}

// crossSegment reserves a lane on the channel between adjacent ULBs and
// returns the time the qubit exits the segment.
func (st *state) crossSegment(from, to fabric.Coord, t, tm float64) float64 {
	start, wait := st.chans.reserve(from, to, t, tm)
	st.congestionWait += wait
	return start + tm
}

// bestNeighbor picks the adjacent ULB where a gate ready at time t could
// start earliest (smallest execution backlog), breaking ties by occupancy
// then by fixed E, W, S, N order — deterministic.
func (st *state) bestNeighbor(at fabric.Coord, t float64) fabric.Coord {
	best := at
	first := true
	var bestStart float64
	var bestOcc int16
	for _, d := range [...]fabric.Coord{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}} {
		n := fabric.Coord{X: at.X + d.X, Y: at.Y + d.Y}
		if !st.grid.Contains(n) {
			continue
		}
		idx := st.grid.Index(n)
		start := t
		if !st.m.Options.DisableULBExclusivity {
			// Representative duration for backlog comparison; the exact
			// gate delay is applied at execute time.
			start = st.ulbCal[idx].earliest(t, st.m.Params.DCNOT)
		}
		occ := st.occupant[idx]
		if first || start < bestStart || (start == bestStart && occ < bestOcc) {
			first = false
			bestStart = start
			bestOcc = occ
			best = n
		}
	}
	return best
}

func (st *state) record(gi int, t circuit.GateType, at fabric.Coord, start, end float64) {
	if st.m.Options.Trace {
		st.events = append(st.events, GateEvent{
			GateIndex: gi, Type: t, ULB: at, Start: start, End: end,
		})
	}
}
