package qspr

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/fabric"
)

func testParams() fabric.Params {
	p := fabric.Default()
	p.Grid = fabric.Grid{Width: 12, Height: 12}
	return p
}

func mustMap(t *testing.T, c *circuit.Circuit, p fabric.Params, opt Options) *Result {
	t.Helper()
	m, err := New(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Map(c)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewRejectsBadParams(t *testing.T) {
	p := testParams()
	p.ChannelCapacity = 0
	if _, err := New(p, Options{}); err == nil {
		t.Error("want validation error")
	}
}

func TestMapRejectsNonFT(t *testing.T) {
	c := circuit.New("t", 3)
	c.Append(circuit.NewToffoli(0, 1, 2))
	m, _ := New(testParams(), Options{})
	if _, err := m.Map(c); err == nil {
		t.Error("want non-FT rejection")
	}
}

func TestMapRejectsOversizedRegister(t *testing.T) {
	p := testParams()
	p.Grid = fabric.Grid{Width: 2, Height: 2}
	c := circuit.New("big", 5)
	c.Append(circuit.NewCNOT(0, 1))
	m, _ := New(p, Options{})
	if _, err := m.Map(c); err == nil {
		t.Error("want capacity error")
	}
}

func TestOneQubitChainLatency(t *testing.T) {
	// A lone qubit running k H gates: no moves (its ULB is private), so
	// latency = k·d_H exactly.
	c := circuit.New("chain", 1)
	for i := 0; i < 4; i++ {
		c.Append(circuit.NewOneQubit(circuit.H, 0))
	}
	res := mustMap(t, c, testParams(), Options{})
	if math.Abs(res.Latency-4*5440) > 1e-9 {
		t.Errorf("latency = %v, want %v", res.Latency, 4*5440.0)
	}
	if res.Moves != 0 {
		t.Errorf("moves = %d, want 0", res.Moves)
	}
}

func TestCNOTLatencyIncludesTravel(t *testing.T) {
	c := circuit.New("pair", 2)
	c.Append(circuit.NewCNOT(0, 1))
	res := mustMap(t, c, testParams(), Options{})
	// One operand must travel at least 1 hop, so latency > d_CNOT.
	if res.Latency <= 4930 {
		t.Errorf("latency = %v, want > d_CNOT", res.Latency)
	}
	if res.Moves < 1 {
		t.Errorf("moves = %d, want ≥ 1", res.Moves)
	}
}

func TestLatencyLowerBoundedByGateChain(t *testing.T) {
	// Serial chain of k CNOTs on one pair: latency ≥ k·d_CNOT.
	c := circuit.New("serial", 2)
	const k = 6
	for i := 0; i < k; i++ {
		c.Append(circuit.NewCNOT(0, 1))
	}
	res := mustMap(t, c, testParams(), Options{})
	if res.Latency < k*4930 {
		t.Errorf("latency %v below gate-only bound %v", res.Latency, k*4930.0)
	}
}

func TestDeterminism(t *testing.T) {
	c := circuit.New("det", 10)
	for i := 0; i < 50; i++ {
		c.Append(circuit.NewCNOT(i%10, (i*3+1)%10))
		c.Append(circuit.NewOneQubit(circuit.T, (i*7)%10))
	}
	r1 := mustMap(t, c, testParams(), Options{})
	r2 := mustMap(t, c, testParams(), Options{})
	if r1.Latency != r2.Latency || r1.Moves != r2.Moves ||
		r1.CongestionWait != r2.CongestionWait || r1.ULBWait != r2.ULBWait {
		t.Errorf("mapper not deterministic: %+v vs %+v", r1, r2)
	}
}

func TestTraceEvents(t *testing.T) {
	c := circuit.New("trace", 2)
	c.Append(circuit.NewOneQubit(circuit.H, 0), circuit.NewCNOT(0, 1))
	res := mustMap(t, c, testParams(), Options{Trace: true})
	if len(res.Events) != 2 {
		t.Fatalf("trace has %d events, want 2", len(res.Events))
	}
	for i, ev := range res.Events {
		if ev.GateIndex != i {
			t.Errorf("event %d has gate index %d", i, ev.GateIndex)
		}
		if ev.End <= ev.Start {
			t.Errorf("event %d: end %v ≤ start %v", i, ev.End, ev.Start)
		}
	}
	if res.Events[1].Type != circuit.CNOT {
		t.Errorf("event 1 type = %s", res.Events[1].Type)
	}
	// Without Trace, no events.
	res = mustMap(t, c, testParams(), Options{})
	if res.Events != nil {
		t.Error("events recorded without Trace")
	}
}

func TestEventsRespectDependencies(t *testing.T) {
	// Gates on the same qubit must be serialized in the trace.
	c := circuit.New("dep", 3)
	c.Append(
		circuit.NewOneQubit(circuit.H, 0),
		circuit.NewCNOT(0, 1),
		circuit.NewOneQubit(circuit.T, 1),
		circuit.NewCNOT(1, 2),
	)
	res := mustMap(t, c, testParams(), Options{Trace: true})
	if res.Events[1].Start < res.Events[0].End {
		t.Error("CNOT started before its dependency finished")
	}
	if res.Events[2].Start < res.Events[1].End {
		t.Error("T started before CNOT finished")
	}
	if res.Events[3].Start < res.Events[2].End {
		t.Error("second CNOT started before T finished")
	}
}

func TestIndependentGatesOverlap(t *testing.T) {
	// Gates on disjoint qubits should run concurrently: total latency well
	// under the serial sum.
	c := circuit.New("parallel", 8)
	for q := 0; q < 8; q++ {
		c.Append(circuit.NewOneQubit(circuit.T, q))
	}
	res := mustMap(t, c, testParams(), Options{})
	serial := 8 * 10940.0
	if res.Latency > serial/2 {
		t.Errorf("latency %v suggests no parallelism (serial = %v)", res.Latency, serial)
	}
}

func TestChannelContentionAblation(t *testing.T) {
	// Unlimited channels can only help.
	c := denseCircuit(40, 400)
	p := testParams()
	on := mustMap(t, c, p, Options{})
	off := mustMap(t, c, p, Options{DisableChannelContention: true})
	if off.Latency > on.Latency+1e-6 {
		t.Errorf("removing contention increased latency: %v > %v", off.Latency, on.Latency)
	}
	if off.CongestionWait != 0 {
		t.Errorf("contention disabled but wait = %v", off.CongestionWait)
	}
}

func TestULBExclusivityAblation(t *testing.T) {
	c := denseCircuit(40, 400)
	p := testParams()
	on := mustMap(t, c, p, Options{})
	off := mustMap(t, c, p, Options{DisableULBExclusivity: true})
	// Removing the resource constraint helps in aggregate; a small slack
	// absorbs greedy meeting-choice perturbations (the scorer consults
	// ULB backlogs, so decisions shift slightly between the two modes).
	if off.Latency > on.Latency*1.05 {
		t.Errorf("removing exclusivity increased latency: %v > %v", off.Latency, on.Latency)
	}
	if off.ULBWait != 0 {
		t.Errorf("exclusivity disabled but wait = %v", off.ULBWait)
	}
}

func TestPlacementStrategies(t *testing.T) {
	c := denseCircuit(30, 300)
	p := testParams()
	for _, pl := range []Placement{PlaceClustered, PlaceSpread, PlaceRowMajor} {
		res := mustMap(t, c, p, Options{Placement: pl})
		if res.Latency <= 0 {
			t.Errorf("placement %d: latency %v", pl, res.Latency)
		}
	}
	m, _ := New(p, Options{Placement: Placement(99)})
	if _, err := m.Map(c); err == nil {
		t.Error("want unknown-placement error")
	}
}

func TestFinalPositionsOnGrid(t *testing.T) {
	c := denseCircuit(20, 200)
	p := testParams()
	res := mustMap(t, c, p, Options{})
	if len(res.FinalPositions) != 20 {
		t.Fatalf("%d final positions", len(res.FinalPositions))
	}
	for q, pos := range res.FinalPositions {
		if !p.Grid.Contains(pos) {
			t.Errorf("qubit %d at %v outside grid", q, pos)
		}
	}
}

func TestPlacementSlotsUniqueAndOnGrid(t *testing.T) {
	grid := fabric.Grid{Width: 9, Height: 7}
	for _, spacing := range []int{0, 1, 2, 3} {
		for _, q := range []int{1, 5, 30, 63} {
			slots := placementSlots(grid, q, spacing)
			if len(slots) != q {
				t.Fatalf("spacing=%d q=%d: %d slots", spacing, q, len(slots))
			}
			seen := map[fabric.Coord]bool{}
			for _, s := range slots {
				if !grid.Contains(s) {
					t.Errorf("slot %v off grid", s)
				}
				if seen[s] {
					t.Errorf("duplicate slot %v", s)
				}
				seen[s] = true
			}
		}
	}
}

func TestPlacementSlotsFullGrid(t *testing.T) {
	grid := fabric.Grid{Width: 4, Height: 4}
	slots := placementSlots(grid, 16, 2)
	if len(slots) != 16 {
		t.Fatalf("%d slots for full grid", len(slots))
	}
	seen := map[fabric.Coord]bool{}
	for _, s := range slots {
		if seen[s] {
			t.Fatal("collision on full grid")
		}
		seen[s] = true
	}
}

func TestClusteredSpacingLeavesFreeNeighbors(t *testing.T) {
	// With spacing 2 on an amply sized fabric, every placed qubit has at
	// least one unoccupied neighboring ULB.
	grid := fabric.Grid{Width: 30, Height: 30}
	slots := placementSlots(grid, 49, 2)
	used := map[fabric.Coord]bool{}
	for _, s := range slots {
		used[s] = true
	}
	for _, s := range slots {
		free := 0
		for _, d := range []fabric.Coord{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}} {
			n := fabric.Coord{X: s.X + d.X, Y: s.Y + d.Y}
			if grid.Contains(n) && !used[n] {
				free++
			}
		}
		if free == 0 {
			t.Errorf("slot %v has no free neighbor", s)
		}
	}
}

func TestChannelsSegmentIDsDistinct(t *testing.T) {
	grid := fabric.Grid{Width: 4, Height: 3}
	ch := newChannels(grid, 2, false)
	seen := map[int]bool{}
	countH := 0
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			id := ch.segmentID(fabric.Coord{X: x, Y: y}, fabric.Coord{X: x + 1, Y: y})
			if seen[id] {
				t.Fatalf("duplicate horizontal segment id %d", id)
			}
			seen[id] = true
			countH++
		}
	}
	for y := 0; y < 2; y++ {
		for x := 0; x < 4; x++ {
			id := ch.segmentID(fabric.Coord{X: x, Y: y}, fabric.Coord{X: x, Y: y + 1})
			if seen[id] {
				t.Fatalf("duplicate vertical segment id %d", id)
			}
			seen[id] = true
		}
	}
	if countH != 9 {
		t.Errorf("horizontal segment count %d", countH)
	}
}

func TestChannelSegmentDirectionInvariant(t *testing.T) {
	grid := fabric.Grid{Width: 5, Height: 5}
	ch := newChannels(grid, 3, false)
	a, b := fabric.Coord{X: 2, Y: 2}, fabric.Coord{X: 3, Y: 2}
	if ch.segmentID(a, b) != ch.segmentID(b, a) {
		t.Error("segment id depends on direction")
	}
	c, d := fabric.Coord{X: 2, Y: 2}, fabric.Coord{X: 2, Y: 3}
	if ch.segmentID(c, d) != ch.segmentID(d, c) {
		t.Error("vertical segment id depends on direction")
	}
}

func TestChannelReserveQueues(t *testing.T) {
	grid := fabric.Grid{Width: 3, Height: 1}
	ch := newChannels(grid, 2, false)
	from, to := fabric.Coord{X: 0, Y: 0}, fabric.Coord{X: 1, Y: 0}
	// Two crossings at t=0 fit the two lanes; the third waits.
	s1, w1 := ch.reserve(from, to, 0, 100)
	s2, w2 := ch.reserve(from, to, 0, 100)
	s3, w3 := ch.reserve(from, to, 0, 100)
	if s1 != 0 || w1 != 0 || s2 != 0 || w2 != 0 {
		t.Errorf("first two crossings should not wait: %v/%v %v/%v", s1, w1, s2, w2)
	}
	if s3 != 100 || w3 != 100 {
		t.Errorf("third crossing: start %v wait %v, want 100/100", s3, w3)
	}
}

func TestChannelUnlimited(t *testing.T) {
	grid := fabric.Grid{Width: 3, Height: 1}
	ch := newChannels(grid, 2, true)
	for i := 0; i < 10; i++ {
		s, w := ch.reserve(fabric.Coord{X: 0, Y: 0}, fabric.Coord{X: 1, Y: 0}, 5, 100)
		if s != 5 || w != 0 {
			t.Fatalf("unlimited channel queued: %v/%v", s, w)
		}
	}
	if ch.freeAt(fabric.Coord{X: 0, Y: 0}, fabric.Coord{X: 1, Y: 0}, 5, 100) != 5 {
		t.Error("unlimited freeAt should return the requested time")
	}
}

func TestMidpointMeetingAblation(t *testing.T) {
	c := denseCircuit(30, 300)
	p := testParams()
	def := mustMap(t, c, p, Options{})
	mid := mustMap(t, c, p, Options{MidpointMeeting: true})
	if def.Latency <= 0 || mid.Latency <= 0 {
		t.Fatal("latencies must be positive")
	}
	// Both must be valid mappings; typically greedy ≤ midpoint, but we
	// only require both to produce consistent results deterministically.
	mid2 := mustMap(t, c, p, Options{MidpointMeeting: true})
	if mid.Latency != mid2.Latency {
		t.Error("midpoint mapping not deterministic")
	}
}

// denseCircuit builds a deterministic mixed workload.
func denseCircuit(qubits, gates int) *circuit.Circuit {
	c := circuit.New("dense", qubits)
	for i := 0; i < gates; i++ {
		switch i % 3 {
		case 0:
			a := (i * 7) % qubits
			b := (i*13 + 1) % qubits
			if a == b {
				b = (b + 1) % qubits
			}
			c.Append(circuit.NewCNOT(a, b))
		case 1:
			c.Append(circuit.NewOneQubit(circuit.T, (i*5)%qubits))
		default:
			c.Append(circuit.NewOneQubit(circuit.H, (i*11)%qubits))
		}
	}
	return c
}
