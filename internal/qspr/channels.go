package qspr

import "repro/internal/fabric"

// channels tracks crossings of every inter-ULB routing segment. A segment
// between horizontally adjacent ULBs (x,y)-(x+1,y) or vertically adjacent
// ULBs (x,y)-(x,y+1) carries at most Nc concurrent qubits; a crossing takes
// T_move. Each segment keeps a time-sorted crossing calendar, so a qubit
// can slot into any window with spare capacity regardless of the order
// gates were processed in.
type channels struct {
	grid      fabric.Grid
	capacity  int
	unlimited bool
	segs      []segmentCal
	hCols     int // W-1: horizontal segments per row
	hCnt      int // total horizontal segments
}

func newChannels(grid fabric.Grid, capacity int, unlimited bool) *channels {
	hCols := grid.Width - 1
	hCnt := hCols * grid.Height
	vCnt := grid.Width * (grid.Height - 1)
	if capacity < 1 {
		capacity = 1
	}
	c := &channels{
		grid:      grid,
		capacity:  capacity,
		unlimited: unlimited,
		hCols:     hCols,
		hCnt:      hCnt,
	}
	if !unlimited {
		c.segs = make([]segmentCal, hCnt+vCnt)
	}
	return c
}

// segmentID maps an adjacent ULB pair to its segment index; direction does
// not matter.
func (c *channels) segmentID(from, to fabric.Coord) int {
	if from.Y == to.Y { // horizontal
		x := from.X
		if to.X < x {
			x = to.X
		}
		return from.Y*c.hCols + x
	}
	y := from.Y
	if to.Y < y {
		y = to.Y
	}
	return c.hCnt + y*c.grid.Width + from.X
}

// reserve books a crossing of the segment requested at time t lasting tm.
// Returns the actual start time and the wait incurred.
func (c *channels) reserve(from, to fabric.Coord, t, tm float64) (start, wait float64) {
	if c.unlimited {
		return t, 0
	}
	seg := &c.segs[c.segmentID(from, to)]
	start = seg.reserve(t, tm, c.capacity)
	return start, start - t
}

// freeAt returns the earliest feasible crossing start at/after time t for
// the segment between two adjacent ULBs (t itself when contention is
// disabled) — used by the route-order lookahead.
func (c *channels) freeAt(from, to fabric.Coord, t, tm float64) float64 {
	if c.unlimited {
		return t
	}
	return c.segs[c.segmentID(from, to)].earliest(t, tm, c.capacity)
}
