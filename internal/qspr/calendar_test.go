package qspr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCalendarReserveSequential(t *testing.T) {
	var c calendar
	if got := c.reserve(0, 10); got != 0 {
		t.Fatalf("first reservation at %v", got)
	}
	if got := c.reserve(0, 10); got != 10 {
		t.Fatalf("second reservation at %v, want 10", got)
	}
	if got := c.reserve(5, 10); got != 20 {
		t.Fatalf("third reservation at %v, want 20", got)
	}
}

func TestCalendarBackfillsGaps(t *testing.T) {
	var c calendar
	c.reserve(0, 10)   // [0,10)
	c.reserve(100, 10) // [100,110)
	// A later-processed but earlier-in-time request fits the gap.
	if got := c.reserve(10, 50); got != 10 {
		t.Fatalf("gap reservation at %v, want 10", got)
	}
	// Gap [60,100) takes a 40-long job but not a 41-long one.
	if got := c.earliest(60, 40); got != 60 {
		t.Fatalf("40-long fits at %v, want 60", got)
	}
	if got := c.earliest(60, 41); got != 110 {
		t.Fatalf("41-long fits at %v, want 110", got)
	}
}

func TestCalendarEarliestDoesNotReserve(t *testing.T) {
	var c calendar
	c.earliest(0, 10)
	c.earliest(0, 10)
	if got := c.reserve(0, 10); got != 0 {
		t.Fatalf("earliest() consumed capacity: reserve at %v", got)
	}
}

func TestCalendarNoOverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var c calendar
		type iv struct{ s, e float64 }
		var placed []iv
		for i := 0; i < 60; i++ {
			ready := float64(rng.Intn(500))
			dur := float64(rng.Intn(40) + 1)
			s := c.reserve(ready, dur)
			if s < ready {
				return false
			}
			placed = append(placed, iv{s, s + dur})
		}
		// No two reservations overlap.
		for i := range placed {
			for j := i + 1; j < len(placed); j++ {
				a, b := placed[i], placed[j]
				if a.s < b.e && b.s < a.e {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCalendarSortedInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var c calendar
	for i := 0; i < 200; i++ {
		c.reserve(float64(rng.Intn(1000)), float64(rng.Intn(20)+1))
	}
	for i := 1; i < len(c.start); i++ {
		if c.start[i] < c.start[i-1] {
			t.Fatalf("starts unsorted at %d", i)
		}
		if c.end[i-1] > c.start[i]+1e-9 {
			t.Fatalf("intervals overlap at %d: end %v > next start %v", i, c.end[i-1], c.start[i])
		}
	}
}

func TestSegmentCalCapacity(t *testing.T) {
	var s segmentCal
	const tm = 100.0
	// capacity 2: two crossings at t=0 fine, third pushed past a conflict.
	if got := s.reserve(0, tm, 2); got != 0 {
		t.Fatalf("first crossing at %v", got)
	}
	if got := s.reserve(0, tm, 2); got != 0 {
		t.Fatalf("second crossing at %v", got)
	}
	got := s.reserve(0, tm, 2)
	if got != tm {
		t.Fatalf("third crossing at %v, want %v", got, tm)
	}
}

func TestSegmentCalWindowSemantics(t *testing.T) {
	var s segmentCal
	const tm = 100.0
	s.reserve(0, tm, 1) // [0,100)
	// A crossing at 100 does not overlap [0,100).
	if got := s.reserve(100, tm, 1); got != 100 {
		t.Fatalf("adjacent crossing at %v, want 100", got)
	}
	// A crossing requested at 50 overlaps both -> pushed to 200.
	if got := s.reserve(50, tm, 1); got != 200 {
		t.Fatalf("overlapping crossing at %v, want 200", got)
	}
}

func TestSegmentCalBackfill(t *testing.T) {
	var s segmentCal
	const tm = 100.0
	s.reserve(0, tm, 1)    // [0,100)
	s.reserve(1000, tm, 1) // [1000,1100)
	// Earlier-in-time crossing processed later still fits between them.
	if got := s.reserve(300, tm, 1); got != 300 {
		t.Fatalf("backfill crossing at %v, want 300", got)
	}
}

func TestSegmentCalCapacityWindowProperty(t *testing.T) {
	// At no instant do more than `capacity` crossings overlap.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := rng.Intn(4) + 1
		const tm = 50.0
		var s segmentCal
		var starts []float64
		for i := 0; i < 80; i++ {
			st := s.reserve(float64(rng.Intn(400)), tm, capacity)
			starts = append(starts, st)
		}
		// Instantaneous concurrency is the bounded quantity: at any time,
		// at most `capacity` crossings are active. Sampling at each
		// crossing start (+ε) covers every maximum.
		for _, at := range starts {
			probe := at + 1e-9
			active := 0
			for _, other := range starts {
				if other <= probe && probe < other+tm {
					active++
				}
			}
			if active > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
