package qspr

import "sort"

// calendar is a time-indexed reservation list for one exclusive resource
// (a ULB). Reservations are kept as disjoint half-open intervals sorted by
// start time; reserve finds the earliest gap that fits. Unlike a scalar
// busy-until watermark, a calendar lets a gate that is *processed* later but
// *scheduled* earlier slot into a past gap — without it, skew between qubit
// chains falsely serializes independent work (see the gf2 pipelining note
// in DESIGN.md).
type calendar struct {
	start []float64
	end   []float64
}

// earliest returns the first time ≥ ready at which a reservation of length
// dur would fit, without reserving.
func (c *calendar) earliest(ready, dur float64) float64 {
	n := len(c.start)
	// First interval ending after `ready` can conflict.
	i := sort.Search(n, func(k int) bool { return c.end[k] > ready })
	t := ready
	for ; i < n; i++ {
		if c.start[i] >= t+dur {
			return t // fits before interval i
		}
		if c.end[i] > t {
			t = c.end[i]
		}
	}
	return t
}

// reserve books [start, start+dur) at the earliest feasible time ≥ ready
// and returns the start.
func (c *calendar) reserve(ready, dur float64) float64 {
	t := c.earliest(ready, dur)
	// Insert keeping sort order.
	i := sort.SearchFloat64s(c.start, t)
	c.start = append(c.start, 0)
	c.end = append(c.end, 0)
	copy(c.start[i+1:], c.start[i:])
	copy(c.end[i+1:], c.end[i:])
	c.start[i] = t
	c.end[i] = t + dur
	return t
}

// segmentCal tracks crossings of one routing-channel segment. Every
// crossing has the same duration (T_move) and the segment carries at most
// `capacity` concurrent qubits, so feasibility of a crossing starting at s
// is: fewer than capacity existing crossings start within (s−tm, s+tm).
//
// Crossing starts are kept in a chunked sorted list (√-decomposition):
// hot segments on large workloads accumulate 10^5+ crossings, and a flat
// sorted slice would pay O(k) memmove per insertion — quadratic overall.
// Chunks bound the per-insert copy at maxChunk elements.
type segmentCal struct {
	chunks [][]float64 // each sorted; concatenation sorted
	total  int
}

// maxChunk bounds chunk size before splitting; inserts copy at most this
// many elements.
const maxChunk = 256

// find returns the global index of the first crossing ≥ x.
func (s *segmentCal) find(x float64) int {
	idx := 0
	for _, ch := range s.chunks {
		if len(ch) == 0 {
			continue
		}
		if ch[len(ch)-1] < x {
			idx += len(ch)
			continue
		}
		return idx + sort.SearchFloat64s(ch, x)
	}
	return idx
}

// at returns the crossing start at global index i.
func (s *segmentCal) at(i int) float64 {
	for _, ch := range s.chunks {
		if i < len(ch) {
			return ch[i]
		}
		i -= len(ch)
	}
	panic("segmentCal: index out of range")
}

// insert adds a crossing start, keeping order.
func (s *segmentCal) insert(v float64) {
	s.total++
	for ci, ch := range s.chunks {
		if len(ch) > 0 && (v <= ch[len(ch)-1] || ci == len(s.chunks)-1) {
			i := sort.SearchFloat64s(ch, v)
			ch = append(ch, 0)
			copy(ch[i+1:], ch[i:])
			ch[i] = v
			s.chunks[ci] = ch
			if len(ch) > maxChunk {
				s.splitChunk(ci)
			}
			return
		}
	}
	s.chunks = append(s.chunks, []float64{v})
}

// splitChunk halves an oversized chunk.
func (s *segmentCal) splitChunk(ci int) {
	ch := s.chunks[ci]
	mid := len(ch) / 2
	right := make([]float64, len(ch)-mid)
	copy(right, ch[mid:])
	left := ch[:mid:mid]
	s.chunks = append(s.chunks, nil)
	copy(s.chunks[ci+2:], s.chunks[ci+1:])
	s.chunks[ci] = left
	s.chunks[ci+1] = right
}

// earliest returns the first feasible crossing start ≥ ready.
func (s *segmentCal) earliest(ready, tm float64, capacity int) float64 {
	t := ready
	for {
		lo := s.find(t - tm + 1e-12)
		hi := s.find(t + tm - 1e-12)
		if hi-lo < capacity {
			return t
		}
		// Jump past enough conflicting crossings that at most capacity−1
		// of the current window could remain — proportional progress on
		// long saturated stretches instead of one crossing per step.
		cand := s.at(hi-capacity) + tm
		// Gate delays quantize many crossings onto identical timestamps;
		// the jump target can then sit a float-epsilon above t and the
		// search would crawl. Force a minimum step of tm/16 — a bounded
		// (≤ T_move/16) overshoot of the true earliest slot, negligible
		// against the delays being modeled.
		if minStep := t + tm/16; cand < minStep {
			cand = minStep
		}
		t = cand
	}
}

// reserve books a crossing at the earliest feasible start ≥ ready and
// returns it.
func (s *segmentCal) reserve(ready, tm float64, capacity int) float64 {
	t := s.earliest(ready, tm, capacity)
	s.insert(t)
	return t
}
