package circuit

import (
	"fmt"
	"strings"
)

// SyntaxError is the positioned diagnostic every .qc parsing front end
// shares: ParseQC and the streaming ingest scanner both report failures as
// a *SyntaxError carrying the source label, the 1-based line number and —
// when one token is at fault — the 1-based starting column of that token.
type SyntaxError struct {
	// Source labels the netlist (circuit name, typically the file
	// basename).
	Source string
	// Line is the 1-based line number of the statement.
	Line int
	// Col is the 1-based starting column of the offending token, or 0 when
	// the whole line is at fault.
	Col int
	// Err is the underlying diagnostic.
	Err error
}

func (e *SyntaxError) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("%s: .qc line %d, col %d: %v", e.Source, e.Line, e.Col, e.Err)
	}
	return fmt.Sprintf("%s: .qc line %d: %v", e.Source, e.Line, e.Err)
}

func (e *SyntaxError) Unwrap() error { return e.Err }

// LineParser is the line-level .qc parser shared by ParseQC (which
// materializes a Circuit) and internal/ingest (which streams gates without
// retaining them). Feed it raw lines one at a time with Next; it tracks the
// BEGIN/END body state and the qubit register (auto-declaring operand names
// the way real benchmark files require), validates every gate against the
// register, and reports failures as *SyntaxError with line/column context.
//
// The parser allocates register entries only; per-line scratch (fields,
// operand indices, the emitted gate's qubit slices) is reused, so a steady
// scan over an arbitrarily long netlist runs at O(1) heap growth.
type LineParser struct {
	reg    *Circuit // qubit register; Gates stays untouched by the parser
	lineno int
	inBody bool

	fields []string // per-line field scratch
	cols   []int    // 1-based starting column of each field
	ops    []int    // backing store of the emitted gate's Controls+Targets
}

// NewLineParser returns a parser for a netlist labeled source.
func NewLineParser(source string) *LineParser {
	return &LineParser{reg: &Circuit{Name: source, byName: make(map[string]int)}}
}

// Rewind resets the line counter and body state so the same statement
// stream can be parsed again. The qubit register is kept: replaying an
// identical stream assigns identical indices (declarations and
// auto-declarations find their existing entries), which is exactly what the
// two-pass streaming analysis needs.
func (p *LineParser) Rewind() {
	p.lineno = 0
	p.inBody = false
}

// Line reports the 1-based number of lines consumed since construction or
// the last Rewind.
func (p *LineParser) Line() int { return p.lineno }

// InBody reports whether the parser is inside the BEGIN/END gate body.
func (p *LineParser) InBody() bool { return p.inBody }

// ForkAt returns an independent parser positioned mid-stream: line lines
// already consumed, the given BEGIN/END state, and a clone of the register.
// Fed the stream's remaining lines it parses exactly as the original would
// have — replays of an already-validated stream find every name in the
// cloned register, so auto-declaration assigns the original indices — while
// the private register keeps concurrent forks from ever sharing the name
// table. This is the segment-replay primitive of the sharded streaming
// analysis.
func (p *LineParser) ForkAt(line int, inBody bool) *LineParser {
	return &LineParser{reg: p.reg.Clone(), lineno: line, inBody: inBody}
}

// NumQubits reports the register size declared or auto-declared so far.
func (p *LineParser) NumQubits() int { return p.reg.NumQubits() }

// Register exposes the parser's qubit register as a Circuit. The parser
// itself never appends to Gates — materializing callers (ParseQC, the
// ingest fallback) append copies of emitted gates there; streaming callers
// treat it as a read-only name table and clone it (Circuit.Clone) when they
// need an independent circuit around the parsed stream.
func (p *LineParser) Register() *Circuit { return p.reg }

// Next consumes one raw line (without its trailing newline). ok reports
// whether the line produced a gate; blank lines, comments and directives
// parse to ok=false with no error. The returned gate's Controls and Targets
// alias the parser's scratch buffers — they are valid only until the next
// call; copy them (Gate.Clone) to retain the gate.
func (p *LineParser) Next(line string) (g Gate, ok bool, err error) {
	p.lineno++
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	p.splitFields(line)
	if len(p.fields) == 0 {
		return Gate{}, false, nil
	}
	head := p.fields[0]
	switch {
	case strings.EqualFold(head, "BEGIN"):
		p.inBody = true
		return Gate{}, false, nil
	case strings.EqualFold(head, "END"):
		p.inBody = false
		return Gate{}, false, nil
	case head == ".v":
		for _, q := range p.fields[1:] {
			p.declare(q)
		}
		return Gate{}, false, nil
	case head == ".i", head == ".o", head == ".c", head == ".ol":
		// Input/output/constant declarations are informational.
		return Gate{}, false, nil
	}
	if !p.inBody {
		return Gate{}, false, p.errorf(p.cols[0], "statement %q outside BEGIN/END", head)
	}
	g, err = p.parseGate()
	if err != nil {
		return Gate{}, false, err
	}
	return g, true, nil
}

// declare resolves a qubit name to its register index, adding it on first
// sight. The name is cloned before it is retained: callers (the ingest
// scanner) may hand Next line text that aliases a recycled read buffer, and
// only strings the register keeps must survive the buffer's next refill.
func (p *LineParser) declare(name string) int {
	if idx, ok := p.reg.QubitIndex(name); ok {
		return idx
	}
	return p.reg.AddQubit(strings.Clone(name))
}

// splitFields splits line into whitespace-separated fields, recording each
// field's 1-based starting column, reusing the parser's scratch slices.
func (p *LineParser) splitFields(line string) {
	p.fields = p.fields[:0]
	p.cols = p.cols[:0]
	start := -1
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case ' ', '\t', '\r', '\v', '\f':
			if start >= 0 {
				p.fields = append(p.fields, line[start:i])
				p.cols = append(p.cols, start+1)
				start = -1
			}
		default:
			if start < 0 {
				start = i
			}
		}
	}
	if start >= 0 {
		p.fields = append(p.fields, line[start:])
		p.cols = append(p.cols, start+1)
	}
}

// parseGate assembles and validates the gate on the current statement line.
func (p *LineParser) parseGate() (Gate, error) {
	mnemonic := p.fields[0]
	nargs := len(p.fields) - 1
	if cap(p.ops) < nargs {
		p.ops = make([]int, nargs)
	}
	p.ops = p.ops[:nargs]
	for k, nameArg := range p.fields[1:] {
		// Auto-declare unseen qubits; real benchmark files sometimes omit
		// ancillae from .v.
		p.ops[k] = p.declare(nameArg)
	}
	t, nctrl, err := gateShape(mnemonic, nargs)
	if err != nil {
		return Gate{}, p.wrap(p.cols[0], err)
	}
	g := Gate{Type: t, Controls: p.ops[:nctrl:nctrl], Targets: p.ops[nctrl:]}
	if err := g.Validate(p.reg.NumQubits()); err != nil {
		return Gate{}, p.wrap(p.cols[0], err)
	}
	return g, nil
}

func (p *LineParser) wrap(col int, err error) error {
	return &SyntaxError{Source: p.reg.Name, Line: p.lineno, Col: col, Err: err}
}

func (p *LineParser) errorf(col int, format string, args ...any) error {
	return p.wrap(col, fmt.Errorf(format, args...))
}

// gateShape resolves a .qc mnemonic and its operand count to the gate type
// and the control/target split (controls occupy the first nctrl operands).
// Mnemonics are case-insensitive. Both ParseQC and the ingest scanner route
// through it, so mnemonic handling and error text stay identical.
func gateShape(mnemonic string, nargs int) (t GateType, nctrl int, err error) {
	exact := func(t GateType, canon string, wantC, wantT int) (GateType, int, error) {
		if nargs != wantC+wantT {
			if wantC+wantT == 1 {
				return Invalid, 0, fmt.Errorf("gate %s: want 1 operand, have %d", canon, nargs)
			}
			return Invalid, 0, fmt.Errorf("gate %s: want %d operands, have %d", canon, wantC+wantT, nargs)
		}
		return t, wantC, nil
	}
	switch {
	case strings.EqualFold(mnemonic, "H"):
		return exact(H, "H", 0, 1)
	case strings.EqualFold(mnemonic, "T"):
		return exact(T, "T", 0, 1)
	case strings.EqualFold(mnemonic, "T*"), strings.EqualFold(mnemonic, "TDG"):
		return exact(Tdg, "T*", 0, 1)
	case strings.EqualFold(mnemonic, "S"):
		return exact(S, "S", 0, 1)
	case strings.EqualFold(mnemonic, "S*"), strings.EqualFold(mnemonic, "SDG"):
		return exact(Sdg, "S*", 0, 1)
	case strings.EqualFold(mnemonic, "X"), strings.EqualFold(mnemonic, "NOT"):
		return exact(X, "X", 0, 1)
	case strings.EqualFold(mnemonic, "Y"):
		return exact(Y, "Y", 0, 1)
	case strings.EqualFold(mnemonic, "Z"):
		return exact(Z, "Z", 0, 1)
	case strings.EqualFold(mnemonic, "CNOT"):
		return exact(CNOT, "CNOT", 1, 1)
	case strings.EqualFold(mnemonic, "TOF"):
		return exact(Toffoli, "TOF", 2, 1)
	case strings.EqualFold(mnemonic, "FRE"):
		return exact(Fredkin, "FRE", 1, 2)
	case strings.EqualFold(mnemonic, "SWAP"):
		return exact(Swap, "SWAP", 0, 2)
	}
	// tN / fN forms.
	if n, ok := mnemonicArity(mnemonic); ok {
		if n != nargs {
			return Invalid, 0, fmt.Errorf("gate %s: want %d operands, have %d", mnemonic, n, nargs)
		}
		if mnemonic[0] == 't' || mnemonic[0] == 'T' {
			switch n {
			case 0:
				return Invalid, 0, fmt.Errorf("gate %s: want ≥1 operands, have 0", mnemonic)
			case 1:
				return X, 0, nil
			case 2:
				return CNOT, 1, nil
			case 3:
				return Toffoli, 2, nil
			}
			return MCT, n - 1, nil
		}
		// Fredkin family: last two operands are the swapped pair.
		if n < 3 {
			return Invalid, 0, fmt.Errorf("gate %s: fredkin needs ≥3 operands", mnemonic)
		}
		if n == 3 {
			return Fredkin, 1, nil
		}
		return MCF, n - 2, nil
	}
	return Invalid, 0, fmt.Errorf("unknown gate mnemonic %q", mnemonic)
}

// mnemonicArity parses the <N> of a tN/fN mnemonic. Strict: every character
// after the t/f must be a digit (at most 7, plenty for any real netlist).
func mnemonicArity(mnemonic string) (int, bool) {
	if len(mnemonic) < 2 || len(mnemonic) > 8 {
		return 0, false
	}
	switch mnemonic[0] {
	case 't', 'T', 'f', 'F':
	default:
		return 0, false
	}
	n := 0
	for i := 1; i < len(mnemonic); i++ {
		d := mnemonic[i]
		if d < '0' || d > '9' {
			return 0, false
		}
		n = n*10 + int(d-'0')
	}
	return n, true
}
