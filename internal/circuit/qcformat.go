package circuit

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// The .qc text format (after the Maslov benchmark conventions):
//
//	# comment to end of line
//	.v a b c d         declare qubits, in index order (may repeat)
//	.i a b c           inputs (informational)
//	.o d               outputs (informational)
//	BEGIN
//	t1 a               NOT a           (X)
//	t2 a b             CNOT a -> b     (last operand is the target)
//	t3 a b c           Toffoli a,b -> c
//	t5 a b c d e       MCT a..d -> e
//	f3 a b c           Fredkin: control a, swap b c
//	f4 a b c d         MCF: controls a b, swap c d
//	swap a b           unconditional swap
//	H a  T a  T* a  S a  S* a  X a  Y a  Z a
//	END
//
// Gate mnemonics are case-insensitive; qubit names are case-sensitive.

// ParseQC reads a circuit in .qc format. name labels the returned circuit
// (typically the file basename).
func ParseQC(r io.Reader, name string) (*Circuit, error) {
	c := &Circuit{Name: name, byName: make(map[string]int)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineno := 0
	inBody := false
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		head := fields[0]
		switch {
		case strings.EqualFold(head, "BEGIN"):
			inBody = true
			continue
		case strings.EqualFold(head, "END"):
			inBody = false
			continue
		case head == ".v":
			for _, q := range fields[1:] {
				c.AddQubit(q)
			}
			continue
		case head == ".i", head == ".o", head == ".c", head == ".ol":
			// Input/output/constant declarations are informational.
			continue
		}
		if !inBody {
			return nil, fmt.Errorf("%s:%d: statement %q outside BEGIN/END", name, lineno, head)
		}
		g, err := parseGateLine(c, fields)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, lineno, err)
		}
		c.Gates = append(c.Gates, g)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func parseGateLine(c *Circuit, fields []string) (Gate, error) {
	mnemonic := fields[0]
	args := make([]int, 0, len(fields)-1)
	for _, nameArg := range fields[1:] {
		idx, ok := c.byName[nameArg]
		if !ok {
			// Auto-declare unseen qubits; real benchmark files sometimes
			// omit ancillae from .v.
			idx = c.AddQubit(nameArg)
		}
		args = append(args, idx)
	}
	upper := strings.ToUpper(mnemonic)
	switch upper {
	case "H", "T", "S", "X", "Y", "Z", "T*", "S*", "TDG", "SDG", "NOT", "CNOT", "TOF", "FRE", "SWAP":
		return buildNamedGate(upper, args)
	}
	// tN / fN forms.
	if len(upper) >= 2 && (upper[0] == 'T' || upper[0] == 'F') {
		var n int
		if _, err := fmt.Sscanf(upper[1:], "%d", &n); err == nil {
			if n != len(args) {
				return Gate{}, fmt.Errorf("gate %s: want %d operands, have %d", mnemonic, n, len(args))
			}
			if upper[0] == 'T' {
				return NewMCT(args[:n-1], args[n-1]), nil
			}
			// Fredkin family: last two operands are the swapped pair.
			if n < 3 {
				return Gate{}, fmt.Errorf("gate %s: fredkin needs ≥3 operands", mnemonic)
			}
			if n == 3 {
				return NewFredkin(args[0], args[1], args[2]), nil
			}
			cs := append([]int(nil), args[:n-2]...)
			return Gate{Type: MCF, Controls: cs, Targets: []int{args[n-2], args[n-1]}}, nil
		}
	}
	return Gate{}, fmt.Errorf("unknown gate mnemonic %q", mnemonic)
}

func buildNamedGate(upper string, args []int) (Gate, error) {
	oneQ := func(t GateType) (Gate, error) {
		if len(args) != 1 {
			return Gate{}, fmt.Errorf("gate %s: want 1 operand, have %d", upper, len(args))
		}
		return NewOneQubit(t, args[0]), nil
	}
	switch upper {
	case "H":
		return oneQ(H)
	case "T":
		return oneQ(T)
	case "T*", "TDG":
		return oneQ(Tdg)
	case "S":
		return oneQ(S)
	case "S*", "SDG":
		return oneQ(Sdg)
	case "X", "NOT":
		return oneQ(X)
	case "Y":
		return oneQ(Y)
	case "Z":
		return oneQ(Z)
	case "CNOT":
		if len(args) != 2 {
			return Gate{}, fmt.Errorf("gate CNOT: want 2 operands, have %d", len(args))
		}
		return NewCNOT(args[0], args[1]), nil
	case "TOF":
		if len(args) != 3 {
			return Gate{}, fmt.Errorf("gate TOF: want 3 operands, have %d", len(args))
		}
		return NewToffoli(args[0], args[1], args[2]), nil
	case "FRE":
		if len(args) != 3 {
			return Gate{}, fmt.Errorf("gate FRE: want 3 operands, have %d", len(args))
		}
		return NewFredkin(args[0], args[1], args[2]), nil
	case "SWAP":
		if len(args) != 2 {
			return Gate{}, fmt.Errorf("gate SWAP: want 2 operands, have %d", len(args))
		}
		return NewSwap(args[0], args[1]), nil
	}
	return Gate{}, fmt.Errorf("unknown gate %q", upper)
}

// WriteQC renders the circuit in .qc format.
func WriteQC(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: %d qubits, %d gates\n", c.Name, c.NumQubits(), c.NumGates())
	bw.WriteString(".v")
	for _, q := range c.names {
		bw.WriteByte(' ')
		bw.WriteString(q)
	}
	bw.WriteString("\nBEGIN\n")
	for _, g := range c.Gates {
		bw.WriteString(qcMnemonic(g))
		for _, q := range g.Qubits() {
			bw.WriteByte(' ')
			bw.WriteString(c.names[q])
		}
		bw.WriteByte('\n')
	}
	bw.WriteString("END\n")
	return bw.Flush()
}

func qcMnemonic(g Gate) string {
	switch g.Type {
	case X:
		return "t1"
	case CNOT:
		return "t2"
	case Toffoli:
		return "t3"
	case MCT:
		return fmt.Sprintf("t%d", g.Arity())
	case Fredkin:
		return "f3"
	case MCF:
		return fmt.Sprintf("f%d", g.Arity())
	case Swap:
		return "swap"
	case Sdg:
		return "S*"
	case Tdg:
		return "T*"
	default:
		return g.Type.String()
	}
}

// LoadQCFile parses a .qc file from disk, naming the circuit after the file.
func LoadQCFile(path string) (*Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	name = strings.TrimSuffix(name, ".qc")
	return ParseQC(f, name)
}

// SaveQCFile writes the circuit to disk in .qc format.
func SaveQCFile(path string, c *Circuit) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteQC(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
