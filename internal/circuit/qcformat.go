package circuit

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// The .qc text format (after the Maslov benchmark conventions):
//
//	# comment to end of line
//	.v a b c d         declare qubits, in index order (may repeat)
//	.i a b c           inputs (informational)
//	.o d               outputs (informational)
//	BEGIN
//	t1 a               NOT a           (X)
//	t2 a b             CNOT a -> b     (last operand is the target)
//	t3 a b c           Toffoli a,b -> c
//	t5 a b c d e       MCT a..d -> e
//	f3 a b c           Fredkin: control a, swap b c
//	f4 a b c d         MCF: controls a b, swap c d
//	swap a b           unconditional swap
//	H a  T a  T* a  S a  S* a  X a  Y a  Z a
//	END
//
// Gate mnemonics are case-insensitive; qubit names are case-sensitive.

// ParseQC reads a circuit in .qc format. name labels the returned circuit
// (typically the file basename). Parse failures are *SyntaxError values
// carrying line (and usually column) context. The statement-level work —
// tokenizing, directives, gate assembly, validation — lives in LineParser,
// which the streaming ingest scanner shares, so the two front ends accept
// exactly the same dialect and emit exactly the same diagnostics.
func ParseQC(r io.Reader, name string) (*Circuit, error) {
	p := NewLineParser(name)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	c := p.Register()
	for sc.Scan() {
		g, ok, err := p.Next(sc.Text())
		if err != nil {
			return nil, err
		}
		if ok {
			c.Gates = append(c.Gates, g.Clone())
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return c, nil
}

// WriteQC renders the circuit in .qc format.
func WriteQC(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: %d qubits, %d gates\n", c.Name, c.NumQubits(), c.NumGates())
	bw.WriteString(".v")
	for _, q := range c.names {
		bw.WriteByte(' ')
		bw.WriteString(q)
	}
	bw.WriteString("\nBEGIN\n")
	for _, g := range c.Gates {
		bw.WriteString(qcMnemonic(g))
		for _, q := range g.Qubits() {
			bw.WriteByte(' ')
			bw.WriteString(c.names[q])
		}
		bw.WriteByte('\n')
	}
	bw.WriteString("END\n")
	return bw.Flush()
}

func qcMnemonic(g Gate) string {
	switch g.Type {
	case X:
		return "t1"
	case CNOT:
		return "t2"
	case Toffoli:
		return "t3"
	case MCT:
		return fmt.Sprintf("t%d", g.Arity())
	case Fredkin:
		return "f3"
	case MCF:
		return fmt.Sprintf("f%d", g.Arity())
	case Swap:
		return "swap"
	case Sdg:
		return "S*"
	case Tdg:
		return "T*"
	default:
		return g.Type.String()
	}
}

// QCBaseName derives a circuit name from a .qc path: basename with the
// .qc suffix trimmed — the one naming rule every file-backed entry point
// (LoadQCFile, ingest.Open, leqa.FileSource) shares.
func QCBaseName(path string) string {
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return strings.TrimSuffix(name, ".qc")
}

// LoadQCFile parses a .qc file from disk, naming the circuit after the file.
func LoadQCFile(path string) (*Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseQC(f, QCBaseName(path))
}

// SaveQCFile writes the circuit to disk in .qc format.
func SaveQCFile(path string, c *Circuit) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteQC(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
