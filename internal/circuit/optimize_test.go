package circuit

import (
	"math/rand"
	"testing"
)

func TestOptimizeCancelsSelfInversePairs(t *testing.T) {
	c := New("cancel", 2)
	c.Append(
		NewOneQubit(H, 0), NewOneQubit(H, 0),
		NewCNOT(0, 1), NewCNOT(0, 1),
		NewOneQubit(X, 1), NewOneQubit(X, 1),
	)
	out, removed := Optimize(c)
	if out.NumGates() != 0 || removed != 6 {
		t.Errorf("optimize left %d gates, removed %d", out.NumGates(), removed)
	}
}

func TestOptimizeCancelsAdjointPairs(t *testing.T) {
	c := New("adj", 1)
	c.Append(NewOneQubit(T, 0), NewOneQubit(Tdg, 0))
	out, _ := Optimize(c)
	if out.NumGates() != 0 {
		t.Errorf("T·T† not cancelled: %d gates left", out.NumGates())
	}
	c = New("adj2", 1)
	c.Append(NewOneQubit(Sdg, 0), NewOneQubit(S, 0))
	out, _ = Optimize(c)
	if out.NumGates() != 0 {
		t.Errorf("S†·S not cancelled")
	}
}

func TestOptimizeMergesRotations(t *testing.T) {
	c := New("merge", 1)
	c.Append(NewOneQubit(T, 0), NewOneQubit(T, 0))
	out, _ := Optimize(c)
	if out.NumGates() != 1 || out.Gates[0].Type != S {
		t.Errorf("T·T should merge to S, got %v", out.Gates)
	}
	// T·T·T·T → S·S → Z (fixed point across passes).
	c = New("merge4", 1)
	for i := 0; i < 4; i++ {
		c.Append(NewOneQubit(T, 0))
	}
	out, _ = Optimize(c)
	if out.NumGates() != 1 || out.Gates[0].Type != Z {
		t.Errorf("T^4 should reduce to Z, got %v", out.Gates)
	}
}

func TestOptimizeRespectsInterleavedGates(t *testing.T) {
	// H(0) X(0) H(0): the two H gates must NOT cancel across the X.
	c := New("blocked", 1)
	c.Append(NewOneQubit(H, 0), NewOneQubit(X, 0), NewOneQubit(H, 0))
	out, removed := Optimize(c)
	if removed != 0 || out.NumGates() != 3 {
		t.Errorf("illegal cancellation across X: %v", out.Gates)
	}
}

func TestOptimizeAllowsIndependentInterleaving(t *testing.T) {
	// H(0) T(1) H(0): the T on another wire does not block cancellation.
	c := New("independent", 2)
	c.Append(NewOneQubit(H, 0), NewOneQubit(T, 1), NewOneQubit(H, 0))
	out, _ := Optimize(c)
	if out.NumGates() != 1 || out.Gates[0].Type != T {
		t.Errorf("want single T survivor, got %v", out.Gates)
	}
}

func TestOptimizeCNOTPartialOverlapBlocks(t *testing.T) {
	// CNOT(0,1) CNOT(1,0) CNOT(0,1): middle gate shares operands but with
	// swapped roles; nothing cancels.
	c := New("roles", 2)
	c.Append(NewCNOT(0, 1), NewCNOT(1, 0), NewCNOT(0, 1))
	out, removed := Optimize(c)
	if removed != 0 || out.NumGates() != 3 {
		t.Errorf("role-swapped CNOTs wrongly merged: %v", out.Gates)
	}
	// A one-qubit gate on the control between two CNOTs blocks too.
	c = New("ctrlblocked", 2)
	c.Append(NewCNOT(0, 1), NewOneQubit(T, 0), NewCNOT(0, 1))
	out, removed = Optimize(c)
	if removed != 0 {
		t.Errorf("cancelled across a control-wire gate: %v", out.Gates)
	}
}

func TestOptimizeInputUnchanged(t *testing.T) {
	c := New("orig", 1)
	c.Append(NewOneQubit(H, 0), NewOneQubit(H, 0))
	Optimize(c)
	if c.NumGates() != 2 {
		t.Error("Optimize mutated its input")
	}
}

func TestOptimizeDeterministicAndIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := New("rand", 4)
	types := []GateType{H, T, Tdg, S, Sdg, X, Z}
	for i := 0; i < 200; i++ {
		if rng.Intn(4) == 0 {
			a, b := rng.Intn(4), rng.Intn(4)
			if a != b {
				c.Append(NewCNOT(a, b))
			}
		} else {
			c.Append(NewOneQubit(types[rng.Intn(len(types))], rng.Intn(4)))
		}
	}
	o1, r1 := Optimize(c)
	o2, r2 := Optimize(c)
	if o1.NumGates() != o2.NumGates() || r1 != r2 {
		t.Fatal("optimizer not deterministic")
	}
	o3, r3 := Optimize(o1)
	if r3 != 0 || o3.NumGates() != o1.NumGates() {
		t.Errorf("optimizer not idempotent: removed %d more", r3)
	}
	if err := o1.Validate(); err != nil {
		t.Fatal(err)
	}
}
