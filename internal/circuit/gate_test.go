package circuit

import (
	"strings"
	"testing"
)

func TestGateTypeString(t *testing.T) {
	cases := map[GateType]string{
		X: "X", Y: "Y", Z: "Z", H: "H", S: "S", Sdg: "S*",
		T: "T", Tdg: "T*", CNOT: "CNOT", Toffoli: "TOF",
		Fredkin: "FRE", MCT: "MCT", MCF: "MCF", Swap: "SWAP",
	}
	for gt, want := range cases {
		if got := gt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(gt), got, want)
		}
	}
	if got := Invalid.String(); !strings.Contains(got, "GateType") {
		t.Errorf("Invalid.String() = %q, want placeholder", got)
	}
}

func TestIsOneQubit(t *testing.T) {
	one := []GateType{X, Y, Z, H, S, Sdg, T, Tdg}
	for _, gt := range one {
		if !gt.IsOneQubit() {
			t.Errorf("%s.IsOneQubit() = false, want true", gt)
		}
	}
	multi := []GateType{CNOT, Toffoli, Fredkin, MCT, MCF, Swap, Invalid}
	for _, gt := range multi {
		if gt.IsOneQubit() {
			t.Errorf("%s.IsOneQubit() = true, want false", gt)
		}
	}
}

func TestIsFT(t *testing.T) {
	ft := []GateType{X, Y, Z, H, S, Sdg, T, Tdg, CNOT}
	for _, gt := range ft {
		if !gt.IsFT() {
			t.Errorf("%s.IsFT() = false, want true", gt)
		}
	}
	nonFT := []GateType{Toffoli, Fredkin, MCT, MCF, Swap, Invalid}
	for _, gt := range nonFT {
		if gt.IsFT() {
			t.Errorf("%s.IsFT() = true, want false", gt)
		}
	}
}

func TestAdjoint(t *testing.T) {
	pairs := map[GateType]GateType{
		S: Sdg, Sdg: S, T: Tdg, Tdg: T,
	}
	for a, b := range pairs {
		if got := a.Adjoint(); got != b {
			t.Errorf("%s.Adjoint() = %s, want %s", a, got, b)
		}
	}
	selfInv := []GateType{X, Y, Z, H, CNOT, Toffoli, Fredkin, Swap}
	for _, gt := range selfInv {
		if got := gt.Adjoint(); got != gt {
			t.Errorf("%s.Adjoint() = %s, want self", gt, got)
		}
	}
}

func TestGateConstructors(t *testing.T) {
	g := NewOneQubit(H, 3)
	if g.Type != H || len(g.Controls) != 0 || len(g.Targets) != 1 || g.Targets[0] != 3 {
		t.Errorf("NewOneQubit wrong shape: %+v", g)
	}
	g = NewCNOT(1, 2)
	if g.Type != CNOT || g.Controls[0] != 1 || g.Targets[0] != 2 {
		t.Errorf("NewCNOT wrong shape: %+v", g)
	}
	g = NewToffoli(0, 1, 2)
	if g.Type != Toffoli || g.Arity() != 3 {
		t.Errorf("NewToffoli wrong shape: %+v", g)
	}
	g = NewFredkin(0, 1, 2)
	if g.Type != Fredkin || len(g.Targets) != 2 {
		t.Errorf("NewFredkin wrong shape: %+v", g)
	}
	g = NewSwap(4, 5)
	if g.Type != Swap || len(g.Controls) != 0 || len(g.Targets) != 2 {
		t.Errorf("NewSwap wrong shape: %+v", g)
	}
}

func TestNewMCTDegenerates(t *testing.T) {
	if g := NewMCT(nil, 5); g.Type != X {
		t.Errorf("0-control MCT = %s, want X", g.Type)
	}
	if g := NewMCT([]int{1}, 5); g.Type != CNOT {
		t.Errorf("1-control MCT = %s, want CNOT", g.Type)
	}
	if g := NewMCT([]int{1, 2}, 5); g.Type != Toffoli {
		t.Errorf("2-control MCT = %s, want Toffoli", g.Type)
	}
	g := NewMCT([]int{1, 2, 3}, 5)
	if g.Type != MCT || len(g.Controls) != 3 {
		t.Errorf("3-control MCT wrong shape: %+v", g)
	}
}

func TestNewMCTCopiesControls(t *testing.T) {
	controls := []int{1, 2, 3}
	g := NewMCT(controls, 5)
	controls[0] = 9
	if g.Controls[0] != 1 {
		t.Error("NewMCT aliases the caller's control slice")
	}
}

func TestGateValidate(t *testing.T) {
	valid := []Gate{
		NewOneQubit(H, 0),
		NewCNOT(0, 1),
		NewToffoli(0, 1, 2),
		NewFredkin(0, 1, 2),
		NewMCT([]int{0, 1, 2}, 3),
		NewSwap(0, 1),
		{Type: MCF, Controls: []int{0, 1}, Targets: []int{2, 3}},
	}
	for _, g := range valid {
		if err := g.Validate(4); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", g, err)
		}
	}
	invalid := []struct {
		name string
		g    Gate
		n    int
	}{
		{"out of range", NewCNOT(0, 4), 4},
		{"negative", NewCNOT(-1, 0), 4},
		{"duplicate", NewCNOT(2, 2), 4},
		{"toffoli dup", NewToffoli(1, 1, 2), 4},
		{"one-qubit with control", Gate{Type: H, Controls: []int{0}, Targets: []int{1}}, 4},
		{"cnot extra target", Gate{Type: CNOT, Controls: []int{0}, Targets: []int{1, 2}}, 4},
		{"mct too few controls", Gate{Type: MCT, Controls: []int{0, 1}, Targets: []int{2}}, 4},
		{"mcf one control", Gate{Type: MCF, Controls: []int{0}, Targets: []int{1, 2}}, 4},
		{"invalid type", Gate{Type: Invalid, Targets: []int{0}}, 4},
		{"swap one target", Gate{Type: Swap, Targets: []int{0}}, 4},
	}
	for _, tc := range invalid {
		if err := tc.g.Validate(tc.n); err == nil {
			t.Errorf("%s: Validate(%v) = nil, want error", tc.name, tc.g)
		}
	}
}

func TestGateQubitsOrder(t *testing.T) {
	g := NewToffoli(5, 3, 1)
	qs := g.Qubits()
	if len(qs) != 3 || qs[0] != 5 || qs[1] != 3 || qs[2] != 1 {
		t.Errorf("Qubits() = %v, want controls then targets", qs)
	}
	// Must be a fresh slice.
	qs[0] = 99
	if g.Controls[0] != 5 {
		t.Error("Qubits() aliases gate storage")
	}
}

func TestGateString(t *testing.T) {
	g := NewCNOT(0, 1)
	if got := g.String(); got != "CNOT q0 q1" {
		t.Errorf("String() = %q", got)
	}
}

func TestIsTwoQubit(t *testing.T) {
	if !NewCNOT(0, 1).IsTwoQubit() {
		t.Error("CNOT should be two-qubit")
	}
	if !NewSwap(0, 1).IsTwoQubit() {
		t.Error("Swap should be two-qubit")
	}
	if NewToffoli(0, 1, 2).IsTwoQubit() {
		t.Error("Toffoli is not two-qubit")
	}
	if NewOneQubit(T, 0).IsTwoQubit() {
		t.Error("T is not two-qubit")
	}
}
