package circuit

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const sampleQC = `
# sample circuit
.v a b c d
.i a b c
.o d
BEGIN
t1 a
t2 a b
t3 a b c
t4 a b c d
f3 a b c
swap a b
H a
T b
T* c
S d
S* a
X b
Y c
Z d
CNOT a b
TOF a b c
END
`

func parseSample(t *testing.T) *Circuit {
	t.Helper()
	c, err := ParseQC(strings.NewReader(sampleQC), "sample")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParseQCGateTypes(t *testing.T) {
	c := parseSample(t)
	want := []GateType{
		X, CNOT, Toffoli, MCT, Fredkin, Swap,
		H, T, Tdg, S, Sdg, X, Y, Z, CNOT, Toffoli,
	}
	if c.NumGates() != len(want) {
		t.Fatalf("parsed %d gates, want %d", c.NumGates(), len(want))
	}
	for i, w := range want {
		if c.Gates[i].Type != w {
			t.Errorf("gate %d type = %s, want %s", i, c.Gates[i].Type, w)
		}
	}
	if c.NumQubits() != 4 {
		t.Errorf("NumQubits = %d, want 4", c.NumQubits())
	}
}

func TestParseQCTNOperandOrder(t *testing.T) {
	c := parseSample(t)
	// t2 a b: control a (index 0), target b (index 1).
	g := c.Gates[1]
	if g.Controls[0] != 0 || g.Targets[0] != 1 {
		t.Errorf("t2 a b parsed as %+v", g)
	}
	// f3 a b c: control a, swap pair (b, c).
	g = c.Gates[4]
	if g.Controls[0] != 0 || g.Targets[0] != 1 || g.Targets[1] != 2 {
		t.Errorf("f3 a b c parsed as %+v", g)
	}
}

func TestParseQCAutoDeclares(t *testing.T) {
	src := ".v a\nBEGIN\nt2 a zz\nEND\n"
	c, err := ParseQC(strings.NewReader(src), "auto")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits() != 2 {
		t.Fatalf("auto-declared register has %d qubits", c.NumQubits())
	}
	if _, ok := c.QubitIndex("zz"); !ok {
		t.Error("qubit zz not registered")
	}
}

func TestParseQCErrors(t *testing.T) {
	cases := map[string]string{
		"outside body":    ".v a b\nt2 a b\n",
		"bad mnemonic":    ".v a\nBEGIN\nbogus a\nEND\n",
		"wrong arity":     ".v a b\nBEGIN\nt3 a b\nEND\n",
		"cnot arity":      ".v a b c\nBEGIN\nCNOT a b c\nEND\n",
		"fredkin 2 ops":   ".v a b\nBEGIN\nf2 a b\nEND\n",
		"h arity":         ".v a b\nBEGIN\nH a b\nEND\n",
		"duplicate qubit": ".v a b\nBEGIN\nt2 a a\nEND\n",
	}
	for name, src := range cases {
		if _, err := ParseQC(strings.NewReader(src), name); err == nil {
			t.Errorf("%s: want parse error", name)
		}
	}
}

func TestQCRoundTrip(t *testing.T) {
	c := parseSample(t)
	var buf bytes.Buffer
	if err := WriteQC(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseQC(&buf, "sample")
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if c2.NumGates() != c.NumGates() || c2.NumQubits() != c.NumQubits() {
		t.Fatalf("round trip changed size: %d/%d gates, %d/%d qubits",
			c2.NumGates(), c.NumGates(), c2.NumQubits(), c.NumQubits())
	}
	for i := range c.Gates {
		a, b := c.Gates[i], c2.Gates[i]
		if a.Type != b.Type {
			t.Errorf("gate %d type %s != %s", i, a.Type, b.Type)
			continue
		}
		for j := range a.Controls {
			if a.Controls[j] != b.Controls[j] {
				t.Errorf("gate %d control %d differs", i, j)
			}
		}
		for j := range a.Targets {
			if a.Targets[j] != b.Targets[j] {
				t.Errorf("gate %d target %d differs", i, j)
			}
		}
	}
}

func TestQCFileRoundTrip(t *testing.T) {
	c := parseSample(t)
	path := filepath.Join(t.TempDir(), "sample.qc")
	if err := SaveQCFile(path, c); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadQCFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Name != "sample" {
		t.Errorf("loaded name = %q, want sample (from filename)", c2.Name)
	}
	if c2.NumGates() != c.NumGates() {
		t.Errorf("gate count changed: %d -> %d", c.NumGates(), c2.NumGates())
	}
}

func TestParseQCCommentsAndBlanks(t *testing.T) {
	src := "# header\n\n.v a b # trailing\nBEGIN\n# body comment\nt2 a b\n\nEND\n# trailer\n"
	c, err := ParseQC(strings.NewReader(src), "comments")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 1 {
		t.Fatalf("parsed %d gates, want 1", c.NumGates())
	}
}

func TestParseQCCaseInsensitiveMnemonics(t *testing.T) {
	src := ".v a b c\nBEGIN\ncnot a b\ntof a b c\nh a\nnot b\nEND\n"
	c, err := ParseQC(strings.NewReader(src), "case")
	if err != nil {
		t.Fatal(err)
	}
	want := []GateType{CNOT, Toffoli, H, X}
	for i, w := range want {
		if c.Gates[i].Type != w {
			t.Errorf("gate %d = %s, want %s", i, c.Gates[i].Type, w)
		}
	}
}
