package circuit

import (
	"fmt"
	"sort"
)

// Circuit is an ordered reversible/FT gate netlist over a fixed register of
// logical qubits. The zero value is an empty circuit with no qubits.
type Circuit struct {
	// Name labels the circuit (benchmark name); informational only.
	Name string
	// names holds one display name per qubit. len(names) == qubit count.
	names []string
	// byName maps a display name to its qubit index.
	byName map[string]int
	// Gates is the ordered gate list.
	Gates []Gate
}

// New creates an empty circuit with n anonymous qubits named q0..q<n-1>.
func New(name string, n int) *Circuit {
	c := &Circuit{Name: name, byName: make(map[string]int, n)}
	for i := 0; i < n; i++ {
		c.addQubit(fmt.Sprintf("q%d", i))
	}
	return c
}

// NewNamed creates an empty circuit whose qubits carry the given names.
// Duplicate names are rejected.
func NewNamed(name string, qubits []string) (*Circuit, error) {
	c := &Circuit{Name: name, byName: make(map[string]int, len(qubits))}
	for _, q := range qubits {
		if _, dup := c.byName[q]; dup {
			return nil, fmt.Errorf("circuit %q: duplicate qubit name %q", name, q)
		}
		c.addQubit(q)
	}
	return c, nil
}

func (c *Circuit) addQubit(name string) int {
	if c.byName == nil {
		c.byName = make(map[string]int)
	}
	idx := len(c.names)
	c.names = append(c.names, name)
	c.byName[name] = idx
	return idx
}

// AddQubit appends a new qubit with the given name and returns its index.
// If the name is already taken, the existing index is returned.
func (c *Circuit) AddQubit(name string) int {
	if idx, ok := c.byName[name]; ok {
		return idx
	}
	return c.addQubit(name)
}

// AddAncilla appends a fresh ancilla qubit with a unique generated name and
// returns its index.
func (c *Circuit) AddAncilla() int {
	for i := len(c.names); ; i++ {
		name := fmt.Sprintf("anc%d", i)
		if _, taken := c.byName[name]; !taken {
			return c.addQubit(name)
		}
	}
}

// NumQubits returns the register size.
func (c *Circuit) NumQubits() int { return len(c.names) }

// NumGates returns the number of gates (the paper's "operation count").
func (c *Circuit) NumGates() int { return len(c.Gates) }

// QubitName returns the display name of qubit i.
func (c *Circuit) QubitName(i int) string { return c.names[i] }

// QubitNames returns a copy of all qubit display names in index order.
func (c *Circuit) QubitNames() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// QubitIndex returns the index for a display name.
func (c *Circuit) QubitIndex(name string) (int, bool) {
	idx, ok := c.byName[name]
	return idx, ok
}

// Append adds gates to the end of the circuit. It does not validate; call
// Validate once after construction.
func (c *Circuit) Append(gs ...Gate) { c.Gates = append(c.Gates, gs...) }

// Validate checks every gate against the register size.
func (c *Circuit) Validate() error {
	n := c.NumQubits()
	for i, g := range c.Gates {
		if err := g.Validate(n); err != nil {
			return fmt.Errorf("circuit %q: gate %d: %w", c.Name, i, err)
		}
	}
	return nil
}

// IsFT reports whether every gate belongs to the fault-tolerant set
// (one-qubit FT gates and CNOT) and so can be mapped directly to ULBs.
func (c *Circuit) IsFT() bool {
	for _, g := range c.Gates {
		if !g.Type.IsFT() {
			return false
		}
	}
	return true
}

// GateCounts returns the number of gates of each type present.
func (c *Circuit) GateCounts() map[GateType]int {
	m := make(map[GateType]int)
	for _, g := range c.Gates {
		m[g.Type]++
	}
	return m
}

// CountsString formats GateCounts deterministically for logs and reports.
func (c *Circuit) CountsString() string {
	counts := c.GateCounts()
	types := make([]GateType, 0, len(counts))
	for t := range counts {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	s := ""
	for i, t := range types {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", t, counts[t])
	}
	return s
}

// TwoQubitOpCount returns the number of gates touching exactly two qubits.
func (c *Circuit) TwoQubitOpCount() int {
	n := 0
	for _, g := range c.Gates {
		if g.IsTwoQubit() {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{Name: c.Name, byName: make(map[string]int, len(c.byName))}
	out.names = append([]string(nil), c.names...)
	for k, v := range c.byName {
		out.byName[k] = v
	}
	out.Gates = make([]Gate, len(c.Gates))
	for i, g := range c.Gates {
		out.Gates[i] = Gate{
			Type:     g.Type,
			Controls: append([]int(nil), g.Controls...),
			Targets:  append([]int(nil), g.Targets...),
		}
	}
	return out
}

// Reverse returns the adjoint circuit: gates in reverse order with each gate
// replaced by its inverse. Useful for uncomputation in generators.
func (c *Circuit) Reverse() *Circuit {
	out := c.Clone()
	out.Name = c.Name + "_rev"
	for i, j := 0, len(out.Gates)-1; i < j; i, j = i+1, j-1 {
		out.Gates[i], out.Gates[j] = out.Gates[j], out.Gates[i]
	}
	for i := range out.Gates {
		out.Gates[i].Type = out.Gates[i].Type.Adjoint()
	}
	return out
}

// Stats summarizes a circuit for Table-3-style reports.
type Stats struct {
	Name     string
	Qubits   int
	Gates    int
	TwoQubit int
	OneQubit int
	NonFT    int // gates still needing decomposition
	ByType   map[GateType]int
	MaxQubit int // highest qubit index used by any gate, -1 if none
	Depth    int // naive qubit-availability depth (no routing)
}

// ComputeStats derives Stats in one pass.
func (c *Circuit) ComputeStats() Stats {
	s := Stats{
		Name:     c.Name,
		Qubits:   c.NumQubits(),
		Gates:    len(c.Gates),
		ByType:   c.GateCounts(),
		MaxQubit: -1,
	}
	avail := make([]int, c.NumQubits())
	for _, g := range c.Gates {
		if g.IsTwoQubit() {
			s.TwoQubit++
		} else if g.Arity() == 1 {
			s.OneQubit++
		}
		if !g.Type.IsFT() {
			s.NonFT++
		}
		level := 0
		for _, q := range g.Qubits() {
			if q > s.MaxQubit {
				s.MaxQubit = q
			}
			if avail[q] > level {
				level = avail[q]
			}
		}
		level++
		for _, q := range g.Qubits() {
			avail[q] = level
		}
		if level > s.Depth {
			s.Depth = level
		}
	}
	return s
}
