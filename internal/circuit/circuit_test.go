package circuit

import (
	"testing"
	"testing/quick"
)

func TestNewCircuit(t *testing.T) {
	c := New("t", 3)
	if c.NumQubits() != 3 {
		t.Fatalf("NumQubits = %d, want 3", c.NumQubits())
	}
	if c.QubitName(0) != "q0" || c.QubitName(2) != "q2" {
		t.Errorf("unexpected names %v", c.QubitNames())
	}
	if idx, ok := c.QubitIndex("q1"); !ok || idx != 1 {
		t.Errorf("QubitIndex(q1) = %d,%v", idx, ok)
	}
}

func TestNewNamedRejectsDuplicates(t *testing.T) {
	if _, err := NewNamed("t", []string{"a", "b", "a"}); err == nil {
		t.Fatal("want error on duplicate name")
	}
	c, err := NewNamed("t", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits() != 2 {
		t.Fatalf("NumQubits = %d", c.NumQubits())
	}
}

func TestAddQubitIdempotent(t *testing.T) {
	c := New("t", 1)
	i1 := c.AddQubit("extra")
	i2 := c.AddQubit("extra")
	if i1 != i2 {
		t.Errorf("AddQubit twice gave %d then %d", i1, i2)
	}
	if c.NumQubits() != 2 {
		t.Errorf("NumQubits = %d, want 2", c.NumQubits())
	}
}

func TestAddAncillaUnique(t *testing.T) {
	c := New("t", 2)
	seen := map[int]bool{}
	for i := 0; i < 10; i++ {
		idx := c.AddAncilla()
		if seen[idx] {
			t.Fatalf("AddAncilla returned duplicate index %d", idx)
		}
		seen[idx] = true
	}
	if c.NumQubits() != 12 {
		t.Errorf("NumQubits = %d, want 12", c.NumQubits())
	}
}

func TestCircuitValidate(t *testing.T) {
	c := New("t", 2)
	c.Append(NewCNOT(0, 1))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.Append(NewCNOT(0, 5))
	if err := c.Validate(); err == nil {
		t.Fatal("want out-of-range error")
	}
}

func TestIsFTAndCounts(t *testing.T) {
	c := New("t", 3)
	c.Append(NewOneQubit(H, 0), NewCNOT(0, 1))
	if !c.IsFT() {
		t.Error("H+CNOT should be FT")
	}
	c.Append(NewToffoli(0, 1, 2))
	if c.IsFT() {
		t.Error("Toffoli is not FT")
	}
	counts := c.GateCounts()
	if counts[H] != 1 || counts[CNOT] != 1 || counts[Toffoli] != 1 {
		t.Errorf("GateCounts = %v", counts)
	}
	if got := c.TwoQubitOpCount(); got != 1 {
		t.Errorf("TwoQubitOpCount = %d, want 1", got)
	}
	if s := c.CountsString(); s == "" {
		t.Error("CountsString empty")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := New("t", 2)
	c.Append(NewCNOT(0, 1))
	d := c.Clone()
	d.Gates[0].Controls[0] = 1
	d.Gates[0].Targets[0] = 0
	if c.Gates[0].Controls[0] != 0 {
		t.Error("Clone shares gate storage")
	}
	d.AddQubit("new")
	if c.NumQubits() != 2 {
		t.Error("Clone shares qubit registry")
	}
}

func TestReverseIsAdjoint(t *testing.T) {
	c := New("t", 2)
	c.Append(NewOneQubit(T, 0), NewOneQubit(H, 1), NewCNOT(0, 1))
	r := c.Reverse()
	if r.NumGates() != 3 {
		t.Fatalf("Reverse has %d gates", r.NumGates())
	}
	if r.Gates[0].Type != CNOT {
		t.Errorf("first reversed gate = %s, want CNOT", r.Gates[0].Type)
	}
	if r.Gates[2].Type != Tdg {
		t.Errorf("last reversed gate = %s, want T*", r.Gates[2].Type)
	}
	// Reversing twice restores the original types and order.
	rr := r.Reverse()
	for i := range c.Gates {
		if rr.Gates[i].Type != c.Gates[i].Type {
			t.Errorf("double reverse gate %d: %s != %s", i, rr.Gates[i].Type, c.Gates[i].Type)
		}
	}
}

func TestComputeStats(t *testing.T) {
	c := New("t", 3)
	c.Append(
		NewOneQubit(H, 0),   // depth 1 on q0
		NewCNOT(0, 1),       // depth 2
		NewToffoli(0, 1, 2), // depth 3
		NewOneQubit(T, 2),   // depth 4
	)
	s := c.ComputeStats()
	if s.Gates != 4 || s.Qubits != 3 {
		t.Errorf("stats size wrong: %+v", s)
	}
	if s.TwoQubit != 1 || s.OneQubit != 2 || s.NonFT != 1 {
		t.Errorf("stats classes wrong: %+v", s)
	}
	if s.Depth != 4 {
		t.Errorf("Depth = %d, want 4", s.Depth)
	}
	if s.MaxQubit != 2 {
		t.Errorf("MaxQubit = %d, want 2", s.MaxQubit)
	}
}

func TestStatsDepthProperty(t *testing.T) {
	// Depth never exceeds gate count, and is positive when gates exist.
	f := func(seed uint8) bool {
		n := int(seed%5) + 2
		c := New("p", n)
		for i := 0; i < int(seed); i++ {
			c.Append(NewCNOT(i%n, (i+1)%n))
		}
		s := c.ComputeStats()
		if s.Depth > s.Gates {
			return false
		}
		return s.Gates == 0 || s.Depth >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
