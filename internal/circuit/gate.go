// Package circuit models reversible and fault-tolerant quantum gate
// netlists: the gate vocabulary, the circuit container, validation, and a
// plain-text netlist format (.qc) compatible with the conventions of the
// Maslov reversible benchmark suite used by the LEQA paper.
//
// A circuit is an ordered list of gates over a fixed set of logical qubits,
// identified by dense integer indices. Qubit names are kept for I/O but all
// algorithms work on indices.
package circuit

import (
	"fmt"
	"strings"
)

// GateType enumerates the gate vocabulary. It covers the reversible logic
// gates produced by synthesis (NOT/CNOT/Toffoli/Fredkin and their
// multi-control generalizations) and the fault-tolerant (FT) set targeted by
// quantum FT synthesis for the Steane code: {CNOT, H, T, T†, S, S†, X, Y, Z}.
type GateType int

const (
	// Invalid is the zero value; it never appears in a valid circuit.
	Invalid GateType = iota

	// One-qubit FT gates.
	X   // Pauli X (logical NOT)
	Y   // Pauli Y
	Z   // Pauli Z
	H   // Hadamard
	S   // phase gate (π/2 rotation)
	Sdg // S† (-π/2 rotation)
	T   // π/4 rotation; non-transversal in Steane code
	Tdg // T† (-π/4 rotation); non-transversal in Steane code

	// Two-qubit FT gate.
	CNOT // controlled NOT

	// Reversible-logic gates that must be decomposed before mapping.
	Toffoli // 2-control NOT (CCX)
	Fredkin // 1-control SWAP (CSWAP)
	MCT     // multi-control Toffoli with ≥3 controls
	MCF     // multi-control Fredkin with ≥2 controls
	Swap    // unconditional SWAP (decomposes to 3 CNOTs)
)

// String returns the canonical mnemonic used by the .qc text format.
func (t GateType) String() string {
	switch t {
	case X:
		return "X"
	case Y:
		return "Y"
	case Z:
		return "Z"
	case H:
		return "H"
	case S:
		return "S"
	case Sdg:
		return "S*"
	case T:
		return "T"
	case Tdg:
		return "T*"
	case CNOT:
		return "CNOT"
	case Toffoli:
		return "TOF"
	case Fredkin:
		return "FRE"
	case MCT:
		return "MCT"
	case MCF:
		return "MCF"
	case Swap:
		return "SWAP"
	default:
		return fmt.Sprintf("GateType(%d)", int(t))
	}
}

// IsOneQubit reports whether the gate type acts on exactly one qubit.
func (t GateType) IsOneQubit() bool {
	switch t {
	case X, Y, Z, H, S, Sdg, T, Tdg:
		return true
	}
	return false
}

// IsFT reports whether the gate type belongs to the fault-tolerant set
// directly implementable on a ULB ({CNOT} ∪ one-qubit FT gates).
func (t GateType) IsFT() bool {
	return t == CNOT || t.IsOneQubit()
}

// Adjoint returns the inverse gate type. All gates in the vocabulary are
// self-inverse except S/S† and T/T†.
func (t GateType) Adjoint() GateType {
	switch t {
	case S:
		return Sdg
	case Sdg:
		return S
	case T:
		return Tdg
	case Tdg:
		return T
	default:
		return t
	}
}

// Gate is one operation in a netlist. Controls and Targets hold qubit
// indices. The shape constraints per type are enforced by Validate:
//
//	one-qubit FT gates: 0 controls, 1 target
//	CNOT:               1 control, 1 target
//	Toffoli:            2 controls, 1 target
//	Fredkin:            1 control, 2 targets (the swapped pair)
//	MCT:                ≥3 controls, 1 target
//	MCF:                ≥2 controls, 2 targets
//	Swap:               0 controls, 2 targets
type Gate struct {
	Type     GateType
	Controls []int
	Targets  []int
}

// NewOneQubit constructs a one-qubit FT gate on qubit q.
func NewOneQubit(t GateType, q int) Gate {
	return Gate{Type: t, Targets: []int{q}}
}

// NewCNOT constructs a CNOT with the given control and target.
func NewCNOT(control, target int) Gate {
	return Gate{Type: CNOT, Controls: []int{control}, Targets: []int{target}}
}

// NewToffoli constructs a 2-control Toffoli gate.
func NewToffoli(c1, c2, target int) Gate {
	return Gate{Type: Toffoli, Controls: []int{c1, c2}, Targets: []int{target}}
}

// NewFredkin constructs a controlled swap of a and b.
func NewFredkin(control, a, b int) Gate {
	return Gate{Type: Fredkin, Controls: []int{control}, Targets: []int{a, b}}
}

// NewMCT constructs a multi-control Toffoli. With 0, 1 or 2 controls the
// returned gate degenerates to X, CNOT or Toffoli respectively.
func NewMCT(controls []int, target int) Gate {
	switch len(controls) {
	case 0:
		return NewOneQubit(X, target)
	case 1:
		return NewCNOT(controls[0], target)
	case 2:
		return NewToffoli(controls[0], controls[1], target)
	}
	cs := make([]int, len(controls))
	copy(cs, controls)
	return Gate{Type: MCT, Controls: cs, Targets: []int{target}}
}

// NewSwap constructs an unconditional swap of a and b.
func NewSwap(a, b int) Gate {
	return Gate{Type: Swap, Targets: []int{a, b}}
}

// Clone returns a deep copy of the gate: the operand slices are freshly
// allocated, so the copy stays valid after the source's backing arrays are
// reused (LineParser and the ingest scanner emit borrowed gates).
func (g Gate) Clone() Gate {
	return Gate{
		Type:     g.Type,
		Controls: append([]int(nil), g.Controls...),
		Targets:  append([]int(nil), g.Targets...),
	}
}

// Qubits returns every qubit index the gate touches, controls first.
// The result is freshly allocated.
func (g Gate) Qubits() []int {
	out := make([]int, 0, len(g.Controls)+len(g.Targets))
	out = append(out, g.Controls...)
	out = append(out, g.Targets...)
	return out
}

// Arity returns the number of distinct qubits the gate touches, assuming the
// gate is well-formed (no duplicate operands).
func (g Gate) Arity() int { return len(g.Controls) + len(g.Targets) }

// IsTwoQubit reports whether the gate touches exactly two qubits.
func (g Gate) IsTwoQubit() bool { return g.Arity() == 2 }

// QubitPair returns the two operands of an arity-2 gate (control first for
// CNOT-shaped gates) without allocating — the hot-path accessor streaming
// graph builders use. It panics if the gate does not touch exactly two
// qubits.
func (g Gate) QubitPair() (a, b int) {
	switch {
	case len(g.Controls) == 1 && len(g.Targets) == 1:
		return g.Controls[0], g.Targets[0]
	case len(g.Controls) == 0 && len(g.Targets) == 2:
		return g.Targets[0], g.Targets[1]
	case len(g.Controls) == 2 && len(g.Targets) == 0:
		return g.Controls[0], g.Controls[1]
	}
	panic(fmt.Sprintf("circuit: QubitPair on %s with arity %d", g.Type, g.Arity()))
}

// operand returns the i-th operand qubit, controls first — the
// allocation-free counterpart of Qubits()[i].
func (g Gate) operand(i int) int {
	if i < len(g.Controls) {
		return g.Controls[i]
	}
	return g.Targets[i-len(g.Controls)]
}

// Validate checks the operand-shape constraints for the gate type and that
// all operands are distinct and within [0, n).
func (g Gate) Validate(n int) error {
	var wantC, wantT int
	minC := -1 // exact unless ≥0, then minimum
	switch g.Type {
	case X, Y, Z, H, S, Sdg, T, Tdg:
		wantC, wantT = 0, 1
	case CNOT:
		wantC, wantT = 1, 1
	case Toffoli:
		wantC, wantT = 2, 1
	case Fredkin:
		wantC, wantT = 1, 2
	case MCT:
		minC, wantT = 3, 1
	case MCF:
		minC, wantT = 2, 2
	case Swap:
		wantC, wantT = 0, 2
	default:
		return fmt.Errorf("gate %s: unknown type", g.Type)
	}
	if minC >= 0 {
		if len(g.Controls) < minC {
			return fmt.Errorf("gate %s: want ≥%d controls, have %d", g.Type, minC, len(g.Controls))
		}
	} else if len(g.Controls) != wantC {
		return fmt.Errorf("gate %s: want %d controls, have %d", g.Type, wantC, len(g.Controls))
	}
	if len(g.Targets) != wantT {
		return fmt.Errorf("gate %s: want %d targets, have %d", g.Type, wantT, len(g.Targets))
	}
	// Operand checks run index-based and quadratic in arity — arities are
	// tiny, and avoiding the Qubits() copy plus a set keeps full-circuit
	// validation allocation-free on the ~1M-op hot path.
	ar := g.Arity()
	for i := 0; i < ar; i++ {
		q := g.operand(i)
		if q < 0 || q >= n {
			return fmt.Errorf("gate %s: qubit %d out of range [0,%d)", g.Type, q, n)
		}
		for j := 0; j < i; j++ {
			if g.operand(j) == q {
				return fmt.Errorf("gate %s: duplicate operand qubit %d", g.Type, q)
			}
		}
	}
	return nil
}

// String renders the gate in .qc statement form, using q<i> placeholder
// names.
func (g Gate) String() string {
	var sb strings.Builder
	sb.WriteString(g.Type.String())
	for _, q := range g.Qubits() {
		fmt.Fprintf(&sb, " q%d", q)
	}
	return sb.String()
}
