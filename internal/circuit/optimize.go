package circuit

// Peephole optimization over FT netlists: cancel adjacent inverse pairs
// (H·H, X·X, CNOT·CNOT on the same operands, T·T†, S·S†, ...) and merge
// rotation pairs (T·T → S, S·S → Z, T†·T† → S†, S†·S† → Z). "Adjacent"
// means adjacent on the qubit's own timeline — gates on other qubits may
// sit between them in program order as long as no gate touches the operands
// in between.
//
// This is a quantum-algorithm-developer utility in the spirit of the
// paper's §1 use case (compare codings quickly); the estimator itself never
// rewrites its input.

// mergeResult describes what two successive gates on the same operands
// reduce to: annihilation, a replacement gate, or nothing.
type mergeOutcome int

const (
	mergeNone mergeOutcome = iota
	mergeCancel
	mergeReplace
)

// mergePair decides the fate of two same-operand gates executed in
// sequence.
func mergePair(a, b GateType) (mergeOutcome, GateType) {
	if a.Adjoint() == b {
		// Covers all self-inverse pairs plus T·T†, S·S†.
		return mergeCancel, Invalid
	}
	switch {
	case a == T && b == T:
		return mergeReplace, S
	case a == Tdg && b == Tdg:
		return mergeReplace, Sdg
	case a == S && b == S:
		return mergeReplace, Z
	case a == Sdg && b == Sdg:
		return mergeReplace, Z
	}
	return mergeNone, Invalid
}

// sameOperands reports whether two gates act on identical control and
// target lists.
func sameOperands(a, b Gate) bool {
	if len(a.Controls) != len(b.Controls) || len(a.Targets) != len(b.Targets) {
		return false
	}
	for i := range a.Controls {
		if a.Controls[i] != b.Controls[i] {
			return false
		}
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			return false
		}
	}
	return true
}

// Optimize applies cancellation/merging until a fixed point and returns a
// new circuit plus the number of gates removed. The input is unchanged.
func Optimize(c *Circuit) (*Circuit, int) {
	out := c.Clone()
	removedTotal := 0
	for {
		removed := optimizePass(out)
		removedTotal += removed
		if removed == 0 {
			return out, removedTotal
		}
	}
}

// optimizePass performs one sweep. For each gate it finds the qubit-timeline
// successor (the next gate sharing any operand); if that successor shares
// ALL operands and merges, both are rewritten in place.
func optimizePass(c *Circuit) int {
	n := len(c.Gates)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	// last[q] = index of the most recent alive gate touching q, -1 none.
	last := make([]int, c.NumQubits())
	for i := range last {
		last[i] = -1
	}
	removed := 0
	for i := 0; i < n; i++ {
		if !alive[i] {
			continue
		}
		g := c.Gates[i]
		// Find the unique predecessor on every operand; merging is legal
		// only if the SAME gate is each operand's latest toucher (nothing
		// interleaves on any operand wire).
		prev := -2 // -2 unset, -1 mixed/none
		for _, q := range g.Qubits() {
			lq := last[q]
			if prev == -2 {
				prev = lq
			} else if prev != lq {
				prev = -1
			}
		}
		if prev >= 0 && alive[prev] && sameOperands(c.Gates[prev], g) {
			switch outcome, repl := mergePair(c.Gates[prev].Type, g.Type); outcome {
			case mergeCancel:
				alive[prev], alive[i] = false, false
				removed += 2
				// The operands' latest toucher rolls back to "unknown";
				// conservatively reset to -1 (no further chained merge
				// through this site until the next pass).
				for _, q := range g.Qubits() {
					last[q] = -1
				}
				continue
			case mergeReplace:
				alive[prev] = false
				removed++
				c.Gates[i] = Gate{
					Type:     repl,
					Controls: g.Controls,
					Targets:  g.Targets,
				}
			}
		}
		for _, q := range g.Qubits() {
			last[q] = i
		}
	}
	if removed == 0 {
		return 0
	}
	kept := c.Gates[:0]
	for i, g := range c.Gates {
		if alive[i] {
			kept = append(kept, g)
		}
	}
	c.Gates = kept
	return removed
}
