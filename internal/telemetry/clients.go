package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// OverflowKey is the reserved accounting key absorbing clients evicted from
// the bounded tracking table, so totals stay conserved at any cardinality.
const OverflowKey = "other"

// ClientsOptions configures the per-client accounting table.
type ClientsOptions struct {
	// Max bounds the tracked-client cardinality (the /metrics label-set
	// budget); the least-recently-seen client is folded into OverflowKey
	// past it. Default 64.
	Max int
	// Window configures each client's sliding counters.
	Window WindowOptions
}

// Clients is bounded-cardinality per-client accounting: cumulative and
// windowed request/row/byte counters keyed by client (auth token hash or
// remote address). The table never exceeds Max tracked keys plus the
// overflow row.
type Clients struct {
	max   int
	wopt  WindowOptions
	clock Clock

	mu sync.Mutex
	m  map[string]*clientEntry
}

type clientEntry struct {
	key                   string
	requests, rows, bytes atomic.Uint64 // cumulative
	wreq, wrows, wbytes   *Counter
	lastSeen              atomic.Int64 // unix nanos
}

// NewClients builds the accounting table.
func NewClients(opt ClientsOptions) *Clients {
	if opt.Max <= 0 {
		opt.Max = 64
	}
	w := opt.Window.withDefaults()
	return &Clients{max: opt.Max, wopt: w, clock: w.Clock, m: make(map[string]*clientEntry, opt.Max+1)}
}

// Record accounts one finished request for key.
func (t *Clients) Record(key string, rows int, bytes int64) {
	if key == "" {
		key = OverflowKey
	}
	e := t.entry(key)
	e.requests.Add(1)
	e.wreq.Add(1)
	if rows > 0 {
		e.rows.Add(uint64(rows))
		e.wrows.Add(uint64(rows))
	}
	if bytes > 0 {
		e.bytes.Add(uint64(bytes))
		e.wbytes.Add(uint64(bytes))
	}
	e.lastSeen.Store(t.clock().UnixNano())
}

func (t *Clients) entry(key string) *clientEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.m[key]; e != nil {
		return e
	}
	if key != OverflowKey && t.trackedLocked() >= t.max {
		t.evictLocked()
	}
	e := &clientEntry{
		key:    key,
		wreq:   NewCounter(t.wopt),
		wrows:  NewCounter(t.wopt),
		wbytes: NewCounter(t.wopt),
	}
	t.m[key] = e
	return e
}

func (t *Clients) trackedLocked() int {
	n := len(t.m)
	if _, ok := t.m[OverflowKey]; ok {
		n--
	}
	return n
}

// evictLocked folds the least-recently-seen tracked client into the
// overflow row. Its cumulative counters are conserved; its windowed counts
// are dropped (the window is a sketch, not a ledger).
func (t *Clients) evictLocked() {
	var victim *clientEntry
	for k, e := range t.m {
		if k == OverflowKey {
			continue
		}
		if victim == nil || e.lastSeen.Load() < victim.lastSeen.Load() {
			victim = e
		}
	}
	if victim == nil {
		return
	}
	delete(t.m, victim.key)
	other := t.m[OverflowKey]
	if other == nil {
		other = &clientEntry{
			key:    OverflowKey,
			wreq:   NewCounter(t.wopt),
			wrows:  NewCounter(t.wopt),
			wbytes: NewCounter(t.wopt),
		}
		t.m[OverflowKey] = other
	}
	other.requests.Add(victim.requests.Load())
	other.rows.Add(victim.rows.Load())
	other.bytes.Add(victim.bytes.Load())
}

// ClientStats is one accounting row.
type ClientStats struct {
	Key                                     string    `json:"client"`
	Requests, Rows, Bytes                   uint64    `json:"-"`
	WindowRequests, WindowRows, WindowBytes uint64    `json:"-"`
	LastSeen                                time.Time `json:"-"`
}

// Snapshot lists every tracked client (plus the overflow row when it
// exists), sorted by windowed request count descending, ties by key.
func (t *Clients) Snapshot() []ClientStats {
	t.mu.Lock()
	entries := make([]*clientEntry, 0, len(t.m))
	for _, e := range t.m {
		entries = append(entries, e)
	}
	t.mu.Unlock()
	out := make([]ClientStats, len(entries))
	for i, e := range entries {
		out[i] = ClientStats{
			Key:            e.key,
			Requests:       e.requests.Load(),
			Rows:           e.rows.Load(),
			Bytes:          e.bytes.Load(),
			WindowRequests: e.wreq.Total(),
			WindowRows:     e.wrows.Total(),
			WindowBytes:    e.wbytes.Total(),
			LastSeen:       time.Unix(0, e.lastSeen.Load()),
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WindowRequests != out[j].WindowRequests {
			return out[i].WindowRequests > out[j].WindowRequests
		}
		return out[i].Key < out[j].Key
	})
	return out
}
