package telemetry

import (
	"fmt"
	"testing"
	"time"
)

func TestClientsBasicAccounting(t *testing.T) {
	clk := newFakeClock(t0)
	c := NewClients(ClientsOptions{Max: 4, Window: clk.opts(time.Minute, 6)})
	c.Record("alice", 10, 1000)
	c.Record("alice", 5, 500)
	c.Record("bob", 1, 100)
	c.Record("", 2, 0) // empty key folds into the overflow row

	snap := c.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot rows = %d, want 3", len(snap))
	}
	byKey := make(map[string]ClientStats)
	for _, s := range snap {
		byKey[s.Key] = s
	}
	a := byKey["alice"]
	if a.Requests != 2 || a.Rows != 15 || a.Bytes != 1500 || a.WindowRequests != 2 {
		t.Errorf("alice = %+v", a)
	}
	if o := byKey[OverflowKey]; o.Requests != 1 || o.Rows != 2 {
		t.Errorf("overflow = %+v", o)
	}
	// Sorted by window requests descending: alice first.
	if snap[0].Key != "alice" {
		t.Errorf("snapshot[0] = %q, want alice", snap[0].Key)
	}
}

// TestClientsEviction proves the cardinality bound and conservation: evicted
// clients' cumulative totals fold into "other", window counts are dropped.
func TestClientsEviction(t *testing.T) {
	clk := newFakeClock(t0)
	c := NewClients(ClientsOptions{Max: 3, Window: clk.opts(time.Minute, 6)})
	for i := 0; i < 10; i++ {
		c.Record(fmt.Sprintf("client-%d", i), 1, 10)
		clk.Advance(time.Millisecond) // distinct lastSeen ordering
	}
	snap := c.Snapshot()
	// 3 tracked + overflow.
	if len(snap) != 4 {
		t.Fatalf("snapshot rows = %d, want 4", len(snap))
	}
	var totalReq, totalBytes uint64
	var haveOther bool
	for _, s := range snap {
		totalReq += s.Requests
		totalBytes += s.Bytes
		if s.Key == OverflowKey {
			haveOther = true
			if s.Requests != 7 {
				t.Errorf("overflow requests = %d, want 7", s.Requests)
			}
		}
	}
	if !haveOther {
		t.Fatal("no overflow row after eviction")
	}
	// Conservation: cumulative totals survive eviction.
	if totalReq != 10 || totalBytes != 100 {
		t.Errorf("totals = %d req / %d bytes, want 10 / 100", totalReq, totalBytes)
	}
	// The survivors are the most recently seen.
	for _, s := range snap {
		if s.Key == OverflowKey {
			continue
		}
		switch s.Key {
		case "client-7", "client-8", "client-9":
		default:
			t.Errorf("unexpected survivor %q (want the 3 most recent)", s.Key)
		}
	}
}

func TestClientsLRUTouchKeepsActive(t *testing.T) {
	clk := newFakeClock(t0)
	c := NewClients(ClientsOptions{Max: 2, Window: clk.opts(time.Minute, 6)})
	c.Record("old-but-active", 1, 0)
	clk.Advance(time.Second)
	c.Record("idle", 1, 0)
	clk.Advance(time.Second)
	c.Record("old-but-active", 1, 0) // refreshes lastSeen past "idle"
	clk.Advance(time.Second)
	c.Record("newcomer", 1, 0) // must evict "idle", not "old-but-active"

	keys := make(map[string]bool)
	for _, s := range c.Snapshot() {
		keys[s.Key] = true
	}
	if !keys["old-but-active"] || !keys["newcomer"] || keys["idle"] {
		t.Fatalf("tracked keys = %v, want old-but-active + newcomer + overflow", keys)
	}
}
