package telemetry

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// A Clause is one parsed SLO objective, e.g. "estimate:p99<250ms" or
// "error_rate<1%". Scope selects an endpoint's window ("" = all request
// traffic); Metric is a windowed latency quantile (p50/p90/p99/p999) or
// error_rate.
type Clause struct {
	// Scope is the endpoint the clause binds to; empty means the merged
	// traffic of every estimation endpoint.
	Scope string
	// Metric is "p50", "p90", "p99", "p999" or "error_rate".
	Metric string
	// Quantile is the parsed quantile for pXX metrics (0 for error_rate).
	Quantile float64
	// Limit is the objective: seconds for latency metrics, a 0..1 ratio for
	// error_rate. Compliance is Limit-inclusive (current ≤ Limit).
	Limit float64
}

// String renders the canonical clause form used as the /metrics label and
// the /healthz clause name.
func (c Clause) String() string {
	var v string
	if c.Metric == "error_rate" {
		v = strconv.FormatFloat(c.Limit*100, 'g', -1, 64) + "%"
	} else {
		v = time.Duration(c.Limit * float64(time.Second)).String()
	}
	if c.Scope != "" {
		return c.Scope + ":" + c.Metric + "<" + v
	}
	return c.Metric + "<" + v
}

// quantiles maps the recognized latency metrics.
var quantiles = map[string]float64{
	"p50": 0.50, "p90": 0.90, "p99": 0.99, "p999": 0.999,
}

// ParseSLO parses a comma-separated clause list, e.g.
// "estimate:p99<250ms,error_rate<1%". Each clause is
// [scope:]metric<value where value is a Go duration (latency metrics) or a
// percentage / ratio (error_rate).
func ParseSLO(s string) ([]Clause, error) {
	var clauses []Clause
	for _, raw := range strings.Split(s, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		expr := raw
		var c Clause
		if i := strings.IndexByte(expr, ':'); i >= 0 {
			c.Scope = strings.TrimSpace(expr[:i])
			expr = expr[i+1:]
		}
		metric, val, ok := strings.Cut(expr, "<")
		if !ok {
			return nil, fmt.Errorf("slo clause %q: want [scope:]metric<value", raw)
		}
		metric = strings.TrimSpace(strings.TrimSuffix(metric, "="))
		val = strings.TrimSpace(strings.TrimPrefix(val, "="))
		c.Metric = metric
		switch {
		case metric == "error_rate":
			ratio, err := parseRatio(val)
			if err != nil {
				return nil, fmt.Errorf("slo clause %q: %v", raw, err)
			}
			c.Limit = ratio
		default:
			q, ok := quantiles[metric]
			if !ok {
				return nil, fmt.Errorf("slo clause %q: unknown metric %q (want p50, p90, p99, p999 or error_rate)", raw, metric)
			}
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("slo clause %q: bad latency objective %q", raw, val)
			}
			c.Quantile = q
			c.Limit = d.Seconds()
		}
		clauses = append(clauses, c)
	}
	if len(clauses) == 0 {
		return nil, fmt.Errorf("empty slo clause list")
	}
	return clauses, nil
}

// parseRatio accepts "1%" or a bare 0..1 ratio like "0.01".
func parseRatio(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bad rate %q", s)
	}
	if pct {
		v /= 100
	}
	if v < 0 || v > 1 || math.IsNaN(v) {
		return 0, fmt.Errorf("rate %q outside [0,1]", s)
	}
	return v, nil
}

// ScopeStats is one evaluation input: the scope's windowed latency sketch
// and its windowed request/error counts.
type ScopeStats struct {
	Latency  Hist
	Requests uint64
	Errors   uint64
}

// Source resolves a clause scope to its current windowed stats.
type Source func(scope string) ScopeStats

// EvaluatorOptions tunes the SLO evaluator.
type EvaluatorOptions struct {
	// Interval paces MaybeTick-driven evaluation; default 5s.
	Interval time.Duration
	// DegradeAfter is the consecutive breaching evaluations before the
	// evaluator reports Degraded (the /healthz "degraded" status); default 3
	// — one bad scrape never flaps the probe.
	DegradeAfter int
	// HistoryTicks sizes the compliance-ratio window (fraction of recent
	// evaluations compliant); default 60.
	HistoryTicks int
	// Clock injects time; nil selects time.Now.
	Clock Clock
}

func (o EvaluatorOptions) withDefaults() EvaluatorOptions {
	if o.Interval <= 0 {
		o.Interval = 5 * time.Second
	}
	if o.DegradeAfter <= 0 {
		o.DegradeAfter = 3
	}
	if o.HistoryTicks <= 0 {
		o.HistoryTicks = 60
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// clauseState is one clause's evaluation history.
type clauseState struct {
	current     float64 // last evaluated value (seconds or ratio)
	hasData     bool    // scope had samples at the last evaluation
	compliant   bool
	breaches    uint64 // evaluations in violation, monotone
	consecutive int    // current run of breaching evaluations
	history     []bool // ring of recent outcomes
	histIdx     int
	histLen     int
}

// Evaluator periodically scores SLO clauses against windowed stats. Ticks
// are self-paced: call MaybeTick from any request path (it no-ops between
// intervals) and optionally Run a background ticker so objectives keep
// being scored on an idle server.
type Evaluator struct {
	clauses []Clause
	src     Source
	opt     EvaluatorOptions

	mu       sync.Mutex
	lastTick time.Time
	ticks    uint64
	states   []clauseState
}

// NewEvaluator builds an evaluator over the given clauses.
func NewEvaluator(clauses []Clause, src Source, opt EvaluatorOptions) *Evaluator {
	opt = opt.withDefaults()
	e := &Evaluator{clauses: clauses, src: src, opt: opt, states: make([]clauseState, len(clauses))}
	for i := range e.states {
		e.states[i].compliant = true
		e.states[i].history = make([]bool, opt.HistoryTicks)
	}
	return e
}

// Clauses returns the evaluator's parsed clause list.
func (e *Evaluator) Clauses() []Clause { return e.clauses }

// Interval reports the evaluation cadence.
func (e *Evaluator) Interval() time.Duration { return e.opt.Interval }

// MaybeTick evaluates every clause if at least one interval elapsed since
// the last evaluation; otherwise it returns immediately. Cheap enough to
// call once per request completion and per scrape.
func (e *Evaluator) MaybeTick() {
	now := e.opt.Clock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.lastTick.IsZero() && now.Sub(e.lastTick) < e.opt.Interval {
		return
	}
	e.tickLocked(now)
}

// Tick forces one evaluation now, regardless of pacing — the test and
// background-ticker entry point.
func (e *Evaluator) Tick() {
	now := e.opt.Clock()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tickLocked(now)
}

func (e *Evaluator) tickLocked(now time.Time) {
	e.lastTick = now
	e.ticks++
	for i, c := range e.clauses {
		st := &e.states[i]
		stats := e.src(c.Scope)
		switch c.Metric {
		case "error_rate":
			st.hasData = stats.Requests > 0
			st.current = 0
			if st.hasData {
				st.current = float64(stats.Errors) / float64(stats.Requests)
			}
		default:
			st.hasData = stats.Latency.Count() > 0
			st.current = 0
			if st.hasData {
				q, _ := stats.Latency.Quantile(c.Quantile)
				st.current = q.Seconds()
			}
		}
		// A windowed objective over no traffic is vacuously met: an idle
		// server must not breach, and a zero-sample p99 is not 0ms.
		st.compliant = !st.hasData || st.current <= c.Limit
		if st.compliant {
			st.consecutive = 0
		} else {
			st.breaches++
			st.consecutive++
		}
		st.history[st.histIdx] = st.compliant
		st.histIdx = (st.histIdx + 1) % len(st.history)
		if st.histLen < len(st.history) {
			st.histLen++
		}
	}
}

// Run evaluates on every interval until ctx is done — the background pacing
// for idle servers. Call as a goroutine; MaybeTick callers stay correct
// whether or not Run is active.
func (e *Evaluator) Run(done <-chan struct{}) {
	t := time.NewTicker(e.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			e.Tick()
		}
	}
}

// ClauseStatus is one clause's externally visible state.
type ClauseStatus struct {
	// Clause is the canonical clause string (the /metrics label).
	Clause string
	Scope  string
	Metric string
	// Limit is the objective in seconds (latency) or as a ratio (error_rate).
	Limit float64
	// Current is the last evaluated value in the same unit; 0 with
	// HasData=false when the window held no samples.
	Current float64
	HasData bool
	// Compliant is the last evaluation's verdict (vacuously true with no
	// data).
	Compliant bool
	// ComplianceRatio is the fraction of recent evaluations compliant
	// (1 before any evaluation ran).
	ComplianceRatio float64
	// Breaches counts evaluations in violation since startup, monotone.
	Breaches uint64
	// Consecutive is the current run of breaching evaluations; Degraded
	// flips at the evaluator's DegradeAfter.
	Consecutive int
}

// Status is the evaluator's externally visible state.
type Status struct {
	// Degraded is true while any clause has breached DegradeAfter
	// consecutive evaluations.
	Degraded bool
	// Ticks counts evaluations since startup.
	Ticks uint64
	// Interval is the evaluation cadence.
	Interval time.Duration
	Clauses  []ClauseStatus
}

// Status snapshots every clause.
func (e *Evaluator) Status() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := Status{Ticks: e.ticks, Interval: e.opt.Interval, Clauses: make([]ClauseStatus, len(e.clauses))}
	for i, c := range e.clauses {
		st := &e.states[i]
		ratio := 1.0
		if st.histLen > 0 {
			good := 0
			for j := 0; j < st.histLen; j++ {
				if st.history[j] {
					good++
				}
			}
			ratio = float64(good) / float64(st.histLen)
		}
		out.Clauses[i] = ClauseStatus{
			Clause:          c.String(),
			Scope:           c.Scope,
			Metric:          c.Metric,
			Limit:           c.Limit,
			Current:         st.current,
			HasData:         st.hasData,
			Compliant:       st.compliant,
			ComplianceRatio: ratio,
			Breaches:        st.breaches,
			Consecutive:     st.consecutive,
		}
		if st.consecutive >= e.opt.DegradeAfter {
			out.Degraded = true
		}
	}
	return out
}
