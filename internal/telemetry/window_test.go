package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a deterministic, concurrency-safe test clock. All telemetry
// time flows through the injected Clock, so tests drive epoch boundaries
// and clock jumps explicitly — no sleeps, no time.Now.
type fakeClock struct {
	nanos atomic.Int64
}

func newFakeClock(start time.Time) *fakeClock {
	c := &fakeClock{}
	c.nanos.Store(start.UnixNano())
	return c
}

func (c *fakeClock) Now() time.Time              { return time.Unix(0, c.nanos.Load()) }
func (c *fakeClock) Advance(d time.Duration)     { c.nanos.Add(int64(d)) }
func (c *fakeClock) Set(t time.Time)             { c.nanos.Store(t.UnixNano()) }
func (c *fakeClock) opts(l time.Duration, n int) WindowOptions {
	return WindowOptions{Length: l, Slots: n, Clock: c.Now}
}

var t0 = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

// oracleQuantile is the brute-force reference: exact nearest-rank quantile
// over the retained samples.
func oracleQuantile(samples []time.Duration, q float64) time.Duration {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(math.Ceil(q*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// TestWindowQuantileVsOracle records a randomized sample set and checks the
// sketch's quantiles against the exact sorted-sample oracle within the
// bucket layout's resolution.
func TestWindowQuantileVsOracle(t *testing.T) {
	clk := newFakeClock(t0)
	w := NewWindow(clk.opts(time.Minute, 6))
	rng := rand.New(rand.NewSource(42))
	var samples []time.Duration
	for i := 0; i < 5000; i++ {
		// Log-uniform over 20µs .. 2s — the realistic request-latency span.
		d := time.Duration(2e4 * math.Pow(1e5, rng.Float64()))
		samples = append(samples, d)
		w.Observe(d)
		if i%100 == 0 {
			clk.Advance(time.Second) // spread across slots, within the window
		}
	}
	h := w.Snapshot()
	if h.Count() != uint64(len(samples)) {
		t.Fatalf("merged count = %d, want %d", h.Count(), len(samples))
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got, ok := h.Quantile(q)
		if !ok {
			t.Fatalf("q%g: no data", q)
		}
		want := oracleQuantile(samples, q)
		rel := math.Abs(got.Seconds()-want.Seconds()) / want.Seconds()
		// One bucket is a 9% ratio; interpolation error stays within it.
		if rel > 0.10 {
			t.Errorf("q%g = %v, oracle %v (rel err %.3f > 0.10)", q, got, want, rel)
		}
	}
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	if h.Sum() != sum {
		t.Errorf("merged sum = %v, want %v", h.Sum(), sum)
	}
}

// TestWindowExpiry proves old epochs fall out of the merge as the clock
// advances: the window forgets, without unbounded memory.
func TestWindowExpiry(t *testing.T) {
	clk := newFakeClock(t0)
	w := NewWindow(clk.opts(time.Minute, 6)) // 10s epochs
	w.Observe(time.Millisecond)
	w.Observe(2 * time.Millisecond)
	if got := w.Snapshot().Count(); got != 2 {
		t.Fatalf("fresh count = %d, want 2", got)
	}
	clk.Advance(30 * time.Second)
	w.Observe(3 * time.Millisecond)
	if got := w.Snapshot().Count(); got != 3 {
		t.Fatalf("mid-window count = %d, want 3", got)
	}
	clk.Advance(40 * time.Second) // first two samples now out of the window
	if got := w.Snapshot().Count(); got != 1 {
		t.Fatalf("after expiry count = %d, want 1", got)
	}
	clk.Advance(2 * time.Minute) // everything expired
	if got := w.Snapshot().Count(); got != 0 {
		t.Fatalf("after full expiry count = %d, want 0", got)
	}
}

// TestWindowZeroSamples: an empty window has no quantile.
func TestWindowZeroSamples(t *testing.T) {
	clk := newFakeClock(t0)
	w := NewWindow(clk.opts(time.Minute, 6))
	h := w.Snapshot()
	if h.Count() != 0 {
		t.Fatalf("count = %d, want 0", h.Count())
	}
	if _, ok := h.Quantile(0.99); ok {
		t.Error("Quantile on empty window reported ok")
	}
	if h.Mean() != 0 {
		t.Errorf("Mean on empty window = %v", h.Mean())
	}
}

// TestWindowClockJumps drives the fake clock backwards and far forwards:
// backward jumps keep recording into the newest epoch (never lose or
// time-travel samples), forward jumps past the whole ring leave a clean
// window.
func TestWindowClockJumps(t *testing.T) {
	clk := newFakeClock(t0)
	w := NewWindow(clk.opts(time.Minute, 6))
	w.Observe(time.Millisecond)
	clk.Advance(-25 * time.Second) // backwards past two epoch boundaries
	w.Observe(2 * time.Millisecond)
	clk.Advance(25 * time.Second) // restore
	if got := w.Snapshot().Count(); got != 2 {
		t.Fatalf("count after backward jump = %d, want 2 (sample clamped to newest epoch)", got)
	}

	// Reader's clock behind the writer's: the merge must still see the
	// newest slot (it trusts the max of read clock and current epoch).
	clk.Advance(-15 * time.Second)
	if got := w.Snapshot().Count(); got != 2 {
		t.Fatalf("count with lagging read clock = %d, want 2", got)
	}
	clk.Advance(15 * time.Second)

	// Forward jump far past the ring: everything expires, then new samples
	// land in recycled slots with zeroed state.
	clk.Advance(24 * time.Hour)
	if got := w.Snapshot().Count(); got != 0 {
		t.Fatalf("count after forward jump = %d, want 0", got)
	}
	w.Observe(5 * time.Millisecond)
	h := w.Snapshot()
	if h.Count() != 1 {
		t.Fatalf("count after recycle = %d, want 1", h.Count())
	}
	if q, ok := h.Quantile(0.5); !ok || q > 6*time.Millisecond || q < 4*time.Millisecond {
		t.Errorf("recycled-slot p50 = %v ok=%v, want ~5ms", q, ok)
	}
}

// TestWindowEpochBoundaryConcurrent hammers Observe from many goroutines
// while another goroutine walks the clock across epoch boundaries and
// merges concurrently. Run under -race this proves the rotation discipline;
// the final merged count must equal the samples still inside the window
// (every sample recorded after the last expiring boundary).
func TestWindowEpochBoundaryConcurrent(t *testing.T) {
	clk := newFakeClock(t0)
	w := NewWindow(clk.opts(time.Second, 4)) // 250ms epochs
	const writers = 8
	const perWriter = 2000

	var phase atomic.Int64 // current epoch step, bumped by the clock walker
	counts := make([][]uint64, writers)
	for i := range counts {
		counts[i] = make([]uint64, 64)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Clock walker: advance one epoch at a time, snapshotting in between.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 16; i++ {
			clk.Advance(250 * time.Millisecond)
			phase.Add(1)
			w.Snapshot() // concurrent merges must be race-free
		}
		close(stop)
	}()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := phase.Load()
				w.Observe(time.Millisecond)
				// The sample landed in epoch p or a later one (the walker
				// may advance mid-Observe) — tally the earliest possible.
				counts[g][p]++
			}
		}(g)
	}
	wg.Wait()

	// After the walker stops, the window covers the last 4 epochs. Samples
	// tallied at phase ≥ 16-4 are certainly inside; the merged count must
	// be at least those and at most the total.
	var lowerBound, total uint64
	for g := range counts {
		for p, n := range counts[g] {
			total += n
			if p >= 12 {
				lowerBound += n
			}
		}
	}
	got := w.Snapshot().Count()
	if got < lowerBound || got > total {
		t.Fatalf("merged count %d outside [%d, %d]", got, lowerBound, total)
	}
}

// TestCounterWindow covers the sliding counter's rotation and expiry.
func TestCounterWindow(t *testing.T) {
	clk := newFakeClock(t0)
	c := NewCounter(clk.opts(time.Minute, 6))
	c.Add(5)
	clk.Advance(30 * time.Second)
	c.Add(7)
	if got := c.Total(); got != 12 {
		t.Fatalf("total = %d, want 12", got)
	}
	clk.Advance(40 * time.Second)
	if got := c.Total(); got != 7 {
		t.Fatalf("total after expiry = %d, want 7", got)
	}
	clk.Advance(time.Hour)
	if got := c.Total(); got != 0 {
		t.Fatalf("total after full expiry = %d, want 0", got)
	}
}

// TestCounterConcurrent: concurrent Add across epoch boundaries conserves
// the in-window total (race-checked).
func TestCounterConcurrent(t *testing.T) {
	clk := newFakeClock(t0)
	c := NewCounter(clk.opts(10*time.Second, 5))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1)
			}
		}()
	}
	// Walk the clock within the window while writers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			clk.Advance(2 * time.Second)
			c.Total()
		}
	}()
	wg.Wait()
	if got := c.Total(); got != 8000 {
		t.Fatalf("total = %d, want 8000 (all adds within the window)", got)
	}
}

// TestBucketIndex pins the bucket search at the edges.
func TestBucketIndex(t *testing.T) {
	if got := bucketIndex(-time.Second); got != 0 {
		t.Errorf("negative → bucket %d, want 0", got)
	}
	if got := bucketIndex(0); got != 0 {
		t.Errorf("zero → bucket %d, want 0", got)
	}
	if got := bucketIndex(bucketBounds[0]); got != 0 {
		t.Errorf("first bound → bucket %d, want 0", got)
	}
	if got := bucketIndex(bucketBounds[0] + 1); got != 1 {
		t.Errorf("just past first bound → bucket %d, want 1", got)
	}
	last := bucketBounds[len(bucketBounds)-1]
	if got := bucketIndex(last + time.Hour); got != len(bucketBounds) {
		t.Errorf("overflow → bucket %d, want %d", got, len(bucketBounds))
	}
	for i := 1; i < len(bucketBounds); i++ {
		if bucketBounds[i] <= bucketBounds[i-1] {
			t.Fatalf("bounds not increasing at %d: %v, %v", i, bucketBounds[i-1], bucketBounds[i])
		}
	}
}
