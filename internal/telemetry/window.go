// Package telemetry provides the service's windowed observability
// primitives: lock-cheap sliding-window latency sketches (Window), windowed
// event counters (Counter), a configurable SLO evaluator (Evaluator), and
// bounded-cardinality per-client accounting (Clients).
//
// The sketches answer "what is my p99 over the last minute" without
// unbounded memory: each Window keeps a small ring of fixed-bucket
// histograms, one per wall-clock epoch, and merges the live slots on read.
// Writers touch only atomics on the hot path; the single mutex guards epoch
// rotation, taken once per epoch per ring.
//
// Every type takes an injectable Clock so tests can drive epoch boundaries
// and clock jumps deterministically — no code in the record or merge path
// calls time.Now directly.
package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts time.Now for deterministic tests.
type Clock func() time.Time

// Bucket layout shared by every Window: geometric bounds from bucketMin
// growing by bucketRatio per bucket, plus one unbounded overflow bucket.
// The ratio bounds the worst-case quantile error at ~9% before
// interpolation — tight enough for SLO verdicts and the load harness's
// client/server agreement check.
const (
	bucketMin   = 10 * time.Microsecond
	bucketRatio = 1.0905077326652577 // 2^(1/8)
	bucketMax   = 10 * time.Minute   // smallest bound ≥ this ends the table
)

// bucketBounds[i] is the inclusive upper bound of bucket i; the final
// overflow bucket has no bound.
var bucketBounds = makeBounds()

// numBuckets counts the bounded buckets plus the overflow bucket.
var numBuckets = len(bucketBounds) + 1

func makeBounds() []time.Duration {
	var bounds []time.Duration
	b := float64(bucketMin)
	for {
		d := time.Duration(math.Round(b))
		bounds = append(bounds, d)
		if d >= bucketMax {
			return bounds
		}
		b *= bucketRatio
	}
}

// bucketIndex maps a duration to its bucket by binary search over the
// bounds; negative durations clamp to bucket 0.
func bucketIndex(d time.Duration) int {
	if d <= bucketBounds[0] {
		return 0
	}
	lo, hi := 1, len(bucketBounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if d <= bucketBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo // == len(bucketBounds) means overflow
}

// WindowOptions configures a Window or Counter ring.
type WindowOptions struct {
	// Length is the total sliding window merged on read; default 60s.
	Length time.Duration
	// Slots is the ring granularity: the window is divided into this many
	// epochs (plus one spare so a full window is always mergeable while the
	// current epoch fills). Default 6.
	Slots int
	// Clock injects time; nil selects time.Now.
	Clock Clock
}

func (o WindowOptions) withDefaults() WindowOptions {
	if o.Length <= 0 {
		o.Length = time.Minute
	}
	if o.Slots <= 0 {
		o.Slots = 6
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// histSlot is one epoch's histogram. All fields are atomics: writers never
// take a lock.
type histSlot struct {
	epoch  atomic.Int64
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	counts []atomic.Uint64
}

// Window is a sliding-window latency sketch: a ring of per-epoch fixed
// bucket histograms rotated on the wall clock and merged on read. Safe for
// concurrent use; Observe is wait-free except on the first observation of a
// new epoch.
type Window struct {
	epoch time.Duration
	n     int // live epochs merged on read
	clock Clock

	mu   sync.Mutex // rotation only
	ring []atomic.Pointer[histSlot]
	cur  atomic.Pointer[histSlot]
}

// NewWindow builds a sliding-window sketch.
func NewWindow(opt WindowOptions) *Window {
	opt = opt.withDefaults()
	return &Window{
		epoch: opt.Length / time.Duration(opt.Slots),
		n:     opt.Slots,
		clock: opt.Clock,
		ring:  make([]atomic.Pointer[histSlot], opt.Slots+1),
	}
}

// Length reports the configured window span.
func (w *Window) Length() time.Duration { return w.epoch * time.Duration(w.n) }

// Observe records one duration into the current epoch's histogram.
func (w *Window) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := w.slot()
	s.counts[bucketIndex(d)].Add(1)
	s.count.Add(1)
	s.sum.Add(d.Nanoseconds())
}

// slot returns the histogram of the current epoch, rotating the ring when
// the epoch advanced. A backwards clock jump keeps recording into the
// newest slot (samples never travel back in time); a forward jump past the
// whole ring lands in a freshly reset slot, and the stale slots simply
// never satisfy the merge-window check again.
func (w *Window) slot() *histSlot {
	e := int64(w.clock().UnixNano()) / int64(w.epoch)
	if s := w.cur.Load(); s != nil && s.epoch.Load() == e {
		return s
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if s := w.cur.Load(); s != nil {
		if ce := s.epoch.Load(); ce >= e {
			return s // lost the rotation race, or the clock jumped back
		}
	}
	i := int(e % int64(len(w.ring)))
	if i < 0 {
		i += len(w.ring)
	}
	s := w.ring[i].Load()
	if s == nil {
		s = &histSlot{counts: make([]atomic.Uint64, numBuckets)}
		w.ring[i].Store(s)
	} else {
		// Reused slots held epoch e-(ring length) or older — always outside
		// the merge window, so zeroing here cannot race a merge that still
		// counts them. A writer stalled for a full window could land a
		// sample in the new epoch; that misattribution is bounded by one
		// sample per stalled goroutine.
		for j := range s.counts {
			s.counts[j].Store(0)
		}
		s.count.Store(0)
		s.sum.Store(0)
	}
	s.epoch.Store(e)
	w.cur.Store(s)
	return s
}

// Snapshot merges the live epochs into one histogram value. The merge is a
// sequence of atomic loads racing live writers, so a snapshot taken under
// load can be off by the in-flight observations — the standard tolerance
// for lock-free telemetry.
func (w *Window) Snapshot() Hist {
	e := int64(w.clock().UnixNano()) / int64(w.epoch)
	if s := w.cur.Load(); s != nil {
		if ce := s.epoch.Load(); ce > e {
			e = ce // reader's clock lags a writer's: trust the writes
		}
	}
	h := Hist{counts: make([]uint64, numBuckets)}
	for i := range w.ring {
		s := w.ring[i].Load()
		if s == nil {
			continue
		}
		if se := s.epoch.Load(); se <= e-int64(w.n) || se > e {
			continue
		}
		for j := range s.counts {
			h.counts[j] += s.counts[j].Load()
		}
		h.count += s.count.Load()
		h.sum += time.Duration(s.sum.Load())
	}
	return h
}

// Hist is a merged histogram snapshot.
type Hist struct {
	counts []uint64
	count  uint64
	sum    time.Duration
}

// Count reports the number of merged observations.
func (h Hist) Count() uint64 { return h.count }

// Sum reports the merged duration total.
func (h Hist) Sum() time.Duration { return h.sum }

// Mean reports the merged average (0 when empty).
func (h Hist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Merge folds another snapshot into h (for cross-endpoint SLO scopes).
func (h *Hist) Merge(o Hist) {
	if o.count == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make([]uint64, numBuckets)
	}
	for i := range o.counts {
		h.counts[i] += o.counts[i]
	}
	h.count += o.count
	h.sum += o.sum
}

// Quantile estimates the q-quantile (0 < q ≤ 1) by nearest rank with linear
// interpolation inside the landing bucket. ok is false when the window holds
// no samples. The overflow bucket clamps to the largest bound.
func (h Hist) Quantile(q float64) (time.Duration, bool) {
	if h.count == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if cum+c >= target {
			hi := bucketBounds[len(bucketBounds)-1]
			lo := hi
			if i < len(bucketBounds) {
				hi = bucketBounds[i]
				lo = time.Duration(0)
				if i > 0 {
					lo = bucketBounds[i-1]
				}
			}
			frac := float64(target-cum) / float64(c)
			return lo + time.Duration(float64(hi-lo)*frac), true
		}
		cum += c
	}
	return bucketBounds[len(bucketBounds)-1], true
}

// cntSlot is one epoch of a Counter.
type cntSlot struct {
	epoch atomic.Int64
	v     atomic.Uint64
}

// Counter is a sliding-window event counter: Add lands in the current
// epoch, Total merges the live epochs. Same rotation discipline as Window.
type Counter struct {
	epoch time.Duration
	n     int
	clock Clock

	mu   sync.Mutex
	ring []atomic.Pointer[cntSlot]
	cur  atomic.Pointer[cntSlot]
}

// NewCounter builds a sliding-window counter.
func NewCounter(opt WindowOptions) *Counter {
	opt = opt.withDefaults()
	return &Counter{
		epoch: opt.Length / time.Duration(opt.Slots),
		n:     opt.Slots,
		clock: opt.Clock,
		ring:  make([]atomic.Pointer[cntSlot], opt.Slots+1),
	}
}

// Length reports the configured window span.
func (c *Counter) Length() time.Duration { return c.epoch * time.Duration(c.n) }

// Add records n events in the current epoch.
func (c *Counter) Add(n uint64) {
	c.slot().v.Add(n)
}

func (c *Counter) slot() *cntSlot {
	e := int64(c.clock().UnixNano()) / int64(c.epoch)
	if s := c.cur.Load(); s != nil && s.epoch.Load() == e {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.cur.Load(); s != nil {
		if ce := s.epoch.Load(); ce >= e {
			return s
		}
	}
	i := int(e % int64(len(c.ring)))
	if i < 0 {
		i += len(c.ring)
	}
	s := c.ring[i].Load()
	if s == nil {
		s = &cntSlot{}
		c.ring[i].Store(s)
	} else {
		s.v.Store(0)
	}
	s.epoch.Store(e)
	c.cur.Store(s)
	return s
}

// Total merges the live epochs' counts.
func (c *Counter) Total() uint64 {
	e := int64(c.clock().UnixNano()) / int64(c.epoch)
	if s := c.cur.Load(); s != nil {
		if ce := s.epoch.Load(); ce > e {
			e = ce
		}
	}
	var total uint64
	for i := range c.ring {
		s := c.ring[i].Load()
		if s == nil {
			continue
		}
		if se := s.epoch.Load(); se <= e-int64(c.n) || se > e {
			continue
		}
		total += s.v.Load()
	}
	return total
}
