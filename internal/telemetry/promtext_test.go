package telemetry

import (
	"strings"
	"testing"
)

func TestParseProm(t *testing.T) {
	const exposition = `# HELP leqad_requests_total Requests by endpoint.
# TYPE leqad_requests_total counter
leqad_requests_total{endpoint="estimate"} 42
leqad_requests_total{endpoint="sweep"} 7
leqad_request_latency_window_seconds{endpoint="estimate",quantile="0.99"} 0.125
leqad_slo_compliance_ratio{clause="estimate:p99<250ms"} 0.95
leqad_queue_depth 3
leqad_memo_hits_total 1e3

leqad_odd_label{msg="a,b\"c"} 1
`
	m, err := ParseProm(strings.NewReader(exposition))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Value("leqad_requests_total", map[string]string{"endpoint": "estimate"}); !ok || v != 42 {
		t.Errorf("estimate requests = %v ok=%v, want 42", v, ok)
	}
	if got := m.Sum("leqad_requests_total"); got != 49 {
		t.Errorf("Sum = %v, want 49", got)
	}
	if v, ok := m.Value("leqad_request_latency_window_seconds", map[string]string{"endpoint": "estimate", "quantile": "0.99"}); !ok || v != 0.125 {
		t.Errorf("windowed p99 = %v ok=%v, want 0.125", v, ok)
	}
	if v, ok := m.Value("leqad_slo_compliance_ratio", map[string]string{"clause": "estimate:p99<250ms"}); !ok || v != 0.95 {
		t.Errorf("compliance = %v ok=%v", v, ok)
	}
	if v, ok := m.Value("leqad_queue_depth", nil); !ok || v != 3 {
		t.Errorf("queue depth = %v ok=%v", v, ok)
	}
	if v, ok := m.Value("leqad_memo_hits_total", nil); !ok || v != 1000 {
		t.Errorf("scientific notation = %v ok=%v", v, ok)
	}
	if v, ok := m.Value("leqad_odd_label", map[string]string{"msg": `a,b"c`}); !ok || v != 1 {
		t.Errorf("quoted label = %v ok=%v", v, ok)
	}
	// Subset match: missing label key on the sample fails the match.
	if _, ok := m.Value("leqad_queue_depth", map[string]string{"endpoint": "x"}); ok {
		t.Error("label subset matched an unlabeled sample")
	}
}

func TestParsePromMalformed(t *testing.T) {
	for _, bad := range []string{
		"leqad_x{unterminated 1",
		"leqad_x notanumber",
		"leqad_x 1 2 3",
		`leqad_x{k=unquoted} 1`,
	} {
		if _, err := ParseProm(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseProm(%q): want error", bad)
		}
	}
}
