package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromSample is one parsed Prometheus text-exposition sample line.
type PromSample struct {
	Name   string
	Labels map[string]string // nil when unlabeled
	Value  float64
}

// PromMetrics indexes parsed samples by series name (as written, so
// histogram components keep their _bucket/_sum/_count suffixes). It is the
// scrape-side counterpart of the server's hand-rolled exposition — just
// enough parser for cmd/leqaload to read windowed percentiles and SLO
// series back out of /metrics.
type PromMetrics map[string][]PromSample

// ParseProm parses the Prometheus text format, skipping comments. A
// malformed sample line is an error: the harness should fail loudly on an
// exposition bug rather than silently dropping series.
func ParseProm(r io.Reader) (PromMetrics, error) {
	m := make(PromMetrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: %w", lineNo, err)
		}
		m[s.Name] = append(m[s.Name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

func parsePromLine(line string) (PromSample, error) {
	var s PromSample
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.Name = line[:i]
		end := strings.LastIndexByte(line, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set: %q", line)
		}
		s.Labels = make(map[string]string)
		for _, pair := range splitPromLabels(line[i+1 : end]) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				return s, fmt.Errorf("bad label %q", pair)
			}
			uq, err := strconv.Unquote(v)
			if err != nil {
				return s, fmt.Errorf("bad label value %q: %v", pair, err)
			}
			s.Labels[strings.TrimSpace(k)] = uq
		}
		rest = strings.TrimSpace(line[end+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return s, fmt.Errorf("malformed sample %q", line)
		}
		s.Name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

// splitPromLabels splits k1="v1",k2="v2" on commas outside quotes.
func splitPromLabels(s string) []string {
	var out []string
	inQuote := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inQuote = !inQuote
			}
		case ',':
			if !inQuote {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// Value returns the sample of name whose labels include every key/value in
// want (extra labels on the sample are fine).
func (m PromMetrics) Value(name string, want map[string]string) (float64, bool) {
	for _, s := range m[name] {
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Sum totals every sample of name across label sets.
func (m PromMetrics) Sum(name string) float64 {
	var t float64
	for _, s := range m[name] {
		t += s.Value
	}
	return t
}
