package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestParseSLO(t *testing.T) {
	cases := []struct {
		in      string
		want    []string // canonical String() forms
		wantErr string
	}{
		{in: "estimate:p99<250ms,error_rate<1%", want: []string{"estimate:p99<250ms", "error_rate<1%"}},
		{in: "p50<10ms", want: []string{"p50<10ms"}},
		{in: "sweep:p999<=2s", want: []string{"sweep:p999<2s"}},
		{in: "error_rate<0.05", want: []string{"error_rate<5%"}},
		{in: " grid:p90<1.5s , ", want: []string{"grid:p90<1.5s"}},
		{in: "", wantErr: "empty"},
		{in: "p42<1s", wantErr: "unknown metric"},
		{in: "p99>1s", wantErr: "want [scope:]metric<value"},
		{in: "p99<banana", wantErr: "bad latency objective"},
		{in: "p99<-3ms", wantErr: "bad latency objective"},
		{in: "error_rate<150%", wantErr: "outside [0,1]"},
		{in: "error_rate<oops", wantErr: "bad rate"},
	}
	for _, tc := range cases {
		clauses, err := ParseSLO(tc.in)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseSLO(%q) err = %v, want containing %q", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSLO(%q): %v", tc.in, err)
			continue
		}
		var got []string
		for _, c := range clauses {
			got = append(got, c.String())
		}
		if len(got) != len(tc.want) {
			t.Errorf("ParseSLO(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseSLO(%q)[%d] = %q, want %q", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}

// sloHarness wires an evaluator to a mutable stats source.
type sloHarness struct {
	clk   *fakeClock
	stats map[string]ScopeStats
	ev    *Evaluator
}

func newSLOHarness(t *testing.T, slo string, opt EvaluatorOptions) *sloHarness {
	t.Helper()
	clauses, err := ParseSLO(slo)
	if err != nil {
		t.Fatal(err)
	}
	h := &sloHarness{clk: newFakeClock(t0), stats: make(map[string]ScopeStats)}
	opt.Clock = h.clk.Now
	h.ev = NewEvaluator(clauses, func(scope string) ScopeStats { return h.stats[scope] }, opt)
	return h
}

func (h *sloHarness) setLatency(scope string, samples ...time.Duration) {
	w := NewWindow(WindowOptions{Clock: h.clk.Now})
	for _, d := range samples {
		w.Observe(d)
	}
	st := h.stats[scope]
	st.Latency = w.Snapshot()
	st.Requests = uint64(len(samples))
	h.stats[scope] = st
}

func TestEvaluatorBreachAndRecovery(t *testing.T) {
	h := newSLOHarness(t, "estimate:p99<100ms", EvaluatorOptions{DegradeAfter: 2})

	// No data: vacuously compliant, never degraded.
	h.ev.Tick()
	st := h.ev.Status()
	c := st.Clauses[0]
	if !c.Compliant || c.HasData || c.Breaches != 0 || st.Degraded {
		t.Fatalf("vacuous tick: %+v degraded=%v", c, st.Degraded)
	}

	// Fast traffic: compliant with data.
	h.setLatency("estimate", 10*time.Millisecond, 20*time.Millisecond)
	h.ev.Tick()
	c = h.ev.Status().Clauses[0]
	if !c.Compliant || !c.HasData || c.Breaches != 0 {
		t.Fatalf("compliant tick: %+v", c)
	}

	// Slow traffic: first breach counts but does not yet degrade.
	h.setLatency("estimate", 500*time.Millisecond, 600*time.Millisecond)
	h.ev.Tick()
	st = h.ev.Status()
	c = st.Clauses[0]
	if c.Compliant || c.Breaches != 1 || c.Consecutive != 1 || st.Degraded {
		t.Fatalf("first breach: %+v degraded=%v", c, st.Degraded)
	}

	// Second consecutive breach: degraded flips.
	h.ev.Tick()
	st = h.ev.Status()
	c = st.Clauses[0]
	if c.Breaches != 2 || c.Consecutive != 2 || !st.Degraded {
		t.Fatalf("second breach: %+v degraded=%v", c, st.Degraded)
	}
	if c.Current < 0.4 || c.Current > 0.7 {
		t.Errorf("current = %v, want ~0.5-0.6s", c.Current)
	}

	// Recovery: compliance resets consecutive, keeps the monotone breach
	// count, clears degraded.
	h.setLatency("estimate", 5*time.Millisecond)
	h.ev.Tick()
	st = h.ev.Status()
	c = st.Clauses[0]
	if !c.Compliant || c.Breaches != 2 || c.Consecutive != 0 || st.Degraded {
		t.Fatalf("recovery: %+v degraded=%v", c, st.Degraded)
	}
	// 5 ticks, 2 breaching → ratio 3/5.
	if c.ComplianceRatio != 0.6 {
		t.Errorf("compliance ratio = %v, want 0.6", c.ComplianceRatio)
	}
}

func TestEvaluatorErrorRate(t *testing.T) {
	h := newSLOHarness(t, "error_rate<10%", EvaluatorOptions{})
	h.stats[""] = ScopeStats{Requests: 100, Errors: 5}
	h.ev.Tick()
	c := h.ev.Status().Clauses[0]
	if !c.Compliant || c.Current != 0.05 {
		t.Fatalf("5%% errors under 10%% objective: %+v", c)
	}
	h.stats[""] = ScopeStats{Requests: 100, Errors: 25}
	h.ev.Tick()
	c = h.ev.Status().Clauses[0]
	if c.Compliant || c.Current != 0.25 || c.Breaches != 1 {
		t.Fatalf("25%% errors: %+v", c)
	}
}

func TestEvaluatorMaybeTickPacing(t *testing.T) {
	h := newSLOHarness(t, "p99<1s", EvaluatorOptions{Interval: 5 * time.Second})
	h.ev.MaybeTick() // first call always evaluates
	h.ev.MaybeTick() // same instant: paced out
	if got := h.ev.Status().Ticks; got != 1 {
		t.Fatalf("ticks = %d, want 1", got)
	}
	h.clk.Advance(2 * time.Second)
	h.ev.MaybeTick()
	if got := h.ev.Status().Ticks; got != 1 {
		t.Fatalf("ticks after 2s = %d, want 1", got)
	}
	h.clk.Advance(4 * time.Second)
	h.ev.MaybeTick()
	if got := h.ev.Status().Ticks; got != 2 {
		t.Fatalf("ticks after 6s = %d, want 2", got)
	}
}
