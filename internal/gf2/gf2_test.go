package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPolyAndBits(t *testing.T) {
	p := NewPoly(8, 4, 3, 1, 0)
	for _, e := range []int{8, 4, 3, 1, 0} {
		if !p.Bit(e) {
			t.Errorf("bit %d not set", e)
		}
	}
	for _, e := range []int{2, 5, 6, 7, 9, 100} {
		if p.Bit(e) {
			t.Errorf("bit %d unexpectedly set", e)
		}
	}
	if p.Degree() != 8 {
		t.Errorf("degree = %d", p.Degree())
	}
}

func TestZeroPoly(t *testing.T) {
	var z Poly
	if !z.IsZero() || z.Degree() != -1 {
		t.Error("zero polynomial misreported")
	}
	if z.String() != "0" {
		t.Errorf("zero string = %q", z.String())
	}
}

func TestAddSelfInverse(t *testing.T) {
	p := NewPoly(5, 3, 0)
	if !p.Add(p).IsZero() {
		t.Error("p+p != 0 over GF(2)")
	}
}

func TestString(t *testing.T) {
	p := NewPoly(8, 1, 0)
	if got := p.String(); got != "x^8+x+1" {
		t.Errorf("String = %q", got)
	}
}

func TestMulSmall(t *testing.T) {
	// (x+1)(x+1) = x²+1 over GF(2).
	p := NewPoly(1, 0)
	sq := p.Mul(p)
	if !sq.Equal(NewPoly(2, 0)) {
		t.Errorf("(x+1)² = %s", sq)
	}
	// (x²+x)(x+1) = x³+x.
	a := NewPoly(2, 1)
	b := NewPoly(1, 0)
	if got := a.Mul(b); !got.Equal(NewPoly(3, 1)) {
		t.Errorf("(x²+x)(x+1) = %s", got)
	}
	if !a.Mul(Poly(nil)).IsZero() {
		t.Error("p·0 != 0")
	}
}

func TestShiftLeft(t *testing.T) {
	p := NewPoly(1, 0)
	if got := p.ShiftLeft(64); !got.Equal(NewPoly(65, 64)) {
		t.Errorf("shift across word = %s", got)
	}
	if got := p.ShiftLeft(0); !got.Equal(p) {
		t.Errorf("shift 0 = %s", got)
	}
}

func TestModBasic(t *testing.T) {
	// x^4 mod (x^2+1) = 1 (since x^2 ≡ 1, x^4 ≡ 1).
	m := NewPoly(2, 0)
	r, err := NewPoly(4).Mod(m)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(NewPoly(0)) {
		t.Errorf("x^4 mod x^2+1 = %s, want 1", r)
	}
	if _, err := NewPoly(3).Mod(Poly(nil)); err == nil {
		t.Error("mod by zero should error")
	}
}

func TestMulModMatchesUint(t *testing.T) {
	// Cross-check against uint64 carry-less multiplication in GF(2^8)
	// with the AES polynomial.
	aes := NewPoly(8, 4, 3, 1, 0)
	mulUint := func(a, b uint64) uint64 {
		var r uint64
		for i := 0; i < 8; i++ {
			if b&(1<<uint(i)) != 0 {
				r ^= a << uint(i)
			}
		}
		// Reduce by 0x11B.
		for d := 15; d >= 8; d-- {
			if r&(1<<uint(d)) != 0 {
				r ^= 0x11B << uint(d-8)
			}
		}
		return r
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		a, b := uint64(rng.Intn(256)), uint64(rng.Intn(256))
		pa, pb := polyFromUint(a), polyFromUint(b)
		got, err := pa.MulMod(pb, aes)
		if err != nil {
			t.Fatal(err)
		}
		if want := mulUint(a, b); uintFromPoly(got) != want {
			t.Errorf("%#x·%#x = %#x, want %#x", a, b, uintFromPoly(got), want)
		}
	}
}

func polyFromUint(v uint64) Poly {
	var p Poly
	for i := 0; i < 64; i++ {
		if v&(1<<uint(i)) != 0 {
			p = p.SetBit(i)
		}
	}
	return p
}

func uintFromPoly(p Poly) uint64 {
	if len(p) == 0 {
		return 0
	}
	return p[0]
}

func TestGCD(t *testing.T) {
	// gcd((x+1)·(x²+x+1), (x+1)·x) = x+1.
	a := NewPoly(1, 0).Mul(NewPoly(2, 1, 0))
	b := NewPoly(1, 0).Mul(NewPoly(1))
	g := GCD(a, b)
	if !g.Equal(NewPoly(1, 0)) {
		t.Errorf("gcd = %s, want x+1", g)
	}
}

func TestIsIrreducibleKnown(t *testing.T) {
	irreducible := []Poly{
		NewPoly(1, 0),          // x+1
		NewPoly(2, 1, 0),       // x²+x+1
		NewPoly(3, 1, 0),       // x³+x+1
		NewPoly(4, 1, 0),       // x⁴+x+1
		NewPoly(8, 4, 3, 1, 0), // AES
	}
	for _, p := range irreducible {
		if !IsIrreducible(p) {
			t.Errorf("%s should be irreducible", p)
		}
	}
	reducible := []Poly{
		NewPoly(2, 0),    // x²+1 = (x+1)²
		NewPoly(3, 0),    // x³+1 = (x+1)(x²+x+1)
		NewPoly(4, 2, 0), // (x²+x+1)²
		NewPoly(2),       // x² (divisible by x)
		NewPoly(0),       // constant
	}
	for _, p := range reducible {
		if IsIrreducible(p) {
			t.Errorf("%s should be reducible", p)
		}
	}
}

func TestIsIrreducibleMatchesBruteForce(t *testing.T) {
	// Exhaustive comparison against trial division for all polynomials of
	// degree ≤ 8.
	for bitsRep := uint64(2); bitsRep < 512; bitsRep++ {
		p := polyFromUint(bitsRep)
		want := bruteIrreducible(bitsRep)
		if got := IsIrreducible(p); got != want {
			t.Errorf("%s: IsIrreducible=%v, brute force=%v", p, got, want)
		}
	}
}

// bruteIrreducible tests irreducibility of the degree-d polynomial encoded
// in v by trial division over all lower-degree polynomials.
func bruteIrreducible(v uint64) bool {
	deg := 63 - leadingZeros(v)
	if deg <= 0 {
		return deg == 1
	}
	for q := uint64(2); q < 1<<uint(deg); q++ {
		if polyDeg(q) < 1 {
			continue
		}
		if polyModUint(v, q) == 0 {
			return false
		}
	}
	return true
}

func polyDeg(v uint64) int { return 63 - leadingZeros(v) }

func leadingZeros(v uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

func polyModUint(a, m uint64) uint64 {
	dm := polyDeg(m)
	for polyDeg(a) >= dm && a != 0 {
		a ^= m << uint(polyDeg(a)-dm)
	}
	return a
}

func TestFieldPolyTableAllIrreducible(t *testing.T) {
	for n := range fieldPolyTable {
		p, err := FieldPoly(n)
		if err != nil {
			t.Errorf("n=%d: %v", n, err)
			continue
		}
		if p.Degree() != n {
			t.Errorf("n=%d: degree %d", n, p.Degree())
		}
		if !IsIrreducible(p) {
			t.Errorf("n=%d: %s not irreducible", n, p)
		}
	}
}

func TestFieldPolySearchFallback(t *testing.T) {
	// 9 is not in the table; the search must find x^9+x+1 or similar.
	p, err := FieldPoly(9)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degree() != 9 || !IsIrreducible(p) {
		t.Errorf("fallback gave %s", p)
	}
}

func TestMulCommutativeProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		pa, pb := polyFromUint(uint64(a)), polyFromUint(uint64(b))
		return pa.Mul(pb).Equal(pb.Mul(pa))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulDistributesOverAdd(t *testing.T) {
	f := func(a, b, c uint32) bool {
		pa, pb, pc := polyFromUint(uint64(a)), polyFromUint(uint64(b)), polyFromUint(uint64(c))
		left := pa.Mul(pb.Add(pc))
		right := pa.Mul(pb).Add(pa.Mul(pc))
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModIdempotentProperty(t *testing.T) {
	m := NewPoly(16, 5, 3, 1, 0)
	f := func(a uint64) bool {
		p := polyFromUint(a)
		r1, err1 := p.Mod(m)
		if err1 != nil {
			return false
		}
		r2, err2 := r1.Mod(m)
		if err2 != nil {
			return false
		}
		return r1.Equal(r2) && r1.Degree() < 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
