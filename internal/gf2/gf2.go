// Package gf2 implements polynomial arithmetic over GF(2) — multiplication,
// modular reduction, GCD and irreducibility testing — used to construct and
// verify the field polynomials behind the gf2^n-multiplier benchmark family
// (Table 2/3 of the LEQA paper) and to functionally check the generated
// multiplier netlists on small fields.
package gf2

import (
	"fmt"
	"math/bits"
)

// Poly is a polynomial over GF(2), little-endian: word i holds coefficients
// of x^(64i) .. x^(64i+63). The zero polynomial is an empty or all-zero
// slice.
type Poly []uint64

// NewPoly builds a polynomial from its exponent list, e.g. NewPoly(8, 4, 3,
// 1, 0) = x^8+x^4+x^3+x+1 (AES field polynomial).
func NewPoly(exponents ...int) Poly {
	var p Poly
	for _, e := range exponents {
		p = p.SetBit(e)
	}
	return p
}

// SetBit returns p with the coefficient of x^e flipped on.
func (p Poly) SetBit(e int) Poly {
	word, bit := e/64, uint(e%64)
	out := make(Poly, max(len(p), word+1))
	copy(out, p)
	out[word] |= 1 << bit
	return out
}

// Bit returns the coefficient of x^e.
func (p Poly) Bit(e int) bool {
	word, bit := e/64, uint(e%64)
	return word < len(p) && p[word]&(1<<bit) != 0
}

// Degree returns the polynomial degree, or -1 for the zero polynomial.
func (p Poly) Degree() int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i*64 + 63 - bits.LeadingZeros64(p[i])
		}
	}
	return -1
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return p.Degree() < 0 }

// trim drops leading zero words.
func (p Poly) trim() Poly {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// Clone copies p.
func (p Poly) Clone() Poly {
	out := make(Poly, len(p))
	copy(out, p)
	return out
}

// Add returns p + q (XOR).
func (p Poly) Add(q Poly) Poly {
	a, b := p, q
	if len(a) < len(b) {
		a, b = b, a
	}
	out := make(Poly, len(a))
	copy(out, a)
	for i := range b {
		out[i] ^= b[i]
	}
	return out.trim()
}

// ShiftLeft returns p · x^k.
func (p Poly) ShiftLeft(k int) Poly {
	if p.IsZero() || k == 0 {
		return p.Clone().trim()
	}
	words, rem := k/64, uint(k%64)
	out := make(Poly, len(p)+words+1)
	for i := len(p) - 1; i >= 0; i-- {
		out[i+words] ^= p[i] << rem
		if rem != 0 {
			out[i+words+1] ^= p[i] >> (64 - rem)
		}
	}
	return out.trim()
}

// Mul returns p · q (carry-less multiplication).
func (p Poly) Mul(q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return nil
	}
	out := make(Poly, len(p)+len(q))
	for i, w := range p {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			shift := i*64 + b
			words, rem := shift/64, uint(shift%64)
			for j, qw := range q {
				out[j+words] ^= qw << rem
				if rem != 0 && j+words+1 < len(out) {
					out[j+words+1] ^= qw >> (64 - rem)
				}
			}
		}
	}
	return out.trim()
}

// Mod returns p mod m. m must be nonzero.
func (p Poly) Mod(m Poly) (Poly, error) {
	dm := m.Degree()
	if dm < 0 {
		return nil, fmt.Errorf("gf2: modulo by zero polynomial")
	}
	r := p.Clone()
	for {
		dr := r.Degree()
		if dr < dm {
			return r.trim(), nil
		}
		r = r.Add(m.ShiftLeft(dr - dm))
	}
}

// MulMod returns p·q mod m.
func (p Poly) MulMod(q, m Poly) (Poly, error) {
	return p.Mul(q).Mod(m)
}

// GCD returns gcd(p, q).
func GCD(p, q Poly) Poly {
	a, b := p.Clone().trim(), q.Clone().trim()
	for !b.IsZero() {
		r, _ := a.Mod(b) // b nonzero by loop condition
		a, b = b, r
	}
	return a
}

// Equal reports whether p and q represent the same polynomial.
func (p Poly) Equal(q Poly) bool {
	a, b := p.trim(), q.trim()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders the polynomial in x^a+x^b+... form, highest degree first.
func (p Poly) String() string {
	d := p.Degree()
	if d < 0 {
		return "0"
	}
	s := ""
	for e := d; e >= 0; e-- {
		if !p.Bit(e) {
			continue
		}
		if s != "" {
			s += "+"
		}
		switch e {
		case 0:
			s += "1"
		case 1:
			s += "x"
		default:
			s += fmt.Sprintf("x^%d", e)
		}
	}
	return s
}

// one is the constant polynomial 1.
var one = NewPoly(0)

// xPoly is the monomial x.
var xPoly = NewPoly(1)

// IsIrreducible tests irreducibility over GF(2) using the standard
// Rabin-style criterion: f of degree n is irreducible iff
// x^(2^n) ≡ x (mod f) and gcd(x^(2^(n/p)) − x, f) = 1 for every prime
// divisor p of n.
func IsIrreducible(f Poly) bool {
	n := f.Degree()
	if n <= 0 {
		return false
	}
	if n == 1 {
		return true
	}
	if !f.Bit(0) {
		return false // divisible by x
	}
	// h = x^(2^k) mod f, built by repeated squaring.
	frob := func(k int) Poly {
		h := xPoly
		for i := 0; i < k; i++ {
			h2, _ := h.MulMod(h, f)
			h = h2
		}
		return h
	}
	// Condition 1: x^(2^n) == x (mod f).
	if !frob(n).Equal(xPoly) {
		return false
	}
	// Condition 2: for each prime p | n, gcd(x^(2^(n/p)) + x, f) == 1.
	for _, p := range primeDivisors(n) {
		g := GCD(frob(n/p).Add(xPoly), f)
		if !g.Equal(one) {
			return false
		}
	}
	return true
}

func primeDivisors(n int) []int {
	var out []int
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			out = append(out, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

// FieldPoly returns a verified irreducible polynomial of degree n for the
// GF(2^n) multiplier benchmarks. The table lists the low-weight (trinomial
// or pentanomial) exponents from standard tables; each entry is
// irreducibility-checked once at first use.
func FieldPoly(n int) (Poly, error) {
	exps, ok := fieldPolyTable[n]
	if !ok {
		// Fall back to a search over low-weight polynomials.
		return searchIrreducible(n)
	}
	p := NewPoly(append([]int{n, 0}, exps...)...)
	if !IsIrreducible(p) {
		return nil, fmt.Errorf("gf2: table polynomial for n=%d is not irreducible: %s", n, p)
	}
	return p, nil
}

// fieldPolyTable holds the middle exponents (beyond x^n and 1) of known
// irreducible tri/pentanomials over GF(2).
var fieldPolyTable = map[int][]int{
	2:   {1},
	3:   {1},
	4:   {1},
	5:   {2},
	6:   {1},
	7:   {1},
	8:   {4, 3, 1},
	16:  {5, 3, 1},
	18:  {3},
	19:  {5, 2, 1},
	20:  {3},
	32:  {7, 3, 2},
	50:  {4, 3, 2},
	64:  {4, 3, 1},
	100: {15},
	128: {7, 2, 1},
	256: {10, 5, 2},
}

// searchIrreducible scans trinomials then pentanomials of degree n for an
// irreducible one.
func searchIrreducible(n int) (Poly, error) {
	for k := 1; k < n; k++ {
		p := NewPoly(n, k, 0)
		if IsIrreducible(p) {
			return p, nil
		}
	}
	for a := 1; a < n; a++ {
		for b := 1; b < a; b++ {
			for c := 1; c < b; c++ {
				p := NewPoly(n, a, b, c, 0)
				if IsIrreducible(p) {
					return p, nil
				}
			}
		}
	}
	return nil, fmt.Errorf("gf2: no low-weight irreducible polynomial found for degree %d", n)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
