// Package csr holds the one shared building block of the compressed-
// sparse-row graph builders (qodg, iig, analysis): turning a degree count
// array into row offsets plus the flat element array.
package csr

// Grow returns buf resized to n elements, reallocating only when the
// capacity is insufficient — the shared resize step of every arena buffer.
// Contents are unspecified; callers overwrite (or clear) every slot.
func Grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// Offsets converts a degree array (with one extra trailing slot) into CSR
// row offsets and allocates the element array. On return deg[i] holds row
// i's start offset — ready to serve as the fill cursor of the second pass —
// and the returned offsets are the immutable copy.
func Offsets[E any](deg []int32) ([]int32, []E) {
	return OffsetsInto[E](deg, nil, nil)
}

// OffsetsInto is Offsets into reusable buffers: off and elem backing arrays
// are recycled when large enough, so a warm arena runs the offsets step
// without allocating. Element contents are unspecified — the fill pass
// overwrites every counted slot.
func OffsetsInto[E any](deg []int32, off []int32, elem []E) ([]int32, []E) {
	n := len(deg) - 1
	off = Grow(off, n+1)
	var total int32
	for i := 0; i < n; i++ {
		off[i] = total
		total += deg[i]
		deg[i] = off[i]
	}
	off[n] = total
	return off, Grow(elem, int(total))
}
