// Package csr holds the one shared building block of the compressed-
// sparse-row graph builders (qodg, iig, analysis): turning a degree count
// array into row offsets plus the flat element array.
package csr

// Offsets converts a degree array (with one extra trailing slot) into CSR
// row offsets and allocates the element array. On return deg[i] holds row
// i's start offset — ready to serve as the fill cursor of the second pass —
// and the returned offsets are the immutable copy.
func Offsets[E any](deg []int32) ([]int32, []E) {
	n := len(deg) - 1
	off := make([]int32, n+1)
	var total int32
	for i := 0; i < n; i++ {
		off[i] = total
		total += deg[i]
		deg[i] = off[i]
	}
	off[n] = total
	return off, make([]E, total)
}
