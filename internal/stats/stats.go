// Package stats provides the small statistics toolkit behind the
// experiment reports: estimation-error summaries (Table 2), geometric means,
// log-log power-law fits for the runtime-scaling claim of §4.2, and the
// Shor-1024 extrapolation.
package stats

import (
	"fmt"
	"math"
)

// AbsErrorPct returns |estimated − actual| / actual · 100.
func AbsErrorPct(actual, estimated float64) float64 {
	if actual == 0 {
		return math.Inf(1)
	}
	return math.Abs(estimated-actual) / math.Abs(actual) * 100
}

// Mean returns the arithmetic mean; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum; 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// GeoMean returns the geometric mean of positive values; errors otherwise.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: geomean of empty slice")
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean needs positive values, got %g", x)
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// PowerFit fits y = c·x^k by least squares on (log x, log y) and returns the
// exponent k, the coefficient c, and the R² of the log-log fit. All inputs
// must be positive and len(x) == len(y) ≥ 2.
func PowerFit(x, y []float64) (k, c, r2 float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, 0, fmt.Errorf("stats: power fit needs ≥2 matching points, got %d/%d", len(x), len(y))
	}
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			return 0, 0, 0, fmt.Errorf("stats: power fit needs positive data, got (%g,%g)", x[i], y[i])
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	slope, intercept, r := linearFit(lx, ly)
	return slope, math.Exp(intercept), r * r, nil
}

// linearFit computes the least-squares line ly = slope·lx + intercept and
// the correlation coefficient r.
func linearFit(x, y []float64) (slope, intercept, r float64) {
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, Mean(y), 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	rden := math.Sqrt(den * (n*syy - sy*sy))
	if rden == 0 {
		r = 0
	} else {
		r = (n*sxy - sx*sy) / rden
	}
	return slope, intercept, r
}

// Extrapolate evaluates the fitted power law at x.
func Extrapolate(k, c, x float64) float64 { return c * math.Pow(x, k) }

// HumanDuration renders seconds at human scale (s, min, h, days, years) for
// the Shor-extrapolation report.
func HumanDuration(sec float64) string {
	switch {
	case sec < 120:
		return fmt.Sprintf("%.1f s", sec)
	case sec < 2*3600:
		return fmt.Sprintf("%.1f min", sec/60)
	case sec < 2*86400:
		return fmt.Sprintf("%.1f h", sec/3600)
	case sec < 2*365.25*86400:
		return fmt.Sprintf("%.1f days", sec/86400)
	default:
		return fmt.Sprintf("%.1f years", sec/(365.25*86400))
	}
}
