package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAbsErrorPct(t *testing.T) {
	if got := AbsErrorPct(100, 103); math.Abs(got-3) > 1e-12 {
		t.Errorf("error = %v, want 3", got)
	}
	if got := AbsErrorPct(100, 97); math.Abs(got-3) > 1e-12 {
		t.Errorf("error = %v, want 3 (symmetric)", got)
	}
	if !math.IsInf(AbsErrorPct(0, 5), 1) {
		t.Error("zero actual should give +Inf")
	}
}

func TestMeanMax(t *testing.T) {
	xs := []float64{1, 2, 3, 10}
	if Mean(xs) != 4 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Max(xs) != 10 {
		t.Errorf("Max = %v", Max(xs))
	}
	if Mean(nil) != 0 || Max(nil) != 0 {
		t.Error("empty slices should give 0")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-10) > 1e-9 {
		t.Errorf("GeoMean(1,100) = %v, want 10", g)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative should error")
	}
}

func TestPowerFitExact(t *testing.T) {
	// y = 2·x^1.5 exactly.
	x := []float64{1, 2, 4, 8, 16, 32}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 2 * math.Pow(x[i], 1.5)
	}
	k, c, r2, err := PowerFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-1.5) > 1e-9 {
		t.Errorf("k = %v, want 1.5", k)
	}
	if math.Abs(c-2) > 1e-9 {
		t.Errorf("c = %v, want 2", c)
	}
	if math.Abs(r2-1) > 1e-9 {
		t.Errorf("R² = %v, want 1", r2)
	}
}

func TestPowerFitErrors(t *testing.T) {
	if _, _, _, err := PowerFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, _, _, err := PowerFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, _, err := PowerFit([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Error("negative data should error")
	}
}

func TestExtrapolateConsistency(t *testing.T) {
	f := func(seed uint8) bool {
		k := 1 + float64(seed%20)/10 // 1.0 .. 2.9
		c := 0.5 + float64(seed%7)
		x := []float64{10, 100, 1000, 10000}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = Extrapolate(k, c, x[i])
		}
		kf, cf, r2, err := PowerFit(x, y)
		if err != nil {
			return false
		}
		return math.Abs(kf-k) < 1e-6 && math.Abs(cf-c) < 1e-6 && r2 > 0.999999
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	// All x equal → slope 0, intercept = mean(y).
	slope, intercept, r := linearFit([]float64{2, 2, 2}, []float64{1, 3, 5})
	if slope != 0 || intercept != 3 || r != 0 {
		t.Errorf("degenerate fit: %v %v %v", slope, intercept, r)
	}
}

func TestHumanDuration(t *testing.T) {
	cases := map[float64]string{
		30:     "s",
		600:    "min",
		7200:   "h",
		200000: "days",
		1e9:    "years",
	}
	for sec, unit := range cases {
		got := HumanDuration(sec)
		if !strings.Contains(got, unit) {
			t.Errorf("HumanDuration(%v) = %q, want unit %q", sec, got, unit)
		}
	}
	// The paper's Shor extrapolation scale: ~2 years.
	got := HumanDuration(2 * 365.25 * 86400)
	if !strings.Contains(got, "years") {
		t.Errorf("2 years rendered as %q", got)
	}
}
