package ingest

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/circuit"
	"repro/internal/qcbin"
)

// ErrInflateLimit marks a gzip-wrapped netlist whose inflated size outgrew
// the spool cap. It is deliberately distinct from ErrSpoolLimit: the raw
// body was within bounds, the content was not, so services map it to 422
// (unprocessable content) rather than 413 (too large a request).
var ErrInflateLimit = errors.New("inflated size limit exceeded")

// Stream is the interface every ingest-produced gate stream satisfies: the
// analysis-layer GateStream contract plus the container-level facilities
// (register access, byte accounting, materialization, resource release)
// the CLI and service layers use. The textual Scanner and the binary .qcb
// decoder both implement it; callers obtained through Open or
// NewAutoStream cannot tell the containers apart.
type Stream interface {
	analysis.GateStream
	Register() *circuit.Circuit
	GateIndex() int
	BytesRead() int64
	SpooledBytes() int64
	Materialize() (*circuit.Circuit, error)
	Close() error
}

// netlistName derives a circuit name from a netlist path: basename with
// the known container suffixes trimmed (mycirc.qcb.gz → mycirc), matching
// circuit.QCBaseName on plain .qc paths.
func netlistName(path string) string {
	name := filepath.Base(path)
	name = strings.TrimSuffix(name, ".gz")
	name = strings.TrimSuffix(name, ".qcb")
	return strings.TrimSuffix(name, ".qc")
}

// sniffSeekable routes a positioned seekable source to the right decoder
// by magic bytes: RFC 1952 gzip (inflated to an anonymous spool, then
// sniffed again), the .qcb binary netlist, or the textual .qc parser for
// everything else. owns lists resources the returned stream must release
// on Close; on error the caller keeps that responsibility.
func sniffSeekable(rs io.ReadSeeker, name string, opt Options, allowGzip bool, owns ...io.Closer) (Stream, error) {
	pos, err := rs.Seek(0, io.SeekCurrent)
	if err != nil {
		return nil, fmt.Errorf("ingest: %s: %w", name, err)
	}
	var magic [4]byte
	n, _ := io.ReadFull(rs, magic[:])
	if _, err := rs.Seek(pos, io.SeekStart); err != nil {
		return nil, fmt.Errorf("ingest: %s: %w", name, err)
	}
	switch {
	case n >= 2 && magic[0] == qcbin.MagicGzip[0] && magic[1] == qcbin.MagicGzip[1]:
		if !allowGzip {
			return nil, fmt.Errorf("ingest: %s: nested gzip container", name)
		}
		spool, size, err := inflateToSpool(rs, name, opt)
		if err != nil {
			return nil, err
		}
		st, err := sniffSeekable(spool, name, opt, false, append(owns, spool)...)
		if err != nil {
			spool.Close()
			return nil, err
		}
		return setInflated(st, size), nil
	case n == 4 && [4]byte(magic[:]) == qcbin.MagicQCB:
		sc, err := qcbin.NewScanner(rs, name)
		if err != nil {
			return nil, err
		}
		return &binStream{Scanner: sc, owns: owns}, nil
	default:
		s := NewScanner(rs, name, opt)
		s.extra = owns
		return s, nil
	}
}

// setInflated records the inflate-spool footprint on a sniffed stream so
// SpooledBytes accounts for the disk the container actually used.
func setInflated(st Stream, size int64) Stream {
	switch v := st.(type) {
	case *Scanner:
		v.inflated = size
	case *binStream:
		v.spooled = size
	}
	return st
}

// inflateToSpool decompresses one gzip member stream into an anonymous
// temp file, enforcing opt.MaxSpoolBytes on the inflated size
// (ErrInflateLimit). The returned file is positioned at the start.
func inflateToSpool(r io.Reader, name string, opt Options) (*os.File, int64, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, 0, fmt.Errorf("ingest: %s: gzip: %w", name, err)
	}
	f, err := os.CreateTemp(opt.SpoolDir, "leqa-inflate-*.spool")
	if err != nil {
		return nil, 0, fmt.Errorf("ingest: %s: creating inflate spool: %w", name, err)
	}
	os.Remove(f.Name())
	cw := &cappedFileWriter{f: f}
	if max := opt.MaxSpoolBytes; max > 0 {
		cw.max = max
		cw.overErr = fmt.Errorf("%w: gzipped netlist %q inflates past the %d-byte spool cap", ErrInflateLimit, name, max)
	}
	if _, err := io.Copy(cw, zr); err != nil {
		f.Close()
		return nil, 0, err
	}
	if err := zr.Close(); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("ingest: %s: gzip: %w", name, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("ingest: %s: %w", name, err)
	}
	return f, cw.n, nil
}

// spoolAll copies a non-seekable source to an anonymous temp file in full,
// enforcing opt.MaxSpoolBytes on the raw size (ErrSpoolLimit) — the .qcb
// decoder needs a seekable container.
func spoolAll(r io.Reader, name string, opt Options) (*os.File, int64, error) {
	f, err := os.CreateTemp(opt.SpoolDir, "leqa-ingest-*.spool")
	if err != nil {
		return nil, 0, fmt.Errorf("ingest: %s: creating spool: %w", name, err)
	}
	os.Remove(f.Name())
	cw := &cappedFileWriter{f: f}
	if max := opt.MaxSpoolBytes; max > 0 {
		cw.max = max
		cw.overErr = fmt.Errorf("%w: netlist %q exceeds the %d-byte spool cap", ErrSpoolLimit, name, max)
	}
	if _, err := io.Copy(cw, r); err != nil {
		f.Close()
		return nil, 0, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("ingest: %s: %w", name, err)
	}
	return f, cw.n, nil
}

// cappedFileWriter counts bytes into a temp file, failing with overErr
// once max is exceeded.
type cappedFileWriter struct {
	f       *os.File
	n       int64
	max     int64
	overErr error
}

func (w *cappedFileWriter) Write(p []byte) (int, error) {
	if w.max > 0 && w.n+int64(len(p)) > w.max {
		return 0, w.overErr
	}
	n, err := w.f.Write(p)
	w.n += int64(n)
	return n, err
}

// NewAutoStream sniffs r by magic bytes and returns the right decoder for
// its container: gzip (transparently inflated), binary .qcb, or textual
// .qc — the upload-body counterpart of Open. Non-seekable binary sources
// are spooled to disk first (the decoder needs to seek); non-seekable text
// flows through the Scanner's own tee-spool machinery unchanged.
func NewAutoStream(r io.Reader, name string, opt Options) (Stream, error) {
	if rs, ok := r.(io.ReadSeeker); ok {
		if _, err := rs.Seek(0, io.SeekCurrent); err == nil {
			return sniffSeekable(rs, name, opt, true)
		}
	}
	var magic [4]byte
	n, err := io.ReadFull(r, magic[:])
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, fmt.Errorf("ingest: %s: %w", name, err)
	}
	src := io.MultiReader(bytes.NewReader(magic[:n]), r)
	switch {
	case n >= 2 && magic[0] == qcbin.MagicGzip[0] && magic[1] == qcbin.MagicGzip[1]:
		spool, size, err := inflateToSpool(src, name, opt)
		if err != nil {
			return nil, err
		}
		st, err := sniffSeekable(spool, name, opt, false, spool)
		if err != nil {
			spool.Close()
			return nil, err
		}
		return setInflated(st, size), nil
	case n == 4 && [4]byte(magic[:]) == qcbin.MagicQCB:
		spool, size, err := spoolAll(src, name, opt)
		if err != nil {
			return nil, err
		}
		sc, err := qcbin.NewScanner(spool, name)
		if err != nil {
			spool.Close()
			return nil, err
		}
		return &binStream{Scanner: sc, owns: []io.Closer{spool}, spooled: size}, nil
	default:
		return NewScanner(src, name, opt), nil
	}
}

// binStream adapts the .qcb decoder to the ingest Stream contract: spool
// accounting plus ownership of the containers opened on its behalf.
type binStream struct {
	*qcbin.Scanner
	owns    []io.Closer
	spooled int64
}

// SpooledBytes reports the disk spool footprint of the binary container
// (0 when it was decoded in place from a seekable source).
func (b *binStream) SpooledBytes() int64 { return b.spooled }

// Close releases the decoder and every container resource it owns.
func (b *binStream) Close() error {
	err := b.Scanner.Close()
	for _, c := range b.owns {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
