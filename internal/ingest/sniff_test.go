package ingest

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/circuit"
	"repro/internal/qcbin"
)

// sniffSample is a small netlist exercised through every container.
const sniffSample = `.v a b c
.i a b
BEGIN
H a
TOF a b c
CNOT b c
END
`

func sniffCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := circuit.ParseQC(bytes.NewReader([]byte(sniffSample)), "sniff")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// containers renders the sample netlist in all four container formats.
func containers(t *testing.T) map[string][]byte {
	t.Helper()
	c := sniffCircuit(t)
	var qcb bytes.Buffer
	if err := qcbin.EncodeCircuit(&qcb, c); err != nil {
		t.Fatal(err)
	}
	gz := func(data []byte) []byte {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		zw.Write(data)
		zw.Close()
		return buf.Bytes()
	}
	return map[string][]byte{
		"qc":     []byte(sniffSample),
		"qcb":    qcb.Bytes(),
		"qc.gz":  gz([]byte(sniffSample)),
		"qcb.gz": gz(qcb.Bytes()),
	}
}

// nonSeeker hides the seeker from a bytes.Reader to force the spool paths.
type nonSeeker struct{ r io.Reader }

func (n nonSeeker) Read(p []byte) (int, error) { return n.r.Read(p) }

// TestSniffAllContainers decodes the same netlist from every container,
// seekable and not, through file-backed Open and through NewAutoStream —
// the gate streams must be identical.
func TestSniffAllContainers(t *testing.T) {
	want := sniffCircuit(t)
	for container, data := range containers(t) {
		for _, seekable := range []bool{true, false} {
			name := container
			if !seekable {
				name += "/pipe"
			}
			t.Run(name, func(t *testing.T) {
				var r io.Reader = bytes.NewReader(data)
				if !seekable {
					r = nonSeeker{bytes.NewReader(data)}
				}
				st, err := NewAutoStream(r, "sniff", Options{})
				if err != nil {
					t.Fatalf("NewAutoStream: %v", err)
				}
				defer st.Close()
				got, err := st.Materialize()
				if err != nil {
					t.Fatalf("Materialize: %v", err)
				}
				if got.NumQubits() != want.NumQubits() || len(got.Gates) != len(want.Gates) {
					t.Fatalf("decoded %d qubits / %d gates, want %d / %d",
						got.NumQubits(), len(got.Gates), want.NumQubits(), len(want.Gates))
				}
				for i := range want.Gates {
					w, g := want.Gates[i], got.Gates[i]
					if w.Type != g.Type {
						t.Fatalf("gate %d type %v, want %v", i, g.Type, w.Type)
					}
				}
			})
		}
	}
}

// TestOpenSniffsByMagic writes each container under a deliberately wrong
// extension; Open must decode by content, not name.
func TestOpenSniffsByMagic(t *testing.T) {
	want := sniffCircuit(t)
	dir := t.TempDir()
	for container, data := range containers(t) {
		// The extension lies on purpose.
		path := filepath.Join(dir, "lying-"+container+".qc")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("Open(%s): %v", container, err)
		}
		got, err := st.Materialize()
		st.Close()
		if err != nil {
			t.Fatalf("%s: %v", container, err)
		}
		if len(got.Gates) != len(want.Gates) {
			t.Errorf("%s: %d gates, want %d", container, len(got.Gates), len(want.Gates))
		}
	}
}

// TestNetlistName checks container suffix trimming.
func TestNetlistName(t *testing.T) {
	for path, want := range map[string]string{
		"/a/b/mycirc.qc":     "mycirc",
		"/a/b/mycirc.qcb":    "mycirc",
		"/a/b/mycirc.qc.gz":  "mycirc",
		"/a/b/mycirc.qcb.gz": "mycirc",
		"plain":              "plain",
	} {
		if got := netlistName(path); got != want {
			t.Errorf("netlistName(%s) = %q, want %q", path, got, want)
		}
	}
}

// TestInflateLimit: a gzip body inflating past MaxSpoolBytes fails with
// ErrInflateLimit (422-class), while an oversized raw body keeps failing
// with ErrSpoolLimit (413-class).
func TestInflateLimit(t *testing.T) {
	data := containers(t)["qc.gz"]
	_, err := NewAutoStream(nonSeeker{bytes.NewReader(data)}, "sniff", Options{MaxSpoolBytes: 4})
	if !errors.Is(err, ErrInflateLimit) {
		t.Errorf("gzip over cap: %v, want ErrInflateLimit", err)
	}
	if errors.Is(err, ErrSpoolLimit) {
		t.Error("inflate-limit error must not double as a spool-limit error")
	}
	// Same cap, seekable source: still the inflate limit (the raw file may
	// be tiny — the inflated content is what grows).
	_, err = NewAutoStream(bytes.NewReader(data), "sniff", Options{MaxSpoolBytes: 4})
	if !errors.Is(err, ErrInflateLimit) {
		t.Errorf("seekable gzip over cap: %v, want ErrInflateLimit", err)
	}
	// Raw binary netlist over the cap through the spool path: ErrSpoolLimit.
	qcb := containers(t)["qcb"]
	_, err = NewAutoStream(nonSeeker{bytes.NewReader(qcb)}, "sniff", Options{MaxSpoolBytes: 4})
	if !errors.Is(err, ErrSpoolLimit) {
		t.Errorf("binary over cap: %v, want ErrSpoolLimit", err)
	}
}

// TestNestedGzipRejected: one container level of gzip only.
func TestNestedGzipRejected(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(containers(t)["qc.gz"])
	zw.Close()
	if _, err := NewAutoStream(bytes.NewReader(buf.Bytes()), "sniff", Options{}); err == nil {
		t.Fatal("nested gzip accepted")
	}
}

// TestTruncatedGzip: a corrupted gzip body errors cleanly.
func TestTruncatedGzip(t *testing.T) {
	data := containers(t)["qc.gz"]
	if _, err := NewAutoStream(bytes.NewReader(data[:len(data)-5]), "sniff", Options{}); err == nil {
		t.Fatal("truncated gzip accepted")
	}
}

// TestSpooledBytesAccounting: inflate spools count toward SpooledBytes.
func TestSpooledBytesAccounting(t *testing.T) {
	st, err := NewAutoStream(bytes.NewReader(containers(t)["qc.gz"]), "sniff", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.SpooledBytes() != int64(len(sniffSample)) {
		t.Errorf("SpooledBytes = %d, want %d (the inflated size)", st.SpooledBytes(), len(sniffSample))
	}
	// Plain seekable text spools nothing.
	st2, err := NewAutoStream(bytes.NewReader([]byte(sniffSample)), "sniff", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.SpooledBytes() != 0 {
		t.Errorf("seekable text SpooledBytes = %d, want 0", st2.SpooledBytes())
	}
}

// TestBinaryStreamRewinds: the binary stream supports the analyzer's
// two-pass contract through the Stream interface.
func TestBinaryStreamRewinds(t *testing.T) {
	st, err := NewAutoStream(bytes.NewReader(containers(t)["qcb"]), "sniff", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	count := func() int {
		n := 0
		for st.Scan() {
			n++
		}
		return n
	}
	n1 := count()
	if err := st.Rewind(); err != nil {
		t.Fatal(err)
	}
	if n2 := count(); n1 != n2 || st.Err() != nil {
		t.Fatalf("passes disagree: %d vs %d (err %v)", n1, n2, st.Err())
	}
}
