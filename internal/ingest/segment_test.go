package ingest

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/circuit"
	"repro/internal/qodg"
)

// bigQC synthesizes a netlist long enough to cross several checkpoint
// strides, with comments, blank lines and auto-declared ancillas sprinkled
// in so segment boundaries land after non-gate lines too.
func bigQC(nGates int) string {
	var b strings.Builder
	b.WriteString("# synthetic checkpoint-replay netlist\n.v q0 q1 q2 q3 q4 q5 q6 q7\nBEGIN\n")
	for i := 0; i < nGates; i++ {
		switch i % 5 {
		case 0:
			fmt.Fprintf(&b, "H q%d\n", i%8)
		case 1:
			fmt.Fprintf(&b, "CNOT q%d q%d\n", i%8, (i+3)%8)
		case 2:
			fmt.Fprintf(&b, "T q%d\n", (i+5)%8)
		case 3:
			// Same-pair run material plus an occasional comment line.
			fmt.Fprintf(&b, "CNOT q%d q%d\n", i%4, i%4+4)
			if i%97 == 3 {
				b.WriteString("  # mid-body comment\n\n")
			}
		default:
			fmt.Fprintf(&b, "CNOT anc%d q%d\n", i%3, i%8)
		}
	}
	b.WriteString("END\n")
	return b.String()
}

// TestSegmentsReplayMatchesSerial proves the checkpointed segment replay
// re-emits exactly the serial gate stream — per segment and concatenated —
// on both the seekable and the spooled source paths.
func TestSegmentsReplayMatchesSerial(t *testing.T) {
	text := bigQC(5000)
	for _, mode := range []string{"seek", "pipe"} {
		var s *Scanner
		if mode == "seek" {
			s = NewScanner(strings.NewReader(text), "big", Options{})
		} else {
			s = NewScanner(pipe{strings.NewReader(text)}, "big", Options{})
		}
		if segs, cuts, err := s.Segments(4); segs != nil || cuts != nil || err != nil {
			t.Fatalf("%s: Segments before any pass = (%v, %v, %v), want all nil", mode, segs, cuts, err)
		}
		want := collect(t, s)
		if !s.ckptDone {
			t.Fatalf("%s: checkpoint trail not finalized after a full pass", mode)
		}
		for _, max := range []int{2, 3, 4, 16} {
			segs, cuts, err := s.Segments(max)
			if err != nil {
				t.Fatalf("%s/max=%d: %v", mode, max, err)
			}
			if segs == nil {
				t.Fatalf("%s/max=%d: source declined to segment", mode, max)
			}
			k := len(segs)
			if k < 2 || k > max || len(cuts) != k+1 || cuts[0] != 0 || cuts[k] != len(want) {
				t.Fatalf("%s/max=%d: %d segments, cuts %v (nGates %d)", mode, max, k, cuts, len(want))
			}
			var got []circuit.Gate
			for i, seg := range segs {
				n := 0
				for seg.Scan() {
					got = append(got, seg.Gate().Clone())
					n++
				}
				if err := seg.Err(); err != nil {
					t.Fatalf("%s/max=%d seg %d: %v", mode, max, i, err)
				}
				if n != cuts[i+1]-cuts[i] {
					t.Fatalf("%s/max=%d seg %d: %d gates, want %d", mode, max, i, n, cuts[i+1]-cuts[i])
				}
			}
			assertGatesEqual(t, fmt.Sprintf("%s/max=%d", mode, max), got, want)

			// A rewound segment replays identically.
			if err := segs[1].Rewind(); err != nil {
				t.Fatalf("%s/max=%d: rewind: %v", mode, max, err)
			}
			var again []circuit.Gate
			for segs[1].Scan() {
				again = append(again, segs[1].Gate().Clone())
			}
			if err := segs[1].Err(); err != nil {
				t.Fatal(err)
			}
			assertGatesEqual(t, "rewound segment", again, want[cuts[1]:cuts[2]])
		}

		// The scanner itself still rewinds and replays after segmenting.
		if err := s.Rewind(); err != nil {
			t.Fatal(err)
		}
		assertGatesEqual(t, mode+"/scanner-after-segments", collect(t, s), want)
	}
}

// TestAnalyzeStreamShardedOverScanner is the end-to-end streamed tentpole
// check: a scanner-fed sharded analysis must produce graphs identical to
// the serial streamed analysis of the same netlist.
func TestAnalyzeStreamShardedOverScanner(t *testing.T) {
	text := bigQC(20000)
	s := NewScanner(strings.NewReader(text), "big", Options{})
	want, err := analysis.AnalyzeStream(s)
	if err != nil {
		t.Fatal(err)
	}

	origThreshold := analysis.ShardThreshold
	defer func() { analysis.ShardThreshold = origThreshold }()
	analysis.ShardThreshold = 1
	ar := analysis.NewArena()
	ar.MaxShards = 4
	if err := s.Rewind(); err != nil {
		t.Fatal(err)
	}
	got, err := ar.AnalyzeStream(s)
	if err != nil {
		t.Fatal(err)
	}

	if got.Qubits != want.Qubits || got.Operations != want.Operations || got.FT != want.FT {
		t.Fatalf("metadata (%d,%d,%v), want (%d,%d,%v)",
			got.Qubits, got.Operations, got.FT, want.Qubits, want.Operations, want.FT)
	}
	if got.QODG.NumNodes() != want.QODG.NumNodes() || got.QODG.NumEdges() != want.QODG.NumEdges() {
		t.Fatalf("QODG shape %d/%d, want %d/%d",
			got.QODG.NumNodes(), got.QODG.NumEdges(), want.QODG.NumNodes(), want.QODG.NumEdges())
	}
	for u := 0; u < want.QODG.NumNodes(); u++ {
		id := qodg.NodeID(u)
		if !nodeIDsEqual(got.QODG.Succ(id), want.QODG.Succ(id)) ||
			!nodeIDsEqual(got.QODG.Pred(id), want.QODG.Pred(id)) {
			t.Fatalf("node %d adjacency differs: succ %v/%v pred %v/%v", u,
				got.QODG.Succ(id), want.QODG.Succ(id), got.QODG.Pred(id), want.QODG.Pred(id))
		}
	}
	ge, we := got.IIG.Edges(), want.IIG.Edges()
	if len(ge) != len(we) {
		t.Fatalf("IIG %d edges, want %d", len(ge), len(we))
	}
	for i := range we {
		if ge[i] != we[i] {
			t.Fatalf("IIG edge %d = %+v, want %+v", i, ge[i], we[i])
		}
	}
}

func nodeIDsEqual(a, b []qodg.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
