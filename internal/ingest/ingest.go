// Package ingest implements streaming netlist ingestion: a chunked .qc
// tokenizer/parser that emits validated gates one at a time, so a circuit
// can be analyzed (internal/analysis.AnalyzeStream) and estimated without
// ever materializing its gate list. Peak ingestion memory is one read chunk
// plus one line plus the qubit register — independent of gate count — which
// opens the beyond-memory workload class the ROADMAP names.
//
// The fused analysis front end needs two passes over the gate stream (a
// counting pass and a CSR fill pass), so a Scanner is re-windable:
//
//   - sources that implement io.ReadSeeker (files) rewind with one Seek;
//   - everything else (pipes, network bodies) is spooled to an anonymous
//     temp file on the way through the first pass, and later passes replay
//     the spool. An optional byte cap bounds the spool (ErrSpoolLimit), so
//     a network service can move its request-size limit from RAM to disk.
//
// Statement parsing is circuit.LineParser — the exact code path ParseQC
// runs — so the streamed dialect, validation and *circuit.SyntaxError
// line/column diagnostics are identical to the materializing parser by
// construction.
package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"unsafe"

	"repro/internal/circuit"
)

// Defaults for Options fields left zero.
const (
	// DefaultChunkBytes is the read-chunk size: large enough to amortize
	// syscalls, small enough to be irrelevant next to any real netlist.
	DefaultChunkBytes = 256 << 10
	// DefaultMaxLineBytes caps a single .qc line, matching the 16 MiB token
	// cap ParseQC has always imposed via bufio.Scanner.
	DefaultMaxLineBytes = 16 << 20
)

// ErrSpoolLimit marks a non-seekable source that outgrew the configured
// on-disk spool cap. Services map it to 413 (the spool cap is the streaming
// successor of the in-RAM body cap).
var ErrSpoolLimit = errors.New("spool limit exceeded")

// Options tunes a Scanner; the zero value is ready for general use.
type Options struct {
	// ChunkBytes sizes the read buffer; 0 means DefaultChunkBytes.
	ChunkBytes int
	// MaxLineBytes caps one .qc line; 0 means DefaultMaxLineBytes.
	MaxLineBytes int
	// SpoolDir receives the temp spool for non-seekable sources; "" means
	// os.TempDir().
	SpoolDir string
	// MaxSpoolBytes caps the bytes spooled to disk for non-seekable
	// sources; 0 means no cap. Exceeding it fails the scan with an error
	// wrapping ErrSpoolLimit. Seekable sources never spool and are never
	// capped here.
	MaxSpoolBytes int64
}

func (o Options) chunk() int {
	if o.ChunkBytes <= 0 {
		return DefaultChunkBytes
	}
	return o.ChunkBytes
}

func (o Options) maxLine() int {
	if o.MaxLineBytes <= 0 {
		return DefaultMaxLineBytes
	}
	return o.MaxLineBytes
}

// Scanner streams validated gates out of a .qc source. Use like
// bufio.Scanner: Scan advances to the next gate, Gate returns it (borrowed
// — valid until the next Scan or Rewind; Clone to retain), Err reports the
// terminal failure after Scan returns false. Rewind restarts the gate
// stream for another pass. Not safe for concurrent use.
type Scanner struct {
	name string
	opt  Options
	p    *circuit.LineParser

	src    io.Reader
	seeker io.ReadSeeker // non-nil when src can rewind itself
	start  int64         // seek origin of the netlist within seeker

	spool     *os.File // lazily created for non-seekable sources
	spooled   int64    // bytes written to the spool so far
	spoolDone bool     // the source has been copied to the spool completely

	lr        lineReader
	started   bool  // startPass has run for the current pass
	replaying bool  // current pass reads the spool, not the source
	srcSize   int64 // max bytes consumed over source-reading passes

	gate      circuit.Gate
	gateIndex int
	err       error
	closed    bool
	ownsFile  *os.File    // set by Open; closed by Close
	extra     []io.Closer // container resources (files, inflate spools) released by Close
	inflated  int64       // bytes a gzip container inflated to disk on this stream's behalf

	// Replay checkpoints, recorded during the first complete pass so later
	// passes can be split into concurrent segments (Segments).
	ckpts    []checkpoint
	ckptDone bool // a complete pass has recorded its checkpoints
	nGates   int  // total gate count, valid once ckptDone
}

// NewScanner returns a Scanner over r. name labels the netlist in
// diagnostics and names the circuit. If r implements io.ReadSeeker the
// scanner rewinds in place; otherwise the first pass spools the source to
// disk under opt's spool settings.
func NewScanner(r io.Reader, name string, opt Options) *Scanner {
	s := &Scanner{
		name:      name,
		opt:       opt,
		p:         circuit.NewLineParser(name),
		src:       r,
		gateIndex: -1,
	}
	if rs, ok := r.(io.ReadSeeker); ok {
		if pos, err := rs.Seek(0, io.SeekCurrent); err == nil {
			s.seeker = rs
			s.start = pos
		}
		// A seeker that cannot even report its position (exotic wrappers)
		// falls back to the spool path.
	}
	return s
}

// Open returns a file-backed gate stream, naming the circuit after the
// file the way circuit.LoadQCFile does. The container is detected by magic
// bytes, not extension: textual .qc, binary .qcb and gzip-wrapped either
// way all decode transparently. Close releases the file (and any inflate
// spool).
func Open(path string, opt Options) (Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := sniffSeekable(f, netlistName(path), opt, true, f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

// Name reports the netlist label.
func (s *Scanner) Name() string { return s.name }

// PrevalidatedGates implements analysis.PrevalidatedStream: the line parser
// validates every gate as it is parsed (circuit.Gate.Validate against the
// register, which only grows), so the analysis passes need not re-check.
func (s *Scanner) PrevalidatedGates() bool { return true }

// NumQubits reports the register size declared or auto-declared so far; it
// is final once a pass has consumed the whole stream.
func (s *Scanner) NumQubits() int { return s.p.NumQubits() }

// GateIndex reports the 0-based index of the current gate (-1 before the
// first Scan of a pass).
func (s *Scanner) GateIndex() int { return s.gateIndex }

// BytesRead reports the number of netlist bytes consumed from the original
// source (replay passes over the spool do not count twice). Once a pass has
// reached end of stream — or a rewind has drained a non-seekable source to
// the spool — it is the netlist's total size.
func (s *Scanner) BytesRead() int64 {
	if s.started && !s.replaying && s.lr.read > s.srcSize {
		return s.lr.read
	}
	return s.srcSize
}

// SpooledBytes reports how many bytes went to disk on this stream's
// behalf: the tee-spool for non-seekable sources plus any gzip inflate
// spool (0 for plain seekable sources).
func (s *Scanner) SpooledBytes() int64 { return s.spooled + s.inflated }

// Register exposes the scanner's qubit register as a gate-less circuit —
// read-only, shared with the live parser.
func (s *Scanner) Register() *circuit.Circuit { return s.p.Register() }

// Gate returns the current gate. Its operand slices are borrowed scratch,
// valid only until the next Scan or Rewind; Clone to retain.
func (s *Scanner) Gate() circuit.Gate { return s.gate }

// Err returns the terminal error, nil at clean end of stream.
func (s *Scanner) Err() error { return s.err }

// Scan advances to the next gate of the current pass, reporting false at
// end of stream or on error.
func (s *Scanner) Scan() bool {
	if s.err != nil || s.closed {
		return false
	}
	if !s.started {
		if err := s.startPass(); err != nil {
			s.err = err
			return false
		}
	}
	for {
		line, err := s.lr.next()
		if err == io.EOF {
			if !s.replaying {
				if s.seeker == nil {
					s.spoolDone = true
				}
				if s.lr.read > s.srcSize {
					s.srcSize = s.lr.read
				}
			}
			if !s.ckptDone {
				// This pass ran start to finish: its checkpoint trail and
				// gate count describe the complete netlist.
				s.ckptDone = true
				s.nGates = s.gateIndex + 1
			}
			return false
		}
		if err != nil {
			s.err = s.wrapIO(err)
			return false
		}
		// The line buffer is recycled on the next read; LineParser clones
		// every string it retains (qubit names), so viewing the bytes as a
		// string without copying is safe and keeps the per-line cost
		// allocation-free.
		var text string
		if len(line) > 0 {
			text = unsafe.String(&line[0], len(line))
		}
		g, ok, perr := s.p.Next(text)
		if perr != nil {
			s.err = perr
			return false
		}
		if ok {
			s.gate = g
			s.gateIndex++
			if !s.ckptDone && (s.gateIndex+1)%checkpointStride == 0 {
				// The line reader has consumed the gate's full line, so the
				// unread-window arithmetic lands the offset exactly on the
				// following line boundary.
				s.ckpts = append(s.ckpts, checkpoint{
					gate:   s.gateIndex + 1,
					off:    s.lr.read - int64(s.lr.n-s.lr.pos),
					line:   s.p.Line(),
					inBody: s.p.InBody(),
				})
			}
			return true
		}
	}
}

// Rewind restarts the gate stream so another pass can run. For seekable
// sources it is one Seek; for spooled sources the remainder of the source
// is drained to the spool first (enforcing the spool cap) and the next pass
// replays the spool from the start.
func (s *Scanner) Rewind() error {
	if s.closed {
		return fmt.Errorf("ingest: %s: scanner closed", s.name)
	}
	// Parse errors are terminal — the stream cannot be trusted past them —
	// but a rewind after a clean pass must clear nothing.
	if s.err != nil {
		return s.err
	}
	if s.seeker == nil && s.started && !s.spoolDone {
		// Finish copying the source so the replay sees the whole netlist.
		if err := s.drainToSpool(); err != nil {
			s.err = err
			return err
		}
	}
	s.started = false
	s.p.Rewind()
	s.gate = circuit.Gate{}
	s.gateIndex = -1
	return nil
}

// Close releases the spool (and the file when the scanner was built by
// Open). The scanner is unusable afterwards.
func (s *Scanner) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.spool != nil {
		err = s.spool.Close()
		s.spool = nil
	}
	if s.ownsFile != nil {
		if cerr := s.ownsFile.Close(); err == nil {
			err = cerr
		}
		s.ownsFile = nil
	}
	for _, c := range s.extra {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	s.extra = nil
	return err
}

// Materialize replays the stream into a fully materialized Circuit — the
// escape hatch for flows that need the gate list itself (FT decomposition
// of a non-FT upload, equivalence tests). The scanner remains usable: call
// Rewind to stream again.
func (s *Scanner) Materialize() (*circuit.Circuit, error) {
	if err := s.Rewind(); err != nil {
		return nil, err
	}
	var gates []circuit.Gate
	for s.Scan() {
		gates = append(gates, s.gate.Clone())
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	c := s.p.Register().Clone()
	c.Gates = gates
	return c, nil
}

// startPass points the line reader at the right byte stream for the pass
// that is about to run.
func (s *Scanner) startPass() error {
	defer func() { s.started = true }()
	if !s.ckptDone {
		// A previous pass stopped early (its trail is partial); this pass
		// starts from gate 0, so record from scratch.
		s.ckpts = s.ckpts[:0]
	}
	if s.seeker != nil {
		if _, err := s.seeker.Seek(s.start, io.SeekStart); err != nil {
			return s.wrapIO(err)
		}
		s.replaying = false
		s.lr.reset(s.seeker, s.opt.chunk(), s.opt.maxLine())
		return nil
	}
	if s.spoolDone {
		// Replay pass: the whole netlist sits in the spool.
		if _, err := s.spool.Seek(0, io.SeekStart); err != nil {
			return s.wrapIO(err)
		}
		s.replaying = true
		s.lr.reset(s.spool, s.opt.chunk(), s.opt.maxLine())
		return nil
	}
	// First pass over a non-seekable source: tee every chunk into the
	// spool as it is parsed.
	if s.spool == nil {
		f, err := os.CreateTemp(s.opt.SpoolDir, "leqa-ingest-*.spool")
		if err != nil {
			return fmt.Errorf("ingest: %s: creating spool: %w", s.name, err)
		}
		// Unlink immediately: the spool is anonymous scratch, reclaimed by
		// the OS even if the process dies without Close.
		os.Remove(f.Name())
		s.spool = f
	}
	s.replaying = false
	s.lr.reset(io.TeeReader(s.src, (*spoolWriter)(s)), s.opt.chunk(), s.opt.maxLine())
	return nil
}

// drainToSpool copies the unread remainder of a non-seekable source into
// the spool so a replay pass sees the complete netlist.
func (s *Scanner) drainToSpool() error {
	if s.spool == nil {
		if err := s.startPass(); err != nil {
			return err
		}
	}
	// Unparsed bytes still sitting in the line reader went through the tee
	// already; only the source's remainder is missing.
	if _, err := io.Copy((*spoolWriter)(s), s.src); err != nil {
		return s.wrapIO(err)
	}
	s.spoolDone = true
	// Every source byte has passed through the spool writer, so the spool
	// size is the netlist size — record it for BytesRead even though the
	// parsing pass never reached EOF.
	s.srcSize = s.spooled
	return nil
}

func (s *Scanner) wrapIO(err error) error {
	return fmt.Errorf("ingest: %s: %w", s.name, err)
}

// spoolWriter adapts the scanner into the spool's capped io.Writer.
type spoolWriter Scanner

func (w *spoolWriter) Write(p []byte) (int, error) {
	s := (*Scanner)(w)
	if max := s.opt.MaxSpoolBytes; max > 0 && s.spooled+int64(len(p)) > max {
		return 0, fmt.Errorf("%w: netlist %q exceeds the %d-byte spool cap", ErrSpoolLimit, s.name, max)
	}
	n, err := s.spool.Write(p)
	s.spooled += int64(n)
	return n, err
}

// lineReader delivers one line at a time out of fixed-size chunked reads.
// Lines that fit inside the chunk buffer are returned as views into it
// (zero copy); longer lines accumulate into a growable carry buffer capped
// at maxLine. Returned slices are valid until the next call.
type lineReader struct {
	r       io.Reader
	buf     []byte // chunk buffer
	pos, n  int    // unread window within buf
	carry   []byte // partial line spanning chunk boundaries
	maxLine int
	read    int64 // total bytes pulled from r this pass
	eof     bool
}

func (lr *lineReader) reset(r io.Reader, chunk, maxLine int) {
	if cap(lr.buf) < chunk {
		lr.buf = make([]byte, chunk)
	}
	lr.buf = lr.buf[:chunk]
	lr.r = r
	lr.pos, lr.n = 0, 0
	lr.carry = lr.carry[:0]
	lr.maxLine = maxLine
	lr.read = 0
	lr.eof = false
}

// next returns the next line without its terminator ('\n'; a preceding
// '\r' is left in place — the field splitter treats it as whitespace).
// io.EOF signals a clean end of stream.
func (lr *lineReader) next() ([]byte, error) {
	lr.carry = lr.carry[:0]
	for {
		if lr.pos < lr.n {
			window := lr.buf[lr.pos:lr.n]
			if i := bytes.IndexByte(window, '\n'); i >= 0 {
				lr.pos += i + 1
				if len(lr.carry) == 0 {
					// The cap must hold on the zero-copy path too, or
					// accept/reject would depend on where chunk boundaries
					// happen to fall within the stream.
					if i > lr.maxLine {
						return nil, fmt.Errorf("line exceeds %d bytes", lr.maxLine)
					}
					return window[:i], nil
				}
				if err := lr.accumulate(window[:i]); err != nil {
					return nil, err
				}
				return lr.carry, nil
			}
			if err := lr.accumulate(window); err != nil {
				return nil, err
			}
			lr.pos = lr.n
		}
		if lr.eof {
			if len(lr.carry) > 0 {
				// Final line without a trailing newline.
				return lr.carry, nil
			}
			return nil, io.EOF
		}
		n, err := lr.r.Read(lr.buf)
		lr.pos, lr.n = 0, n
		lr.read += int64(n)
		if err == io.EOF {
			lr.eof = true
		} else if err != nil {
			return nil, err
		}
	}
}

func (lr *lineReader) accumulate(chunk []byte) error {
	if len(lr.carry)+len(chunk) > lr.maxLine {
		return fmt.Errorf("line exceeds %d bytes", lr.maxLine)
	}
	lr.carry = append(lr.carry, chunk...)
	return nil
}
