package ingest

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/circuit"
)

const sampleQC = `# streaming sample
.v a b c d
.i a b c
.o d
BEGIN
t1 a
t2 a b
t3 a b c
f3 a b c
swap a b
H a
T* c
CNOT a b
t2 b zz   # auto-declared ancilla
END
`

// pipe hides the Seeker of an in-memory reader, forcing the spool path.
type pipe struct{ io.Reader }

// collect drains the scanner's current pass into cloned gates.
func collect(t *testing.T, s Stream) []circuit.Gate {
	t.Helper()
	var gates []circuit.Gate
	for s.Scan() {
		gates = append(gates, s.Gate().Clone())
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	return gates
}

// assertGatesEqual compares two gate sequences operand for operand.
func assertGatesEqual(t *testing.T, label string, got, want []circuit.Gate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d gates, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Type != w.Type || !intsEqual(g.Controls, w.Controls) || !intsEqual(g.Targets, w.Targets) {
			t.Fatalf("%s: gate %d = %+v, want %+v", label, i, g, w)
		}
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestScannerMatchesParseQC proves the streamed parse emits exactly the
// gates ParseQC materializes — across the seekable path, the spooled pipe
// path, and pathological chunk sizes that split lines mid-token.
func TestScannerMatchesParseQC(t *testing.T) {
	want, err := circuit.ParseQC(strings.NewReader(sampleQC), "sample")
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]*Scanner{
		"seekable": NewScanner(strings.NewReader(sampleQC), "sample", Options{}),
		"pipe":     NewScanner(pipe{strings.NewReader(sampleQC)}, "sample", Options{}),
		"chunk-1":  NewScanner(strings.NewReader(sampleQC), "sample", Options{ChunkBytes: 1}),
		"chunk-7":  NewScanner(pipe{strings.NewReader(sampleQC)}, "sample", Options{ChunkBytes: 7}),
		"no-final-newline": NewScanner(
			strings.NewReader(strings.TrimRight(sampleQC, "\n")), "sample", Options{}),
	}
	for label, s := range cases {
		got := collect(t, s)
		assertGatesEqual(t, label, got, want.Gates)
		if s.NumQubits() != want.NumQubits() {
			t.Errorf("%s: NumQubits = %d, want %d", label, s.NumQubits(), want.NumQubits())
		}
		s.Close()
	}
}

// TestScannerRewind runs three passes over both rewind mechanisms and
// checks each replays the identical gate stream.
func TestScannerRewind(t *testing.T) {
	want, err := circuit.ParseQC(strings.NewReader(sampleQC), "sample")
	if err != nil {
		t.Fatal(err)
	}
	for label, s := range map[string]*Scanner{
		"seek":  NewScanner(strings.NewReader(sampleQC), "sample", Options{}),
		"spool": NewScanner(pipe{strings.NewReader(sampleQC)}, "sample", Options{ChunkBytes: 16}),
	} {
		for pass := 0; pass < 3; pass++ {
			got := collect(t, s)
			assertGatesEqual(t, label, got, want.Gates)
			if err := s.Rewind(); err != nil {
				t.Fatalf("%s pass %d: %v", label, pass, err)
			}
		}
		if label == "spool" && s.SpooledBytes() != int64(len(sampleQC)) {
			t.Errorf("spooled %d bytes, want %d", s.SpooledBytes(), len(sampleQC))
		}
		if s.BytesRead() != int64(len(sampleQC)) {
			t.Errorf("%s: BytesRead = %d, want %d", label, s.BytesRead(), len(sampleQC))
		}
		s.Close()
	}
}

// TestScannerRewindBeforeEOF rewinds a spooled source mid-stream: the
// unread remainder must be drained to the spool so the replay is complete.
func TestScannerRewindBeforeEOF(t *testing.T) {
	s := NewScanner(pipe{strings.NewReader(sampleQC)}, "sample", Options{ChunkBytes: 8})
	defer s.Close()
	if !s.Scan() {
		t.Fatal(s.Err())
	}
	if err := s.Rewind(); err != nil {
		t.Fatal(err)
	}
	want, err := circuit.ParseQC(strings.NewReader(sampleQC), "sample")
	if err != nil {
		t.Fatal(err)
	}
	assertGatesEqual(t, "replay", collect(t, s), want.Gates)
}

// TestScannerSpoolLimit proves the disk-spool cap fails the scan with
// ErrSpoolLimit, and that seekable sources are exempt.
func TestScannerSpoolLimit(t *testing.T) {
	s := NewScanner(pipe{strings.NewReader(sampleQC)}, "sample", Options{MaxSpoolBytes: 16})
	defer s.Close()
	for s.Scan() {
	}
	if err := s.Err(); !errors.Is(err, ErrSpoolLimit) {
		t.Fatalf("err = %v, want ErrSpoolLimit", err)
	}
	seek := NewScanner(strings.NewReader(sampleQC), "sample", Options{MaxSpoolBytes: 16})
	defer seek.Close()
	for seek.Scan() {
	}
	if err := seek.Err(); err != nil {
		t.Fatalf("seekable source hit spool cap: %v", err)
	}
}

// TestScannerLineCap bounds the memory one absurd line can pin — and the
// verdict must not depend on whether the line straddles a chunk boundary
// or sits wholly inside one chunk (the zero-copy path).
func TestScannerLineCap(t *testing.T) {
	long := ".v " + strings.Repeat("q ", 600) + "\nBEGIN\nEND\n"
	for label, chunk := range map[string]int{"spanning-chunks": 64, "inside-one-chunk": 1 << 16} {
		s := NewScanner(strings.NewReader(long), "long", Options{MaxLineBytes: 256, ChunkBytes: chunk})
		for s.Scan() {
		}
		if s.Err() == nil {
			t.Errorf("%s: want line-cap error", label)
		}
		s.Close()
	}
}

// TestScannerSyntaxErrors checks streamed diagnostics carry the shared
// line/column context and match ParseQC's exactly.
func TestScannerSyntaxErrors(t *testing.T) {
	cases := []string{
		".v a\nBEGIN\nbogus a\nEND\n",
		".v a b\nBEGIN\nt3 a b\nEND\n",
		".v a b\nBEGIN\nt2 a a\nEND\n",
		".v a b\nt2 a b\n",
	}
	for _, src := range cases {
		_, perr := circuit.ParseQC(strings.NewReader(src), "bad")
		if perr == nil {
			t.Fatalf("ParseQC accepted %q", src)
		}
		s := NewScanner(strings.NewReader(src), "bad", Options{})
		for s.Scan() {
		}
		serr := s.Err()
		if serr == nil || serr.Error() != perr.Error() {
			t.Errorf("stream error %v, want %v", serr, perr)
		}
		var syn *circuit.SyntaxError
		if !errors.As(serr, &syn) || syn.Line == 0 {
			t.Errorf("error %v is not a positioned SyntaxError", serr)
		}
		s.Close()
	}
}

// TestOpenNamesLikeLoadQCFile keeps the CLI's circuit naming stable.
func TestOpenNamesLikeLoadQCFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mycirc.qc")
	if err := os.WriteFile(path, []byte(sampleQC), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Name() != "mycirc" {
		t.Errorf("Name = %q, want mycirc", s.Name())
	}
	want, err := circuit.LoadQCFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertGatesEqual(t, "open", collect(t, s), want.Gates)
}

// TestMaterialize checks the escape hatch reproduces ParseQC's circuit and
// leaves the scanner usable.
func TestMaterialize(t *testing.T) {
	want, err := circuit.ParseQC(strings.NewReader(sampleQC), "sample")
	if err != nil {
		t.Fatal(err)
	}
	s := NewScanner(pipe{strings.NewReader(sampleQC)}, "sample", Options{ChunkBytes: 32})
	defer s.Close()
	// Consume part of the stream first: Materialize must rewind cleanly.
	s.Scan()
	s.Scan()
	c, err := s.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	assertGatesEqual(t, "materialize", c.Gates, want.Gates)
	if c.NumQubits() != want.NumQubits() || c.Name != want.Name {
		t.Errorf("materialized %q/%d qubits, want %q/%d", c.Name, c.NumQubits(), want.Name, want.NumQubits())
	}
	for i := 0; i < want.NumQubits(); i++ {
		if c.QubitName(i) != want.QubitName(i) {
			t.Errorf("qubit %d named %q, want %q", i, c.QubitName(i), want.QubitName(i))
		}
	}
	// The scanner still streams after materializing.
	if err := s.Rewind(); err != nil {
		t.Fatal(err)
	}
	assertGatesEqual(t, "post-materialize", collect(t, s), want.Gates)
}

// FuzzScanner is the satellite fuzz target: for arbitrary bytes, the
// streamed parse must agree with circuit.ParseQC — same accept/reject
// decision, same diagnostics, and gate-for-gate identical output, on both
// the seekable and the spooled path.
func FuzzScanner(f *testing.F) {
	f.Add([]byte(sampleQC))
	f.Add([]byte(".v a b\nBEGIN\nt2 a b\nEND\n"))
	f.Add([]byte(".v a\nBEGIN\nbogus a\nEND\n"))
	f.Add([]byte("BEGIN\nt2 x y\nt5 a b c d e\nf4 a b c d\nEND"))
	f.Add([]byte("# only comments\n\n\n"))
	f.Add([]byte(".v a b\nBEGIN\nswap a b\r\nH a\rH b\nEND\n"))
	f.Add([]byte("t1 a\n"))
	f.Add([]byte(".v a\nBEGIN\nt0\nT* a\nS* a\ntdg a\nEND\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		want, werr := circuit.ParseQC(bytes.NewReader(data), "fuzz")
		for label, s := range map[string]*Scanner{
			"seek":  NewScanner(bytes.NewReader(data), "fuzz", Options{ChunkBytes: 31}),
			"spool": NewScanner(pipe{bytes.NewReader(data)}, "fuzz", Options{ChunkBytes: 31}),
		} {
			var gates []circuit.Gate
			for s.Scan() {
				gates = append(gates, s.Gate().Clone())
			}
			serr := s.Err()
			if (werr == nil) != (serr == nil) {
				t.Fatalf("%s: accept/reject mismatch: ParseQC err=%v, Scanner err=%v", label, werr, serr)
			}
			if werr != nil {
				if serr.Error() != werr.Error() {
					t.Fatalf("%s: diagnostics diverge:\nParseQC: %v\nScanner: %v", label, werr, serr)
				}
				s.Close()
				continue
			}
			if len(gates) != len(want.Gates) {
				t.Fatalf("%s: %d gates, want %d", label, len(gates), len(want.Gates))
			}
			for i := range gates {
				g, w := gates[i], want.Gates[i]
				if g.Type != w.Type || !intsEqual(g.Controls, w.Controls) || !intsEqual(g.Targets, w.Targets) {
					t.Fatalf("%s: gate %d = %+v, want %+v", label, i, g, w)
				}
			}
			if s.NumQubits() != want.NumQubits() {
				t.Fatalf("%s: NumQubits = %d, want %d", label, s.NumQubits(), want.NumQubits())
			}
			s.Close()
		}
	})
}
