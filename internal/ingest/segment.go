// Segment replay: the Scanner records byte-offset checkpoints during its
// first complete pass, then Segments carves the netlist into independently
// replayable windows — the source side of the shard-parallel streamed
// analysis (analysis.SegmentedStream). Each segment reads through its own
// io.SectionReader (pread — no shared file offset) and parses with a forked
// LineParser over a cloned register, so segments are safe to consume from
// distinct goroutines with zero coordination.
package ingest

import (
	"fmt"
	"io"
	"unsafe"

	"repro/internal/analysis"
	"repro/internal/circuit"
)

// checkpointStride is the gate spacing of replay checkpoints: fine enough
// that shard boundaries land near their even-split targets on any netlist
// large enough to shard, coarse enough that the trail costs ~32 bytes per
// thousand gates.
const checkpointStride = 1024

// checkpoint pins one resumable position of the netlist byte stream, always
// on a line boundary.
type checkpoint struct {
	gate   int   // index of the next gate to be emitted
	off    int64 // netlist-relative byte offset of the position
	line   int   // lines consumed up to the position
	inBody bool  // BEGIN/END state at the position
}

// readerAt returns the random-access view of the complete netlist (and the
// netlist's base offset within it), or nil when none exists yet: the
// original seeker for seekable sources, the spool once a non-seekable
// source has been copied through completely.
func (s *Scanner) readerAt() (io.ReaderAt, int64) {
	if s.seeker != nil {
		if ra, ok := s.seeker.(io.ReaderAt); ok {
			return ra, s.start
		}
		return nil, 0
	}
	if s.spoolDone && s.spool != nil {
		return s.spool, 0
	}
	return nil, 0
}

// Segments implements analysis.SegmentedStream: after a complete pass has
// recorded the checkpoint trail, it splits the netlist into at most max
// contiguous gate ranges cut at checkpoints, each backed by its own
// section reader and forked parser. A (nil, nil, nil) return means the
// scanner cannot segment (no complete pass yet, no random-access view, or
// the netlist is too small to have interior checkpoints) and the caller
// should replay serially. The scanner itself is left untouched — its own
// passes remain available.
func (s *Scanner) Segments(max int) ([]analysis.GateStream, []int, error) {
	if s.closed || s.err != nil || !s.ckptDone || max < 2 {
		return nil, nil, nil
	}
	ra, base := s.readerAt()
	if ra == nil {
		return nil, nil, nil
	}
	// Candidate boundaries: the implicit start plus every recorded
	// checkpoint strictly inside the gate range (one at the very end would
	// only split off an empty segment).
	cps := make([]checkpoint, 0, len(s.ckpts)+1)
	cps = append(cps, checkpoint{})
	for _, cp := range s.ckpts {
		if cp.gate < s.nGates {
			cps = append(cps, cp)
		}
	}
	k := max
	if k > len(cps) {
		k = len(cps)
	}
	if k < 2 {
		return nil, nil, nil
	}
	chosen := make([]checkpoint, k)
	for i := range chosen {
		chosen[i] = cps[i*len(cps)/k]
	}
	segs := make([]analysis.GateStream, k)
	cuts := make([]int, k+1)
	for i, cp := range chosen {
		end := s.srcSize
		if i+1 < k {
			end = chosen[i+1].off
		}
		cuts[i] = cp.gate
		segs[i] = &segmentStream{
			name:    s.name,
			tmpl:    s.p.ForkAt(cp.line, cp.inBody),
			sect:    io.NewSectionReader(ra, base+cp.off, end-cp.off),
			chunk:   s.opt.chunk(),
			maxLine: s.opt.maxLine(),
		}
	}
	cuts[k] = s.nGates
	return segs, cuts, nil
}

// segmentStream replays one checkpoint-delimited window of the netlist: a
// Scanner stripped of spooling and checkpointing, over a section reader and
// a forked parser.
type segmentStream struct {
	name    string
	tmpl    *circuit.LineParser // pristine fork; cloned again per pass
	p       *circuit.LineParser
	sect    *io.SectionReader
	lr      lineReader
	chunk   int
	maxLine int

	started bool
	gate    circuit.Gate
	err     error
}

func (g *segmentStream) Scan() bool {
	if g.err != nil {
		return false
	}
	if !g.started {
		g.started = true
		// Fork the template rather than consuming it, so Rewind can fork
		// again from the same pristine state.
		g.p = g.tmpl.ForkAt(g.tmpl.Line(), g.tmpl.InBody())
		if _, err := g.sect.Seek(0, io.SeekStart); err != nil {
			g.err = fmt.Errorf("ingest: %s: %w", g.name, err)
			return false
		}
		g.lr.reset(g.sect, g.chunk, g.maxLine)
	}
	for {
		line, err := g.lr.next()
		if err == io.EOF {
			return false
		}
		if err != nil {
			g.err = fmt.Errorf("ingest: %s: %w", g.name, err)
			return false
		}
		var text string
		if len(line) > 0 {
			text = unsafe.String(&line[0], len(line))
		}
		gt, ok, perr := g.p.Next(text)
		if perr != nil {
			g.err = perr
			return false
		}
		if ok {
			g.gate = gt
			return true
		}
	}
}

func (g *segmentStream) Gate() circuit.Gate { return g.gate }
func (g *segmentStream) Err() error         { return g.err }

func (g *segmentStream) Rewind() error {
	if g.err != nil {
		return g.err
	}
	g.started = false
	g.gate = circuit.Gate{}
	return nil
}

func (g *segmentStream) NumQubits() int {
	if g.p != nil {
		return g.p.NumQubits()
	}
	return g.tmpl.NumQubits()
}

func (g *segmentStream) Name() string { return g.name }

// PrevalidatedGates implements analysis.PrevalidatedStream: segments parse
// with a forked LineParser over the full cloned register, which validates
// every gate exactly like the parent scanner's first pass did.
func (g *segmentStream) PrevalidatedGates() bool { return true }
