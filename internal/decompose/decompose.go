// Package decompose lowers reversible-logic netlists to the fault-tolerant
// gate set {CNOT, H, T, T†, S, S†, X, Y, Z}, following the recipe in §4.1 of
// the LEQA paper:
//
//  1. n-input Toffoli and Fredkin gates (n > 3 inputs) are decomposed into
//     3-input Toffoli/Fredkin gates with fresh ancilla qubits (Nielsen &
//     Chuang §4.3); no ancilla sharing between decomposed gates.
//  2. 3-input Fredkin gates are replaced by three 3-input Toffoli gates.
//  3. 3-input Toffoli gates are decomposed into the 15-gate network over
//     {H, T, T†, CNOT} (Shende & Markov; N&C Fig. 4.9), the network shown in
//     the paper's Fig. 2(a).
//
// Unconditional swaps are replaced by three CNOTs.
package decompose

import (
	"fmt"

	"repro/internal/circuit"
)

// Options controls the lowering.
type Options struct {
	// ShareAncilla reuses one ancilla pool across decomposed MCT gates
	// instead of allocating fresh qubits per gate. The paper's flow does
	// NOT share ("no ancillary sharing is performed"), so the default is
	// false; sharing is provided for ablation studies.
	ShareAncilla bool
	// KeepToffoli stops after step 2, leaving 3-input Toffolis in the
	// output. Used by tests and by flows targeting fabrics with native
	// Toffoli support.
	KeepToffoli bool
}

// ToFT lowers a reversible/FT mixed circuit to the fault-tolerant gate set.
// The input circuit is not modified. Ancilla qubits required by multi-control
// decompositions are appended to the register of the returned circuit.
func ToFT(c *circuit.Circuit, opt Options) (*circuit.Circuit, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out, err := circuit.NewNamed(c.Name, c.QubitNames())
	if err != nil {
		return nil, err
	}
	var pool *ancillaPool
	if opt.ShareAncilla {
		pool = &ancillaPool{}
	}
	for i, g := range c.Gates {
		if err := lowerGate(out, g, opt, pool); err != nil {
			return nil, fmt.Errorf("decompose %q gate %d: %w", c.Name, i, err)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("decompose %q: output invalid: %w", c.Name, err)
	}
	return out, nil
}

// ancillaPool hands out reusable ancilla indices when sharing is enabled.
type ancillaPool struct {
	free []int
}

func (p *ancillaPool) get(out *circuit.Circuit) int {
	if n := len(p.free); n > 0 {
		q := p.free[n-1]
		p.free = p.free[:n-1]
		return q
	}
	return out.AddAncilla()
}

func (p *ancillaPool) put(qs ...int) { p.free = append(p.free, qs...) }

func lowerGate(out *circuit.Circuit, g circuit.Gate, opt Options, pool *ancillaPool) error {
	switch g.Type {
	case circuit.X, circuit.Y, circuit.Z, circuit.H,
		circuit.S, circuit.Sdg, circuit.T, circuit.Tdg, circuit.CNOT:
		out.Append(g)
		return nil
	case circuit.Swap:
		a, b := g.Targets[0], g.Targets[1]
		out.Append(circuit.NewCNOT(a, b), circuit.NewCNOT(b, a), circuit.NewCNOT(a, b))
		return nil
	case circuit.Toffoli:
		emitToffoli(out, g.Controls[0], g.Controls[1], g.Targets[0], opt)
		return nil
	case circuit.Fredkin:
		emitFredkin(out, g.Controls[0], g.Targets[0], g.Targets[1], opt)
		return nil
	case circuit.MCT:
		return lowerMCT(out, g.Controls, g.Targets[0], opt, pool)
	case circuit.MCF:
		return lowerMCF(out, g.Controls, g.Targets[0], g.Targets[1], opt, pool)
	default:
		return fmt.Errorf("unknown gate type %s", g.Type)
	}
}

// emitFredkin writes a 3-input Fredkin as three 3-input Toffolis
// (paper §4.1): TOF(c,b,a) TOF(c,a,b) TOF(c,b,a).
func emitFredkin(out *circuit.Circuit, c, a, b int, opt Options) {
	emitToffoli(out, c, b, a, opt)
	emitToffoli(out, c, a, b, opt)
	emitToffoli(out, c, b, a, opt)
}

// emitToffoli writes a 3-input Toffoli, either natively (KeepToffoli) or as
// the 15-gate {H,T,T†,CNOT} network of the paper's Fig. 2(a):
//
//	H(t) CX(b,t) T†(t) CX(a,t) T(t) CX(b,t) T†(t) CX(a,t) T(b) T(t) H(t)
//	CX(a,b) T(a) T†(b) CX(a,b)
//
// This is the canonical 6-CNOT, 7-T realization; it implements CCX exactly
// (no residual global phase).
func emitToffoli(out *circuit.Circuit, a, b, t int, opt Options) {
	if opt.KeepToffoli {
		out.Append(circuit.NewToffoli(a, b, t))
		return
	}
	out.Append(
		circuit.NewOneQubit(circuit.H, t),
		circuit.NewCNOT(b, t),
		circuit.NewOneQubit(circuit.Tdg, t),
		circuit.NewCNOT(a, t),
		circuit.NewOneQubit(circuit.T, t),
		circuit.NewCNOT(b, t),
		circuit.NewOneQubit(circuit.Tdg, t),
		circuit.NewCNOT(a, t),
		circuit.NewOneQubit(circuit.T, b),
		circuit.NewOneQubit(circuit.T, t),
		circuit.NewOneQubit(circuit.H, t),
		circuit.NewCNOT(a, b),
		circuit.NewOneQubit(circuit.T, a),
		circuit.NewOneQubit(circuit.Tdg, b),
		circuit.NewCNOT(a, b),
	)
}

// FTGatesPerToffoli is the size of the Toffoli realization emitted by this
// package (6 CNOT + 2 H + 7 T/T†); Table 3's gf2-multiplier operation counts
// follow the formula 15·n² + 3(n−1) with this value.
const FTGatesPerToffoli = 15

// lowerMCT decomposes a k-control Toffoli (k ≥ 3) into 2k−3 3-input
// Toffolis using k−2 ancilla qubits (N&C §4.3, Fig. 4.10): an AND-chain of
// the controls is computed into ancillas, the final Toffoli flips the target,
// and the chain is uncomputed to restore the ancillas to |0⟩.
func lowerMCT(out *circuit.Circuit, controls []int, target int, opt Options, pool *ancillaPool) error {
	k := len(controls)
	if k < 3 {
		return fmt.Errorf("MCT with %d controls; want ≥3", k)
	}
	anc := make([]int, k-2)
	for i := range anc {
		if pool != nil {
			anc[i] = pool.get(out)
		} else {
			anc[i] = out.AddAncilla()
		}
	}
	// Compute chain: anc[0] = c0·c1; anc[i] = c_{i+1}·anc[i-1].
	emitToffoli(out, controls[0], controls[1], anc[0], opt)
	for i := 1; i < k-2; i++ {
		emitToffoli(out, controls[i+1], anc[i-1], anc[i], opt)
	}
	// Apply.
	emitToffoli(out, controls[k-1], anc[k-3], target, opt)
	// Uncompute in reverse.
	for i := k - 3; i >= 1; i-- {
		emitToffoli(out, controls[i+1], anc[i-1], anc[i], opt)
	}
	emitToffoli(out, controls[0], controls[1], anc[0], opt)
	if pool != nil {
		pool.put(anc...)
	}
	return nil
}

// lowerMCF decomposes a multi-control Fredkin: the controls are ANDed into
// one ancilla (via an MCT when >1 control is left after the chain) and a
// single-control Fredkin performs the swap, followed by uncomputation.
func lowerMCF(out *circuit.Circuit, controls []int, a, b int, opt Options, pool *ancillaPool) error {
	if len(controls) < 2 {
		return fmt.Errorf("MCF with %d controls; want ≥2", len(controls))
	}
	var c int
	if pool != nil {
		c = pool.get(out)
	} else {
		c = out.AddAncilla()
	}
	and := circuit.NewMCT(controls, c)
	if err := lowerGate(out, and, opt, pool); err != nil {
		return err
	}
	emitFredkin(out, c, a, b, opt)
	if err := lowerGate(out, and, opt, pool); err != nil {
		return err
	}
	if pool != nil {
		pool.put(c)
	}
	return nil
}

// CountFT predicts the FT gate count of lowering g without emitting it;
// used by generators to size circuits.
func CountFT(g circuit.Gate) int {
	switch g.Type {
	case circuit.X, circuit.Y, circuit.Z, circuit.H,
		circuit.S, circuit.Sdg, circuit.T, circuit.Tdg, circuit.CNOT:
		return 1
	case circuit.Swap:
		return 3
	case circuit.Toffoli:
		return FTGatesPerToffoli
	case circuit.Fredkin:
		return 3 * FTGatesPerToffoli
	case circuit.MCT:
		k := len(g.Controls)
		return (2*k - 3) * FTGatesPerToffoli
	case circuit.MCF:
		// Two control-AND computations (compute + uncompute) plus three
		// Toffolis for the controlled swap.
		k := len(g.Controls)
		andCost := FTGatesPerToffoli // k == 2 → single Toffoli
		if k >= 3 {
			andCost = (2*k - 3) * FTGatesPerToffoli
		}
		return 2*andCost + 3*FTGatesPerToffoli
	default:
		return 0
	}
}
