package decompose

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/sim"
)

// mustFT lowers or fails the test.
func mustFT(t *testing.T, c *circuit.Circuit, opt Options) *circuit.Circuit {
	t.Helper()
	out, err := ToFT(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestToffoliDecompositionExact(t *testing.T) {
	raw := circuit.New("tof", 3)
	raw.Append(circuit.NewToffoli(0, 1, 2))
	ft := mustFT(t, raw, Options{})
	if ft.NumGates() != FTGatesPerToffoli {
		t.Fatalf("Toffoli lowered to %d gates, want %d", ft.NumGates(), FTGatesPerToffoli)
	}
	if !ft.IsFT() {
		t.Fatal("output contains non-FT gates")
	}
	eq, err := sim.CircuitsEquivalent(raw, ft, 3, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("15-gate network is NOT unitarily equal to Toffoli")
	}
}

func TestToffoliDecompositionAllOrientations(t *testing.T) {
	// The network must be exact for any operand assignment.
	perms := [][3]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}, {2, 1, 0}}
	for _, p := range perms {
		raw := circuit.New("tof", 3)
		raw.Append(circuit.NewToffoli(p[0], p[1], p[2]))
		ft := mustFT(t, raw, Options{})
		eq, err := sim.CircuitsEquivalent(raw, ft, 3, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("Toffoli%v decomposition wrong", p)
		}
	}
}

func TestFredkinDecompositionExact(t *testing.T) {
	raw := circuit.New("fre", 3)
	raw.Append(circuit.NewFredkin(0, 1, 2))
	// Keep 3 Toffolis to check the paper's replacement first.
	mid := mustFT(t, raw, Options{KeepToffoli: true})
	if counts := mid.GateCounts(); counts[circuit.Toffoli] != 3 || mid.NumGates() != 3 {
		t.Fatalf("Fredkin should become exactly 3 Toffolis, got %v", counts)
	}
	eqMid, err := sim.CircuitsEquivalent(raw, mid, 3, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !eqMid {
		t.Error("Fredkin != 3 Toffolis")
	}
	// Full lowering.
	ft := mustFT(t, raw, Options{})
	if ft.NumGates() != 3*FTGatesPerToffoli {
		t.Fatalf("Fredkin lowered to %d gates, want %d", ft.NumGates(), 3*FTGatesPerToffoli)
	}
	eq, err := sim.CircuitsEquivalent(raw, ft, 3, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("full Fredkin lowering wrong")
	}
}

func TestSwapDecomposition(t *testing.T) {
	raw := circuit.New("swap", 2)
	raw.Append(circuit.NewSwap(0, 1))
	ft := mustFT(t, raw, Options{})
	if ft.NumGates() != 3 {
		t.Fatalf("Swap lowered to %d gates, want 3", ft.NumGates())
	}
	eq, err := sim.CircuitsEquivalent(raw, ft, 2, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("Swap != 3 CNOTs")
	}
}

func TestMCTDecompositionClassical(t *testing.T) {
	// For k = 3..6 controls, check the Toffoli-level decomposition on all
	// classical inputs: target flips iff all controls set, ancillas
	// restored to zero.
	for k := 3; k <= 6; k++ {
		controls := make([]int, k)
		for i := range controls {
			controls[i] = i
		}
		raw := circuit.New("mct", k+1)
		raw.Append(circuit.NewMCT(controls, k))
		low := mustFT(t, raw, Options{KeepToffoli: true})
		wantTof := 2*k - 3
		if got := low.GateCounts()[circuit.Toffoli]; got != wantTof {
			t.Errorf("k=%d: %d Toffolis, want %d", k, got, wantTof)
		}
		anc := low.NumQubits() - (k + 1)
		if anc != k-2 {
			t.Errorf("k=%d: %d ancillas, want %d", k, anc, k-2)
		}
		total := low.NumQubits()
		for in := uint64(0); in < 1<<uint(k+1); in++ {
			bits := sim.BitsFromUint(total, in)
			if err := bits.RunReversible(low); err != nil {
				t.Fatal(err)
			}
			want := in
			allSet := in&(1<<uint(k)-1) == 1<<uint(k)-1
			if allSet {
				want ^= 1 << uint(k)
			}
			if bits.Uint() != want {
				t.Errorf("k=%d input %b: got %b want %b", k, in, bits.Uint(), want)
			}
		}
	}
}

func TestMCTFullLoweringUnitary(t *testing.T) {
	// 3-control MCT fully lowered must equal the raw MCT on the computed
	// register (ancillas start in |0⟩ and must return there). Compare on
	// basis states of the original 4 wires with ancillas zeroed.
	raw := circuit.New("mct3", 4)
	raw.Append(circuit.NewMCT([]int{0, 1, 2}, 3))
	ft := mustFT(t, raw, Options{})
	if !ft.IsFT() {
		t.Fatal("not fully lowered")
	}
	n := ft.NumQubits()
	for in := uint64(0); in < 16; in++ {
		s, _ := sim.NewBasisState(n, in) // ancillas |0⟩
		if err := s.Run(ft); err != nil {
			t.Fatal(err)
		}
		want := in
		if in&7 == 7 {
			want ^= 8
		}
		a := s.Amplitude(want)
		if absc(a-1) > 1e-9 {
			t.Errorf("input %04b: amp at %b = %v", in, want, a)
		}
	}
}

func absc(c complex128) float64 {
	r, i := real(c), imag(c)
	if r < 0 {
		r = -r
	}
	if i < 0 {
		i = -i
	}
	return r + i
}

func TestMCFDecompositionClassical(t *testing.T) {
	raw := circuit.New("mcf", 4)
	raw.Append(circuit.Gate{Type: circuit.MCF, Controls: []int{0, 1}, Targets: []int{2, 3}})
	low := mustFT(t, raw, Options{KeepToffoli: true})
	total := low.NumQubits()
	for in := uint64(0); in < 16; in++ {
		bits := sim.BitsFromUint(total, in)
		if err := bits.RunReversible(low); err != nil {
			t.Fatal(err)
		}
		want := in
		if in&3 == 3 {
			b2, b3 := (in>>2)&1, (in>>3)&1
			want = in&3 | b3<<2 | b2<<3
		}
		if bits.Uint() != want {
			t.Errorf("input %04b: got %b want %b", in, bits.Uint(), want)
		}
	}
}

func TestFTGatesPassThrough(t *testing.T) {
	raw := circuit.New("ft", 2)
	raw.Append(
		circuit.NewOneQubit(circuit.H, 0),
		circuit.NewOneQubit(circuit.T, 1),
		circuit.NewOneQubit(circuit.Tdg, 0),
		circuit.NewOneQubit(circuit.S, 1),
		circuit.NewOneQubit(circuit.Sdg, 0),
		circuit.NewOneQubit(circuit.X, 1),
		circuit.NewOneQubit(circuit.Y, 0),
		circuit.NewOneQubit(circuit.Z, 1),
		circuit.NewCNOT(0, 1),
	)
	ft := mustFT(t, raw, Options{})
	if ft.NumGates() != raw.NumGates() {
		t.Fatalf("FT gates should pass through unchanged: %d -> %d", raw.NumGates(), ft.NumGates())
	}
	for i := range raw.Gates {
		if ft.Gates[i].Type != raw.Gates[i].Type {
			t.Errorf("gate %d changed type: %s -> %s", i, raw.Gates[i].Type, ft.Gates[i].Type)
		}
	}
}

func TestAncillaSharingReducesQubits(t *testing.T) {
	raw := circuit.New("many", 6)
	for i := 0; i < 5; i++ {
		raw.Append(circuit.NewMCT([]int{0, 1, 2, 3, 4}, 5))
	}
	noShare := mustFT(t, raw, Options{})
	share := mustFT(t, raw, Options{ShareAncilla: true})
	if share.NumQubits() >= noShare.NumQubits() {
		t.Errorf("sharing did not reduce ancillas: %d vs %d", share.NumQubits(), noShare.NumQubits())
	}
	// Sharing must not change the function: compare the Toffoli-level
	// variants classically on the original wires.
	lowNo := mustFT(t, raw, Options{KeepToffoli: true})
	lowSh := mustFT(t, raw, Options{KeepToffoli: true, ShareAncilla: true})
	rng := rand.New(rand.NewSource(1))
	const mask = uint64(63)
	for trial := 0; trial < 20; trial++ {
		in := uint64(rng.Intn(64))
		b1 := sim.BitsFromUint(lowNo.NumQubits(), in)
		b2 := sim.BitsFromUint(lowSh.NumQubits(), in)
		if err := b1.RunReversible(lowNo); err != nil {
			t.Fatal(err)
		}
		if err := b2.RunReversible(lowSh); err != nil {
			t.Fatal(err)
		}
		if b1.Uint()&mask != b2.Uint()&mask {
			t.Errorf("input %06b: noshare %b != share %b", in, b1.Uint()&mask, b2.Uint()&mask)
		}
	}
}

func TestCountFTMatchesEmission(t *testing.T) {
	gates := []circuit.Gate{
		circuit.NewOneQubit(circuit.H, 0),
		circuit.NewCNOT(0, 1),
		circuit.NewSwap(0, 1),
		circuit.NewToffoli(0, 1, 2),
		circuit.NewFredkin(0, 1, 2),
		circuit.NewMCT([]int{0, 1, 2, 3}, 4),
		circuit.NewMCT([]int{0, 1, 2, 3, 4}, 5),
		{Type: circuit.MCF, Controls: []int{0, 1}, Targets: []int{2, 3}},
		{Type: circuit.MCF, Controls: []int{0, 1, 2}, Targets: []int{3, 4}},
	}
	for _, g := range gates {
		raw := circuit.New("one", 6)
		raw.Append(g)
		ft := mustFT(t, raw, Options{})
		if got, want := ft.NumGates(), CountFT(g); got != want {
			t.Errorf("%s: emitted %d FT gates, CountFT says %d", g.Type, got, want)
		}
	}
}

func TestDecomposePreservesPermutationProperty(t *testing.T) {
	// Property: lowering to Toffoli level preserves the truth table on the
	// original wires (ancillas in/out zero) for random reversible circuits.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(2)
		raw := circuit.New("rand", n)
		for i := 0; i < 12; i++ {
			switch rng.Intn(3) {
			case 0:
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b {
					raw.Append(circuit.NewCNOT(a, b))
				}
			case 1:
				raw.Append(circuit.NewOneQubit(circuit.X, rng.Intn(n)))
			default:
				a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
				if a != b && b != c && a != c {
					raw.Append(circuit.NewToffoli(a, b, c))
				}
			}
		}
		ttRaw, err := sim.ReversibleTruthTable(raw)
		if err != nil {
			t.Fatal(err)
		}
		low := mustFT(t, raw, Options{KeepToffoli: true})
		ttLow, err := sim.ReversibleTruthTable(low)
		if err != nil {
			t.Fatal(err)
		}
		mask := uint64(1)<<uint(n) - 1
		for in := uint64(0); in <= mask; in++ {
			if ttLow[in]&mask != ttRaw[in] {
				t.Errorf("trial %d input %b: %b != %b", trial, in, ttLow[in]&mask, ttRaw[in])
				break
			}
		}
	}
}

func TestRejectInvalidCircuit(t *testing.T) {
	raw := circuit.New("bad", 2)
	raw.Append(circuit.NewToffoli(0, 1, 5))
	if _, err := ToFT(raw, Options{}); err == nil {
		t.Error("want validation error")
	}
}
