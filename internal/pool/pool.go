// Package pool provides the bounded worker-pool primitive shared by the
// public sweep engine (leqa.Runner) and the experiments harness, so the
// fan-out/feed/drain skeleton exists exactly once.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) across a bounded worker pool
// and returns the lowest-index error recorded. Callers store per-index
// results themselves, so output order never depends on scheduling.
// workers ≤ 0 selects GOMAXPROCS.
//
// With stopOnErr, the feed stops after the first failure and already-queued
// indices are drained without running, so one bad item cannot cost the full
// batch; fn is then not called for every index. Without it, fn runs for all
// n indices regardless of failures — the mode batch engines use to keep
// every result slot accounted for.
func ForEach(n, workers int, stopOnErr bool, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var failed atomic.Bool
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if stopOnErr && failed.Load() {
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		if stopOnErr && failed.Load() {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// indexed pairs a result with the input index it belongs to, so the
// collector can reorder out-of-order completions.
type indexed[T any] struct {
	i int
	v T
}

// ForEachOrdered runs fn(i) for every i in [0, n) across a bounded worker
// pool and hands each result to emit in strict index order, as soon as the
// contiguous prefix through that index has completed — the primitive behind
// the streaming sweep engines: result 0 is emitted while later indices are
// still computing. emit runs on the caller's goroutine, so it may safely
// write to non-thread-safe sinks (an http.ResponseWriter, a bufio.Writer).
// A non-nil emit error stops the feed — fn is then not called for indices
// not yet started — and is returned after in-flight work drains, so no
// worker goroutine outlives the call. workers ≤ 0 selects GOMAXPROCS.
func ForEachOrdered[T any](n, workers int, fn func(i int) T, emit func(v T) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	// The result buffer lets every worker park one finished item without
	// blocking, so a slow emit (a throttled network client) stalls — but
	// never deadlocks — the pool.
	results := make(chan indexed[T], workers)
	var stopped atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results <- indexed[T]{i: i, v: fn(i)}
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			if stopped.Load() {
				break
			}
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	var emitErr error
	pending := make(map[int]T, workers)
	next := 0
	for r := range results {
		if emitErr != nil {
			continue // drain so the feeder and workers can exit
		}
		pending[r.i] = r.v
		for {
			v, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if err := emit(v); err != nil {
				emitErr = err
				stopped.Store(true)
				break
			}
			next++
		}
	}
	return emitErr
}
