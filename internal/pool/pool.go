// Package pool provides the bounded worker-pool primitive shared by the
// public sweep engine (leqa.Runner) and the experiments harness, so the
// fan-out/feed/drain skeleton exists exactly once.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) across a bounded worker pool
// and returns the lowest-index error recorded. Callers store per-index
// results themselves, so output order never depends on scheduling.
// workers ≤ 0 selects GOMAXPROCS.
//
// With stopOnErr, the feed stops after the first failure and already-queued
// indices are drained without running, so one bad item cannot cost the full
// batch; fn is then not called for every index. Without it, fn runs for all
// n indices regardless of failures — the mode batch engines use to keep
// every result slot accounted for.
func ForEach(n, workers int, stopOnErr bool, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var failed atomic.Bool
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if stopOnErr && failed.Load() {
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		if stopOnErr && failed.Load() {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
