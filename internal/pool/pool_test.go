package pool

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	const n = 100
	var ran [n]atomic.Int32
	if err := ForEach(n, 7, false, func(i int) error {
		ran[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Errorf("index %d ran %d times", i, got)
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	err := ForEach(10, 1, false, func(i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Errorf("err = %v, want the lowest-index error", err)
	}
}

func TestForEachStopOnErrAborts(t *testing.T) {
	// Sequential pool: an early failure must keep later indices from
	// running at all.
	var ran atomic.Int32
	err := ForEach(1000, 1, true, func(i int) error {
		ran.Add(1)
		if i == 2 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := ran.Load(); got >= 1000 {
		t.Errorf("all %d indices ran despite stopOnErr", got)
	}
}

func TestForEachWithoutStopRunsAll(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(50, 4, false, func(i int) error {
		ran.Add(1)
		if i%10 == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := ran.Load(); got != 50 {
		t.Errorf("ran %d of 50 indices; stopOnErr=false must run all", got)
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(0, 4, true, func(i int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	var ran atomic.Int32
	if err := ForEach(10, 0, false, func(i int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 10 {
		t.Errorf("ran %d of 10", ran.Load())
	}
}
