package pool

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	const n = 100
	var ran [n]atomic.Int32
	if err := ForEach(n, 7, false, func(i int) error {
		ran[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Errorf("index %d ran %d times", i, got)
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	err := ForEach(10, 1, false, func(i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Errorf("err = %v, want the lowest-index error", err)
	}
}

func TestForEachStopOnErrAborts(t *testing.T) {
	// Sequential pool: an early failure must keep later indices from
	// running at all.
	var ran atomic.Int32
	err := ForEach(1000, 1, true, func(i int) error {
		ran.Add(1)
		if i == 2 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := ran.Load(); got >= 1000 {
		t.Errorf("all %d indices ran despite stopOnErr", got)
	}
}

func TestForEachWithoutStopRunsAll(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(50, 4, false, func(i int) error {
		ran.Add(1)
		if i%10 == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := ran.Load(); got != 50 {
		t.Errorf("ran %d of 50 indices; stopOnErr=false must run all", got)
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(0, 4, true, func(i int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	var ran atomic.Int32
	if err := ForEach(10, 0, false, func(i int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 10 {
		t.Errorf("ran %d of 10", ran.Load())
	}
}

func TestForEachOrderedEmitsInOrder(t *testing.T) {
	const n = 200
	var got []int
	err := ForEachOrdered(n, 8, func(i int) int { return i }, func(v int) error {
		got = append(got, v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("emitted %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d emitted %d; emission must be in index order", i, v)
		}
	}
}

// TestForEachOrderedStreamsBeforeCompletion pins the streaming contract
// deterministically: index 0 must reach emit while later indices are still
// blocked inside fn — no waiting for the whole batch.
func TestForEachOrderedStreamsBeforeCompletion(t *testing.T) {
	release := make(chan struct{})
	first := make(chan int, 1)
	done := make(chan error, 1)
	go func() {
		var seen []int
		err := ForEachOrdered(3, 2, func(i int) int {
			if i > 0 {
				<-release // 1 and 2 cannot finish until the test saw row 0
			}
			return i
		}, func(v int) error {
			if len(seen) == 0 {
				first <- v
			}
			seen = append(seen, v)
			return nil
		})
		if err == nil && len(seen) != 3 {
			err = errors.New("short emission")
		}
		done <- err
	}()
	if v := <-first; v != 0 {
		t.Fatalf("first emitted value = %d, want 0", v)
	}
	close(release) // row 0 was streamed while 1 and 2 were provably unfinished
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestForEachOrderedEmitErrorStopsFeed(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := ForEachOrdered(1000, 1, func(i int) int {
		ran.Add(1)
		return i
	}, func(v int) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the emit error", err)
	}
	if got := ran.Load(); got >= 1000 {
		t.Errorf("all %d indices ran despite the emit failure", got)
	}
}

func TestForEachOrderedZeroItems(t *testing.T) {
	err := ForEachOrdered(0, 4, func(i int) int { return i }, func(int) error {
		return errors.New("never")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForEachOrderedDefaultWorkers(t *testing.T) {
	var emitted int
	if err := ForEachOrdered(10, 0, func(i int) int { return i }, func(int) error {
		emitted++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if emitted != 10 {
		t.Errorf("emitted %d of 10", emitted)
	}
}
