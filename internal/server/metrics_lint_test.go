package server_test

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/leqa"
	"repro/leqa/client"
)

// promSample is one parsed exposition sample line.
type promSample struct {
	family string            // series name as written (incl. _bucket/_sum/_count)
	labels map[string]string // nil when unlabeled
	value  float64
	line   int
}

// promMeta records where a family's HELP/TYPE comments appeared.
type promMeta struct {
	helpLine, typeLine int
	typ                string
}

// parseExposition parses the Prometheus text format the server hand-rolls,
// failing the test on any line that is neither a comment nor a well-formed
// sample.
func parseExposition(t *testing.T, body string) (map[string]*promMeta, []promSample) {
	t.Helper()
	meta := map[string]*promMeta{}
	var samples []promSample
	sc := bufio.NewScanner(strings.NewReader(body))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) < 4 {
				t.Fatalf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			m := meta[name]
			if m == nil {
				m = &promMeta{}
				meta[name] = m
			}
			if fields[1] == "HELP" {
				if m.helpLine != 0 {
					t.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				m.helpLine = lineNo
			} else {
				if m.typeLine != 0 {
					t.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				m.typeLine = lineNo
				m.typ = fields[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // plain comment
		}
		s := parseSampleLine(t, lineNo, line)
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return meta, samples
}

func parseSampleLine(t *testing.T, lineNo int, line string) promSample {
	t.Helper()
	s := promSample{line: lineNo}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.family = line[:i]
		end := strings.IndexByte(line, '}')
		if end < i {
			t.Fatalf("line %d: unterminated label set: %q", lineNo, line)
		}
		s.labels = map[string]string{}
		for _, pair := range splitLabels(line[i+1 : end]) {
			k, v, ok := strings.Cut(pair, "=")
			uq, err := strconv.Unquote(v)
			if !ok || err != nil {
				t.Fatalf("line %d: bad label %q: %v", lineNo, pair, err)
			}
			s.labels[k] = uq
		}
		rest = strings.TrimSpace(line[end+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("line %d: malformed sample %q", lineNo, line)
		}
		s.family, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", lineNo, rest, err)
	}
	s.value = v
	return s
}

// splitLabels splits k1="v1",k2="v2" on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	startIdx := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[startIdx:i])
				startIdx = i + 1
			}
		}
	}
	if startIdx < len(s) {
		out = append(out, s[startIdx:])
	}
	return out
}

// baseFamily maps a sample's series name to its declared metric family:
// histogram and summary component suffixes resolve to the declared name.
func baseFamily(meta map[string]*promMeta, family string) string {
	if meta[family] != nil {
		return family
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(family, suffix)
		if !ok || meta[base] == nil {
			continue
		}
		switch meta[base].typ {
		case "histogram":
			return base
		case "summary":
			if suffix != "_bucket" { // summaries carry _sum/_count, never buckets
				return base
			}
		}
	}
	return ""
}

// labelKey identifies one histogram series by its labels minus "le".
func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, labels[k])
	}
	return b.String()
}

// TestMetricsExpositionLint scrapes a warmed-up server and checks the
// invariants a real Prometheus scraper relies on: HELP and TYPE precede
// every series of a family, histogram buckets are cumulative and monotone,
// every histogram ends at le="+Inf", and _count equals the +Inf bucket.
func TestMetricsExpositionLint(t *testing.T) {
	// An SLO so the slo families appear; a generous objective so the lint
	// server is never degraded by machine speed.
	ts, c := newTestServer(t, server.Config{SLO: "estimate:p99<10m,error_rate<50%"})
	// Traffic first so the interesting series are non-zero.
	if _, err := c.Estimate(context.Background(), client.EstimateRequest{
		CircuitSpec: client.CircuitSpec{Generate: "ham7"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Sweep(context.Background(), client.SweepRequest{
		Circuits: []client.CircuitSpec{{Generate: "ham7"}, {Generate: "4bitadder"}},
	}, func(leqa.ResultRecord) error { return nil }); err != nil {
		t.Fatal(err)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	meta, samples := parseExposition(t, body)
	if len(samples) == 0 {
		t.Fatal("no samples in /metrics")
	}

	// Every sample belongs to a declared family whose HELP and TYPE both
	// appeared earlier in the stream.
	firstSample := map[string]int{}
	for _, s := range samples {
		fam := baseFamily(meta, s.family)
		if fam == "" {
			t.Errorf("line %d: series %s has no HELP/TYPE declaration", s.line, s.family)
			continue
		}
		m := meta[fam]
		if m.helpLine == 0 || m.typeLine == 0 {
			t.Errorf("family %s missing HELP or TYPE", fam)
			continue
		}
		if m.helpLine > s.line || m.typeLine > s.line {
			t.Errorf("line %d: %s sampled before its HELP/TYPE (help=%d type=%d)",
				s.line, s.family, m.helpLine, m.typeLine)
		}
		if firstSample[fam] == 0 {
			firstSample[fam] = s.line
		}
		switch m.typ {
		case "counter", "gauge", "histogram", "summary":
		default:
			t.Errorf("family %s has unknown TYPE %q", fam, m.typ)
		}
		if m.typ == "counter" && s.value < 0 {
			t.Errorf("line %d: counter %s is negative: %g", s.line, s.family, s.value)
		}
		// Summary quantile labels must be parseable ratios in [0, 1].
		if m.typ == "summary" && s.family == fam {
			q, err := strconv.ParseFloat(s.labels["quantile"], 64)
			if err != nil || q < 0 || q > 1 {
				t.Errorf("line %d: summary %s has bad quantile label %q", s.line, s.family, s.labels["quantile"])
			}
		}
	}

	// Histogram shape: per labelset, buckets in order must be monotone
	// nondecreasing, end at +Inf, and agree with _count.
	type histSeries struct {
		bounds []float64
		counts []float64
		count  float64
		hasCnt bool
	}
	hists := map[string]map[string]*histSeries{}
	for _, s := range samples {
		fam := baseFamily(meta, s.family)
		if fam == "" || meta[fam].typ != "histogram" {
			continue
		}
		byLabel := hists[fam]
		if byLabel == nil {
			byLabel = map[string]*histSeries{}
			hists[fam] = byLabel
		}
		key := labelKey(s.labels)
		h := byLabel[key]
		if h == nil {
			h = &histSeries{}
			byLabel[key] = h
		}
		switch {
		case strings.HasSuffix(s.family, "_bucket"):
			le := s.labels["le"]
			bound := math.Inf(1)
			if le != "+Inf" {
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					t.Errorf("line %d: bad le=%q", s.line, le)
					continue
				}
			}
			h.bounds = append(h.bounds, bound)
			h.counts = append(h.counts, s.value)
		case strings.HasSuffix(s.family, "_count"):
			h.count, h.hasCnt = s.value, true
		}
	}
	if len(hists) == 0 {
		t.Fatal("no histograms in /metrics")
	}
	for fam, byLabel := range hists {
		for key, h := range byLabel {
			if len(h.bounds) == 0 {
				t.Errorf("%s{%s}: no buckets", fam, key)
				continue
			}
			for i := 1; i < len(h.bounds); i++ {
				if h.bounds[i] <= h.bounds[i-1] {
					t.Errorf("%s{%s}: bucket bounds not increasing: %v", fam, key, h.bounds)
				}
				if h.counts[i] < h.counts[i-1] {
					t.Errorf("%s{%s}: cumulative counts decrease: %v", fam, key, h.counts)
				}
			}
			if !math.IsInf(h.bounds[len(h.bounds)-1], 1) {
				t.Errorf("%s{%s}: last bucket is %v, want +Inf", fam, key, h.bounds[len(h.bounds)-1])
			}
			if !h.hasCnt {
				t.Errorf("%s{%s}: missing _count", fam, key)
			} else if h.counts[len(h.counts)-1] != h.count {
				t.Errorf("%s{%s}: +Inf bucket %g != _count %g", fam, key, h.counts[len(h.counts)-1], h.count)
			}
		}
	}

	// The families the observability PRs added are present.
	for _, want := range []string{
		"leqad_panics_total", "leqad_goroutines", "leqad_heap_inuse_bytes",
		"leqad_heap_sys_bytes", "leqad_gc_pause_seconds_total", "leqad_gomaxprocs",
		// Saturation + sliding-window telemetry.
		"leqad_throttled_total", "leqad_inflight_requests", "leqad_queue_depth",
		"leqad_window_seconds", "leqad_queue_wait_window_seconds",
		"leqad_request_latency_window_seconds", "leqad_window_requests",
		"leqad_window_errors", "leqad_phase_latency_window_seconds",
		// SLO series (the lint server is configured with objectives).
		"leqad_slo_compliance_ratio", "leqad_slo_breaches_total",
		"leqad_slo_current", "leqad_slo_degraded",
		// Bounded per-client accounting.
		"leqad_client_requests_total", "leqad_client_rows_total",
		"leqad_client_window_requests",
	} {
		if meta[want] == nil {
			t.Errorf("/metrics missing %s", want)
		}
	}
	// And the estimate traffic registered.
	found := false
	for _, s := range samples {
		if s.family == "leqad_request_duration_seconds_count" && s.labels["endpoint"] == "estimate" && s.value >= 1 {
			found = true
		}
	}
	if !found {
		t.Error("estimate latency histogram did not record the request")
	}
	// The windowed estimate series saw the same traffic, and every SLO
	// clause in the config is exposed with a compliance ratio.
	winCount := 0.0
	for _, s := range samples {
		if s.family == "leqad_request_latency_window_seconds_count" && s.labels["endpoint"] == "estimate" {
			winCount = s.value
		}
	}
	if winCount < 1 {
		t.Error("windowed estimate latency did not record the request")
	}
	clauses := map[string]bool{}
	for _, s := range samples {
		if s.family == "leqad_slo_compliance_ratio" {
			clauses[s.labels["clause"]] = true
		}
	}
	for _, want := range []string{"estimate:p99<10m0s", "error_rate<50%"} {
		if !clauses[want] {
			t.Errorf("/metrics missing slo clause %q (have %v)", want, clauses)
		}
	}
}
