package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/leqa"
	"repro/leqa/client"
)

// e2eClock is a test-controlled wall clock handed to server.Config.Clock, so
// SLO ticks and window rotation advance only when the test says so.
type e2eClock struct{ nanos atomic.Int64 }

func newE2EClock() *e2eClock {
	c := &e2eClock{}
	c.nanos.Store(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC).UnixNano())
	return c
}

func (c *e2eClock) Now() time.Time          { return time.Unix(0, c.nanos.Load()) }
func (c *e2eClock) Advance(d time.Duration) { c.nanos.Add(int64(d)) }

// scrapeTestMetrics fetches and parses ts's /metrics exposition.
func scrapeTestMetrics(t *testing.T, ts interface{ Client() *http.Client }, url string) telemetry.PromMetrics {
	t.Helper()
	resp, err := ts.Client().Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	m, err := telemetry.ParseProm(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestHealthzSLODegradedFlip drives an intentionally unmeetable clause
// through breach → sustained breach with a fake clock and asserts the whole
// surface: /healthz reports the clause, flips to "degraded" only after
// DegradeAfter consecutive breaches, stays HTTP 200 while degraded, and the
// breach shows up in leqad_slo_breaches_total.
func TestHealthzSLODegradedFlip(t *testing.T) {
	clk := newE2EClock()
	ts, c := newTestServer(t, server.Config{
		SLO:          "estimate:p99<1ns,error_rate<99%",
		SLOInterval:  time.Second,
		DegradeAfter: 3,
		Clock:        clk.Now,
	})
	ctx := context.Background()

	// Traffic first: a vacuous (no-data) window must not count as a breach,
	// so the clause only starts failing once a real latency lands. The
	// latency is recorded after the response goes out, so poll until the
	// saturation block shows it (no clock advance — no further ticks).
	if _, err := c.Estimate(ctx, client.EstimateRequest{CircuitSpec: client.CircuitSpec{Generate: "ham7"}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		h, err := c.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.SLO == nil {
			t.Fatal("healthz has no slo block despite -slo")
		}
		if ep, ok := h.Saturation.Endpoints["estimate"]; ok && ep.Latency.Count >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("estimate latency never landed in the window")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// One interval: the clause breaches, but a single breach (at most two,
	// counting a possible tick during the request itself) must not degrade.
	clk.Advance(1100 * time.Millisecond)
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.SLO.Degraded {
		t.Fatalf("degraded before %d consecutive breaches: status=%q", 3, h.Status)
	}
	var breached *client.SLOClauseStatus
	for i := range h.SLO.Clauses {
		if h.SLO.Clauses[i].Clause == "estimate:p99<1ns" {
			breached = &h.SLO.Clauses[i]
		}
	}
	if breached == nil || breached.Breaches < 1 || breached.Compliant {
		t.Fatalf("unmeetable clause not breaching after a tick with data: %+v", breached)
	}

	// Two more intervals: consecutive breaches reach DegradeAfter.
	for i := 0; i < 2; i++ {
		clk.Advance(1100 * time.Millisecond)
		if h, err = c.Health(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if h.Status != "degraded" || !h.SLO.Degraded {
		t.Fatalf("status=%q degraded=%v, want degraded after 3 consecutive breaches", h.Status, h.SLO.Degraded)
	}
	var unmeetable, errRate *client.SLOClauseStatus
	for i := range h.SLO.Clauses {
		switch h.SLO.Clauses[i].Clause {
		case "estimate:p99<1ns":
			unmeetable = &h.SLO.Clauses[i]
		case "error_rate<99%":
			errRate = &h.SLO.Clauses[i]
		}
	}
	if unmeetable == nil || errRate == nil {
		t.Fatalf("clauses missing from healthz: %+v", h.SLO.Clauses)
	}
	if unmeetable.Compliant || unmeetable.Breaches < 3 || unmeetable.Consecutive < 3 {
		t.Fatalf("unmeetable clause not breaching: %+v", unmeetable)
	}
	if !unmeetable.HasData || unmeetable.Current <= unmeetable.Limit {
		t.Fatalf("unmeetable clause current/limit wrong: %+v", unmeetable)
	}
	if !errRate.Compliant || errRate.Breaches != 0 {
		t.Fatalf("generous error-rate clause breached: %+v", errRate)
	}

	// A degraded healthz is still HTTP 200 — load balancers must not eject
	// the replica over a latency objective.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded healthz = HTTP %d, want 200", resp.StatusCode)
	}

	m := scrapeTestMetrics(t, ts, ts.URL)
	if v, ok := m.Value("leqad_slo_breaches_total", map[string]string{"clause": "estimate:p99<1ns"}); !ok || v < 3 {
		t.Fatalf("leqad_slo_breaches_total{estimate:p99<1ns} = %v (ok=%v), want ≥ 3", v, ok)
	}
	if v, ok := m.Value("leqad_slo_degraded", nil); !ok || v != 1 {
		t.Fatalf("leqad_slo_degraded = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := m.Value("leqad_slo_compliance_ratio", map[string]string{"clause": "error_rate<99%"}); !ok || v != 1 {
		t.Fatalf("compliance ratio for the generous clause = %v (ok=%v), want 1", v, ok)
	}
}

// TestRetryAfterOn429 holds the only worker slot busy and asserts the
// rejected request carries a Retry-After hint and increments
// leqad_throttled_total{reason="concurrency"}.
func TestRetryAfterOn429(t *testing.T) {
	release, releaseStream := makeRelease(t)
	firstFlushed := make(chan struct{})
	ts, c := newTestServer(t, server.Config{
		MaxConcurrent: 1,
		FlushHook: func(rows int) {
			if rows == 1 {
				close(firstFlushed)
				<-release
			}
		},
	})
	done := make(chan error, 1)
	go func() {
		done <- c.Sweep(context.Background(), client.SweepRequest{
			Circuits: []client.CircuitSpec{{Generate: "ham7"}},
		}, func(leqa.ResultRecord) error { return nil })
	}()
	select {
	case <-firstFlushed:
	case <-time.After(10 * time.Second):
		t.Fatal("first request never started streaming")
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/estimate", "application/json",
		strings.NewReader(`{"generate":"2bitadder"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 while the only slot streams", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without a Retry-After header")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 || secs > 60 {
		t.Fatalf("Retry-After = %q, want an integer in [1, 60]", ra)
	}
	releaseStream()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	m := scrapeTestMetrics(t, ts, ts.URL)
	if v, ok := m.Value("leqad_throttled_total", map[string]string{"reason": "concurrency"}); !ok || v < 1 {
		t.Fatalf("leqad_throttled_total{concurrency} = %v (ok=%v), want ≥ 1", v, ok)
	}
}

// TestThrottledBodyCapReason rejects an oversized JSON body and asserts the
// 413 is classified under leqad_throttled_total{reason="body_cap"}.
func TestThrottledBodyCapReason(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{MaxBodyBytes: 512})
	body := `{"generate":"` + strings.Repeat("a", 2048) + `"}`
	resp, err := ts.Client().Post(ts.URL+"/v1/estimate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 for a %d-byte body over a 512-byte cap", resp.StatusCode, len(body))
	}
	m := scrapeTestMetrics(t, ts, ts.URL)
	if v, ok := m.Value("leqad_throttled_total", map[string]string{"reason": "body_cap"}); !ok || v < 1 {
		t.Fatalf("leqad_throttled_total{body_cap} = %v (ok=%v), want ≥ 1", v, ok)
	}
}

// TestDebugClients exercises the bounded per-client accounting: requests
// carrying an Authorization header are keyed by token hash (never the raw
// credential), anonymous ones by remote host, and /debug/clients reports
// both with window counts.
func TestDebugClients(t *testing.T) {
	ts, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	if _, err := c.Estimate(ctx, client.EstimateRequest{CircuitSpec: client.CircuitSpec{Generate: "ham7"}}); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/estimate", strings.NewReader(`{"generate":"ham7"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer super-secret-token")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized estimate = %d", resp.StatusCode)
	}

	dresp, err := ts.Client().Get(ts.URL + "/debug/clients")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var out struct {
		WindowSec float64 `json:"windowSec"`
		Clients   []struct {
			Client         string `json:"client"`
			Requests       uint64 `json:"requests"`
			WindowRequests uint64 `json:"windowRequests"`
		} `json:"clients"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.WindowSec <= 0 {
		t.Fatalf("windowSec = %v, want > 0", out.WindowSec)
	}
	var sawTok, sawAnon bool
	for _, cl := range out.Clients {
		if strings.Contains(cl.Client, "super-secret-token") {
			t.Fatalf("raw credential leaked into /debug/clients: %q", cl.Client)
		}
		if strings.HasPrefix(cl.Client, "tok:") {
			sawTok = true
		} else {
			sawAnon = true
		}
		if cl.Requests < 1 || cl.WindowRequests < 1 {
			t.Fatalf("client %q has empty accounting: %+v", cl.Client, cl)
		}
	}
	if !sawTok || !sawAnon {
		t.Fatalf("want both a token-keyed and a host-keyed client, got %+v", out.Clients)
	}

	// The same accounting feeds bounded-cardinality /metrics series.
	m := scrapeTestMetrics(t, ts, ts.URL)
	if m.Sum("leqad_client_requests_total") < 2 {
		t.Fatalf("leqad_client_requests_total sums to %v, want ≥ 2", m.Sum("leqad_client_requests_total"))
	}
}

// TestHealthzSaturationBlock asserts the healthz saturation block reflects
// configuration and windowed queue-wait state.
func TestHealthzSaturationBlock(t *testing.T) {
	_, c := newTestServer(t, server.Config{MaxConcurrent: 3, MaxQueue: 7})
	ctx := context.Background()
	if _, err := c.Estimate(ctx, client.EstimateRequest{CircuitSpec: client.CircuitSpec{Generate: "ham7"}}); err != nil {
		t.Fatal(err)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s := h.Saturation
	if s == nil {
		t.Fatal("healthz has no saturation block")
	}
	if s.MaxConcurrent != 3 || s.MaxQueue != 7 {
		t.Fatalf("capacity config not surfaced: %+v", s)
	}
	if s.WindowSec <= 0 {
		t.Fatalf("windowSec = %v, want > 0", s.WindowSec)
	}
	ep, ok := s.Endpoints["estimate"]
	if !ok || ep.Requests < 1 {
		t.Fatalf("estimate endpoint missing from saturation block: %+v", s.Endpoints)
	}
	if ep.Latency.Count < 1 || ep.Latency.P50Ms <= 0 {
		t.Fatalf("windowed latency not populated: %+v", ep.Latency)
	}
	if _, ok := s.Throttled["concurrency"]; !ok {
		t.Fatalf("throttle reasons missing: %+v", s.Throttled)
	}
}

// TestQueueAdmitsBurst opts into the bounded queue and checks a burst over
// MaxConcurrent succeeds (queued, not rejected) and records queue waits.
func TestQueueAdmitsBurst(t *testing.T) {
	_, c := newTestServer(t, server.Config{MaxConcurrent: 1, MaxQueue: 8, QueueTimeout: 10 * time.Second})
	ctx := context.Background()
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := c.Estimate(ctx, client.EstimateRequest{CircuitSpec: client.CircuitSpec{Generate: "ham7"}})
			errs <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("burst request %d: %v", i, err)
		}
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Saturation == nil || h.Saturation.QueueWait.Count < 4 {
		t.Fatalf("queue-wait window should have one observation per admitted request: %+v", h.Saturation)
	}
}
