package server

import (
	"bufio"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"repro/internal/telemetry"
	"repro/leqa"
)

// handleMetrics serves the Prometheus text exposition format (hand-rolled —
// the service carries no client library): per-endpoint request, streamed-row
// and request-duration series, plus the process-wide batch, spool and
// zone-model-cache counters /healthz also reports. /healthz keeps its JSON
// schema untouched; /metrics is the scrape surface.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.evaluator != nil {
		// Scrapes are an evaluation opportunity: an idle server's objectives
		// keep being scored at scrape cadence even without RunSLO.
		s.evaluator.MaybeTick()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	fmt.Fprintf(bw, "# HELP leqad_requests_total Requests received, by endpoint.\n")
	fmt.Fprintf(bw, "# TYPE leqad_requests_total counter\n")
	for _, name := range metricsEndpoints {
		fmt.Fprintf(bw, "leqad_requests_total{endpoint=%q} %d\n", name, s.endpoints[name].requests.Load())
	}

	fmt.Fprintf(bw, "# HELP leqad_rows_streamed_total Result rows delivered, by endpoint.\n")
	fmt.Fprintf(bw, "# TYPE leqad_rows_streamed_total counter\n")
	for _, name := range estimationEndpoints() {
		fmt.Fprintf(bw, "leqad_rows_streamed_total{endpoint=%q} %d\n", name, s.endpoints[name].rows.Load())
	}

	fmt.Fprintf(bw, "# HELP leqad_request_duration_seconds Duration of successfully answered estimation requests, by endpoint.\n")
	fmt.Fprintf(bw, "# TYPE leqad_request_duration_seconds histogram\n")
	for _, name := range estimationEndpoints() {
		writeHistogram(bw, "leqad_request_duration_seconds", "endpoint", name, &s.endpoints[name].latency)
	}

	fmt.Fprintf(bw, "# HELP leqad_phase_duration_seconds Duration of estimation pipeline phases (ingest: source acquisition; analyze: fused graph build, including parsing for streamed netlists; estimate: Algorithm 1).\n")
	fmt.Fprintf(bw, "# TYPE leqad_phase_duration_seconds histogram\n")
	for _, name := range metricsPhases {
		writeHistogram(bw, "leqad_phase_duration_seconds", "phase", name, s.phases[name])
	}

	s.writeWindowMetrics(bw)

	fmt.Fprintf(bw, "# HELP leqad_batches_canceled_total Batches ended early by cancellation or disconnect.\n")
	fmt.Fprintf(bw, "# TYPE leqad_batches_canceled_total counter\n")
	fmt.Fprintf(bw, "leqad_batches_canceled_total %d\n", s.batchesCanceled.Load())

	fmt.Fprintf(bw, "# HELP leqad_spooled_uploads_total Raw .qc uploads that went through the disk spool.\n")
	fmt.Fprintf(bw, "# TYPE leqad_spooled_uploads_total counter\n")
	fmt.Fprintf(bw, "leqad_spooled_uploads_total %d\n", s.spooledUploads.Load())
	fmt.Fprintf(bw, "# HELP leqad_spooled_bytes_total Netlist bytes written to upload spools.\n")
	fmt.Fprintf(bw, "# TYPE leqad_spooled_bytes_total counter\n")
	fmt.Fprintf(bw, "leqad_spooled_bytes_total %d\n", s.spooledBytes.Load())

	as := s.store.Stats()
	for _, c := range []struct {
		name, help string
		value      uint64
	}{
		{"leqad_analysis_store_hits_total", "Analysis store memory-tier hits.", as.Hits},
		{"leqad_analysis_store_misses_total", "Analysis store misses (full analyses run).", as.Misses},
		{"leqad_analysis_store_disk_hits_total", "Analysis store hits served from persisted images.", as.DiskHits},
		{"leqad_analysis_store_puts_total", "Analysis images written to the disk tier.", as.Puts},
		{"leqad_analysis_store_evictions_total", "Analysis store memory-tier LRU evictions.", as.Evictions},
		{"leqad_analysis_store_disk_evictions_total", "Analysis images evicted to respect the disk cap.", as.DiskEvictions},
	} {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.value)
	}
	fmt.Fprintf(bw, "# HELP leqad_analysis_store_entries Analysis store resident memory-tier entries.\n")
	fmt.Fprintf(bw, "# TYPE leqad_analysis_store_entries gauge\n")
	fmt.Fprintf(bw, "leqad_analysis_store_entries %d\n", as.Entries)
	fmt.Fprintf(bw, "# HELP leqad_analysis_store_disk_bytes Analysis store disk-tier occupancy in bytes.\n")
	fmt.Fprintf(bw, "# TYPE leqad_analysis_store_disk_bytes gauge\n")
	fmt.Fprintf(bw, "leqad_analysis_store_disk_bytes %d\n", as.DiskBytes)

	st := leqa.ZoneModelCacheStats()
	for _, c := range []struct {
		name, help string
		value      uint64
	}{
		{"leqad_zone_model_cache_hits_total", "Zone-model memo hits.", st.Hits},
		{"leqad_zone_model_cache_misses_total", "Zone-model memo misses.", st.Misses},
		{"leqad_zone_model_cache_evictions_total", "Zone-model memo evictions.", st.Evictions},
	} {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.value)
	}
	fmt.Fprintf(bw, "# HELP leqad_zone_model_cache_entries Zone-model memo resident entries.\n")
	fmt.Fprintf(bw, "# TYPE leqad_zone_model_cache_entries gauge\n")
	fmt.Fprintf(bw, "leqad_zone_model_cache_entries %d\n", st.Entries)

	var rm leqa.ResultMemoStats
	if s.memo != nil {
		rm = s.memo.Stats()
	}
	for _, c := range []struct {
		name, help string
		value      uint64
	}{
		{"leqad_result_memo_hits_total", "Result memo hits: (digest, params) cells served without analyze or estimate.", rm.Hits},
		{"leqad_result_memo_misses_total", "Result memo misses (cells computed and published).", rm.Misses},
		{"leqad_result_memo_evictions_total", "Result memo LRU evictions.", rm.Evictions},
	} {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.value)
	}
	fmt.Fprintf(bw, "# HELP leqad_result_memo_entries Result memo resident entries.\n")
	fmt.Fprintf(bw, "# TYPE leqad_result_memo_entries gauge\n")
	fmt.Fprintf(bw, "leqad_result_memo_entries %d\n", rm.Entries)

	fmt.Fprintf(bw, "# HELP leqad_workers Estimation worker-pool size.\n")
	fmt.Fprintf(bw, "# TYPE leqad_workers gauge\n")
	fmt.Fprintf(bw, "leqad_workers %d\n", s.runner.Workers())
	fmt.Fprintf(bw, "# HELP leqad_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(bw, "# TYPE leqad_uptime_seconds gauge\n")
	fmt.Fprintf(bw, "leqad_uptime_seconds %g\n", time.Since(s.start).Seconds())

	fmt.Fprintf(bw, "# HELP leqad_panics_total Handler panics recovered by the request middleware.\n")
	fmt.Fprintf(bw, "# TYPE leqad_panics_total counter\n")
	fmt.Fprintf(bw, "leqad_panics_total %d\n", s.panics.Load())

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(bw, "# HELP leqad_goroutines Live goroutines.\n")
	fmt.Fprintf(bw, "# TYPE leqad_goroutines gauge\n")
	fmt.Fprintf(bw, "leqad_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(bw, "# HELP leqad_heap_inuse_bytes Heap bytes in in-use spans.\n")
	fmt.Fprintf(bw, "# TYPE leqad_heap_inuse_bytes gauge\n")
	fmt.Fprintf(bw, "leqad_heap_inuse_bytes %d\n", ms.HeapInuse)
	fmt.Fprintf(bw, "# HELP leqad_heap_sys_bytes Heap bytes obtained from the OS.\n")
	fmt.Fprintf(bw, "# TYPE leqad_heap_sys_bytes gauge\n")
	fmt.Fprintf(bw, "leqad_heap_sys_bytes %d\n", ms.HeapSys)
	fmt.Fprintf(bw, "# HELP leqad_gc_pause_seconds_total Cumulative stop-the-world GC pause time.\n")
	fmt.Fprintf(bw, "# TYPE leqad_gc_pause_seconds_total counter\n")
	fmt.Fprintf(bw, "leqad_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)
	fmt.Fprintf(bw, "# HELP leqad_gomaxprocs GOMAXPROCS at scrape time.\n")
	fmt.Fprintf(bw, "# TYPE leqad_gomaxprocs gauge\n")
	fmt.Fprintf(bw, "leqad_gomaxprocs %d\n", runtime.GOMAXPROCS(0))
}

// estimationEndpoints returns the endpoints that carry rows and latency.
func estimationEndpoints() []string { return metricsEndpoints[:3] }

// windowQuantileLabels fixes the quantile label values of the windowed
// latency series.
var windowQuantileLabels = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}, {"0.999", 0.999},
}

// writeWindowSummary renders one latency window as a Prometheus summary:
// quantile-labeled series plus _sum and _count. Unlike a client-library
// summary the figures cover the sliding window, not the process lifetime —
// the HELP text says so.
func writeWindowSummary(bw *bufio.Writer, metric, label, value string, h telemetry.Hist) {
	for _, ql := range windowQuantileLabels {
		v, _ := h.Quantile(ql.q) // 0 when empty; the _count series disambiguates
		fmt.Fprintf(bw, "%s{%s=%q,quantile=%q} %g\n", metric, label, value, ql.label, v.Seconds())
	}
	fmt.Fprintf(bw, "%s_sum{%s=%q} %g\n", metric, label, value, h.Sum().Seconds())
	fmt.Fprintf(bw, "%s_count{%s=%q} %d\n", metric, label, value, h.Count())
}

// writeWindowMetrics renders the sliding-window and saturation families:
// throttle counters, admission gauges, the queue-wait sketch, per-endpoint
// windowed latency/completions/errors, per-phase windows, the SLO series
// (when configured) and the bounded per-client accounting.
func (s *Server) writeWindowMetrics(bw *bufio.Writer) {
	fmt.Fprintf(bw, "# HELP leqad_throttled_total Requests rejected by capacity controls, by reason (concurrency: semaphore full; queue_timeout: no slot within the queued wait; body_cap: request body or spool over its byte cap; gate_cap: circuit or batch over the gate/cell caps).\n")
	fmt.Fprintf(bw, "# TYPE leqad_throttled_total counter\n")
	for _, reason := range throttleReasons {
		fmt.Fprintf(bw, "leqad_throttled_total{reason=%q} %d\n", reason, s.throttled[reason].Load())
	}

	fmt.Fprintf(bw, "# HELP leqad_inflight_requests Estimation requests holding a concurrency slot right now.\n")
	fmt.Fprintf(bw, "# TYPE leqad_inflight_requests gauge\n")
	fmt.Fprintf(bw, "leqad_inflight_requests %d\n", s.inflight.Load())
	fmt.Fprintf(bw, "# HELP leqad_queue_depth Estimation requests waiting for a slot right now.\n")
	fmt.Fprintf(bw, "# TYPE leqad_queue_depth gauge\n")
	fmt.Fprintf(bw, "leqad_queue_depth %d\n", s.queued.Load())

	fmt.Fprintf(bw, "# HELP leqad_window_seconds Span of the sliding window behind every *_window_* series.\n")
	fmt.Fprintf(bw, "# TYPE leqad_window_seconds gauge\n")
	fmt.Fprintf(bw, "leqad_window_seconds %g\n", s.winLen.Seconds())

	fmt.Fprintf(bw, "# HELP leqad_queue_wait_window_seconds Windowed slot-wait quantiles (0 = admitted immediately); the p50 prices 429 Retry-After.\n")
	fmt.Fprintf(bw, "# TYPE leqad_queue_wait_window_seconds summary\n")
	qw := s.queueWait.Snapshot()
	for _, ql := range windowQuantileLabels {
		v, _ := qw.Quantile(ql.q)
		fmt.Fprintf(bw, "leqad_queue_wait_window_seconds{quantile=%q} %g\n", ql.label, v.Seconds())
	}
	fmt.Fprintf(bw, "leqad_queue_wait_window_seconds_sum %g\n", qw.Sum().Seconds())
	fmt.Fprintf(bw, "leqad_queue_wait_window_seconds_count %d\n", qw.Count())

	fmt.Fprintf(bw, "# HELP leqad_request_latency_window_seconds Windowed latency quantiles of successfully answered requests, by endpoint.\n")
	fmt.Fprintf(bw, "# TYPE leqad_request_latency_window_seconds summary\n")
	for _, name := range estimationEndpoints() {
		writeWindowSummary(bw, "leqad_request_latency_window_seconds", "endpoint", name, s.winLat[name].Snapshot())
	}

	fmt.Fprintf(bw, "# HELP leqad_window_requests Requests completed inside the sliding window, by endpoint.\n")
	fmt.Fprintf(bw, "# TYPE leqad_window_requests gauge\n")
	for _, name := range estimationEndpoints() {
		fmt.Fprintf(bw, "leqad_window_requests{endpoint=%q} %d\n", name, s.winReq[name].Total())
	}
	fmt.Fprintf(bw, "# HELP leqad_window_errors Requests failed (5xx or 429) inside the sliding window, by endpoint.\n")
	fmt.Fprintf(bw, "# TYPE leqad_window_errors gauge\n")
	for _, name := range estimationEndpoints() {
		fmt.Fprintf(bw, "leqad_window_errors{endpoint=%q} %d\n", name, s.winErr[name].Total())
	}

	fmt.Fprintf(bw, "# HELP leqad_phase_latency_window_seconds Windowed latency quantiles of estimation pipeline phases.\n")
	fmt.Fprintf(bw, "# TYPE leqad_phase_latency_window_seconds summary\n")
	for _, name := range metricsPhases {
		writeWindowSummary(bw, "leqad_phase_latency_window_seconds", "phase", name, s.phaseWin[name].Snapshot())
	}

	if s.evaluator != nil {
		st := s.evaluator.Status()
		fmt.Fprintf(bw, "# HELP leqad_slo_compliance_ratio Fraction of recent SLO evaluations compliant, by clause.\n")
		fmt.Fprintf(bw, "# TYPE leqad_slo_compliance_ratio gauge\n")
		for _, c := range st.Clauses {
			fmt.Fprintf(bw, "leqad_slo_compliance_ratio{clause=%q} %g\n", c.Clause, c.ComplianceRatio)
		}
		fmt.Fprintf(bw, "# HELP leqad_slo_breaches_total SLO evaluations in violation since startup, by clause.\n")
		fmt.Fprintf(bw, "# TYPE leqad_slo_breaches_total counter\n")
		for _, c := range st.Clauses {
			fmt.Fprintf(bw, "leqad_slo_breaches_total{clause=%q} %d\n", c.Clause, c.Breaches)
		}
		fmt.Fprintf(bw, "# HELP leqad_slo_current SLO clause's last evaluated value (seconds for latency clauses, ratio for error_rate).\n")
		fmt.Fprintf(bw, "# TYPE leqad_slo_current gauge\n")
		for _, c := range st.Clauses {
			fmt.Fprintf(bw, "leqad_slo_current{clause=%q} %g\n", c.Clause, c.Current)
		}
		degraded := 0
		if st.Degraded {
			degraded = 1
		}
		fmt.Fprintf(bw, "# HELP leqad_slo_degraded 1 while any clause is in sustained breach (healthz reports \"degraded\").\n")
		fmt.Fprintf(bw, "# TYPE leqad_slo_degraded gauge\n")
		fmt.Fprintf(bw, "leqad_slo_degraded %d\n", degraded)
	}

	clients := s.clients.Snapshot()
	fmt.Fprintf(bw, "# HELP leqad_client_requests_total Completed API requests by client (auth-token digest or peer host; bounded cardinality, evicted clients fold into \"other\").\n")
	fmt.Fprintf(bw, "# TYPE leqad_client_requests_total counter\n")
	for _, c := range clients {
		fmt.Fprintf(bw, "leqad_client_requests_total{client=%q} %d\n", c.Key, c.Requests)
	}
	fmt.Fprintf(bw, "# HELP leqad_client_rows_total Result rows streamed by client.\n")
	fmt.Fprintf(bw, "# TYPE leqad_client_rows_total counter\n")
	for _, c := range clients {
		fmt.Fprintf(bw, "leqad_client_rows_total{client=%q} %d\n", c.Key, c.Rows)
	}
	fmt.Fprintf(bw, "# HELP leqad_client_window_requests Requests completed inside the sliding window, by client.\n")
	fmt.Fprintf(bw, "# TYPE leqad_client_window_requests gauge\n")
	for _, c := range clients {
		fmt.Fprintf(bw, "leqad_client_window_requests{client=%q} %d\n", c.Key, c.WindowRequests)
	}
}

// writeHistogram renders one latencyRecorder as a cumulative Prometheus
// histogram under a single label (endpoint=... or phase=...). The recorder's
// buckets are non-cumulative and lock-free, so a scrape racing live updates
// can be off by in-flight observations — the standard tolerance for
// atomically maintained histograms.
func writeHistogram(bw *bufio.Writer, metric, label, value string, l *latencyRecorder) {
	cum := uint64(0)
	for i, bound := range latencyBucketBounds {
		cum += l.buckets[i].Load()
		fmt.Fprintf(bw, "%s_bucket{%s=%q,le=%q} %d\n", metric, label, value, formatSeconds(bound), cum)
	}
	cum += l.buckets[len(latencyBucketBounds)].Load()
	fmt.Fprintf(bw, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", metric, label, value, cum)
	fmt.Fprintf(bw, "%s_sum{%s=%q} %g\n", metric, label, value, float64(l.sumNanos.Load())/1e9)
	fmt.Fprintf(bw, "%s_count{%s=%q} %d\n", metric, label, value, l.count.Load())
}

func formatSeconds(d time.Duration) string {
	return fmt.Sprintf("%g", d.Seconds())
}
