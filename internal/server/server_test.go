package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/leqa"
	"repro/leqa/client"
)

// newTestServer spins up the service under httptest and returns an
// in-process client for it.
func newTestServer(t *testing.T, cfg server.Config) (*httptest.Server, *client.Client) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, client.New(ts.URL, ts.Client())
}

// gridBody marshals a request body for raw HTTP calls.
func gridBody(t *testing.T, req any) *bytes.Reader {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(raw)
}

func intp(v int) *int { return &v }

// makeRelease returns a gate channel for blocking FlushHooks plus an
// idempotent closer that t.Cleanup also runs, so a failing assertion can
// never strand a handler (and hang httptest.Server.Close) behind the gate.
func makeRelease(t *testing.T) (chan struct{}, func()) {
	t.Helper()
	release := make(chan struct{})
	var once sync.Once
	closer := func() { once.Do(func() { close(release) }) }
	t.Cleanup(closer)
	return release, closer
}

func TestEstimateGeneratedBenchmark(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	rec, err := c.Estimate(context.Background(), client.EstimateRequest{
		CircuitSpec: client.CircuitSpec{Generate: "ham7"},
		Params:      &client.ParamSpec{Grid: "31x29", ChannelCapacity: intp(4)},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The reply must be bitwise identical to running the public API
	// directly under the same parameters.
	circ, err := leqa.GenerateFT("ham7")
	if err != nil {
		t.Fatal(err)
	}
	p := leqa.DefaultParams()
	p.Grid = leqa.Grid{Width: 31, Height: 29}
	p.ChannelCapacity = 4
	want, err := leqa.Estimate(circ, p)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Circuit != "ham7" || rec.Qubits != want.Qubits || rec.Operations != want.Operations {
		t.Fatalf("record identity mismatch: %+v", rec)
	}
	if rec.EstimatedLatencyUs != want.EstimatedLatency {
		t.Fatalf("estimate = %v, want bitwise %v", rec.EstimatedLatencyUs, want.EstimatedLatency)
	}
	if rec.LCNOTAvgUs != want.LCNOTAvg || rec.DUncongUs != want.DUncong {
		t.Fatalf("intermediates differ: %+v vs %+v", rec, want)
	}
}

func TestEstimateRawQCUpload(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	// A non-FT netlist: the server lowers it before estimating.
	qc := ".v a b c\n.i a b c\n.o a b c\nBEGIN\nt3 a b c\nEND\n"
	rec, err := c.EstimateQC(context.Background(), "tinytof", strings.NewReader(qc),
		&client.ParamSpec{Grid: "16x16"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Circuit != "tinytof" {
		t.Fatalf("circuit = %q, want tinytof", rec.Circuit)
	}
	if rec.Operations != 15 { // one Toffoli → the 15-gate FT network
		t.Fatalf("operations = %d, want 15", rec.Operations)
	}
	if rec.GridWidth != 16 || rec.GridHeight != 16 {
		t.Fatalf("params not applied: %+v", rec)
	}
}

// TestGridStreamsIncrementallyInOrder is the PR's acceptance test: POST a
// multi-circuit grid, receive the first NDJSON row while the batch is
// provably incomplete, receive all rows in input order, and match a direct
// Runner.SweepGrid call bitwise.
func TestGridStreamsIncrementallyInOrder(t *testing.T) {
	release, releaseStream := makeRelease(t)
	firstFlushed := make(chan struct{})
	cfg := server.Config{
		FlushHook: func(rows int) {
			if rows == 1 {
				close(firstFlushed)
				<-release // hold the stream right after row 1 reaches the wire
			}
		},
	}
	ts, _ := newTestServer(t, cfg)

	specs := []string{"ham7", "4bitadder", "mod16adder"}
	req := client.GridRequest{
		Circuits: []client.CircuitSpec{{Generate: specs[0]}, {Generate: specs[1]}, {Generate: specs[2]}},
		ParamSets: []client.ParamSpec{
			{Grid: "21x21"},
			{Grid: "33x33", ChannelCapacity: intp(3)},
		},
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/grid", gridBody(t, req))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	// The first row must be readable while the stream is paused after row
	// one — i.e. strictly before batch completion.
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading first streamed row: %v", err)
	}
	select {
	case <-firstFlushed:
	case <-time.After(10 * time.Second):
		t.Fatal("flush hook never fired")
	}
	var first leqa.ResultRecord
	if err := json.Unmarshal(line, &first); err != nil {
		t.Fatalf("first row %q: %v", line, err)
	}
	if first.CircuitIndex != 0 || first.ParamsIndex != 0 {
		t.Fatalf("first row is (%d,%d), want (0,0)", first.CircuitIndex, first.ParamsIndex)
	}
	got := []leqa.ResultRecord{first}
	releaseStream()
	for {
		line, err := br.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) > 0 {
			var rec leqa.ResultRecord
			if jerr := json.Unmarshal(line, &rec); jerr != nil {
				t.Fatalf("row %q: %v", line, jerr)
			}
			got = append(got, rec)
		}
		if err != nil {
			break
		}
	}

	// Reference: the same batch through the public engine directly.
	circuits := make([]*leqa.Circuit, len(specs))
	for i, name := range specs {
		if circuits[i], err = leqa.GenerateFT(name); err != nil {
			t.Fatal(err)
		}
	}
	p0 := leqa.DefaultParams()
	p0.Grid = leqa.Grid{Width: 21, Height: 21}
	p1 := leqa.DefaultParams()
	p1.Grid = leqa.Grid{Width: 33, Height: 33}
	p1.ChannelCapacity = 3
	runner, err := leqa.NewRunner(leqa.DefaultParams(), leqa.EstimateOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := runner.SweepGrid(context.Background(), circuits, []leqa.Params{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]leqa.ResultRecord, len(cells))
	for i, cell := range cells {
		want[i] = cell.Record()
	}

	if len(got) != len(want) {
		t.Fatalf("streamed %d rows, want %d", len(got), len(want))
	}
	for k := range want {
		i, j := k/2, k%2
		if got[k].CircuitIndex != i || got[k].ParamsIndex != j {
			t.Fatalf("row %d is (%d,%d), want (%d,%d): rows must keep circuit-major input order",
				k, got[k].CircuitIndex, got[k].ParamsIndex, i, j)
		}
		if !reflect.DeepEqual(got[k], want[k]) {
			t.Fatalf("row %d differs from direct SweepGrid:\nhttp:   %+v\ndirect: %+v", k, got[k], want[k])
		}
	}
}

func TestSecondRequestHitsZoneModelCache(t *testing.T) {
	// Disable the result memo: it would satisfy the second request before
	// the estimate phase (and thus the zone-model memo) is ever reached.
	_, c := newTestServer(t, server.Config{ResultMemoEntries: -1})
	req := client.EstimateRequest{
		CircuitSpec: client.CircuitSpec{Generate: "ham7"},
		// A fabric no other test uses, so the first request computes the
		// zone model and the second memo-hits it.
		Params: &client.ParamSpec{Grid: "43x47"},
	}
	if _, err := c.Estimate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	h1, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Estimate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	h2, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h2.ZoneModelCache.Hits <= h1.ZoneModelCache.Hits {
		t.Fatalf("second identical request must hit the shared memo: hits %d → %d",
			h1.ZoneModelCache.Hits, h2.ZoneModelCache.Hits)
	}
	if h2.Status != "ok" || h2.Version == "" || h2.GoVersion == "" {
		t.Fatalf("healthz build info incomplete: %+v", h2)
	}
}

func TestGridCancellationStopsBatch(t *testing.T) {
	release, releaseStream := makeRelease(t)
	firstFlushed := make(chan struct{})
	cfg := server.Config{
		FlushHook: func(rows int) {
			if rows == 1 {
				close(firstFlushed)
				<-release
			}
		},
	}
	_, c := newTestServer(t, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	rows := 0
	done := make(chan error, 1)
	go func() {
		done <- c.Grid(ctx, client.GridRequest{
			Circuits: []client.CircuitSpec{
				{Generate: "ham7"}, {Generate: "4bitadder"}, {Generate: "mod16adder"},
			},
			ParamSets: []client.ParamSpec{{Grid: "22x22"}, {Grid: "23x23"}, {Grid: "24x24"}},
		}, func(leqa.ResultRecord) error { rows++; return nil })
	}()

	select {
	case <-firstFlushed:
	case <-time.After(10 * time.Second):
		t.Fatal("first row never flushed")
	}
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled stream must surface an error to the client")
	}
	// At most row 1 can have reached the client (delivery of the flushed
	// bytes races the cancel): rows 2+ were held behind the hook until
	// after the cancellation, and by then the reader was gone.
	if rows > 1 {
		t.Fatalf("client received %d rows before cancelling, want at most 1", rows)
	}
	// Give the disconnect a moment to reach the server's connection
	// reader, then unblock the stream so the handler can observe it.
	time.Sleep(50 * time.Millisecond)
	releaseStream()

	// The handler must notice the cancellation, stop the batch and finish.
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err := c.Health(context.Background())
		if err == nil && h.BatchesCanceled >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never recorded the cancelled batch")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAbortedBatchIsNotACleanEOF pins the NDJSON truncation contract: a
// batch ended early server-side (here via Abort, the forced-shutdown path)
// must reach the client as a transport error, never as a clean EOF that
// masquerades as a complete, shorter batch.
func TestAbortedBatchIsNotACleanEOF(t *testing.T) {
	release, releaseStream := makeRelease(t)
	firstFlushed := make(chan struct{})
	srv, err := server.New(server.Config{
		FlushHook: func(rows int) {
			if rows == 1 {
				close(firstFlushed)
				<-release
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c := client.New(ts.URL, ts.Client())

	done := make(chan error, 1)
	go func() {
		done <- c.Sweep(context.Background(), client.SweepRequest{
			Circuits: []client.CircuitSpec{{Generate: "2bitadder"}, {Generate: "3bitadder"}},
		}, func(leqa.ResultRecord) error { return nil })
	}()
	select {
	case <-firstFlushed:
	case <-time.After(10 * time.Second):
		t.Fatal("first row never flushed")
	}
	srv.Abort()
	// Abort's cancellation reaches request contexts via context.AfterFunc
	// (its own goroutine); give it a beat before letting the stream move.
	time.Sleep(50 * time.Millisecond)
	releaseStream()
	if err := <-done; err == nil {
		t.Fatal("aborted mid-batch stream ended in a clean EOF; truncation must be a transport error")
	}
}

func TestSweepPerRowErrorsKeepBatchAlive(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	var got []leqa.ResultRecord
	err := c.Sweep(context.Background(), client.SweepRequest{
		Circuits: []client.CircuitSpec{
			{Generate: "ham7"},
			{Generate: "no-such-benchmark"},
			{QC: "this is not a netlist"},
			{Generate: "mod16adder"},
		},
		Params: &client.ParamSpec{Grid: "18x18"},
	}, func(rec leqa.ResultRecord) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("streamed %d rows, want 4 (bad rows must not abort the batch)", len(got))
	}
	for k, rec := range got {
		if rec.CircuitIndex != k {
			t.Fatalf("row %d has circuitIndex %d; order must match the request", k, rec.CircuitIndex)
		}
	}
	if got[0].Error != "" || got[3].Error != "" {
		t.Fatalf("good rows carry errors: %q / %q", got[0].Error, got[3].Error)
	}
	if got[1].Error == "" || got[2].Error == "" {
		t.Fatalf("bad rows must carry per-row errors: %+v / %+v", got[1], got[2])
	}
	if got[1].Circuit != "no-such-benchmark" {
		t.Fatalf("error row name = %q", got[1].Circuit)
	}
	if got[0].EstimatedLatencyUs <= 0 || got[3].EstimatedLatencyUs <= 0 {
		t.Fatalf("good rows missing estimates: %+v / %+v", got[0], got[3])
	}
}

func TestSweepSSE(t *testing.T) {
	ts, c := newTestServer(t, server.Config{})
	req := client.SweepRequest{
		Circuits: []client.CircuitSpec{{Generate: "ham7"}, {Generate: "mod16adder"}},
		Params:   &client.ParamSpec{Grid: "19x19"},
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", gridBody(t, req))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", "text/event-stream")
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}

	var rows []leqa.ResultRecord
	var doneSeen bool
	event := ""
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			event = ""
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			payload := strings.TrimPrefix(line, "data: ")
			switch event {
			case "":
				var rec leqa.ResultRecord
				if err := json.Unmarshal([]byte(payload), &rec); err != nil {
					t.Fatalf("bad SSE row %q: %v", payload, err)
				}
				rows = append(rows, rec)
			case "done":
				doneSeen = true
			case "error":
				t.Fatalf("unexpected SSE error frame: %s", payload)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || !doneSeen {
		t.Fatalf("rows=%d doneSeen=%v, want 2 rows and a done event", len(rows), doneSeen)
	}

	// SSE and NDJSON must carry identical records.
	var ndRows []leqa.ResultRecord
	if err := c.Sweep(context.Background(), req, func(rec leqa.ResultRecord) error {
		ndRows = append(ndRows, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, ndRows) {
		t.Fatalf("SSE rows differ from NDJSON rows:\nsse:    %+v\nndjson: %+v", rows, ndRows)
	}
}

func TestBenchmarksCatalog(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	cat, err := c.Benchmarks(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Benchmarks) != 18 {
		t.Fatalf("catalog lists %d benchmarks, want the paper's 18", len(cat.Benchmarks))
	}
	for _, b := range cat.Benchmarks {
		if b.Name == "" || b.Qubits <= 0 || b.Operations <= 0 {
			t.Fatalf("incomplete catalog entry: %+v", b)
		}
	}
	if len(cat.Families) == 0 {
		t.Fatal("catalog must list generator families")
	}
	foundShor := false
	for _, f := range cat.Families {
		if strings.HasPrefix(f, "shor") {
			foundShor = true
		}
	}
	if !foundShor {
		t.Fatalf("families %v missing the shor generator", cat.Families)
	}
}

func TestRequestLimits(t *testing.T) {
	// MaxGates sits between 2bitadder's conservative size bound (~900) and
	// ham7's (~14k), so one generated spec is admitted and one rejected.
	ts, c := newTestServer(t, server.Config{
		MaxBodyBytes: 256,
		MaxGates:     2000,
		MaxCells:     4,
	})

	t.Run("body too large", func(t *testing.T) {
		big := client.EstimateRequest{CircuitSpec: client.CircuitSpec{QC: strings.Repeat("x", 1024)}}
		_, err := c.Estimate(context.Background(), big)
		var apiErr *client.APIError
		if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("err = %v, want 413", err)
		}
	})

	t.Run("gate cap on estimate", func(t *testing.T) {
		_, err := c.Estimate(context.Background(), client.EstimateRequest{
			CircuitSpec: client.CircuitSpec{Generate: "ham7"}, // bound ~14k > 2000
		})
		var apiErr *client.APIError
		if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("err = %v, want 422", err)
		}
	})

	t.Run("oversized generator spec rejected before synthesis", func(t *testing.T) {
		// Admission control: this must 422 instantly from the closed-form
		// size bound — synthesizing shor-2000000 would OOM the process.
		start := time.Now()
		_, err := c.Estimate(context.Background(), client.EstimateRequest{
			CircuitSpec: client.CircuitSpec{Generate: "shor-2000000"},
		})
		var apiErr *client.APIError
		if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("err = %v, want 422", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("rejection took %v; it must not synthesize anything", elapsed)
		}
	})

	t.Run("gate cap is a per-row error in batches", func(t *testing.T) {
		var got []leqa.ResultRecord
		err := c.Sweep(context.Background(), client.SweepRequest{
			Circuits: []client.CircuitSpec{{Generate: "2bitadder"}, {Generate: "ham7"}},
		}, func(rec leqa.ResultRecord) error {
			got = append(got, rec)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("rows = %d, want 2", len(got))
		}
		if got[0].Error != "" {
			t.Fatalf("small circuit failed: %q", got[0].Error)
		}
		if !strings.Contains(got[1].Error, "over the server cap") {
			t.Fatalf("over-cap row error = %q", got[1].Error)
		}
	})

	t.Run("cell cap", func(t *testing.T) {
		err := c.Grid(context.Background(), client.GridRequest{
			Circuits:  []client.CircuitSpec{{Generate: "2bitadder"}, {Generate: "3bitadder"}, {Generate: "4bitadder"}},
			ParamSets: []client.ParamSpec{{Grid: "10x10"}, {Grid: "11x11"}},
		}, func(leqa.ResultRecord) error { return nil })
		var apiErr *client.APIError
		if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
			t.Fatalf("err = %v, want 400 for 6 cells over the cap of 4", err)
		}
	})

	t.Run("malformed JSON", func(t *testing.T) {
		resp, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader("{nope"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("unknown field", func(t *testing.T) {
		resp, err := ts.Client().Post(ts.URL+"/v1/grid", "application/json",
			strings.NewReader(`{"circuits":[{"generate":"2bitadder"}],"paramGrids":[{"grid":"9x9"}]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400 for a misspelled field", resp.StatusCode)
		}
	})

	t.Run("bad params", func(t *testing.T) {
		err := c.Grid(context.Background(), client.GridRequest{
			Circuits:  []client.CircuitSpec{{Generate: "2bitadder"}},
			ParamSets: []client.ParamSpec{{Grid: "0x0"}},
		}, func(leqa.ResultRecord) error { return nil })
		var apiErr *client.APIError
		if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
			t.Fatalf("err = %v, want 400 before streaming starts", err)
		}
	})
}

func TestConcurrencyLimit(t *testing.T) {
	release, releaseStream := makeRelease(t)
	firstFlushed := make(chan struct{})
	_, c := newTestServer(t, server.Config{
		MaxConcurrent: 1,
		FlushHook: func(rows int) {
			if rows == 1 {
				close(firstFlushed)
				<-release
			}
		},
	})
	done := make(chan error, 1)
	go func() {
		done <- c.Sweep(context.Background(), client.SweepRequest{
			Circuits: []client.CircuitSpec{{Generate: "ham7"}},
		}, func(leqa.ResultRecord) error { return nil })
	}()
	select {
	case <-firstFlushed:
	case <-time.After(10 * time.Second):
		t.Fatal("first request never started streaming")
	}

	_, err := c.Estimate(context.Background(), client.EstimateRequest{
		CircuitSpec: client.CircuitSpec{Generate: "2bitadder"},
	})
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want 429 while the only slot streams", err)
	}
	releaseStream()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestUnknownRouteAndMethod(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	resp, err := ts.Client().Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/estimate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
}

// asAPIError unwraps err into an *client.APIError.
func asAPIError(err error, target **client.APIError) bool {
	if err == nil {
		return false
	}
	e, ok := err.(*client.APIError)
	if ok {
		*target = e
	}
	return ok
}

// TestHealthzUnderLoad sanity-checks the counters move.
func TestHealthzUnderLoad(t *testing.T) {
	_, c := newTestServer(t, server.Config{Version: "test-build"})
	h0, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	if err := c.Sweep(context.Background(), client.SweepRequest{
		Circuits: []client.CircuitSpec{{Generate: "2bitadder"}, {Generate: "3bitadder"}},
	}, func(leqa.ResultRecord) error { rows++; return nil }); err != nil {
		t.Fatal(err)
	}
	h1, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h1.Version != "test-build" {
		t.Fatalf("version = %q", h1.Version)
	}
	if h1.Requests <= h0.Requests {
		t.Fatalf("request counter did not move: %d → %d", h0.Requests, h1.Requests)
	}
	if h1.RowsStreamed < h0.RowsStreamed+uint64(rows) {
		t.Fatalf("rowsStreamed %d → %d, want +%d", h0.RowsStreamed, h1.RowsStreamed, rows)
	}
}

// TestHealthzEstimateLatencyCounters proves every admitted estimation
// request lands in the latency recorder: count tracks requests, the sum and
// max move, the histogram stays consistent with the count, and read-only
// endpoints (healthz itself) are not timed.
func TestHealthzEstimateLatencyCounters(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	h0, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h0.EstimateLatency.Count != 0 {
		t.Fatalf("fresh server reports %d timed requests", h0.EstimateLatency.Count)
	}
	req := client.EstimateRequest{CircuitSpec: client.CircuitSpec{Generate: "ham7"}}
	for i := 0; i < 3; i++ {
		if _, err := c.Estimate(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	lat := h.EstimateLatency
	if lat.Count != 3 {
		t.Fatalf("latency count = %d after 3 estimates, want 3", lat.Count)
	}
	if lat.SumMs <= 0 || lat.MaxMs <= 0 || lat.AvgMs <= 0 {
		t.Fatalf("latency aggregates must be positive: %+v", lat)
	}
	if lat.MaxMs > lat.SumMs {
		t.Fatalf("max %v exceeds sum %v", lat.MaxMs, lat.SumMs)
	}
	if len(lat.Buckets) != len(lat.BucketBoundsMs)+1 {
		t.Fatalf("histogram shape: %d buckets for %d bounds", len(lat.Buckets), len(lat.BucketBoundsMs))
	}
	var inBuckets uint64
	for _, b := range lat.Buckets {
		inBuckets += b
	}
	if inBuckets != lat.Count {
		t.Fatalf("histogram holds %d requests, count says %d", inBuckets, lat.Count)
	}
	// Rejected requests must not skew the metric: an unknown generator is
	// a 4xx that never estimated anything.
	if _, err := c.Estimate(context.Background(),
		client.EstimateRequest{CircuitSpec: client.CircuitSpec{Generate: "nosuchbench"}}); err == nil {
		t.Fatal("bogus generator spec was accepted")
	}
	h, err = c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.EstimateLatency.Count != 3 {
		t.Fatalf("rejected request was timed: count %d, want 3", h.EstimateLatency.Count)
	}
}
