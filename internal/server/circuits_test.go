package server_test

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"

	"repro/internal/qcbin"
	"repro/internal/server"
	"repro/leqa"
	"repro/leqa/client"
)

// uploadQC is a small FT netlist the circuit-store tests upload.
const uploadQC = ".v a b c d\n.i a b c\nBEGIN\nH a\nCNOT a b\nT c\nCNOT b d\nT* d\nCNOT a d\nEND\n"

// gzipBytes compresses data with gzip.
func gzipBytes(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// qcbBytes renders the netlist in the binary .qcb container.
func qcbBytes(t *testing.T, name, qc string) []byte {
	t.Helper()
	c, err := leqa.Parse(strings.NewReader(qc), name)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := leqa.WriteQCB(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCircuitUploadEstimateByRef covers the content-store round trip: PUT a
// netlist, estimate it by reference, and match the inline estimate bitwise.
// A second identical by-reference request must be answered from the memory
// tier — /healthz's analysisStore hit counter rises.
func TestCircuitUploadEstimateByRef(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	ctx := context.Background()

	info, err := c.PutCircuit(ctx, "refcirc", strings.NewReader(uploadQC))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(info.Digest, "sha256:") || info.Qubits != 4 || info.Operations != 6 || !info.FT {
		t.Fatalf("upload info = %+v", info)
	}

	// Metadata reads back by digest; HEAD answers existence.
	got, err := c.Circuit(ctx, info.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *info {
		t.Fatalf("GET circuit = %+v, want %+v", got, info)
	}

	// Re-uploading the same circuit as a gzipped binary netlist lands on
	// the same digest: the digest covers gates, not containers.
	again, err := c.PutCircuit(ctx, "refcirc", bytes.NewReader(gzipBytes(t, qcbBytes(t, "refcirc", uploadQC))))
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest != info.Digest {
		t.Fatalf("binary re-upload digest %s, want %s", again.Digest, info.Digest)
	}

	want, err := c.Estimate(ctx, client.EstimateRequest{
		CircuitSpec: client.CircuitSpec{QC: uploadQC, Name: "refcirc"},
		Params:      &client.ParamSpec{Grid: "16x16"},
	})
	if err != nil {
		t.Fatal(err)
	}

	estimateByRef := func() *leqa.ResultRecord {
		rec, err := c.Estimate(ctx, client.EstimateRequest{
			CircuitSpec: client.CircuitSpec{Ref: info.Digest},
			Params:      &client.ParamSpec{Grid: "16x16"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	first := estimateByRef()
	if first.EstimatedLatencyUs != want.EstimatedLatencyUs || first.Operations != want.Operations {
		t.Fatalf("by-ref estimate %+v diverges from inline %+v", first, want)
	}
	h1, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	second := estimateByRef()
	if second.EstimatedLatencyUs != want.EstimatedLatencyUs {
		t.Fatalf("second by-ref estimate diverges: %+v", second)
	}
	h2, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h2.AnalysisStore.Hits <= h1.AnalysisStore.Hits {
		t.Fatalf("second identical by-ref request did not raise store hits: %+v -> %+v",
			h1.AnalysisStore, h2.AnalysisStore)
	}
	if h2.AnalysisStore.Misses != h1.AnalysisStore.Misses {
		t.Fatalf("by-ref requests re-analyzed: misses %d -> %d",
			h1.AnalysisStore.Misses, h2.AnalysisStore.Misses)
	}
}

// TestCircuitRefErrors covers the failure edges of by-reference specs:
// unknown digests are 404, malformed refs 400, ref+inline mixes 400, and a
// bad ref inside a batch is one error row, not a failed request.
func TestCircuitRefErrors(t *testing.T) {
	ts, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	unknown := "sha256:" + strings.Repeat("ab", 32)

	var apiErr *client.APIError
	_, err := c.Estimate(ctx, client.EstimateRequest{CircuitSpec: client.CircuitSpec{Ref: unknown}})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown ref: %v, want 404", err)
	}
	_, err = c.Estimate(ctx, client.EstimateRequest{CircuitSpec: client.CircuitSpec{Ref: "md5:nope"}})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed ref: %v, want 400", err)
	}
	_, err = c.Estimate(ctx, client.EstimateRequest{CircuitSpec: client.CircuitSpec{Ref: unknown, Generate: "ham7"}})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("ref+generate: %v, want 400", err)
	}
	_, err = c.Circuit(ctx, unknown)
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown circuit: %v, want 404", err)
	}
	resp, err := ts.Client().Head(ts.URL + "/v1/circuits/" + unknown)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HEAD unknown circuit: %d, want 404", resp.StatusCode)
	}

	// Batch: a good generated spec plus a dangling ref → two rows, one error.
	var rows []leqa.ResultRecord
	err = c.Sweep(ctx, client.SweepRequest{
		Circuits: []client.CircuitSpec{{Generate: "ham7"}, {Ref: unknown}},
	}, func(rec leqa.ResultRecord) error {
		rows = append(rows, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Error != "" || rows[1].Error == "" {
		t.Fatalf("mixed batch rows = %+v", rows)
	}
	if rows[1].Circuit != unknown {
		t.Fatalf("error row labeled %q, want the ref", rows[1].Circuit)
	}
}

// TestGridMixedRefAndInline runs a grid mixing a stored reference with an
// inline netlist across two parameter columns and checks it against the
// all-inline grid cell for cell.
func TestGridMixedRefAndInline(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	info, err := c.PutCircuit(ctx, "stored", strings.NewReader(uploadQC))
	if err != nil {
		t.Fatal(err)
	}
	cols := []client.ParamSpec{{Grid: "16x16"}, {Grid: "24x24"}}
	collect := func(specs []client.CircuitSpec) []leqa.ResultRecord {
		var rows []leqa.ResultRecord
		if err := c.Grid(ctx, client.GridRequest{Circuits: specs, ParamSets: cols},
			func(rec leqa.ResultRecord) error { rows = append(rows, rec); return nil }); err != nil {
			t.Fatal(err)
		}
		return rows
	}
	want := collect([]client.CircuitSpec{{QC: uploadQC, Name: "stored"}, {Generate: "ham7"}})
	got := collect([]client.CircuitSpec{{Ref: info.Digest, Name: "stored"}, {Generate: "ham7"}})
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Error != "" || want[i].Error != "" {
			t.Fatalf("row %d errs: ref %q, inline %q", i, got[i].Error, want[i].Error)
		}
		if got[i].EstimatedLatencyUs != want[i].EstimatedLatencyUs || got[i].Circuit != want[i].Circuit {
			t.Fatalf("row %d: ref grid %+v diverges from inline %+v", i, got[i], want[i])
		}
	}
}

// TestEstimateSniffedContainers uploads the same netlist to /v1/estimate in
// all four containers; every estimate must be identical.
func TestEstimateSniffedContainers(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	ctx := context.Background()
	qcb := qcbBytes(t, "sniffed", uploadQC)
	bodies := map[string][]byte{
		"qc":     []byte(uploadQC),
		"qc.gz":  gzipBytes(t, []byte(uploadQC)),
		"qcb":    qcb,
		"qcb.gz": gzipBytes(t, qcb),
	}
	var want *leqa.ResultRecord
	for container, body := range bodies {
		rec, err := c.EstimateQC(ctx, "sniffed", bytes.NewReader(body), &client.ParamSpec{Grid: "16x16"})
		if err != nil {
			t.Fatalf("%s: %v", container, err)
		}
		if want == nil {
			want = rec
			continue
		}
		if rec.EstimatedLatencyUs != want.EstimatedLatencyUs || rec.Operations != want.Operations {
			t.Fatalf("%s: estimate %+v diverges from %+v", container, rec, want)
		}
	}
}

// TestGzipInflateLimit422: a gzip upload inflating past the spool cap is
// 422 (unprocessable content); an oversized raw upload keeps being 413.
func TestGzipInflateLimit422(t *testing.T) {
	_, c := newTestServer(t, server.Config{MaxSpoolBytes: 32})
	ctx := context.Background()
	var apiErr *client.APIError
	_, err := c.PutCircuit(ctx, "big", bytes.NewReader(gzipBytes(t, []byte(uploadQC))))
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("gzip over cap: %v, want 422", err)
	}
	_, err = c.PutCircuit(ctx, "bigbin", bytes.NewReader(qcbBytes(t, "bigbin", uploadQC)))
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("raw binary over cap: %v, want 413", err)
	}
}

// TestStorePersistsAcrossRestart builds a second server over the same
// store directory — the in-process restart — and estimates by reference:
// the analysis must come from the persisted image (a disk hit, zero
// misses) and match the original estimate bitwise.
func TestStorePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	_, c1 := newTestServer(t, server.Config{StoreDir: dir})
	info, err := c1.PutCircuit(ctx, "durable", strings.NewReader(uploadQC))
	if err != nil {
		t.Fatal(err)
	}
	want, err := c1.Estimate(ctx, client.EstimateRequest{
		CircuitSpec: client.CircuitSpec{Ref: info.Digest},
		Params:      &client.ParamSpec{Grid: "16x16"},
	})
	if err != nil {
		t.Fatal(err)
	}

	_, c2 := newTestServer(t, server.Config{StoreDir: dir})
	got, err := c2.Estimate(ctx, client.EstimateRequest{
		CircuitSpec: client.CircuitSpec{Ref: info.Digest},
		Params:      &client.ParamSpec{Grid: "16x16"},
	})
	if err != nil {
		t.Fatalf("by-ref estimate after restart: %v", err)
	}
	if got.EstimatedLatencyUs != want.EstimatedLatencyUs || got.LCNOTAvgUs != want.LCNOTAvgUs {
		t.Fatalf("post-restart estimate %+v diverges from %+v", got, want)
	}
	h, err := c2.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.AnalysisStore.DiskHits == 0 {
		t.Fatalf("restarted server served no disk hits: %+v", h.AnalysisStore)
	}
	if h.AnalysisStore.Misses != 0 {
		t.Fatalf("restarted server re-analyzed: %+v", h.AnalysisStore)
	}
	if h.AnalysisStore.DiskEntries == 0 || h.AnalysisStore.DiskBytes == 0 {
		t.Fatalf("disk tier accounting empty after scan: %+v", h.AnalysisStore)
	}
}

// TestMetricsExposeStoreSeries checks the /metrics exposition carries the
// analysis-store series.
func TestMetricsExposeStoreSeries(t *testing.T) {
	ts, c := newTestServer(t, server.Config{})
	if _, err := c.PutCircuit(context.Background(), "m", strings.NewReader(uploadQC)); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, series := range []string{
		"leqad_analysis_store_hits_total",
		"leqad_analysis_store_misses_total 1",
		"leqad_analysis_store_disk_hits_total",
		"leqad_analysis_store_entries 1",
		`leqad_requests_total{endpoint="circuits"} 1`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("metrics missing %q", series)
		}
	}
}

// TestDigestMatchesClientSide: the digest PUT returns equals the digest
// computed locally over the parsed circuit — clients can address circuits
// without uploading them first.
func TestDigestMatchesClientSide(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	circ, err := leqa.Parse(strings.NewReader(uploadQC), "local")
	if err != nil {
		t.Fatal(err)
	}
	digest, err := leqa.CircuitDigest(circ)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.PutCircuit(context.Background(), "local", strings.NewReader(uploadQC))
	if err != nil {
		t.Fatal(err)
	}
	if info.Digest != qcbin.FormatRef(digest) {
		t.Fatalf("server digest %s, local %s", info.Digest, qcbin.FormatRef(digest))
	}
}
