package server

import (
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strings"
	"time"

	"repro/leqa/trace"
)

// This file is the per-request observability layer: every request through
// ServeHTTP gets a trace.Trace in its context (correlated by X-Request-Id /
// W3C traceparent, else a generated ID), an X-Request-Id response header, a
// Server-Timing header (or trailer, for streamed batches) carrying the
// per-phase span breakdown, a structured slog access log, panic recovery,
// and a snapshot in the ring behind GET /debug/requests.

// observe wraps the route mux with the request observability middleware.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, _ := trace.RequestID(r.Header.Get("X-Request-Id"), r.Header.Get("Traceparent"))
		tr := trace.New(id)
		r = r.WithContext(trace.NewContext(r.Context(), tr))
		w.Header().Set("X-Request-Id", id)
		ow := &obsWriter{ResponseWriter: w, tr: tr}
		defer s.finishRequest(w, r, ow, tr)
		next.ServeHTTP(ow, r)
	})
}

// finishRequest runs after the handler (or its panic): it recovers panics
// into 500s, populates the Server-Timing trailer of streamed responses,
// snapshots the trace into the debug ring, and writes the access log.
func (s *Server) finishRequest(w http.ResponseWriter, r *http.Request, ow *obsWriter, tr *trace.Trace) {
	p := recover()
	aborted := p != nil && p == http.ErrAbortHandler

	snap := tr.Capture()
	snap.Method, snap.Path = r.Method, r.URL.Path
	for _, pt := range snap.Totals {
		if pt.Name == trace.SpanEmit {
			snap.Rows = pt.Count
		}
	}
	switch {
	case aborted:
		// The NDJSON encoder cuts failed streams short by design
		// (http.ErrAbortHandler); the truncation is the signal, not a bug.
		snap.Error = "stream aborted"
	case p != nil:
		s.panics.Add(1)
		s.logger.LogAttrs(r.Context(), slog.LevelError, "panic in handler",
			slog.String("id", tr.ID()),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Any("panic", p),
			slog.String("stack", string(debug.Stack())),
		)
		snap.Error = "panic (see server log)"
		if ow.status == 0 {
			// Nothing was sent yet: the panic recovers into a well-formed
			// 500 and the connection survives.
			writeJSONError(ow, http.StatusInternalServerError, "internal error")
			p = nil
		}
	}
	snap.Status = ow.status

	// Streamed responses declared Server-Timing as a trailer before their
	// header went out; setting the field after WriteHeader populates it.
	if headerDeclaresTrailer(w.Header(), "Server-Timing") {
		if st := tr.ServerTiming(); st != "" {
			w.Header().Set("Server-Timing", st)
		}
	}
	s.ring.Add(snap)
	s.recordWindows(r, ow.status, snap.Rows, ow.bytes, time.Duration(snap.DurMs*float64(time.Millisecond)))

	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("id", tr.ID()),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", ow.status),
		slog.Float64("dur_ms", snap.DurMs),
		slog.Int("rows", snap.Rows),
		slog.String("remote", r.RemoteAddr),
	)
	if s.cfg.SlowRequest > 0 && snap.DurMs >= float64(s.cfg.SlowRequest.Milliseconds()) {
		s.logger.LogAttrs(r.Context(), slog.LevelWarn, "slow request",
			slog.String("id", tr.ID()),
			slog.String("path", r.URL.Path),
			slog.Float64("dur_ms", snap.DurMs),
			slog.String("breakdown", tr.Breakdown()),
		)
	}

	if p != nil {
		if aborted {
			panic(p) // net/http must still cut the connection short
		}
		// Mid-stream panic with the status long gone: truncate the
		// response so the client sees a transport error, not silence.
		panic(http.ErrAbortHandler)
	}
}

// obsWriter injects the Server-Timing header at WriteHeader time — by which
// point buffered (non-streaming) handlers have finished every pipeline
// phase — and remembers the status for the access log. Streaming handlers
// declare Server-Timing as a trailer instead (newRowEncoder), which
// suppresses the header-time injection.
type obsWriter struct {
	http.ResponseWriter
	tr     *trace.Trace
	status int
	wrote  bool
	bytes  int64
}

func (o *obsWriter) WriteHeader(code int) {
	if o.status == 0 {
		o.status = code
		h := o.Header()
		if h.Get("Server-Timing") == "" && !headerDeclaresTrailer(h, "Server-Timing") {
			if st := o.tr.ServerTiming(); st != "" {
				h.Set("Server-Timing", st)
			}
		}
	}
	o.ResponseWriter.WriteHeader(code)
}

func (o *obsWriter) Write(b []byte) (int, error) {
	if o.status == 0 {
		o.WriteHeader(http.StatusOK)
	}
	o.wrote = true
	n, err := o.ResponseWriter.Write(b)
	o.bytes += int64(n)
	return n, err
}

// Flush keeps the streaming row encoders seeing an http.Flusher.
func (o *obsWriter) Flush() {
	if f, ok := o.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// headerDeclaresTrailer reports whether h's Trailer field names the given
// trailer.
func headerDeclaresTrailer(h http.Header, name string) bool {
	for _, v := range h.Values("Trailer") {
		for _, f := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(f), name) {
				return true
			}
		}
	}
	return false
}

// handleDebugRequests serves the in-memory ring of recently finished request
// traces, newest first — the first stop when a specific request was slow.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Requests []trace.Snapshot `json:"requests"`
	}{s.ring.Snapshots()})
}

// registerPprof mounts the net/http/pprof surfaces (profiles, heap, and
// runtime/trace capture at /debug/pprof/trace) on mux.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// DebugHandler serves the debug surfaces — request traces and pprof —
// independent of the API mux, for a separate private listener
// (cmd/leqad -debug-addr). Always includes pprof: binding a dedicated
// debug address is itself the opt-in.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	mux.HandleFunc("GET /debug/clients", s.handleDebugClients)
	registerPprof(mux)
	return mux
}

// observeQueue records the admission span: request arrival (the trace
// start) → worker slot acquired.
func observeQueue(r *http.Request) {
	if tr := trace.FromContext(r.Context()); tr != nil {
		tr.Observe(trace.SpanQueue, "", tr.Start(), time.Since(tr.Start()))
	}
}
