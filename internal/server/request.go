package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchgen"
	"repro/internal/ingest"
	"repro/leqa"
	"repro/leqa/client"
	"repro/leqa/trace"
)

// decodeJSON reads a JSON request body into v under the configured body
// cap. The returned error is already classified (statusError) for the
// handler to surface.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return classifyBodyErr(err)
	}
	return nil
}

// statusError carries the HTTP status a request-shaping failure maps to,
// plus an optional throttle reason tagging capacity rejections for
// leqad_throttled_total (gate/cell caps; 413s are classified by status).
type statusError struct {
	code   int
	msg    string
	reason string
}

func (e *statusError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &statusError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// capExceeded builds a gate/cell-cap rejection: a well-formed request whose
// workload is over a configured resource cap — 422 like other semantic
// rejections, but tagged so the throttle counters can distinguish capacity
// pushback from plain bad input.
func capExceeded(format string, args ...any) error {
	return &statusError{
		code:   http.StatusUnprocessableEntity,
		msg:    fmt.Sprintf(format, args...),
		reason: throttleGateCap,
	}
}

// classifyBodyErr maps body-read failures to statuses: over-cap bodies are
// 413, everything else is a 400.
func classifyBodyErr(err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return &statusError{code: http.StatusRequestEntityTooLarge, msg: mbe.Error()}
	}
	return badRequest("decoding request: %v", err)
}

// writeError surfaces a request failure with its mapped status, counting
// capacity rejections (413 body/spool caps, tagged gate/cell caps) into the
// throttle series on the way out.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var se *statusError
	if errors.As(err, &se) {
		switch {
		case se.code == http.StatusRequestEntityTooLarge:
			s.throttle(throttleBodyCap)
		case se.reason != "":
			s.throttle(se.reason)
		}
		writeJSONError(w, se.code, se.msg)
		return
	}
	writeJSONError(w, http.StatusUnprocessableEntity, err.Error())
}

// paramsFromSpec overlays one ParamSpec on the server's base parameter set.
// Full validation happens once the engine binds estimators; only the
// syntactic grid shape is checked here.
func (s *Server) paramsFromSpec(spec *client.ParamSpec) (leqa.Params, error) {
	p := s.cfg.Params.Clone()
	if spec == nil {
		return p, nil
	}
	if spec.Grid != "" {
		g, err := leqa.ParseGrid(spec.Grid)
		if err != nil {
			return p, badRequest("%v", err)
		}
		p.Grid = g
	}
	if spec.ChannelCapacity != nil {
		p.ChannelCapacity = *spec.ChannelCapacity
	}
	if spec.QubitSpeed != nil {
		p.QubitSpeed = *spec.QubitSpeed
	}
	if spec.TMove != nil {
		p.TMove = *spec.TMove
	}
	return p, nil
}

// paramSetsFromSpecs builds the grid's parameter columns; an empty list
// means one column of server defaults.
func (s *Server) paramSetsFromSpecs(specs []client.ParamSpec) ([]leqa.Params, error) {
	if len(specs) == 0 {
		return []leqa.Params{s.cfg.Params.Clone()}, nil
	}
	sets := make([]leqa.Params, len(specs))
	for j := range specs {
		p, err := s.paramsFromSpec(&specs[j])
		if err != nil {
			return nil, badRequest("paramSets[%d]: %v", j, err)
		}
		sets[j] = p
	}
	return sets, nil
}

// runnerFor returns the shared Runner, or a transient one bound to
// request-level estimator options. The zone-model memo is process-wide, so
// transient runners still share it.
func (s *Server) runnerFor(spec *client.OptionsSpec) (*leqa.Runner, error) {
	if spec == nil || (spec.Truncation == nil && spec.DisableCongestion == nil) {
		return s.runner, nil
	}
	opt := s.cfg.Options
	if spec.Truncation != nil {
		opt.Truncation = *spec.Truncation
	}
	if spec.DisableCongestion != nil {
		opt.DisableCongestion = *spec.DisableCongestion
	}
	r, err := leqa.NewRunner(s.cfg.Params, opt, s.cfg.Workers)
	if err != nil {
		return nil, err
	}
	// Analyses are estimator-option-independent, so transient runners share
	// the server's content-addressed store; the result memo's key includes
	// the runner's options, so sharing it across option overlays is safe too.
	r.SetAnalysisStore(s.store)
	if s.memo != nil {
		r.SetResultMemo(s.memo)
	}
	return r, nil
}

// wantDecompose reports whether non-FT uploads should be lowered (the
// default) or rejected.
func wantDecompose(spec *client.OptionsSpec) bool {
	return spec == nil || spec.Decompose == nil || *spec.Decompose
}

// resolveCircuit turns one CircuitSpec into an FT circuit, enforcing the
// gate-count cap. Errors are per-spec: batch handlers turn them into error
// rows rather than failing the request.
func (s *Server) resolveCircuit(ctx context.Context, spec client.CircuitSpec, decompose bool) (*leqa.Circuit, error) {
	// Spec resolution — generation or parsing plus FT lowering — is the
	// JSON endpoints' ingest phase: reported to the global histograms and,
	// when the request carries a trace, as an ingest span on it.
	defer func(t time.Time) {
		d := time.Since(t)
		leqa.ObservePhase(leqa.PhaseIngest, d)
		trace.FromContext(ctx).Observe(trace.SpanIngest, "", t, d)
	}(time.Now())
	var c *leqa.Circuit
	var err error
	switch {
	case spec.Ref != "":
		// Refs resolve against the analysis store (resolveSource), never to
		// a materialized circuit — the store holds graphs, not gate lists.
		return nil, fmt.Errorf("by-reference circuit specs cannot be materialized")
	case spec.QC != "" && spec.Generate != "":
		return nil, fmt.Errorf("circuit spec has both qc and generate; pick one")
	case spec.Generate != "":
		// Admission control: screen the spec's predicted size before
		// synthesizing anything, so an absurd parameter (shor-2000000)
		// cannot balloon memory on its way to the post-generation cap.
		if bound, ok := benchgen.PredictFTOps(spec.Generate); ok && bound > s.cfg.MaxGates {
			return nil, capExceeded("generator %q may produce up to %d operations, over the server cap of %d",
				spec.Generate, bound, s.cfg.MaxGates)
		}
		c, err = leqa.GenerateFT(spec.Generate)
	case spec.QC != "":
		name := spec.Name
		if name == "" {
			name = "uploaded"
		}
		c, err = leqa.Parse(strings.NewReader(spec.QC), name)
	default:
		return nil, fmt.Errorf("circuit spec needs qc or generate")
	}
	if err != nil {
		return nil, err
	}
	if spec.Name != "" {
		c.Name = spec.Name
	}
	if !c.IsFT() {
		if !decompose {
			return nil, fmt.Errorf("circuit %q has non-FT gates and decompose is disabled", c.Name)
		}
		if c, err = leqa.Decompose(c); err != nil {
			return nil, err
		}
	}
	if c.NumGates() > s.cfg.MaxGates {
		return nil, capExceeded("circuit %q has %d operations, over the server cap of %d",
			c.Name, c.NumGates(), s.cfg.MaxGates)
	}
	return c, nil
}

// resolveSource turns one CircuitSpec into a lazy engine source: by-ref
// specs resolve against the analysis store (the stored analysis feeds the
// estimator directly), inline and generated specs materialize through
// resolveCircuit. Errors are per-spec, like resolveCircuit's.
func (s *Server) resolveSource(ctx context.Context, spec client.CircuitSpec, decompose bool) (leqa.Source, error) {
	if spec.Ref == "" {
		c, err := s.resolveCircuit(ctx, spec, decompose)
		if err != nil {
			return leqa.Source{}, err
		}
		return leqa.CircuitSource(c), nil
	}
	if spec.QC != "" || spec.Generate != "" {
		return leqa.Source{}, badRequest("circuit spec has ref plus an inline form; pick one")
	}
	digest, err := leqa.ParseDigestRef(spec.Ref)
	if err != nil {
		return leqa.Source{}, badRequest("%v", err)
	}
	a, outcome, err := s.store.GetOutcome(digest)
	if errors.Is(err, leqa.ErrAnalysisNotFound) {
		return leqa.Source{}, &statusError{
			code: http.StatusNotFound,
			msg:  fmt.Sprintf("circuit %s is not in the analysis store; upload it with PUT /v1/circuits", spec.Ref),
		}
	}
	if err != nil {
		return leqa.Source{}, err
	}
	if a.Operations > s.cfg.MaxGates {
		return leqa.Source{}, capExceeded("circuit %q has %d operations, over the server cap of %d",
			a.Name, a.Operations, s.cfg.MaxGates)
	}
	name := spec.Name
	if name == "" {
		name = a.Name
	}
	src := leqa.AnalysisSource(name, a)
	src.StoreOutcome = outcome.String()
	src.Digest = digest // pre-known digest: the result memo can probe warm cells
	return src, nil
}

// specLabel names a circuit spec in error rows when resolution failed
// before any circuit existed.
func specLabel(spec client.CircuitSpec, i int) string {
	switch {
	case spec.Name != "":
		return spec.Name
	case spec.Generate != "":
		return spec.Generate
	case spec.Ref != "":
		return spec.Ref
	default:
		return fmt.Sprintf("circuit-%d", i)
	}
}

// isJSONRequest reports whether the estimate body is the JSON spec form
// (vs. a raw .qc upload).
func isJSONRequest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return false
	}
	mt, _, err := mime.ParseMediaType(ct)
	return err == nil && (mt == "application/json" || strings.HasSuffix(mt, "+json"))
}

// paramSpecFromQuery assembles the parameter overlay of a raw .qc upload
// from its query string (the body is the netlist itself). A nil spec means
// no overrides.
func paramSpecFromQuery(q url.Values) (*client.ParamSpec, error) {
	var ps client.ParamSpec
	havePs := false
	if g := q.Get("grid"); g != "" {
		ps.Grid, havePs = g, true
	}
	if v := q.Get("nc"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, badRequest("query nc=%q: %v", v, err)
		}
		ps.ChannelCapacity, havePs = &n, true
	}
	if v := q.Get("v"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, badRequest("query v=%q: %v", v, err)
		}
		ps.QubitSpeed, havePs = &f, true
	}
	if v := q.Get("tmove"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, badRequest("query tmove=%q: %v", v, err)
		}
		ps.TMove, havePs = &f, true
	}
	if !havePs {
		return nil, nil
	}
	return &ps, nil
}

// decomposeFromQuery reads the raw-upload decompose knob (default true,
// matching the JSON OptionsSpec default).
func decomposeFromQuery(q url.Values) (bool, error) {
	v := q.Get("decompose")
	if v == "" {
		return true, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, badRequest("query decompose=%q: %v", v, err)
	}
	return b, nil
}

// classifyStreamErr maps streaming-ingestion failures to statuses: an
// exceeded spool cap is 413 (the raw-upload successor of the body cap); a
// gzip body whose inflated content outgrew the cap is 422 — the request
// itself was within bounds, its content was not; everything else keeps
// writeError's default classification.
func classifyStreamErr(err error) error {
	if errors.Is(err, ingest.ErrInflateLimit) {
		return &statusError{code: http.StatusUnprocessableEntity, msg: err.Error()}
	}
	if errors.Is(err, ingest.ErrSpoolLimit) {
		return &statusError{code: http.StatusRequestEntityTooLarge, msg: err.Error()}
	}
	return err
}
