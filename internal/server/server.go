// Package server implements the leqad estimation service: an HTTP layer
// over the public leqa API that estimates uploaded .qc netlists or
// generated benchmarks and streams batch results back as they complete.
//
// Endpoints:
//
//	POST /v1/estimate    one circuit (JSON spec or raw .qc body) → one JSON record
//	POST /v1/sweep       circuits under one parameter set → streamed rows
//	POST /v1/grid        circuits × paramSets cross product → streamed rows
//	GET  /v1/benchmarks  generator catalog
//	GET  /healthz        build info + zone-model cache statistics
//	GET  /metrics        Prometheus-style per-endpoint request/row/latency
//
// Raw .qc uploads stream through internal/ingest: gates are parsed and
// analyzed as the body flows, with an on-disk spool (never RAM) backing the
// analyzer's second pass, so chunked uploads far past MaxBodyBytes estimate
// in O(analysis) memory under the MaxSpoolBytes disk cap (the 413 limit for
// raw uploads).
//
// The batch endpoints stream one leqa.ResultRecord per row — NDJSON by
// default, server-sent events when the client asks for text/event-stream —
// in input order as each row's prefix completes, with per-row errors
// instead of batch aborts. All requests share one leqa.Runner, so every
// estimate in the process funnels through the same memoized zone model;
// request-context cancellation propagates into the sweep engine and stops
// feeding unstarted work.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"reflect"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/leqa"
	"repro/leqa/client"
	"repro/leqa/trace"
)

// Default limits; every Config field of the same name overrides one.
const (
	DefaultMaxBodyBytes  = 8 << 20 // 8 MiB of request body
	DefaultMaxGates      = 2_000_000
	DefaultMaxCells      = 4096
	DefaultMaxConcurrent = 16
	// DefaultMaxSpoolBytes caps the on-disk spool a streamed raw .qc
	// upload may occupy — the streaming successor of MaxBodyBytes, which
	// bounds RAM. 256 MiB of netlist is ~10M operations.
	DefaultMaxSpoolBytes = 256 << 20
)

// Config assembles a Server. The zero value serves Table 1 defaults with
// sane limits.
type Config struct {
	// Params is the base physical parameter set requests overlay; zero
	// means leqa.DefaultParams().
	Params leqa.Params
	// Options is the base estimator tuning requests overlay.
	Options leqa.EstimateOptions
	// Workers sizes the shared Runner's pool; ≤ 0 selects GOMAXPROCS.
	Workers int
	// MaxBodyBytes caps every JSON request body (and the materialized
	// decompose fallback of raw uploads); exceeding it is a 413.
	MaxBodyBytes int64
	// MaxSpoolBytes caps the disk spool of one streamed raw .qc upload;
	// exceeding it is a 413. Raw uploads stream past MaxBodyBytes up to
	// this cap without ever occupying RAM.
	MaxSpoolBytes int64
	// SpoolDir receives upload spools; empty means os.TempDir().
	SpoolDir string
	// MaxGates caps one circuit's post-decomposition operation count.
	MaxGates int
	// MaxCells caps circuits × paramSets per batch request.
	MaxCells int
	// MaxConcurrent caps simultaneous estimation requests; excess
	// requests get 429 rather than queueing without bound.
	MaxConcurrent int
	// MaxQueue admits up to this many excess requests to a bounded wait for
	// a slot (at most QueueTimeout each) before 429. 0 — the default —
	// keeps the historical immediate-429 behavior.
	MaxQueue int
	// QueueTimeout bounds one queued request's wait for a slot; ≤ 0
	// selects 5s. Only meaningful with MaxQueue > 0.
	QueueTimeout time.Duration
	// Window spans the sliding-window telemetry (windowed percentiles,
	// error rates, queue-wait estimate, per-client counts); ≤ 0 selects 60s.
	Window time.Duration
	// SLO is a comma-separated objective list, e.g.
	// "estimate:p99<250ms,error_rate<1%" — see telemetry.ParseSLO. Empty
	// disables the evaluator (no slo block on /healthz, no slo series on
	// /metrics). Clause scopes must name an estimation endpoint (estimate,
	// sweep, grid) or be empty (merged estimation traffic).
	SLO string
	// SLOInterval paces SLO evaluation; ≤ 0 selects 5s.
	SLOInterval time.Duration
	// DegradeAfter is the consecutive breaching evaluations before /healthz
	// reports "degraded"; ≤ 0 selects 3.
	DegradeAfter int
	// MaxClients bounds the per-client accounting cardinality (the
	// leqad_client_* label budget); ≤ 0 selects 64. Excess clients fold
	// into the "other" row.
	MaxClients int
	// Clock injects time into the sliding-window telemetry — a test seam;
	// nil selects time.Now. Request timing and queue timeouts keep using
	// the real clock.
	Clock func() time.Time
	// StoreDir, when non-empty, enables the analysis store's disk tier:
	// analyses of uploaded circuits persist there as content-addressed
	// .qca images and survive restarts. The memory tier is always on.
	StoreDir string
	// StoreMemEntries bounds the store's in-memory LRU; ≤ 0 selects the
	// leqa default.
	StoreMemEntries int
	// StoreMaxDiskBytes caps the store's disk tier; ≤ 0 means unbounded.
	StoreMaxDiskBytes int64
	// ResultMemoEntries sizes the (digest, params) result memo that lets
	// warm identical estimate/sweep/grid cells skip analyze and estimate
	// entirely: 0 selects leqa.DefaultResultMemoEntries, negative disables
	// the memo. Hits are exact-key only, so every setting is
	// result-preserving.
	ResultMemoEntries int
	// Version is the build identifier reported by /healthz.
	Version string
	// Log receives request-level diagnostics; nil discards them.
	Log *log.Logger
	// Logger receives structured access logs, slow-request breakdowns and
	// panic reports. nil falls back to a text handler over Log's writer
	// when Log is set, and discards otherwise.
	Logger *slog.Logger
	// SlowRequest, when positive, logs any request at or over this duration
	// at warn level with its full span breakdown.
	SlowRequest time.Duration
	// TraceRing sizes the GET /debug/requests ring of recent request
	// traces; ≤ 0 selects trace.DefaultRingSize.
	TraceRing int
	// EnableDebug mounts the net/http/pprof surfaces on the main mux under
	// /debug/pprof/. Off by default: profiles expose internals, so they are
	// opt-in (or bound privately via DebugHandler and cmd/leqad
	// -debug-addr). GET /debug/requests is always on.
	EnableDebug bool
	// FlushHook, when set, runs after each streamed row reaches the
	// client (with the 1-based row count). It is a test seam: a blocking
	// hook holds the stream — and through backpressure the whole batch —
	// exactly where it is.
	FlushHook func(rows int)
}

// Server is the leqad request layer. Create with New; it implements
// http.Handler.
type Server struct {
	cfg     Config
	runner  *leqa.Runner
	store   *leqa.AnalysisStore
	memo    *leqa.ResultMemo // nil when disabled
	mux     *http.ServeMux
	handler http.Handler // mux behind the observability middleware
	sem     chan struct{}
	start   time.Time
	logger  *slog.Logger
	ring    *trace.Ring
	panics  atomic.Uint64

	// baseCtx is cancelled by Abort to stop every in-flight batch during
	// forced shutdown.
	baseCtx   context.Context
	abortBase context.CancelFunc

	requests        atomic.Uint64
	rowsStreamed    atomic.Uint64
	batchesCanceled atomic.Uint64
	latency         latencyRecorder

	// Per-endpoint metrics behind GET /metrics; the flat counters above
	// keep feeding /healthz unchanged.
	endpoints      map[string]*endpointMetrics
	spooledUploads atomic.Uint64
	spooledBytes   atomic.Uint64

	// Per-phase latency (ingest/analyze/estimate), fed by the process-wide
	// leqa phase observer the newest Server registers; see New.
	phases map[string]*latencyRecorder

	// Sliding-window telemetry (saturation.go): per-endpoint latency
	// sketches and completion/error counters, the queue-wait window pricing
	// Retry-After, per-phase windows fed by the phase-observer tee,
	// admission gauges, throttle counters by reason, bounded per-client
	// accounting, and the optional SLO evaluator.
	winLen    time.Duration
	winLat    map[string]*telemetry.Window
	winReq    map[string]*telemetry.Counter
	winErr    map[string]*telemetry.Counter
	phaseWin  map[string]*telemetry.Window
	queueWait *telemetry.Window
	queued    atomic.Int64
	inflight  atomic.Int64
	throttled map[string]*atomic.Uint64
	clients   *telemetry.Clients
	evaluator *telemetry.Evaluator // nil without Config.SLO
}

// metricsEndpoints fixes the exposition order of the per-endpoint series.
var metricsEndpoints = []string{"estimate", "sweep", "grid", "circuits", "benchmarks", "healthz"}

// metricsPhases fixes the exposition order of the per-phase series.
var metricsPhases = []string{leqa.PhaseIngest, leqa.PhaseAnalyze, leqa.PhaseEstimate}

// endpointMetrics aggregates one endpoint's request/row/latency series for
// the Prometheus-style /metrics exposition.
type endpointMetrics struct {
	requests atomic.Uint64
	rows     atomic.Uint64
	latency  latencyRecorder
}

// latencyBucketBounds are the upper edges of the coarse request-latency
// histogram /healthz reports; the final bucket is unbounded.
var latencyBucketBounds = [...]time.Duration{
	time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond, time.Second,
}

// latencyRecorder accumulates per-request estimate latency with lock-free
// counters: count/sum/max plus a coarse histogram — the cheap first slice
// of request metrics, shared by every estimation endpoint.
type latencyRecorder struct {
	count    atomic.Uint64
	sumNanos atomic.Uint64
	maxNanos atomic.Uint64
	buckets  [len(latencyBucketBounds) + 1]atomic.Uint64
}

func (l *latencyRecorder) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := uint64(d.Nanoseconds())
	l.count.Add(1)
	l.sumNanos.Add(ns)
	for {
		cur := l.maxNanos.Load()
		if ns <= cur || l.maxNanos.CompareAndSwap(cur, ns) {
			break
		}
	}
	idx := len(latencyBucketBounds)
	for i, bound := range latencyBucketBounds {
		if d < bound {
			idx = i
			break
		}
	}
	l.buckets[idx].Add(1)
}

func (l *latencyRecorder) snapshot() client.LatencyStats {
	const msPerNano = 1e-6
	st := client.LatencyStats{
		Count:          l.count.Load(),
		SumMs:          float64(l.sumNanos.Load()) * msPerNano,
		MaxMs:          float64(l.maxNanos.Load()) * msPerNano,
		BucketBoundsMs: make([]float64, len(latencyBucketBounds)),
		Buckets:        make([]uint64, len(l.buckets)),
	}
	if st.Count > 0 {
		st.AvgMs = st.SumMs / float64(st.Count)
	}
	for i, bound := range latencyBucketBounds {
		st.BucketBoundsMs[i] = float64(bound) * msPerNano
	}
	for i := range l.buckets {
		st.Buckets[i] = l.buckets[i].Load()
	}
	return st
}

// New validates the configuration and builds the service around one shared
// Runner.
func New(cfg Config) (*Server, error) {
	if reflect.DeepEqual(cfg.Params, leqa.Params{}) {
		cfg.Params = leqa.DefaultParams()
	} else if len(cfg.Params.GateDelay) == 0 {
		// Params.Validate tolerates an empty delay map (every one-qubit op
		// would silently cost 0µs); a partially built config is a mistake,
		// not a request for defaults.
		return nil, fmt.Errorf("server: Config.Params has no gate delays; start from leqa.DefaultParams()")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxGates <= 0 {
		cfg.MaxGates = DefaultMaxGates
	}
	if cfg.MaxCells <= 0 {
		cfg.MaxCells = DefaultMaxCells
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	if cfg.MaxSpoolBytes <= 0 {
		cfg.MaxSpoolBytes = DefaultMaxSpoolBytes
	}
	if cfg.MaxQueue > 0 && cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = 5 * time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	if cfg.Version == "" {
		cfg.Version = "dev"
	}
	runner, err := leqa.NewRunner(cfg.Params, cfg.Options, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("server: base parameters: %w", err)
	}
	store, err := leqa.NewAnalysisStore(leqa.AnalysisStoreOptions{
		MemEntries:   cfg.StoreMemEntries,
		Dir:          cfg.StoreDir,
		MaxDiskBytes: cfg.StoreMaxDiskBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("server: analysis store: %w", err)
	}
	runner.SetAnalysisStore(store)
	var memo *leqa.ResultMemo
	if cfg.ResultMemoEntries >= 0 {
		memo = leqa.NewResultMemo(cfg.ResultMemoEntries)
		runner.SetResultMemo(memo)
	}
	baseCtx, abort := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		runner:    runner,
		store:     store,
		memo:      memo,
		sem:       make(chan struct{}, cfg.MaxConcurrent),
		start:     time.Now(),
		baseCtx:   baseCtx,
		abortBase: abort,
		endpoints: make(map[string]*endpointMetrics, len(metricsEndpoints)),
	}
	for _, name := range metricsEndpoints {
		s.endpoints[name] = &endpointMetrics{}
	}
	s.phases = make(map[string]*latencyRecorder, len(metricsPhases))
	for _, name := range metricsPhases {
		s.phases[name] = &latencyRecorder{}
	}

	// Sliding-window telemetry: one window/counter pair per estimation
	// endpoint, per-phase windows, the queue-wait sketch, throttle counters
	// and bounded per-client accounting.
	wopt := telemetry.WindowOptions{Length: cfg.Window, Clock: cfg.Clock}
	s.winLen = telemetry.NewWindow(wopt).Length()
	s.winLat = make(map[string]*telemetry.Window, len(metricsEndpoints))
	s.winReq = make(map[string]*telemetry.Counter, len(metricsEndpoints))
	s.winErr = make(map[string]*telemetry.Counter, len(metricsEndpoints))
	for _, name := range metricsEndpoints {
		s.winLat[name] = telemetry.NewWindow(wopt)
		s.winReq[name] = telemetry.NewCounter(wopt)
		s.winErr[name] = telemetry.NewCounter(wopt)
	}
	s.phaseWin = make(map[string]*telemetry.Window, len(metricsPhases))
	for _, name := range metricsPhases {
		s.phaseWin[name] = telemetry.NewWindow(wopt)
	}
	s.queueWait = telemetry.NewWindow(wopt)
	s.throttled = make(map[string]*atomic.Uint64, len(throttleReasons))
	for _, reason := range throttleReasons {
		s.throttled[reason] = &atomic.Uint64{}
	}
	s.clients = telemetry.NewClients(telemetry.ClientsOptions{Max: cfg.MaxClients, Window: wopt})
	if cfg.SLO != "" {
		clauses, err := telemetry.ParseSLO(cfg.SLO)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		for _, c := range clauses {
			if c.Scope != "" && s.winLat[c.Scope] == nil {
				return nil, fmt.Errorf("server: slo clause %q: unknown scope %q (want one of %v, or none)",
					c.String(), c.Scope, estimationEndpoints())
			}
		}
		s.evaluator = telemetry.NewEvaluator(clauses, s.sloSource, telemetry.EvaluatorOptions{
			Interval:     cfg.SLOInterval,
			DegradeAfter: cfg.DegradeAfter,
			Clock:        telemetry.Clock(cfg.Clock),
		})
	}

	// The phase observer is process-wide (the leqa pipeline has no handle to
	// carry per-server state through an arena checkout); a leqad process runs
	// one Server, and when several coexist — tests — the newest one's
	// recorders win. The tee feeds every phase report to both the cumulative
	// histograms and the sliding windows.
	leqa.SetPhaseObserver(leqa.TeePhaseObservers(
		func(phase string, d time.Duration) {
			if l := s.phases[phase]; l != nil {
				l.observe(d)
			}
		},
		func(phase string, d time.Duration) {
			if wnd := s.phaseWin[phase]; wnd != nil {
				wnd.Observe(d)
			}
		},
	))
	s.logger = cfg.Logger
	if s.logger == nil {
		if cfg.Log != nil {
			s.logger = slog.New(slog.NewTextHandler(cfg.Log.Writer(), nil))
		} else {
			s.logger = slog.New(slog.DiscardHandler)
		}
	}
	s.ring = trace.NewRing(cfg.TraceRing)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/estimate", s.withSlot("estimate", s.handleEstimate))
	mux.HandleFunc("POST /v1/sweep", s.withSlot("sweep", s.handleSweep))
	mux.HandleFunc("POST /v1/grid", s.withSlot("grid", s.handleGrid))
	mux.HandleFunc("PUT /v1/circuits", s.withSlot("circuits", s.handleCircuitPut))
	mux.HandleFunc("GET /v1/circuits/{digest}", s.counted("circuits", s.handleCircuitGet))
	mux.HandleFunc("HEAD /v1/circuits/{digest}", s.counted("circuits", s.handleCircuitGet))
	mux.HandleFunc("GET /v1/benchmarks", s.counted("benchmarks", s.handleBenchmarks))
	mux.HandleFunc("GET /healthz", s.counted("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	mux.HandleFunc("GET /debug/clients", s.handleDebugClients)
	if cfg.EnableDebug {
		registerPprof(mux)
	}
	s.mux = mux
	s.handler = s.observe(mux)
	return s, nil
}

// counted tallies an unthrottled endpoint's requests for /metrics.
func (s *Server) counted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	em := s.endpoints[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		em.requests.Add(1)
		h(w, r)
	}
}

// ServeHTTP dispatches to the service's routes through the observability
// middleware (request trace, access log, panic recovery, debug ring).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.handler.ServeHTTP(w, r)
}

// Abort cancels every in-flight batch. cmd/leqad calls it when graceful
// drain exceeds its deadline, so hung streams cannot block shutdown.
func (s *Server) Abort() { s.abortBase() }

// Workers reports the shared pool size.
func (s *Server) Workers() int { return s.runner.Workers() }

// requestContext derives the batch context: cancelled when the client goes
// away (request context) or when the server aborts.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// statusCapture remembers the first status code a handler writes so
// withSlot can decide whether the request did estimation work. Flush is
// forwarded so the streaming row encoders still see an http.Flusher.
type statusCapture struct {
	http.ResponseWriter
	status int
}

func (sc *statusCapture) WriteHeader(code int) {
	if sc.status == 0 {
		sc.status = code
	}
	sc.ResponseWriter.WriteHeader(code)
}

func (sc *statusCapture) Write(b []byte) (int, error) {
	if sc.status == 0 {
		sc.status = http.StatusOK
	}
	return sc.ResponseWriter.Write(b)
}

func (sc *statusCapture) Flush() {
	if f, ok := sc.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withSlot gates a handler behind the concurrency semaphore: a full server
// answers 429 (with a Retry-After priced from the windowed queue-wait
// estimate) instead of queueing unbounded work — admit() optionally holds
// up to MaxQueue excess requests in a bounded, timed wait first. Admitted
// requests that start a successful reply are timed into the latency
// recorder — from slot acquisition to the last byte written, so streamed
// batches count their full duration. Requests rejected before estimation
// (malformed bodies, bad parameters — any 4xx/5xx) are not recorded, so
// probe or fuzz traffic cannot drag the metric toward zero.
func (s *Server) withSlot(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	em := s.endpoints[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		em.requests.Add(1)
		release, ok := s.admit(w, r)
		if !ok {
			return
		}
		defer release()
		observeQueue(r)
		sc := &statusCapture{ResponseWriter: w}
		t0 := time.Now()
		// Deferred so aborted NDJSON streams — enc.fail panics with
		// http.ErrAbortHandler to cut the connection — are still
		// timed like their SSE equivalents.
		defer func() {
			if sc.status >= http.StatusOK && sc.status < http.StatusBadRequest {
				d := time.Since(t0)
				s.latency.observe(d)
				em.latency.observe(d)
			}
		}()
		h(sc, r)
	}
}

// logf writes a request-level diagnostic when logging is configured.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// handleHealthz reports build info, the shared zone-model memo counters,
// the service's request totals, the saturation block (admission gauges,
// windowed per-endpoint percentiles, throttle counts) and — when an SLO is
// configured — the per-clause compliance block. A server in sustained SLO
// breach reports "degraded" but stays 200: the process is alive and
// serving; objective state is the payload's job, not the status code's.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := leqa.ZoneModelCacheStats()
	as := s.store.Stats()
	var ms leqa.ResultMemoStats
	if s.memo != nil {
		ms = s.memo.Stats()
	}
	status := "ok"
	var slo *client.SLOStatus
	if s.evaluator != nil {
		s.evaluator.MaybeTick()
		slo = s.sloStatus()
		if slo.Degraded {
			status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, client.Health{
		Status:          status,
		Version:         s.cfg.Version,
		GoVersion:       runtime.Version(),
		UptimeSec:       time.Since(s.start).Seconds(),
		Workers:         s.runner.Workers(),
		Requests:        s.requests.Load(),
		RowsStreamed:    s.rowsStreamed.Load(),
		BatchesCanceled: s.batchesCanceled.Load(),
		EstimateLatency: s.latency.snapshot(),
		ZoneModelCache: client.CacheStats{
			Hits:      st.Hits,
			Misses:    st.Misses,
			Evictions: st.Evictions,
			Entries:   st.Entries,
			Capacity:  st.Capacity,
		},
		AnalysisStore: client.StoreStats{
			Hits:          as.Hits,
			Misses:        as.Misses,
			DiskHits:      as.DiskHits,
			Puts:          as.Puts,
			Evictions:     as.Evictions,
			DiskEvictions: as.DiskEvictions,
			Entries:       as.Entries,
			Capacity:      as.Capacity,
			DiskEntries:   as.DiskEntries,
			DiskBytes:     as.DiskBytes,
		},
		ResultMemo: client.MemoStats{
			Hits:      ms.Hits,
			Misses:    ms.Misses,
			Evictions: ms.Evictions,
			Entries:   ms.Entries,
			Capacity:  ms.Capacity,
		},
		Saturation: s.saturationStats(),
		SLO:        slo,
	})
}

// writeJSON renders v as the whole reply.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeJSONError renders the service's error envelope.
func writeJSONError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, client.APIError{Message: msg})
}
