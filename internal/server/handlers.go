package server

import (
	"context"
	"errors"
	"net/http"

	"repro/internal/benchgen"
	"repro/internal/pool"
	"repro/leqa"
	"repro/leqa/client"
)

// handleEstimate runs one circuit — JSON spec body or raw .qc upload — and
// replies with its flat result record.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req client.EstimateRequest
	var err error
	if isJSONRequest(r) {
		err = s.decodeJSON(w, r, &req)
	} else {
		req, err = s.estimateRequestFromQC(w, r)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	p, err := s.paramsFromSpec(req.Params)
	if err != nil {
		writeError(w, err)
		return
	}
	runner, err := s.runnerFor(req.Options)
	if err != nil {
		writeError(w, err)
		return
	}
	c, err := s.resolveCircuit(req.CircuitSpec, wantDecompose(req.Options))
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	// One 1×1 grid cell: the same engine, memo and record schema as the
	// batch endpoints.
	cells, err := runner.SweepGrid(ctx, []*leqa.Circuit{c}, []leqa.Params{p})
	if len(cells) == 0 {
		writeError(w, err)
		return
	}
	if cells[0].Err != nil {
		writeError(w, cells[0].Err)
		return
	}
	writeJSON(w, http.StatusOK, cells[0].Record())
}

// handleSweep streams one row per circuit under a single parameter set.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req client.SweepRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	p, err := s.paramsFromSpec(req.Params)
	if err != nil {
		writeError(w, err)
		return
	}
	s.streamBatch(w, r, req.Circuits, []leqa.Params{p}, req.Options)
}

// handleGrid streams the circuits × paramSets cross product.
func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	var req client.GridRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	sets, err := s.paramSetsFromSpecs(req.ParamSets)
	if err != nil {
		writeError(w, err)
		return
	}
	s.streamBatch(w, r, req.Circuits, sets, req.Options)
}

// streamBatch is the shared sweep/grid path: resolve the circuit specs,
// stream engine cells in input order as they complete, and interleave error
// rows for specs that never became circuits — a bad row never aborts the
// batch.
func (s *Server) streamBatch(w http.ResponseWriter, r *http.Request, specs []client.CircuitSpec, paramSets []leqa.Params, opts *client.OptionsSpec) {
	if len(specs) == 0 {
		writeError(w, badRequest("request needs at least one circuit"))
		return
	}
	if cells := len(specs) * len(paramSets); cells > s.cfg.MaxCells {
		writeError(w, badRequest("batch of %d cells exceeds the server cap of %d", cells, s.cfg.MaxCells))
		return
	}
	runner, err := s.runnerFor(opts)
	if err != nil {
		writeError(w, err)
		return
	}
	// Parameter sets must be valid before the 200 streaming header goes
	// out; the engine would reject them only after headers are sent.
	for j := range paramSets {
		if err := paramSets[j].Validate(); err != nil {
			writeError(w, badRequest("parameter set %d: %v", j, err))
			return
		}
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()

	// Resolve every spec across the engine's pool — generation and FT
	// lowering are the expensive half of a generated batch, so they should
	// not serialize on the handler goroutine ahead of the first row — with
	// the request context observed per spec.
	decompose := wantDecompose(opts)
	resolved := make([]*leqa.Circuit, len(specs))
	resolveErrs := make([]error, len(specs))
	names := make([]string, len(specs))
	pool.ForEach(len(specs), s.runner.Workers(), false, func(i int) error {
		if err := ctx.Err(); err != nil {
			resolveErrs[i] = err
			names[i] = specLabel(specs[i], i)
			return nil
		}
		c, cerr := s.resolveCircuit(specs[i], decompose)
		if cerr != nil {
			resolveErrs[i] = cerr
			names[i] = specLabel(specs[i], i)
			return nil
		}
		resolved[i], names[i] = c, c.Name
		return nil
	})
	good := make([]*leqa.Circuit, 0, len(specs))
	orig := make([]int, 0, len(specs))
	for i, c := range resolved {
		if c != nil {
			good = append(good, c)
			orig = append(orig, i)
		}
	}
	enc := newRowEncoder(w, r)
	st := &batchStream{s: s, enc: enc, paramSets: paramSets, resolveErrs: resolveErrs, names: names, orig: orig}
	err = runner.SweepGridStream(ctx, good, paramSets, st.engineCell)
	if err == nil {
		err = st.finish()
	}
	if err == nil {
		enc.done(st.rows)
		return
	}
	// Any early end — request-context cancellation, server abort, or the
	// client hanging up mid-stream (a write error) — counts as a canceled
	// batch: the engine stopped feeding unstarted work either way.
	s.batchesCanceled.Add(1)
	if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		s.logf("batch canceled after %d of %d rows: %v", st.rows, len(specs)*len(paramSets), err)
	} else {
		s.logf("batch ended early after %d rows: %v", st.rows, err)
	}
	enc.fail(err)
}

// batchStream merges the engine's ordered cell stream (good circuits only)
// with error rows for specs that failed resolution, preserving global
// circuit-major input order: the engine delivers good circuits in order, so
// whenever a good circuit's first cell arrives, every failed spec before it
// owes its rows first.
type batchStream struct {
	s           *Server
	enc         rowEncoder
	paramSets   []leqa.Params
	resolveErrs []error // per original spec; nil for resolved circuits
	names       []string
	orig        []int // engine circuit index → original spec index
	next        int   // first original index whose rows are not yet emitted
	rows        int
}

// engineCell receives one computed cell and re-labels it with the original
// spec index, first flushing error rows for failed specs that precede it.
func (b *batchStream) engineCell(cell leqa.GridCell) error {
	oi := b.orig[cell.CircuitIndex]
	if cell.ParamsIndex == 0 {
		if err := b.flushFailedBefore(oi); err != nil {
			return err
		}
		b.next = oi + 1
	}
	cell.CircuitIndex = oi
	return b.emit(cell)
}

// finish emits rows for failed specs after the last resolved circuit.
func (b *batchStream) finish() error {
	return b.flushFailedBefore(len(b.resolveErrs))
}

// flushFailedBefore emits the error rows of every still-pending failed spec
// with original index below oi.
func (b *batchStream) flushFailedBefore(oi int) error {
	for ; b.next < oi; b.next++ {
		if b.resolveErrs[b.next] == nil {
			continue // a resolved circuit: its cells come from the engine
		}
		for j := range b.paramSets {
			cell := leqa.GridCell{
				CircuitIndex: b.next,
				ParamsIndex:  j,
				Name:         b.names[b.next],
				Params:       b.paramSets[j],
				Err:          b.resolveErrs[b.next],
			}
			if err := b.emit(cell); err != nil {
				return err
			}
		}
	}
	return nil
}

// emit writes and flushes one row, then fires the test hook.
func (b *batchStream) emit(cell leqa.GridCell) error {
	if err := b.enc.row(cell.Record()); err != nil {
		return err
	}
	b.rows++
	b.s.rowsStreamed.Add(1)
	if b.s.cfg.FlushHook != nil {
		b.s.cfg.FlushHook(b.rows)
	}
	return nil
}

// handleBenchmarks serves the generator catalog: the paper's Table 3
// circuits with their reference sizes, plus the recognized spec families.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	names := leqa.Benchmarks()
	infos := make([]client.BenchmarkInfo, len(names))
	for i, n := range names {
		st := benchgen.Paper[n]
		infos[i] = client.BenchmarkInfo{Name: n, Qubits: st.Qubits, Operations: st.Operations}
	}
	writeJSON(w, http.StatusOK, client.BenchmarksResponse{
		Benchmarks: infos,
		Families:   append([]string(nil), benchgen.Families...),
	})
}
