package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/benchgen"
	"repro/internal/ingest"
	"repro/internal/pool"
	"repro/leqa"
	"repro/leqa/client"
	"repro/leqa/trace"
)

// handleEstimate runs one circuit — JSON spec body or raw .qc upload — and
// replies with its flat result record. Raw uploads take the streaming
// ingestion path (handleEstimateQC); JSON specs resolve in memory.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if !isJSONRequest(r) {
		s.handleEstimateQC(w, r)
		return
	}
	var req client.EstimateRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	p, err := s.paramsFromSpec(req.Params)
	if err != nil {
		s.writeError(w, err)
		return
	}
	runner, err := s.runnerFor(req.Options)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	var cells []leqa.GridCell
	if req.Ref != "" {
		// By-reference: estimate straight from the stored analysis — no
		// netlist bytes, no parsing, no graph build.
		src, serr := s.resolveSource(ctx, req.CircuitSpec, wantDecompose(req.Options))
		if serr != nil {
			s.writeError(w, serr)
			return
		}
		cells, err = runner.SweepGridSources(ctx, []leqa.Source{src}, []leqa.Params{p})
	} else {
		c, cerr := s.resolveCircuit(ctx, req.CircuitSpec, wantDecompose(req.Options))
		if cerr != nil {
			s.writeError(w, cerr)
			return
		}
		// One 1×1 grid cell: the same engine, memo and record schema as the
		// batch endpoints.
		cells, err = runner.SweepGrid(ctx, []*leqa.Circuit{c}, []leqa.Params{p})
	}
	if len(cells) == 0 {
		s.writeError(w, err)
		return
	}
	if cells[0].Err != nil {
		s.writeError(w, cells[0].Err)
		return
	}
	s.endpoints["estimate"].rows.Add(1)
	t := time.Now()
	writeJSON(w, http.StatusOK, cells[0].Record())
	trace.FromContext(ctx).Observe(trace.SpanEmit, "", t, time.Since(t))
}

// handleEstimateQC estimates a raw netlist upload through the streaming
// ingestion path: the body is sniffed by magic bytes (.qc text, binary
// .qcb, either gzipped), tokenized gate by gate and spooled to disk — not
// RAM — for the analyzer's second pass, so a chunked upload far past
// MaxBodyBytes estimates in O(analysis) memory. The 413 limit for raw
// uploads is the disk-spool cap (MaxSpoolBytes); a gzip body inflating
// past it is a 422; MaxBodyBytes keeps bounding the JSON endpoints and
// the materialized decompose fallback.
func (s *Server) handleEstimateQC(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ps, err := paramSpecFromQuery(q)
	if err != nil {
		s.writeError(w, err)
		return
	}
	decompose, err := decomposeFromQuery(q)
	if err != nil {
		s.writeError(w, err)
		return
	}
	p, err := s.paramsFromSpec(ps)
	if err != nil {
		s.writeError(w, err)
		return
	}
	name := q.Get("name")
	if name == "" {
		name = "uploaded"
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	sc, err := ingest.NewAutoStream(r.Body, name, ingest.Options{
		SpoolDir:      s.cfg.SpoolDir,
		MaxSpoolBytes: s.cfg.MaxSpoolBytes,
	})
	if err != nil {
		s.writeError(w, classifyStreamErr(err))
		return
	}
	defer sc.Close()
	capped := &gateCapStream{src: sc, max: s.cfg.MaxGates}
	res, err := s.runner.EstimateStreamWith(ctx, capped, p)
	if err != nil {
		var nft *leqa.NonFTError
		if errors.As(err, &nft) && decompose {
			res, err = s.tryDecomposeFallback(ctx, sc, name, p)
		}
		if err != nil {
			s.writeError(w, classifyStreamErr(err))
			return
		}
	}
	if sc.BytesRead() == 0 {
		s.writeError(w, badRequest("empty .qc body"))
		return
	}
	if sp := sc.SpooledBytes(); sp > 0 {
		s.spooledUploads.Add(1)
		s.spooledBytes.Add(uint64(sp))
	}
	s.endpoints["estimate"].rows.Add(1)
	cell := leqa.GridCell{Name: name, Params: p, Result: res}
	t := time.Now()
	writeJSON(w, http.StatusOK, cell.Record())
	trace.FromContext(ctx).Observe(trace.SpanEmit, "", t, time.Since(t))
}

// tryDecomposeFallback handles a stream that turned out non-FT: netlists
// up to MaxBodyBytes — the cap that bounded materialized uploads before
// streaming existed — take the materialized decompose path; larger ones
// are refused. The scan may have stopped at the first non-FT gate with
// most of the body unread, so the true size is only known after finishing
// the spool (disk, still bounded by MaxSpoolBytes): materialization is
// gated on that total, never on the bytes consumed so far.
func (s *Server) tryDecomposeFallback(ctx context.Context, sc ingest.Stream, name string, p leqa.Params) (*leqa.EstimateResult, error) {
	if err := sc.Rewind(); err != nil {
		return nil, err
	}
	if sc.BytesRead() > s.cfg.MaxBodyBytes {
		return nil, &statusError{
			code: http.StatusUnprocessableEntity,
			msg: fmt.Sprintf("circuit %q has non-FT gates and its %d-byte netlist exceeds the %d-byte in-memory decomposition cap; upload an FT netlist",
				name, sc.BytesRead(), s.cfg.MaxBodyBytes),
			reason: throttleBodyCap,
		}
	}
	c, err := sc.Materialize()
	if err != nil {
		return nil, err
	}
	if c, err = leqa.Decompose(c); err != nil {
		return nil, err
	}
	if c.NumGates() > s.cfg.MaxGates {
		return nil, capExceeded("circuit %q has %d operations, over the server cap of %d",
			c.Name, c.NumGates(), s.cfg.MaxGates)
	}
	cells, err := s.runner.SweepGrid(ctx, []*leqa.Circuit{c}, []leqa.Params{p})
	if len(cells) == 0 {
		return nil, err
	}
	return cells[0].Result, cells[0].Err
}

// gateCapStream stops a flowing stream once it exceeds the per-circuit
// operation cap, before the analysis layer buys storage for the excess.
type gateCapStream struct {
	src leqa.GateStream
	max int
	n   int
	err error
}

func (g *gateCapStream) Scan() bool {
	if g.err != nil {
		return false
	}
	if !g.src.Scan() {
		return false
	}
	if g.n++; g.n > g.max {
		g.err = capExceeded("circuit %q exceeds the server cap of %d operations", g.src.Name(), g.max)
		return false
	}
	return true
}

func (g *gateCapStream) Gate() leqa.Gate { return g.src.Gate() }

func (g *gateCapStream) Err() error {
	if g.err != nil {
		return g.err
	}
	return g.src.Err()
}

func (g *gateCapStream) Rewind() error {
	if g.err != nil {
		return g.err
	}
	g.n = 0
	return g.src.Rewind()
}

func (g *gateCapStream) NumQubits() int { return g.src.NumQubits() }
func (g *gateCapStream) Name() string   { return g.src.Name() }

// PrevalidatedGates forwards the wrapped stream's validation guarantee
// (leqa.PrevalidatedStream): the cap counts gates, it doesn't alter them.
func (g *gateCapStream) PrevalidatedGates() bool {
	p, ok := g.src.(leqa.PrevalidatedStream)
	return ok && p.PrevalidatedGates()
}

// handleSweep streams one row per circuit under a single parameter set.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req client.SweepRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	p, err := s.paramsFromSpec(req.Params)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.streamBatch(w, r, "sweep", req.Circuits, []leqa.Params{p}, req.Options)
}

// handleGrid streams the circuits × paramSets cross product.
func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	var req client.GridRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	sets, err := s.paramSetsFromSpecs(req.ParamSets)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.streamBatch(w, r, "grid", req.Circuits, sets, req.Options)
}

// streamBatch is the shared sweep/grid path: resolve the circuit specs,
// stream engine cells in input order as they complete, and interleave error
// rows for specs that never became circuits — a bad row never aborts the
// batch.
func (s *Server) streamBatch(w http.ResponseWriter, r *http.Request, endpoint string, specs []client.CircuitSpec, paramSets []leqa.Params, opts *client.OptionsSpec) {
	if len(specs) == 0 {
		s.writeError(w, badRequest("request needs at least one circuit"))
		return
	}
	if cells := len(specs) * len(paramSets); cells > s.cfg.MaxCells {
		s.writeError(w, &statusError{
			code:   http.StatusBadRequest,
			msg:    fmt.Sprintf("batch of %d cells exceeds the server cap of %d", cells, s.cfg.MaxCells),
			reason: throttleGateCap,
		})
		return
	}
	runner, err := s.runnerFor(opts)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// Parameter sets must be valid before the 200 streaming header goes
	// out; the engine would reject them only after headers are sent.
	for j := range paramSets {
		if err := paramSets[j].Validate(); err != nil {
			s.writeError(w, badRequest("parameter set %d: %v", j, err))
			return
		}
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()

	// Resolve every spec across the engine's pool — generation and FT
	// lowering are the expensive half of a generated batch, so they should
	// not serialize on the handler goroutine ahead of the first row — with
	// the request context observed per spec. Batches holding by-reference
	// specs resolve to lazy sources and run the source engine (store-backed
	// analyses feed cells directly); inline-only batches keep the
	// materialized engine.
	decompose := wantDecompose(opts)
	hasRef := false
	for i := range specs {
		if specs[i].Ref != "" {
			hasRef = true
			break
		}
	}
	resolved := make([]*leqa.Circuit, len(specs))
	sources := make([]leqa.Source, len(specs))
	ok := make([]bool, len(specs))
	resolveErrs := make([]error, len(specs))
	names := make([]string, len(specs))
	pool.ForEach(len(specs), s.runner.Workers(), false, func(i int) error {
		if err := ctx.Err(); err != nil {
			resolveErrs[i] = err
			names[i] = specLabel(specs[i], i)
			return nil
		}
		if hasRef {
			src, serr := s.resolveSource(ctx, specs[i], decompose)
			if serr != nil {
				resolveErrs[i] = serr
				names[i] = specLabel(specs[i], i)
				return nil
			}
			sources[i], names[i], ok[i] = src, src.Name, true
			return nil
		}
		c, cerr := s.resolveCircuit(ctx, specs[i], decompose)
		if cerr != nil {
			resolveErrs[i] = cerr
			names[i] = specLabel(specs[i], i)
			return nil
		}
		resolved[i], names[i], ok[i] = c, c.Name, true
		return nil
	})
	goodCircuits := make([]*leqa.Circuit, 0, len(specs))
	goodSources := make([]leqa.Source, 0, len(specs))
	orig := make([]int, 0, len(specs))
	for i := range specs {
		if !ok[i] {
			continue
		}
		if hasRef {
			goodSources = append(goodSources, sources[i])
		} else {
			goodCircuits = append(goodCircuits, resolved[i])
		}
		orig = append(orig, i)
	}
	enc := newRowEncoder(w, r)
	st := &batchStream{s: s, em: s.endpoints[endpoint], enc: enc, paramSets: paramSets, resolveErrs: resolveErrs, names: names, orig: orig, tr: trace.FromContext(ctx)}
	if hasRef {
		err = runner.SweepGridSourcesStream(ctx, goodSources, paramSets, st.engineCell)
	} else {
		err = runner.SweepGridStream(ctx, goodCircuits, paramSets, st.engineCell)
	}
	if err == nil {
		err = st.finish()
	}
	if err == nil {
		enc.done(st.rows)
		return
	}
	// Any early end — request-context cancellation, server abort, or the
	// client hanging up mid-stream (a write error) — counts as a canceled
	// batch: the engine stopped feeding unstarted work either way.
	s.batchesCanceled.Add(1)
	if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		s.logf("batch canceled after %d of %d rows: %v", st.rows, len(specs)*len(paramSets), err)
	} else {
		s.logf("batch ended early after %d rows: %v", st.rows, err)
	}
	enc.fail(err)
}

// batchStream merges the engine's ordered cell stream (good circuits only)
// with error rows for specs that failed resolution, preserving global
// circuit-major input order: the engine delivers good circuits in order, so
// whenever a good circuit's first cell arrives, every failed spec before it
// owes its rows first.
type batchStream struct {
	s           *Server
	em          *endpointMetrics
	enc         rowEncoder
	paramSets   []leqa.Params
	resolveErrs []error // per original spec; nil for resolved circuits
	names       []string
	orig        []int // engine circuit index → original spec index
	next        int   // first original index whose rows are not yet emitted
	rows        int
	tr          *trace.Trace // request trace; nil-safe
}

// engineCell receives one computed cell and re-labels it with the original
// spec index, first flushing error rows for failed specs that precede it.
func (b *batchStream) engineCell(cell leqa.GridCell) error {
	oi := b.orig[cell.CircuitIndex]
	if cell.ParamsIndex == 0 {
		if err := b.flushFailedBefore(oi); err != nil {
			return err
		}
		b.next = oi + 1
	}
	cell.CircuitIndex = oi
	return b.emit(cell)
}

// finish emits rows for failed specs after the last resolved circuit.
func (b *batchStream) finish() error {
	return b.flushFailedBefore(len(b.resolveErrs))
}

// flushFailedBefore emits the error rows of every still-pending failed spec
// with original index below oi.
func (b *batchStream) flushFailedBefore(oi int) error {
	for ; b.next < oi; b.next++ {
		if b.resolveErrs[b.next] == nil {
			continue // a resolved circuit: its cells come from the engine
		}
		for j := range b.paramSets {
			cell := leqa.GridCell{
				CircuitIndex: b.next,
				ParamsIndex:  j,
				Name:         b.names[b.next],
				Params:       b.paramSets[j],
				Err:          b.resolveErrs[b.next],
			}
			if err := b.emit(cell); err != nil {
				return err
			}
		}
	}
	return nil
}

// emit writes and flushes one row, then fires the test hook. Error rows
// carry the request's trace ID so a failed cell points straight at its
// access-log line and /debug/requests record.
func (b *batchStream) emit(cell leqa.GridCell) error {
	rec := cell.Record()
	if rec.Error != "" {
		rec.TraceID = b.tr.ID()
	}
	t := time.Now()
	if err := b.enc.row(rec); err != nil {
		return err
	}
	b.tr.Observe(trace.SpanEmit, "", t, time.Since(t))
	b.rows++
	b.s.rowsStreamed.Add(1)
	b.em.rows.Add(1)
	if b.s.cfg.FlushHook != nil {
		b.s.cfg.FlushHook(b.rows)
	}
	return nil
}

// handleBenchmarks serves the generator catalog: the paper's Table 3
// circuits with their reference sizes, plus the recognized spec families.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	names := leqa.Benchmarks()
	infos := make([]client.BenchmarkInfo, len(names))
	for i, n := range names {
		st := benchgen.Paper[n]
		infos[i] = client.BenchmarkInfo{Name: n, Qubits: st.Qubits, Operations: st.Operations}
	}
	writeJSON(w, http.StatusOK, client.BenchmarksResponse{
		Benchmarks: infos,
		Families:   append([]string(nil), benchgen.Families...),
	})
}
