package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/telemetry"
	"repro/leqa/client"
)

// This file is the saturation-telemetry layer: bounded admission with a
// windowed queue-wait estimate feeding Retry-After, throttle accounting by
// reason, per-endpoint sliding-window latency/error series, bounded-
// cardinality per-client accounting, and the SLO evaluator that scores the
// configured objectives against the windows and flips /healthz to
// "degraded" on sustained breach.

// throttleReasons fixes the exposition order of leqad_throttled_total.
var throttleReasons = []string{
	throttleConcurrency, throttleQueueTimeout, throttleBodyCap, throttleGateCap,
}

const (
	// throttleConcurrency: 429, the semaphore (and any queue room) was full.
	throttleConcurrency = "concurrency"
	// throttleQueueTimeout: 429, admitted to the queue but no slot freed
	// within QueueTimeout.
	throttleQueueTimeout = "queue_timeout"
	// throttleBodyCap: 413, a request body (or upload spool) over its cap.
	throttleBodyCap = "body_cap"
	// throttleGateCap: a circuit or batch over the gate/cell caps.
	throttleGateCap = "gate_cap"
)

// throttle counts one rejected request by reason.
func (s *Server) throttle(reason string) {
	if c := s.throttled[reason]; c != nil {
		c.Add(1)
	}
}

// admit acquires an estimation slot, queueing up to MaxQueue waiters for at
// most QueueTimeout when the semaphore is full (MaxQueue 0 keeps the
// historical immediate-429 behavior). It reports the queue wait into the
// sliding window that prices Retry-After. The returned release must run
// when ok; on !ok the 429 (with Retry-After) is already written unless the
// client vanished first.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	release = func() {
		s.inflight.Add(-1)
		<-s.sem
	}
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		s.queueWait.Observe(0)
		return release, true
	default:
	}
	if s.cfg.MaxQueue > 0 {
		if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
			s.queued.Add(-1)
		} else {
			start := time.Now()
			t := time.NewTimer(s.cfg.QueueTimeout)
			defer t.Stop()
			defer s.queued.Add(-1)
			select {
			case s.sem <- struct{}{}:
				s.inflight.Add(1)
				s.queueWait.Observe(time.Since(start))
				return release, true
			case <-t.C:
				s.reject(w, throttleQueueTimeout)
				return nil, false
			case <-r.Context().Done():
				// The client gave up while queued; nothing to write.
				return nil, false
			}
		}
	}
	s.reject(w, throttleConcurrency)
	return nil, false
}

// reject writes the 429 with a live Retry-After estimate.
func (s *Server) reject(w http.ResponseWriter, reason string) {
	s.throttle(reason)
	w.Header().Set("Retry-After", s.retryAfter())
	writeJSONError(w, http.StatusTooManyRequests, "server at capacity; retry shortly")
}

// retryAfter prices the 429 backoff hint from the windowed queue-wait p50 —
// how long a recently admitted request actually waited for a slot — clamped
// to [1s, 60s] whole seconds. No queue-wait data (cold server, or every
// admission was immediate) falls back to 1.
func (s *Server) retryAfter() string {
	q, ok := s.queueWait.Snapshot().Quantile(0.5)
	if !ok || q <= 0 {
		return "1"
	}
	secs := int64(math.Ceil(q.Seconds()))
	if secs < 1 {
		secs = 1
	} else if secs > 60 {
		secs = 60
	}
	return fmt.Sprintf("%d", secs)
}

// endpointForPath maps a request path to its /metrics endpoint label.
func endpointForPath(path string) string {
	switch {
	case path == "/v1/estimate":
		return "estimate"
	case path == "/v1/sweep":
		return "sweep"
	case path == "/v1/grid":
		return "grid"
	case path == "/v1/circuits" || strings.HasPrefix(path, "/v1/circuits/"):
		return "circuits"
	case path == "/v1/benchmarks":
		return "benchmarks"
	case path == "/healthz":
		return "healthz"
	default:
		return ""
	}
}

// clientKey derives the bounded-cardinality accounting key of a request: a
// short digest of the Authorization credential when one is sent (stable per
// token, never the secret itself), else the peer host.
func clientKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		sum := sha256.Sum256([]byte(auth))
		return "tok:" + hex.EncodeToString(sum[:4])
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil || host == "" {
		return r.RemoteAddr
	}
	return host
}

// recordWindows feeds one finished request into the saturation telemetry:
// windowed per-endpoint completion/error counts, the latency sketch (only
// requests that began a successful reply, matching the cumulative
// recorder's policy), per-client accounting for the API surface, and an SLO
// evaluation opportunity.
func (s *Server) recordWindows(r *http.Request, status int, rows int, bytes int64, d time.Duration) {
	ep := endpointForPath(r.URL.Path)
	if ep == "" {
		return
	}
	if c := s.winReq[ep]; c != nil {
		c.Add(1)
	}
	if status >= http.StatusInternalServerError || status == http.StatusTooManyRequests {
		if c := s.winErr[ep]; c != nil {
			c.Add(1)
		}
	}
	if status >= http.StatusOK && status < http.StatusBadRequest {
		if wnd := s.winLat[ep]; wnd != nil {
			wnd.Observe(d)
		}
	}
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		s.clients.Record(clientKey(r), rows, bytes)
	}
	if s.evaluator != nil {
		s.evaluator.MaybeTick()
	}
}

// sloSource resolves an SLO clause scope to its windowed stats: a named
// endpoint's series, or the merged estimation traffic for the empty scope.
func (s *Server) sloSource(scope string) telemetry.ScopeStats {
	scopes := []string{scope}
	if scope == "" {
		scopes = estimationEndpoints()
	}
	var st telemetry.ScopeStats
	for _, ep := range scopes {
		if wnd := s.winLat[ep]; wnd != nil {
			st.Latency.Merge(wnd.Snapshot())
		}
		if c := s.winReq[ep]; c != nil {
			st.Requests += c.Total()
		}
		if c := s.winErr[ep]; c != nil {
			st.Errors += c.Total()
		}
	}
	return st
}

// RunSLO evaluates the configured SLO on its interval until done closes, so
// objectives keep being scored (and breaches keep aging out) while the
// server idles. No-op without an SLO. cmd/leqad runs it as a goroutine;
// request traffic and scrapes also self-pace evaluations, so tests need not
// run it at all.
func (s *Server) RunSLO(done <-chan struct{}) {
	if s.evaluator != nil {
		s.evaluator.Run(done)
	}
}

// windowQuantiles renders one latency window for /healthz.
func windowQuantiles(h telemetry.Hist) client.WindowQuantiles {
	const msPerSec = 1e3
	q := client.WindowQuantiles{Count: h.Count()}
	if p, ok := h.Quantile(0.50); ok {
		q.P50Ms = p.Seconds() * msPerSec
	}
	if p, ok := h.Quantile(0.90); ok {
		q.P90Ms = p.Seconds() * msPerSec
	}
	if p, ok := h.Quantile(0.99); ok {
		q.P99Ms = p.Seconds() * msPerSec
	}
	if p, ok := h.Quantile(0.999); ok {
		q.P999Ms = p.Seconds() * msPerSec
	}
	return q
}

// saturationStats assembles the /healthz saturation block.
func (s *Server) saturationStats() *client.SaturationStats {
	st := &client.SaturationStats{
		InFlight:      s.inflight.Load(),
		QueueDepth:    s.queued.Load(),
		MaxConcurrent: s.cfg.MaxConcurrent,
		MaxQueue:      s.cfg.MaxQueue,
		WindowSec:     s.winLen.Seconds(),
		QueueWait:     windowQuantiles(s.queueWait.Snapshot()),
		Throttled:     make(map[string]uint64, len(throttleReasons)),
		Endpoints:     make(map[string]client.WindowEndpointStats, len(estimationEndpoints())),
	}
	for _, reason := range throttleReasons {
		st.Throttled[reason] = s.throttled[reason].Load()
	}
	for _, ep := range estimationEndpoints() {
		st.Endpoints[ep] = client.WindowEndpointStats{
			Requests: s.winReq[ep].Total(),
			Errors:   s.winErr[ep].Total(),
			Latency:  windowQuantiles(s.winLat[ep].Snapshot()),
		}
	}
	return st
}

// sloStatus assembles the /healthz slo block; nil without an SLO.
func (s *Server) sloStatus() *client.SLOStatus {
	if s.evaluator == nil {
		return nil
	}
	st := s.evaluator.Status()
	out := &client.SLOStatus{
		Degraded:    st.Degraded,
		Ticks:       st.Ticks,
		IntervalSec: st.Interval.Seconds(),
		Clauses:     make([]client.SLOClauseStatus, len(st.Clauses)),
	}
	for i, c := range st.Clauses {
		out.Clauses[i] = client.SLOClauseStatus{
			Clause:          c.Clause,
			Current:         c.Current,
			Limit:           c.Limit,
			HasData:         c.HasData,
			Compliant:       c.Compliant,
			ComplianceRatio: c.ComplianceRatio,
			Breaches:        c.Breaches,
			Consecutive:     c.Consecutive,
		}
	}
	return out
}

// handleDebugClients serves the bounded per-client accounting table — who
// is sending the traffic right now — sorted by windowed request count.
func (s *Server) handleDebugClients(w http.ResponseWriter, r *http.Request) {
	snap := s.clients.Snapshot()
	type row struct {
		Client         string    `json:"client"`
		Requests       uint64    `json:"requests"`
		Rows           uint64    `json:"rows"`
		Bytes          uint64    `json:"bytes"`
		WindowRequests uint64    `json:"windowRequests"`
		WindowRows     uint64    `json:"windowRows"`
		WindowBytes    uint64    `json:"windowBytes"`
		LastSeen       time.Time `json:"lastSeen"`
	}
	rows := make([]row, len(snap))
	for i, c := range snap {
		rows[i] = row{
			Client:         c.Key,
			Requests:       c.Requests,
			Rows:           c.Rows,
			Bytes:          c.Bytes,
			WindowRequests: c.WindowRequests,
			WindowRows:     c.WindowRows,
			WindowBytes:    c.WindowBytes,
			LastSeen:       c.LastSeen,
		}
	}
	writeJSON(w, http.StatusOK, struct {
		WindowSec float64 `json:"windowSec"`
		Clients   []row   `json:"clients"`
	}{s.winLen.Seconds(), rows})
}
