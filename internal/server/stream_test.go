package server_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/server"
	"repro/leqa"
	"repro/leqa/client"
)

// chunked hides the reader's length so net/http sends the body with
// Transfer-Encoding: chunked — the upload shape the streaming path exists
// for.
type chunked struct{ io.Reader }

// bigFTCircuit builds an FT netlist whose .qc rendering comfortably
// exceeds n bytes.
func bigFTCircuit(t *testing.T, name string, minBytes int) (*leqa.Circuit, []byte) {
	t.Helper()
	c := circuit.New(name, 24)
	for len(c.Gates)*4 < minBytes { // gate lines render to ≥5 bytes each
		i := len(c.Gates)
		c.Append(circuit.NewCNOT(i%24, (i+7)%24))
		c.Append(circuit.NewOneQubit(circuit.H, i%24))
	}
	var buf bytes.Buffer
	if err := circuit.WriteQC(&buf, c); err != nil {
		t.Fatal(err)
	}
	if buf.Len() <= minBytes {
		t.Fatalf("test netlist only %d bytes, need > %d", buf.Len(), minBytes)
	}
	return c, buf.Bytes()
}

// TestEstimateChunkedUploadPastMaxBodyBytes is the acceptance check for the
// streaming upload path: a chunked raw .qc body much larger than
// MaxBodyBytes is accepted (spooled to disk, never buffered in RAM) and the
// estimate is bitwise identical to the in-process batch path.
func TestEstimateChunkedUploadPastMaxBodyBytes(t *testing.T) {
	const maxBody = 4 << 10
	_, c := newTestServer(t, server.Config{MaxBodyBytes: maxBody})
	circ, qc := bigFTCircuit(t, "bulk", 8*maxBody)

	want, err := leqa.Estimate(circ, leqa.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := c.EstimateQC(context.Background(), "bulk", chunked{bytes.NewReader(qc)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Circuit != "bulk" || rec.Operations != circ.NumGates() {
		t.Fatalf("record identity mismatch: %+v", rec)
	}
	if rec.EstimatedLatencyUs != want.EstimatedLatency || rec.LCNOTAvgUs != want.LCNOTAvg {
		t.Fatalf("streamed upload estimate %v, want bitwise %v", rec.EstimatedLatencyUs, want.EstimatedLatency)
	}
}

// TestEstimateUploadSpoolCap moves the 413 semantics to the disk-spool
// limit: a body over MaxSpoolBytes is rejected with 413 even though the
// old in-RAM cap no longer applies to raw uploads.
func TestEstimateUploadSpoolCap(t *testing.T) {
	_, c := newTestServer(t, server.Config{MaxBodyBytes: 1 << 20, MaxSpoolBytes: 2 << 10})
	_, qc := bigFTCircuit(t, "overflow", 16<<10)
	_, err := c.EstimateQC(context.Background(), "overflow", chunked{bytes.NewReader(qc)}, nil)
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("err = %v, want 413 from the spool cap", err)
	}
}

// TestEstimateUploadNonFTTooLargeToDecompose pins the fallback boundary:
// non-FT uploads up to MaxBodyBytes still decompose (TestEstimateRawQCUpload
// covers that), larger ones are refused with a diagnostic instead of
// ballooning memory.
func TestEstimateUploadNonFTTooLargeToDecompose(t *testing.T) {
	const maxBody = 1 << 10
	_, c := newTestServer(t, server.Config{MaxBodyBytes: maxBody})
	// A large netlist whose final gate is non-FT.
	circ, _ := bigFTCircuit(t, "tail-toffoli", 8*maxBody)
	circ.Append(circuit.NewToffoli(0, 1, 2))
	var buf bytes.Buffer
	if err := circuit.WriteQC(&buf, circ); err != nil {
		t.Fatal(err)
	}
	_, err := c.EstimateQC(context.Background(), "tail-toffoli", chunked{&buf}, nil)
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("err = %v, want 422", err)
	}
	if !strings.Contains(apiErr.Message, "decomposition cap") {
		t.Fatalf("message %q does not explain the decomposition cap", apiErr.Message)
	}
}

// TestEstimateUploadNonFTFirstGateTooLarge is the early-abort variant: the
// FT guard stops after the FIRST gate with almost the whole body unread,
// and the fallback gate must still see the netlist's true size — not the
// few KiB consumed so far — and refuse to materialize it.
func TestEstimateUploadNonFTFirstGateTooLarge(t *testing.T) {
	const maxBody = 1 << 10
	_, c := newTestServer(t, server.Config{MaxBodyBytes: maxBody})
	circ, _ := bigFTCircuit(t, "head-toffoli", 64*maxBody)
	head := circuit.New("head-toffoli", 24)
	head.Append(circuit.NewToffoli(0, 1, 2))
	head.Append(circ.Gates...)
	var buf bytes.Buffer
	if err := circuit.WriteQC(&buf, head); err != nil {
		t.Fatal(err)
	}
	_, err := c.EstimateQC(context.Background(), "head-toffoli", chunked{&buf}, nil)
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("err = %v, want 422", err)
	}
	if !strings.Contains(apiErr.Message, "decomposition cap") {
		t.Fatalf("message %q does not explain the decomposition cap", apiErr.Message)
	}
}

// TestEstimateUploadEmptyBody keeps the pre-streaming 400 for empty raw
// uploads.
func TestEstimateUploadEmptyBody(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	_, err := c.EstimateQC(context.Background(), "nothing", chunked{strings.NewReader("")}, nil)
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400", err)
	}
	if !strings.Contains(apiErr.Message, "empty .qc body") {
		t.Fatalf("message %q", apiErr.Message)
	}
}

// TestEstimateUploadGateCap enforces MaxGates on the flowing stream.
func TestEstimateUploadGateCap(t *testing.T) {
	_, c := newTestServer(t, server.Config{MaxGates: 100})
	_, qc := bigFTCircuit(t, "toomany", 8<<10)
	_, err := c.EstimateQC(context.Background(), "toomany", chunked{bytes.NewReader(qc)}, nil)
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("err = %v, want 422 from the gate cap", err)
	}
	if !strings.Contains(apiErr.Message, "server cap of 100 operations") {
		t.Fatalf("message %q does not name the gate cap", apiErr.Message)
	}
}

// TestEstimateUploadSyntaxErrorPosition checks streamed parse failures
// surface the shared line/column diagnostics.
func TestEstimateUploadSyntaxErrorPosition(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	qc := ".v a b\nBEGIN\nt2 a b\nbogus a\nEND\n"
	_, err := c.EstimateQC(context.Background(), "syntax", chunked{strings.NewReader(qc)}, nil)
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("err = %v, want 422", err)
	}
	if !strings.Contains(apiErr.Message, ".qc line 4") {
		t.Fatalf("message %q lacks line diagnostics", apiErr.Message)
	}
}

// TestMetricsEndpoint scrapes GET /metrics after driving each estimation
// endpoint and checks the per-endpoint request/row/latency series.
func TestMetricsEndpoint(t *testing.T) {
	ts, c := newTestServer(t, server.Config{})
	if _, err := c.Estimate(context.Background(), client.EstimateRequest{
		CircuitSpec: client.CircuitSpec{Generate: "ham7"},
	}); err != nil {
		t.Fatal(err)
	}
	rows := 0
	err := c.Sweep(context.Background(), client.SweepRequest{
		Circuits: []client.CircuitSpec{{Generate: "ham7"}, {Generate: "4bitadder"}},
	}, func(leqa.ResultRecord) error {
		rows++
		return nil
	})
	if err != nil || rows != 2 {
		t.Fatalf("sweep rows = %d, err = %v", rows, err)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`leqad_requests_total{endpoint="estimate"} 1`,
		`leqad_requests_total{endpoint="sweep"} 1`,
		`leqad_requests_total{endpoint="grid"} 0`,
		`leqad_rows_streamed_total{endpoint="sweep"} 2`,
		`leqad_rows_streamed_total{endpoint="estimate"} 1`,
		`leqad_request_duration_seconds_count{endpoint="estimate"} 1`,
		`leqad_request_duration_seconds_bucket{endpoint="sweep",le="+Inf"} 1`,
		"leqad_zone_model_cache_hits_total",
		"leqad_workers",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

// TestMetricsPhaseSeries drives one JSON estimate and one raw .qc upload,
// then checks /metrics splits the pipeline into per-phase histograms with
// every phase observed at least once: ingest (spec resolution), analyze
// (fused graph build) and estimate (Algorithm 1). The phase observer is
// process-global and the newest server wins it, so the test asserts
// minimums, not exact counts.
func TestMetricsPhaseSeries(t *testing.T) {
	ts, c := newTestServer(t, server.Config{})
	if _, err := c.Estimate(context.Background(), client.EstimateRequest{
		CircuitSpec: client.CircuitSpec{Generate: "ham7"},
	}); err != nil {
		t.Fatal(err)
	}
	qc := ".v a b c\nBEGIN\nt2 a b\nH c\ncnot b c\nEND\n"
	if _, err := c.EstimateQC(context.Background(), "phased", chunked{strings.NewReader(qc)}, nil); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, phase := range []string{"ingest", "analyze", "estimate"} {
		prefix := `leqad_phase_duration_seconds_count{phase="` + phase + `"} `
		i := strings.Index(body, prefix)
		if i < 0 {
			t.Fatalf("/metrics missing %q\n%s", prefix, body)
		}
		rest := body[i+len(prefix):]
		if j := strings.IndexByte(rest, '\n'); j >= 0 {
			rest = rest[:j]
		}
		if rest == "0" {
			t.Errorf("phase %q never observed\n%s", phase, body)
		}
		bucket := `leqad_phase_duration_seconds_bucket{phase="` + phase + `",le="+Inf"}`
		if !strings.Contains(body, bucket) {
			t.Errorf("/metrics missing %q", bucket)
		}
	}
}
