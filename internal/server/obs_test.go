package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/leqa"
	"repro/leqa/client"
	"repro/leqa/trace"
)

// syncBuffer lets concurrent slog handlers share one capture buffer.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logLines decodes every JSON access-log line captured so far.
func logLines(t *testing.T, b *syncBuffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// debugRequests fetches and decodes GET /debug/requests.
func debugRequests(t *testing.T, baseURL string) []trace.Snapshot {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/requests: %d", resp.StatusCode)
	}
	var out struct {
		Requests []trace.Snapshot `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Requests
}

func findSnapshot(snaps []trace.Snapshot, id string) *trace.Snapshot {
	for i := range snaps {
		if snaps[i].ID == id {
			return &snaps[i]
		}
	}
	return nil
}

// TestRequestTraceEndToEnd drives one estimate with a caller-chosen
// X-Request-Id and follows it through every observability surface: the
// echoed response header, the Server-Timing phase breakdown, the JSON
// access log, and the /debug/requests ring — the slow-request
// attribution path, end to end.
func TestRequestTraceEndToEnd(t *testing.T) {
	logBuf := &syncBuffer{}
	ts, _ := newTestServer(t, server.Config{
		Logger: slog.New(slog.NewJSONHandler(logBuf, nil)),
	})

	body := gridBody(t, client.EstimateRequest{
		CircuitSpec: client.CircuitSpec{Generate: "ham7"},
	})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/estimate", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "test-req-1")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: %d", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)

	// 1. The response echoes the caller's correlation ID.
	if got := resp.Header.Get("X-Request-Id"); got != "test-req-1" {
		t.Fatalf("X-Request-Id = %q, want test-req-1", got)
	}

	// 2. Server-Timing breaks the request down by pipeline phase, with the
	// analyze attributes (gate count, shard plan) as desc.
	// emit is absent here by construction: the header goes out before the
	// reply is encoded, so the emit span only appears in the ring snapshot
	// (and, for streamed batches, the Server-Timing trailer).
	st := resp.Header.Get("Server-Timing")
	for _, phase := range []string{"queue;dur=", "ingest;dur=", "analyze;dur=", "estimate;dur="} {
		if !strings.Contains(st, phase) {
			t.Errorf("Server-Timing %q missing %q", st, phase)
		}
	}
	if !strings.Contains(st, "gates=") {
		t.Errorf("Server-Timing %q missing analyze gates= detail", st)
	}

	// 3. The ring holds the full span record under the same ID.
	snap := findSnapshot(debugRequests(t, ts.URL), "test-req-1")
	if snap == nil {
		t.Fatal("request test-req-1 not in /debug/requests")
	}
	if snap.Method != "POST" || snap.Path != "/v1/estimate" || snap.Status != http.StatusOK {
		t.Errorf("snapshot envelope = %s %s %d", snap.Method, snap.Path, snap.Status)
	}
	phases := map[string]bool{}
	for _, sp := range snap.Spans {
		phases[sp.Name] = true
	}
	for _, want := range []string{trace.SpanQueue, trace.SpanIngest, trace.SpanAnalyze, trace.SpanEstimate, trace.SpanEmit} {
		if !phases[want] {
			t.Errorf("snapshot missing %s span (have %v)", want, snap.Spans)
		}
	}
	if snap.DurMs <= 0 {
		t.Errorf("snapshot DurMs = %v", snap.DurMs)
	}

	// 4. The access log carries the same ID with status and duration.
	var reqLine map[string]any
	for _, m := range logLines(t, logBuf) {
		if m["msg"] == "request" && m["id"] == "test-req-1" {
			reqLine = m
		}
	}
	if reqLine == nil {
		t.Fatalf("no access-log line for test-req-1 in:\n%s", logBuf.String())
	}
	if reqLine["method"] != "POST" || reqLine["path"] != "/v1/estimate" || reqLine["status"] != float64(200) {
		t.Errorf("access log line = %v", reqLine)
	}
	if _, ok := reqLine["dur_ms"].(float64); !ok {
		t.Errorf("access log line missing dur_ms: %v", reqLine)
	}
}

// TestTraceStoreOutcome pins the analyze span's store attribution for
// by-reference estimates: the first request misses (full analysis), the
// second is a memory-tier hit — and each request's /debug/requests record
// says which.
func TestTraceStoreOutcome(t *testing.T) {
	ts, c := newTestServer(t, server.Config{})
	qc := ".v a b c d\n.i a b c\nBEGIN\nH a\nCNOT a b\nT c\nCNOT b d\nT* d\nCNOT a d\nEND\n"
	info, err := c.PutCircuit(context.Background(), "tiny", strings.NewReader(qc))
	if err != nil {
		t.Fatal(err)
	}

	estimateByRef := func(id string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/estimate",
			gridBody(t, client.EstimateRequest{CircuitSpec: client.CircuitSpec{Ref: info.Digest}}))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-Id", id)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("by-ref estimate: %d", resp.StatusCode)
		}
	}
	// PutCircuit already analyzed the upload, so the first by-ref request
	// is served from the memory tier.
	estimateByRef("ref-hit-1")

	snaps := debugRequests(t, ts.URL)
	snap := findSnapshot(snaps, "ref-hit-1")
	if snap == nil {
		t.Fatal("ref-hit-1 not in /debug/requests")
	}
	detail := ""
	for _, sp := range snap.Spans {
		if sp.Name == trace.SpanAnalyze {
			detail = sp.Detail
		}
	}
	if !strings.Contains(detail, "store=hit") {
		t.Fatalf("by-ref analyze span detail = %q, want store=hit", detail)
	}
}

// TestTraceparentCorrelation accepts a W3C traceparent when no
// X-Request-Id is present.
func TestTraceparentCorrelation(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/benchmarks", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("X-Request-Id = %q, want the traceparent trace-id", got)
	}
}

// TestGeneratedRequestID mints an ID when the caller sends none, and every
// response carries one.
func TestGeneratedRequestID(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); len(got) != 16 {
		t.Fatalf("generated X-Request-Id = %q, want 16 hex chars", got)
	}
}

// TestSweepServerTimingTrailer verifies streamed batches deliver their
// phase breakdown as an HTTP trailer — the header is long gone when the
// last row's timing is known.
func TestSweepServerTimingTrailer(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", gridBody(t, client.SweepRequest{
		Circuits: []client.CircuitSpec{{Generate: "ham7"}, {Generate: "ham7"}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "sweep-trailer-1")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body) // trailers land after the last byte
	if err != nil {
		t.Fatal(err)
	}
	if got := len(bytes.Split(bytes.TrimSpace(raw), []byte("\n"))); got != 2 {
		t.Fatalf("rows = %d, want 2", got)
	}
	st := resp.Trailer.Get("Server-Timing")
	if st == "" {
		t.Fatalf("no Server-Timing trailer; trailers = %v", resp.Trailer)
	}
	for _, phase := range []string{"estimate;dur=", "emit;dur="} {
		if !strings.Contains(st, phase) {
			t.Errorf("Server-Timing trailer %q missing %q", st, phase)
		}
	}

	// The ring's sweep snapshot counts its streamed rows.
	snap := findSnapshot(debugRequests(t, ts.URL), "sweep-trailer-1")
	if snap == nil {
		t.Fatal("sweep-trailer-1 not in /debug/requests")
	}
	if snap.Rows != 2 {
		t.Errorf("snapshot Rows = %d, want 2", snap.Rows)
	}
}

// TestErrorRowCarriesTraceID pins a failed cell's row to the request ID so
// a batch error in a log pipeline is attributable without the transport
// envelope.
func TestErrorRowCarriesTraceID(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", gridBody(t, client.SweepRequest{
		Circuits: []client.CircuitSpec{{Generate: "no-such-generator"}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "err-row-1")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var rec leqa.ResultRecord
	if err := json.Unmarshal(bytes.TrimSpace(raw), &rec); err != nil {
		t.Fatalf("bad row %q: %v", raw, err)
	}
	if rec.Error == "" {
		t.Fatalf("expected an error row, got %+v", rec)
	}
	if rec.TraceID != "err-row-1" {
		t.Fatalf("error row traceId = %q, want err-row-1", rec.TraceID)
	}
}

// TestSuccessRowOmitsTraceID keeps successful rows byte-compatible with the
// baseline schema: traceId appears on error rows only.
func TestSuccessRowOmitsTraceID(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	resp, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json", gridBody(t, client.SweepRequest{
		Circuits: []client.CircuitSpec{{Generate: "ham7"}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("traceId")) {
		t.Fatalf("success row leaked traceId: %s", raw)
	}
}

// TestSlowRequestLog asserts the slow-request warn line carries the span
// breakdown that makes the request attributable.
func TestSlowRequestLog(t *testing.T) {
	logBuf := &syncBuffer{}
	ts, c := newTestServer(t, server.Config{
		Logger:      slog.New(slog.NewJSONHandler(logBuf, nil)),
		SlowRequest: time.Nanosecond, // every request qualifies
	})
	if _, err := c.Estimate(context.Background(), client.EstimateRequest{
		CircuitSpec: client.CircuitSpec{Generate: "ham7"},
	}); err != nil {
		t.Fatal(err)
	}
	_ = ts
	var slow map[string]any
	for _, m := range logLines(t, logBuf) {
		if m["msg"] == "slow request" {
			slow = m
		}
	}
	if slow == nil {
		t.Fatalf("no slow-request line in:\n%s", logBuf.String())
	}
	breakdown, _ := slow["breakdown"].(string)
	for _, phase := range []string{"analyze", "estimate"} {
		if !strings.Contains(breakdown, phase) {
			t.Errorf("slow-request breakdown %q missing %s", breakdown, phase)
		}
	}
}

// TestDebugRingEviction bounds the ring: with TraceRing=2, only the two
// newest requests remain, newest first.
func TestDebugRingEviction(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{TraceRing: 2})
	for _, id := range []string{"ring-a", "ring-b", "ring-c"} {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/benchmarks", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Request-Id", id)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	snaps := debugRequests(t, ts.URL)
	if len(snaps) != 2 || snaps[0].ID != "ring-c" || snaps[1].ID != "ring-b" {
		ids := make([]string, len(snaps))
		for i, s := range snaps {
			ids[i] = s.ID
		}
		t.Fatalf("ring = %v, want [ring-c ring-b]", ids)
	}
}

// TestPprofGating keeps profiles off the main mux unless opted in.
func TestPprofGating(t *testing.T) {
	off, _ := newTestServer(t, server.Config{})
	resp, err := off.Client().Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ungated pprof: %d, want 404", resp.StatusCode)
	}

	on, _ := newTestServer(t, server.Config{EnableDebug: true})
	resp, err = on.Client().Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("EnableDebug pprof index: %d, want 200", resp.StatusCode)
	}
}

// TestClientSurfacesRequestID checks both client-side correlation paths:
// API errors quote the server's request ID, and single-estimate records
// pick it up from the response header.
func TestClientSurfacesRequestID(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	_, err := c.Estimate(context.Background(), client.EstimateRequest{
		CircuitSpec: client.CircuitSpec{Generate: "no-such-generator"},
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *client.APIError", err)
	}
	if apiErr.RequestID == "" || !strings.Contains(apiErr.Error(), apiErr.RequestID) {
		t.Fatalf("APIError %q does not surface request ID %q", apiErr.Error(), apiErr.RequestID)
	}

	rec, err := c.Estimate(context.Background(), client.EstimateRequest{
		CircuitSpec: client.CircuitSpec{Generate: "ham7"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.TraceID == "" {
		t.Fatal("estimate record has no TraceID from X-Request-Id")
	}
}
