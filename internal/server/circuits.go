package server

import (
	"errors"
	"fmt"
	"net/http"

	"repro/internal/ingest"
	"repro/leqa"
	"repro/leqa/client"
)

// handleCircuitPut ingests a netlist upload (.qc text or binary .qcb,
// either gzipped — sniffed by magic bytes, never by name) into the
// analysis store and replies with its content digest. The operation is
// idempotent: re-uploading a stored circuit is a store hit, whatever
// container it arrives in this time, because the digest covers the
// canonical gate stream rather than the bytes on the wire.
func (s *Server) handleCircuitPut(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "uploaded"
	}
	sc, err := ingest.NewAutoStream(r.Body, name, ingest.Options{
		SpoolDir:      s.cfg.SpoolDir,
		MaxSpoolBytes: s.cfg.MaxSpoolBytes,
	})
	if err != nil {
		s.writeError(w, classifyStreamErr(err))
		return
	}
	defer sc.Close()
	capped := &gateCapStream{src: sc, max: s.cfg.MaxGates}
	a, digest, err := s.store.GetOrAnalyze(capped)
	if err != nil {
		s.writeError(w, classifyStreamErr(err))
		return
	}
	if sc.BytesRead() == 0 {
		s.writeError(w, badRequest("empty netlist body"))
		return
	}
	if sp := sc.SpooledBytes(); sp > 0 {
		s.spooledUploads.Add(1)
		s.spooledBytes.Add(uint64(sp))
	}
	s.endpoints["circuits"].rows.Add(1)
	writeJSON(w, http.StatusOK, circuitInfo(digest, a))
}

// handleCircuitGet reports a stored circuit's analysis metadata by digest
// (HEAD answers existence only — net/http suppresses the body). Unknown
// digests are 404.
func (s *Server) handleCircuitGet(w http.ResponseWriter, r *http.Request) {
	ref := r.PathValue("digest")
	digest, err := leqa.ParseDigestRef(ref)
	if err != nil {
		s.writeError(w, badRequest("%v", err))
		return
	}
	a, err := s.store.Get(digest)
	if errors.Is(err, leqa.ErrAnalysisNotFound) {
		s.writeError(w, &statusError{
			code: http.StatusNotFound,
			msg:  fmt.Sprintf("circuit %s is not in the analysis store", ref),
		})
		return
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, circuitInfo(digest, a))
}

// circuitInfo assembles the circuits-endpoint reply from a stored analysis.
func circuitInfo(digest string, a *leqa.Analysis) client.CircuitInfo {
	return client.CircuitInfo{
		Digest:     leqa.FormatDigestRef(digest),
		Name:       a.Name,
		Qubits:     a.Qubits,
		Operations: a.Operations,
		FT:         a.FT,
	}
}
