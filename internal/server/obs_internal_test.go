package server

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// lockedBuffer keeps the slog capture race-safe under net/http goroutines.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// newPanicServer builds a Server with two injected panic routes — one that
// dies before writing anything, one that dies mid-stream — which is only
// possible from inside the package (the route mux is private).
func newPanicServer(t *testing.T) (*Server, *httptest.Server, *lockedBuffer) {
	t.Helper()
	logBuf := &lockedBuffer{}
	s, err := New(Config{Logger: slog.New(slog.NewJSONHandler(logBuf, nil))})
	if err != nil {
		t.Fatal(err)
	}
	s.mux.HandleFunc("GET /panic/early", func(w http.ResponseWriter, r *http.Request) {
		panic("boom before headers")
	})
	s.mux.HandleFunc("GET /panic/midstream", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("partial row\n"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic("boom mid-stream")
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, logBuf
}

// TestPanicRecoveryBeforeHeaders turns a pre-response panic into a clean
// 500, counts it, logs the stack, and records it in the debug ring.
func TestPanicRecoveryBeforeHeaders(t *testing.T) {
	s, ts, logBuf := newPanicServer(t)
	resp, err := ts.Client().Get(ts.URL + "/panic/early")
	if err != nil {
		t.Fatalf("client error (connection should survive an early panic): %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("internal error")) {
		t.Fatalf("body = %q, want the JSON error envelope", body)
	}
	if got := s.panics.Load(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "panic in handler") || !strings.Contains(logged, "boom before headers") {
		t.Fatalf("panic not logged:\n%s", logged)
	}
	snaps := s.ring.Snapshots()
	if len(snaps) == 0 || snaps[0].Error != "panic (see server log)" {
		t.Fatalf("ring snapshots = %+v, want a panic record first", snaps)
	}

	// The counter reaches /metrics.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "leqad_panics_total 1") {
		t.Fatal("/metrics missing leqad_panics_total 1")
	}
}

// TestPanicRecoveryMidStream keeps the ErrAbortHandler contract for panics
// after the status went out: the response is truncated so the client sees a
// transport error instead of a silently complete reply.
func TestPanicRecoveryMidStream(t *testing.T) {
	s, ts, _ := newPanicServer(t)
	resp, err := ts.Client().Get(ts.URL + "/panic/midstream")
	if err == nil {
		// The status and first bytes may arrive before the cut; the read
		// must then fail.
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("mid-stream panic produced a cleanly terminated response")
	}
	if got := s.panics.Load(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}
}

// TestAbortedStreamNotCountedAsPanic keeps the NDJSON truncation signal
// (http.ErrAbortHandler) out of the panic counter: it is flow control, not
// a crash.
func TestAbortedStreamNotCountedAsPanic(t *testing.T) {
	logBuf := &lockedBuffer{}
	s, err := New(Config{Logger: slog.New(slog.NewJSONHandler(logBuf, nil))})
	if err != nil {
		t.Fatal(err)
	}
	s.mux.HandleFunc("GET /abort", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("row\n"))
		panic(http.ErrAbortHandler)
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	resp, err := ts.Client().Get(ts.URL + "/abort")
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := s.panics.Load(); got != 0 {
		t.Fatalf("panics counter = %d, want 0 for ErrAbortHandler", got)
	}
	if strings.Contains(logBuf.String(), "panic in handler") {
		t.Fatalf("ErrAbortHandler logged as a panic:\n%s", logBuf.String())
	}
	snaps := s.ring.Snapshots()
	if len(snaps) == 0 || snaps[0].Error != "stream aborted" {
		t.Fatalf("ring snapshots = %+v, want a stream-aborted record", snaps)
	}
}
