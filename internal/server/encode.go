package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/leqa"
)

// rowEncoder abstracts the two streaming reply formats. row must flush each
// record to the wire so clients see results before the batch completes;
// done/fail terminate the stream (only SSE has framing for either).
type rowEncoder interface {
	row(rec leqa.ResultRecord) error
	done(rows int)
	fail(err error)
}

// newRowEncoder picks the stream format from the Accept header — SSE when
// the client asks for text/event-stream, NDJSON otherwise — and writes the
// response header.
func newRowEncoder(w http.ResponseWriter, r *http.Request) rowEncoder {
	flusher, _ := w.(http.Flusher)
	h := w.Header()
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	// Streamed responses send their span breakdown as an HTTP trailer —
	// the header goes out before any pipeline phase has run. Declaring it
	// here (before WriteHeader) lets the observability middleware populate
	// the value once the batch finishes.
	h.Set("Trailer", "Server-Timing")
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		h.Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		return &sseEncoder{w: w, flusher: flusher}
	}
	h.Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	return &ndjsonEncoder{w: w, flusher: flusher}
}

// ndjsonEncoder streams one compact JSON record per line. The stream has no
// trailer: every line parses as a leqa.ResultRecord and EOF is completion.
type ndjsonEncoder struct {
	w       http.ResponseWriter
	flusher http.Flusher
}

func (e *ndjsonEncoder) row(rec leqa.ResultRecord) error {
	if err := json.NewEncoder(e.w).Encode(rec); err != nil {
		return err
	}
	if e.flusher != nil {
		e.flusher.Flush()
	}
	return nil
}

func (e *ndjsonEncoder) done(int) {}

// fail aborts the connection without the terminating chunk. NDJSON has no
// in-band failure framing, so a clean EOF must remain the exclusive signal
// of a complete batch: panicking with ErrAbortHandler makes net/http cut
// the response short and truncation surfaces client-side as a transport
// error instead of a silently shortened row list.
func (e *ndjsonEncoder) fail(error) { panic(http.ErrAbortHandler) }

// sseEncoder streams server-sent events: each row is a data frame with the
// row index as event id, and the stream ends with an explicit done or error
// event so EventSource clients can tell truncation from completion.
type sseEncoder struct {
	w       http.ResponseWriter
	flusher http.Flusher
	rows    int
}

func (e *sseEncoder) row(rec leqa.ResultRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(e.w, "id: %d\ndata: %s\n\n", e.rows, payload); err != nil {
		return err
	}
	e.rows++
	if e.flusher != nil {
		e.flusher.Flush()
	}
	return nil
}

func (e *sseEncoder) done(rows int) {
	fmt.Fprintf(e.w, "event: done\ndata: {\"rows\":%d}\n\n", rows)
	if e.flusher != nil {
		e.flusher.Flush()
	}
}

func (e *sseEncoder) fail(err error) {
	payload, _ := json.Marshal(err.Error())
	fmt.Fprintf(e.w, "event: error\ndata: {\"error\":%s}\n\n", payload)
	if e.flusher != nil {
		e.flusher.Flush()
	}
}
