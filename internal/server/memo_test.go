package server_test

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/leqa/client"
	"repro/leqa/trace"
)

// TestResultMemoHealthzAndMetrics: the (digest, params) result memo is on
// by default, its counters reach /healthz's resultMemo block and the
// /metrics exposition, and a repeated identical request registers a hit.
func TestResultMemoHealthzAndMetrics(t *testing.T) {
	ts, c := newTestServer(t, server.Config{})
	req := client.EstimateRequest{CircuitSpec: client.CircuitSpec{Generate: "ham7"}}
	for range 2 {
		if _, err := c.Estimate(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.ResultMemo.Capacity == 0 {
		t.Fatalf("resultMemo block missing or memo disabled: %+v", h.ResultMemo)
	}
	if h.ResultMemo.Hits < 1 || h.ResultMemo.Misses < 1 || h.ResultMemo.Entries < 1 {
		t.Fatalf("repeated identical estimate must hit the memo: %+v", h.ResultMemo)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, series := range []string{
		"leqad_result_memo_hits_total 1",
		"leqad_result_memo_misses_total 1",
		"leqad_result_memo_evictions_total 0",
		"leqad_result_memo_entries 1",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("metrics missing %q", series)
		}
	}
}

// TestResultMemoDisabledConfig: negative ResultMemoEntries turns the memo
// off — /healthz reports an all-zero block and repeats recompute.
func TestResultMemoDisabledConfig(t *testing.T) {
	_, c := newTestServer(t, server.Config{ResultMemoEntries: -1})
	req := client.EstimateRequest{CircuitSpec: client.CircuitSpec{Generate: "ham7"}}
	for range 2 {
		if _, err := c.Estimate(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.ResultMemo != (client.MemoStats{}) {
		t.Fatalf("disabled memo must report zeros: %+v", h.ResultMemo)
	}
}

// TestTraceMemoOutcome pins the estimate span's memo attribution: the cold
// request's estimate span says memo=miss, the warm twin's says memo=hit
// (and carries cols=0 — no column was computed).
func TestTraceMemoOutcome(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{})
	estimate := func(id string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/estimate",
			gridBody(t, client.EstimateRequest{CircuitSpec: client.CircuitSpec{Generate: "ham7"}}))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-Id", id)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate %s: %d", id, resp.StatusCode)
		}
	}
	estimate("memo-cold-1")
	estimate("memo-warm-1")

	snaps := debugRequests(t, ts.URL)
	estimateDetail := func(id string) string {
		t.Helper()
		snap := findSnapshot(snaps, id)
		if snap == nil {
			t.Fatalf("%s not in /debug/requests", id)
		}
		for _, sp := range snap.Spans {
			if sp.Name == trace.SpanEstimate {
				return sp.Detail
			}
		}
		t.Fatalf("%s has no estimate span", id)
		return ""
	}
	if d := estimateDetail("memo-cold-1"); !strings.Contains(d, "memo=miss") {
		t.Fatalf("cold estimate span detail = %q, want memo=miss", d)
	}
	if d := estimateDetail("memo-warm-1"); !strings.Contains(d, "memo=hit") || !strings.Contains(d, "cols=0") {
		t.Fatalf("warm estimate span detail = %q, want cols=0 memo=hit", d)
	}
}
