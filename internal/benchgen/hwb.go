package benchgen

import (
	"fmt"

	"repro/internal/circuit"
)

// HWB generates the hidden-weighted-bit benchmark hwb<n>ps: the function
// that cyclically rotates its n-bit input by the input's Hamming weight.
// The netlist follows the standard three-stage reversible realization:
//
//  1. popcount — a ripple counter accumulates the weight of the n bus wires
//     into w = ⌈log₂(n+1)⌉ counter qubits. Each bus wire drives a
//     controlled increment built as a Toffoli carry chain over w shared
//     carry ancillas (computed, consumed top-down, uncomputed — the VBE
//     pattern), so the ancillas return to |0⟩ after every increment.
//  2. rotate — a weight-controlled barrel rotator: for counter bit w_j, a
//     layer of Fredkin gates rotates the bus by 2^j positions when w_j is
//     set (⌈log₂⌉ rounds of ≤ n−1 controlled swaps each).
//  3. uncompute — stage 1 reversed on the rotated bus (rotation preserves
//     Hamming weight, so the counter returns exactly to zero).
//
// Gate counts after FT decomposition track the paper's hwb rows closely
// (e.g. n=200 → ≈175k ops vs the paper's 175,490); the paper's netlists
// carry far more ancilla qubits because their flow expanded multi-control
// gates without any sharing — EXPERIMENTS.md tabulates the difference.
func HWB(n int) (*circuit.Circuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("benchgen: hwb needs n ≥ 2, got %d", n)
	}
	w := 0
	for (1 << uint(w)) < n+1 {
		w++
	}
	c := circuit.New(fmt.Sprintf("hwb%dps", n), 0)
	bus := make([]int, n)
	for i := range bus {
		bus[i] = c.AddQubit(fmt.Sprintf("x%d", i))
	}
	cnt := make([]int, w)
	for j := range cnt {
		cnt[j] = c.AddQubit(fmt.Sprintf("w%d", j))
	}
	carry := make([]int, w)
	for j := range carry {
		carry[j] = c.AddQubit(fmt.Sprintf("cy%d", j))
	}

	// Stage 1: popcount — one controlled increment per bus wire.
	for _, q := range bus {
		appendControlledIncrement(c, q, cnt, carry)
	}
	// Stage 2: barrel rotate by the counter value.
	for j := 0; j < w; j++ {
		shift := (1 << uint(j)) % n
		appendControlledRotate(c, cnt[j], bus, shift)
	}
	// Stage 3: uncompute popcount on the rotated bus. The increment block
	// is a palindrome-free sequence, so its inverse is the same gates in
	// reverse order (every gate is self-inverse).
	for i := len(bus) - 1; i >= 0; i-- {
		appendControlledDecrement(c, bus[i], cnt, carry)
	}
	return c, nil
}

// incrementGates emits cnt += ctl as a Toffoli carry-ripple using the shared
// carry wires (all zero on entry and exit):
//
//	CNOT(ctl, carry[0])                       carry into bit 0
//	for j = 0..w-2:  TOF(cnt[j], carry[j], carry[j+1])
//	for j = w-2..0:  CNOT(carry[j+1], cnt[j+1]); TOF(cnt[j], carry[j], carry[j+1])
//	CNOT(carry[0], cnt[0]); CNOT(ctl, carry[0])
func incrementGates(ctl int, cnt, carry []int) []circuit.Gate {
	w := len(cnt)
	gates := make([]circuit.Gate, 0, 3*w+2)
	gates = append(gates, circuit.NewCNOT(ctl, carry[0]))
	for j := 0; j < w-1; j++ {
		gates = append(gates, circuit.NewToffoli(cnt[j], carry[j], carry[j+1]))
	}
	for j := w - 2; j >= 0; j-- {
		gates = append(gates,
			circuit.NewCNOT(carry[j+1], cnt[j+1]),
			circuit.NewToffoli(cnt[j], carry[j], carry[j+1]),
		)
	}
	gates = append(gates, circuit.NewCNOT(carry[0], cnt[0]), circuit.NewCNOT(ctl, carry[0]))
	return gates
}

func appendControlledIncrement(c *circuit.Circuit, ctl int, cnt, carry []int) {
	c.Append(incrementGates(ctl, cnt, carry)...)
}

// appendControlledDecrement emits the exact inverse of the increment: the
// same (self-inverse) gates in reverse order.
func appendControlledDecrement(c *circuit.Circuit, ctl int, cnt, carry []int) {
	gates := incrementGates(ctl, cnt, carry)
	for i := len(gates) - 1; i >= 0; i-- {
		c.Append(gates[i])
	}
}

// appendControlledRotate rotates the bus left by `shift` positions when
// ctrl is set, via rings of Fredkin gates (a rotation decomposes into
// gcd(n,shift) disjoint cycles; each cycle of length L needs L−1 controlled
// swaps).
func appendControlledRotate(c *circuit.Circuit, ctrl int, bus []int, shift int) {
	n := len(bus)
	if shift%n == 0 {
		return
	}
	seen := make([]bool, n)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		// Walk the cycle start → start+shift → ... emitting swaps that
		// percolate the first element around the ring.
		i := start
		seen[i] = true
		for {
			j := (i + shift) % n
			if j == start {
				break
			}
			seen[j] = true
			c.Append(circuit.NewFredkin(ctrl, bus[i], bus[j]))
			i = j
		}
	}
}
