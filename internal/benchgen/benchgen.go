// Package benchgen generates the reversible benchmark circuits of the LEQA
// evaluation (Tables 2–3) from scratch. The original Maslov benchmark suite
// the paper used is no longer distributable, so each family is rebuilt as a
// genuine reversible netlist of the same structure and scale:
//
//   - gf2^n mult — Mastrovito GF(2^n) multipliers over verified irreducible
//     field polynomials: n² partial-product Toffolis plus 3(n−1) reduction
//     CNOTs on 3n qubits, matching the paper's operation-count formula
//     15n² + 3(n−1) after Toffoli decomposition exactly.
//   - hwb<n>ps — hidden-weighted-bit networks: a ripple popcount tree into
//     ⌈log₂(n+1)⌉ weight bits, a weight-controlled barrel rotator built from
//     Fredkin layers, and popcount uncomputation.
//   - ham<n> — Hamming-code circuits; ham3 is the paper's exact Fig. 2(a)
//     five-gate netlist (one Toffoli + four 1/2-qubit gates → 19 FT ops).
//   - <n>bitadder — VBE ripple-carry adders (functionally verified in tests).
//   - mod<2^n>adder — modular adders with comparator/fix-up stages built
//     from the adder blocks and multi-control Toffolis.
//
// All generators are deterministic. Generate() returns the raw reversible
// netlist; GenerateFT() additionally lowers it to the FT gate set with the
// paper's decomposition flow.
package benchgen

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"

	"repro/internal/circuit"
	"repro/internal/decompose"
)

// Generator produces one benchmark circuit.
type Generator func() (*circuit.Circuit, error)

// PaperBenchmarks lists the 18 Table 2/3 benchmark names in the paper's
// (operation-count) order.
var PaperBenchmarks = []string{
	"8bitadder",
	"gf2^16mult",
	"hwb15ps",
	"hwb16ps",
	"gf2^18mult",
	"gf2^19mult",
	"gf2^20mult",
	"ham15",
	"hwb20ps",
	"hwb50ps",
	"gf2^50mult",
	"mod1048576adder",
	"gf2^64mult",
	"hwb100ps",
	"gf2^100mult",
	"hwb200ps",
	"gf2^128mult",
	"gf2^256mult",
}

// PaperStats records the paper's Table 2/3 reference values for a benchmark.
type PaperStats struct {
	Qubits      int
	Operations  int
	ActualSec   float64 // QSPR latency, Table 2
	EstimateSec float64 // LEQA latency, Table 2
	ErrorPct    float64 // Table 2
}

// Paper holds the published Table 2/3 rows, keyed by benchmark name, so the
// experiment harness can print paper-vs-measured side by side.
var Paper = map[string]PaperStats{
	"8bitadder":       {24, 822, 1.617, 1.667, 3.10},
	"gf2^16mult":      {48, 3885, 4.460, 4.524, 1.45},
	"hwb15ps":         {47, 3885, 19.40, 19.93, 2.76},
	"hwb16ps":         {55, 3811, 18.52, 19.03, 2.76},
	"gf2^18mult":      {54, 4911, 5.085, 5.109, 0.46},
	"gf2^19mult":      {57, 5469, 5.393, 5.407, 0.25},
	"gf2^20mult":      {60, 6019, 5.654, 5.660, 0.11},
	"ham15":           {146, 5308, 25.18, 25.30, 0.51},
	"hwb20ps":         {83, 6395, 30.26, 31.06, 2.66},
	"hwb50ps":         {370, 25370, 123.6, 127.4, 3.10},
	"gf2^50mult":      {150, 37647, 14.74, 14.95, 1.44},
	"mod1048576adder": {1180, 37070, 202.7, 195.8, 3.38},
	"gf2^64mult":      {192, 61629, 19.04, 19.35, 1.64},
	"hwb100ps":        {1106, 67735, 342.7, 340.2, 0.72},
	"gf2^100mult":     {300, 150297, 30.15, 29.98, 0.57},
	"hwb200ps":        {3145, 175490, 963.8, 883.9, 8.29},
	"gf2^128mult":     {384, 246141, 38.86, 38.38, 1.24},
	"gf2^256mult":     {768, 983805, 79.36, 76.54, 3.55},
}

var (
	gf2Re   = regexp.MustCompile(`^gf2\^(\d+)mult$`)
	hwbRe   = regexp.MustCompile(`^hwb(\d+)ps$`)
	hamRe   = regexp.MustCompile(`^ham(\d+)$`)
	adderRe = regexp.MustCompile(`^(\d+)bitadder$`)
	modRe   = regexp.MustCompile(`^mod(\d+)adder$`)
	shorRe  = regexp.MustCompile(`^shor-(\d+)(?:x(\d+))?$`)
)

// Families lists the recognized generator spec shapes, for catalogs (the
// leqad /v1/benchmarks endpoint, CLI usage strings).
var Families = []string{
	"gf2^<n>mult", "hwb<n>ps", "ham<n>", "<n>bitadder", "mod<2^n>adder", "shor-<n>[x<rounds>]",
}

// Generate builds the named benchmark as a raw reversible netlist.
// Recognized name shapes: gf2^<n>mult, hwb<n>ps, ham<n>, <n>bitadder,
// mod<2^n>adder, shor-<n>[x<rounds>] (§4.2 modular-exponentiation
// workload, default one round).
func Generate(name string) (*circuit.Circuit, error) {
	if m := gf2Re.FindStringSubmatch(name); m != nil {
		n, _ := strconv.Atoi(m[1])
		return GF2Mult(n)
	}
	if m := hwbRe.FindStringSubmatch(name); m != nil {
		n, _ := strconv.Atoi(m[1])
		return HWB(n)
	}
	if m := hamRe.FindStringSubmatch(name); m != nil {
		n, _ := strconv.Atoi(m[1])
		return Ham(n)
	}
	if m := adderRe.FindStringSubmatch(name); m != nil {
		n, _ := strconv.Atoi(m[1])
		return Adder(n)
	}
	if m := modRe.FindStringSubmatch(name); m != nil {
		modulus, err := strconv.ParseUint(m[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchgen: bad modulus in %q: %v", name, err)
		}
		bits := 0
		for v := modulus; v > 1; v >>= 1 {
			bits++
		}
		if uint64(1)<<uint(bits) != modulus {
			return nil, fmt.Errorf("benchgen: modulus %d is not a power of two", modulus)
		}
		return ModAdder(bits)
	}
	if m := shorRe.FindStringSubmatch(name); m != nil {
		n, _ := strconv.Atoi(m[1])
		rounds := 1
		if m[2] != "" {
			rounds, _ = strconv.Atoi(m[2])
		}
		return ShorModExp(n, rounds)
	}
	return nil, fmt.Errorf("benchgen: unknown benchmark %q", name)
}

// PredictFTOps returns a cheap, conservative upper bound on the named
// benchmark's post-decomposition operation count, without synthesizing
// anything — admission control for services: a generator spec whose bound
// exceeds the caller's budget can be rejected before generation allocates
// gates (a spec like shor-2000000 would otherwise OOM the process long
// before any post-hoc gate cap sees it). The bound deliberately
// over-estimates (up to ~10× for the log-linear families); it saturates at
// math.MaxInt, including when the spec's parameter does not fit an int. ok
// is false for unrecognized names.
func PredictFTOps(name string) (bound int, ok bool) {
	sat := func(f float64) int {
		if f >= math.MaxInt/2 {
			return math.MaxInt
		}
		return int(f)
	}
	num := func(s string) float64 {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return math.MaxInt // absurd parameter: saturate, caller rejects
		}
		return float64(n)
	}
	log2 := func(f float64) float64 { return math.Log2(f + 2) }
	switch {
	case gf2Re.MatchString(name):
		f := num(gf2Re.FindStringSubmatch(name)[1])
		return sat(15*f*f + 3*f + 16), true // exact 15n²+3(n−1), padded
	case hwbRe.MatchString(name):
		f := num(hwbRe.FindStringSubmatch(name)[1])
		return sat(600*f*log2(f) + 1000), true
	case hamRe.MatchString(name):
		f := num(hamRe.FindStringSubmatch(name)[1])
		return sat(600*f*log2(f) + 1000), true
	case adderRe.MatchString(name):
		f := num(adderRe.FindStringSubmatch(name)[1])
		return sat(400*f + 100), true
	case modRe.MatchString(name):
		// The modulus must be a power of two ≤ 2⁶³, so bits ≤ 63; the
		// ripple structure is O(bits²).
		f := math.Min(num(modRe.FindStringSubmatch(name)[1]), 1<<40)
		bits := log2(f)
		return sat(800*bits*bits + 100), true
	case shorRe.MatchString(name):
		m := shorRe.FindStringSubmatch(name)
		n, r := num(m[1]), 1.0
		if m[2] != "" {
			r = num(m[2])
		}
		// Each of the ≤ r·n blocks emits ≤ 2n+2 Toffolis (×15) + n+1
		// CNOTs; see ShorModExpOpCount for the exact form.
		return sat(r*n*(31*n+32) + 100), true
	}
	return 0, false
}

// GenerateFT builds the named benchmark and lowers it to the FT gate set
// with the paper's decomposition flow (no ancilla sharing).
func GenerateFT(name string) (*circuit.Circuit, error) {
	raw, err := Generate(name)
	if err != nil {
		return nil, err
	}
	ft, err := decompose.ToFT(raw, decompose.Options{})
	if err != nil {
		return nil, err
	}
	ft.Name = name
	return ft, nil
}

// Names returns all paper benchmark names sorted by the paper's Table 3
// order (operation count ascending).
func Names() []string {
	out := append([]string(nil), PaperBenchmarks...)
	sort.SliceStable(out, func(i, j int) bool {
		return Paper[out[i]].Operations < Paper[out[j]].Operations
	})
	return out
}
