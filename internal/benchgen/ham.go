package benchgen

import (
	"fmt"

	"repro/internal/circuit"
)

// Ham3 returns the paper's Fig. 2(a) benchmark: the size-3 Hamming optimal
// coding circuit — four NOT/CNOT gates plus one Toffoli, which lowers to the
// 19-operation FT netlist whose QODG is the paper's Fig. 2(b).
func Ham3() *circuit.Circuit {
	c := circuit.New("ham3", 3)
	const a, b, q = 0, 1, 2
	c.Append(
		circuit.NewCNOT(b, q),             // 1
		circuit.NewCNOT(a, b),             // 2
		circuit.NewOneQubit(circuit.X, a), // 3
		circuit.NewCNOT(q, a),             // 4
		circuit.NewToffoli(a, b, q),       // 5 → FT ops 5..19
	)
	return c
}

// Ham generates the ham<n> Hamming-coding benchmark. For n = 3 the exact
// Fig. 2(a) netlist is returned. For larger n (the paper uses ham15) the
// circuit is a Hamming single-error-correcting coder over n = 2^r − 1 wires:
//
//  1. encode — parity CNOT fans from each data wire onto the r parity
//     positions covering it;
//  2. syndrome match — for every codeword position p, a multi-control
//     Toffoli (r controls, X-conjugated to match the binary pattern of p)
//     flips position p when the syndrome equals p: the correction stage;
//  3. re-encode — the parity network again, leaving the corrected word.
//
// The multi-control correction stage is what blows up the post-decomposition
// qubit count (paper: ham15 → 146 qubits), since each r-control Toffoli
// expands with fresh unshared ancillas.
func Ham(n int) (*circuit.Circuit, error) {
	if n == 3 {
		return Ham3(), nil
	}
	r := 0
	for (1<<uint(r))-1 < n {
		r++
	}
	if (1<<uint(r))-1 != n {
		return nil, fmt.Errorf("benchgen: ham size %d is not 2^r−1", n)
	}
	c := circuit.New(fmt.Sprintf("ham%d", n), 0)
	wires := make([]int, n+1) // 1-based positions 1..n
	for p := 1; p <= n; p++ {
		wires[p] = c.AddQubit(fmt.Sprintf("p%d", p))
	}
	syn := make([]int, r)
	for j := 0; j < r; j++ {
		syn[j] = c.AddQubit(fmt.Sprintf("s%d", j))
	}

	// Parity/syndrome network: syndrome bit j accumulates the parity of
	// all positions whose binary index has bit j set.
	parity := func() {
		for j := 0; j < r; j++ {
			for p := 1; p <= n; p++ {
				if p&(1<<uint(j)) != 0 {
					c.Append(circuit.NewCNOT(wires[p], syn[j]))
				}
			}
		}
	}

	parity() // encode / compute syndrome
	// Correction: flip position p when syndrome == p. Conjugate the zero
	// bits of p with X so the MCT fires on the exact pattern.
	for p := 1; p <= n; p++ {
		for j := 0; j < r; j++ {
			if p&(1<<uint(j)) == 0 {
				c.Append(circuit.NewOneQubit(circuit.X, syn[j]))
			}
		}
		c.Append(circuit.NewMCT(syn, wires[p]))
		for j := 0; j < r; j++ {
			if p&(1<<uint(j)) == 0 {
				c.Append(circuit.NewOneQubit(circuit.X, syn[j]))
			}
		}
	}
	parity() // uncompute syndrome / re-encode
	return c, nil
}
