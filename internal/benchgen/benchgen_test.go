package benchgen

import (
	"math/bits"
	"testing"

	"repro/internal/circuit"
	"repro/internal/decompose"
	"repro/internal/gf2"
	"repro/internal/sim"
)

func TestGenerateAllPaperNames(t *testing.T) {
	if testing.Short() {
		t.Skip("large benchmarks in -short mode")
	}
	for _, name := range PaperBenchmarks {
		if Paper[name].Operations > 100000 {
			continue // gf2^128/256 exercised in benchmarks, not unit tests
		}
		c, err := Generate(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: invalid circuit: %v", name, err)
		}
		if c.NumGates() == 0 {
			t.Errorf("%s: empty circuit", name)
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	for _, name := range []string{"nope", "gf2^xmult", "mod100adder", "hwbps"} {
		if _, err := Generate(name); err == nil {
			t.Errorf("%q: want error", name)
		}
	}
}

func TestNamesSortedByOps(t *testing.T) {
	names := Names()
	if len(names) != len(PaperBenchmarks) {
		t.Fatalf("Names() returned %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if Paper[names[i-1]].Operations > Paper[names[i]].Operations {
			t.Errorf("names not sorted at %d: %s > %s", i, names[i-1], names[i])
		}
	}
}

func TestGF2MultCountsMatchPaperFormula(t *testing.T) {
	// Qubits: 3n. FT operations: 15n² + 3(n−1) — the paper's Table 3
	// values for every gf2 row.
	for _, n := range []int{16, 18, 19, 20} {
		raw, err := GF2Mult(n)
		if err != nil {
			t.Fatal(err)
		}
		if raw.NumQubits() != 3*n {
			t.Errorf("n=%d: %d qubits, want %d", n, raw.NumQubits(), 3*n)
		}
		ft, err := decompose.ToFT(raw, decompose.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := 15*n*n + 3*(n-1)
		if ft.NumGates() != want {
			t.Errorf("n=%d: %d FT ops, want %d", n, ft.NumGates(), want)
		}
		// The published Table 3 counts equal the same formula for every
		// gf2 size except n=20, where the paper reports 19 reduction ops
		// instead of 3(n−1) = 57 (a 0.6% difference).
		if paper, ok := Paper[raw.Name]; ok && n != 20 && ft.NumGates() != paper.Operations {
			t.Errorf("n=%d: %d ops != paper %d", n, ft.NumGates(), paper.Operations)
		}
	}
}

func TestGF2MultExactFunctional(t *testing.T) {
	// The exact multiplier must compute a·b mod f for every input pair on
	// small fields, verified against gf2.Poly arithmetic.
	for _, n := range []int{2, 3, 4} {
		c, err := GF2MultExact(n)
		if err != nil {
			t.Fatal(err)
		}
		f, err := gf2.FieldPoly(n)
		if err != nil {
			t.Fatal(err)
		}
		for a := uint64(0); a < 1<<uint(n); a++ {
			for b := uint64(0); b < 1<<uint(n); b++ {
				in := a | b<<uint(n)
				bitsIn := sim.BitsFromUint(3*n, in)
				if err := bitsIn.RunReversible(c); err != nil {
					t.Fatal(err)
				}
				got := bitsIn.Uint() >> uint(2*n)
				want := gf2Mul(a, b, f, n)
				if got != want {
					t.Errorf("n=%d: %d·%d = %d, want %d", n, a, b, got, want)
				}
				// Operand registers must be preserved.
				if bitsIn.Uint()&(1<<uint(2*n)-1) != in {
					t.Errorf("n=%d: operands clobbered", n)
				}
			}
		}
	}
}

func gf2Mul(a, b uint64, f gf2.Poly, n int) uint64 {
	pa, pb := uintPoly(a), uintPoly(b)
	r, _ := pa.MulMod(pb, f)
	if len(r) == 0 {
		return 0
	}
	return r[0]
}

func uintPoly(v uint64) gf2.Poly {
	var p gf2.Poly
	for i := 0; i < 64; i++ {
		if v&(1<<uint(i)) != 0 {
			p = p.SetBit(i)
		}
	}
	return p
}

func TestAdderFunctional(t *testing.T) {
	// |a, b, 0⟩ → |a, a+b mod 2^n, 0⟩ for all inputs at n = 3,4.
	for _, n := range []int{1, 2, 3, 4} {
		c, err := Adder(n)
		if err != nil {
			t.Fatal(err)
		}
		mask := uint64(1)<<uint(n) - 1
		for a := uint64(0); a <= mask; a++ {
			for b := uint64(0); b <= mask; b++ {
				in := a | b<<uint(n)
				reg := sim.BitsFromUint(c.NumQubits(), in)
				if err := reg.RunReversible(c); err != nil {
					t.Fatal(err)
				}
				out := reg.Uint()
				gotA := out & mask
				gotB := (out >> uint(n)) & mask
				gotCarry := out >> uint(2*n)
				if gotA != a {
					t.Fatalf("n=%d a=%d b=%d: operand a became %d", n, a, b, gotA)
				}
				if gotB != (a+b)&mask {
					t.Fatalf("n=%d: %d+%d = %d, want %d", n, a, b, gotB, (a+b)&mask)
				}
				if gotCarry != 0 {
					t.Fatalf("n=%d a=%d b=%d: carry ancillas dirty: %b", n, a, b, gotCarry)
				}
			}
		}
	}
}

func TestAdder8MatchesPaperQubits(t *testing.T) {
	c, err := Adder(8)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits() != 24 {
		t.Errorf("8bitadder qubits = %d, want 24 (Table 3)", c.NumQubits())
	}
	if c.Name != "8bitadder" {
		t.Errorf("name = %q", c.Name)
	}
}

func TestModAdderFunctional(t *testing.T) {
	// With enable set: |x, r, 0, 1⟩ → |x, (r+x) mod 2^bits, 0, 1⟩.
	// With enable clear: identity.
	for _, n := range []int{2, 3} {
		c, err := ModAdder(n)
		if err != nil {
			t.Fatal(err)
		}
		mask := uint64(1)<<uint(n) - 1
		enBit := uint(3 * n)
		for x := uint64(0); x <= mask; x++ {
			for r := uint64(0); r <= mask; r++ {
				for en := uint64(0); en <= 1; en++ {
					in := x | r<<uint(n) | en<<enBit
					reg := sim.BitsFromUint(c.NumQubits(), in)
					if err := reg.RunReversible(c); err != nil {
						t.Fatal(err)
					}
					out := reg.Uint()
					wantR := r
					if en == 1 {
						wantR = (r + x) & mask
					}
					if got := (out >> uint(n)) & mask; got != wantR {
						t.Fatalf("n=%d en=%d: %d+%d → %d, want %d", n, en, r, x, got, wantR)
					}
					if out&mask != x {
						t.Fatalf("n=%d: addend clobbered", n)
					}
					carry := (out >> uint(2*n)) & mask
					if carry != 0 {
						t.Fatalf("n=%d x=%d r=%d en=%d: carries dirty %b", n, x, r, en, carry)
					}
					if out>>enBit != en {
						t.Fatalf("n=%d: enable clobbered", n)
					}
				}
			}
		}
	}
}

func TestHam3MatchesFig2(t *testing.T) {
	c := Ham3()
	if c.NumQubits() != 3 {
		t.Fatalf("ham3 qubits = %d", c.NumQubits())
	}
	if c.NumGates() != 5 {
		t.Fatalf("ham3 raw gates = %d, want 5 (4 simple + 1 Toffoli)", c.NumGates())
	}
	ft, err := decompose.ToFT(c, decompose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ft.NumGates() != 19 {
		t.Errorf("ham3 FT ops = %d, want 19 (Fig. 2)", ft.NumGates())
	}
	// The circuit must be a permutation.
	tt, err := sim.ReversibleTruthTable(c)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.IsPermutation(tt) {
		t.Error("ham3 is not reversible")
	}
}

func TestHamRejectsBadSize(t *testing.T) {
	if _, err := Ham(10); err == nil {
		t.Error("ham10 should be rejected (not 2^r−1)")
	}
}

func TestHam7SyndromeRestored(t *testing.T) {
	// For ham(7): on any input with syndrome ancillas zero, the circuit
	// must return the ancillas to a value consistent with re-encoding —
	// specifically the circuit must be a permutation and ancillas must
	// depend only on the data (they hold the final parity).
	c, err := Ham(7)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := sim.ReversibleTruthTable(c)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.IsPermutation(tt) {
		t.Error("ham7 is not reversible")
	}
}

func TestHWBFunctional(t *testing.T) {
	// hwb rotates the bus by its Hamming weight and restores the counter.
	for _, n := range []int{3, 4, 5} {
		c, err := HWB(n)
		if err != nil {
			t.Fatal(err)
		}
		// Lower to Toffoli level so MCTs execute classically.
		low, err := decompose.ToFT(c, decompose.Options{KeepToffoli: true})
		if err != nil {
			t.Fatal(err)
		}
		mask := uint64(1)<<uint(n) - 1
		// Determine rotation direction from input 0b...01 with weight 1.
		for x := uint64(0); x <= mask; x++ {
			reg := sim.BitsFromUint(low.NumQubits(), x)
			if err := reg.RunReversible(low); err != nil {
				t.Fatal(err)
			}
			out := reg.Uint()
			if out>>uint(n) != 0 {
				t.Fatalf("n=%d x=%b: counter/ancillas dirty: %b", n, x, out>>uint(n))
			}
			got := out & mask
			w := uint(bits.OnesCount64(x)) % uint(n)
			rotL := ((x << w) | (x >> (uint(n) - w))) & mask
			if w == 0 {
				rotL = x
			}
			rotR := ((x >> w) | (x << (uint(n) - w))) & mask
			if w == 0 {
				rotR = x
			}
			if got != rotL && got != rotR {
				t.Errorf("n=%d x=%0*b: got %0*b, want rot±%d", n, n, x, n, got, w)
			}
		}
	}
}

func TestHWBIsConsistentRotationDirection(t *testing.T) {
	// Whatever direction the barrel rotator uses, it must be the same for
	// all inputs of a given size.
	n := 4
	c, _ := HWB(n)
	low, err := decompose.ToFT(c, decompose.Options{KeepToffoli: true})
	if err != nil {
		t.Fatal(err)
	}
	mask := uint64(1)<<uint(n) - 1
	dir := 0 // +1 left, -1 right, 0 undetermined
	for x := uint64(0); x <= mask; x++ {
		w := uint(bits.OnesCount64(x)) % uint(n)
		if w == 0 {
			continue
		}
		reg := sim.BitsFromUint(low.NumQubits(), x)
		if err := reg.RunReversible(low); err != nil {
			t.Fatal(err)
		}
		got := reg.Uint() & mask
		rotL := ((x << w) | (x >> (uint(n) - w))) & mask
		rotR := ((x >> w) | (x << (uint(n) - w))) & mask
		switch {
		case got == rotL && got == rotR:
			// symmetric input; uninformative
		case got == rotL:
			if dir == -1 {
				t.Fatalf("direction flipped at x=%b", x)
			}
			dir = 1
		case got == rotR:
			if dir == 1 {
				t.Fatalf("direction flipped at x=%b", x)
			}
			dir = -1
		default:
			t.Fatalf("x=%b: not a rotation by weight", x)
		}
	}
	if dir == 0 {
		t.Error("no informative input found")
	}
}

func TestGenerateFTIsFT(t *testing.T) {
	for _, name := range []string{"8bitadder", "ham3", "hwb5ps", "gf2^8mult"} {
		c, err := GenerateFT(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !c.IsFT() {
			t.Errorf("%s: GenerateFT output not FT", name)
		}
		if c.Name != name {
			t.Errorf("%s: name = %q", name, c.Name)
		}
	}
}

func TestRandomFTDeterministic(t *testing.T) {
	a, err := RandomFT(10, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RandomFT(10, 100, 42)
	if a.NumGates() != b.NumGates() {
		t.Fatal("different sizes for same seed")
	}
	for i := range a.Gates {
		if a.Gates[i].Type != b.Gates[i].Type {
			t.Fatalf("gate %d differs", i)
		}
	}
	c, _ := RandomFT(10, 100, 43)
	same := true
	for i := range a.Gates {
		if a.Gates[i].Type != c.Gates[i].Type {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical circuits")
	}
}

func TestRandomFTValid(t *testing.T) {
	c, err := RandomFT(5, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c.IsFT() {
		t.Error("random circuit contains non-FT gates")
	}
	if _, err := RandomFT(1, 10, 0); err == nil {
		t.Error("want error for 1 qubit")
	}
	if _, err := RandomFT(4, -1, 0); err == nil {
		t.Error("want error for negative gates")
	}
}

func TestRandomClusteredLocality(t *testing.T) {
	c, err := RandomClustered(50, 600, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range c.Gates {
		if g.Type == circuit.CNOT {
			d := g.Controls[0] - g.Targets[0]
			if d < -3 || d > 3 {
				t.Fatalf("gate %d: CNOT distance %d exceeds locality", i, d)
			}
		}
	}
}

func TestModAdderNameParsing(t *testing.T) {
	c, err := Generate("mod1048576adder")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "mod1048576adder" {
		t.Errorf("name = %q", c.Name)
	}
	if _, err := Generate("mod1000adder"); err == nil {
		t.Error("non-power-of-two modulus should fail")
	}
}

func TestPredictFTOpsBoundsActual(t *testing.T) {
	// The predictor is admission control: it must never under-estimate, or
	// an oversized spec could slip past a service's gate cap and be
	// synthesized anyway.
	names := []string{
		"8bitadder", "gf2^16mult", "hwb15ps", "hwb16ps", "ham15",
		"mod1048576adder", "shor-8", "shor-8x2",
	}
	for _, name := range names {
		bound, ok := PredictFTOps(name)
		if !ok {
			t.Fatalf("PredictFTOps(%q) does not recognize a valid spec", name)
		}
		c, err := GenerateFT(name)
		if err != nil {
			t.Fatal(err)
		}
		if bound < c.NumGates() {
			t.Errorf("PredictFTOps(%q) = %d under-estimates the actual %d ops",
				name, bound, c.NumGates())
		}
	}
	if _, ok := PredictFTOps("no-such-benchmark"); ok {
		t.Error("unknown names must report ok=false")
	}
	// Absurd parameters saturate instead of overflowing.
	if bound, ok := PredictFTOps("gf2^99999999999999999999mult"); !ok || bound < 1<<60 {
		t.Errorf("huge spec bound = %d, %v; want saturation", bound, ok)
	}
	if bound, ok := PredictFTOps("shor-2000000"); !ok || bound < 2_000_000 {
		t.Errorf("shor-2000000 bound = %d, %v; want a huge bound without synthesis", bound, ok)
	}
}
