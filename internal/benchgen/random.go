package benchgen

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
)

// RandomFT generates a random FT circuit with the given register size and
// gate count — the workload for property-based tests and synthetic scaling
// sweeps. Roughly a third of gates are CNOTs on uniformly chosen distinct
// pairs; the rest are uniform one-qubit FT gates. Deterministic per seed.
func RandomFT(qubits, gates int, seed int64) (*circuit.Circuit, error) {
	if qubits < 2 {
		return nil, fmt.Errorf("benchgen: random circuit needs ≥ 2 qubits, got %d", qubits)
	}
	if gates < 0 {
		return nil, fmt.Errorf("benchgen: negative gate count %d", gates)
	}
	rng := rand.New(rand.NewSource(seed))
	one := []circuit.GateType{
		circuit.H, circuit.T, circuit.Tdg, circuit.S, circuit.Sdg,
		circuit.X, circuit.Y, circuit.Z,
	}
	c := circuit.New(fmt.Sprintf("random_q%d_g%d", qubits, gates), qubits)
	for i := 0; i < gates; i++ {
		if rng.Intn(3) == 0 {
			a := rng.Intn(qubits)
			b := rng.Intn(qubits - 1)
			if b >= a {
				b++
			}
			c.Append(circuit.NewCNOT(a, b))
		} else {
			c.Append(circuit.NewOneQubit(one[rng.Intn(len(one))], rng.Intn(qubits)))
		}
	}
	return c, nil
}

// RandomClustered generates a random FT circuit whose CNOTs favor partners
// within a sliding window of `locality` qubit indices — mimicking the
// locality structure of synthesized arithmetic circuits. Used by scaling
// sweeps where a realistic IIG matters.
func RandomClustered(qubits, gates, locality int, seed int64) (*circuit.Circuit, error) {
	if qubits < 2 {
		return nil, fmt.Errorf("benchgen: random circuit needs ≥ 2 qubits, got %d", qubits)
	}
	if locality < 1 {
		locality = 1
	}
	rng := rand.New(rand.NewSource(seed))
	one := []circuit.GateType{circuit.H, circuit.T, circuit.Tdg, circuit.X}
	c := circuit.New(fmt.Sprintf("clustered_q%d_g%d_l%d", qubits, gates, locality), qubits)
	for i := 0; i < gates; i++ {
		if rng.Intn(3) == 0 {
			a := rng.Intn(qubits)
			off := rng.Intn(2*locality+1) - locality
			b := a + off
			for b == a || b < 0 || b >= qubits {
				off = rng.Intn(2*locality+1) - locality
				b = a + off
			}
			c.Append(circuit.NewCNOT(a, b))
		} else {
			c.Append(circuit.NewOneQubit(one[rng.Intn(len(one))], rng.Intn(qubits)))
		}
	}
	return c, nil
}
