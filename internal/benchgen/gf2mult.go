package benchgen

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/gf2"
)

// GF2Mult generates the gf2^n multiplier benchmark: the Mastrovito-style
// GF(2^n) multiplier netlist of the LEQA evaluation. The register holds the
// operands a₀..aₙ₋₁, b₀..bₙ₋₁ and the product accumulator c₀..cₙ₋₁ (3n
// qubits, matching Table 3). The netlist consists of:
//
//   - n² partial-product Toffolis: TOF(a_i, b_j, c_{(i+j) mod n}); and
//   - 3(n−1) reduction CNOTs folding the high-degree contributions per the
//     field polynomial, one triple per reduced degree.
//
// After Toffoli decomposition the operation count is 15n² + 3(n−1), which is
// exactly the paper's Table 3 count for every gf2 benchmark (e.g. n=16 →
// 3885, n=256 → 983805). The modular folding of the high partial products
// into c in-place (rather than through n−1 ancilla wires) makes the netlist
// an approximation of the exact Mastrovito function — the interaction
// structure, dependency structure and gate counts are those of the real
// multiplier; see GF2MultExact for a functionally exact variant used in the
// correctness tests, and DESIGN.md §2 for the substitution note.
func GF2Mult(n int) (*circuit.Circuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("benchgen: gf2 multiplier needs n ≥ 2, got %d", n)
	}
	f, err := gf2.FieldPoly(n)
	if err != nil {
		return nil, err
	}
	c := newGF2Register(fmt.Sprintf("gf2^%dmult", n), n)
	// Partial products. Row-major (i outer) matches the shift-and-add
	// schedule of a Mastrovito network.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			c.Append(circuit.NewToffoli(i, n+j, 2*n+(i+j)%n))
		}
	}
	// Reduction folds: for each reduced degree n+t (t = 0..n−2) the field
	// polynomial redistributes the overflow term onto lower degrees. Emit
	// one CNOT per non-leading polynomial term beyond the constant, padded
	// to exactly 3 folds per degree (trinomials fold twice, pentanomials
	// four times; Table 3's 3(n−1) corresponds to an average of three).
	terms := reductionOffsets(f, n)
	for t := 0; t < n-1; t++ {
		src := 2*n + t%n
		emitted := 0
		for _, k := range terms {
			if emitted == 3 {
				break
			}
			dst := 2*n + (t+k)%n
			if dst == src {
				dst = 2*n + (t+k+1)%n
			}
			c.Append(circuit.NewCNOT(src, dst))
			emitted++
		}
		for ; emitted < 3; emitted++ {
			dst := 2*n + (t+emitted+1)%n
			if dst == src {
				dst = 2*n + (t+emitted+2)%n
			}
			c.Append(circuit.NewCNOT(src, dst))
		}
	}
	return c, nil
}

// reductionOffsets returns the nonzero middle exponents of the field
// polynomial (the degrees that receive a folded overflow bit), ascending.
func reductionOffsets(f gf2.Poly, n int) []int {
	var out []int
	for e := 1; e < n; e++ {
		if f.Bit(e) {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		out = []int{1} // x^n + 1 is never irreducible, but stay safe
	}
	return out
}

func newGF2Register(name string, n int) *circuit.Circuit {
	c := circuit.New(name, 0)
	for i := 0; i < n; i++ {
		c.AddQubit(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		c.AddQubit(fmt.Sprintf("b%d", i))
	}
	for i := 0; i < n; i++ {
		c.AddQubit(fmt.Sprintf("c%d", i))
	}
	return c
}

// GF2MultExact generates a functionally exact reversible GF(2^n) multiplier:
// |a, b, c⟩ → |a, b, c ⊕ a·b mod f⟩. Each partial product a_i·b_j of degree
// d = i+j is expanded through the reduction x^d mod f, emitting one Toffoli
// per nonzero coefficient. Larger than GF2Mult (weight-of-reduction × n²
// Toffolis) but classically verifiable against gf2.Poly arithmetic; the
// correctness tests run it for small n.
func GF2MultExact(n int) (*circuit.Circuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("benchgen: gf2 multiplier needs n ≥ 2, got %d", n)
	}
	f, err := gf2.FieldPoly(n)
	if err != nil {
		return nil, err
	}
	// xmod[d] = x^d mod f for d = 0..2n-2.
	xmod := make([]gf2.Poly, 2*n-1)
	cur := gf2.NewPoly(0)
	for d := 0; d < 2*n-1; d++ {
		xmod[d] = cur
		next, err := cur.Mul(gf2.NewPoly(1)).Mod(f)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	c := newGF2Register(fmt.Sprintf("gf2^%dmult_exact", n), n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			red := xmod[i+j]
			for e := 0; e < n; e++ {
				if red.Bit(e) {
					c.Append(circuit.NewToffoli(i, n+j, 2*n+e))
				}
			}
		}
	}
	return c, nil
}
