package benchgen

import (
	"testing"

	"repro/internal/decompose"
	"repro/internal/sim"
)

func TestShorModExpFunctional(t *testing.T) {
	// |e, x, 0⟩ → |e, x, Σ_k e_k·(x·2^k) mod 2^n⟩ for all inputs at n=3,
	// rounds=2.
	const n, rounds = 3, 2
	c, err := ShorModExp(n, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	mask := uint64(1<<n - 1)
	for e := uint64(0); e < 1<<rounds; e++ {
		for x := uint64(0); x <= mask; x++ {
			in := e | x<<rounds
			reg := sim.BitsFromUint(c.NumQubits(), in)
			if err := reg.RunReversible(c); err != nil {
				t.Fatal(err)
			}
			out := reg.Uint()
			want := uint64(0)
			for k := 0; k < rounds; k++ {
				if e&(1<<uint(k)) != 0 {
					want = (want + x<<uint(k)) & mask
				}
			}
			gotAcc := (out >> uint(rounds+n)) & mask
			if gotAcc != want {
				t.Fatalf("e=%b x=%d: acc=%d, want %d", e, x, gotAcc, want)
			}
			if out&(1<<uint(rounds+n)-1) != in {
				t.Fatalf("e=%b x=%d: inputs clobbered", e, x)
			}
			if carry := out >> uint(rounds+2*n); carry != 0 {
				t.Fatalf("e=%b x=%d: carries dirty %b", e, x, carry)
			}
		}
	}
}

func TestShorModExpOpCountClosedForm(t *testing.T) {
	for _, tc := range []struct{ n, rounds int }{{3, 1}, {4, 2}, {5, 3}, {8, 4}} {
		c, err := ShorModExp(tc.n, tc.rounds)
		if err != nil {
			t.Fatal(err)
		}
		ft, err := decompose.ToFT(c, decompose.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := ShorModExpOpCount(tc.n, tc.rounds)
		if ft.NumGates() != want {
			t.Errorf("n=%d r=%d: %d FT ops, closed form says %d",
				tc.n, tc.rounds, ft.NumGates(), want)
		}
	}
}

func TestShorModExpGrowsWithRounds(t *testing.T) {
	prev := 0
	for r := 1; r <= 6; r++ {
		got := ShorModExpOpCount(8, r)
		if got <= prev {
			t.Errorf("rounds=%d: %d ops, not growing past %d", r, got, prev)
		}
		prev = got
	}
	// And with register width at fixed rounds.
	if ShorModExpOpCount(16, 4) <= ShorModExpOpCount(8, 4) {
		t.Error("op count should grow with register width")
	}
}

func TestShorModExpRejectsBadArgs(t *testing.T) {
	if _, err := ShorModExp(1, 1); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := ShorModExp(4, 0); err == nil {
		t.Error("rounds=0 should fail")
	}
}

func TestShorGeneratorSpec(t *testing.T) {
	// shor-<n>[x<rounds>] routes through Generate/GenerateFT like the
	// Table 3 families, so network requests can name it directly.
	c, err := Generate("shor-8")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ShorModExp(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != want.NumGates() || c.NumQubits() != want.NumQubits() {
		t.Fatalf("shor-8 = %d gates/%d qubits, want %d/%d",
			c.NumGates(), c.NumQubits(), want.NumGates(), want.NumQubits())
	}
	ft, err := GenerateFT("shor-8x2")
	if err != nil {
		t.Fatal(err)
	}
	if ft.Name != "shor-8x2" {
		t.Errorf("FT name = %q, want the spec echoed", ft.Name)
	}
	if !ft.IsFT() {
		t.Error("GenerateFT output contains non-FT gates")
	}
	if got, want := ft.NumGates(), ShorModExpOpCount(8, 2); got != want {
		t.Errorf("shor-8x2 FT ops = %d, want closed-form %d", got, want)
	}
	if _, err := Generate("shor-1"); err == nil {
		t.Error("shor-1 must be rejected (needs n ≥ 2)")
	}
}
