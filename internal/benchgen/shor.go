package benchgen

import (
	"fmt"

	"repro/internal/circuit"
)

// ShorModExp generates a Beckman-style modular-exponentiation workload — the
// circuit family behind the paper's §4.2 extrapolation ("Shor algorithm for
// a 1024-bit integer has 1.35×10^15 physical operations"). The netlist
// chains `rounds` doubly-controlled modular accumulations of an n-bit
// register, each built from the ModAdder carry-ripple blocks with one extra
// exponent control wire per round:
//
//	|e, x, acc⟩ → |e, x, acc + Σ_k e_k·(x·2^k)⟩  (mod 2^n)
//
// The real Shor circuit needs n rounds of n-bit modular multiplication
// (≈ n² controlled adders); this generator exposes (n, rounds) directly so
// scaling studies can sweep the operation count without building the full
// 1024-bit instance. ShorModExpOpCount predicts the post-decomposition size
// in closed form for the extrapolation experiment.
func ShorModExp(n, rounds int) (*circuit.Circuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("benchgen: shor modexp needs n ≥ 2 bits, got %d", n)
	}
	if rounds < 1 {
		return nil, fmt.Errorf("benchgen: shor modexp needs ≥ 1 round, got %d", rounds)
	}
	c := circuit.New(fmt.Sprintf("shor_n%d_r%d", n, rounds), 0)
	exp := make([]int, rounds)
	for k := range exp {
		exp[k] = c.AddQubit(fmt.Sprintf("e%d", k))
	}
	x := make([]int, n)
	for i := range x {
		x[i] = c.AddQubit(fmt.Sprintf("x%d", i))
	}
	acc := make([]int, n)
	for i := range acc {
		acc[i] = c.AddQubit(fmt.Sprintf("r%d", i))
	}
	carry := make([]int, n)
	for i := range carry {
		carry[i] = c.AddQubit(fmt.Sprintf("cy%d", i))
	}

	// Round k: acc += e_k · (x << k) mod 2^n — one doubly-controlled
	// ripple add per addend bit, like ModAdder but gated by the round's
	// exponent wire and shifted by k positions.
	for k := 0; k < rounds; k++ {
		for bit := 0; bit < n; bit++ {
			pos := bit + k
			if pos >= n {
				continue // shifted out of the register: mod 2^n discards it
			}
			// carry[pos] = e_k AND x_bit.
			c.Append(circuit.NewToffoli(exp[k], x[bit], carry[pos]))
			for j := pos; j < n-1; j++ {
				c.Append(circuit.NewToffoli(acc[j], carry[j], carry[j+1]))
			}
			for j := n - 2; j >= pos; j-- {
				c.Append(circuit.NewCNOT(carry[j+1], acc[j+1]))
				c.Append(circuit.NewToffoli(acc[j], carry[j], carry[j+1]))
			}
			c.Append(circuit.NewCNOT(carry[pos], acc[pos]))
			c.Append(circuit.NewToffoli(exp[k], x[bit], carry[pos]))
		}
	}
	return c, nil
}

// ShorModExpOpCount returns the exact FT operation count of
// ShorModExp(n, rounds) after Toffoli decomposition, in closed form: per
// (round, bit) block with p = bit+k < n, the block emits 2·(n−1−p)+2
// Toffolis and 1 + (n−1−p) CNOTs, every Toffoli lowering to 15 FT gates;
// blocks shifted out of the register emit nothing.
func ShorModExpOpCount(n, rounds int) int {
	total := 0
	for k := 0; k < rounds; k++ {
		for bit := 0; bit < n; bit++ {
			p := bit + k
			if p >= n {
				continue
			}
			tof := 2*(n-1-p) + 2
			cnot := 1 + (n - 1 - p)
			total += tof*15 + cnot
		}
	}
	return total
}
