package benchgen

import (
	"fmt"

	"repro/internal/circuit"
)

// Adder generates the <n>bitadder benchmark: the Vedral–Barenco–Ekert (VBE)
// ripple-carry adder computing |a, b, 0⟩ → |a, a+b mod 2^n, 0⟩ on 3n qubits
// (a₀..aₙ₋₁, b₀..bₙ₋₁ and n carry ancillas restored to zero) — 24 qubits at
// n = 8, matching Table 3's 8bitadder row. The netlist is the classic
// CARRY/SUM block structure; it is functionally verified against integer
// addition in the test suite.
func Adder(n int) (*circuit.Circuit, error) {
	if n < 1 {
		return nil, fmt.Errorf("benchgen: adder needs n ≥ 1, got %d", n)
	}
	c := circuit.New(fmt.Sprintf("%dbitadder", n), 0)
	a := make([]int, n)
	b := make([]int, n)
	carry := make([]int, n) // carry[i] holds the carry INTO bit i+1
	for i := 0; i < n; i++ {
		a[i] = c.AddQubit(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		b[i] = c.AddQubit(fmt.Sprintf("b%d", i))
	}
	for i := 0; i < n; i++ {
		carry[i] = c.AddQubit(fmt.Sprintf("cy%d", i))
	}

	// CARRY(cin, a, b, cout): cout ^= maj-propagation.
	carryFwd := func(cin, ai, bi, cout int) {
		c.Append(
			circuit.NewToffoli(ai, bi, cout),
			circuit.NewCNOT(ai, bi),
			circuit.NewToffoli(cin, bi, cout),
		)
	}
	carryInv := func(cin, ai, bi, cout int) {
		c.Append(
			circuit.NewToffoli(cin, bi, cout),
			circuit.NewCNOT(ai, bi),
			circuit.NewToffoli(ai, bi, cout),
		)
	}
	// SUM(cin, a, b): b ^= a ^ cin.
	sum := func(cin, ai, bi int) {
		c.Append(circuit.NewCNOT(ai, bi), circuit.NewCNOT(cin, bi))
	}

	if n == 1 {
		c.Append(circuit.NewCNOT(a[0], b[0]))
		return c, nil
	}
	// Forward carry chain. Bit 0 has no carry-in: a reduced block.
	c.Append(circuit.NewToffoli(a[0], b[0], carry[0]))
	for i := 1; i < n-1; i++ {
		carryFwd(carry[i-1], a[i], b[i], carry[i])
	}
	// Top bit: mod-2^n addition discards the final carry, so only the sum
	// of the most significant position is needed.
	sum(carry[n-2], a[n-1], b[n-1])
	// Ripple back down: undo each carry, then produce the sum bit.
	for i := n - 2; i >= 1; i-- {
		carryInv(carry[i-1], a[i], b[i], carry[i])
		sum(carry[i-1], a[i], b[i])
	}
	c.Append(circuit.NewToffoli(a[0], b[0], carry[0]))
	c.Append(circuit.NewCNOT(a[0], b[0]))
	return c, nil
}

// ModAdder generates the mod<2^bits>adder benchmark (the paper's
// mod1048576adder has bits = 20): a controlled modular accumulator in the
// style of Beckman-style modular-exponentiation adders. The circuit chains
// `bits` doubly-controlled plain adders — one per bit of the addend, each
// gated by an addend bit line and a global enable line through multi-control
// Toffolis — which is where the family's large ancilla count (Table 3:
// 1180 qubits) comes from after no-sharing decomposition.
func ModAdder(bits int) (*circuit.Circuit, error) {
	if bits < 2 {
		return nil, fmt.Errorf("benchgen: modadder needs ≥ 2 bits, got %d", bits)
	}
	modulus := uint64(1) << uint(bits)
	c := circuit.New(fmt.Sprintf("mod%dadder", modulus), 0)
	x := make([]int, bits)   // addend register
	acc := make([]int, bits) // accumulator
	carry := make([]int, bits)
	for i := range x {
		x[i] = c.AddQubit(fmt.Sprintf("x%d", i))
	}
	for i := range acc {
		acc[i] = c.AddQubit(fmt.Sprintf("r%d", i))
	}
	for i := range carry {
		carry[i] = c.AddQubit(fmt.Sprintf("cy%d", i))
	}
	enable := c.AddQubit("en")

	// For each addend bit x_k: conditionally add 2^k to the accumulator —
	// a controlled ripple increment of acc[k..bits-1] with controls
	// {enable, x_k} plus the propagating accumulator bits, using the carry
	// ancillas to bound MCT fan-in (compute carries, flip, uncompute).
	for k := 0; k < bits; k++ {
		// carry[k] = enable AND x_k: the carry into position k.
		c.Append(circuit.NewToffoli(enable, x[k], carry[k]))
		// Ripple the carries up: carry[j+1] = acc[j] AND carry[j].
		for j := k; j < bits-1; j++ {
			c.Append(circuit.NewToffoli(acc[j], carry[j], carry[j+1]))
		}
		// Walk back down: flip acc[j+1] with its carry, then uncompute
		// carry[j+1] while acc[j] still holds its pre-flip value.
		for j := bits - 2; j >= k; j-- {
			c.Append(circuit.NewCNOT(carry[j+1], acc[j+1]))
			c.Append(circuit.NewToffoli(acc[j], carry[j], carry[j+1]))
		}
		c.Append(circuit.NewCNOT(carry[k], acc[k]))
		// Uncompute carry[k].
		c.Append(circuit.NewToffoli(enable, x[k], carry[k]))
	}
	return c, nil
}
