package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/benchgen"
	"repro/internal/fabric"
	"repro/internal/queuemodel"
	"repro/internal/stats"
	"repro/internal/tsp"
	"repro/leqa"
)

// The ablations sweep model configurations over fixed circuits. Each sweep
// evaluates its configurations concurrently via forEach, collects results
// in configuration order, and renders sequentially; the estimator calls
// route through the public leqa API, so repeated configurations on the same
// fabric hit the memoized zone model.

func mustChannel(capacity int, dUncong float64) queuemodel.Channel {
	ch, err := queuemodel.NewChannel(capacity, dUncong)
	if err != nil {
		// Callers pass validated parameters; a failure here is a
		// programming error.
		panic(err)
	}
	return ch
}

// AblationTruncation sweeps the E[S_q] truncation limit on one benchmark and
// reports how L_CNOT and the final estimate move — the paper's claim that 20
// terms suffice.
func AblationTruncation(w io.Writer, name string, p fabric.Params) error {
	ft, err := benchgen.GenerateFT(name)
	if err != nil {
		return err
	}
	terms := []int{1, 2, 5, 10, 20, 50, -1}
	results := make([]*leqa.EstimateResult, len(terms))
	err = forEach(len(terms), 0, func(i int) error {
		res, err := leqa.EstimateWith(ft, p, leqa.EstimateOptions{Truncation: terms[i]})
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Truncation ablation on %s (Q=%d qubits)\n", name, ft.NumQubits())
	fmt.Fprintf(w, "%8s %14s %14s\n", "terms", "L_CNOT(µs)", "estimate(s)")
	var ref float64
	for i, t := range terms {
		label := fmt.Sprintf("%d", t)
		if t == -1 {
			label = "all"
			ref = results[i].EstimatedLatency
		}
		fmt.Fprintf(w, "%8s %14.2f %14.4f\n", label, results[i].LCNOTAvg, results[i].EstimatedLatency/1e6)
	}
	if ref > 0 {
		res, err := leqa.Estimate(ft, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "20-term deviation from exact: %.4f%%\n",
			stats.AbsErrorPct(ref, res.EstimatedLatency))
	}
	return nil
}

// AblationCongestion compares the full estimator against the
// congestion-model-disabled variant across the small benchmarks.
func AblationCongestion(w io.Writer, names []string, p fabric.Params) error {
	type pair struct{ on, off *leqa.EstimateResult }
	results := make([]pair, len(names))
	err := forEach(len(names), 0, func(i int) error {
		ft, err := benchgen.GenerateFT(names[i])
		if err != nil {
			return err
		}
		rOn, err := leqa.Estimate(ft, p)
		if err != nil {
			return err
		}
		rOff, err := leqa.EstimateWith(ft, p, leqa.EstimateOptions{DisableCongestion: true})
		if err != nil {
			return err
		}
		results[i] = pair{on: rOn, off: rOff}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Congestion-model ablation (LEQA with/without Eq. 8 queueing)")
	fmt.Fprintf(w, "%-17s %12s %12s %9s\n", "Benchmark", "with(s)", "without(s)", "delta(%)")
	for i, name := range names {
		rOn, rOff := results[i].on, results[i].off
		delta := stats.AbsErrorPct(rOn.EstimatedLatency, rOff.EstimatedLatency)
		fmt.Fprintf(w, "%-17s %12.4f %12.4f %9.3f\n",
			name, rOn.EstimatedLatency/1e6, rOff.EstimatedLatency/1e6, delta)
	}
	return nil
}

// AblationPlacement compares QSPR placement strategies (clustered vs spread
// vs row-major) on the given benchmarks — a design-choice check for the
// baseline mapper.
func AblationPlacement(w io.Writer, names []string, p fabric.Params) error {
	strategies := []leqa.MapOptions{
		{Placement: leqa.PlaceClustered}, {Placement: leqa.PlaceSpaced},
		{Placement: leqa.PlaceSpread}, {Placement: leqa.PlaceRowMajor},
	}
	// One flat pool over the names × strategies cross product keeps the
	// number of concurrent detailed mappers at a single GOMAXPROCS bound.
	circuits := make([]*leqa.Circuit, len(names))
	for i, name := range names {
		ft, err := benchgen.GenerateFT(name)
		if err != nil {
			return err
		}
		circuits[i] = ft
	}
	results := make([][]*leqa.MapResult, len(names))
	for i := range results {
		results[i] = make([]*leqa.MapResult, len(strategies))
	}
	err := forEach(len(names)*len(strategies), 0, func(k int) error {
		i, j := k/len(strategies), k%len(strategies)
		res, err := leqa.MapActualWith(circuits[i], p, strategies[j])
		if err != nil {
			return err
		}
		results[i][j] = res
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "QSPR placement ablation (actual latency, seconds)")
	fmt.Fprintf(w, "%-17s %12s %12s %12s %12s\n", "Benchmark", "clustered", "spaced", "spread", "rowmajor")
	for i, name := range names {
		fmt.Fprintf(w, "%-17s", name)
		for _, res := range results[i] {
			fmt.Fprintf(w, " %12.4f", res.Latency/1e6)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// AblationMeeting compares the greedy CNOT meeting-point policy against
// midpoint meeting in QSPR.
func AblationMeeting(w io.Writer, names []string, p fabric.Params) error {
	type pair struct{ greedy, midpoint *leqa.MapResult }
	results := make([]pair, len(names))
	err := forEach(len(names), 0, func(i int) error {
		ft, err := benchgen.GenerateFT(names[i])
		if err != nil {
			return err
		}
		rg, err := leqa.MapActualWith(ft, p, leqa.MapOptions{})
		if err != nil {
			return err
		}
		rm, err := leqa.MapActualWith(ft, p, leqa.MapOptions{MidpointMeeting: true})
		if err != nil {
			return err
		}
		results[i] = pair{greedy: rg, midpoint: rm}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "QSPR CNOT meeting-policy ablation (actual latency, seconds)")
	fmt.Fprintf(w, "%-17s %12s %12s\n", "Benchmark", "greedy", "midpoint")
	for i, name := range names {
		fmt.Fprintf(w, "%-17s %12.4f %12.4f\n",
			name, results[i].greedy.Latency/1e6, results[i].midpoint.Latency/1e6)
	}
	return nil
}

// AblationTSPBound validates the Eq. 15 closed form against exact Held–Karp
// Monte Carlo: for small partner counts, the estimated Hamiltonian path in a
// unit zone vs the measured expectation.
func AblationTSPBound(w io.Writer, seed int64) error {
	fmt.Fprintln(w, "Eq. 15 closed form vs exact Held-Karp Monte Carlo (unit square)")
	fmt.Fprintf(w, "%4s %12s %12s %9s\n", "m", "Eq.15", "MonteCarlo", "dev(%)")
	rng := rand.New(rand.NewSource(seed))
	for _, m := range []int{2, 3, 5, 8, 11} {
		closed := tsp.ExpectedHamiltonianPath(m, 1)
		mc, err := tsp.MonteCarloPathLength(m+1, 200, rng)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%4d %12.4f %12.4f %9.2f\n", m, closed, mc, stats.AbsErrorPct(mc, closed))
	}
	fmt.Fprintln(w, "(Eq. 13-14 are asymptotic; small-m deviation is expected and absorbed by 𝓋.)")
	return nil
}

// AblationChannelCapacity sweeps Nc and reports both tools' latencies on one
// benchmark — how sensitive the fabric is to channel width.
func AblationChannelCapacity(w io.Writer, name string, p fabric.Params) error {
	ft, err := benchgen.GenerateFT(name)
	if err != nil {
		return err
	}
	ncs := []int{1, 2, 5, 10, 20}
	type pair struct {
		act *leqa.MapResult
		est *leqa.EstimateResult
	}
	results := make([]pair, len(ncs))
	err = forEach(len(ncs), 0, func(i int) error {
		q := p.Clone()
		q.ChannelCapacity = ncs[i]
		act, err := leqa.MapActual(ft, q)
		if err != nil {
			return err
		}
		est, err := leqa.Estimate(ft, q)
		if err != nil {
			return err
		}
		results[i] = pair{act: act, est: est}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Channel-capacity sweep on %s\n", name)
	fmt.Fprintf(w, "%4s %14s %14s\n", "Nc", "QSPR act(s)", "LEQA est(s)")
	for i, nc := range ncs {
		fmt.Fprintf(w, "%4d %14.4f %14.4f\n",
			nc, results[i].act.Latency/1e6, results[i].est.EstimatedLatency/1e6)
	}
	return nil
}

// FabricSizeSweep reruns LEQA over a range of fabric sizes — the use case
// the paper calls out ("this value can be changed to find the optimal size
// for the fabric"). The study runs as one SweepGrid batch: the circuit is
// analyzed once and only the fabric-dependent zone model differs per size,
// with each distinct grid memoized, so rerunning the sweep on another
// circuit with the same interaction profile is nearly free.
func FabricSizeSweep(w io.Writer, name string, p fabric.Params, sizes []int) error {
	ft, err := benchgen.GenerateFT(name)
	if err != nil {
		return err
	}
	// Fabrics that cannot hold the register render as "too small" rows and
	// never enter the batch.
	fits := make([]bool, len(sizes))
	var paramSets []fabric.Params
	for i, s := range sizes {
		g := fabric.Grid{Width: s, Height: s}
		if g.Area() < ft.NumQubits() {
			continue
		}
		fits[i] = true
		q := p.Clone()
		q.Grid = g
		paramSets = append(paramSets, q)
	}
	cells, err := leqa.SweepGrid(context.Background(), []*leqa.Circuit{ft}, paramSets)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fabric-size sweep on %s (LEQA estimate per size)\n", name)
	fmt.Fprintf(w, "%8s %14s %12s\n", "fabric", "estimate(s)", "L_CNOT(µs)")
	next := 0
	for i, s := range sizes {
		if !fits[i] {
			fmt.Fprintf(w, "%5dx%-3d %14s %12s\n", s, s, "too small", "-")
			continue
		}
		cell := cells[next]
		next++
		if cell.Err != nil {
			return cell.Err
		}
		fmt.Fprintf(w, "%5dx%-3d %14.4f %12.1f\n", s, s, cell.Result.EstimatedLatency/1e6, cell.Result.LCNOTAvg)
	}
	return nil
}
