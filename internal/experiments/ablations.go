package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/benchgen"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/qspr"
	"repro/internal/queuemodel"
	"repro/internal/stats"
	"repro/internal/tsp"
)

func mustChannel(capacity int, dUncong float64) queuemodel.Channel {
	ch, err := queuemodel.NewChannel(capacity, dUncong)
	if err != nil {
		// Callers pass validated parameters; a failure here is a
		// programming error.
		panic(err)
	}
	return ch
}

// AblationTruncation sweeps the E[S_q] truncation limit on one benchmark and
// reports how L_CNOT and the final estimate move — the paper's claim that 20
// terms suffice.
func AblationTruncation(w io.Writer, name string, p fabric.Params) error {
	ft, err := benchgen.GenerateFT(name)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Truncation ablation on %s (Q=%d qubits)\n", name, ft.NumQubits())
	fmt.Fprintf(w, "%8s %14s %14s\n", "terms", "L_CNOT(µs)", "estimate(s)")
	var ref float64
	for _, terms := range []int{1, 2, 5, 10, 20, 50, -1} {
		est, err := core.New(p, core.Options{Truncation: terms})
		if err != nil {
			return err
		}
		res, err := est.Estimate(ft)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("%d", terms)
		if terms == -1 {
			label = "all"
			ref = res.EstimatedLatency
		}
		fmt.Fprintf(w, "%8s %14.2f %14.4f\n", label, res.LCNOTAvg, res.EstimatedLatency/1e6)
	}
	if ref > 0 {
		est, _ := core.New(p, core.Options{})
		res, err := est.Estimate(ft)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "20-term deviation from exact: %.4f%%\n",
			stats.AbsErrorPct(ref, res.EstimatedLatency))
	}
	return nil
}

// AblationCongestion compares the full estimator against the
// congestion-model-disabled variant across the small benchmarks.
func AblationCongestion(w io.Writer, names []string, p fabric.Params) error {
	fmt.Fprintln(w, "Congestion-model ablation (LEQA with/without Eq. 8 queueing)")
	fmt.Fprintf(w, "%-17s %12s %12s %9s\n", "Benchmark", "with(s)", "without(s)", "delta(%)")
	for _, name := range names {
		ft, err := benchgen.GenerateFT(name)
		if err != nil {
			return err
		}
		on, err := core.New(p, core.Options{})
		if err != nil {
			return err
		}
		off, err := core.New(p, core.Options{DisableCongestion: true})
		if err != nil {
			return err
		}
		rOn, err := on.Estimate(ft)
		if err != nil {
			return err
		}
		rOff, err := off.Estimate(ft)
		if err != nil {
			return err
		}
		delta := stats.AbsErrorPct(rOn.EstimatedLatency, rOff.EstimatedLatency)
		fmt.Fprintf(w, "%-17s %12.4f %12.4f %9.3f\n",
			name, rOn.EstimatedLatency/1e6, rOff.EstimatedLatency/1e6, delta)
	}
	return nil
}

// AblationPlacement compares QSPR placement strategies (clustered vs spread
// vs row-major) on the given benchmarks — a design-choice check for the
// baseline mapper.
func AblationPlacement(w io.Writer, names []string, p fabric.Params) error {
	fmt.Fprintln(w, "QSPR placement ablation (actual latency, seconds)")
	fmt.Fprintf(w, "%-17s %12s %12s %12s %12s\n", "Benchmark", "clustered", "spaced", "spread", "rowmajor")
	strategies := []qspr.Placement{qspr.PlaceClustered, qspr.PlaceSpaced, qspr.PlaceSpread, qspr.PlaceRowMajor}
	for _, name := range names {
		ft, err := benchgen.GenerateFT(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-17s", name)
		for _, pl := range strategies {
			m, err := qspr.New(p, qspr.Options{Placement: pl})
			if err != nil {
				return err
			}
			res, err := m.Map(ft)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12.4f", res.Latency/1e6)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// AblationMeeting compares the greedy CNOT meeting-point policy against
// midpoint meeting in QSPR.
func AblationMeeting(w io.Writer, names []string, p fabric.Params) error {
	fmt.Fprintln(w, "QSPR CNOT meeting-policy ablation (actual latency, seconds)")
	fmt.Fprintf(w, "%-17s %12s %12s\n", "Benchmark", "greedy", "midpoint")
	for _, name := range names {
		ft, err := benchgen.GenerateFT(name)
		if err != nil {
			return err
		}
		greedy, err := qspr.New(p, qspr.Options{})
		if err != nil {
			return err
		}
		mid, err := qspr.New(p, qspr.Options{MidpointMeeting: true})
		if err != nil {
			return err
		}
		rg, err := greedy.Map(ft)
		if err != nil {
			return err
		}
		rm, err := mid.Map(ft)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-17s %12.4f %12.4f\n", name, rg.Latency/1e6, rm.Latency/1e6)
	}
	return nil
}

// AblationTSPBound validates the Eq. 15 closed form against exact Held–Karp
// Monte Carlo: for small partner counts, the estimated Hamiltonian path in a
// unit zone vs the measured expectation.
func AblationTSPBound(w io.Writer, seed int64) error {
	fmt.Fprintln(w, "Eq. 15 closed form vs exact Held-Karp Monte Carlo (unit square)")
	fmt.Fprintf(w, "%4s %12s %12s %9s\n", "m", "Eq.15", "MonteCarlo", "dev(%)")
	rng := rand.New(rand.NewSource(seed))
	for _, m := range []int{2, 3, 5, 8, 11} {
		closed := tsp.ExpectedHamiltonianPath(m, 1)
		mc, err := tsp.MonteCarloPathLength(m+1, 200, rng)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%4d %12.4f %12.4f %9.2f\n", m, closed, mc, stats.AbsErrorPct(mc, closed))
	}
	fmt.Fprintln(w, "(Eq. 13-14 are asymptotic; small-m deviation is expected and absorbed by 𝓋.)")
	return nil
}

// AblationChannelCapacity sweeps Nc and reports both tools' latencies on one
// benchmark — how sensitive the fabric is to channel width.
func AblationChannelCapacity(w io.Writer, name string, p fabric.Params) error {
	ft, err := benchgen.GenerateFT(name)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Channel-capacity sweep on %s\n", name)
	fmt.Fprintf(w, "%4s %14s %14s\n", "Nc", "QSPR act(s)", "LEQA est(s)")
	for _, nc := range []int{1, 2, 5, 10, 20} {
		q := p.Clone()
		q.ChannelCapacity = nc
		m, err := qspr.New(q, qspr.Options{})
		if err != nil {
			return err
		}
		act, err := m.Map(ft)
		if err != nil {
			return err
		}
		e, err := core.New(q, core.Options{})
		if err != nil {
			return err
		}
		est, err := e.Estimate(ft)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%4d %14.4f %14.4f\n", nc, act.Latency/1e6, est.EstimatedLatency/1e6)
	}
	return nil
}

// FabricSizeSweep reruns LEQA over a range of fabric sizes — the use case
// the paper calls out ("this value can be changed to find the optimal size
// for the fabric").
func FabricSizeSweep(w io.Writer, name string, p fabric.Params, sizes []int) error {
	ft, err := benchgen.GenerateFT(name)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fabric-size sweep on %s (LEQA estimate per size)\n", name)
	fmt.Fprintf(w, "%8s %14s %12s\n", "fabric", "estimate(s)", "L_CNOT(µs)")
	for _, s := range sizes {
		q := p.Clone()
		q.Grid = fabric.Grid{Width: s, Height: s}
		if q.Grid.Area() < ft.NumQubits() {
			fmt.Fprintf(w, "%5dx%-3d %14s %12s\n", s, s, "too small", "-")
			continue
		}
		e, err := core.New(q, core.Options{})
		if err != nil {
			return err
		}
		res, err := e.Estimate(ft)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%5dx%-3d %14.4f %12.1f\n", s, s, res.EstimatedLatency/1e6, res.LCNOTAvg)
	}
	return nil
}
