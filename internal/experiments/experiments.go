// Package experiments regenerates every table and figure of the LEQA paper
// (see DESIGN.md §4 for the experiment index). Each function renders a
// formatted report to an io.Writer; cmd/experiments exposes them on the
// command line and bench_test.go drives the same code paths under
// testing.B.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/benchgen"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/pool"
	"repro/internal/qspr"
	"repro/internal/stats"
)

// forEach runs fn(i) for every i in [0, n) across a bounded worker pool,
// aborting the feed on the first failure (a bad benchmark name must not
// cost hours of detailed mapping on the rest of the suite). Callers store
// per-index results themselves, so output stays in input order regardless
// of which worker ran what. workers ≤ 0 selects GOMAXPROCS.
func forEach(n, workers int, fn func(i int) error) error {
	return pool.ForEach(n, workers, true, fn)
}

// Row is one benchmark's full measurement set (Table 2 + Table 3 columns).
type Row struct {
	Name        string
	Qubits      int
	Operations  int
	ActualSec   float64
	EstimateSec float64
	ErrorPct    float64
	QSPRRuntime time.Duration
	LEQARuntime time.Duration
	Speedup     float64
}

// RunBenchmark generates the named benchmark, runs both tools, and returns
// the combined row.
func RunBenchmark(name string, p fabric.Params) (Row, error) {
	ft, err := benchgen.GenerateFT(name)
	if err != nil {
		return Row{}, err
	}
	return RunCircuit(ft, p)
}

// RunCircuit measures one prepared FT circuit.
func RunCircuit(ft *circuit.Circuit, p fabric.Params) (Row, error) {
	mapper, err := qspr.New(p, qspr.Options{})
	if err != nil {
		return Row{}, err
	}
	t0 := time.Now()
	act, err := mapper.Map(ft)
	if err != nil {
		return Row{}, fmt.Errorf("qspr %q: %w", ft.Name, err)
	}
	qsprDur := time.Since(t0)

	est, err := core.New(p, core.Options{})
	if err != nil {
		return Row{}, err
	}
	t1 := time.Now()
	res, err := est.Estimate(ft)
	if err != nil {
		return Row{}, fmt.Errorf("leqa %q: %w", ft.Name, err)
	}
	leqaDur := time.Since(t1)

	row := Row{
		Name:        ft.Name,
		Qubits:      ft.NumQubits(),
		Operations:  ft.NumGates(),
		ActualSec:   act.Latency / 1e6,
		EstimateSec: res.EstimatedLatency / 1e6,
		ErrorPct:    stats.AbsErrorPct(act.Latency, res.EstimatedLatency),
		QSPRRuntime: qsprDur,
		LEQARuntime: leqaDur,
	}
	if leqaDur > 0 {
		row.Speedup = float64(qsprDur) / float64(leqaDur)
	}
	return row, nil
}

// RunSuite measures every named benchmark, fanning the per-benchmark work
// (generation, QSPR mapping, LEQA estimation) across a worker pool. Rows
// come back in input order. Errors abort; the paper's suite must run whole.
// workers ≤ 0 selects GOMAXPROCS; note that per-row runtime columns measure
// wall time under whatever contention the pool creates, so use workers = 1
// when clean Table 3 runtime numbers matter more than suite throughput.
func RunSuite(names []string, p fabric.Params, workers int, progress io.Writer) ([]Row, error) {
	rows := make([]Row, len(names))
	var mu sync.Mutex
	err := forEach(len(names), workers, func(i int) error {
		row, err := RunBenchmark(names[i], p)
		if err != nil {
			return err
		}
		rows[i] = row
		if progress != nil {
			mu.Lock()
			fmt.Fprintf(progress, "finished %s (err %.2f%%)\n", names[i], row.ErrorPct)
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table1 prints the physical parameter table.
func Table1(w io.Writer, p fabric.Params) {
	fmt.Fprintln(w, "Table 1. List of physical parameters of the TQA")
	fmt.Fprintln(w, "Parameter        Value")
	fmt.Fprintln(w, "---------        -----")
	type row struct {
		name string
		gt   circuit.GateType
	}
	order := []row{
		{"d_H", circuit.H}, {"d_T,d_T†", circuit.T},
		{"d_X,d_Y,d_Z", circuit.X}, {"d_S,d_S†", circuit.S},
	}
	for _, r := range order {
		d, err := p.DelayOf(r.gt)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "%-16s %.0fµs\n", r.name, d)
	}
	fmt.Fprintf(w, "%-16s %.0fµs\n", "d_CNOT", p.DCNOT)
	fmt.Fprintf(w, "%-16s %d\n", "N_c", p.ChannelCapacity)
	fmt.Fprintf(w, "%-16s %g\n", "v", p.QubitSpeed)
	fmt.Fprintf(w, "%-16s %d = %dx%d\n", "A = a x b", p.Grid.Area(), p.Grid.Width, p.Grid.Height)
	fmt.Fprintf(w, "%-16s %.0fµs\n", "T_move", p.TMove)
}

// Table2 prints the accuracy comparison (actual vs estimated latency) with
// the paper's reference columns alongside.
func Table2(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "Table 2. Actual (QSPR) vs estimated (LEQA) latency")
	fmt.Fprintf(w, "%-17s %12s %12s %8s | %12s %12s %8s\n",
		"Benchmark", "Actual(s)", "Estim.(s)", "Err(%)", "paperAct(s)", "paperEst(s)", "pErr(%)")
	var errs []float64
	for _, r := range rows {
		p, ok := benchgen.Paper[r.Name]
		paperCols := fmt.Sprintf("%12s %12s %8s", "-", "-", "-")
		if ok {
			paperCols = fmt.Sprintf("%12.3e %12.3e %8.2f", p.ActualSec, p.EstimateSec, p.ErrorPct)
		}
		fmt.Fprintf(w, "%-17s %12.3e %12.3e %8.2f | %s\n",
			r.Name, r.ActualSec, r.EstimateSec, r.ErrorPct, paperCols)
		errs = append(errs, r.ErrorPct)
	}
	fmt.Fprintf(w, "average error: %.2f%%   max error: %.2f%%   (paper: 2.11%% avg, 8.29%% max)\n",
		stats.Mean(errs), stats.Max(errs))
}

// Table3 prints workload sizes, tool runtimes, and speedups.
func Table3(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "Table 3. Benchmark sizes and runtime comparison")
	fmt.Fprintf(w, "%-17s %7s %10s %12s %12s %9s | %7s %10s %9s\n",
		"Benchmark", "Qubits", "Ops", "QSPR(s)", "LEQA(s)", "Speedup", "pQubit", "pOps", "pSpeedup")
	for _, r := range rows {
		p, ok := benchgen.Paper[r.Name]
		paperCols := fmt.Sprintf("%7s %10s %9s", "-", "-", "-")
		if ok {
			paperCols = fmt.Sprintf("%7d %10d %9.1f", p.Qubits, p.Operations,
				paperSpeedup(r.Name))
		}
		fmt.Fprintf(w, "%-17s %7d %10d %12.4f %12.4f %9.1f | %s\n",
			r.Name, r.Qubits, r.Operations,
			r.QSPRRuntime.Seconds(), r.LEQARuntime.Seconds(), r.Speedup, paperCols)
	}
}

// paperSpeedup recomputes the paper's Table 3 speedup column.
func paperSpeedup(name string) float64 {
	switch name {
	case "8bitadder":
		return 8.2
	case "gf2^16mult":
		return 10.3
	case "hwb15ps":
		return 10.7
	case "hwb16ps":
		return 11.5
	case "gf2^18mult":
		return 12.6
	case "gf2^19mult":
		return 14.2
	case "gf2^20mult":
		return 17.1
	case "ham15":
		return 16.6
	case "hwb20ps":
		return 13.9
	case "hwb50ps":
		return 26.3
	case "gf2^50mult":
		return 42.5
	case "mod1048576adder":
		return 52.8
	case "gf2^64mult":
		return 63.8
	case "hwb100ps":
		return 46.4
	case "gf2^100mult":
		return 76.0
	case "hwb200ps":
		return 72.9
	case "gf2^128mult":
		return 78.3
	case "gf2^256mult":
		return 114.7
	}
	return 0
}

// Extrapolation fits runtime-vs-operation-count power laws for both tools
// (the paper's §4.2 scaling claim: QSPR ~ n^1.5, LEQA ~ n) and extrapolates
// to the Shor-1024 workload of 1.35·10^10 logical operations.
func Extrapolation(w io.Writer, rows []Row) error {
	var ops, qsprSec, leqaSec []float64
	for _, r := range rows {
		if r.QSPRRuntime <= 0 || r.LEQARuntime <= 0 {
			continue
		}
		ops = append(ops, float64(r.Operations))
		qsprSec = append(qsprSec, r.QSPRRuntime.Seconds())
		leqaSec = append(leqaSec, r.LEQARuntime.Seconds())
	}
	kQ, cQ, r2Q, err := stats.PowerFit(ops, qsprSec)
	if err != nil {
		return err
	}
	kL, cL, r2L, err := stats.PowerFit(ops, leqaSec)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Runtime scaling (log-log power-law fit; paper: QSPR degree ~1.5, LEQA ~1):")
	fmt.Fprintf(w, "  QSPR: runtime ~ ops^%.2f (R²=%.3f)\n", kQ, r2Q)
	fmt.Fprintf(w, "  LEQA: runtime ~ ops^%.2f (R²=%.3f)\n", kL, r2L)
	const shorOps = 1.35e10
	fmt.Fprintf(w, "Extrapolated to Shor-1024 (%.2e logical ops):\n", shorOps)
	fmt.Fprintf(w, "  QSPR: %s   (paper: ~2 years)\n",
		stats.HumanDuration(stats.Extrapolate(kQ, cQ, shorOps)))
	fmt.Fprintf(w, "  LEQA: %s   (paper: 16.5 hours)\n",
		stats.HumanDuration(stats.Extrapolate(kL, cL, shorOps)))
	return nil
}

// Figure1 renders the 3×3 TQA sketch of the paper's Fig. 1 in ASCII.
func Figure1(w io.Writer) {
	fmt.Fprintln(w, "Figure 1. A 3x3 tiled quantum architecture (TQA)")
	row := "+-----+  +-----+  +-----+"
	ulb := "| ULB |--| ULB |--| ULB |"
	for i := 0; i < 3; i++ {
		fmt.Fprintln(w, row)
		fmt.Fprintln(w, ulb)
		fmt.Fprintln(w, row)
		if i < 2 {
			fmt.Fprintln(w, "   |        |        |   ")
		}
	}
	fmt.Fprintln(w, "ULBs separated by routing channels; junctions are quantum crossbars.")
}

// Figure2 prints the ham3 circuit and its QODG (paper Fig. 2) in DOT form
// via the qodg package; here we emit the gate list and summary.
func Figure2(w io.Writer) error {
	raw := benchgen.Ham3()
	ft, err := benchgen.GenerateFT("ham3")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 2(a). ham3 synthesized circuit (reversible gates):")
	for i, g := range raw.Gates {
		fmt.Fprintf(w, "  %2d: %s\n", i+1, g.String())
	}
	fmt.Fprintf(w, "FT-decomposed: %d operations (%s)\n", ft.NumGates(), ft.CountsString())
	fmt.Fprintln(w, "Figure 2(b): run `qodgdump ham3` for the DOT graph (19 op nodes + start/end).")
	return nil
}

// Figure3 renders the presence-zone coverage field: the expected number of
// zones covering each ULB for a synthetic 5-zone example, like the paper's
// Fig. 3 congestion illustration.
func Figure3(w io.Writer, p fabric.Params) {
	fmt.Fprintln(w, "Figure 3. Expected zone coverage per ULB (5 random zones, zone side 4)")
	grid := fabric.Grid{Width: 20, Height: 10}
	const zones = 5
	const side = 4
	for y := 1; y <= grid.Height; y++ {
		for x := 1; x <= grid.Width; x++ {
			pxy := core.CoverageProbability(grid, side, x, y)
			expect := pxy * zones
			fmt.Fprintf(w, "%c", shade(expect))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "legend: ' ' <0.1, '.' <0.3, ':' <0.6, '*' <1.0, '#' ≥1.0 expected zones")
}

func shade(v float64) byte {
	switch {
	case v < 0.1:
		return ' '
	case v < 0.3:
		return '.'
	case v < 0.6:
		return ':'
	case v < 1.0:
		return '*'
	default:
		return '#'
	}
}

// Figure4 dumps the P_{x,y} profile along a fabric row (the Eq. 5 geometry
// of the paper's Fig. 4).
func Figure4(w io.Writer, p fabric.Params) {
	fmt.Fprintln(w, "Figure 4. P_{x,y} along the middle row (Eq. 5), zone side ⌈√B⌉ = 4, 60x60 fabric")
	grid := p.Grid
	y := grid.Height / 2
	for x := 1; x <= grid.Width; x += 4 {
		pxy := core.CoverageProbability(grid, 4, x, y)
		fmt.Fprintf(w, "  x=%2d  P=%.5f  %s\n", x, pxy, bar(pxy, 0.006))
	}
}

func bar(v, unit float64) string {
	n := int(v / unit)
	if n > 60 {
		n = 60
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '='
	}
	return string(out)
}

// Figure5 prints the M/M/1 channel-delay curve d_q vs q (Eq. 8, the
// paper's Fig. 5 model).
func Figure5(w io.Writer, p fabric.Params, dUncong float64) {
	fmt.Fprintf(w, "Figure 5. Channel delay d_q vs queue population q (M/M/1, Nc=%d, d_uncong=%.0fµs)\n",
		p.ChannelCapacity, dUncong)
	ch := mustChannel(p.ChannelCapacity, dUncong)
	for q := 0; q <= 15; q++ {
		d := ch.Delay(q)
		state := "uncongested"
		if q > p.ChannelCapacity {
			state = "congested"
		}
		fmt.Fprintf(w, "  q=%2d  d_q=%8.1fµs  %-12s %s\n", q, d, state, bar(d, dUncong/8))
	}
}

// SortRowsByOps orders rows the way Table 3 is presented.
func SortRowsByOps(rows []Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Operations < rows[j].Operations })
}
