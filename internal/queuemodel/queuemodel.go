// Package queuemodel implements the M/M/1 routing-channel congestion model
// of LEQA §3.1 (Fig. 5, Eq. 8–11). A routing channel with capacity Nc is
// uncongested while at most Nc qubits inhabit it; beyond that, qubits
// pipeline through and each one's latency grows with the queue population.
//
// The paper works the model backwards: it observes the average queue length
// L_q = q (the number of co-located qubits from the coverage model), takes
// the service rate µ = Nc/d_uncong, solves Eq. 9 for the arrival rate λ
// (Eq. 10), and applies Little's law to obtain the per-qubit waiting time
// W_avg = (1+q)·d_uncong/Nc (Eq. 11). Eq. 8 then selects between the
// uncongested constant d_uncong and W_avg.
package queuemodel

import (
	"errors"
	"fmt"
)

// Channel models one routing channel.
type Channel struct {
	// Capacity is Nc, the number of qubits the channel carries without
	// queueing. Must be ≥ 1.
	Capacity int
	// DUncong is d_uncong: the average routing latency of a qubit in an
	// average-size presence zone when channels are uncongested. Must be
	// > 0 for the queue formulas to be meaningful.
	DUncong float64
}

// NewChannel validates and constructs a channel model.
func NewChannel(capacity int, dUncong float64) (Channel, error) {
	if capacity < 1 {
		return Channel{}, fmt.Errorf("queuemodel: capacity %d < 1", capacity)
	}
	if dUncong <= 0 {
		return Channel{}, fmt.Errorf("queuemodel: d_uncong %.6g must be positive", dUncong)
	}
	return Channel{Capacity: capacity, DUncong: dUncong}, nil
}

// ServiceRate returns µ = Nc / d_uncong.
func (c Channel) ServiceRate() float64 { return float64(c.Capacity) / c.DUncong }

// ArrivalRate solves Eq. 10 for λ given the observed average queue length
// q: λ = q·Nc / ((1+q)·d_uncong).
func (c Channel) ArrivalRate(q int) float64 {
	fq := float64(q)
	return fq * float64(c.Capacity) / ((1 + fq) * c.DUncong)
}

// QueueLength evaluates Eq. 9, L_q = λ/(µ−λ), for an arbitrary arrival rate.
// It errors when λ ≥ µ (unstable queue).
func (c Channel) QueueLength(lambda float64) (float64, error) {
	mu := c.ServiceRate()
	if lambda >= mu {
		return 0, errors.New("queuemodel: arrival rate ≥ service rate; queue diverges")
	}
	if lambda < 0 {
		return 0, errors.New("queuemodel: negative arrival rate")
	}
	return lambda / (mu - lambda), nil
}

// WaitingTime applies Little's law (Eq. 11) for queue population q:
// W_avg = (1+q)·d_uncong / Nc.
func (c Channel) WaitingTime(q int) float64 {
	return (1 + float64(q)) * c.DUncong / float64(c.Capacity)
}

// Delay evaluates Eq. 8: the average routing latency d_q of a qubit when
// the routing channels are occupied by q qubits. For q ≤ Nc the channel is
// uncongested and the latency is d_uncong; beyond that the queue waiting
// time applies.
func (c Channel) Delay(q int) float64 {
	if q <= c.Capacity {
		return c.DUncong
	}
	return c.WaitingTime(q)
}

// Utilization returns ρ = λ/µ at queue population q — a diagnostic for
// reports; always < 1 under this model.
func (c Channel) Utilization(q int) float64 {
	return c.ArrivalRate(q) / c.ServiceRate()
}
