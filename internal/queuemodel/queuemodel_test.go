package queuemodel

import (
	"math"
	"testing"
	"testing/quick"
)

func mustChannel(t *testing.T, cap int, d float64) Channel {
	t.Helper()
	c, err := NewChannel(cap, d)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewChannelValidation(t *testing.T) {
	if _, err := NewChannel(0, 1); err == nil {
		t.Error("want error for capacity 0")
	}
	if _, err := NewChannel(5, 0); err == nil {
		t.Error("want error for d_uncong 0")
	}
	if _, err := NewChannel(5, -1); err == nil {
		t.Error("want error for negative d_uncong")
	}
	if _, err := NewChannel(5, 100); err != nil {
		t.Errorf("valid channel rejected: %v", err)
	}
}

func TestServiceRate(t *testing.T) {
	c := mustChannel(t, 5, 100)
	if got := c.ServiceRate(); got != 0.05 {
		t.Errorf("µ = %v, want 0.05", got)
	}
}

func TestEq8Delay(t *testing.T) {
	// Table 1 values: Nc = 5. For q ≤ 5: d_uncong; beyond: (1+q)d/Nc.
	c := mustChannel(t, 5, 100)
	for q := 0; q <= 5; q++ {
		if got := c.Delay(q); got != 100 {
			t.Errorf("d_%d = %v, want 100 (uncongested)", q, got)
		}
	}
	if got := c.Delay(6); math.Abs(got-140) > 1e-12 {
		t.Errorf("d_6 = %v, want (1+6)·100/5 = 140", got)
	}
	if got := c.Delay(9); math.Abs(got-200) > 1e-12 {
		t.Errorf("d_9 = %v, want 200", got)
	}
}

func TestEq8ContinuityAtCapacity(t *testing.T) {
	// At q = Nc the congested formula gives (1+Nc)d/Nc > d, so Eq. 8's
	// branch point means delay jumps by exactly d/Nc·1 at q = Nc+1 vs
	// the uncongested value... verify the jump is as derived.
	c := mustChannel(t, 4, 80)
	uncong := c.Delay(4)
	cong := c.Delay(5)
	if uncong != 80 {
		t.Errorf("d_Nc = %v", uncong)
	}
	want := (1.0 + 5.0) * 80 / 4
	if math.Abs(cong-want) > 1e-12 {
		t.Errorf("d_{Nc+1} = %v, want %v", cong, want)
	}
}

func TestEq10ArrivalRate(t *testing.T) {
	// λ = q·Nc / ((1+q)·d).
	c := mustChannel(t, 5, 100)
	got := c.ArrivalRate(9)
	want := 9.0 * 5 / (10 * 100)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("λ = %v, want %v", got, want)
	}
}

func TestEq9QueueLengthRoundTrip(t *testing.T) {
	// Plugging Eq. 10's λ back into Eq. 9 must recover q — the paper's
	// derivation is self-consistent.
	c := mustChannel(t, 5, 100)
	for q := 1; q <= 40; q++ {
		lambda := c.ArrivalRate(q)
		lq, err := c.QueueLength(lambda)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if math.Abs(lq-float64(q)) > 1e-9 {
			t.Errorf("q=%d: round trip gave %v", q, lq)
		}
	}
}

func TestQueueLengthRejectsUnstable(t *testing.T) {
	c := mustChannel(t, 5, 100)
	mu := c.ServiceRate()
	if _, err := c.QueueLength(mu); err == nil {
		t.Error("λ = µ must error")
	}
	if _, err := c.QueueLength(mu * 2); err == nil {
		t.Error("λ > µ must error")
	}
	if _, err := c.QueueLength(-0.1); err == nil {
		t.Error("negative λ must error")
	}
}

func TestEq11LittlesLaw(t *testing.T) {
	// W = L/λ (Little). WaitingTime must equal q / ArrivalRate(q).
	c := mustChannel(t, 3, 60)
	for q := 1; q <= 20; q++ {
		w := c.WaitingTime(q)
		little := float64(q) / c.ArrivalRate(q)
		if math.Abs(w-little) > 1e-9 {
			t.Errorf("q=%d: W=%v but L/λ=%v", q, w, little)
		}
	}
}

func TestUtilizationBelowOne(t *testing.T) {
	c := mustChannel(t, 5, 100)
	for q := 0; q <= 100; q += 7 {
		rho := c.Utilization(q)
		if rho < 0 || rho >= 1 {
			t.Errorf("q=%d: ρ = %v outside [0,1)", q, rho)
		}
	}
}

func TestDelayMonotoneProperty(t *testing.T) {
	// d_q is non-decreasing in q for any valid channel.
	f := func(capRaw uint8, dRaw uint16) bool {
		capacity := int(capRaw%10) + 1
		d := float64(dRaw%5000) + 1
		c, err := NewChannel(capacity, d)
		if err != nil {
			return false
		}
		prev := 0.0
		for q := 0; q <= 50; q++ {
			cur := c.Delay(q)
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDelayScalesWithDUncong(t *testing.T) {
	// Delay is linear in d_uncong at fixed q and Nc.
	c1 := mustChannel(t, 5, 100)
	c2 := mustChannel(t, 5, 200)
	for q := 0; q <= 20; q++ {
		if math.Abs(c2.Delay(q)-2*c1.Delay(q)) > 1e-9 {
			t.Errorf("q=%d: delay not linear in d_uncong", q)
		}
	}
}
