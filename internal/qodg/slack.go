package qodg

import "fmt"

// Schedule holds ASAP/ALAP times and slack per node under a given weight
// vector — the "scheduling slacks" the paper discusses (§2: routing
// latencies "change the scheduling slacks and hence may change the critical
// path of the entire graph").
type Schedule struct {
	// ASAP[i] is the earliest finish time of node i.
	ASAP []float64
	// ALAP[i] is the latest finish time of node i that still meets the
	// overall critical-path length.
	ALAP []float64
	// Slack[i] = ALAP[i] − ASAP[i]; zero on every critical node.
	Slack []float64
	// Makespan is the critical-path length.
	Makespan float64
}

// ComputeSchedule derives ASAP/ALAP/slack for all nodes in two linear
// sweeps over the (topologically ordered) graph.
func (g *Graph) ComputeSchedule(w Weights) (*Schedule, error) {
	if len(w) != len(g.Nodes) {
		return nil, fmt.Errorf("qodg: %d weights for %d nodes", len(w), len(g.Nodes))
	}
	n := len(g.Nodes)
	s := &Schedule{
		ASAP:  make([]float64, n),
		ALAP:  make([]float64, n),
		Slack: make([]float64, n),
	}
	// Forward sweep: earliest finish.
	for u := 0; u < n; u++ {
		best := 0.0
		for _, p := range g.Pred(NodeID(u)) {
			if s.ASAP[p] > best {
				best = s.ASAP[p]
			}
		}
		s.ASAP[u] = best + w[u]
	}
	s.Makespan = s.ASAP[g.End()]
	// Backward sweep: latest finish.
	for u := 0; u < n; u++ {
		s.ALAP[u] = s.Makespan
	}
	for u := n - 1; u >= 0; u-- {
		limit := s.Makespan
		for _, v := range g.Succ(NodeID(u)) {
			if cand := s.ALAP[v] - w[v]; cand < limit {
				limit = cand
			}
		}
		s.ALAP[u] = limit
	}
	for u := 0; u < n; u++ {
		s.Slack[u] = s.ALAP[u] - s.ASAP[u]
	}
	return s, nil
}

// CriticalNodes returns the IDs of all zero-slack operation nodes (within
// tol), in topological order — every node lying on some critical path.
func (s *Schedule) CriticalNodes(g *Graph, tol float64) []NodeID {
	var out []NodeID
	for u := range g.Nodes {
		if g.Nodes[u].IsPseudo() {
			continue
		}
		if s.Slack[u] <= tol {
			out = append(out, NodeID(u))
		}
	}
	return out
}

// SlackHistogram buckets operation-node slacks into the given boundaries
// (e.g. {0, 1000, 10000}); bucket i counts nodes with
// bounds[i] ≤ slack < bounds[i+1], and the final bucket is unbounded.
func (s *Schedule) SlackHistogram(g *Graph, bounds []float64) []int {
	counts := make([]int, len(bounds))
	for u := range g.Nodes {
		if g.Nodes[u].IsPseudo() {
			continue
		}
		sl := s.Slack[u]
		idx := 0
		for i := range bounds {
			if sl >= bounds[i] {
				idx = i
			}
		}
		counts[idx]++
	}
	return counts
}
