package qodg

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

// ham3ft builds the paper's Fig. 2(a) FT netlist shape: 4 simple gates plus
// a 15-gate Toffoli network = 19 operations on 3 qubits.
func linearChain(n int) *circuit.Circuit {
	c := circuit.New("chain", 2)
	for i := 0; i < n; i++ {
		c.Append(circuit.NewOneQubit(circuit.H, 0))
	}
	return c
}

func TestBuildAnchors(t *testing.T) {
	c := circuit.New("t", 2)
	c.Append(circuit.NewCNOT(0, 1), circuit.NewOneQubit(circuit.H, 0))
	g, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if g.Start() != 0 || int(g.End()) != g.NumNodes()-1 {
		t.Errorf("anchors wrong: start=%d end=%d n=%d", g.Start(), g.End(), g.NumNodes())
	}
	if g.NumNodes() != 4 {
		t.Errorf("NumNodes = %d, want 4", g.NumNodes())
	}
	if !g.Nodes[0].IsPseudo() || !g.Nodes[g.End()].IsPseudo() {
		t.Error("anchor nodes must be pseudo")
	}
	if g.Nodes[1].IsPseudo() {
		t.Error("op node misflagged pseudo")
	}
}

func TestBuildDependencies(t *testing.T) {
	// CNOT(0,1); H(0); CNOT(0,1): H depends on first CNOT; second CNOT on
	// H (via q0) and first CNOT (via q1).
	c := circuit.New("t", 2)
	c.Append(circuit.NewCNOT(0, 1), circuit.NewOneQubit(circuit.H, 0), circuit.NewCNOT(0, 1))
	g, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	hasEdge := func(u, v NodeID) bool {
		for _, s := range g.Succ(u) {
			if s == v {
				return true
			}
		}
		return false
	}
	if !hasEdge(0, 1) {
		t.Error("start should feed gate 1")
	}
	if !hasEdge(1, 2) || !hasEdge(1, 3) || !hasEdge(2, 3) {
		t.Error("dependency edges missing")
	}
	if hasEdge(0, 3) {
		t.Error("gate 3 should not depend directly on start")
	}
}

func TestParallelEdgeMerging(t *testing.T) {
	// Two consecutive CNOTs on the same pair: the QODG merges the two
	// qubit-dependency edges into one.
	c := circuit.New("t", 2)
	c.Append(circuit.NewCNOT(0, 1), circuit.NewCNOT(1, 0))
	g, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, s := range g.Succ(1) {
		if s == 2 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("parallel edges not merged: %d copies", count)
	}
	// start->1 (merged from two qubit chains), 1->2 (merged), 2->end
	// (merged): 3 edges total.
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
}

func TestIsolatedQubitEdge(t *testing.T) {
	// A qubit with no gates contributes a direct start->end edge.
	c := circuit.New("t", 2)
	c.Append(circuit.NewOneQubit(circuit.H, 0))
	g, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range g.Succ(0) {
		if s == g.End() {
			found = true
		}
	}
	if !found {
		t.Error("idle qubit should add start->end edge")
	}
}

func TestLongestPathChain(t *testing.T) {
	c := linearChain(5)
	g, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	w := g.NewWeights(func(circuit.Gate) float64 { return 2 })
	cp, err := g.LongestPath(w)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Length != 10 {
		t.Errorf("chain length = %v, want 10", cp.Length)
	}
	if cp.CountByType[circuit.H] != 5 {
		t.Errorf("critical H count = %d, want 5", cp.CountByType[circuit.H])
	}
	if len(cp.Nodes) != 7 { // start + 5 + end
		t.Errorf("path has %d nodes, want 7", len(cp.Nodes))
	}
}

func TestLongestPathPicksHeavierBranch(t *testing.T) {
	// Two parallel chains: q0 has 3 T gates (heavy), q1 has 5 H gates
	// with lighter weight.
	c := circuit.New("t", 2)
	for i := 0; i < 3; i++ {
		c.Append(circuit.NewOneQubit(circuit.T, 0))
	}
	for i := 0; i < 5; i++ {
		c.Append(circuit.NewOneQubit(circuit.H, 1))
	}
	g, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	w := g.NewWeights(func(gt circuit.Gate) float64 {
		if gt.Type == circuit.T {
			return 100
		}
		return 10
	})
	cp, err := g.LongestPath(w)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Length != 300 {
		t.Errorf("length = %v, want 300", cp.Length)
	}
	if cp.CountByType[circuit.T] != 3 || cp.CountByType[circuit.H] != 0 {
		t.Errorf("critical counts = %v", cp.CountByType)
	}
	// Flip the weights: the H chain should win.
	w2 := g.NewWeights(func(gt circuit.Gate) float64 {
		if gt.Type == circuit.H {
			return 100
		}
		return 10
	})
	cp2, _ := g.LongestPath(w2)
	if cp2.Length != 500 || cp2.CountByType[circuit.H] != 5 {
		t.Errorf("flipped: length=%v counts=%v", cp2.Length, cp2.CountByType)
	}
}

func TestLongestPathWeightLenMismatch(t *testing.T) {
	g, _ := Build(linearChain(2))
	if _, err := g.LongestPath(make(Weights, 1)); err == nil {
		t.Error("want weight-length error")
	}
}

func TestLevels(t *testing.T) {
	c := circuit.New("t", 2)
	c.Append(circuit.NewCNOT(0, 1), circuit.NewOneQubit(circuit.H, 0), circuit.NewOneQubit(circuit.T, 1))
	g, _ := Build(c)
	lv := g.Levels()
	if lv[0] != 0 {
		t.Error("start level != 0")
	}
	if lv[1] != 1 || lv[2] != 2 || lv[3] != 2 {
		t.Errorf("levels = %v", lv)
	}
	if lv[g.End()] != 3 {
		t.Errorf("end level = %d, want 3", lv[g.End()])
	}
}

func TestCheckAcyclic(t *testing.T) {
	g, _ := Build(linearChain(10))
	if err := g.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
	// Sabotage: rewrite node 5's (only) successor edge to point backward.
	g.Succ(5)[0] = 2
	if err := g.CheckAcyclic(); err == nil {
		t.Error("want back-edge error")
	}
}

func TestQODGRandomProperties(t *testing.T) {
	// Properties over random circuits: node order topological; edge count
	// ≤ sum of gate arities + Q; longest path under unit weights equals
	// circuit depth.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		c := circuit.New("p", n)
		gates := rng.Intn(40)
		for i := 0; i < gates; i++ {
			if rng.Intn(2) == 0 {
				a, b := rng.Intn(n), rng.Intn(n)
				if a == b {
					b = (a + 1) % n
				}
				c.Append(circuit.NewCNOT(a, b))
			} else {
				c.Append(circuit.NewOneQubit(circuit.H, rng.Intn(n)))
			}
		}
		g, err := Build(c)
		if err != nil {
			return false
		}
		if g.CheckAcyclic() != nil {
			return false
		}
		w := g.NewWeights(func(circuit.Gate) float64 { return 1 })
		cp, err := g.LongestPath(w)
		if err != nil {
			return false
		}
		return int(cp.Length) == c.ComputeStats().Depth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHam3QODGShape(t *testing.T) {
	// The paper's Fig. 2(b): 19 operation nodes + start + end.
	c := circuit.New("ham3ft", 3)
	// 4 leading simple ops.
	c.Append(
		circuit.NewCNOT(1, 2),
		circuit.NewCNOT(0, 1),
		circuit.NewOneQubit(circuit.X, 0),
		circuit.NewCNOT(2, 0),
	)
	// 15-op Toffoli network placeholder: same operand pattern.
	for i := 0; i < 15; i++ {
		c.Append(circuit.NewOneQubit(circuit.T, i%3))
	}
	g, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 21 {
		t.Errorf("NumNodes = %d, want 21 (19 ops + start + end)", g.NumNodes())
	}
}

func TestWriteDOT(t *testing.T) {
	g, _ := Build(linearChain(2))
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "chain"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "start", "end", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
