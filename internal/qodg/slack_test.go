package qodg

import (
	"math"
	"testing"

	"repro/internal/circuit"
)

func TestScheduleChain(t *testing.T) {
	c := circuit.New("chain", 1)
	for i := 0; i < 3; i++ {
		c.Append(circuit.NewOneQubit(circuit.H, 0))
	}
	g, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	w := g.NewWeights(func(circuit.Gate) float64 { return 5 })
	s, err := g.ComputeSchedule(w)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 15 {
		t.Fatalf("makespan = %v, want 15", s.Makespan)
	}
	// A pure chain has zero slack everywhere.
	for u, sl := range s.Slack {
		if math.Abs(sl) > 1e-12 {
			t.Errorf("node %d slack %v, want 0", u, sl)
		}
	}
	if got := len(s.CriticalNodes(g, 1e-9)); got != 3 {
		t.Errorf("critical nodes = %d, want 3", got)
	}
}

func TestScheduleSlackOnShortBranch(t *testing.T) {
	// q0: three T gates (weight 10 each → 30); q1: one H gate (weight 10)
	// → slack 20 on the H node.
	c := circuit.New("branch", 2)
	for i := 0; i < 3; i++ {
		c.Append(circuit.NewOneQubit(circuit.T, 0))
	}
	c.Append(circuit.NewOneQubit(circuit.H, 1))
	g, _ := Build(c)
	w := g.NewWeights(func(circuit.Gate) float64 { return 10 })
	s, err := g.ComputeSchedule(w)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 30 {
		t.Fatalf("makespan = %v", s.Makespan)
	}
	hNode := 4 // gates 1..3 are T, gate 4 is H
	if math.Abs(s.Slack[hNode]-20) > 1e-12 {
		t.Errorf("H slack = %v, want 20", s.Slack[hNode])
	}
	for u := 1; u <= 3; u++ {
		if math.Abs(s.Slack[u]) > 1e-12 {
			t.Errorf("T node %d slack = %v, want 0", u, s.Slack[u])
		}
	}
	crit := s.CriticalNodes(g, 1e-9)
	if len(crit) != 3 {
		t.Errorf("critical nodes = %v", crit)
	}
}

func TestScheduleMatchesLongestPath(t *testing.T) {
	c := circuit.New("mix", 4)
	c.Append(
		circuit.NewCNOT(0, 1),
		circuit.NewOneQubit(circuit.T, 1),
		circuit.NewCNOT(1, 2),
		circuit.NewOneQubit(circuit.H, 3),
		circuit.NewCNOT(2, 3),
	)
	g, _ := Build(c)
	w := g.NewWeights(func(gt circuit.Gate) float64 {
		if gt.Type == circuit.CNOT {
			return 7
		}
		return 3
	})
	s, err := g.ComputeSchedule(w)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := g.LongestPath(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Makespan-cp.Length) > 1e-12 {
		t.Errorf("schedule makespan %v != longest path %v", s.Makespan, cp.Length)
	}
	// Every node on the recovered critical path must have zero slack.
	for _, id := range cp.Nodes {
		if s.Slack[id] > 1e-9 {
			t.Errorf("critical node %d has slack %v", id, s.Slack[id])
		}
	}
}

func TestScheduleInvariants(t *testing.T) {
	c := circuit.New("rand", 5)
	for i := 0; i < 30; i++ {
		a, b := i%5, (i*2+1)%5
		if a != b {
			c.Append(circuit.NewCNOT(a, b))
		}
		c.Append(circuit.NewOneQubit(circuit.T, (i*3)%5))
	}
	g, _ := Build(c)
	w := g.NewWeights(func(gt circuit.Gate) float64 { return float64(2 + int(gt.Type)) })
	s, err := g.ComputeSchedule(w)
	if err != nil {
		t.Fatal(err)
	}
	for u := range g.Nodes {
		if s.Slack[u] < -1e-9 {
			t.Fatalf("node %d negative slack %v", u, s.Slack[u])
		}
		if s.ALAP[u] > s.Makespan+1e-9 {
			t.Fatalf("node %d ALAP beyond makespan", u)
		}
		// Precedence: a node finishes before its successors must start.
		for _, v := range g.Succ(NodeID(u)) {
			if s.ASAP[u] > s.ASAP[v]-w[v]+1e-9 {
				t.Fatalf("ASAP precedence violated %d -> %d", u, v)
			}
		}
	}
}

func TestScheduleWeightMismatch(t *testing.T) {
	c := circuit.New("x", 1)
	c.Append(circuit.NewOneQubit(circuit.H, 0))
	g, _ := Build(c)
	if _, err := g.ComputeSchedule(make(Weights, 1)); err == nil {
		t.Error("want weight-length error")
	}
}

func TestSlackHistogram(t *testing.T) {
	c := circuit.New("branch", 2)
	for i := 0; i < 3; i++ {
		c.Append(circuit.NewOneQubit(circuit.T, 0))
	}
	c.Append(circuit.NewOneQubit(circuit.H, 1))
	g, _ := Build(c)
	w := g.NewWeights(func(circuit.Gate) float64 { return 10 })
	s, _ := g.ComputeSchedule(w)
	hist := s.SlackHistogram(g, []float64{0, 5, 50})
	// 3 zero-slack T nodes in bucket 0; the H node (slack 20) in bucket 1.
	if hist[0] != 3 || hist[1] != 1 || hist[2] != 0 {
		t.Errorf("histogram = %v", hist)
	}
}
