package qodg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/benchgen"
	"repro/internal/circuit"
)

// columnWeights builds K distinct weight vectors for g, each with the
// estimator's two-value shape (CNOTs one latency, everything else another)
// scaled per column so the K critical paths genuinely differ. The values
// still collide across path prefixes, keeping the tie rule exercised.
func columnWeights(g *Graph, k int) []Weights {
	ws := make([]Weights, k)
	for c := 0; c < k; c++ {
		scale := 1 + float64(c)*0.25
		ws[c] = g.NewWeights(func(gt circuit.Gate) float64 {
			if gt.Type == circuit.CNOT {
				return 1000.5 * scale
			}
			return 100.25 * scale
		})
	}
	return ws
}

// assertMultiSweepStateEqual recomputes each column's dist/from with the
// serial single-column oracle and compares it bitwise against the scratch's
// SoA slabs — strictly stronger than comparing recovered paths.
func assertMultiSweepStateEqual(t *testing.T, label string, g *Graph, ws []Weights, s *PathScratch) {
	t.Helper()
	n := len(g.Nodes)
	k := len(ws)
	dist := make([]float64, n)
	from := make([]NodeID, n)
	for c, w := range ws {
		g.relaxSerial(w, dist, from)
		for v := 0; v < n; v++ {
			if math.Float64bits(dist[v]) != math.Float64bits(s.distM[v*k+c]) {
				t.Fatalf("%s: col %d: dist[%d] = %v, serial %v", label, c, v, s.distM[v*k+c], dist[v])
			}
			if from[v] != s.fromM[v*k+c] {
				t.Fatalf("%s: col %d: from[%d] = %d, serial %d", label, c, v, s.fromM[v*k+c], from[v])
			}
		}
	}
}

// assertMultiMatchesSerial checks every column of a multi-sweep result
// against the single-column serial oracle.
func assertMultiMatchesSerial(t *testing.T, label string, g *Graph, ws []Weights, got []CriticalPath) {
	t.Helper()
	if len(got) != len(ws) {
		t.Fatalf("%s: %d paths for %d columns", label, len(got), len(ws))
	}
	for c, w := range ws {
		want, err := g.LongestPathSerial(w)
		if err != nil {
			t.Fatal(err)
		}
		assertPathsBitwiseEqual(t, label, got[c], want)
	}
}

// TestLongestPathMultiMatchesSerialOnPaperBenchmarks is the batched kernel's
// contract: on every paper benchmark, each column of the multi-weight sweep —
// serial, forced-parallel at several worker counts, and auto-dispatched —
// must reproduce the per-column serial oracle bitwise (dist, from, path
// nodes, length, per-type counts), with one scratch shared across all
// circuits and column counts so stale slab state cannot leak through.
func TestLongestPathMultiMatchesSerialOnPaperBenchmarks(t *testing.T) {
	shared := new(PathScratch)
	for _, name := range paperSuite(t) {
		c, err := benchgen.GenerateFT(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := Build(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 3, 8} {
			ws := columnWeights(g, k)
			for _, workers := range []int{1, 2, 4, 7} {
				got, err := g.LongestPathMultiParallel(ws, shared, workers)
				if err != nil {
					t.Fatal(err)
				}
				label := name
				assertMultiMatchesSerial(t, label, g, ws, got)
				assertMultiSweepStateEqual(t, label, g, ws, shared)
			}
			got, err := g.LongestPathMulti(ws, shared)
			if err != nil {
				t.Fatal(err)
			}
			assertMultiMatchesSerial(t, name+"/auto", g, ws, got)
		}
	}
}

// TestLongestPathMultiMatchesSerialOnRandomDAGs fuzzes the multi-column
// equivalence over randomized layered DAGs with tie-heavy weights: values
// drawn from a tiny set per column, so exact max-ties are common and any
// deviation from the lowest-predecessor tie rule in the strided kernels
// shows up immediately.
func TestLongestPathMultiMatchesSerialOnRandomDAGs(t *testing.T) {
	shared := new(PathScratch)
	shapes := []struct{ qubits, gates int }{
		{3, 40},      // tiny, near-serial
		{200, 3000},  // wide and shallow
		{16, 5000},   // deep and narrow
		{512, 20000}, // wide, spans many chunks at small grains
	}
	tieValues := []float64{1, 1, 2, 2.5} // duplicates make exact ties likely
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		shape := shapes[int(seed)%len(shapes)]
		c := randomCircuit(rng, shape.qubits, shape.gates)
		g, err := Build(c)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + int(seed)%4
		ws := make([]Weights, k)
		for col := range ws {
			ws[col] = g.NewWeights(func(gt circuit.Gate) float64 {
				return tieValues[rng.Intn(len(tieValues))]
			})
		}
		for _, workers := range []int{1, 2, 3, 8} {
			got, err := g.LongestPathMultiParallel(ws, shared, workers)
			if err != nil {
				t.Fatal(err)
			}
			assertMultiMatchesSerial(t, c.Name, g, ws, got)
			assertMultiSweepStateEqual(t, c.Name, g, ws, shared)
		}
		serial, err := g.LongestPathMultiSerial(ws)
		if err != nil {
			t.Fatal(err)
		}
		assertMultiMatchesSerial(t, c.Name+"/serial", g, ws, serial)
	}
}

// TestLongestPathMultiAutoThreshold pins the dispatch contract: the auto
// entry point agrees with the oracle whichever side of ParallelThreshold the
// graph lands on, and MaxWorkers=1 forces the serial multi kernel.
func TestLongestPathMultiAutoThreshold(t *testing.T) {
	defer func(old int) { ParallelThreshold = old }(ParallelThreshold)
	c := randomCircuit(rand.New(rand.NewSource(42)), 64, 2000)
	g, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	ws := columnWeights(g, 3)
	for _, threshold := range []int{1, 1 << 30} {
		ParallelThreshold = threshold
		got, err := g.LongestPathMulti(ws, nil)
		if err != nil {
			t.Fatal(err)
		}
		assertMultiMatchesSerial(t, "auto", g, ws, got)
	}
	ParallelThreshold = 1
	for _, maxWorkers := range []int{1, 2} {
		s := &PathScratch{MaxWorkers: maxWorkers}
		got, err := g.LongestPathMulti(ws, s)
		if err != nil {
			t.Fatal(err)
		}
		assertMultiMatchesSerial(t, "maxworkers", g, ws, got)
	}
}

// TestLongestPathMultiValidation covers the error and edge paths of every
// multi entry point: a short column anywhere rejects the whole call, and an
// empty column set is a no-op.
func TestLongestPathMultiValidation(t *testing.T) {
	c := randomCircuit(rand.New(rand.NewSource(7)), 4, 10)
	g, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	good := coreWeights(g)
	bad := make(Weights, g.NumNodes()-1)
	for _, ws := range [][]Weights{{bad}, {good, bad}} {
		if _, err := g.LongestPathMulti(ws, nil); err == nil {
			t.Error("LongestPathMulti accepted a short weight column")
		}
		if _, err := g.LongestPathMultiSerial(ws); err == nil {
			t.Error("LongestPathMultiSerial accepted a short weight column")
		}
		if _, err := g.LongestPathMultiParallel(ws, nil, 4); err == nil {
			t.Error("LongestPathMultiParallel accepted a short weight column")
		}
	}
	for _, fn := range []func() ([]CriticalPath, error){
		func() ([]CriticalPath, error) { return g.LongestPathMulti(nil, nil) },
		func() ([]CriticalPath, error) { return g.LongestPathMultiSerial(nil) },
		func() ([]CriticalPath, error) { return g.LongestPathMultiParallel(nil, nil, 4) },
	} {
		got, err := fn()
		if err != nil || got != nil {
			t.Errorf("empty column set: got %v, %v; want nil, nil", got, err)
		}
	}
}
