package qodg

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders the graph in Graphviz DOT format, regenerating the
// paper's Fig. 2(b) style: operation nodes labeled with their 1-based gate
// number and mnemonic, plus the start/end anchors.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", name)
	fmt.Fprintln(bw, "  rankdir=LR;")
	fmt.Fprintln(bw, "  node [shape=circle, fontsize=10];")
	for _, n := range g.Nodes {
		switch {
		case n.ID == g.Start():
			fmt.Fprintf(bw, "  n%d [label=\"start\", shape=box];\n", n.ID)
		case n.ID == g.End():
			fmt.Fprintf(bw, "  n%d [label=\"end\", shape=box];\n", n.ID)
		default:
			fmt.Fprintf(bw, "  n%d [label=\"%d\\n%s\"];\n", n.ID, n.GateIndex+1, n.Op.Type)
		}
	}
	for u := range g.Nodes {
		for _, v := range g.Succ(NodeID(u)) {
			fmt.Fprintf(bw, "  n%d -> n%d;\n", u, v)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
