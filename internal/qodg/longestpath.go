package qodg

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/circuit"
	"repro/internal/csr"
)

// ParallelThreshold is the node count at or above which LongestPath fans the
// level-partitioned relaxation across GOMAXPROCS workers. Below it the
// serial sweep wins outright (per-level synchronization costs more than the
// whole scan), so small circuits always take the serial fast path. The
// parallel sweep is bitwise identical to the serial one by construction;
// the threshold is a performance knob, never a correctness one.
//
// The variable is read without synchronization on every sweep: tune it at
// program start, before any concurrent estimates run. For per-call control
// use PathScratch.MaxWorkers instead.
var ParallelThreshold = 1 << 16

// spanGrain is the minimum number of same-level nodes dispatched to a
// worker per chunk. Levels narrower than one grain are relaxed inline by
// the coordinator with no synchronization at all, so deep-and-narrow graphs
// degrade gracefully to the serial scan plus one level-index pass.
const spanGrain = 1024

// PathScratch carries the reusable state of a longest-path sweep: the
// dist/from relaxation vectors plus the ASAP level index the parallel sweep
// partitions work by. A zero PathScratch is ready to use; buffers grow to
// the largest graph seen and are reused across calls, so a warm scratch
// performs no allocation. Not safe for concurrent use; pool one per worker.
type PathScratch struct {
	// MaxWorkers caps the parallel sweep's worker count for calls through
	// this scratch; 0 means GOMAXPROCS. Callers that already saturate the
	// machine with their own worker pool (leqa.Runner sets this to
	// GOMAXPROCS divided by its pool size) use it to keep pool-workers ×
	// sweep-helpers from oversubscribing the host; 1 forces the serial
	// sweep. Purely a performance knob — results are bitwise identical at
	// every setting.
	MaxWorkers int

	dist       []float64
	from       []NodeID
	distM      []float64 // SoA multi-column dist: column c of node v at [v*K+c]
	fromM      []NodeID  // SoA multi-column from, same layout
	weightM    []float64 // SoA multi-column weights, same layout (packed columns)
	level      []int32   // ASAP level per node
	levelOff   []int32   // level l's nodes sit at levelNodes[levelOff[l]:levelOff[l+1]]
	levelCur   []int32   // counting-sort fill cursors
	levelNodes []NodeID  // node IDs grouped by level, ascending within a level
	prepCnt    []int32   // per-worker level histograms/cursors of the parallel index build
}

// grow is csr.Grow under a local name: resize, reallocating only when the
// capacity is insufficient, contents unspecified.
func grow[T any](buf []T, n int) []T { return csr.Grow(buf, n) }

// CriticalPath holds the result of a longest-path query.
type CriticalPath struct {
	// Length is the total weight along the heaviest start→end path.
	Length float64
	// Nodes lists the path's node IDs from start to end (inclusive).
	Nodes []NodeID
	// CountByType counts operation nodes on the path per gate type; the
	// paper's N_CNOT^critical and N_g^critical.
	CountByType map[circuit.GateType]int
}

// LongestPath computes the critical path under the given node weights (the
// O(|V|+|E|) DAG longest-path algorithm the paper cites; the node array is
// already in topological order). Graphs with at least ParallelThreshold
// nodes on a multi-core machine take the level-partitioned parallel sweep;
// the result is bitwise identical either way.
func (g *Graph) LongestPath(w Weights) (CriticalPath, error) {
	return g.LongestPathInto(w, nil)
}

// LongestPathInto is LongestPath with caller-owned scratch: a warm
// PathScratch makes the sweep allocation-free apart from the returned
// path and count map. A nil scratch allocates a temporary one.
func (g *Graph) LongestPathInto(w Weights, s *PathScratch) (CriticalPath, error) {
	if len(w) != len(g.Nodes) {
		return CriticalPath{}, fmt.Errorf("qodg: %d weights for %d nodes", len(w), len(g.Nodes))
	}
	if s == nil {
		s = new(PathScratch)
	}
	n := len(g.Nodes)
	s.dist = grow(s.dist, n)
	s.from = grow(s.from, n)
	workers := runtime.GOMAXPROCS(0)
	if s.MaxWorkers > 0 && workers > s.MaxWorkers {
		workers = s.MaxWorkers
	}
	if n >= ParallelThreshold && workers > 1 {
		g.relaxParallel(w, s, workers)
	} else {
		g.relaxSerial(w, s.dist, s.from)
	}
	return g.recoverPath(s.dist, s.from), nil
}

// LongestPathSerial is the push-based single-threaded sweep — the original
// algorithm, retained as the oracle the parallel relaxation must match
// bitwise and as the small-circuit fast path.
func (g *Graph) LongestPathSerial(w Weights) (CriticalPath, error) {
	if len(w) != len(g.Nodes) {
		return CriticalPath{}, fmt.Errorf("qodg: %d weights for %d nodes", len(w), len(g.Nodes))
	}
	n := len(g.Nodes)
	dist := make([]float64, n)
	from := make([]NodeID, n)
	g.relaxSerial(w, dist, from)
	return g.recoverPath(dist, from), nil
}

// LongestPathParallel forces the level-partitioned relaxation with the given
// worker count regardless of ParallelThreshold and GOMAXPROCS — the
// equivalence tests and benchmarks drive the parallel machinery through it
// even on graphs and machines the auto dispatch would run serially.
func (g *Graph) LongestPathParallel(w Weights, s *PathScratch, workers int) (CriticalPath, error) {
	if len(w) != len(g.Nodes) {
		return CriticalPath{}, fmt.Errorf("qodg: %d weights for %d nodes", len(w), len(g.Nodes))
	}
	if s == nil {
		s = new(PathScratch)
	}
	if workers < 1 {
		workers = 1
	}
	n := len(g.Nodes)
	s.dist = grow(s.dist, n)
	s.from = grow(s.from, n)
	g.relaxParallel(w, s, workers)
	return g.recoverPath(s.dist, s.from), nil
}

// relaxSerial runs the push relaxation over the topological node order:
// for each node u in order, every successor edge (u,v) offers dist[u]+w[v].
// The first offer a node sees is always taken (from[v] == -1), later offers
// only when strictly greater — so ties resolve to the lowest-ID predecessor.
func (g *Graph) relaxSerial(w Weights, dist []float64, from []NodeID) {
	clear(dist)
	for i := range from {
		from[i] = -1
	}
	n := len(g.Nodes)
	for u := 0; u < n; u++ {
		du := dist[u]
		for _, v := range g.Succ(NodeID(u)) {
			if cand := du + w[v]; cand > dist[v] || from[v] == -1 {
				dist[v] = cand
				from[v] = NodeID(u)
			}
		}
	}
}

// relaxParallel is the pull-based, level-partitioned relaxation. ASAP
// levels stratify the DAG so that every predecessor of a level-l node sits
// strictly below level l; once a level's predecessors are finalized, each of
// its nodes can compute its own dist/from independently by scanning its
// predecessor list. Predecessor lists are sorted ascending — the same order
// the serial push visits a node's incoming edges in — and the max uses the
// identical float expression and tie rule, so the result is bitwise equal
// to relaxSerial no matter how levels are chunked across workers.
func (g *Graph) relaxParallel(w Weights, s *PathScratch, workers int) {
	depth := g.buildLevelIndex(s, workers)
	dist, from := s.dist, s.from
	clear(dist)
	for i := range from {
		from[i] = -1
	}
	g.forEachLevel(s, workers, depth, func(span []NodeID) {
		g.relaxSpan(w, dist, from, span)
	})
}

// buildLevelIndex computes the ASAP level of every node and the level-grouped
// node index (levelOff offsets + levelNodes, ascending by ID within each
// level) into the scratch, returning the DAG depth — the partition both the
// single- and multi-weight parallel sweeps chunk work by.
func (g *Graph) buildLevelIndex(s *PathScratch, workers int) int32 {
	n := len(g.Nodes)

	// ASAP levels + depth, via the same kernel Levels uses. The push pass
	// stays serial: each node's level depends on its predecessors', so the
	// recurrence offers no safe partition — unlike everything downstream.
	s.level = grow(s.level, n)
	level := s.level
	depth := g.computeLevels(level)

	// Counting sort: group node IDs by level, ascending within each level.
	// The histogram and placement passes are embarrassingly parallel over
	// contiguous node chunks, so wide graphs split them across the worker
	// budget; narrow or level-heavy graphs (per-worker rows would rival the
	// node array) keep the serial passes. Both produce the identical index.
	s.levelOff = grow(s.levelOff, int(depth)+2)
	off := s.levelOff
	clear(off)
	s.levelNodes = grow(s.levelNodes, n)
	nodes := s.levelNodes
	nLev := int(depth) + 1
	if workers > 1 && (nLev+1)*workers <= n {
		s.prepCnt = indexLevels(level, off, nodes, s.prepCnt, nLev, workers)
	} else {
		for _, lv := range level {
			off[lv+1]++
		}
		for i := 1; i < len(off); i++ {
			off[i] += off[i-1]
		}
		s.levelCur = grow(s.levelCur, nLev)
		cur := s.levelCur
		copy(cur, off[:nLev])
		for u := 0; u < n; u++ {
			lv := level[u]
			nodes[cur[lv]] = NodeID(u)
			cur[lv]++
		}
	}
	return depth
}

// forEachLevel drives the per-level worker gang over the scratch's level
// index, calling relax on disjoint spans of same-level nodes. relax must be
// safe to call concurrently on disjoint spans.
//
// Helpers block on the jobs channel; the coordinator relaxes narrow levels
// inline (no synchronization) and splits wide levels into ≥spanGrain-node
// chunks, taking the first chunk itself. wg.Wait is the inter-level barrier:
// level l+1 only starts once every level-l chunk has finished, so each pull
// reads finalized dist values. The gang is spawned lazily at the first level
// wide enough to dispatch, so deep-narrow graphs degrade to the serial scan
// plus one level-index pass with no goroutine churn at all.
func (g *Graph) forEachLevel(s *PathScratch, workers int, depth int32, relax func(span []NodeID)) {
	off, nodes := s.levelOff, s.levelNodes
	type span struct{ lo, hi int32 }
	helpers := workers - 1
	var jobs chan span
	var wg, gang sync.WaitGroup
	startGang := func() {
		jobs = make(chan span, helpers)
		gang.Add(helpers)
		for i := 0; i < helpers; i++ {
			go func() {
				defer gang.Done()
				for sp := range jobs {
					relax(nodes[sp.lo:sp.hi])
					wg.Done()
				}
			}()
		}
	}
	for lv := int32(1); lv <= depth; lv++ {
		lo, hi := off[lv], off[lv+1]
		width := hi - lo
		per := (width + int32(workers) - 1) / int32(workers)
		if per < spanGrain {
			per = spanGrain
		}
		chunks := (width + per - 1) / per
		if helpers == 0 || chunks <= 1 {
			relax(nodes[lo:hi])
			continue
		}
		if jobs == nil {
			startGang()
		}
		wg.Add(int(chunks) - 1)
		for c := int32(1); c < chunks; c++ {
			clo := lo + c*per
			chi := clo + per
			if chi > hi {
				chi = hi
			}
			jobs <- span{clo, chi}
		}
		relax(nodes[lo : lo+per])
		wg.Wait()
	}
	if jobs != nil {
		close(jobs)
		gang.Wait()
	}
}

// indexLevels builds the level index (levelOff offsets + levelNodes grouped
// by level) with the histogram and placement passes fanned across workers
// over contiguous node chunks. Each worker histograms its chunk into a
// private count row; a serial O(workers·levels) pass turns the rows into
// level offsets and per-worker fill cursors; the placement pass then writes
// every chunk through its own cursors. Chunks ascend by node ID and cursor
// bases ascend by worker within each level, so the nodes of every level come
// out ascending by ID — byte-identical to the serial counting sort.
func indexLevels(level, off []int32, nodes []NodeID, prepCnt []int32, nLev, workers int) []int32 {
	n := len(level)
	prepCnt = grow(prepCnt, workers*nLev)
	clear(prepCnt)
	chunk := (n + workers - 1) / workers
	span := func(w int) (int, int) {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		return lo, hi
	}
	var wg sync.WaitGroup
	forkJoin := func(pass func(cnt []int32, lo, hi int)) {
		wg.Add(workers - 1)
		for w := 1; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				lo, hi := span(w)
				pass(prepCnt[w*nLev:(w+1)*nLev], lo, hi)
			}(w)
		}
		lo, hi := span(0)
		pass(prepCnt[:nLev], lo, hi)
		wg.Wait()
	}
	forkJoin(func(cnt []int32, lo, hi int) {
		for _, lv := range level[lo:hi] {
			cnt[lv]++
		}
	})
	total := int32(0)
	for lv := 0; lv < nLev; lv++ {
		off[lv] = total
		for w := 0; w < workers; w++ {
			c := prepCnt[w*nLev+lv]
			prepCnt[w*nLev+lv] = total
			total += c
		}
	}
	off[nLev] = total
	forkJoin(func(cnt []int32, lo, hi int) {
		for u := lo; u < hi; u++ {
			lv := level[u]
			nodes[cnt[lv]] = NodeID(u)
			cnt[lv]++
		}
	})
	return prepCnt
}

// relaxSpan finalizes dist/from for a slice of same-level nodes. Scanning
// the sorted predecessor list with "first offer always taken, later offers
// only when strictly greater" reproduces the serial push byte for byte: the
// push visits a node's incoming edges in exactly ascending predecessor
// order, computes the same dist[p]+w[v] sums, and breaks ties the same way.
func (g *Graph) relaxSpan(w Weights, dist []float64, from []NodeID, span []NodeID) {
	for _, v := range span {
		wv := w[v]
		best := 0.0
		bestFrom := NodeID(-1)
		for _, p := range g.Pred(v) {
			if cand := dist[p] + wv; cand > best || bestFrom == -1 {
				best = cand
				bestFrom = p
			}
		}
		if bestFrom != -1 {
			dist[v] = best
			from[v] = bestFrom
		}
	}
}

// recoverPath walks the from-chain backwards from the end node, sizing the
// path slice exactly in a first pass and filling it in place in a second —
// no append/reverse round trip.
func (g *Graph) recoverPath(dist []float64, from []NodeID) CriticalPath {
	return g.recoverPathStrided(dist, from, 1, 0)
}

// recoverPathStrided is recoverPath over one column of the SoA multi-column
// slabs: node v's state for column col sits at dist[v*stride+col] /
// from[v*stride+col]. Stride 1, column 0 is exactly the single-column layout.
func (g *Graph) recoverPathStrided(dist []float64, from []NodeID, stride, col int) CriticalPath {
	end := g.End()
	at := func(v NodeID) NodeID { return from[int(v)*stride+col] }
	cp := CriticalPath{
		Length:      dist[int(end)*stride+col],
		CountByType: make(map[circuit.GateType]int),
	}
	steps := 0
	for v := end; ; v = at(v) {
		steps++
		if v == 0 || at(v) == -1 {
			break
		}
	}
	cp.Nodes = make([]NodeID, steps)
	i := steps - 1
	for v := end; ; v = at(v) {
		cp.Nodes[i] = v
		i--
		if v == 0 || at(v) == -1 {
			break
		}
	}
	for _, id := range cp.Nodes {
		if node := g.Nodes[id]; !node.IsPseudo() {
			cp.CountByType[node.Op.Type]++
		}
	}
	return cp
}
