// Package qodg implements the Quantum Operation Dependency Graph of the
// LEQA paper (§2, Fig. 2b): nodes are FT quantum operations, edges capture
// data dependencies through logical qubits, and dedicated start/end nodes
// anchor the first- and last-level operations. Parallel edges between the
// same node pair are merged.
//
// The graph is a DAG whose node order is already topological (gates are
// appended in program order; edges only go from earlier to later gates), so
// longest-path queries run in a single linear sweep.
//
// Adjacency is stored in compressed-sparse-row (CSR) form: one flat edge
// array per direction plus an offset array, filled by a counting pass and a
// fill pass over the gate stream. No per-node slices or maps are allocated
// and no post-hoc sort/dedup is needed — duplicate dependency edges always
// target the same node and are rejected while that node's edges are
// generated, and successor lists come out sorted because target IDs only
// grow during the scan.
package qodg

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/csr"
)

// NodeID indexes nodes in a Graph. Start is always 0; End is always
// len(Nodes)-1; operation nodes occupy 1..len(Nodes)-2 in program order.
type NodeID int

// Node is one vertex of the QODG.
type Node struct {
	ID NodeID
	// Op is the gate this node represents. The zero Gate (Type ==
	// circuit.Invalid) marks the start and end pseudo-nodes.
	Op circuit.Gate
	// GateIndex is the index of Op in the source circuit, or -1 for the
	// start/end nodes.
	GateIndex int
}

// IsPseudo reports whether the node is the start or end anchor.
func (n Node) IsPseudo() bool { return n.GateIndex < 0 }

// Graph is the QODG. Edges are stored as CSR adjacency in both directions;
// merged parallel edges appear once. Use Succ/Pred to iterate a node's
// neighbors; the returned slices view the shared edge arrays, so treat them
// as read-only.
type Graph struct {
	Nodes []Node
	// NumQubits is the register size of the source circuit.
	NumQubits int

	succOff []int32 // len(Nodes)+1 offsets into succ
	succ    []NodeID
	predOff []int32 // len(Nodes)+1 offsets into pred
	pred    []NodeID
}

// Start returns the start pseudo-node's ID (always 0).
func (g *Graph) Start() NodeID { return 0 }

// End returns the end pseudo-node's ID.
func (g *Graph) End() NodeID { return NodeID(len(g.Nodes) - 1) }

// NumNodes returns |V| including the two pseudo-nodes.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumEdges returns |E| after parallel-edge merging.
func (g *Graph) NumEdges() int { return len(g.succ) }

// Succ returns the successors of node u in increasing order. The slice
// aliases the graph's edge array; do not append to it.
func (g *Graph) Succ(u NodeID) []NodeID { return g.succ[g.succOff[u]:g.succOff[u+1]] }

// Pred returns the predecessors of node u in increasing order. The slice
// aliases the graph's edge array; do not append to it.
func (g *Graph) Pred(u NodeID) []NodeID { return g.pred[g.predOff[u]:g.predOff[u+1]] }

// OutDegree returns len(Succ(u)) without materializing the slice.
func (g *Graph) OutDegree(u NodeID) int { return int(g.succOff[u+1] - g.succOff[u]) }

// NewNodes builds the node array for a circuit: start anchor, one node per
// gate in program order, end anchor. Shared by Build and the fused
// analysis-layer builder.
func NewNodes(c *circuit.Circuit) []Node {
	return NewNodesInto(nil, c)
}

// NewNodesInto is NewNodes into a reusable buffer: buf's backing array is
// reused when large enough, so a warm arena builds the node array without
// allocating. Every slot is overwritten.
func NewNodesInto(buf []Node, c *circuit.Circuit) []Node {
	n := len(c.Gates) + 2
	if cap(buf) < n {
		buf = make([]Node, n)
	}
	buf = buf[:n]
	buf[0] = Node{ID: 0, GateIndex: -1}
	for i, gate := range c.Gates {
		buf[i+1] = Node{ID: NodeID(i + 1), Op: gate, GateIndex: i}
	}
	buf[n-1] = Node{ID: NodeID(n - 1), GateIndex: -1}
	return buf
}

// DepScanner streams the merged dependency edges of a circuit: for each
// gate node it reports the set of distinct predecessor nodes (the last
// writers of the gate's qubits), then advances the per-qubit last-writer
// state. Running the same scan twice — a counting pass and a fill pass —
// builds CSR adjacency without any per-node allocation; the analysis layer
// reuses the scanner to fuse the IIG build into the same gate loop.
type DepScanner struct {
	last    []NodeID // last node touching each qubit; 0 = start anchor
	scratch []NodeID // per-gate distinct sources
}

// NewDepScanner returns a scanner over numQubits qubits.
func NewDepScanner(numQubits int) *DepScanner {
	return &DepScanner{last: make([]NodeID, numQubits)}
}

// NewDepScannerAt returns a scanner resuming from an existing per-qubit
// last-writer state (copied) — the seed of the incremental analysis
// appender, which continues a finished scan instead of replaying it.
func NewDepScannerAt(last []NodeID) *DepScanner {
	s := &DepScanner{last: make([]NodeID, len(last))}
	copy(s.last, last)
	return s
}

// Reset rewinds the scanner so a second identical pass can run.
func (s *DepScanner) Reset() {
	clear(s.last)
}

// GrowTo extends the scanner's register to numQubits mid-scan, initializing
// the new qubits to the start anchor — the streaming path's counterpart of
// ResetFor, used when a .qc stream auto-declares qubits as it goes.
func (s *DepScanner) GrowTo(numQubits int) {
	for len(s.last) < numQubits {
		s.last = append(s.last, 0)
	}
}

// Last exposes the per-qubit last-writer state (0 = start anchor). The
// slice is live scanner state; treat it as read-only.
func (s *DepScanner) Last() []NodeID { return s.last }

// ResetFor resizes the scanner to numQubits and rewinds it — the arena path
// that reuses one scanner across circuits of different register sizes.
func (s *DepScanner) ResetFor(numQubits int) {
	if cap(s.last) < numQubits {
		s.last = make([]NodeID, numQubits)
		return
	}
	s.last = s.last[:numQubits]
	clear(s.last)
}

// ResetAt reseeds the scanner with an explicit per-qubit last-writer state
// (copied), resizing the register to match — the fork/merge primitive of the
// sharded analysis builder, which seeds each shard's scanner and later
// replays the merged state through VisitEnd. NewDepScannerAt is ResetAt on a
// fresh scanner.
func (s *DepScanner) ResetAt(last []NodeID) {
	s.last = append(s.last[:0], last...)
}

// Pending is the sentinel family a shard-local scan seeds its last-writer
// state with: PendingWriter(q) marks qubit q as last written by an unknown
// node of an earlier shard. Sentinels are negative and distinct per qubit,
// so VisitGate's per-gate duplicate merging never collapses two unresolved
// operands on different qubits — they may resolve to different earlier
// nodes — while two operands on the same still-pending qubit are impossible
// (a gate's operands are distinct). Edges emitted with a pending source are
// boundary edges; the stitch resolves them against the previous shards'
// merged last-writer state and re-applies the duplicate merge there.

// PendingWriter returns the pending-last-writer sentinel for qubit q.
func PendingWriter(q int) NodeID { return -NodeID(q) - 1 }

// IsPending reports whether a dependency source is an unresolved sentinel.
func IsPending(id NodeID) bool { return id < 0 }

// PendingQubit recovers the qubit index from a PendingWriter sentinel.
func PendingQubit(id NodeID) int { return int(-id - 1) }

// ResetPending resizes the scanner to numQubits with every qubit seeded
// pending — the state a shard-local scan starts from.
func (s *DepScanner) ResetPending(numQubits int) {
	s.last = csr.Grow(s.last, numQubits)
	for q := range s.last {
		s.last[q] = PendingWriter(q)
	}
}

// VisitGate emits (from, id) once per distinct dependency source of the
// gate occupying node id, then records id as the last writer of the gate's
// qubits. Duplicate sources (two operands last touched by the same node)
// are merged here, which is exhaustive: every edge into id is generated by
// this single call, so duplicates can never arrive later.
func (s *DepScanner) VisitGate(id NodeID, g circuit.Gate, emit func(from, to NodeID)) {
	s.scratch = s.scratch[:0]
	for _, q := range g.Controls {
		s.visitQubit(id, q, emit)
	}
	for _, q := range g.Targets {
		s.visitQubit(id, q, emit)
	}
}

func (s *DepScanner) visitQubit(id NodeID, q int, emit func(from, to NodeID)) {
	from := s.last[q]
	s.last[q] = id
	for _, f := range s.scratch {
		if f == from {
			return
		}
	}
	s.scratch = append(s.scratch, from)
	emit(from, id)
}

// VisitEnd emits the final-level edges: one (last[q], end) edge per qubit,
// merged across qubits sharing a last writer. Call after every gate has
// been visited.
func (s *DepScanner) VisitEnd(end NodeID, emit func(from, to NodeID)) {
	s.scratch = s.scratch[:0]
	for q := range s.last {
		from := s.last[q]
		dup := false
		for _, f := range s.scratch {
			if f == from {
				dup = true
				break
			}
		}
		if !dup {
			s.scratch = append(s.scratch, from)
			emit(from, end)
		}
	}
}

// Build constructs the QODG from a circuit. Dependencies follow the last
// operation that touched each qubit; the start node feeds each qubit's first
// operation and each qubit's final operation feeds the end node. If two
// dependency edges connect the same ordered node pair (e.g. a CNOT followed
// immediately by another CNOT on the same two qubits) they are merged.
func Build(c *circuit.Circuit) (*Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	nodes := NewNodes(c)
	n := len(nodes)
	succDeg := make([]int32, n+1)
	predDeg := make([]int32, n+1)
	scan := NewDepScanner(c.NumQubits())
	count := func(from, to NodeID) {
		succDeg[from]++
		predDeg[to]++
	}
	end := NodeID(n - 1)
	for i, gate := range c.Gates {
		scan.VisitGate(NodeID(i+1), gate, count)
	}
	scan.VisitEnd(end, count)

	g := &Graph{Nodes: nodes, NumQubits: c.NumQubits()}
	g.succOff, g.succ = csr.Offsets[NodeID](succDeg)
	g.predOff, g.pred = csr.Offsets[NodeID](predDeg)
	fill := func(from, to NodeID) {
		g.succ[succDeg[from]] = to
		succDeg[from]++
		g.pred[predDeg[to]] = from
		predDeg[to]++
	}
	scan.Reset()
	for i, gate := range c.Gates {
		scan.VisitGate(NodeID(i+1), gate, fill)
	}
	scan.VisitEnd(end, fill)
	sortPredSegments(g.predOff, g.pred)
	return g, nil
}

// sortPredSegments orders each predecessor list ascending. Fill order is
// qubit order, not ID order; segments are tiny (a node's in-degree is at
// most its gate's arity; the end node's at most Q), so insertion sort wins.
func sortPredSegments(off []int32, pred []NodeID) {
	SortPredRange(off, pred, 0, len(off)-1)
}

// SortPredRange orders the predecessor segments of nodes [lo, hi) ascending.
// Rows are independent, so disjoint ranges may be sorted concurrently — the
// hook the sharded analysis builder uses to parallelize the pred-sort before
// handing the arrays to FromCSRSorted.
func SortPredRange(off []int32, pred []NodeID, lo, hi int) {
	for u := lo; u < hi; u++ {
		seg := pred[off[u]:off[u+1]]
		for i := 1; i < len(seg); i++ {
			for j := i; j > 0 && seg[j] < seg[j-1]; j-- {
				seg[j], seg[j-1] = seg[j-1], seg[j]
			}
		}
	}
}

// FromCSR assembles a Graph directly from prebuilt CSR arrays — the hook
// the fused analysis layer uses after running its own counting/fill passes.
// succOff/predOff must hold len(nodes)+1 offsets; successor segments must
// already be sorted ascending (they are whenever edges were generated by a
// DepScanner run); predecessor segments are sorted here.
func FromCSR(nodes []Node, numQubits int, succOff []int32, succ []NodeID, predOff []int32, pred []NodeID) *Graph {
	g := new(Graph)
	FromCSRInto(g, nodes, numQubits, succOff, succ, predOff, pred)
	return g
}

// FromCSRInto is FromCSR into a caller-owned Graph value — the arena path,
// which keeps one Graph header alive across analyses instead of allocating
// one per circuit. The same segment requirements as FromCSR apply.
func FromCSRInto(dst *Graph, nodes []Node, numQubits int, succOff []int32, succ []NodeID, predOff []int32, pred []NodeID) {
	sortPredSegments(predOff, pred)
	FromCSRSortedInto(dst, nodes, numQubits, succOff, succ, predOff, pred)
}

// FromCSRSortedInto is FromCSRInto for callers that have already sorted
// every predecessor segment (e.g. concurrently via SortPredRange); it only
// assembles the header.
func FromCSRSortedInto(dst *Graph, nodes []Node, numQubits int, succOff []int32, succ []NodeID, predOff []int32, pred []NodeID) {
	*dst = Graph{
		Nodes:     nodes,
		NumQubits: numQubits,
		succOff:   succOff,
		succ:      succ,
		predOff:   predOff,
		pred:      pred,
	}
}

// CSR exposes the graph's raw adjacency arrays — both offset tables and
// both edge arrays — for serialization (internal/qcbin writes them verbatim
// and reassembles with FromCSRSortedInto). The slices are live graph
// storage; treat them as read-only.
func (g *Graph) CSR() (succOff []int32, succ []NodeID, predOff []int32, pred []NodeID) {
	return g.succOff, g.succ, g.predOff, g.pred
}

// BuildReference is the pre-CSR two-phase builder (per-node append slices,
// then sort+dedup), retained as the independent oracle for the equivalence
// suite and as the baseline BenchmarkAnalyze measures the fused CSR pass
// against. Output is converted to the CSR representation so results compare
// directly with Build and the analysis layer.
func BuildReference(c *circuit.Circuit) (*Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	nodes := NewNodes(c)
	n := len(nodes)
	succ := make([][]NodeID, n)
	pred := make([][]NodeID, n)
	addEdge := func(from, to NodeID) {
		if s := succ[from]; len(s) > 0 && s[len(s)-1] == to {
			return // consecutive duplicate (two-qubit op on same pair)
		}
		succ[from] = append(succ[from], to)
		pred[to] = append(pred[to], from)
	}
	last := make([]NodeID, c.NumQubits())
	for i, gate := range c.Gates {
		id := NodeID(i + 1)
		for _, q := range gate.Qubits() {
			addEdge(last[q], id)
			last[q] = id
		}
	}
	end := NodeID(n - 1)
	for q := 0; q < c.NumQubits(); q++ {
		addEdge(last[q], end)
	}
	for i := range succ {
		succ[i] = dedupSorted(succ[i])
		pred[i] = dedupSorted(pred[i])
	}
	return fromAdjacency(nodes, c.NumQubits(), succ, pred), nil
}

func dedupSorted(list []NodeID) []NodeID {
	if len(list) < 2 {
		return list
	}
	for i := 1; i < len(list); i++ {
		for j := i; j > 0 && list[j] < list[j-1]; j-- {
			list[j], list[j-1] = list[j-1], list[j]
		}
	}
	out := list[:1]
	for _, v := range list[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func fromAdjacency(nodes []Node, numQubits int, succ, pred [][]NodeID) *Graph {
	flatten := func(adj [][]NodeID) ([]int32, []NodeID) {
		off := make([]int32, len(adj)+1)
		total := 0
		for i, list := range adj {
			off[i] = int32(total)
			total += len(list)
		}
		off[len(adj)] = int32(total)
		flat := make([]NodeID, 0, total)
		for _, list := range adj {
			flat = append(flat, list...)
		}
		return off, flat
	}
	g := &Graph{Nodes: nodes, NumQubits: numQubits}
	g.succOff, g.succ = flatten(succ)
	g.predOff, g.pred = flatten(pred)
	return g
}

// Weights assigns a latency to every node. Pseudo-nodes must have weight 0.
type Weights []float64

// NewWeights builds a weight vector with weightOf evaluated per operation
// node and 0 at the pseudo-nodes.
func (g *Graph) NewWeights(weightOf func(circuit.Gate) float64) Weights {
	return g.NewWeightsInto(nil, weightOf)
}

// NewWeightsInto is NewWeights into a reusable buffer: buf's backing array
// is reused when large enough. Every slot is overwritten (pseudo-nodes get
// an explicit 0), so a recycled buffer cannot leak stale weights.
func (g *Graph) NewWeightsInto(buf Weights, weightOf func(circuit.Gate) float64) Weights {
	n := len(g.Nodes)
	if cap(buf) < n {
		buf = make(Weights, n)
	}
	buf = buf[:n]
	for i, node := range g.Nodes {
		if node.IsPseudo() {
			buf[i] = 0
		} else {
			buf[i] = weightOf(node.Op)
		}
	}
	return buf
}

// Levels returns each node's ASAP level (start = 0) — the unweighted depth
// used for scheduling and reporting.
func (g *Graph) Levels() []int {
	lv32 := make([]int32, len(g.Nodes))
	g.computeLevels(lv32)
	lv := make([]int, len(lv32))
	for i, v := range lv32 {
		lv[i] = int(v)
	}
	return lv
}

// computeLevels fills level (len == NumNodes, pre-zeroed by the caller or
// fresh) with each node's ASAP level via one push pass over the topological
// order, and returns the graph depth (the maximum level). The single kernel
// behind both Levels and the parallel sweep's level partitioning.
func (g *Graph) computeLevels(level []int32) int32 {
	clear(level)
	n := len(g.Nodes)
	for u := 0; u < n; u++ {
		lu := level[u] + 1
		for _, v := range g.Succ(NodeID(u)) {
			if lu > level[v] {
				level[v] = lu
			}
		}
	}
	depth := int32(0)
	for _, lv := range level {
		if lv > depth {
			depth = lv
		}
	}
	return depth
}

// CheckAcyclic verifies the topological-order invariant: every edge points
// from a lower node ID to a higher one.
func (g *Graph) CheckAcyclic() error {
	for u := range g.Nodes {
		for _, v := range g.Succ(NodeID(u)) {
			if int(v) <= u {
				return fmt.Errorf("qodg: back edge %d -> %d", u, v)
			}
		}
	}
	return nil
}
