// Package qodg implements the Quantum Operation Dependency Graph of the
// LEQA paper (§2, Fig. 2b): nodes are FT quantum operations, edges capture
// data dependencies through logical qubits, and dedicated start/end nodes
// anchor the first- and last-level operations. Parallel edges between the
// same node pair are merged.
//
// The graph is a DAG whose node order is already topological (gates are
// appended in program order; edges only go from earlier to later gates), so
// longest-path queries run in a single linear sweep.
package qodg

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
)

// NodeID indexes nodes in a Graph. Start is always 0; End is always
// len(Nodes)-1; operation nodes occupy 1..len(Nodes)-2 in program order.
type NodeID int

// Node is one vertex of the QODG.
type Node struct {
	ID NodeID
	// Op is the gate this node represents. The zero Gate (Type ==
	// circuit.Invalid) marks the start and end pseudo-nodes.
	Op circuit.Gate
	// GateIndex is the index of Op in the source circuit, or -1 for the
	// start/end nodes.
	GateIndex int
}

// IsPseudo reports whether the node is the start or end anchor.
func (n Node) IsPseudo() bool { return n.GateIndex < 0 }

// Graph is the QODG. Edges are stored as forward adjacency lists; merged
// parallel edges appear once.
type Graph struct {
	Nodes []Node
	// Succ[i] lists the successors of node i in increasing order.
	Succ [][]NodeID
	// Pred[i] lists the predecessors of node i in increasing order.
	Pred [][]NodeID
	// NumQubits is the register size of the source circuit.
	NumQubits int
	edgeCount int
}

// Start returns the start pseudo-node's ID (always 0).
func (g *Graph) Start() NodeID { return 0 }

// End returns the end pseudo-node's ID.
func (g *Graph) End() NodeID { return NodeID(len(g.Nodes) - 1) }

// NumNodes returns |V| including the two pseudo-nodes.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumEdges returns |E| after parallel-edge merging.
func (g *Graph) NumEdges() int { return g.edgeCount }

// Build constructs the QODG from a circuit. Dependencies follow the last
// operation that touched each qubit; the start node feeds each qubit's first
// operation and each qubit's final operation feeds the end node. If two
// dependency edges connect the same ordered node pair (e.g. a CNOT followed
// immediately by another CNOT on the same two qubits) they are merged.
func Build(c *circuit.Circuit) (*Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	nOps := len(c.Gates)
	g := &Graph{
		Nodes:     make([]Node, nOps+2),
		Succ:      make([][]NodeID, nOps+2),
		Pred:      make([][]NodeID, nOps+2),
		NumQubits: c.NumQubits(),
	}
	g.Nodes[0] = Node{ID: 0, GateIndex: -1}
	for i, gate := range c.Gates {
		g.Nodes[i+1] = Node{ID: NodeID(i + 1), Op: gate, GateIndex: i}
	}
	end := NodeID(nOps + 1)
	g.Nodes[end] = Node{ID: end, GateIndex: -1}

	last := make([]NodeID, c.NumQubits()) // last node touching each qubit; 0 = start
	for i, gate := range c.Gates {
		id := NodeID(i + 1)
		for _, q := range gate.Qubits() {
			g.addEdge(last[q], id)
			last[q] = id
		}
	}
	for q := 0; q < c.NumQubits(); q++ {
		g.addEdge(last[q], end)
	}
	g.sortAdj()
	return g, nil
}

// addEdge inserts from→to, merging duplicates. Adjacency lists are built
// unsorted and deduplicated in sortAdj; during construction we do a cheap
// tail check since duplicate edges almost always arrive consecutively.
func (g *Graph) addEdge(from, to NodeID) {
	succ := g.Succ[from]
	if n := len(succ); n > 0 && succ[n-1] == to {
		return // consecutive duplicate (two-qubit op on same pair)
	}
	g.Succ[from] = append(succ, to)
	g.Pred[to] = append(g.Pred[to], from)
	g.edgeCount++
}

// sortAdj sorts adjacency lists and removes any remaining duplicates.
func (g *Graph) sortAdj() {
	dedup := func(list []NodeID) []NodeID {
		if len(list) < 2 {
			return list
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		out := list[:1]
		for _, v := range list[1:] {
			if v != out[len(out)-1] {
				out = append(out, v)
			}
		}
		return out
	}
	removed := 0
	for i := range g.Succ {
		before := len(g.Succ[i])
		g.Succ[i] = dedup(g.Succ[i])
		removed += before - len(g.Succ[i])
	}
	for i := range g.Pred {
		g.Pred[i] = dedup(g.Pred[i])
	}
	g.edgeCount -= removed
}

// Weights assigns a latency to every node. Pseudo-nodes must have weight 0.
type Weights []float64

// NewWeights builds a weight vector with weightOf evaluated per operation
// node and 0 at the pseudo-nodes.
func (g *Graph) NewWeights(weightOf func(circuit.Gate) float64) Weights {
	w := make(Weights, len(g.Nodes))
	for i, n := range g.Nodes {
		if !n.IsPseudo() {
			w[i] = weightOf(n.Op)
		}
	}
	return w
}

// CriticalPath holds the result of a longest-path query.
type CriticalPath struct {
	// Length is the total weight along the heaviest start→end path.
	Length float64
	// Nodes lists the path's node IDs from start to end (inclusive).
	Nodes []NodeID
	// CountByType counts operation nodes on the path per gate type; the
	// paper's N_CNOT^critical and N_g^critical.
	CountByType map[circuit.GateType]int
}

// LongestPath computes the critical path under the given node weights. The
// node array is in topological order by construction, so this is one linear
// sweep (the O(|V|+|E|) DAG longest-path algorithm the paper cites).
func (g *Graph) LongestPath(w Weights) (CriticalPath, error) {
	if len(w) != len(g.Nodes) {
		return CriticalPath{}, fmt.Errorf("qodg: %d weights for %d nodes", len(w), len(g.Nodes))
	}
	n := len(g.Nodes)
	dist := make([]float64, n)
	from := make([]NodeID, n)
	for i := range from {
		from[i] = -1
	}
	for u := 0; u < n; u++ {
		du := dist[u]
		for _, v := range g.Succ[u] {
			if cand := du + w[v]; cand > dist[v] || from[v] == -1 {
				dist[v] = cand
				from[v] = NodeID(u)
			}
		}
	}
	end := g.End()
	cp := CriticalPath{
		Length:      dist[end],
		CountByType: make(map[circuit.GateType]int),
	}
	// Recover the path.
	var rev []NodeID
	for v := end; v != -1; v = from[v] {
		rev = append(rev, v)
		if v == 0 {
			break
		}
	}
	cp.Nodes = make([]NodeID, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		cp.Nodes = append(cp.Nodes, rev[i])
	}
	for _, id := range cp.Nodes {
		node := g.Nodes[id]
		if !node.IsPseudo() {
			cp.CountByType[node.Op.Type]++
		}
	}
	return cp, nil
}

// Levels returns each node's ASAP level (start = 0) — the unweighted depth
// used for scheduling and reporting.
func (g *Graph) Levels() []int {
	lv := make([]int, len(g.Nodes))
	for u := range g.Nodes {
		for _, v := range g.Succ[u] {
			if lv[u]+1 > lv[v] {
				lv[v] = lv[u] + 1
			}
		}
	}
	return lv
}

// CheckAcyclic verifies the topological-order invariant: every edge points
// from a lower node ID to a higher one.
func (g *Graph) CheckAcyclic() error {
	for u := range g.Succ {
		for _, v := range g.Succ[u] {
			if int(v) <= u {
				return fmt.Errorf("qodg: back edge %d -> %d", u, v)
			}
		}
	}
	return nil
}
