package qodg

import (
	"fmt"
	"runtime"
)

// Multi-weight critical-path sweep: K weight columns relaxed per node visit
// in one traversal. A circuit × K-params grid row re-weights the same QODG K
// times; the single-column sweep would stream the CSR adjacency (and, on the
// parallel path, the level index) through cache once per column. The multi
// kernel keeps every per-node array in the same SoA layout — column c of
// node v at [v*K+c] for distance, from and weight alike — so one node's K
// states share cache lines and the inner loop is column-contiguous, and
// visits every edge exactly once, relaxing all K columns against it. Each
// column's relaxation order, float expression and tie rule are identical to
// the single-column sweep, so every column of the result is bitwise equal
// to LongestPathSerial under that column's weights.

// LongestPathMulti computes the critical path under each of K independent
// weight columns in one traversal of the graph. Column c of the result is
// bitwise identical to LongestPath(ws[c]). The dispatch contract matches
// LongestPathInto: graphs with at least ParallelThreshold nodes on a
// multi-core budget take the level-partitioned parallel sweep. An empty ws
// returns nil.
func (g *Graph) LongestPathMulti(ws []Weights, s *PathScratch) ([]CriticalPath, error) {
	if err := g.validateColumns(ws); err != nil {
		return nil, err
	}
	if len(ws) == 0 {
		return nil, nil
	}
	if len(ws) == 1 {
		cp, err := g.LongestPathInto(ws[0], s)
		if err != nil {
			return nil, err
		}
		return []CriticalPath{cp}, nil
	}
	if s == nil {
		s = new(PathScratch)
	}
	return g.LongestPathMultiStrided(g.packColumns(ws, s), len(ws), s)
}

// LongestPathMultiStrided is LongestPathMulti over an interleaved weight
// slab: column c of node v weighs wm[v*K+c]. Callers that assemble weights
// per node (one K-row per gate) hand the slab over directly and skip the
// column-major packing step. len(wm) must be at least K × the node count.
func (g *Graph) LongestPathMultiStrided(wm []float64, k int, s *PathScratch) ([]CriticalPath, error) {
	n := len(g.Nodes)
	if err := validateSlab(wm, n, k); err != nil {
		return nil, err
	}
	if k == 0 {
		return nil, nil
	}
	if k == 1 {
		// A one-column slab is already a Weights vector; the specialized
		// single-column sweep avoids the strided kernel's per-node slice
		// overhead and is the bitwise definition the multi kernel chases.
		cp, err := g.LongestPathInto(Weights(wm[:n]), s)
		if err != nil {
			return nil, err
		}
		return []CriticalPath{cp}, nil
	}
	if s == nil {
		s = new(PathScratch)
	}
	s.distM = grow(s.distM, n*k)
	s.fromM = grow(s.fromM, n*k)
	workers := runtime.GOMAXPROCS(0)
	if s.MaxWorkers > 0 && workers > s.MaxWorkers {
		workers = s.MaxWorkers
	}
	if n >= ParallelThreshold && workers > 1 {
		g.relaxParallelMulti(wm, s, k, workers)
	} else {
		g.relaxRangeMulti(wm, s.distM[:n*k], s.fromM[:n*k], k, 0, n)
	}
	return g.recoverPaths(s.distM, s.fromM, k), nil
}

// LongestPathMultiSerial forces the serial relaxation over all K columns —
// the batched counterpart of LongestPathSerial, with freshly allocated
// state.
func (g *Graph) LongestPathMultiSerial(ws []Weights) ([]CriticalPath, error) {
	if err := g.validateColumns(ws); err != nil {
		return nil, err
	}
	if len(ws) == 0 {
		return nil, nil
	}
	n, k := len(g.Nodes), len(ws)
	wm := make([]float64, n*k)
	packColumnsInto(ws, wm)
	dist := make([]float64, n*k)
	from := make([]NodeID, n*k)
	g.relaxRangeMulti(wm, dist, from, k, 0, n)
	return g.recoverPaths(dist, from, k), nil
}

// LongestPathMultiParallel forces the level-partitioned multi-column
// relaxation with the given worker count regardless of ParallelThreshold and
// GOMAXPROCS — the equivalence tests drive the parallel machinery through it
// even on graphs and machines the auto dispatch would run serially.
func (g *Graph) LongestPathMultiParallel(ws []Weights, s *PathScratch, workers int) ([]CriticalPath, error) {
	if err := g.validateColumns(ws); err != nil {
		return nil, err
	}
	if len(ws) == 0 {
		return nil, nil
	}
	if s == nil {
		s = new(PathScratch)
	}
	if workers < 1 {
		workers = 1
	}
	n, k := len(g.Nodes), len(ws)
	wm := g.packColumns(ws, s)
	s.distM = grow(s.distM, n*k)
	s.fromM = grow(s.fromM, n*k)
	g.relaxParallelMulti(wm, s, k, workers)
	return g.recoverPaths(s.distM, s.fromM, k), nil
}

func (g *Graph) validateColumns(ws []Weights) error {
	for c, w := range ws {
		if len(w) != len(g.Nodes) {
			return fmt.Errorf("qodg: column %d: %d weights for %d nodes", c, len(w), len(g.Nodes))
		}
	}
	return nil
}

func validateSlab(wm []float64, n, k int) error {
	if len(wm) < n*k {
		return fmt.Errorf("qodg: weight slab holds %d entries, want %d nodes × %d columns", len(wm), n, k)
	}
	return nil
}

// packColumns transposes column-major weight vectors into the scratch's
// interleaved slab.
func (g *Graph) packColumns(ws []Weights, s *PathScratch) []float64 {
	s.weightM = grow(s.weightM, len(g.Nodes)*len(ws))
	packColumnsInto(ws, s.weightM)
	return s.weightM
}

func packColumnsInto(ws []Weights, wm []float64) {
	k := len(ws)
	for c, w := range ws {
		for v, wv := range w {
			wm[v*k+c] = wv
		}
	}
}

// relaxParallelMulti reuses the single-column sweep's level partition and
// worker gang verbatim — only the per-span kernel changes, so the adjacency
// and level index are built and streamed once for all K columns. Levels
// partition the node set and the span kernel writes every visited row, so
// grounding the level-0 sources explicitly (the level sweep starts at 1)
// replaces the global init pass.
func (g *Graph) relaxParallelMulti(wm []float64, s *PathScratch, k, workers int) {
	depth := g.buildLevelIndex(s, workers)
	dist := s.distM[:len(g.Nodes)*k]
	from := s.fromM[:len(g.Nodes)*k]
	g.relaxSpanMulti(wm, dist, from, k, s.levelNodes[s.levelOff[0]:s.levelOff[1]])
	g.forEachLevel(s, workers, depth, func(span []NodeID) {
		g.relaxSpanMulti(wm, dist, from, k, span)
	})
}

// relaxSpanMulti finalizes all K columns of a slice of same-level nodes,
// with relaxSpan's exact pull expression and tie rule per column.
func (g *Graph) relaxSpanMulti(wm, dist []float64, from []NodeID, k int, span []NodeID) {
	for _, v := range span {
		g.relaxNodeMulti(wm, dist, from, k, v)
	}
}

// relaxRangeMulti finalizes all K columns of every node in the contiguous
// ID range [lo, hi) — the serial pass. Node IDs are topologically ordered,
// so by the time the pass reaches v every predecessor's row is final and v
// can pull its own max — the same pull form relaxSpan uses, which
// reproduces relaxSerial's push byte-for-byte: predecessors arrive in the
// ascending order the push offers them in, the first offer is always taken
// and later offers only when strictly greater, with the identical
// dist[p]+w[v] expression.
func (g *Graph) relaxRangeMulti(wm, dist []float64, from []NodeID, k, lo, hi int) {
	for v := lo; v < hi; v++ {
		g.relaxNodeMulti(wm, dist, from, k, NodeID(v))
	}
}

// relaxNodeMulti writes node v's K-column dist/from row from its finalized
// predecessors. The first predecessor's offer is taken unconditionally and
// later ones only when strictly greater — exactly the push tie rule, which
// hands ties to the lowest-ID predecessor. A node without predecessors gets
// the ground state the push would have left untouched. Every row the loop
// touches — v's weights, v's state, each predecessor's distances — is a
// K-contiguous slice, so the node visit streams whole cache lines.
func (g *Graph) relaxNodeMulti(wm, dist []float64, from []NodeID, k int, v NodeID) {
	vb := int(v) * k
	dv := dist[vb : vb+k]
	fv := from[vb : vb+k]
	preds := g.Pred(v)
	if len(preds) == 0 {
		for c := range dv {
			dv[c] = 0
			fv[c] = -1
		}
		return
	}
	wv := wm[vb : vb+k]
	p0 := preds[0]
	pb := int(p0) * k
	dp := dist[pb : pb+k]
	for c, wc := range wv {
		dv[c] = dp[c] + wc
		fv[c] = p0
	}
	for _, p := range preds[1:] {
		pb := int(p) * k
		dp := dist[pb : pb+k]
		for c, wc := range wv {
			if cand := dp[c] + wc; cand > dv[c] {
				dv[c] = cand
				fv[c] = p
			}
		}
	}
}

// recoverPaths splits the K-column slabs into per-column CriticalPaths.
func (g *Graph) recoverPaths(dist []float64, from []NodeID, k int) []CriticalPath {
	cps := make([]CriticalPath, k)
	for c := 0; c < k; c++ {
		cps[c] = g.recoverPathStrided(dist, from, k, c)
	}
	return cps
}
