package qodg

import (
	"maps"
	"math"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/benchgen"
	"repro/internal/circuit"
)

// pathsBitwiseEqual compares two critical paths with no float tolerance:
// the parallel sweep must reproduce the serial oracle byte for byte.
func assertPathsBitwiseEqual(t *testing.T, label string, got, want CriticalPath) {
	t.Helper()
	if math.Float64bits(got.Length) != math.Float64bits(want.Length) {
		t.Fatalf("%s: length %v (bits %x), want %v (bits %x)",
			label, got.Length, math.Float64bits(got.Length), want.Length, math.Float64bits(want.Length))
	}
	if !slices.Equal(got.Nodes, want.Nodes) {
		t.Fatalf("%s: path nodes diverge: %d vs %d nodes (first few: %v vs %v)",
			label, len(got.Nodes), len(want.Nodes), head(got.Nodes), head(want.Nodes))
	}
	if !maps.Equal(got.CountByType, want.CountByType) {
		t.Fatalf("%s: CountByType %v, want %v", label, got.CountByType, want.CountByType)
	}
}

func head(n []NodeID) []NodeID {
	if len(n) > 8 {
		return n[:8]
	}
	return n
}

// assertSweepStateEqual compares the full dist/from relaxation state, which
// is strictly stronger than comparing recovered paths.
func assertSweepStateEqual(t *testing.T, label string, g *Graph, w Weights, s *PathScratch) {
	t.Helper()
	n := len(g.Nodes)
	dist := make([]float64, n)
	from := make([]NodeID, n)
	g.relaxSerial(w, dist, from)
	for i := 0; i < n; i++ {
		if math.Float64bits(dist[i]) != math.Float64bits(s.dist[i]) {
			t.Fatalf("%s: dist[%d] = %v, serial %v", label, i, s.dist[i], dist[i])
		}
		if from[i] != s.from[i] {
			t.Fatalf("%s: from[%d] = %d, serial %d", label, i, s.from[i], from[i])
		}
	}
}

// paperSuite returns the benchmarks the equivalence test covers: all 18
// paper circuits normally, the sub-100k-operation subset under -short (the
// CI race step runs -short, so the parallel machinery is race-checked
// there on the smaller rows plus the randomized DAGs below).
func paperSuite(t testing.TB) []string {
	t.Helper()
	if !testing.Short() {
		return benchgen.Names()
	}
	var out []string
	for _, name := range benchgen.Names() {
		if benchgen.Paper[name].Operations < 100000 {
			out = append(out, name)
		}
	}
	return out
}

// coreWeights mimics the estimator's re-weighting: CNOTs get one latency,
// everything else another — both chosen so different path prefixes can tie
// exactly and the lowest-predecessor tie rule is actually exercised.
func coreWeights(g *Graph) Weights {
	return g.NewWeights(func(gt circuit.Gate) float64 {
		if gt.Type == circuit.CNOT {
			return 1000.5
		}
		return 100.25
	})
}

// TestLongestPathParallelMatchesSerialOnPaperBenchmarks is the tentpole's
// contract: on every paper benchmark, the level-partitioned parallel sweep
// must reproduce the serial oracle bitwise — dist, from, path nodes, length
// and per-type counts — across worker counts, with one shared scratch
// reused across all circuits to prove stale state cannot leak through.
func TestLongestPathParallelMatchesSerialOnPaperBenchmarks(t *testing.T) {
	shared := new(PathScratch)
	for _, name := range paperSuite(t) {
		c, err := benchgen.GenerateFT(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := Build(c)
		if err != nil {
			t.Fatal(err)
		}
		w := coreWeights(g)
		want, err := g.LongestPathSerial(w)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 7} {
			got, err := g.LongestPathParallel(w, shared, workers)
			if err != nil {
				t.Fatal(err)
			}
			assertPathsBitwiseEqual(t, name, got, want)
			assertSweepStateEqual(t, name, g, w, shared)
		}
		// The auto dispatcher (whatever path it picks on this machine)
		// must agree too, including through a reused scratch.
		got, err := g.LongestPathInto(w, shared)
		if err != nil {
			t.Fatal(err)
		}
		assertPathsBitwiseEqual(t, name+"/auto", got, want)
	}
}

// randomCircuit builds a synthetic circuit with rng-driven structure: some
// are wide and shallow (many qubits, wide levels — the parallel sweep's
// target shape), some deep and narrow.
func randomCircuit(rng *rand.Rand, qubits, gates int) *circuit.Circuit {
	c := circuit.New("rand", qubits)
	oneQ := []circuit.GateType{circuit.H, circuit.T, circuit.Tdg, circuit.X}
	for i := 0; i < gates; i++ {
		if rng.Intn(3) == 0 {
			c.Append(circuit.Gate{Type: oneQ[rng.Intn(len(oneQ))], Targets: []int{rng.Intn(qubits)}})
			continue
		}
		a := rng.Intn(qubits)
		b := rng.Intn(qubits)
		for b == a {
			b = rng.Intn(qubits)
		}
		c.Append(circuit.Gate{Type: circuit.CNOT, Controls: []int{a}, Targets: []int{b}})
	}
	return c
}

// TestLongestPathParallelMatchesSerialOnRandomDAGs fuzzes the equivalence
// over randomized layered DAGs: varied shapes, tie-heavy weight vectors
// (drawn from a tiny value set so max-ties are common), varied worker
// counts, one scratch shared across every graph.
func TestLongestPathParallelMatchesSerialOnRandomDAGs(t *testing.T) {
	shared := new(PathScratch)
	shapes := []struct{ qubits, gates int }{
		{3, 40},      // tiny, near-serial
		{200, 3000},  // wide and shallow
		{16, 5000},   // deep and narrow
		{512, 20000}, // wide, spans many chunks at small grains
	}
	tieValues := []float64{1, 1, 2, 2.5} // duplicates make exact ties likely
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		shape := shapes[int(seed)%len(shapes)]
		c := randomCircuit(rng, shape.qubits, shape.gates)
		g, err := Build(c)
		if err != nil {
			t.Fatal(err)
		}
		w := g.NewWeights(func(gt circuit.Gate) float64 {
			return tieValues[rng.Intn(len(tieValues))]
		})
		want, err := g.LongestPathSerial(w)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			got, err := g.LongestPathParallel(w, shared, workers)
			if err != nil {
				t.Fatal(err)
			}
			label := c.Name
			assertPathsBitwiseEqual(t, label, got, want)
			assertSweepStateEqual(t, label, g, w, shared)
		}
	}
}

// TestLongestPathAutoThreshold pins the dispatch contract: below the
// threshold (or on one CPU) the serial sweep runs; either way results match
// the oracle, including when the threshold is forced down to drive every
// graph through the parallel path.
func TestLongestPathAutoThreshold(t *testing.T) {
	defer func(old int) { ParallelThreshold = old }(ParallelThreshold)
	c := randomCircuit(rand.New(rand.NewSource(42)), 64, 2000)
	g, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	w := coreWeights(g)
	want, err := g.LongestPathSerial(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, threshold := range []int{1, 1 << 30} {
		ParallelThreshold = threshold
		got, err := g.LongestPath(w)
		if err != nil {
			t.Fatal(err)
		}
		assertPathsBitwiseEqual(t, "auto", got, want)
	}
	// MaxWorkers caps the fan-out (1 forces the serial sweep even above
	// threshold); results stay identical at every setting.
	ParallelThreshold = 1
	for _, maxWorkers := range []int{1, 2} {
		s := &PathScratch{MaxWorkers: maxWorkers}
		got, err := g.LongestPathInto(w, s)
		if err != nil {
			t.Fatal(err)
		}
		assertPathsBitwiseEqual(t, "maxworkers", got, want)
	}
}

// TestLongestPathWeightLengthMismatch covers the error path of every
// entry point.
func TestLongestPathWeightLengthMismatch(t *testing.T) {
	c := randomCircuit(rand.New(rand.NewSource(7)), 4, 10)
	g, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	bad := make(Weights, g.NumNodes()-1)
	if _, err := g.LongestPath(bad); err == nil {
		t.Error("LongestPath accepted a short weight vector")
	}
	if _, err := g.LongestPathSerial(bad); err == nil {
		t.Error("LongestPathSerial accepted a short weight vector")
	}
	if _, err := g.LongestPathParallel(bad, nil, 4); err == nil {
		t.Error("LongestPathParallel accepted a short weight vector")
	}
}
