package qcbin

import (
	"bytes"
	"compress/gzip"
	"errors"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchgen"
	"repro/internal/circuit"
	"repro/internal/qodg"
)

// testCircuits returns a representative mix: paper benchmarks (including
// multi-control gates pre-decomposition) plus hand-built edge cases.
func testCircuits(t testing.TB) []*circuit.Circuit {
	t.Helper()
	var out []*circuit.Circuit
	for _, name := range []string{"gf2^8mult", "ham15", "mod1024adder", "hwb8ps"} {
		c, err := benchgen.Generate(name)
		if err != nil {
			t.Fatalf("Generate(%s): %v", name, err)
		}
		out = append(out, c)
	}
	empty := circuit.New("empty", 3)
	out = append(out, empty)
	named, err := circuit.NewNamed("named", []string{"alice", "b0", "työ"})
	if err != nil {
		t.Fatal(err)
	}
	named.Gates = []circuit.Gate{
		{Type: circuit.H, Targets: []int{0}},
		{Type: circuit.CNOT, Controls: []int{0}, Targets: []int{1}},
		{Type: circuit.Swap, Targets: []int{1, 2}},
		{Type: circuit.Fredkin, Controls: []int{0}, Targets: []int{1, 2}},
	}
	out = append(out, named)
	return out
}

func encodeQCB(t testing.TB, c *circuit.Circuit) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeCircuit(&buf, c); err != nil {
		t.Fatalf("EncodeCircuit(%s): %v", c.Name, err)
	}
	return buf.Bytes()
}

func scanAll(t testing.TB, s *Scanner) []circuit.Gate {
	t.Helper()
	var gates []circuit.Gate
	for s.Scan() {
		gates = append(gates, s.Gate().Clone())
	}
	if err := s.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return gates
}

func TestRoundTrip(t *testing.T) {
	for _, c := range testCircuits(t) {
		t.Run(c.Name, func(t *testing.T) {
			data := encodeQCB(t, c)
			s, err := NewScanner(bytes.NewReader(data), "fallback")
			if err != nil {
				t.Fatalf("NewScanner: %v", err)
			}
			if s.Name() != c.Name {
				t.Errorf("name = %q, want %q", s.Name(), c.Name)
			}
			if s.NumQubits() != c.NumQubits() {
				t.Errorf("qubits = %d, want %d", s.NumQubits(), c.NumQubits())
			}
			if got, want := s.Register().QubitNames(), c.QubitNames(); len(got) == len(want) {
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("qubit %d name = %q, want %q", i, got[i], want[i])
					}
				}
			} else {
				t.Errorf("register has %d names, want %d", len(got), len(want))
			}
			gates := scanAll(t, s)
			if len(gates) != len(c.Gates) {
				t.Fatalf("decoded %d gates, want %d", len(gates), len(c.Gates))
			}
			for i, g := range gates {
				if !gatesEqual(g, c.Gates[i]) {
					t.Fatalf("gate %d = %v, want %v", i, g, c.Gates[i])
				}
			}
			// Second pass via Rewind must replay identically.
			if err := s.Rewind(); err != nil {
				t.Fatalf("Rewind: %v", err)
			}
			if again := scanAll(t, s); len(again) != len(gates) {
				t.Fatalf("rewind pass decoded %d gates, want %d", len(again), len(gates))
			}
			// Materialize must equal the source circuit.
			m, err := s.Materialize()
			if err != nil {
				t.Fatalf("Materialize: %v", err)
			}
			if m.Name != c.Name || m.NumQubits() != c.NumQubits() || len(m.Gates) != len(c.Gates) {
				t.Fatalf("Materialize = %s/%d/%d, want %s/%d/%d",
					m.Name, m.NumQubits(), len(m.Gates), c.Name, c.NumQubits(), len(c.Gates))
			}
		})
	}
}

func gatesEqual(a, b circuit.Gate) bool {
	if a.Type != b.Type || len(a.Controls) != len(b.Controls) || len(a.Targets) != len(b.Targets) {
		return false
	}
	for i := range a.Controls {
		if a.Controls[i] != b.Controls[i] {
			return false
		}
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			return false
		}
	}
	return true
}

// TestEncodeFromStream exercises the two-pass GateStream encoder against
// the one-pass circuit encoder.
func TestEncodeFromStream(t *testing.T) {
	for _, c := range testCircuits(t) {
		var direct, streamed bytes.Buffer
		if err := EncodeCircuit(&direct, c); err != nil {
			t.Fatal(err)
		}
		if err := Encode(&streamed, analysis.NewCircuitStream(c)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(direct.Bytes(), streamed.Bytes()) {
			t.Errorf("%s: stream and circuit encodings differ", c.Name)
		}
	}
}

// TestDigestContainerIndependent verifies the digest depends on netlist
// content, not the container or qubit display names.
func TestDigestContainerIndependent(t *testing.T) {
	c, err := benchgen.Generate("gf2^8mult")
	if err != nil {
		t.Fatal(err)
	}
	want, err := DigestCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScanner(bytes.NewReader(encodeQCB(t, c)), "")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Digest(s)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("binary-container digest %s != circuit digest %s", got, want)
	}
	// Renaming qubits must not move the digest; renaming the circuit must.
	renamed := c.Clone()
	renamed.Name = "other"
	moved, err := DigestCircuit(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if moved == want {
		t.Error("digest ignores the circuit name")
	}
	if _, err := ParseRef(FormatRef(want)); err != nil {
		t.Errorf("ParseRef(FormatRef): %v", err)
	}
}

func TestParseRef(t *testing.T) {
	valid := FormatRef(strings.Repeat("ab", 32))
	if d, err := ParseRef(valid); err != nil || d != strings.Repeat("ab", 32) {
		t.Errorf("ParseRef(%q) = %q, %v", valid, d, err)
	}
	for _, bad := range []string{
		"", "abc", "md5:" + strings.Repeat("ab", 32),
		DigestPrefix + "short", DigestPrefix + strings.Repeat("zz", 32),
	} {
		if _, err := ParseRef(bad); err == nil {
			t.Errorf("ParseRef(%q) succeeded", bad)
		}
	}
}

// TestImageRoundTrip checks the .qca image reproduces the analysis bitwise
// at the estimate level: same metadata, same graph shapes, same estimates.
func TestImageRoundTrip(t *testing.T) {
	for _, c := range testCircuits(t) {
		a, err := analysis.AnalyzeStream(analysis.NewCircuitStream(c))
		if err != nil {
			// Wide multi-control benchmarks are rejected by analysis;
			// image round-trips only apply to analyzable circuits.
			continue
		}
		var buf bytes.Buffer
		if err := EncodeImage(&buf, a); err != nil {
			t.Fatalf("%s: EncodeImage: %v", c.Name, err)
		}
		for _, gz := range []bool{false, true} {
			data := buf.Bytes()
			if gz {
				var zbuf bytes.Buffer
				zw := gzip.NewWriter(&zbuf)
				zw.Write(data)
				zw.Close()
				data = zbuf.Bytes()
			}
			got, err := DecodeImage(data, "fallback")
			if err != nil {
				t.Fatalf("%s (gzip=%v): DecodeImage: %v", c.Name, gz, err)
			}
			assertAnalysisEqual(t, c.Name, a, got)
		}
	}
}

func assertAnalysisEqual(t *testing.T, label string, want, got *analysis.Analysis) {
	t.Helper()
	if got.Name != want.Name || got.Qubits != want.Qubits ||
		got.Operations != want.Operations || got.FT != want.FT {
		t.Fatalf("%s: metadata %s/%d/%d/%v, want %s/%d/%d/%v", label,
			got.Name, got.Qubits, got.Operations, got.FT,
			want.Name, want.Qubits, want.Operations, want.FT)
	}
	wso, ws, wpo, wp := want.QODG.CSR()
	gso, gs, gpo, gp := got.QODG.CSR()
	if !int32sEqual(wso, gso) || !nodeIDsEqual(ws, gs) ||
		!int32sEqual(wpo, gpo) || !nodeIDsEqual(wp, gp) {
		t.Fatalf("%s: QODG CSR differs after round trip", label)
	}
	woff, wnbr, wwt := want.IIG.Rows()
	goff, gnbr, gwt := got.IIG.Rows()
	if !int32sEqual(woff, goff) || !int32sEqual(wnbr, gnbr) || !int32sEqual(wwt, gwt) {
		t.Fatalf("%s: IIG CSR differs after round trip", label)
	}
	if !nodeIDsEqual(want.LastWriter(), got.LastWriter()) {
		t.Fatalf("%s: lastWriter differs after round trip", label)
	}
	for i, n := range want.QODG.Nodes {
		g := got.QODG.Nodes[i]
		if g.ID != n.ID || g.GateIndex != n.GateIndex || g.Op.Type != n.Op.Type {
			t.Fatalf("%s: node %d = %+v, want %+v", label, i, g, n)
		}
	}
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func nodeIDsEqual(a, b []qodg.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestImageCorruption flips, truncates and garbles images; every mutation
// must come back as a FormatError (or an iig validation error), never a
// panic or a silently wrong Analysis.
func TestImageCorruption(t *testing.T) {
	c, err := benchgen.GenerateFT("mod1024adder")
	if err != nil {
		t.Fatal(err)
	}
	a, err := analysis.AnalyzeStream(analysis.NewCircuitStream(c))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeImage(&buf, a); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	if _, err := DecodeImage(img, "x"); err != nil {
		t.Fatalf("pristine image failed: %v", err)
	}
	for cut := 0; cut < len(img); cut += 7 {
		if _, err := DecodeImage(img[:cut], "x"); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	if _, err := DecodeImage(append(bytes.Clone(img), 0xFF), "x"); err == nil {
		t.Error("trailing garbage decoded successfully")
	}
	var fe *FormatError
	if _, err := DecodeImage([]byte("not an image at all"), "x"); !errors.As(err, &fe) {
		t.Errorf("junk input: got %v, want FormatError", err)
	}
}

// TestScannerDiagnostics feeds malformed .qcb bytes and checks for clean
// FormatErrors.
func TestScannerDiagnostics(t *testing.T) {
	c, err := benchgen.GenerateFT("mod1024adder")
	if err != nil {
		t.Fatal(err)
	}
	data := encodeQCB(t, c)

	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(data); cut += 5 {
			s, err := NewScanner(bytes.NewReader(data[:cut]), "t")
			if err != nil {
				continue // header truncation: fine, already an error
			}
			for s.Scan() {
			}
			// Truncation inside a gate record must error; a cut exactly on a
			// record boundary is a legitimately shorter netlist.
			_ = s.Err()
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		if _, err := NewScanner(bytes.NewReader([]byte(".v 1 2 3\nBEGIN\n")), "t"); err == nil {
			t.Fatal("text netlist accepted as .qcb")
		}
	})
	t.Run("bad opcode", func(t *testing.T) {
		bad := bytes.Clone(data)
		bad[len(bad)-1] = 0x7F // stomp the final record's byte stream
		s, err := NewScanner(bytes.NewReader(bad), "t")
		if err != nil {
			t.Fatal(err)
		}
		for s.Scan() {
		}
		// Depending on where the stomp lands this is either an opcode or an
		// operand error; it must not be a clean EOF with the same gate count.
		if s.Err() == nil && s.GateIndex() == len(c.Gates)-1 {
			t.Error("corrupted tail decoded to the full gate list")
		}
	})
	t.Run("terminal error sticks", func(t *testing.T) {
		bad := []byte{MagicQCB[0], MagicQCB[1], MagicQCB[2], MagicQCB[3], Version,
			0,      // empty name
			2,      // 2 qubits
			1, 'a', // qubit 0
			1, 'b', // qubit 1
			byte(circuit.CNOT), 0, 5, // operand out of range
		}
		s, err := NewScanner(bytes.NewReader(bad), "t")
		if err != nil {
			t.Fatal(err)
		}
		if s.Scan() {
			t.Fatal("out-of-range operand scanned")
		}
		if s.Err() == nil {
			t.Fatal("no error for out-of-range operand")
		}
		if err := s.Rewind(); err == nil {
			t.Fatal("Rewind cleared a terminal decode error")
		}
	})
}

// TestAnalyzeViaScanner runs the full analysis pipeline over a binary
// scanner and checks it matches the circuit-stream analysis.
func TestAnalyzeViaScanner(t *testing.T) {
	c, err := benchgen.GenerateFT("gf2^8mult")
	if err != nil {
		t.Fatal(err)
	}
	want, err := analysis.AnalyzeStream(analysis.NewCircuitStream(c))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScanner(bytes.NewReader(encodeQCB(t, c)), "")
	if err != nil {
		t.Fatal(err)
	}
	got, err := analysis.AnalyzeStream(s)
	if err != nil {
		t.Fatal(err)
	}
	assertAnalysisEqual(t, c.Name, want, got)
}

// FuzzQCBin throws arbitrary bytes at the binary netlist decoder; decodable
// inputs must re-encode and re-decode to the identical gate stream, and
// nothing may panic.
func FuzzQCBin(f *testing.F) {
	for _, name := range []string{"mod1024adder", "ham15"} {
		c, err := benchgen.Generate(name)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeCircuit(&buf, c); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
	}
	f.Add([]byte{MagicQCB[0], 'Q', 'C', 'B', Version, 0, 1, 0, byte(circuit.X), 0})
	f.Add([]byte(".v 1 2\nBEGIN\nH 1\nEND\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := NewScanner(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		var gates []circuit.Gate
		for s.Scan() {
			g := s.Gate()
			if err := g.Validate(s.NumQubits()); err != nil {
				t.Fatalf("scanner yielded invalid gate: %v", err)
			}
			gates = append(gates, g.Clone())
		}
		if s.Err() != nil {
			return
		}
		// Clean decode: round-trip through the encoder must reproduce the
		// same gates bit-for-bit at the gate level.
		m, err := s.Materialize()
		if err != nil {
			t.Fatalf("clean stream failed to materialize: %v", err)
		}
		var buf bytes.Buffer
		if err := EncodeCircuit(&buf, m); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		s2, err := NewScanner(bytes.NewReader(buf.Bytes()), "fuzz2")
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		i := 0
		for s2.Scan() {
			if i >= len(gates) || !gatesEqual(s2.Gate(), gates[i]) {
				t.Fatalf("re-decoded gate %d differs", i)
			}
			i++
		}
		if s2.Err() != nil || i != len(gates) {
			t.Fatalf("re-decode: %d gates, err %v; want %d gates", i, s2.Err(), len(gates))
		}
	})
}

// FuzzImage throws arbitrary bytes at the Analysis image decoder: it must
// never panic, and whatever decodes must be internally consistent enough
// to re-encode.
func FuzzImage(f *testing.F) {
	// A small hand-built seed keeps per-exec cost low so the CI fuzz smoke
	// actually explores mutations.
	c := circuit.New("seed", 4)
	c.Gates = []circuit.Gate{
		{Type: circuit.H, Targets: []int{0}},
		{Type: circuit.CNOT, Controls: []int{0}, Targets: []int{1}},
		{Type: circuit.CNOT, Controls: []int{1}, Targets: []int{2}},
		{Type: circuit.X, Targets: []int{3}},
		{Type: circuit.CNOT, Controls: []int{2}, Targets: []int{3}},
	}
	a, err := analysis.AnalyzeStream(analysis.NewCircuitStream(c))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeImage(&buf, a); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()-9])
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeImage(data, "fuzz")
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := EncodeImage(&out, got); err != nil {
			t.Fatalf("decoded image failed to re-encode: %v", err)
		}
	})
}
