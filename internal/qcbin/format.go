// Package qcbin implements LEQA's compact binary netlist format (.qcb) and
// the serialized Analysis image (.qca) behind the content-addressed circuit
// store.
//
// A .qcb file is the wire form of a gate stream: a fixed magic, a register
// table (circuit and qubit names), then one varint-packed record per gate —
// opcode byte plus uvarint operands — until end of file. The format is
// append-friendly (no trailing gate count) and typically 5–10× smaller than
// the textual .qc it encodes, with a decoder that does no per-gate
// allocation and no text tokenization at all.
//
// A .qca image is a decoded circuit's complete analysis product: both CSR
// graphs (QODG adjacency in both directions, collapsed IIG rows), the
// per-gate node types, the dependency scan's final last-writer state and
// the metadata header — everything analysis.AnalyzeStream computes, laid
// out as raw little-endian arrays so a store hit is a read + reslice rather
// than a re-parse + re-analyze.
//
// Both formats begin with a non-ASCII magic byte, so they can never be
// confused with a textual .qc netlist; gzip wrapping is detected the same
// way (RFC 1952 magic) and handled transparently by the read paths.
package qcbin

import (
	"encoding/binary"
	"fmt"

	"repro/internal/circuit"
)

// File magics. The leading 0x9D byte is outside ASCII, so no textual .qc
// netlist can begin with either sequence.
var (
	// MagicQCB opens a binary netlist file.
	MagicQCB = [4]byte{0x9D, 'Q', 'C', 'B'}
	// MagicQCA opens a serialized Analysis image.
	MagicQCA = [4]byte{0x9D, 'Q', 'C', 'A'}
	// MagicGzip is the RFC 1952 member header prefix.
	MagicGzip = [2]byte{0x1f, 0x8b}
)

// Version is the current revision of both binary layouts.
const Version = 1

// maxNameLen caps any length-prefixed name field, so a corrupted or
// adversarial header cannot demand an absurd allocation.
const maxNameLen = 1 << 20

// gateShape describes one opcode's operand record: an exact control and
// target count, or (for the multi-control gates) a leading uvarint control
// count with a minimum.
type gateShape struct {
	controls, targets int
	minControls       int // >0: record carries "uvarint k, k controls"
}

// shapes mirrors circuit.Gate.Validate's arity table; the opcode byte is
// the circuit.GateType value itself.
var shapes = [...]gateShape{
	circuit.X:       {controls: 0, targets: 1},
	circuit.Y:       {controls: 0, targets: 1},
	circuit.Z:       {controls: 0, targets: 1},
	circuit.H:       {controls: 0, targets: 1},
	circuit.S:       {controls: 0, targets: 1},
	circuit.Sdg:     {controls: 0, targets: 1},
	circuit.T:       {controls: 0, targets: 1},
	circuit.Tdg:     {controls: 0, targets: 1},
	circuit.CNOT:    {controls: 1, targets: 1},
	circuit.Toffoli: {controls: 2, targets: 1},
	circuit.Fredkin: {controls: 1, targets: 2},
	circuit.MCT:     {targets: 1, minControls: 3},
	circuit.MCF:     {targets: 2, minControls: 2},
	circuit.Swap:    {controls: 0, targets: 2},
}

// validOpcode reports whether b is a known gate opcode.
func validOpcode(b byte) bool {
	return int(b) >= int(circuit.X) && int(b) < len(shapes)
}

// appendGateRecord appends one gate's canonical binary record: the opcode
// byte, a uvarint control count for the multi-control shapes, then every
// operand (controls first) as a uvarint. The same bytes feed the .qcb
// encoder and the content digest, so the digest of a netlist is
// independent of which textual or binary container it arrived in.
func appendGateRecord(buf []byte, g circuit.Gate) []byte {
	buf = append(buf, byte(g.Type))
	if s := shapes[g.Type]; s.minControls > 0 {
		buf = binary.AppendUvarint(buf, uint64(len(g.Controls)))
	}
	for _, q := range g.Controls {
		buf = binary.AppendUvarint(buf, uint64(q))
	}
	for _, q := range g.Targets {
		buf = binary.AppendUvarint(buf, uint64(q))
	}
	return buf
}

// FormatError reports a malformed binary input with its byte offset; the
// decoder's answer to circuit.SyntaxError.
type FormatError struct {
	Name   string // netlist or image label
	Offset int64  // byte offset of the failure within the container
	Msg    string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("qcbin: %s: offset %d: %s", e.Name, e.Offset, e.Msg)
}

func formatErr(name string, off int64, format string, args ...any) error {
	return &FormatError{Name: name, Offset: off, Msg: fmt.Sprintf(format, args...)}
}
