package qcbin

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/circuit"
)

// DigestPrefix is the scheme tag of a circuit reference ("sha256:<hex>"),
// the spelling the leqad by-reference circuit specs carry.
const DigestPrefix = "sha256:"

// digestDomain seeds the hash so a netlist digest can never collide with
// any other SHA-256 use; the trailing version digit covers future layout
// changes.
const digestDomain = "LEQA-QCD1\n"

// Digest computes the canonical content digest of a gate stream: SHA-256
// over the domain tag, each gate's canonical binary record (the same bytes
// the .qcb encoder emits), a zero terminator (no gate record starts with
// the Invalid opcode), the register size and the circuit name. The digest
// is independent of the container the stream arrived in — textual .qc,
// binary .qcb, gzipped either way — and of qubit display names, which no
// analysis product depends on. Returns the bare hex (no prefix).
//
// The stream is rewound first and left at end of stream; one full pass.
func Digest(src analysis.GateStream) (string, error) {
	if err := src.Rewind(); err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(digestDomain))
	var buf []byte
	for src.Scan() {
		buf = appendGateRecord(buf[:0], src.Gate())
		h.Write(buf)
	}
	if err := src.Err(); err != nil {
		return "", err
	}
	buf = append(buf[:0], 0)
	buf = binary.AppendUvarint(buf, uint64(src.NumQubits()))
	name := src.Name()
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	h.Write(buf)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// DigestCircuit is Digest over a materialized circuit.
func DigestCircuit(c *circuit.Circuit) (string, error) {
	return Digest(analysis.NewCircuitStream(c))
}

// ParseRef validates a "sha256:<64 hex>" circuit reference and returns the
// bare lowercase hex digest.
func ParseRef(ref string) (string, error) {
	hexPart, ok := strings.CutPrefix(ref, DigestPrefix)
	if !ok {
		return "", fmt.Errorf("qcbin: circuit ref %q must start with %q", ref, DigestPrefix)
	}
	if len(hexPart) != sha256.Size*2 {
		return "", fmt.Errorf("qcbin: circuit ref digest has %d hex chars, want %d", len(hexPart), sha256.Size*2)
	}
	hexPart = strings.ToLower(hexPart)
	if _, err := hex.DecodeString(hexPart); err != nil {
		return "", fmt.Errorf("qcbin: circuit ref %q: not hex", ref)
	}
	return hexPart, nil
}

// FormatRef renders a bare hex digest as a "sha256:<hex>" reference.
func FormatRef(digest string) string { return DigestPrefix + digest }
