package qcbin

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/circuit"
)

// registerProvider is the optional interface gate streams with a real qubit
// register implement (ingest.Scanner, analysis.CircuitStream); streams
// without one get synthesized q<i> names.
type registerProvider interface {
	Register() *circuit.Circuit
}

// Encode writes src as a .qcb binary netlist. The stream is consumed twice:
// one pass fixes the register (a .qc stream may auto-declare qubits as it
// goes; the binary header needs the final count up front), then a rewound
// pass emits the gate records. The stream is left at end of its second
// pass.
func Encode(w io.Writer, src analysis.GateStream) error {
	if err := src.Rewind(); err != nil {
		return err
	}
	for src.Scan() {
	}
	if err := src.Err(); err != nil {
		return err
	}
	numQ := src.NumQubits()
	var names []string
	if rp, ok := src.(registerProvider); ok {
		names = rp.Register().QubitNames()
	}
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, src.Name(), numQ, names); err != nil {
		return err
	}
	if err := src.Rewind(); err != nil {
		return err
	}
	var buf []byte
	for src.Scan() {
		buf = appendGateRecord(buf[:0], src.Gate())
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	if err := src.Err(); err != nil {
		return err
	}
	return bw.Flush()
}

// EncodeCircuit writes a materialized circuit as a .qcb binary netlist in
// one pass.
func EncodeCircuit(w io.Writer, c *circuit.Circuit) error {
	if err := c.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, c.Name, c.NumQubits(), c.QubitNames()); err != nil {
		return err
	}
	var buf []byte
	for _, g := range c.Gates {
		buf = appendGateRecord(buf[:0], g)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeHeader emits the .qcb preamble: magic, version, circuit name and the
// register table. A nil names slice synthesizes q<i> display names.
func writeHeader(bw *bufio.Writer, name string, numQ int, names []string) error {
	if names != nil && len(names) != numQ {
		return fmt.Errorf("qcbin: register table has %d names for %d qubits", len(names), numQ)
	}
	if _, err := bw.Write(MagicQCB[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(Version); err != nil {
		return err
	}
	writeString(bw, name)
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(numQ))
	bw.Write(buf)
	for i := 0; i < numQ; i++ {
		if names != nil {
			writeString(bw, names[i])
		} else {
			writeString(bw, fmt.Sprintf("q%d", i))
		}
	}
	return nil
}

func writeString(bw *bufio.Writer, s string) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(s)))
	bw.Write(buf[:n])
	bw.WriteString(s)
}
