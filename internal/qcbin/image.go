package qcbin

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"io"
	"math"

	"repro/internal/analysis"
	"repro/internal/circuit"
	"repro/internal/iig"
	"repro/internal/qodg"
)

// The .qca image, version 1 (all multi-byte integers little-endian u32,
// counts as uvarints):
//
//	magic "\x9dQCA", version byte
//	name string, uvarint qubits Q, uvarint operations G, FT byte
//	G node-type bytes (gate opcodes, nodes 1..G)
//	succOff (n+1)·u32, succ Es·u32      n = G+2, Es = succOff[n]
//	predOff (n+1)·u32, pred Ep·u32
//	lastWriter Q·u32
//	iigOff (Q+1)·u32, iigNbr L·u32, iigWt L·u32   L = iigOff[Q]
//
// That is the complete AnalyzeStream product: decoding is a handful of
// array reads instead of a parse + analysis, and the decoded Analysis is
// estimate-for-estimate identical to a fresh one.

// EncodeImage serializes an Analysis as a .qca image. The Analysis must
// carry both graphs (any Analyze/AnalyzeStream product does); arena-borrowed
// analyses are fine — the image copies everything out.
func EncodeImage(w io.Writer, a *analysis.Analysis) error {
	if a.QODG == nil || a.IIG == nil {
		return formatErr(a.Name, 0, "analysis has no graphs to serialize")
	}
	nodes := a.QODG.Nodes
	n := len(nodes)
	if n != a.Operations+2 {
		return formatErr(a.Name, 0, "QODG has %d nodes for %d operations", n, a.Operations)
	}
	if int64(n) >= math.MaxUint32 {
		return formatErr(a.Name, 0, "%d nodes overflow the u32 image layout", n)
	}
	succOff, succ, predOff, pred := a.QODG.CSR()
	iigOff, iigNbr, iigWt := a.IIG.Rows()

	bw := bufio.NewWriterSize(w, 1<<16)
	bw.Write(MagicQCA[:])
	bw.WriteByte(Version)
	writeString(bw, a.Name)
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(a.Qubits))
	hdr = binary.AppendUvarint(hdr, uint64(a.Operations))
	ft := byte(0)
	if a.FT {
		ft = 1
	}
	hdr = append(hdr, ft)
	bw.Write(hdr)
	for i := 1; i <= a.Operations; i++ {
		bw.WriteByte(byte(nodes[i].Op.Type))
	}
	writeU32s(bw, succOff)
	writeU32s(bw, succ)
	writeU32s(bw, predOff)
	writeU32s(bw, pred)
	writeU32s(bw, a.LastWriter())
	writeU32s(bw, iigOff)
	writeU32s(bw, iigNbr)
	writeU32s(bw, iigWt)
	return bw.Flush()
}

// writeU32s emits vals as packed little-endian u32, batching through one
// stack chunk so large CSR sections don't pay a bufio call per element.
func writeU32s[T ~int | ~int32](bw *bufio.Writer, vals []T) {
	var chunk [4096]byte
	for len(vals) > 0 {
		n := min(len(vals), len(chunk)/4)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(chunk[i*4:], uint32(vals[i]))
		}
		bw.Write(chunk[:n*4])
		vals = vals[n:]
	}
}

// DecodeImage reassembles an Analysis from a .qca image, transparently
// inflating a gzip-wrapped one. fallbackName labels diagnostics (and the
// Analysis) when the image header carries an empty name. Every section
// length is validated against the bytes actually present before anything
// is allocated, and every node/qubit index is range-checked, so a
// truncated or corrupted image yields a FormatError, never a panic.
func DecodeImage(data []byte, fallbackName string) (*analysis.Analysis, error) {
	if len(data) >= 2 && data[0] == MagicGzip[0] && data[1] == MagicGzip[1] {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, formatErr(fallbackName, 0, "gzip: %v", err)
		}
		if data, err = io.ReadAll(zr); err != nil {
			return nil, formatErr(fallbackName, 0, "gzip: %v", err)
		}
		if err := zr.Close(); err != nil {
			return nil, formatErr(fallbackName, 0, "gzip: %v", err)
		}
	}
	r := &imgReader{name: fallbackName, data: data}
	magic, err := r.need(4, "magic")
	if err != nil {
		return nil, err
	}
	if [4]byte(magic) != MagicQCA {
		return nil, formatErr(r.name, 0, "bad magic % x; not a .qca image", magic)
	}
	ver, err := r.need(1, "version")
	if err != nil {
		return nil, err
	}
	if ver[0] != Version {
		return nil, formatErr(r.name, 4, "unsupported version %d (want %d)", ver[0], Version)
	}
	name, err := r.string("image name")
	if err != nil {
		return nil, err
	}
	if name != "" {
		r.name = name
	} else {
		name = fallbackName
	}
	numQ, err := r.uvarint("qubit count")
	if err != nil {
		return nil, err
	}
	if numQ > maxRegister {
		return nil, formatErr(r.name, int64(r.off), "register of %d qubits exceeds the %d cap", numQ, maxRegister)
	}
	ops, err := r.uvarint("operation count")
	if err != nil {
		return nil, err
	}
	ftb, err := r.need(1, "FT flag")
	if err != nil {
		return nil, err
	}
	if ftb[0] > 1 {
		return nil, formatErr(r.name, int64(r.off-1), "FT flag %d is not boolean", ftb[0])
	}
	types, err := r.need(ops, "node types")
	if err != nil {
		return nil, err
	}
	for i, b := range types {
		if !validOpcode(b) {
			return nil, formatErr(r.name, int64(r.off-ops+i), "node %d: unknown opcode 0x%02x", i+1, b)
		}
	}

	n := ops + 2
	succOff, err := r.offsets(n+1, "succOff")
	if err != nil {
		return nil, err
	}
	succ, err := r.nodeIDs(int(succOff[n]), n, "succ")
	if err != nil {
		return nil, err
	}
	predOff, err := r.offsets(n+1, "predOff")
	if err != nil {
		return nil, err
	}
	pred, err := r.nodeIDs(int(predOff[n]), n, "pred")
	if err != nil {
		return nil, err
	}
	lastWriter, err := r.nodeIDs(numQ, n, "lastWriter")
	if err != nil {
		return nil, err
	}
	iigOff, err := r.offsets(numQ+1, "iigOff")
	if err != nil {
		return nil, err
	}
	iigNbr, err := r.int32s(int(iigOff[numQ]), "iigNbr")
	if err != nil {
		return nil, err
	}
	iigWt, err := r.int32s(len(iigNbr), "iigWt")
	if err != nil {
		return nil, err
	}
	if r.off != len(r.data) {
		return nil, formatErr(r.name, int64(r.off), "%d trailing bytes after image", len(r.data)-r.off)
	}

	// The sections are internally consistent; rebuild the graphs. Nodes
	// carry operand-free gates, exactly like an AnalyzeStream product.
	nodes := make([]qodg.Node, n)
	nodes[0] = qodg.Node{ID: 0, GateIndex: -1}
	for i := 0; i < ops; i++ {
		nodes[i+1] = qodg.Node{
			ID:        qodg.NodeID(i + 1),
			Op:        circuit.Gate{Type: circuit.GateType(types[i])},
			GateIndex: i,
		}
	}
	nodes[n-1] = qodg.Node{ID: qodg.NodeID(n - 1), GateIndex: -1}

	// Predecessor segments were emitted sorted (a Graph invariant), so the
	// sorted assembly path applies — no re-sort on the store-hit hot path.
	g := new(qodg.Graph)
	qodg.FromCSRSortedInto(g, nodes, numQ, succOff, succ, predOff, pred)
	ig, err := iig.FromCSRWeights(numQ, iigOff, iigNbr, iigWt)
	if err != nil {
		return nil, formatErr(r.name, int64(r.off), "%v", err)
	}
	return analysis.Restore(name, numQ, ops, ftb[0] == 1, g, ig, lastWriter), nil
}

// imgReader cursors over an in-memory .qca image with bounds checking.
type imgReader struct {
	name string
	data []byte
	off  int
}

func (r *imgReader) need(n int, what string) ([]byte, error) {
	if n < 0 || len(r.data)-r.off < n {
		return nil, formatErr(r.name, int64(r.off), "truncated image: %s needs %d bytes, %d left",
			what, n, len(r.data)-r.off)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *imgReader) uvarint(what string) (int, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, formatErr(r.name, int64(r.off), "reading %s: truncated or oversized varint", what)
	}
	if v > uint64(int(^uint(0)>>1)) {
		return 0, formatErr(r.name, int64(r.off), "%s %d overflows", what, v)
	}
	r.off += n
	return int(v), nil
}

func (r *imgReader) string(what string) (string, error) {
	n, err := r.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > maxNameLen {
		return "", formatErr(r.name, int64(r.off), "%s of %d bytes exceeds the %d cap", what, n, maxNameLen)
	}
	b, err := r.need(n, what)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// int32s reads count packed u32 values, requiring each to fit int32.
func (r *imgReader) int32s(count int, what string) ([]int32, error) {
	b, err := r.need(count*4, what)
	if err != nil {
		return nil, err
	}
	out := make([]int32, count)
	for i := range out {
		v := binary.LittleEndian.Uint32(b[i*4:])
		if v > math.MaxInt32 {
			return nil, formatErr(r.name, int64(r.off), "%s[%d] = %d overflows int32", what, i, v)
		}
		out[i] = int32(v)
	}
	return out, nil
}

// offsets reads a CSR offset row and checks it starts at zero and is
// non-decreasing.
func (r *imgReader) offsets(count int, what string) ([]int32, error) {
	off, err := r.int32s(count, what)
	if err != nil {
		return nil, err
	}
	if off[0] != 0 {
		return nil, formatErr(r.name, int64(r.off), "%s[0] = %d, want 0", what, off[0])
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return nil, formatErr(r.name, int64(r.off), "%s[%d] = %d decreases from %d", what, i, off[i], off[i-1])
		}
	}
	return off, nil
}

// nodeIDs reads count packed u32 node IDs, each range-checked against the
// node count.
func (r *imgReader) nodeIDs(count, numNodes int, what string) ([]qodg.NodeID, error) {
	b, err := r.need(count*4, what)
	if err != nil {
		return nil, err
	}
	out := make([]qodg.NodeID, count)
	for i := range out {
		v := binary.LittleEndian.Uint32(b[i*4:])
		if int64(v) >= int64(numNodes) {
			return nil, formatErr(r.name, int64(r.off), "%s[%d] = %d out of range [0,%d)", what, i, v, numNodes)
		}
		out[i] = qodg.NodeID(v)
	}
	return out, nil
}
