package qcbin

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"

	"repro/internal/circuit"
)

// Scanner streams validated gates out of a .qcb binary netlist — the binary
// counterpart of ingest.Scanner, implementing the same GateStream contract
// (Scan/Gate/Err/Rewind/NumQubits/Name) so the analysis layer cannot tell
// the containers apart. The source must seek: binary netlists are decoded
// from files or fully spooled uploads, never parsed mid-pipe (the ingest
// layer spools non-seekable binary sources before constructing a Scanner).
//
// Gates are borrowed: operand slices are reused scratch valid until the
// next Scan or Rewind; Clone to retain. Not safe for concurrent use.
type Scanner struct {
	name string
	rs   io.ReadSeeker
	br   *bufio.Reader
	reg  *circuit.Circuit

	gatesOff  int64 // absolute offset of the first gate record
	off       int64 // bytes consumed since the container start (diagnostics)
	headerLen int64

	// win is the current peeked window into br's buffer: records decode by
	// indexing win[winPos:] directly, and the consumed prefix is handed back
	// to br (one Discard) only when the window runs low. This keeps the hot
	// decode loop free of per-record bufio calls.
	win    []byte
	winPos int

	gate      circuit.Gate
	controls  []int
	targets   []int
	gateIndex int
	err       error
	closed    bool
	// trusted is set once a pass has decoded the container start-to-EOF
	// with every record validated; replay passes over the same seekable
	// bytes then skip the per-gate structural validation.
	trusted bool
}

// NewScanner parses the .qcb header of rs (positioned at the container
// start) and returns a Scanner over its gate records. fallbackName labels
// the netlist when the header carries an empty name.
func NewScanner(rs io.ReadSeeker, fallbackName string) (*Scanner, error) {
	s := &Scanner{rs: rs, br: bufio.NewReaderSize(rs, scannerBufSize), gateIndex: -1, name: fallbackName}
	if err := s.readHeader(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Scanner) readHeader() error {
	var magic [4]byte
	if _, err := io.ReadFull(s.br, magic[:]); err != nil {
		return formatErr(s.name, 0, "reading magic: %v", noEOF(err))
	}
	s.off = 4
	if magic != MagicQCB {
		return formatErr(s.name, 0, "bad magic % x; not a .qcb netlist", magic)
	}
	ver, err := s.br.ReadByte()
	if err != nil {
		return formatErr(s.name, s.off, "reading version: %v", noEOF(err))
	}
	s.off++
	if ver != Version {
		return formatErr(s.name, 4, "unsupported version %d (want %d)", ver, Version)
	}
	name, err := s.readString("circuit name")
	if err != nil {
		return err
	}
	if name != "" {
		s.name = name
	}
	numQ, err := s.readUvarint("qubit count")
	if err != nil {
		return err
	}
	if numQ > maxRegister {
		return formatErr(s.name, s.off, "register of %d qubits exceeds the %d cap", numQ, maxRegister)
	}
	// Grow the table as names arrive rather than trusting the header's
	// count: every name costs at least one input byte, so a corrupt header
	// declaring a huge register fails on a truncated read instead of
	// demanding a giant up-front allocation.
	qubits := make([]string, 0, min(numQ, 4096))
	for i := 0; i < numQ; i++ {
		q, err := s.readString("qubit name")
		if err != nil {
			return err
		}
		qubits = append(qubits, q)
	}
	reg, err := circuit.NewNamed(s.name, qubits)
	if err != nil {
		return formatErr(s.name, s.off, "register table: %v", err)
	}
	s.reg = reg
	s.headerLen = s.off
	// The header was parsed through the buffered reader, so the underlying
	// position is ahead of the logical one; record where gate records start
	// relative to wherever the container began.
	pos, err := s.rs.Seek(0, io.SeekCurrent)
	if err != nil {
		return formatErr(s.name, s.off, "seek: %v", err)
	}
	s.gatesOff = pos - int64(s.br.Buffered())
	return nil
}

// maxRegister caps the declared register size; beyond it a header is
// corrupt, not large (the biggest paper benchmark holds 768 qubits, the
// server's gate cap bounds real registers far below this).
const maxRegister = 1 << 26

// Name reports the netlist label (the header name when present).
func (s *Scanner) Name() string { return s.name }

// PrevalidatedGates implements analysis.PrevalidatedStream: decode checks
// (valid opcode, shape-exact operand counts, operands below the header's
// qubit count, pairwise-distinct operands) establish circuit.Gate.Validate
// for every yielded gate, so the analysis passes need not re-check.
func (s *Scanner) PrevalidatedGates() bool { return true }

// NumQubits reports the register size; for binary netlists it is complete
// from the header, before any gate is scanned.
func (s *Scanner) NumQubits() int { return s.reg.NumQubits() }

// Register exposes the decoded qubit register as a gate-less circuit —
// read-only, the same contract as ingest.Scanner.Register.
func (s *Scanner) Register() *circuit.Circuit { return s.reg }

// GateIndex reports the 0-based index of the current gate (-1 before the
// first Scan of a pass).
func (s *Scanner) GateIndex() int { return s.gateIndex }

// BytesRead reports the container bytes consumed so far this pass
// (header + gate records).
func (s *Scanner) BytesRead() int64 { return s.off }

// Gate returns the current gate. Operand slices are borrowed scratch,
// valid only until the next Scan or Rewind; Clone to retain.
func (s *Scanner) Gate() circuit.Gate { return s.gate }

// Err returns the terminal error, nil at clean end of stream.
func (s *Scanner) Err() error { return s.err }

// scannerBufSize sizes the buffered reader: big windows amortize the one
// refill (Discard + Peek) over thousands of gate records.
const scannerBufSize = 64 << 10

// scanPeek is the minimum window Scan requires before decoding a record in
// place. Records longer than that (large MCTs) and records truncated by EOF
// fall back to the byte-wise decoder, which produces the exact diagnostics.
const scanPeek = 64

// refill hands the consumed window prefix back to the buffered reader and
// peeks the next full window. It reports false at end of input — clean EOF
// (marking the pass trusted) or a read error — and true when at least one
// byte is available to decode.
func (s *Scanner) refill() bool {
	s.br.Discard(s.winPos)
	s.winPos = 0
	var perr error
	s.win, perr = s.br.Peek(s.br.Size())
	if len(s.win) == 0 {
		if perr == nil || perr == io.EOF {
			// A pass that decoded the whole container validated every
			// record; replays over the same bytes can skip re-validation.
			s.trusted = true
		} else {
			s.err = formatErr(s.name, s.off, "reading opcode: %v", perr)
		}
		return false
	}
	return true
}

// dropWindow returns unconsumed window bytes to the buffered reader so the
// byte-wise paths (which read through br directly) see the stream at the
// current record boundary.
func (s *Scanner) dropWindow() {
	s.br.Discard(s.winPos)
	s.winPos = 0
	s.win = nil
}

// Scan advances to the next gate record, reporting false at end of file or
// on a malformed record.
func (s *Scanner) Scan() bool {
	if s.err != nil || s.closed {
		return false
	}
	if len(s.win)-s.winPos < scanPeek {
		if !s.refill() {
			return false
		}
	}
	p := s.win[s.winPos:]
	recOff := s.off
	op := p[0]
	if !validOpcode(op) {
		s.err = formatErr(s.name, recOff, "gate %d: unknown opcode 0x%02x", s.gateIndex+1, op)
		return false
	}
	t := circuit.GateType(op)
	shape := shapes[t]
	pos := 1
	nc := shape.controls
	if shape.minControls > 0 {
		k, n := binary.Uvarint(p[pos:])
		if n <= 0 {
			s.dropWindow()
			return s.scanBytewise()
		}
		if k < uint64(shape.minControls) || k > uint64(s.reg.NumQubits()) {
			s.err = formatErr(s.name, recOff, "gate %d: %s with %d controls (want %d..%d)",
				s.gateIndex+1, t, k, shape.minControls, s.reg.NumQubits())
			return false
		}
		pos += n
		nc = int(k)
	}
	s.controls = growInts(s.controls, nc)
	s.targets = growInts(s.targets, shape.targets)
	numQ := uint64(s.reg.NumQubits())
	for i := 0; i < nc+shape.targets; i++ {
		q, n := binary.Uvarint(p[pos:])
		if n <= 0 {
			s.dropWindow()
			return s.scanBytewise()
		}
		if q >= numQ {
			s.err = formatErr(s.name, recOff, "gate %d: %s operand qubit %d out of range [0,%d)",
				s.gateIndex+1, t, q, numQ)
			return false
		}
		pos += n
		if i < nc {
			s.controls[i] = int(q)
		} else {
			s.targets[i-nc] = int(q)
		}
	}
	s.winPos += pos
	s.off += int64(pos)
	s.gate = circuit.Gate{Type: t, Controls: s.controls, Targets: s.targets}
	if !s.trusted && !s.checkDistinct(recOff, t) {
		return false
	}
	s.gateIndex++
	return true
}

// checkDistinct rejects records with a repeated operand qubit. Together
// with the decode-time checks (known opcode, shape-exact operand counts,
// every operand in range) it implies circuit.Gate.Validate passes — the
// scanner yields only valid gates without paying a second full validation
// per gate.
func (s *Scanner) checkDistinct(recOff int64, t circuit.GateType) bool {
	for i, q := range s.targets {
		for _, p := range s.targets[:i] {
			if p == q {
				s.err = formatErr(s.name, recOff, "gate %d: gate %s: duplicate operand qubit %d", s.gateIndex+1, t, q)
				return false
			}
		}
		for _, p := range s.controls {
			if p == q {
				s.err = formatErr(s.name, recOff, "gate %d: gate %s: duplicate operand qubit %d", s.gateIndex+1, t, q)
				return false
			}
		}
	}
	for i, q := range s.controls {
		for _, p := range s.controls[:i] {
			if p == q {
				s.err = formatErr(s.name, recOff, "gate %d: gate %s: duplicate operand qubit %d", s.gateIndex+1, t, q)
				return false
			}
		}
	}
	return true
}

// scanBytewise decodes one gate record byte by byte — the fallback for
// records the peeked window cannot hold (records crossing a window refill
// boundary, EOF-truncated tails). The fast path dropped its window without
// consuming any of the record, so it re-decodes from the record's first
// byte and owns its diagnostics.
func (s *Scanner) scanBytewise() bool {
	op, err := s.br.ReadByte()
	if err == io.EOF {
		s.trusted = true
		return false
	}
	if err != nil {
		s.err = formatErr(s.name, s.off, "reading opcode: %v", err)
		return false
	}
	recOff := s.off
	s.off++
	if !validOpcode(op) {
		s.err = formatErr(s.name, recOff, "gate %d: unknown opcode 0x%02x", s.gateIndex+1, op)
		return false
	}
	t := circuit.GateType(op)
	shape := shapes[t]
	nc := shape.controls
	if shape.minControls > 0 {
		k, err := s.readUvarint("control count")
		if err != nil {
			s.err = err
			return false
		}
		if k < shape.minControls || k > s.reg.NumQubits() {
			s.err = formatErr(s.name, recOff, "gate %d: %s with %d controls (want %d..%d)",
				s.gateIndex+1, t, k, shape.minControls, s.reg.NumQubits())
			return false
		}
		nc = k
	}
	s.controls = growInts(s.controls, nc)
	for i := range s.controls {
		if s.controls[i], err = s.readOperand(recOff, t); err != nil {
			s.err = err
			return false
		}
	}
	s.targets = growInts(s.targets, shape.targets)
	for i := range s.targets {
		if s.targets[i], err = s.readOperand(recOff, t); err != nil {
			s.err = err
			return false
		}
	}
	s.gate = circuit.Gate{Type: t, Controls: s.controls, Targets: s.targets}
	if !s.trusted && !s.checkDistinct(recOff, t) {
		return false
	}
	s.gateIndex++
	return true
}

// Rewind restarts the gate stream (one seek back to the first record).
func (s *Scanner) Rewind() error {
	if s.closed {
		return formatErr(s.name, s.off, "scanner closed")
	}
	if s.err != nil {
		// Terminal decode errors stick, exactly like the text scanner's.
		return s.err
	}
	if _, err := s.rs.Seek(s.gatesOff, io.SeekStart); err != nil {
		return formatErr(s.name, s.off, "seek: %v", err)
	}
	s.br.Reset(s.rs)
	s.win, s.winPos = nil, 0
	s.off = s.headerLen
	s.gate = circuit.Gate{}
	s.gateIndex = -1
	return nil
}

// Close marks the scanner unusable. The underlying seeker is owned by the
// caller (the ingest layer closes files and spools).
func (s *Scanner) Close() error {
	s.closed = true
	return nil
}

// Materialize replays the stream into a fully materialized Circuit — the
// same escape hatch ingest.Scanner offers. The scanner remains usable.
func (s *Scanner) Materialize() (*circuit.Circuit, error) {
	if err := s.Rewind(); err != nil {
		return nil, err
	}
	var gates []circuit.Gate
	for s.Scan() {
		gates = append(gates, s.gate.Clone())
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	c := s.reg.Clone()
	c.Gates = gates
	return c, nil
}

func (s *Scanner) readOperand(recOff int64, t circuit.GateType) (int, error) {
	q, err := s.readUvarint("operand")
	if err != nil {
		return 0, err
	}
	if q >= s.reg.NumQubits() {
		return 0, formatErr(s.name, recOff, "gate %d: %s operand qubit %d out of range [0,%d)",
			s.gateIndex+1, t, q, s.reg.NumQubits())
	}
	return q, nil
}

// readUvarint decodes one varint, bounding it to the int range and mapping
// EOF mid-value to a truncation diagnostic. It decodes straight out of the
// buffered window (Peek + slice decode + Discard) rather than byte by byte
// through a ByteReader — this runs several times per gate record on the
// decode hot path.
func (s *Scanner) readUvarint(what string) (int, error) {
	// Peek's error only matters when the window is too short to hold the
	// value: a complete varint near EOF decodes fine from a short window.
	// One byte beyond the max varint length lets the decoder distinguish an
	// over-long value (overflow) from a window that simply ran out
	// (truncation).
	p, _ := s.br.Peek(binary.MaxVarintLen64 + 1)
	v, n := binary.Uvarint(p)
	switch {
	case n > 0:
		s.br.Discard(n)
		s.off += int64(n)
		if v > uint64(int(^uint(0)>>1)) {
			return 0, formatErr(s.name, s.off-int64(n), "%s %d overflows", what, v)
		}
		return int(v), nil
	case n < 0:
		return 0, formatErr(s.name, s.off, "reading %s: varint overflows a 64-bit integer", what)
	default:
		return 0, formatErr(s.name, s.off, "reading %s: %v", what, noEOF(io.ErrUnexpectedEOF))
	}
}

func (s *Scanner) readString(what string) (string, error) {
	n, err := s.readUvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > maxNameLen {
		return "", formatErr(s.name, s.off, "%s of %d bytes exceeds the %d cap", what, n, maxNameLen)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(s.br, b); err != nil {
		return "", formatErr(s.name, s.off, "reading %s: %v", what, noEOF(err))
	}
	s.off += int64(n)
	return string(b), nil
}

// noEOF rewrites io.EOF/ErrUnexpectedEOF as a plain truncation message so
// diagnostics read as "truncated" rather than a misleading clean EOF.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return errors.New("truncated input")
	}
	return err
}

func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}
