package tsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoundConstants(t *testing.T) {
	if math.Abs(MeanA-0.713) > 1e-12 {
		t.Errorf("MeanA = %v, want 0.713", MeanA)
	}
	if math.Abs(MeanB-0.641) > 1e-12 {
		t.Errorf("MeanB = %v, want 0.641", MeanB)
	}
}

func TestBoundsOrdering(t *testing.T) {
	for n := 2; n < 200; n *= 2 {
		lo, hi, est := TourLowerBound(n), TourUpperBound(n), TourEstimate(n)
		if !(lo < est && est < hi) {
			t.Errorf("n=%d: bounds out of order: %v %v %v", n, lo, est, hi)
		}
	}
}

func TestExpectedHamiltonianPathEq15(t *testing.T) {
	// m=4, B=9 (side 3): Eq. 15 = 3·(0.713·√5+0.641)·3/4.
	want := 3 * (0.713*math.Sqrt(5) + 0.641) * 3.0 / 4.0
	got := ExpectedHamiltonianPath(4, 9)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("E[l_ham] = %v, want %v", got, want)
	}
}

func TestExpectedHamiltonianPathDegenerate(t *testing.T) {
	if ExpectedHamiltonianPath(0, 9) != 0 {
		t.Error("m=0 should give 0")
	}
	if ExpectedHamiltonianPath(3, 0) != 0 {
		t.Error("zero area should give 0")
	}
	// m=1: expected distance between two uniform points, scaled by side.
	got := ExpectedHamiltonianPath(1, 4)
	want := 2 * meanPointDistance
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("m=1: %v, want %v", got, want)
	}
}

func TestExpectedPathMonotoneInM(t *testing.T) {
	prev := 0.0
	for m := 2; m <= 64; m++ {
		cur := ExpectedHamiltonianPath(m, float64(m+1))
		if cur <= prev {
			t.Errorf("E[l_ham] not increasing at m=%d: %v <= %v", m, cur, prev)
		}
		prev = cur
	}
}

func TestShortestHamiltonianPathSmall(t *testing.T) {
	// Three collinear points: path = 2 (through the middle).
	pts := []Point{{0, 0}, {2, 0}, {1, 0}}
	got, err := ShortestHamiltonianPath(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("collinear path = %v, want 2", got)
	}
	// Unit square corners: optimal open path = 3 sides.
	pts = []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	got, _ = ShortestHamiltonianPath(pts)
	if math.Abs(got-3) > 1e-12 {
		t.Errorf("square path = %v, want 3", got)
	}
}

func TestShortestHamiltonianPathEdgeCases(t *testing.T) {
	if l, _ := ShortestHamiltonianPath(nil); l != 0 {
		t.Error("empty set should give 0")
	}
	if l, _ := ShortestHamiltonianPath([]Point{{1, 1}}); l != 0 {
		t.Error("single point should give 0")
	}
	if l, _ := ShortestHamiltonianPath([]Point{{0, 0}, {3, 4}}); math.Abs(l-5) > 1e-12 {
		t.Errorf("two points = %v, want 5", l)
	}
	if _, err := ShortestHamiltonianPath(make([]Point, MaxExactPoints+1)); err == nil {
		t.Error("want size-limit error")
	}
}

func TestShortestTourSquare(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	got, err := ShortestTour(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("square tour = %v, want 4", got)
	}
}

func TestShortestTourEdgeCases(t *testing.T) {
	if l, _ := ShortestTour([]Point{{0, 0}, {3, 4}}); math.Abs(l-10) > 1e-12 {
		t.Errorf("two-point tour = %v, want 10", l)
	}
	if l, _ := ShortestTour([]Point{{5, 5}}); l != 0 {
		t.Error("single-point tour should be 0")
	}
	if _, err := ShortestTour(make([]Point, MaxExactPoints+1)); err == nil {
		t.Error("want size-limit error")
	}
}

func TestPathShorterThanTourProperty(t *testing.T) {
	// The optimal open path is never longer than the optimal tour, and the
	// tour minus the path is at most the longest pairwise distance.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64(), rng.Float64()}
		}
		path, err1 := ShortestHamiltonianPath(pts)
		tour, err2 := ShortestTour(pts)
		if err1 != nil || err2 != nil {
			return false
		}
		return path <= tour+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTourBoundsBracketMonteCarlo(t *testing.T) {
	// Validate the paper's Eq. 13–15 machinery: for n around 8–12, the
	// Monte Carlo expected optimal PATH should be below the tour estimate
	// and in the general vicinity of the Eq. 15 scaling. The closed-form
	// bounds are asymptotic, so we allow generous slack at small n.
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{8, 10, 12} {
		mc, err := MonteCarloPathLength(n, 60, rng)
		if err != nil {
			t.Fatal(err)
		}
		tourEst := TourEstimate(n)
		if mc >= tourEst {
			t.Errorf("n=%d: MC path %v ≥ tour estimate %v", n, mc, tourEst)
		}
		if mc < 0.4*tourEst {
			t.Errorf("n=%d: MC path %v implausibly small vs %v", n, mc, tourEst)
		}
	}
}

func TestMonteCarloErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := MonteCarloPathLength(4, 0, rng); err == nil {
		t.Error("want error for zero trials")
	}
	if _, err := MonteCarloPathLength(MaxExactPoints+1, 3, rng); err == nil {
		t.Error("want size error")
	}
}

func TestHeldKarpMatchesBruteForce(t *testing.T) {
	// Exhaustive permutation check for n ≤ 6.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		n := 4 + rng.Intn(3)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64(), rng.Float64()}
		}
		want := bruteForcePath(pts)
		got, err := ShortestHamiltonianPath(pts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("n=%d: held-karp %v != brute force %v", n, got, want)
		}
	}
}

func bruteForcePath(pts []Point) float64 {
	n := len(pts)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.MaxFloat64
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			l := 0.0
			for i := 1; i < n; i++ {
				l += dist(pts[perm[i-1]], pts[perm[i]])
			}
			if l < best {
				best = l
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}
