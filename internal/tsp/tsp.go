// Package tsp provides the traveling-salesman path-length machinery behind
// LEQA's d_uncong estimate (§3.2): the asymptotic lower/upper bounds for the
// expected optimal tour through n uniform random points in the unit square
// (Eq. 13–14), their average (Eq. 15's 0.713√n + 0.641 form), and — for
// validating those closed forms — an exact Held–Karp solver plus Monte Carlo
// evaluation on random instances.
package tsp

import (
	"fmt"
	"math"
	"math/rand"
)

// Beardwood–Halton–Hammersley-style constants used by the paper (its
// reference [19]): expected optimal TSP tour length through n ≫ 1 uniform
// points in the unit square.
const (
	// LowerA·√n + LowerB is the paper's Eq. 13 lower bound.
	LowerA = 0.708
	LowerB = 0.551
	// UpperA·√n + UpperB is the paper's Eq. 14 upper bound.
	UpperA = 0.718
	UpperB = 0.731
	// MeanA/MeanB average the bounds; Eq. 15 uses 0.713√n + 0.641.
	MeanA = (LowerA + UpperA) / 2
	MeanB = (LowerB + UpperB) / 2
)

// TourLowerBound returns the Eq. 13 estimate for n points in the unit square.
func TourLowerBound(n int) float64 { return LowerA*math.Sqrt(float64(n)) + LowerB }

// TourUpperBound returns the Eq. 14 estimate for n points in the unit square.
func TourUpperBound(n int) float64 { return UpperA*math.Sqrt(float64(n)) + UpperB }

// TourEstimate returns the bound average the paper plugs into Eq. 15.
func TourEstimate(n int) float64 { return MeanA*math.Sqrt(float64(n)) + MeanB }

// ExpectedHamiltonianPath implements Eq. 15: the estimated expected shortest
// Hamiltonian path through m+1 points (the qubit plus its M_i = m
// interaction partners) uniformly placed in a square zone of area zoneArea.
// The unit-square tour estimate is scaled by the zone's side length √B_i and
// by (m−1)/m to drop one tour edge, as in the paper.
//
// Degenerate cases the paper leaves implicit:
//   - m ≤ 0: no partner to visit, path length 0.
//   - m == 1: Eq. 15's (m−1)/m factor collapses to 0, but physically the
//     qubit still travels to one partner. We use the exact expected distance
//     between two uniform points in a square of the given area instead
//     (≈ 0.5214 · side). See DESIGN.md §5.
func ExpectedHamiltonianPath(m int, zoneArea float64) float64 {
	if m <= 0 || zoneArea <= 0 {
		return 0
	}
	side := math.Sqrt(zoneArea)
	if m == 1 {
		return meanPointDistance * side
	}
	return side * TourEstimate(m+1) * float64(m-1) / float64(m)
}

// meanPointDistance is the expected Euclidean distance between two
// independent uniform points in the unit square:
// (2+√2+5·asinh(1))/15 ≈ 0.521405.
var meanPointDistance = (2 + math.Sqrt2 + 5*math.Asinh(1)) / 15

// Point is a 2-D location.
type Point struct{ X, Y float64 }

func dist(a, b Point) float64 { return math.Hypot(a.X-b.X, a.Y-b.Y) }

// MaxExactPoints bounds the Held–Karp solver (2^n · n² state space).
const MaxExactPoints = 16

// ShortestHamiltonianPath computes the exact shortest Hamiltonian path
// through the given points (visiting each exactly once, any start/end) via
// Held–Karp dynamic programming. len(pts) must be ≤ MaxExactPoints.
func ShortestHamiltonianPath(pts []Point) (float64, error) {
	n := len(pts)
	if n > MaxExactPoints {
		return 0, fmt.Errorf("tsp: %d points exceeds exact limit %d", n, MaxExactPoints)
	}
	if n <= 1 {
		return 0, nil
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = dist(pts[i], pts[j])
		}
	}
	const inf = math.MaxFloat64
	size := 1 << uint(n)
	// dp[mask][i] = shortest path covering the set mask, ending at i.
	dp := make([][]float64, size)
	for m := range dp {
		dp[m] = make([]float64, n)
		for i := range dp[m] {
			dp[m][i] = inf
		}
	}
	for i := 0; i < n; i++ {
		dp[1<<uint(i)][i] = 0
	}
	for mask := 1; mask < size; mask++ {
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 || dp[mask][i] == inf {
				continue
			}
			base := dp[mask][i]
			for j := 0; j < n; j++ {
				if mask&(1<<uint(j)) != 0 {
					continue
				}
				nm := mask | 1<<uint(j)
				if cand := base + d[i][j]; cand < dp[nm][j] {
					dp[nm][j] = cand
				}
			}
		}
	}
	best := inf
	full := size - 1
	for i := 0; i < n; i++ {
		if dp[full][i] < best {
			best = dp[full][i]
		}
	}
	return best, nil
}

// ShortestTour computes the exact shortest closed tour via Held–Karp,
// anchored at point 0. len(pts) must be ≤ MaxExactPoints.
func ShortestTour(pts []Point) (float64, error) {
	n := len(pts)
	if n > MaxExactPoints {
		return 0, fmt.Errorf("tsp: %d points exceeds exact limit %d", n, MaxExactPoints)
	}
	if n <= 2 {
		if n == 2 {
			return 2 * dist(pts[0], pts[1]), nil
		}
		return 0, nil
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = dist(pts[i], pts[j])
		}
	}
	const inf = math.MaxFloat64
	size := 1 << uint(n)
	dp := make([][]float64, size)
	for m := range dp {
		dp[m] = make([]float64, n)
		for i := range dp[m] {
			dp[m][i] = inf
		}
	}
	dp[1][0] = 0
	for mask := 1; mask < size; mask++ {
		if mask&1 == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 || dp[mask][i] == inf {
				continue
			}
			base := dp[mask][i]
			for j := 1; j < n; j++ {
				if mask&(1<<uint(j)) != 0 {
					continue
				}
				nm := mask | 1<<uint(j)
				if cand := base + d[i][j]; cand < dp[nm][j] {
					dp[nm][j] = cand
				}
			}
		}
	}
	best := inf
	full := size - 1
	for i := 1; i < n; i++ {
		if dp[full][i] != inf {
			if cand := dp[full][i] + d[i][0]; cand < best {
				best = cand
			}
		}
	}
	return best, nil
}

// MonteCarloPathLength estimates the expected shortest Hamiltonian path
// through n uniform random points in the unit square by exact solution of
// `trials` random instances. n must be ≤ MaxExactPoints.
func MonteCarloPathLength(n, trials int, rng *rand.Rand) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("tsp: trials must be positive")
	}
	sum := 0.0
	pts := make([]Point, n)
	for t := 0; t < trials; t++ {
		for i := range pts {
			pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
		}
		l, err := ShortestHamiltonianPath(pts)
		if err != nil {
			return 0, err
		}
		sum += l
	}
	return sum / float64(trials), nil
}
