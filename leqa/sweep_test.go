package leqa

import (
	"context"
	"errors"
	"testing"

	"repro/internal/circuit"
)

// sweepSuite picks the benchmark set: every built-in circuit normally, a
// small subset under -short.
func sweepSuite(t *testing.T) []string {
	t.Helper()
	if testing.Short() {
		return []string{"8bitadder", "gf2^16mult", "ham15"}
	}
	return Benchmarks()
}

// TestSweepMatchesSequential is the batch-engine correctness anchor: the
// concurrent sweep over the built-in benchmarks must return estimates
// bitwise-identical to sequential Estimate calls.
func TestSweepMatchesSequential(t *testing.T) {
	names := sweepSuite(t)
	p := DefaultParams()

	circuits := make([]*Circuit, len(names))
	sequential := make([]*EstimateResult, len(names))
	for i, name := range names {
		c, err := GenerateFT(name)
		if err != nil {
			t.Fatal(err)
		}
		circuits[i] = c
		sequential[i], err = Estimate(c, p)
		if err != nil {
			t.Fatal(err)
		}
	}

	results, err := Sweep(context.Background(), circuits, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(names) {
		t.Fatalf("got %d results, want %d", len(results), len(names))
	}
	for i, sr := range results {
		if sr.Err != nil {
			t.Fatalf("%s: %v", names[i], sr.Err)
		}
		if sr.Index != i || sr.Name != names[i] {
			t.Errorf("result %d is %q (index %d), want %q", i, sr.Name, sr.Index, names[i])
		}
		seq := sequential[i]
		if sr.Result.EstimatedLatency != seq.EstimatedLatency {
			t.Errorf("%s: sweep latency %v != sequential %v",
				names[i], sr.Result.EstimatedLatency, seq.EstimatedLatency)
		}
		if sr.Result.LCNOTAvg != seq.LCNOTAvg {
			t.Errorf("%s: sweep L_CNOT %v != sequential %v",
				names[i], sr.Result.LCNOTAvg, seq.LCNOTAvg)
		}
		if sr.Result.DUncong != seq.DUncong {
			t.Errorf("%s: sweep d_uncong %v != sequential %v",
				names[i], sr.Result.DUncong, seq.DUncong)
		}
	}
}

func TestSweepNamedMatchesSweep(t *testing.T) {
	names := []string{"8bitadder", "ham15"}
	p := DefaultParams()
	byName, err := SweepNamed(context.Background(), names, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		c, err := GenerateFT(name)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Estimate(c, p)
		if err != nil {
			t.Fatal(err)
		}
		if byName[i].Err != nil {
			t.Fatalf("%s: %v", name, byName[i].Err)
		}
		if byName[i].Result.EstimatedLatency != seq.EstimatedLatency {
			t.Errorf("%s: named sweep %v != sequential %v",
				name, byName[i].Result.EstimatedLatency, seq.EstimatedLatency)
		}
	}
}

func TestSweepPerCircuitErrors(t *testing.T) {
	// One bad circuit must not sink the batch: its slot carries the error,
	// the others succeed.
	good, err := GenerateFT("8bitadder")
	if err != nil {
		t.Fatal(err)
	}
	bad := circuit.New("raw-toffoli", 3)
	bad.Append(circuit.NewToffoli(0, 1, 2))

	results, err := Sweep(context.Background(), []*Circuit{good, bad, good}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("good circuits failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Error("non-FT circuit did not report an error")
	}
}

func TestSweepBadGeneratorName(t *testing.T) {
	results, err := SweepNamed(context.Background(), []string{"8bitadder", "no-such-bench"}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Errorf("8bitadder failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("unknown generator name did not report an error")
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the sweep starts
	c, err := GenerateFT("8bitadder")
	if err != nil {
		t.Fatal(err)
	}
	results, err := Sweep(ctx, []*Circuit{c, c, c}, DefaultParams())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3 (every slot must be accounted for)", len(results))
	}
	for i, sr := range results {
		if sr.Index != i || sr.Name != c.Name {
			t.Errorf("slot %d: index %d name %q", i, sr.Index, sr.Name)
		}
		// The context was cancelled before Run, so no slot can have been
		// estimated: each must carry the cancellation error.
		if !errors.Is(sr.Err, context.Canceled) {
			t.Errorf("slot %d: err = %v, want context.Canceled", i, sr.Err)
		}
		if sr.Result != nil {
			t.Errorf("slot %d carries a result despite pre-cancelled context", i)
		}
	}
}

func TestSweepEmptyInput(t *testing.T) {
	results, err := Sweep(context.Background(), nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("got %d results for empty input", len(results))
	}
}

func TestNewRunnerValidatesParams(t *testing.T) {
	p := DefaultParams()
	p.TMove = 0
	if _, err := NewRunner(p, EstimateOptions{}, 2); err == nil {
		t.Error("want validation error")
	}
}

func TestRunnerSingleWorkerDeterministic(t *testing.T) {
	// A 1-worker pool is plain sequential execution through the same code
	// path; two runs must agree bitwise.
	r, err := NewRunner(DefaultParams(), EstimateOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"8bitadder", "ham15"}
	a, err := r.RunNamed(context.Background(), names)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunNamed(context.Background(), names)
	if err != nil {
		t.Fatal(err)
	}
	for i := range names {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatal(a[i].Err, b[i].Err)
		}
		if a[i].Result.EstimatedLatency != b[i].Result.EstimatedLatency {
			t.Errorf("%s: runs disagree: %v vs %v",
				names[i], a[i].Result.EstimatedLatency, b[i].Result.EstimatedLatency)
		}
	}
}
